#include "dist/dist_triangles.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/partition.hpp"

namespace kron {

DistTriangleResult distributed_triangle_count(const Csr& g, int ranks) {
  if (ranks < 1) throw std::invalid_argument("distributed_triangle_count: ranks < 1");
  const auto num_ranks = static_cast<std::uint64_t>(ranks);
  const vertex_t n = g.num_vertices();

  // Global degree order (deterministic across ranks; cheap precompute).
  std::vector<std::uint64_t> rank_of(n);
  {
    std::vector<vertex_t> order(n);
    for (vertex_t v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&g](vertex_t a, vertex_t b) {
      const auto da = g.degree_no_loop(a);
      const auto db = g.degree_no_loop(b);
      return da != db ? da < db : a < b;
    });
    for (std::uint64_t i = 0; i < n; ++i) rank_of[order[i]] = i;
  }

  DistTriangleResult result;
  result.comm_per_rank.assign(num_ranks, CommStats{});

  Runtime::run(ranks, [&](Comm& comm) {
    const auto me = static_cast<std::uint64_t>(comm.rank());

    // Forward adjacency of OWNED vertices only: F(u) = higher-ordered
    // neighbors, sorted by vertex id for binary-search answering.
    std::vector<std::vector<vertex_t>> forward_of_owned;
    std::vector<vertex_t> owned;
    for (vertex_t u = me; u < n; u += num_ranks) {
      std::vector<vertex_t> forward;
      for (const vertex_t v : g.neighbors(u))
        if (u != v && rank_of[u] < rank_of[v]) forward.push_back(v);
      owned.push_back(u);
      forward_of_owned.push_back(std::move(forward));
    }

    // Generate wedge queries: for each owned u and v, w ∈ F(u) with
    // rank(v) < rank(w), ask owner(v): is w ∈ F(v)?
    struct Query {
      vertex_t v;
      vertex_t w;
    };
    std::vector<std::vector<Query>> outbox(num_ranks);
    std::uint64_t local_queries = 0;
    for (const auto& forward : forward_of_owned) {
      for (std::size_t x = 0; x < forward.size(); ++x) {
        for (std::size_t y = 0; y < forward.size(); ++y) {
          const vertex_t v = forward[x];
          const vertex_t w = forward[y];
          if (rank_of[v] >= rank_of[w]) continue;
          outbox[cyclic_owner(v, num_ranks)].push_back({v, w});
          ++local_queries;
        }
      }
    }
    auto inbox = comm.alltoallv(std::move(outbox));

    // Answer queries against owned forward lists.
    std::uint64_t local_triangles = 0;
    for (const auto& from_rank : inbox) {
      for (const Query& q : from_rank) {
        const auto& forward = forward_of_owned[(q.v - me) / num_ranks];
        if (std::binary_search(forward.begin(), forward.end(), q.w)) ++local_triangles;
      }
    }

    const std::uint64_t total = comm.allreduce_sum(local_triangles);
    const std::uint64_t queries = comm.allreduce_sum(local_queries);
    if (comm.rank() == 0) {
      result.total = total;
      result.wedge_queries = queries;
    }
    result.comm_per_rank[me] = comm.stats();
  });
  return result;
}

}  // namespace kron
