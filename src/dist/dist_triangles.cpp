#include "dist/dist_triangles.hpp"

#include <algorithm>
#include <span>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/partition.hpp"
#include "util/parallel.hpp"

namespace kron {
namespace {

struct Query {
  vertex_t v;
  vertex_t w;
};

// Count the queries whose wedge is closed by an owned forward list —
// chunked binary searches, integer sum folded in chunk order.
std::uint64_t answer_queries(std::span<const Query> queries, std::uint64_t me,
                             std::uint64_t num_ranks,
                             const std::vector<std::vector<vertex_t>>& forward_of_owned) {
  return parallel_reduce(
      std::size_t{0}, queries.size(), std::uint64_t{0},
      [&](std::size_t lo, std::size_t hi) {
        std::uint64_t closed = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const Query& q = queries[i];
          const auto& forward = forward_of_owned[(q.v - me) / num_ranks];
          if (std::binary_search(forward.begin(), forward.end(), q.w)) ++closed;
        }
        return closed;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, /*grain=*/512);
}

}  // namespace

DistTriangleResult distributed_triangle_count(const Csr& g, int ranks) {
  if (ranks < 1) throw std::invalid_argument("distributed_triangle_count: ranks < 1");
  const auto num_ranks = static_cast<std::uint64_t>(ranks);
  const vertex_t n = g.num_vertices();

  // Global degree order (deterministic across ranks; cheap precompute).
  std::vector<std::uint64_t> rank_of(n);
  {
    std::vector<vertex_t> order(n);
    for (vertex_t v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&g](vertex_t a, vertex_t b) {
      const auto da = g.degree_no_loop(a);
      const auto db = g.degree_no_loop(b);
      return da != db ? da < db : a < b;
    });
    for (std::uint64_t i = 0; i < n; ++i) rank_of[order[i]] = i;
  }

  DistTriangleResult result;
  result.comm_per_rank.assign(num_ranks, CommStats{});

  Runtime::run(ranks, [&](Comm& comm) {
    const auto me = static_cast<std::uint64_t>(comm.rank());

    // Forward adjacency of OWNED vertices only: F(u) = higher-ordered
    // neighbors, sorted by vertex id for binary-search answering.  Owned
    // rows are independent, so the build is chunked over the pool.
    const std::uint64_t num_owned = me < n ? (n - me + num_ranks - 1) / num_ranks : 0;
    std::vector<std::vector<vertex_t>> forward_of_owned(num_owned);
    parallel_for(0, num_owned, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        const auto u = static_cast<vertex_t>(me + i * num_ranks);
        std::vector<vertex_t>& forward = forward_of_owned[i];
        for (const vertex_t v : g.neighbors(u))
          if (u != v && rank_of[u] < rank_of[v]) forward.push_back(v);
      }
    }, /*grain=*/64);

    // Generate wedge queries: for each owned u and v, w ∈ F(u) with
    // rank(v) < rank(w), ask owner(v): is w ∈ F(v)?  Chunks fill private
    // outboxes concatenated in chunk order — deterministic message bodies.
    struct Outbox {
      std::vector<std::vector<Query>> to_rank;
      std::uint64_t queries = 0;
    };
    Outbox all = parallel_reduce(
        std::size_t{0}, num_owned, Outbox{std::vector<std::vector<Query>>(num_ranks), 0},
        [&](std::size_t lo, std::size_t hi) {
          Outbox out{std::vector<std::vector<Query>>(num_ranks), 0};
          for (std::size_t i = lo; i < hi; ++i) {
            const auto& forward = forward_of_owned[i];
            for (std::size_t x = 0; x < forward.size(); ++x) {
              for (std::size_t y = 0; y < forward.size(); ++y) {
                const vertex_t v = forward[x];
                const vertex_t w = forward[y];
                if (rank_of[v] >= rank_of[w]) continue;
                out.to_rank[cyclic_owner(v, num_ranks)].push_back({v, w});
                ++out.queries;
              }
            }
          }
          return out;
        },
        [](Outbox acc, Outbox part) {
          for (std::size_t d = 0; d < acc.to_rank.size(); ++d)
            acc.to_rank[d].insert(acc.to_rank[d].end(), part.to_rank[d].begin(),
                                  part.to_rank[d].end());
          acc.queries += part.queries;
          return acc;
        },
        /*grain=*/64);

    // Overlap the exchange with local work: post every remote bucket
    // asynchronously (one message per peer, empty included, so each rank
    // expects exactly ranks-1 receives), answer the own-rank bucket while
    // those are in flight, then drain and answer the incoming queries.
    for (std::uint64_t d = 0; d < num_ranks; ++d) {
      if (d == me) continue;
      comm.send_values<Query>(static_cast<int>(d), /*tag=*/0,
                              std::span<const Query>(all.to_rank[d]));
    }
    std::uint64_t local_triangles =
        answer_queries(all.to_rank[me], me, num_ranks, forward_of_owned);
    for (std::uint64_t r = 0; r + 1 < num_ranks; ++r) {
      const RankMessage message = comm.recv();
      const std::vector<Query> queries = Comm::decode<Query>(message);
      local_triangles += answer_queries(queries, me, num_ranks, forward_of_owned);
    }

    const std::uint64_t total = comm.allreduce_sum(local_triangles);
    const std::uint64_t queries = comm.allreduce_sum(all.queries);
    if (comm.rank() == 0) {
      result.total = total;
      result.wedge_queries = queries;
    }
    result.comm_per_rank[me] = comm.stats();
  });
  return result;
}

}  // namespace kron
