// Distributed degree computation from partitioned edge shards.
//
// Consumes exactly what the distributed generator produces
// (GeneratorResult::stored_per_rank): each rank holds an arbitrary shard of
// C's arcs and contributes partial degree counts, which are routed to the
// vertex owners with an all-to-all and then gathered.  This is the cheapest
// whole-graph statistic the paper's validation pipeline checks against
// d_C = d_A ⊗ d_B.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/types.hpp"
#include "runtime/comm_stats.hpp"
#include "util/histogram.hpp"

namespace kron {

/// Out-degree per vertex from per-rank arc shards; runs shards.size()
/// ranks.  For a symmetric graph this equals the undirected degree with
/// loops counted once.  When `comm_stats` is non-null it receives one
/// CommStats per rank (communication profile of the exchange).
[[nodiscard]] std::vector<std::uint64_t> distributed_degrees(
    const std::vector<std::vector<Edge>>& shards, vertex_t num_vertices,
    std::vector<CommStats>* comm_stats = nullptr);

/// Degree histogram computed the same way (counts merged at the owners).
[[nodiscard]] Histogram distributed_degree_histogram(
    const std::vector<std::vector<Edge>>& shards, vertex_t num_vertices,
    std::vector<CommStats>* comm_stats = nullptr);

}  // namespace kron
