// Distributed triangle counting (wedge-query algorithm).
//
// The distributed counterpart of analytics/triangles.hpp, mirroring the
// structure of the paper's reference [23] (Pearce, HPEC'17): vertices are
// degree-ordered and partitioned across ranks; every rank generates the
// wedges (u; v, w) closed by its own forward adjacency lists and sends
// each wedge as an existence query to the owner of v; owners answer from
// their forward lists; counts are combined with an all-reduce.  Remote
// query buckets are posted asynchronously and each rank answers its own
// bucket while they are in flight, overlapping the exchange with local
// counting; answers fold into the final all-reduce.  Within a rank, the
// forward-list build, query generation and query answering are chunked
// over the shared thread pool (DESIGN.md §10).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "runtime/comm_stats.hpp"

namespace kron {

struct DistTriangleResult {
  std::uint64_t total = 0;              ///< τ: distinct triangles
  std::uint64_t wedge_queries = 0;      ///< queries exchanged (comm volume)
  std::vector<CommStats> comm_per_rank;  ///< per-rank communication telemetry
};

/// Global triangle count of an undirected graph on `ranks` runtime ranks;
/// identical to analytics' global_triangle_count.  Self loops are ignored.
[[nodiscard]] DistTriangleResult distributed_triangle_count(const Csr& g, int ranks);

}  // namespace kron
