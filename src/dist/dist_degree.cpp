#include "dist/dist_degree.hpp"

#include <map>
#include <stdexcept>

#include "runtime/comm.hpp"
#include "runtime/partition.hpp"

namespace kron {

std::vector<std::uint64_t> distributed_degrees(const std::vector<std::vector<Edge>>& shards,
                                               vertex_t num_vertices,
                                               std::vector<CommStats>* comm_stats) {
  if (shards.empty()) throw std::invalid_argument("distributed_degrees: no shards");
  const auto num_ranks = static_cast<std::uint64_t>(shards.size());
  std::vector<std::uint64_t> degrees(num_vertices, 0);
  if (comm_stats) comm_stats->assign(num_ranks, CommStats{});

  Runtime::run(static_cast<int>(num_ranks), [&](Comm& comm) {
    const auto me = static_cast<std::uint64_t>(comm.rank());
    // Local partial counts, sparse (a shard usually touches few vertices
    // relative to n for large rank counts).
    std::map<vertex_t, std::uint64_t> partial;
    for (const Edge& e : shards[me]) ++partial[e.u];

    // Route (vertex, count) pairs to the vertex owners.
    struct Count {
      vertex_t v;
      std::uint64_t count;
    };
    std::vector<std::vector<Count>> outbox(num_ranks);
    for (const auto& [v, count] : partial)
      outbox[cyclic_owner(v, num_ranks)].push_back({v, count});
    auto inbox = comm.alltoallv(std::move(outbox));
    for (const auto& from_rank : inbox)
      for (const Count& c : from_rank) degrees[c.v] += c.count;  // owner-exclusive writes
    if (comm_stats) (*comm_stats)[me] = comm.stats();
  });
  return degrees;
}

Histogram distributed_degree_histogram(const std::vector<std::vector<Edge>>& shards,
                                       vertex_t num_vertices,
                                       std::vector<CommStats>* comm_stats) {
  const auto degrees = distributed_degrees(shards, num_vertices, comm_stats);
  Histogram histogram;
  for (const auto d : degrees) histogram.add(d);
  return histogram;
}

}  // namespace kron
