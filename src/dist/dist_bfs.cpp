#include "dist/dist_bfs.hpp"

#include <limits>
#include <stdexcept>

#include "runtime/comm.hpp"
#include "runtime/partition.hpp"

namespace kron {
namespace {

constexpr std::uint64_t kUnset = std::numeric_limits<std::uint64_t>::max();

}  // namespace

std::vector<std::uint64_t> distributed_bfs_levels(const Csr& g, vertex_t source, int ranks,
                                                  std::vector<CommStats>* comm_stats) {
  if (source >= g.num_vertices())
    throw std::out_of_range("distributed_bfs_levels: bad source");
  if (ranks < 1) throw std::invalid_argument("distributed_bfs_levels: ranks < 1");

  const auto num_ranks = static_cast<std::uint64_t>(ranks);
  std::vector<std::uint64_t> levels(g.num_vertices(), kUnset);
  if (comm_stats) comm_stats->assign(num_ranks, CommStats{});

  Runtime::run(ranks, [&](Comm& comm) {
    const auto me = static_cast<std::uint64_t>(comm.rank());
    // Per-rank view: level of owned vertices only.
    std::vector<vertex_t> frontier;  // owned vertices discovered last level
    if (cyclic_owner(source, num_ranks) == me) {
      levels[source] = 0;
      frontier.push_back(source);
    }
    std::uint64_t depth = 0;
    while (true) {
      ++depth;
      // Expand owned frontier rows; bucket discoveries by owner.
      std::vector<std::vector<vertex_t>> outbox(num_ranks);
      for (const vertex_t u : frontier) {
        for (const vertex_t v : g.neighbors(u)) {
          outbox[cyclic_owner(v, num_ranks)].push_back(v);
        }
      }
      frontier.clear();
      auto inbox = comm.alltoallv(std::move(outbox));
      for (const auto& from_rank : inbox) {
        for (const vertex_t v : from_rank) {
          if (levels[v] == kUnset) {
            levels[v] = depth;
            frontier.push_back(v);
          }
        }
      }
      // Global termination: stop when no rank discovered anything.
      const std::uint64_t discovered = comm.allreduce_sum(
          static_cast<std::uint64_t>(frontier.size()));
      if (discovered == 0) break;
    }
    if (comm_stats) (*comm_stats)[me] = comm.stats();
  });
  return levels;
}

}  // namespace kron
