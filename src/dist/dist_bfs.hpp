// Distributed level-synchronous BFS over the in-process runtime.
//
// The distributed counterpart of analytics/bfs.hpp, exercising the
// communication pattern a cluster BFS would use: vertices are partitioned
// cyclically across ranks, each rank expands only the frontier vertices it
// owns (reading only its own adjacency rows), and newly discovered
// vertices are routed to their owners with an all-to-all exchange per
// level.  Under the single-process runtime the graph lives in shared
// memory, but every rank touches only its own partition's rows — the
// access pattern and message volume match the MPI setting (DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "runtime/comm_stats.hpp"

namespace kron {

/// BFS level per vertex (source = 0, unreachable = kUnreachable from
/// analytics/bfs.hpp).  Runs on `ranks` runtime ranks; the result is
/// gathered and identical to sequential bfs_levels().  When `comm_stats`
/// is non-null it receives one CommStats per rank (frontier-exchange
/// volume, barrier waits).
[[nodiscard]] std::vector<std::uint64_t> distributed_bfs_levels(
    const Csr& g, vertex_t source, int ranks, std::vector<CommStats>* comm_stats = nullptr);

}  // namespace kron
