// Distance-based ground truth (Sec. V): hop counts, diameter, eccentricity,
// closeness centrality of C = (A + I_A) ⊗ (B + I_B).
//
// With full self loops in both factors (Def. 9), hop counts obey the
// max-law of Thm. 3:
//
//   hops_C(p, q) = max{ hops_A(i, j), hops_B(k, l) },
//
// which cascades into Cor. 3 (diameter), Cor. 4 (eccentricity) and Thm. 4
// (closeness).  All queries here are answered from factor BFS only — the
// product graph is never built.  Closeness has two evaluators:
//
//   * closeness_naive — the Thm. 4 double sum, O(n_A n_B) per vertex;
//   * closeness_fast  — the paper's sorted/bucketed evaluation: group the
//     two hop rows by hop value and combine per distance class,
//     O(n_A + n_B + h*) per vertex after the BFS (the paper states
//     O(r n_A log n_A + r² h*) for r vertices via sorting; counting
//     buckets achieve the same factorization without the log).
//
// Thm. 5 / Cor. 5 (A with full loops, B plain undirected) give the ±1
// sandwich used for diameter control; exposed as the *_mixed helpers.
#pragma once

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "util/histogram.hpp"

namespace kron {

/// Thm. 3 combination.
[[nodiscard]] constexpr std::uint64_t hops_product(std::uint64_t h_a,
                                                   std::uint64_t h_b) noexcept {
  return h_a > h_b ? h_a : h_b;
}

/// Thm. 5 sandwich for the mixed regime (A full loops, B loop-free).
struct HopBounds {
  std::uint64_t lower = 0;
  std::uint64_t upper = 0;
};
[[nodiscard]] constexpr HopBounds hops_product_mixed(std::uint64_t h_a,
                                                     std::uint64_t h_b) noexcept {
  const std::uint64_t m = hops_product(h_a, h_b);
  return {m, m + 1};
}

/// Max-combination of two value histograms: the distribution of
/// max(X_A, X_B) when X_A, X_B are drawn from all pairs — the Fig. 1
/// eccentricity distribution of C from the factor distributions alone.
[[nodiscard]] Histogram max_combine(const Histogram& a, const Histogram& b);

class DistanceGroundTruth {
 public:
  /// Factors are reduced to simple parts and a full self loop is added at
  /// every vertex (the Thm. 3 regime).  Both factors must be connected and
  /// undirected; throws otherwise.
  DistanceGroundTruth(const EdgeList& a, const EdgeList& b);

  [[nodiscard]] vertex_t num_vertices() const noexcept {
    return a_.num_vertices() * b_.num_vertices();
  }

  /// hops_C(p, q) per Thm. 3.  Runs (cached) factor BFS — O(|E_A| + |E_B|)
  /// first touch per factor row, O(1) after.
  [[nodiscard]] std::uint64_t hops(vertex_t p, vertex_t q) const;

  /// ε_C(p) per Cor. 4 — O(1) after construction.
  [[nodiscard]] std::uint64_t eccentricity(vertex_t p) const;

  /// diam(G_C) per Cor. 3.
  [[nodiscard]] std::uint64_t diameter() const;

  /// ζ_C(p) per Thm. 4, naive double sum (reference).
  [[nodiscard]] double closeness_naive(vertex_t p) const;

  /// ζ_C(p) by per-distance-class bucket combination (fast path).
  [[nodiscard]] double closeness_fast(vertex_t p) const;

  /// The paper's r² scheme (Sec. V-B): pick r_A factor-A vertices and r_B
  /// factor-B vertices, pay one BFS + one bucketing per *factor* row, and
  /// evaluate ζ_C at all r_A·r_B grid vertices gamma(i, k) in O(h*) each —
  /// total O(r(|E| + n) + r² h*) versus O(r² n_A n_B) naively.  Returns
  /// row-major r_A × r_B scores.
  [[nodiscard]] std::vector<double> closeness_grid(const std::vector<vertex_t>& rows_a,
                                                   const std::vector<vertex_t>& rows_b) const;

  /// Full eccentricity distribution of C without materialising it (Fig. 1).
  [[nodiscard]] Histogram eccentricity_histogram() const;

  [[nodiscard]] const std::vector<std::uint64_t>& ecc_a() const noexcept { return ecc_a_; }
  [[nodiscard]] const std::vector<std::uint64_t>& ecc_b() const noexcept { return ecc_b_; }

  /// The loop-full factors (for cross-checks).
  [[nodiscard]] const Csr& factor_a() const noexcept { return a_; }
  [[nodiscard]] const Csr& factor_b() const noexcept { return b_; }

  /// Materialise C = (A+I)⊗(B+I) for cross-checking.
  [[nodiscard]] EdgeList materialize() const;

 private:
  [[nodiscard]] const std::vector<std::uint64_t>& hops_row_a(vertex_t i) const;
  [[nodiscard]] const std::vector<std::uint64_t>& hops_row_b(vertex_t k) const;

  Csr a_;  // simple part + full loops
  Csr b_;
  std::vector<std::uint64_t> ecc_a_;
  std::vector<std::uint64_t> ecc_b_;
  // BFS row caches.  Guarded by rows_mutex_ so concurrent readers (the
  // krond query threads) can share one instance: lookups take a shared
  // lock, a miss upgrades to exclusive for the BFS + insert.  Returned
  // references stay valid across later inserts because unordered_map
  // never invalidates references to existing elements, and entries are
  // never erased.
  mutable std::shared_mutex rows_mutex_;
  mutable std::unordered_map<vertex_t, std::vector<std::uint64_t>> rows_a_;
  mutable std::unordered_map<vertex_t, std::vector<std::uint64_t>> rows_b_;
};

}  // namespace kron
