// Scaling-law coefficients from the paper's theorems.
//
// These are the pure arithmetic pieces of Thm. 1/2 and Cor. 6/7 — the
// factors that sit between a product-graph quantity and the product of the
// corresponding factor quantities:
//
//   η_C(p)   = θ(d_i, d_k) · η_A(i) · η_B(k)            (Thm. 1)
//   ξ_C(p,q) = φ(d_i,d_j,d_k,d_l) · ξ_A(i,j) · ξ_B(k,l)  (Thm. 2)
//   ρ_in(S_C)  ≥ θ(|S_A|, |S_B|) · ρ_in(S_A) ρ_in(S_B)   (Cor. 6)
//   ρ_out(S_C) ≤ (1+3ω) Ω · ρ_out(S_A) ρ_out(S_B)        (Cor. 7)
#pragma once

#include <cstdint>

namespace kron {

/// θ = (x-1)(y-1) / (xy - 1): the controlled vertex-clustering factor of
/// Thm. 1 (x = d_i, y = d_k) and the internal-density factor of Cor. 6
/// (x = |S_A|, y = |S_B|).  For x, y >= 2 it lies in [1/3, 1).
[[nodiscard]] double theta(std::uint64_t x, std::uint64_t y);

/// φ of Thm. 2: (min(d_i,d_j)-1)(min(d_k,d_l)-1) / (min(d_i d_k, d_j d_l)-1).
/// In (0, 1) but *not* bounded away from 0 — the uncontrolled edge law.
[[nodiscard]] double phi(std::uint64_t d_i, std::uint64_t d_j, std::uint64_t d_k,
                         std::uint64_t d_l);

/// ω of Cor. 7: max(m_in(S_A)/m_out(S_A), m_in(S_B)/m_out(S_B)).
[[nodiscard]] double omega(std::uint64_t m_in_a, std::uint64_t m_out_a, std::uint64_t m_in_b,
                           std::uint64_t m_out_b);

/// Ω of Cor. 7: (1 + |S_A||S_B|/(n_A n_B)) / (1 - |S_A||S_B|/(n_A n_B)),
/// slightly above 1 for small communities.
[[nodiscard]] double capital_omega(std::uint64_t size_a, std::uint64_t n_a,
                                   std::uint64_t size_b, std::uint64_t n_b);

/// The paper's Cor. 7 coefficient (1 + 3ω).  Note: expanding Thm. 6
/// term-by-term under the corollary's assumptions (m_out >= |S|,
/// m_in <= ω m_out) yields the provable coefficient (3 + 4ω); we expose
/// both and the benches report which one the data needs (see
/// EXPERIMENTS.md, E5).
[[nodiscard]] double cor7_paper_coefficient(double omega_value);

/// The coefficient that follows from summing the Thm. 6 bound term by term.
[[nodiscard]] double cor7_provable_coefficient(double omega_value);

}  // namespace kron
