// Directed-graph ground truth for Kronecker products.
//
// The library's main formulas target undirected factors (as does the
// paper; its predecessor [11] extends the triangle results to directed and
// labeled graphs).  Some directed ground truth carries over with no extra
// machinery, because Kronecker products act independently on rows and
// columns (Def. 1):
//
//   out-degree:  d⁺_C(p) = d⁺_A(i) · d⁺_B(k)      (row sums multiply)
//   in-degree:   d⁻_C(p) = d⁻_A(i) · d⁻_B(k)      (column sums multiply)
//   reciprocity: C_pq C_qp = (A_ij A_ji)(B_kl B_lk), so the count of
//   *ordered* pairs (p,q) with both arcs present multiplies exactly:
//   r_C = r_A · r_B  (a loop contributes one ordered pair (v,v)).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace kron {

struct DirectedDegrees {
  std::vector<std::uint64_t> out;  ///< d⁺ per vertex
  std::vector<std::uint64_t> in;   ///< d⁻ per vertex
};

/// Out/in degree vectors of a (possibly directed) edge list.
[[nodiscard]] DirectedDegrees directed_degrees(const EdgeList& g);

/// Ground-truth out/in degrees of every vertex of A ⊗ B (O(n_C) time,
/// factor-only input).
[[nodiscard]] DirectedDegrees kronecker_directed_degrees(const EdgeList& a,
                                                         const EdgeList& b);

/// Number of ordered pairs (i, j) with A_ij = A_ji = 1 (a non-loop
/// reciprocated edge contributes 2, a loop contributes 1).
[[nodiscard]] std::uint64_t reciprocal_pair_count(const EdgeList& g);

/// Ground truth: reciprocal pairs of A ⊗ B = product of factor counts.
[[nodiscard]] std::uint64_t kronecker_reciprocal_pairs(const EdgeList& a, const EdgeList& b);

}  // namespace kron
