// Connectivity ground truth for Kronecker products (Weichsel's theorem,
// the paper's foundational reference [1]).
//
// For connected factors X, Y that each contain an edge, X ⊗ Y is connected
// iff X or Y contains an odd closed walk (is non-bipartite; a self loop
// counts), and splits into exactly two components when both are bipartite.
// This generalises to arbitrary factors by summing over component pairs:
//
//   comps(A ⊗ B) = Σ_{X ∈ comps(A), Y ∈ comps(B)} comps(X ⊗ Y),
//
//   comps(X ⊗ Y) = |V_X||V_Y|  if X or Y has no arcs (all pairs isolated)
//                = 1           if X or Y is non-bipartite
//                = 2           otherwise (Weichsel).
//
// This is why the paper's experiments add full self loops before taking
// products: loops make every factor non-bipartite, so connected factors
// always give a connected C.
#pragma once

#include <cstdint>

#include "graph/csr.hpp"

namespace kron {

/// Exact number of connected components of A ⊗ B, computed from the
/// factors in O(|E_A| + |E_B|) — never touching the product.
[[nodiscard]] std::uint64_t kronecker_num_components(const Csr& a, const Csr& b);

/// Convenience: is A ⊗ B connected?
[[nodiscard]] bool kronecker_is_connected(const Csr& a, const Csr& b);

}  // namespace kron
