// Spectral ground truth for Kronecker products.
//
// eig(A ⊗ B) = { λ μ } (Prop. 1d applied to eigen-decompositions), hence
// ρ(C) = ρ(A) ρ(B), and the k largest eigenvalue magnitudes of C are the
// k largest pairwise products of factor eigenvalue magnitudes — computable
// from the factors' spectra alone.  This implements the paper's Sec. IV-C
// warning quantitatively: "a spectral method can efficiently solve for
// large swathes of the eigenspace of C ... without the algorithm developer
// even realizing it".  bench_spectral demonstrates the exploit and the
// extent to which probabilistic edge rejection (Def. 8) degrades it.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace kron {

/// ρ(A ⊗ B) = ρ(A) ρ(B), each factor radius via power iteration.
[[nodiscard]] double kronecker_spectral_radius(const Csr& a, const Csr& b,
                                               double tolerance = 1e-10,
                                               std::uint64_t max_iterations = 5000);

/// The k largest eigenvalue magnitudes of A ⊗ B from the factors' top-k
/// magnitude lists (largest k products of two sorted lists — a bounded
/// best-first merge).
[[nodiscard]] std::vector<double> kronecker_top_eigenvalue_magnitudes(
    const Csr& a, const Csr& b, std::size_t k, double tolerance = 1e-10,
    std::uint64_t max_iterations = 5000);

/// Largest k products x_i * y_j of two lists sorted in decreasing order
/// (exposed for testing).
[[nodiscard]] std::vector<double> top_k_products(const std::vector<double>& x,
                                                 const std::vector<double>& y, std::size_t k);

}  // namespace kron
