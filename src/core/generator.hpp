// Distributed Kronecker generator (Sec. III, Rem. 1).
//
// SPMD over the in-process runtime (runtime/comm.hpp):
//
//  * 1D scheme (the paper's primary implementation): B is replicated on
//    every rank and the arcs of A are block-partitioned, so rank r
//    generates C_r = A_r ⊗ B and C = Σ_r C_r.  Per-rank storage is
//    O(|E_A|/R + |E_B|), generation time O(|E_A||E_B|/R); at most
//    O(|E_C|^{1/2}) ranks are usable (Rem. 1).
//
//  * 2D scheme (Rem. 1's fix): both factors are partitioned over an
//    R_{1/2} × ⌈R/R_{1/2}⌉ grid; rank r generates the (A-part, B-part)
//    cells dealt to it, so per-rank factor storage also shrinks and weak
//    scaling extends to O(|E_C|) ranks.
//
//  * Storage shuffle (optional): generated edges are routed to the rank
//    that owns them under a hash map ("the processor responsible for its
//    storage as determined by some mapping scheme"), decoupling generation
//    from storage exactly as the paper prescribes.
#pragma once

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "runtime/comm_stats.hpp"
#include "runtime/transport.hpp"

namespace kron {

class FaultPlan;

enum class PartitionScheme {
  k1D,  ///< distribute A, replicate B (paper's implementation)
  k2D,  ///< distribute both factors on the Rem. 1 grid
};

/// How generated edges map to storage ranks.
enum class OwnerMap {
  kHash,    ///< hash(u,v) % R — uniform by construction (the paper's scheme)
  kModulo,  ///< u % R — simple but skewed by hub rows (ablation comparator)
};

/// Where each rank's stored arcs end up.
enum class SinkMode {
  kMemory,  ///< keep arcs in RAM, returned via GeneratorResult::stored_per_rank
  kShards,  ///< spill sorted compressed shards to disk (graph/io.hpp) — the
            ///< out-of-core path: per-rank memory stays at one shard window,
            ///< and `merge_shards` (graph/external_merge.hpp) canonicalises
            ///< the shard directory into the product edge list
};

/// How generated edges travel to their owners.
enum class ExchangeMode {
  kBulkSynchronous,  ///< buffer everything, one alltoallv
  kAsync,            ///< stream chunks with asynchronous sends as they are
                     ///< generated, receivers drain concurrently — the
                     ///< HavoqGT-style "asynchronous" mode of the title
};

struct GeneratorConfig {
  int ranks = 1;
  /// Runtime substrate the ranks execute on: threads of this process
  /// (default) or forked child processes over Unix-domain sockets
  /// (RuntimeOptions::backend).  The generated graph is bit-identical
  /// across backends; deliberately excluded from the checkpoint config
  /// hash so a crashed run may resume under either backend.
  CommBackend backend = CommBackend::kThreads;
  PartitionScheme scheme = PartitionScheme::k1D;
  /// Route generated edges to storage owners; when false each rank keeps
  /// what it generates.
  bool shuffle_to_owner = false;
  OwnerMap owner_map = OwnerMap::kHash;
  ExchangeMode exchange = ExchangeMode::kBulkSynchronous;
  /// Arcs per asynchronous message (kAsync only).
  std::uint64_t async_chunk = 4096;
  /// Maximum queued messages per rank mailbox (0 = unbounded).  A nonzero
  /// bound makes the kAsync exchange backpressured: senders block when a
  /// receiver's inbox is full, so per-rank in-flight memory is capped at
  /// capacity * async_chunk arcs regardless of production skew.
  std::size_t channel_capacity = 0;
  std::uint64_t owner_seed = 0;
  /// Add full self loops to both factors before the product, producing
  /// (A + I_A) ⊗ (B + I_B).
  bool add_full_loops = false;

  // --- out-of-core shard sink (DESIGN.md §15) -----------------------------

  /// Arc sink.  With SinkMode::kShards each rank spills its stored arcs as
  /// sorted delta-varint shards into `shard_dir` (files
  /// `rank<r>-<seq>.kshard`), holding at most one `shard_mb` window in
  /// memory; `stored_per_rank` comes back empty and the canonical edge
  /// list is produced by `merge_shards` over the directory.  Requires the
  /// product to fit 64-bit packed keys (n_C <= 2^32) and is mutually
  /// exclusive with checkpointing, whose resume protocol snapshots the
  /// in-memory stored arcs the sink exists to avoid.
  SinkMode sink = SinkMode::kMemory;
  /// Shard output directory (created if absent; required for kShards).
  std::filesystem::path shard_dir;
  /// In-memory spill window per rank, in MiB of raw arcs; each window
  /// becomes one sorted shard.
  std::uint64_t shard_mb = 64;

  // --- fault injection & recovery (DESIGN.md §12) -------------------------

  /// Deterministic fault schedule (runtime/faults.hpp).  Message-fault
  /// rules switch the runtime's point-to-point traffic to the reliable
  /// seq/ack/retransmit protocol; crash events make the named rank throw
  /// RankCrashError at the named production-chunk boundary (catch it and
  /// re-run with `resume = true` on the *same plan instance* to model a
  /// restarted rank — each crash fires at most once per instance).
  std::shared_ptr<const FaultPlan> fault_plan;
  /// Initial retransmission timeout for unacked sends under a fault plan;
  /// doubles per retry (bounded exponential backoff).
  std::chrono::microseconds retry_timeout{2000};
  /// Retransmissions per message before the send fails with CommFaultError.
  int max_retries = 16;

  /// Checkpoint directory (empty = checkpointing off).  With a directory
  /// set, production is split into epochs of `checkpoint_every` chunks;
  /// at every epoch boundary each rank snapshots its stored arcs
  /// (graph/io.hpp ShardSnapshot) and rank 0 publishes the manifest
  /// (core/checkpoint.hpp), both atomically.
  std::filesystem::path checkpoint_dir;
  /// Production chunks per checkpoint epoch (must be positive when
  /// checkpointing).
  std::uint64_t checkpoint_every = 8;
  /// Resume from `checkpoint_dir`: completed epochs are skipped and each
  /// rank's stored arcs are restored from its shard.  A directory without
  /// a manifest starts fresh; a checkpoint from a different configuration
  /// is rejected (config-hash mismatch).
  bool resume = false;
};

struct GeneratorResult {
  vertex_t num_vertices = 0;                       ///< n_C
  std::vector<std::vector<Edge>> stored_per_rank;  ///< arcs held by each rank at the end
  std::vector<std::uint64_t> generated_per_rank;   ///< arcs produced by each rank
  std::vector<double> rank_seconds;                ///< per-rank generation wall time
  std::vector<CommStats> comm_per_rank;            ///< per-rank communication telemetry
  std::vector<ShardIoStats> shard_io_per_rank;     ///< shard sink I/O (zero for kMemory)

  [[nodiscard]] std::uint64_t total_arcs() const;

  /// Concatenate all per-rank arcs into one canonical edge list (the graph
  /// C).  Under SinkMode::kShards the arcs live on disk and this returns an
  /// empty list — run `merge_shards` on the shard directory instead.
  [[nodiscard]] EdgeList gather() const;
};

/// Run the distributed generation of C = A ⊗ B (factors given as edge
/// lists).  The result is identical — as a canonical edge list — for every
/// rank count and scheme; only the distribution of arcs across ranks
/// differs.
[[nodiscard]] GeneratorResult generate_distributed(const EdgeList& a, const EdgeList& b,
                                                   const GeneratorConfig& config);

}  // namespace kron
