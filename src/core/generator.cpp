#include "core/generator.hpp"

#include <span>
#include <stdexcept>

#include "core/index.hpp"
#include "runtime/comm.hpp"
#include "runtime/partition.hpp"
#include "util/timer.hpp"

namespace kron {
namespace {

// Message tags for the asynchronous exchange.
constexpr int kTagEdges = 1;
constexpr int kTagDone = 2;

void generate_cell(std::span<const Edge> a_arcs, std::span<const Edge> b_arcs, vertex_t n_b,
                   std::vector<Edge>& out) {
  for (const Edge& ea : a_arcs)
    for (const Edge& eb : b_arcs)
      out.push_back({gamma(ea.u, eb.u, n_b), gamma(ea.v, eb.v, n_b)});
}

std::uint64_t owner_of(const Edge& e, const GeneratorConfig& config, std::uint64_t ranks) {
  return config.owner_map == OwnerMap::kHash
             ? edge_storage_owner(e.u, e.v, ranks, config.owner_seed)
             : e.u % ranks;
}

/// Streaming shuffle (ExchangeMode::kAsync): arcs are produced by `produce`
/// (which invokes its callback once per arc), buffered per destination, and
/// sent as chunks the moment a buffer fills; incoming chunks are drained
/// opportunistically on a production cadence *independent of flushes* — a
/// rank whose own buffers rarely fill (small production share, skewed
/// owner map) must still keep consuming, or its inbox grows without bound
/// and bounded channels deadlock.  Termination: every rank sends kTagDone
/// to all ranks after its last flush; since each mailbox preserves a
/// sender's ordering, receiving R kTagDone messages guarantees all data has
/// arrived.
template <typename Produce>
void async_exchange(Comm& comm, const GeneratorConfig& config, std::uint64_t ranks,
                    Produce&& produce, std::vector<Edge>& stored,
                    std::uint64_t& generated_count) {
  std::vector<std::vector<Edge>> buffers(ranks);
  int done_seen = 0;

  const auto drain = [&](bool block) {
    while (true) {
      std::optional<RankMessage> message =
          block ? std::optional<RankMessage>(comm.recv()) : comm.try_recv();
      if (!message) return;
      if (message->tag == kTagDone) {
        ++done_seen;
      } else {
        const auto arcs = Comm::decode<Edge>(*message);
        stored.insert(stored.end(), arcs.begin(), arcs.end());
      }
      if (block) return;  // blocking mode consumes exactly one message
    }
  };

  const auto flush = [&](std::uint64_t dest) {
    auto& buffer = buffers[dest];
    if (buffer.empty()) return;
    if (dest == static_cast<std::uint64_t>(comm.rank())) {
      stored.insert(stored.end(), buffer.begin(), buffer.end());
    } else {
      comm.send_values<Edge>(static_cast<int>(dest), kTagEdges, buffer);
    }
    buffer.clear();
  };

  std::uint64_t produced_since_drain = 0;
  produce([&](const Edge& e) {
    ++generated_count;
    const std::uint64_t dest = owner_of(e, config, ranks);
    buffers[dest].push_back(e);
    if (buffers[dest].size() >= config.async_chunk) flush(dest);
    if (++produced_since_drain >= config.async_chunk) {
      produced_since_drain = 0;
      drain(/*block=*/false);
    }
  });
  for (std::uint64_t dest = 0; dest < ranks; ++dest) flush(dest);
  for (std::uint64_t dest = 0; dest < ranks; ++dest)
    comm.send(static_cast<int>(dest), kTagDone, {});

  // Drain until every rank's end-of-stream marker (including our own) has
  // been observed.
  while (done_seen < static_cast<int>(ranks)) drain(/*block=*/true);
}

}  // namespace

std::uint64_t GeneratorResult::total_arcs() const {
  std::uint64_t total = 0;
  for (const auto& arcs : stored_per_rank) total += arcs.size();
  return total;
}

EdgeList GeneratorResult::gather() const {
  std::vector<Edge> all;
  all.reserve(total_arcs());
  for (const auto& arcs : stored_per_rank) all.insert(all.end(), arcs.begin(), arcs.end());
  EdgeList c(num_vertices, std::move(all));
  c.sort_dedupe();
  return c;
}

GeneratorResult generate_distributed(const EdgeList& a_in, const EdgeList& b_in,
                                     const GeneratorConfig& config) {
  if (config.ranks < 1) throw std::invalid_argument("generate_distributed: ranks < 1");
  if (config.async_chunk == 0)
    throw std::invalid_argument("generate_distributed: async_chunk must be positive");

  EdgeList a = a_in;
  EdgeList b = b_in;
  if (config.add_full_loops) {
    a.strip_loops();
    a.add_full_loops();
    b.strip_loops();
    b.add_full_loops();
  }

  const vertex_t n_b = b.num_vertices();
  const auto ranks = static_cast<std::uint64_t>(config.ranks);

  GeneratorResult result;
  result.num_vertices = a.num_vertices() * n_b;
  result.stored_per_rank.resize(ranks);
  result.generated_per_rank.assign(ranks, 0);
  result.rank_seconds.assign(ranks, 0.0);
  result.comm_per_rank.assign(ranks, CommStats{});

  const Grid2D grid(ranks);

  const RuntimeOptions runtime_options{config.ranks, config.channel_capacity};
  Runtime::run(runtime_options, [&](Comm& comm) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    const Timer timer;

    // Arc production for this rank under the active partition scheme.
    const auto produce = [&](auto&& emit) {
      if (config.scheme == PartitionScheme::k1D) {
        const IndexRange range = block_range(a.num_arcs(), ranks, r);
        for (const Edge& ea : a.edges().subspan(range.begin, range.size()))
          for (const Edge& eb : b.edges())
            emit(Edge{gamma(ea.u, eb.u, n_b), gamma(ea.v, eb.v, n_b)});
      } else {
        for (const auto& [a_part, b_part] : grid.cells_of(r)) {
          const IndexRange ra = block_range(a.num_arcs(), grid.parts_a(), a_part);
          const IndexRange rb = block_range(b.num_arcs(), grid.parts_b(), b_part);
          for (const Edge& ea : a.edges().subspan(ra.begin, ra.size()))
            for (const Edge& eb : b.edges().subspan(rb.begin, rb.size()))
              emit(Edge{gamma(ea.u, eb.u, n_b), gamma(ea.v, eb.v, n_b)});
        }
      }
    };

    if (config.shuffle_to_owner && ranks > 1 && config.exchange == ExchangeMode::kAsync) {
      async_exchange(comm, config, ranks, produce, result.stored_per_rank[r],
                     result.generated_per_rank[r]);
    } else if (config.shuffle_to_owner && ranks > 1) {
      // Bulk-synchronous: buffer everything, one all-to-all.
      std::vector<std::vector<Edge>> outbox(ranks);
      std::uint64_t generated = 0;
      produce([&](const Edge& e) {
        ++generated;
        outbox[owner_of(e, config, ranks)].push_back(e);
      });
      result.generated_per_rank[r] = generated;
      auto inbox = comm.alltoallv(std::move(outbox));
      std::vector<Edge>& stored = result.stored_per_rank[r];
      for (auto& from_rank : inbox) {
        stored.insert(stored.end(), from_rank.begin(), from_rank.end());
        from_rank.clear();
      }
    } else {
      // No shuffle: keep what we generate.
      std::vector<Edge> generated;
      if (config.scheme == PartitionScheme::k1D) {
        const IndexRange range = block_range(a.num_arcs(), ranks, r);
        generated.reserve(range.size() * b.num_arcs());
        generate_cell(a.edges().subspan(range.begin, range.size()), b.edges(), n_b,
                      generated);
      } else {
        for (const auto& [a_part, b_part] : grid.cells_of(r)) {
          const IndexRange ra = block_range(a.num_arcs(), grid.parts_a(), a_part);
          const IndexRange rb = block_range(b.num_arcs(), grid.parts_b(), b_part);
          generate_cell(a.edges().subspan(ra.begin, ra.size()),
                        b.edges().subspan(rb.begin, rb.size()), n_b, generated);
        }
      }
      result.generated_per_rank[r] = generated.size();
      result.stored_per_rank[r] = std::move(generated);
    }
    result.rank_seconds[r] = timer.seconds();
    result.comm_per_rank[r] = comm.stats();
  });

  return result;
}

}  // namespace kron
