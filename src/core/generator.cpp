#include "core/generator.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>
#include <optional>
#include <span>
#include <stdexcept>

#include "core/checkpoint.hpp"
#include "graph/io.hpp"
#include "graph/shard_codec.hpp"
#include "graph/sort.hpp"
#include "runtime/comm.hpp"
#include "runtime/faults.hpp"
#include "runtime/partition.hpp"
#include "util/overflow.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace kron {
namespace {

// Message tags for the asynchronous exchange.
constexpr int kTagEdges = 1;
constexpr int kTagDone = 2;

/// Blocked cell kernel: the γ maps for one A-arc share their bases
/// (γ(i,k) = i·n_B + k), so `ea.u * n_b` / `ea.v * n_b` are hoisted out of
/// the inner loop and the output is reserved up front (overflow-guarded —
/// a product too large for size_t skips the hint rather than wrapping).
void generate_cell(std::span<const Edge> a_arcs, std::span<const Edge> b_arcs, vertex_t n_b,
                   std::vector<Edge>& out) {
  const std::size_t n_a_arcs = a_arcs.size();
  const std::size_t n_b_arcs = b_arcs.size();
  if (n_b_arcs != 0 &&
      n_a_arcs <= (std::numeric_limits<std::size_t>::max() - out.size()) / n_b_arcs)
    out.reserve(out.size() + n_a_arcs * n_b_arcs);
  for (const Edge& ea : a_arcs) {
    const vertex_t base_u = ea.u * n_b;
    const vertex_t base_v = ea.v * n_b;
    for (const Edge& eb : b_arcs) out.push_back({base_u + eb.u, base_v + eb.v});
  }
}

/// One (A-part × B-part) cell of a rank's production, with the flat arc
/// index where it starts in the rank's production sequence.
struct ProductionCell {
  std::span<const Edge> a;
  std::span<const Edge> b;
  std::uint64_t arcs_before = 0;
};

/// A rank's production as a *randomly addressable* sequence of fixed-size
/// chunks: chunk c covers flat arc indices [c·S, (c+1)·S) of the
/// concatenated cell products, in exactly the order the streaming producer
/// has always emitted them (cells in grid deal order, A-arc major within a
/// cell).  Random access is what makes checkpoint/resume cheap — a resumed
/// run seeks past every completed chunk in O(1) instead of regenerating
/// and discarding its arcs — and gives crash injection an exact, scheme-
/// independent notion of "production chunk boundary c".
class RankProduction {
 public:
  RankProduction(const EdgeList& a, const EdgeList& b, vertex_t n_b, const Grid2D& grid,
                 const GeneratorConfig& config, std::uint64_t ranks, std::uint64_t r,
                 std::uint64_t chunk_size)
      : n_b_(n_b), chunk_size_(chunk_size) {
    const auto add_cell = [&](std::span<const Edge> sa, std::span<const Edge> sb) {
      std::uint64_t arcs = 0;
      try {
        arcs = checked_mul(sa.size(), sb.size());
        if (arcs == 0) return;  // empty cells produce nothing
        cells_.push_back({sa, sb, total_arcs_});
        total_arcs_ = checked_add(total_arcs_, arcs);
      } catch (const std::overflow_error&) {
        throw std::overflow_error(
            "generate_distributed: rank " + std::to_string(r) + " arc count " +
            std::to_string(sa.size()) + " * " + std::to_string(sb.size()) +
            " overflows 64 bits; use more ranks or smaller factors");
      }
    };
    if (config.scheme == PartitionScheme::k1D) {
      const IndexRange range = block_range(a.num_arcs(), ranks, r);
      add_cell(a.edges().subspan(range.begin, range.size()), b.edges());
    } else {
      for (const auto& [a_part, b_part] : grid.cells_of(r)) {
        const IndexRange ra = block_range(a.num_arcs(), grid.parts_a(), a_part);
        const IndexRange rb = block_range(b.num_arcs(), grid.parts_b(), b_part);
        add_cell(a.edges().subspan(ra.begin, ra.size()),
                 b.edges().subspan(rb.begin, rb.size()));
      }
    }
  }

  [[nodiscard]] std::uint64_t total_arcs() const noexcept { return total_arcs_; }

  [[nodiscard]] std::uint64_t num_chunks() const noexcept {
    return total_arcs_ == 0 ? 0 : (total_arcs_ - 1) / chunk_size_ + 1;
  }

  /// Fill `out` with chunk `c`'s arcs.  Chunk content depends only on
  /// (factors, scheme, rank, chunk_size, c) — never on which run or epoch
  /// produces it — which is what makes resumed runs bit-compatible.
  void chunk_arcs(std::uint64_t c, std::vector<Edge>& out) const {
    out.clear();
    std::uint64_t t = c * chunk_size_;
    std::uint64_t remaining = std::min(chunk_size_, total_arcs_ - t);
    out.reserve(remaining);
    // Seek: last cell starting at or before t, then divide into its rows.
    auto it = std::upper_bound(cells_.begin(), cells_.end(), t,
                               [](std::uint64_t value, const ProductionCell& cell) {
                                 return value < cell.arcs_before;
                               });
    std::size_t cell = static_cast<std::size_t>(it - cells_.begin()) - 1;
    while (remaining != 0) {
      const ProductionCell& pc = cells_[cell];
      const std::uint64_t nb = pc.b.size();
      const std::uint64_t local = t - pc.arcs_before;
      std::uint64_t ai = local / nb;
      std::uint64_t bi = local % nb;
      while (ai < pc.a.size() && remaining != 0) {
        const Edge& ea = pc.a[ai];
        const vertex_t base_u = ea.u * n_b_;
        const vertex_t base_v = ea.v * n_b_;
        for (; bi < nb && remaining != 0; ++bi, --remaining, ++t)
          out.push_back({base_u + pc.b[bi].u, base_v + pc.b[bi].v});
        if (bi == nb) {
          bi = 0;
          ++ai;
        }
      }
      ++cell;
    }
  }

 private:
  std::vector<ProductionCell> cells_;
  vertex_t n_b_;
  std::uint64_t chunk_size_;
  std::uint64_t total_arcs_ = 0;
};

/// Out-of-core arc sink for one rank (SinkMode::kShards): arcs accumulate
/// in a fixed window; a full window is sorted, deduplicated (within the
/// window only — the external merge owns global dedupe) and published as
/// one compressed `.kshard` file.  Peak memory is the window, never the
/// rank's whole stored set.
class ShardSink {
 public:
  ShardSink(std::filesystem::path dir, vertex_t num_vertices, std::uint64_t rank,
            std::uint64_t arcs_per_shard, ShardIoStats* stats)
      : dir_(std::move(dir)),
        num_vertices_(num_vertices),
        rank_(rank),
        arcs_per_shard_(std::max<std::uint64_t>(arcs_per_shard, 1)),
        stats_(stats) {}

  void append(std::span<const Edge> arcs) {
    while (!arcs.empty()) {
      const std::uint64_t room = arcs_per_shard_ - window_.size();
      const std::size_t take = std::min<std::size_t>(arcs.size(), room);
      window_.insert(window_.end(), arcs.begin(),
                     arcs.begin() + static_cast<std::ptrdiff_t>(take));
      arcs = arcs.subspan(take);
      if (window_.size() >= arcs_per_shard_) spill();
    }
  }

  /// Publish the final partial window (idempotent).
  void finish() {
    if (!window_.empty()) spill();
    window_.shrink_to_fit();
  }

 private:
  void spill() {
    TRACE_SPAN("generate.shard_spill");
    sort_dedupe_edges(window_);
    const std::filesystem::path path =
        dir_ / ("rank" + std::to_string(rank_) + "-" + std::to_string(seq_++) + ".kshard");
    ArcShardWriter writer(path, num_vertices_, 0, stats_);
    writer.append(window_);
    (void)writer.finish();
    window_.clear();
  }

  std::filesystem::path dir_;
  vertex_t num_vertices_;
  std::uint64_t rank_;
  std::uint64_t arcs_per_shard_;
  ShardIoStats* stats_;
  std::vector<Edge> window_;
  std::uint64_t seq_ = 0;
};

/// ShardIoStats across the rank-result byte blob (same fixed-width framing
/// as append_comm_stats; see runtime/comm_stats.hpp).
void append_shard_io_stats(std::vector<std::byte>& out, const ShardIoStats& io) {
  detail::append_stats_u64(out, io.shards_written);
  detail::append_stats_u64(out, io.arcs_written);
  detail::append_stats_u64(out, io.bytes_written);
  detail::append_stats_u64(out, io.shards_opened);
  detail::append_stats_u64(out, io.arcs_read);
  detail::append_stats_u64(out, io.bytes_read);
  const auto bits = [](double value) {
    std::uint64_t b = 0;
    std::memcpy(&b, &value, sizeof(b));
    return b;
  };
  detail::append_stats_u64(out, bits(io.write_seconds));
  detail::append_stats_u64(out, bits(io.read_seconds));
}

ShardIoStats read_shard_io_stats(const std::byte*& cursor, const std::byte* end) {
  ShardIoStats io;
  io.shards_written = detail::read_stats_u64(cursor, end);
  io.arcs_written = detail::read_stats_u64(cursor, end);
  io.bytes_written = detail::read_stats_u64(cursor, end);
  io.shards_opened = detail::read_stats_u64(cursor, end);
  io.arcs_read = detail::read_stats_u64(cursor, end);
  io.bytes_read = detail::read_stats_u64(cursor, end);
  const auto unbits = [](std::uint64_t b) {
    double value = 0;
    std::memcpy(&value, &b, sizeof(value));
    return value;
  };
  io.write_seconds = unbits(detail::read_stats_u64(cursor, end));
  io.read_seconds = unbits(detail::read_stats_u64(cursor, end));
  return io;
}

/// Storage owners for a whole chunk at once: the owner-map branch is taken
/// once per chunk, and the hash runs in a tight loop over the batch.
void owners_of_chunk(std::span<const Edge> arcs, const GeneratorConfig& config,
                     std::uint64_t ranks, std::vector<std::uint64_t>& owners) {
  owners.resize(arcs.size());
  if (config.owner_map == OwnerMap::kHash) {
    for (std::size_t i = 0; i < arcs.size(); ++i)
      owners[i] = edge_storage_owner(arcs[i].u, arcs[i].v, ranks, config.owner_seed);
  } else {
    for (std::size_t i = 0; i < arcs.size(); ++i) owners[i] = arcs[i].u % ranks;
  }
}

/// This rank's expected stored-arc share (reserve hint for the receive
/// side): the hash owner map spreads |E_A||E_B| arcs ~uniformly.  Returns
/// 0 — no hint — when the product overflows.
std::uint64_t expected_stored_arcs(const EdgeList& a, const EdgeList& b, std::uint64_t ranks) {
  const std::uint64_t arcs_a = a.num_arcs();
  const std::uint64_t arcs_b = b.num_arcs();
  if (arcs_b != 0 && arcs_a > std::numeric_limits<std::uint64_t>::max() / arcs_b) return 0;
  return arcs_a * arcs_b / ranks;
}

/// One epoch of the streaming shuffle (ExchangeMode::kAsync): arcs are
/// produced in chunks, routed per chunk (batched owner hashing), buffered
/// per destination, and sent the moment a buffer fills; incoming chunks are
/// drained opportunistically on a production cadence *independent of
/// flushes* — a rank whose own buffers rarely fill (small production share,
/// skewed owner map) must still keep consuming, or its inbox grows without
/// bound and bounded channels deadlock.  Termination: every rank sends
/// kTagDone to all ranks after its last flush of the epoch; since each
/// mailbox preserves a sender's ordering (the reliable layer additionally
/// re-sequences faulted deliveries), receiving R kTagDone messages
/// guarantees all of the epoch's data has arrived.
template <typename Produce, typename Store>
void async_exchange_epoch(Comm& comm, const GeneratorConfig& config, std::uint64_t ranks,
                          const Produce& produce, const Store& store) {
  TRACE_SPAN("exchange.async");
  std::vector<std::vector<Edge>> buffers(ranks);
  for (auto& buffer : buffers) buffer.reserve(config.async_chunk);
  std::vector<std::uint64_t> owners;
  int done_seen = 0;

  const auto drain = [&](bool block) {
    TRACE_SPAN("exchange.drain");
    while (true) {
      std::optional<RankMessage> message =
          block ? std::optional<RankMessage>(comm.recv()) : comm.try_recv();
      if (!message) return;
      TRACE_COUNTER_ADD("exchange.messages_drained", 1);
      if (message->tag == kTagDone) {
        ++done_seen;
      } else {
        const auto arcs = Comm::decode<Edge>(*message);
        store(std::span<const Edge>(arcs));
      }
      if (block) return;  // blocking mode consumes exactly one message
    }
  };

  const auto flush = [&](std::uint64_t dest) {
    auto& buffer = buffers[dest];
    if (buffer.empty()) return;
    TRACE_SPAN("exchange.flush");
    TRACE_COUNTER_ADD("exchange.chunks_flushed", 1);
    if (dest == static_cast<std::uint64_t>(comm.rank())) {
      store(std::span<const Edge>(buffer));
    } else {
      comm.send_values<Edge>(static_cast<int>(dest), kTagEdges, buffer);
    }
    buffer.clear();
  };

  produce([&](std::span<const Edge> arcs) {
    owners_of_chunk(arcs, config, ranks, owners);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      auto& buffer = buffers[owners[i]];
      buffer.push_back(arcs[i]);
      if (buffer.size() >= config.async_chunk) flush(owners[i]);
    }
    // Production chunks hold async_chunk arcs, so one opportunistic drain
    // per chunk preserves the seed's every-async_chunk-arcs cadence.
    drain(/*block=*/false);
  });
  for (std::uint64_t dest = 0; dest < ranks; ++dest) flush(dest);
  for (std::uint64_t dest = 0; dest < ranks; ++dest)
    comm.send(static_cast<int>(dest), kTagDone, {});

  // Drain until every rank's end-of-epoch marker (including our own) has
  // been observed.
  while (done_seen < static_cast<int>(ranks)) drain(/*block=*/true);
}

}  // namespace

std::uint64_t GeneratorResult::total_arcs() const {
  std::uint64_t total = 0;
  for (const auto& arcs : stored_per_rank) total += arcs.size();
  return total;
}

EdgeList GeneratorResult::gather() const {
  TRACE_SPAN("generate.gather");
  std::vector<Edge> all;
  all.reserve(total_arcs());
  for (const auto& arcs : stored_per_rank) all.insert(all.end(), arcs.begin(), arcs.end());
  EdgeList c(num_vertices, std::move(all));
  c.sort_dedupe();
  return c;
}

GeneratorResult generate_distributed(const EdgeList& a_in, const EdgeList& b_in,
                                     const GeneratorConfig& config) {
  if (config.ranks < 1) throw std::invalid_argument("generate_distributed: ranks < 1");
  if (config.async_chunk == 0)
    throw std::invalid_argument("generate_distributed: async_chunk must be positive");
  const bool checkpointing = !config.checkpoint_dir.empty();
  if (checkpointing && config.checkpoint_every == 0)
    throw std::invalid_argument(
        "generate_distributed: checkpoint_every must be positive when a checkpoint "
        "directory is set");
  const bool sharding = config.sink == SinkMode::kShards;
  if (sharding && config.shard_dir.empty())
    throw std::invalid_argument(
        "generate_distributed: SinkMode::kShards requires shard_dir to be set");
  if (sharding && config.shard_mb == 0)
    throw std::invalid_argument("generate_distributed: shard_mb must be positive");
  if (sharding && checkpointing)
    throw std::invalid_argument(
        "generate_distributed: the shard sink and checkpointing are mutually exclusive — "
        "checkpoint/resume snapshots each rank's in-memory stored arcs, which the shard "
        "sink exists to avoid; the sink's own crash story is re-running the generation "
        "into a fresh shard directory");

  EdgeList a = a_in;
  EdgeList b = b_in;
  if (config.add_full_loops) {
    a.strip_loops();
    a.add_full_loops();
    b.strip_loops();
    b.add_full_loops();
  }

  const vertex_t n_b = b.num_vertices();
  const auto ranks = static_cast<std::uint64_t>(config.ranks);

  GeneratorResult result;
  // Guard the product-vertex count up front: num_vertices = n_A·n_B must
  // not wrap, and once it fits every hoisted γ base (ea.u·n_B with
  // ea.u < n_A) fits too, so the kernels below need no per-arc checks.
  try {
    result.num_vertices = checked_mul(a.num_vertices(), n_b);
  } catch (const std::overflow_error&) {
    throw std::overflow_error(
        "generate_distributed: product vertex count " + std::to_string(a.num_vertices()) +
        " * " + std::to_string(n_b) +
        " overflows vertex_t (64-bit vertex ids); use smaller factors or a lower power");
  }
  result.stored_per_rank.resize(ranks);
  result.generated_per_rank.assign(ranks, 0);
  result.rank_seconds.assign(ranks, 0.0);
  result.comm_per_rank.assign(ranks, CommStats{});
  result.shard_io_per_rank.assign(ranks, ShardIoStats{});

  std::uint64_t arcs_per_shard = 0;
  if (sharding) {
    // The sink packs arcs into 64-bit keys; products beyond 2^32 vertices
    // don't fit and are rejected here, before any rank launches.
    (void)shard::KeyPacker::for_vertices(result.num_vertices);
    arcs_per_shard =
        std::max<std::uint64_t>(1, (config.shard_mb << 20) / sizeof(Edge));
    std::filesystem::create_directories(config.shard_dir);
  }

  const Grid2D grid(ranks);
  const std::uint64_t expected_stored = expected_stored_arcs(a, b, ranks);

  // Checkpoint/resume bookkeeping happens before ranks launch: the config
  // hash pins which run the shards belong to, and a resume restores every
  // rank's stored arcs and the first epoch left to produce.
  std::uint64_t config_hash = 0;
  ResumeState resume_state;
  if (checkpointing) {
    config_hash = generator_config_hash(a, b, config);
    std::filesystem::create_directories(config.checkpoint_dir);
    if (config.resume)
      resume_state = load_resume_state(config.checkpoint_dir, config_hash, ranks,
                                       config.checkpoint_every);
  }
  const std::uint64_t start_epoch = resume_state.start_epoch;
  if (resume_state.shard_arcs.size() < ranks) resume_state.shard_arcs.resize(ranks);

  RuntimeOptions runtime_options;
  runtime_options.ranks = config.ranks;
  runtime_options.backend = config.backend;
  runtime_options.mailbox_capacity = config.channel_capacity;
  runtime_options.fault_plan = config.fault_plan;
  runtime_options.retry_timeout = config.retry_timeout;
  runtime_options.max_retries = config.max_retries;
  const FaultPlan* fault_plan = config.fault_plan.get();

  // The rank body returns everything the parent needs as a flat blob —
  // under CommBackend::kProcs the body runs in a forked child, so writing
  // results through captured references would only touch copy-on-write
  // pages the parent never sees.  Layout:
  //   u64 generated | f64-bits seconds | CommStats | u64 n_arcs | Edge[n_arcs]
  const auto blobs = Runtime::run_gather(runtime_options, [&](Comm& comm) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    // Span and timer open together so the exported per-rank span total
    // tracks rank_seconds (pinned within 5% by the Trace tests).
    TRACE_SPAN("generate.rank");
    const Timer timer;

    std::uint64_t generated = 0;
    std::vector<Edge> stored = std::move(resume_state.shard_arcs[r]);

    // Arc sink: in-memory vector (default) or the out-of-core shard
    // spiller.  Every storage path below lands arcs through `store`.
    ShardIoStats shard_io;
    std::optional<ShardSink> sink;
    if (sharding)
      sink.emplace(config.shard_dir, result.num_vertices, r, arcs_per_shard, &shard_io);
    const auto store = [&](std::span<const Edge> arcs) {
      if (sink) {
        sink->append(arcs);
      } else {
        stored.insert(stored.end(), arcs.begin(), arcs.end());
      }
    };

    const RankProduction production(a, b, n_b, grid, config, ranks, r, config.async_chunk);
    const std::uint64_t my_chunks = production.num_chunks();

    // Epoch structure.  Checkpointing slices the *global* chunk grid into
    // epochs of checkpoint_every chunks (every rank walks the same epoch
    // sequence — exchanges and snapshots are collective); otherwise the
    // whole run is one epoch and nothing below this differs from a
    // checkpoint-free generation.
    std::uint64_t epoch_len = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t num_epochs = 1;
    if (checkpointing) {
      epoch_len = config.checkpoint_every;
      const std::uint64_t max_chunks = comm.allreduce_max(my_chunks);
      num_epochs = max_chunks == 0 ? 0 : (max_chunks - 1) / epoch_len + 1;
    }

    // Produce this rank's chunks with global indices in [first, last),
    // clamped to what the rank actually has; each chunk boundary first
    // consumes any armed crash event for (rank, chunk).
    std::vector<Edge> chunk;
    const auto produce_range = [&](std::uint64_t first, std::uint64_t last,
                                   const auto& emit_chunk) {
      TRACE_SPAN("generate.produce");
      const std::uint64_t end = std::min(last, my_chunks);
      for (std::uint64_t c = std::min(first, end); c < end; ++c) {
        if (fault_plan && fault_plan->consume_crash(comm.rank(), c))
          throw RankCrashError("injected crash: rank " + std::to_string(r) +
                                   " at production chunk " + std::to_string(c),
                               comm.rank(), c);
        production.chunk_arcs(c, chunk);
        generated += chunk.size();
        TRACE_COUNTER_ADD("generate.arcs", chunk.size());
        emit_chunk(std::span<const Edge>(chunk));
      }
    };

    // Snapshot the epoch just completed: quiesce the reliable layer (a
    // rank must not checkpoint with unacked sends in flight), make sure
    // every rank has stored the epoch's arcs, publish the shards, then let
    // rank 0 publish the manifest from the allgathered checksums.
    const auto checkpoint_epoch = [&](std::uint64_t epoch) {
      if (!checkpointing) return;
      TRACE_SPAN("checkpoint.epoch");
      comm.reliable_flush();
      comm.barrier();
      const std::uint64_t produced = std::min(my_chunks, (epoch + 1) * epoch_len);
      write_shard_snapshot(shard_path(config.checkpoint_dir, comm.rank()), config_hash, r,
                           epoch + 1, produced, stored);
      // Manifest record per shard: checksum, arc count, and on-disk byte
      // size — resume verifies all three against the files it finds.
      const std::uint64_t record[3] = {
          arc_set_checksum(stored), stored.size(),
          static_cast<std::uint64_t>(
              std::filesystem::file_size(shard_path(config.checkpoint_dir, comm.rank())))};
      const auto records =
          comm.allgather_values<std::uint64_t>(std::span<const std::uint64_t>(record, 3));
      if (r == 0) {
        CheckpointManifest manifest;
        manifest.config_hash = config_hash;
        manifest.ranks = ranks;
        manifest.completed_epochs = epoch + 1;
        manifest.checkpoint_every = config.checkpoint_every;
        manifest.shard_checksums.reserve(ranks);
        for (const auto& one : records) {
          manifest.shard_checksums.push_back(one.at(0));
          manifest.shard_arc_counts.push_back(one.at(1));
          manifest.shard_bytes.push_back(one.at(2));
        }
        write_manifest(config.checkpoint_dir, manifest);
      }
      // No rank runs ahead into the next epoch before the manifest is
      // durable — shards may lead the manifest by at most one epoch, which
      // resume tolerates (the replayed epoch deduplicates in gather()).
      comm.barrier();
    };

    // Chunk range of one epoch (saturating: the single checkpoint-free
    // epoch covers everything).
    const auto epoch_chunks = [&](std::uint64_t epoch) {
      const std::uint64_t first = epoch * epoch_len;  // epoch 0 when len is 2^64-1
      const std::uint64_t last =
          epoch_len > std::numeric_limits<std::uint64_t>::max() - first
              ? std::numeric_limits<std::uint64_t>::max()
              : first + epoch_len;
      return std::pair<std::uint64_t, std::uint64_t>(first, last);
    };

    if (config.shuffle_to_owner && ranks > 1 && config.exchange == ExchangeMode::kAsync) {
      if (!sink) stored.reserve(std::max<std::uint64_t>(expected_stored, stored.size()));
      for (std::uint64_t epoch = start_epoch; epoch < num_epochs; ++epoch) {
        const auto [first, last] = epoch_chunks(epoch);
        async_exchange_epoch(
            comm, config, ranks,
            [&](const auto& emit) { produce_range(first, last, emit); }, store);
        checkpoint_epoch(epoch);
      }
    } else if (config.shuffle_to_owner && ranks > 1) {
      // Bulk-synchronous: buffer the epoch, one all-to-all per epoch (a
      // single alltoallv for the whole run when not checkpointing).
      for (std::uint64_t epoch = start_epoch; epoch < num_epochs; ++epoch) {
        const auto [first, last] = epoch_chunks(epoch);
        TRACE_SPAN("exchange.bulk");
        std::vector<std::vector<Edge>> outbox(ranks);
        for (auto& to_rank : outbox) to_rank.reserve(expected_stored / ranks);
        std::vector<std::uint64_t> owners;
        produce_range(first, last, [&](std::span<const Edge> arcs) {
          owners_of_chunk(arcs, config, ranks, owners);
          for (std::size_t i = 0; i < arcs.size(); ++i) outbox[owners[i]].push_back(arcs[i]);
        });
        auto inbox = comm.alltoallv(std::move(outbox));
        if (!sink) {
          std::size_t incoming = 0;
          for (const auto& from_rank : inbox) incoming += from_rank.size();
          stored.reserve(stored.size() + incoming);
        }
        for (auto& from_rank : inbox) {
          store(std::span<const Edge>(from_rank));
          from_rank.clear();
        }
        checkpoint_epoch(epoch);
      }
    } else if (!checkpointing && fault_plan == nullptr && !sharding) {
      // No shuffle, no faults, no checkpoints, no spill: keep what we
      // generate, via the fastest blocked cell kernel (no chunk staging).
      TRACE_SPAN("generate.local");
      std::vector<Edge> produced;
      if (config.scheme == PartitionScheme::k1D) {
        const IndexRange range = block_range(a.num_arcs(), ranks, r);
        generate_cell(a.edges().subspan(range.begin, range.size()), b.edges(), n_b,
                      produced);
      } else {
        for (const auto& [a_part, b_part] : grid.cells_of(r)) {
          const IndexRange ra = block_range(a.num_arcs(), grid.parts_a(), a_part);
          const IndexRange rb = block_range(b.num_arcs(), grid.parts_b(), b_part);
          generate_cell(a.edges().subspan(ra.begin, ra.size()),
                        b.edges().subspan(rb.begin, rb.size()), n_b, produced);
        }
      }
      generated = produced.size();
      TRACE_COUNTER_ADD("generate.arcs", produced.size());
      stored = std::move(produced);
    } else {
      // No shuffle, but faults, checkpoints or the shard sink are active:
      // chunked local production so crash events and epoch snapshots see
      // the same chunk boundaries as the shuffled modes (and so the sink
      // sees bounded chunks instead of the whole product at once).
      TRACE_SPAN("generate.local");
      if (!sink) stored.reserve(std::max<std::uint64_t>(production.total_arcs(), stored.size()));
      for (std::uint64_t epoch = start_epoch; epoch < num_epochs; ++epoch) {
        const auto [first, last] = epoch_chunks(epoch);
        produce_range(first, last, store);
        checkpoint_epoch(epoch);
      }
    }
    if (sink) sink->finish();
    const CommStats stats = comm.stats();
    std::vector<std::byte> blob;
    blob.reserve(4 * sizeof(std::uint64_t) + stored.size() * sizeof(Edge) + 512);
    detail::append_stats_u64(blob, generated);
    const std::size_t seconds_offset = blob.size();
    detail::append_stats_u64(blob, 0);  // rank_seconds, patched below
    append_comm_stats(blob, stats);
    append_shard_io_stats(blob, shard_io);
    detail::append_stats_u64(blob, stored.size());
    const auto* raw = reinterpret_cast<const std::byte*>(stored.data());
    blob.insert(blob.end(), raw, raw + stored.size() * sizeof(Edge));
    // Stamp the timer last so rank_seconds covers the result marshalling
    // too — the generate.rank trace span does, and the Trace suite pins
    // the two within 5% of each other.
    const double seconds = timer.seconds();
    std::uint64_t seconds_bits = 0;
    std::memcpy(&seconds_bits, &seconds, sizeof(seconds_bits));
    std::memcpy(blob.data() + seconds_offset, &seconds_bits, sizeof(seconds_bits));
    return blob;
  });

  for (std::uint64_t r = 0; r < ranks; ++r) {
    const std::vector<std::byte>& blob = blobs[r];
    const std::byte* cursor = blob.data();
    const std::byte* end = cursor + blob.size();
    result.generated_per_rank[r] = detail::read_stats_u64(cursor, end);
    const std::uint64_t seconds_bits = detail::read_stats_u64(cursor, end);
    std::memcpy(&result.rank_seconds[r], &seconds_bits, sizeof(seconds_bits));
    result.comm_per_rank[r] = read_comm_stats(cursor, end);
    result.shard_io_per_rank[r] = read_shard_io_stats(cursor, end);
    const std::uint64_t n_arcs = detail::read_stats_u64(cursor, end);
    const auto available = static_cast<std::uint64_t>(end - cursor);
    if (available % sizeof(Edge) != 0 || available / sizeof(Edge) != n_arcs)
      throw std::runtime_error("generate_distributed: malformed rank result blob");
    std::vector<Edge>& stored = result.stored_per_rank[r];
    stored.resize(n_arcs);
    if (available != 0) std::memcpy(stored.data(), cursor, available);
  }

  return result;
}

}  // namespace kron
