#include "core/generator.hpp"

#include <limits>
#include <span>
#include <stdexcept>

#include "runtime/comm.hpp"
#include "runtime/partition.hpp"
#include "util/overflow.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace kron {
namespace {

// Message tags for the asynchronous exchange.
constexpr int kTagEdges = 1;
constexpr int kTagDone = 2;

/// Blocked cell kernel: the γ maps for one A-arc share their bases
/// (γ(i,k) = i·n_B + k), so `ea.u * n_b` / `ea.v * n_b` are hoisted out of
/// the inner loop and the output is reserved up front (overflow-guarded —
/// a product too large for size_t skips the hint rather than wrapping).
void generate_cell(std::span<const Edge> a_arcs, std::span<const Edge> b_arcs, vertex_t n_b,
                   std::vector<Edge>& out) {
  const std::size_t n_a_arcs = a_arcs.size();
  const std::size_t n_b_arcs = b_arcs.size();
  if (n_b_arcs != 0 &&
      n_a_arcs <= (std::numeric_limits<std::size_t>::max() - out.size()) / n_b_arcs)
    out.reserve(out.size() + n_a_arcs * n_b_arcs);
  for (const Edge& ea : a_arcs) {
    const vertex_t base_u = ea.u * n_b;
    const vertex_t base_v = ea.v * n_b;
    for (const Edge& eb : b_arcs) out.push_back({base_u + eb.u, base_v + eb.v});
  }
}

/// Production for one rank under the active partition scheme, emitted as
/// chunks of at most `chunk_size` arcs through a pre-reserved buffer (no
/// per-edge callback: the shuffle paths amortise routing per chunk).
template <typename EmitChunk>
void produce_chunks(const EdgeList& a, const EdgeList& b, vertex_t n_b, const Grid2D& grid,
                    const GeneratorConfig& config, std::uint64_t ranks, std::uint64_t r,
                    std::size_t chunk_size, const EmitChunk& emit_chunk) {
  TRACE_SPAN("generate.produce");
  std::vector<Edge> chunk;
  chunk.reserve(chunk_size);
  const auto flush = [&] {
    if (!chunk.empty()) {
      emit_chunk(std::span<const Edge>(chunk));
      chunk.clear();
    }
  };
  const auto cell = [&](std::span<const Edge> a_arcs, std::span<const Edge> b_arcs) {
    for (const Edge& ea : a_arcs) {
      const vertex_t base_u = ea.u * n_b;
      const vertex_t base_v = ea.v * n_b;
      for (const Edge& eb : b_arcs) {
        chunk.push_back({base_u + eb.u, base_v + eb.v});
        if (chunk.size() == chunk_size) flush();
      }
    }
  };
  if (config.scheme == PartitionScheme::k1D) {
    const IndexRange range = block_range(a.num_arcs(), ranks, r);
    cell(a.edges().subspan(range.begin, range.size()), b.edges());
  } else {
    for (const auto& [a_part, b_part] : grid.cells_of(r)) {
      const IndexRange ra = block_range(a.num_arcs(), grid.parts_a(), a_part);
      const IndexRange rb = block_range(b.num_arcs(), grid.parts_b(), b_part);
      cell(a.edges().subspan(ra.begin, ra.size()), b.edges().subspan(rb.begin, rb.size()));
    }
  }
  flush();
}

/// Storage owners for a whole chunk at once: the owner-map branch is taken
/// once per chunk, and the hash runs in a tight loop over the batch.
void owners_of_chunk(std::span<const Edge> arcs, const GeneratorConfig& config,
                     std::uint64_t ranks, std::vector<std::uint64_t>& owners) {
  owners.resize(arcs.size());
  if (config.owner_map == OwnerMap::kHash) {
    for (std::size_t i = 0; i < arcs.size(); ++i)
      owners[i] = edge_storage_owner(arcs[i].u, arcs[i].v, ranks, config.owner_seed);
  } else {
    for (std::size_t i = 0; i < arcs.size(); ++i) owners[i] = arcs[i].u % ranks;
  }
}

/// This rank's expected stored-arc share (reserve hint for the receive
/// side): the hash owner map spreads |E_A||E_B| arcs ~uniformly.  Returns
/// 0 — no hint — when the product overflows.
std::uint64_t expected_stored_arcs(const EdgeList& a, const EdgeList& b, std::uint64_t ranks) {
  const std::uint64_t arcs_a = a.num_arcs();
  const std::uint64_t arcs_b = b.num_arcs();
  if (arcs_b != 0 && arcs_a > std::numeric_limits<std::uint64_t>::max() / arcs_b) return 0;
  return arcs_a * arcs_b / ranks;
}

/// Streaming shuffle (ExchangeMode::kAsync): arcs are produced in chunks,
/// routed per chunk (batched owner hashing), buffered per destination, and
/// sent the moment a buffer fills; incoming chunks are drained
/// opportunistically on a production cadence *independent of flushes* — a
/// rank whose own buffers rarely fill (small production share, skewed
/// owner map) must still keep consuming, or its inbox grows without bound
/// and bounded channels deadlock.  Termination: every rank sends kTagDone
/// to all ranks after its last flush; since each mailbox preserves a
/// sender's ordering, receiving R kTagDone messages guarantees all data has
/// arrived.
template <typename Produce>
void async_exchange(Comm& comm, const GeneratorConfig& config, std::uint64_t ranks,
                    std::uint64_t expected_stored, const Produce& produce,
                    std::vector<Edge>& stored, std::uint64_t& generated_count) {
  TRACE_SPAN("exchange.async");
  std::vector<std::vector<Edge>> buffers(ranks);
  for (auto& buffer : buffers) buffer.reserve(config.async_chunk);
  stored.reserve(expected_stored);
  std::vector<std::uint64_t> owners;
  int done_seen = 0;

  const auto drain = [&](bool block) {
    TRACE_SPAN("exchange.drain");
    while (true) {
      std::optional<RankMessage> message =
          block ? std::optional<RankMessage>(comm.recv()) : comm.try_recv();
      if (!message) return;
      TRACE_COUNTER_ADD("exchange.messages_drained", 1);
      if (message->tag == kTagDone) {
        ++done_seen;
      } else {
        const auto arcs = Comm::decode<Edge>(*message);
        stored.insert(stored.end(), arcs.begin(), arcs.end());
      }
      if (block) return;  // blocking mode consumes exactly one message
    }
  };

  const auto flush = [&](std::uint64_t dest) {
    auto& buffer = buffers[dest];
    if (buffer.empty()) return;
    TRACE_SPAN("exchange.flush");
    TRACE_COUNTER_ADD("exchange.chunks_flushed", 1);
    if (dest == static_cast<std::uint64_t>(comm.rank())) {
      stored.insert(stored.end(), buffer.begin(), buffer.end());
    } else {
      comm.send_values<Edge>(static_cast<int>(dest), kTagEdges, buffer);
    }
    buffer.clear();
  };

  produce([&](std::span<const Edge> arcs) {
    generated_count += arcs.size();
    TRACE_COUNTER_ADD("generate.arcs", arcs.size());
    owners_of_chunk(arcs, config, ranks, owners);
    for (std::size_t i = 0; i < arcs.size(); ++i) {
      auto& buffer = buffers[owners[i]];
      buffer.push_back(arcs[i]);
      if (buffer.size() >= config.async_chunk) flush(owners[i]);
    }
    // Production chunks hold async_chunk arcs, so one opportunistic drain
    // per chunk preserves the seed's every-async_chunk-arcs cadence.
    drain(/*block=*/false);
  });
  for (std::uint64_t dest = 0; dest < ranks; ++dest) flush(dest);
  for (std::uint64_t dest = 0; dest < ranks; ++dest)
    comm.send(static_cast<int>(dest), kTagDone, {});

  // Drain until every rank's end-of-stream marker (including our own) has
  // been observed.
  while (done_seen < static_cast<int>(ranks)) drain(/*block=*/true);
}

}  // namespace

std::uint64_t GeneratorResult::total_arcs() const {
  std::uint64_t total = 0;
  for (const auto& arcs : stored_per_rank) total += arcs.size();
  return total;
}

EdgeList GeneratorResult::gather() const {
  TRACE_SPAN("generate.gather");
  std::vector<Edge> all;
  all.reserve(total_arcs());
  for (const auto& arcs : stored_per_rank) all.insert(all.end(), arcs.begin(), arcs.end());
  EdgeList c(num_vertices, std::move(all));
  c.sort_dedupe();
  return c;
}

GeneratorResult generate_distributed(const EdgeList& a_in, const EdgeList& b_in,
                                     const GeneratorConfig& config) {
  if (config.ranks < 1) throw std::invalid_argument("generate_distributed: ranks < 1");
  if (config.async_chunk == 0)
    throw std::invalid_argument("generate_distributed: async_chunk must be positive");

  EdgeList a = a_in;
  EdgeList b = b_in;
  if (config.add_full_loops) {
    a.strip_loops();
    a.add_full_loops();
    b.strip_loops();
    b.add_full_loops();
  }

  const vertex_t n_b = b.num_vertices();
  const auto ranks = static_cast<std::uint64_t>(config.ranks);

  GeneratorResult result;
  // Guard the product-vertex count up front: num_vertices = n_A·n_B must
  // not wrap, and once it fits every hoisted γ base (ea.u·n_B with
  // ea.u < n_A) fits too, so the kernels below need no per-arc checks.
  try {
    result.num_vertices = checked_mul(a.num_vertices(), n_b);
  } catch (const std::overflow_error&) {
    throw std::overflow_error(
        "generate_distributed: product vertex count " + std::to_string(a.num_vertices()) +
        " * " + std::to_string(n_b) +
        " overflows vertex_t (64-bit vertex ids); use smaller factors or a lower power");
  }
  result.stored_per_rank.resize(ranks);
  result.generated_per_rank.assign(ranks, 0);
  result.rank_seconds.assign(ranks, 0.0);
  result.comm_per_rank.assign(ranks, CommStats{});

  const Grid2D grid(ranks);
  const std::uint64_t expected_stored = expected_stored_arcs(a, b, ranks);

  const RuntimeOptions runtime_options{config.ranks, config.channel_capacity};
  Runtime::run(runtime_options, [&](Comm& comm) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    // Span and timer open together so the exported per-rank span total
    // tracks rank_seconds (pinned within 5% by the Trace tests).
    TRACE_SPAN("generate.rank");
    const Timer timer;

    // Chunked arc production for this rank under the active scheme.
    const auto produce = [&](auto&& emit_chunk) {
      produce_chunks(a, b, n_b, grid, config, ranks, r,
                     static_cast<std::size_t>(config.async_chunk), emit_chunk);
    };

    if (config.shuffle_to_owner && ranks > 1 && config.exchange == ExchangeMode::kAsync) {
      async_exchange(comm, config, ranks, expected_stored, produce,
                     result.stored_per_rank[r], result.generated_per_rank[r]);
    } else if (config.shuffle_to_owner && ranks > 1) {
      // Bulk-synchronous: buffer everything, one all-to-all.
      TRACE_SPAN("exchange.bulk");
      std::vector<std::vector<Edge>> outbox(ranks);
      for (auto& to_rank : outbox) to_rank.reserve(expected_stored / ranks);
      std::uint64_t generated = 0;
      std::vector<std::uint64_t> owners;
      produce([&](std::span<const Edge> arcs) {
        generated += arcs.size();
        TRACE_COUNTER_ADD("generate.arcs", arcs.size());
        owners_of_chunk(arcs, config, ranks, owners);
        for (std::size_t i = 0; i < arcs.size(); ++i) outbox[owners[i]].push_back(arcs[i]);
      });
      result.generated_per_rank[r] = generated;
      auto inbox = comm.alltoallv(std::move(outbox));
      std::vector<Edge>& stored = result.stored_per_rank[r];
      std::size_t incoming = 0;
      for (const auto& from_rank : inbox) incoming += from_rank.size();
      stored.reserve(incoming);
      for (auto& from_rank : inbox) {
        stored.insert(stored.end(), from_rank.begin(), from_rank.end());
        from_rank.clear();
      }
    } else {
      // No shuffle: keep what we generate, via the blocked cell kernel.
      TRACE_SPAN("generate.local");
      std::vector<Edge> generated;
      if (config.scheme == PartitionScheme::k1D) {
        const IndexRange range = block_range(a.num_arcs(), ranks, r);
        generate_cell(a.edges().subspan(range.begin, range.size()), b.edges(), n_b,
                      generated);
      } else {
        for (const auto& [a_part, b_part] : grid.cells_of(r)) {
          const IndexRange ra = block_range(a.num_arcs(), grid.parts_a(), a_part);
          const IndexRange rb = block_range(b.num_arcs(), grid.parts_b(), b_part);
          generate_cell(a.edges().subspan(ra.begin, ra.size()),
                        b.edges().subspan(rb.begin, rb.size()), n_b, generated);
        }
      }
      result.generated_per_rank[r] = generated.size();
      TRACE_COUNTER_ADD("generate.arcs", generated.size());
      result.stored_per_rank[r] = std::move(generated);
    }
    result.rank_seconds[r] = timer.seconds();
    result.comm_per_rank[r] = comm.stats();
  });

  return result;
}

}  // namespace kron
