// Community-structure ground truth (Sec. VI).
//
// For C = (A + I_A) ⊗ (B + I_B) and the Kronecker set S_C = S_A ⊗ S_B
// (Def. 14), Thm. 6 gives exact internal/external edge counts of S_C from
// the factor-side counts alone:
//
//   m_in(S_C)  = 2 m_in(S_A) m_in(S_B) + m_in(S_A)|S_B| + |S_A| m_in(S_B)
//   m_out(S_C) = m_out(S_A) m_out(S_B)
//              + m_out(S_A)(|S_B| + 2 m_in(S_B))
//              + m_out(S_B)(|S_A| + 2 m_in(S_A))
//
// with densities per Def. 13.  Kronecker partitions (Def. 16) lift whole
// factor partitions: |Π_C| = |Π_A||Π_B|.  Self loops are excluded from all
// counts (Thm. 6 operates on C - I_C).
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/communities.hpp"
#include "graph/csr.hpp"
#include "graph/types.hpp"

namespace kron {

/// Thm. 6: stats of S_C = S_A ⊗ S_B inside C = (A+I_A) ⊗ (B+I_B), from the
/// factor-side stats.  `n_a`, `n_b` are the factor vertex counts (needed
/// for the external density denominator).
[[nodiscard]] CommunityStats community_product(const CommunityStats& s_a, std::uint64_t n_a,
                                               const CommunityStats& s_b, std::uint64_t n_b);

/// Members of S_A ⊗ S_B as C-vertex ids (Def. 14): supp(1_{S_A} ⊗ 1_{S_B}).
[[nodiscard]] std::vector<vertex_t> kron_vertex_set(const std::vector<vertex_t>& s_a,
                                                    const std::vector<vertex_t>& s_b,
                                                    vertex_t n_b);

/// Kronecker partition (Def. 16): block-of-vertex vector for C from the two
/// factor partitions.  Block (a, b) of Π_C gets id a * b_max + b.
[[nodiscard]] std::vector<std::uint64_t> kron_partition(
    const std::vector<std::uint64_t>& block_a, std::uint64_t a_max,
    const std::vector<std::uint64_t>& block_b, std::uint64_t b_max);

/// Thm. 6 applied to every block pair of two factor partitions: the
/// |Π_A||Π_B| product-community stats, indexed by a * b_max + b — the data
/// behind Fig. 2, computed without materialising C.
[[nodiscard]] std::vector<CommunityStats> partition_product_stats(
    const Csr& a_simple, const std::vector<std::uint64_t>& block_a, std::uint64_t a_max,
    const Csr& b_simple, const std::vector<std::uint64_t>& block_b, std::uint64_t b_max);

}  // namespace kron
