#include "core/community_gt.hpp"

#include <stdexcept>

#include "core/index.hpp"

namespace kron {

CommunityStats community_product(const CommunityStats& s_a, std::uint64_t n_a,
                                 const CommunityStats& s_b, std::uint64_t n_b) {
  CommunityStats out;
  out.size = s_a.size * s_b.size;
  out.m_in = 2 * s_a.m_in * s_b.m_in + s_a.m_in * s_b.size + s_a.size * s_b.m_in;
  out.m_out = s_a.m_out * s_b.m_out + s_a.m_out * (s_b.size + 2 * s_b.m_in) +
              s_b.m_out * (s_a.size + 2 * s_a.m_in);
  out.rho_in = internal_density(out.m_in, out.size);
  out.rho_out = external_density(out.m_out, out.size, n_a * n_b);
  return out;
}

std::vector<vertex_t> kron_vertex_set(const std::vector<vertex_t>& s_a,
                                      const std::vector<vertex_t>& s_b, vertex_t n_b) {
  std::vector<vertex_t> members;
  members.reserve(s_a.size() * s_b.size());
  for (const vertex_t i : s_a)
    for (const vertex_t k : s_b) members.push_back(gamma(i, k, n_b));
  return members;
}

std::vector<std::uint64_t> kron_partition(const std::vector<std::uint64_t>& block_a,
                                          std::uint64_t a_max,
                                          const std::vector<std::uint64_t>& block_b,
                                          std::uint64_t b_max) {
  std::vector<std::uint64_t> block_c(block_a.size() * block_b.size());
  const vertex_t n_b = block_b.size();
  for (vertex_t i = 0; i < block_a.size(); ++i) {
    if (block_a[i] >= a_max) throw std::out_of_range("kron_partition: bad A block id");
    for (vertex_t k = 0; k < n_b; ++k) {
      if (block_b[k] >= b_max) throw std::out_of_range("kron_partition: bad B block id");
      block_c[gamma(i, k, n_b)] = block_a[i] * b_max + block_b[k];
    }
  }
  return block_c;
}

std::vector<CommunityStats> partition_product_stats(
    const Csr& a_simple, const std::vector<std::uint64_t>& block_a, std::uint64_t a_max,
    const Csr& b_simple, const std::vector<std::uint64_t>& block_b, std::uint64_t b_max) {
  const auto stats_a = partition_stats(a_simple, block_a, a_max);
  const auto stats_b = partition_stats(b_simple, block_b, b_max);
  std::vector<CommunityStats> out;
  out.reserve(a_max * b_max);
  for (std::uint64_t a = 0; a < a_max; ++a)
    for (std::uint64_t b = 0; b < b_max; ++b)
      out.push_back(community_product(stats_a[a], a_simple.num_vertices(), stats_b[b],
                                      b_simple.num_vertices()));
  return out;
}

}  // namespace kron
