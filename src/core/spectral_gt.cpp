#include "core/spectral_gt.hpp"

#include <queue>
#include <set>

#include "analytics/spectral.hpp"

namespace kron {

double kronecker_spectral_radius(const Csr& a, const Csr& b, double tolerance,
                                 std::uint64_t max_iterations) {
  const double rho_a = spectral_radius(a, tolerance, max_iterations).value;
  const double rho_b = spectral_radius(b, tolerance, max_iterations).value;
  return rho_a * rho_b;
}

std::vector<double> top_k_products(const std::vector<double>& x, const std::vector<double>& y,
                                   std::size_t k) {
  std::vector<double> out;
  if (x.empty() || y.empty() || k == 0) return out;
  // Best-first frontier search over the (i, j) grid: (0,0) is the maximum;
  // each popped cell pushes its right and down neighbors.
  using Cell = std::pair<double, std::pair<std::size_t, std::size_t>>;
  std::priority_queue<Cell> frontier;
  std::set<std::pair<std::size_t, std::size_t>> seen;
  frontier.push({x[0] * y[0], {0, 0}});
  seen.insert({0, 0});
  while (!frontier.empty() && out.size() < k) {
    const auto [value, cell] = frontier.top();
    frontier.pop();
    out.push_back(value);
    const auto [i, j] = cell;
    if (i + 1 < x.size() && seen.insert({i + 1, j}).second)
      frontier.push({x[i + 1] * y[j], {i + 1, j}});
    if (j + 1 < y.size() && seen.insert({i, j + 1}).second)
      frontier.push({x[i] * y[j + 1], {i, j + 1}});
  }
  return out;
}

std::vector<double> kronecker_top_eigenvalue_magnitudes(const Csr& a, const Csr& b,
                                                        std::size_t k, double tolerance,
                                                        std::uint64_t max_iterations) {
  // The k-th largest product uses at most the first k entries of each
  // factor list, so top-k per factor suffices.
  const auto mags_a = top_eigenvalue_magnitudes(a, k, tolerance, max_iterations);
  const auto mags_b = top_eigenvalue_magnitudes(b, k, tolerance, max_iterations);
  return top_k_products(mags_a, mags_b, k);
}

}  // namespace kron
