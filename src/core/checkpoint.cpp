#include "core/checkpoint.hpp"

#include <array>
#include <charconv>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>

#include "core/generator.hpp"
#include "graph/io.hpp"
#include "util/hash.hpp"
#include "util/posix_io.hpp"
#include "util/trace.hpp"

namespace kron {

namespace {

constexpr std::uint64_t kConfigSalt = 0x6b726f6e636b6667ULL;  // "kronckfg"

std::uint64_t hash_factor(std::uint64_t h, const EdgeList& g) {
  h = hash_combine(h, g.num_vertices());
  h = hash_combine(h, g.num_arcs());
  for (const Edge& e : g.edges()) h = hash_combine(hash_combine(h, e.u), e.v);
  return h;
}

}  // namespace

std::uint64_t generator_config_hash(const EdgeList& a, const EdgeList& b,
                                    const GeneratorConfig& config) {
  TRACE_SPAN("checkpoint.config_hash");
  std::uint64_t h = mix64(kConfigSalt);
  h = hash_factor(h, a);
  h = hash_factor(h, b);
  h = hash_combine(h, static_cast<std::uint64_t>(config.ranks));
  h = hash_combine(h, static_cast<std::uint64_t>(config.scheme));
  h = hash_combine(h, config.shuffle_to_owner ? 1 : 0);
  h = hash_combine(h, static_cast<std::uint64_t>(config.owner_map));
  h = hash_combine(h, static_cast<std::uint64_t>(config.exchange));
  h = hash_combine(h, config.async_chunk);
  h = hash_combine(h, config.owner_seed);
  h = hash_combine(h, config.add_full_loops ? 1 : 0);
  h = hash_combine(h, config.checkpoint_every);
  return h;
}

std::filesystem::path manifest_path(const std::filesystem::path& dir) {
  return dir / "manifest.txt";
}

std::filesystem::path shard_path(const std::filesystem::path& dir, int rank) {
  return dir / ("shard-" + std::to_string(rank) + ".bin");
}

void write_manifest(const std::filesystem::path& dir, const CheckpointManifest& manifest) {
  TRACE_SPAN("checkpoint.write_manifest");
  std::filesystem::create_directories(dir);
  const std::filesystem::path target = manifest_path(dir);
  const std::filesystem::path temp = target.string() + ".tmp";
  if (manifest.shard_arc_counts.size() != manifest.shard_checksums.size() ||
      manifest.shard_bytes.size() != manifest.shard_checksums.size())
    throw std::invalid_argument(
        "write_manifest: shard_checksums, shard_arc_counts and shard_bytes must all list "
        "every rank");
  std::string text;
  text += "KRONCK-MANIFEST 2\n";
  text += "config_hash " + std::to_string(manifest.config_hash) + "\n";
  text += "ranks " + std::to_string(manifest.ranks) + "\n";
  text += "encoding " + std::to_string(manifest.encoding) + "\n";
  text += "completed_epochs " + std::to_string(manifest.completed_epochs) + "\n";
  text += "checkpoint_every " + std::to_string(manifest.checkpoint_every) + "\n";
  for (std::size_t r = 0; r < manifest.shard_checksums.size(); ++r)
    text += "shard " + std::to_string(r) + " " + std::to_string(manifest.shard_arc_counts[r]) +
            " " + std::to_string(manifest.shard_bytes[r]) + " " +
            std::to_string(manifest.shard_checksums[r]) + "\n";
  // The manifest is the commit record of a checkpoint epoch: its bytes must
  // be durable before the rename publishes it, and the rename itself before
  // the generation continues (resume trusts a present manifest completely).
  {
    const int fd = posix_io::open_write(temp, "write_manifest");
    try {
      posix_io::write_full(fd, text.data(), text.size(), "write_manifest");
      posix_io::fsync_fd(fd, "write_manifest");
    } catch (...) {
      posix_io::close_fd(fd);
      throw;
    }
    posix_io::close_fd(fd);
  }
  std::error_code rename_error;
  std::filesystem::rename(temp, target, rename_error);
  if (rename_error)
    throw std::runtime_error("write_manifest: cannot publish " + target.string() + ": " +
                             rename_error.message());
  posix_io::fsync_path(dir, "write_manifest");
}

namespace {

[[noreturn]] void bad_manifest(const std::filesystem::path& path, std::size_t line_no,
                               const std::string& why) {
  throw std::runtime_error("read_manifest: " + path.string() + " line " +
                           std::to_string(line_no) + ": " + why);
}

/// Strict full-token u64 parse ("-1" must not wrap, "8x" must not pass).
std::uint64_t manifest_u64(const std::filesystem::path& path, std::size_t line_no,
                           const std::string& token) {
  std::uint64_t value = 0;
  const char* begin = token.data();
  const char* end = token.data() + token.size();
  const auto [next, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || next != end || token.empty())
    bad_manifest(path, line_no, "expected a nonnegative integer, got '" + token + "'");
  return value;
}

}  // namespace

CheckpointManifest read_manifest(const std::filesystem::path& dir) {
  const std::filesystem::path path = manifest_path(dir);
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_manifest: cannot open " + path.string());
  std::string header;
  std::getline(in, header);
  if (header == "KRONCK-MANIFEST 1")
    bad_manifest(path, 1,
                 "manifest version 1 (written by an older build) records no shard sizes "
                 "and cannot be verified by this binary; restart the generation without "
                 "--resume to rebuild the checkpoint in the current format");
  if (header != "KRONCK-MANIFEST 2")
    bad_manifest(path, 1, "bad header '" + header + "'");

  CheckpointManifest manifest;
  std::string line;
  std::size_t line_no = 1;
  bool saw_hash = false, saw_ranks = false, saw_epochs = false, saw_every = false,
       saw_encoding = false;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::size_t space = line.find(' ');
    if (space == std::string::npos) bad_manifest(path, line_no, "expected 'key value'");
    const std::string key = line.substr(0, space);
    const std::string rest = line.substr(space + 1);
    if (key == "config_hash") {
      manifest.config_hash = manifest_u64(path, line_no, rest);
      saw_hash = true;
    } else if (key == "ranks") {
      manifest.ranks = manifest_u64(path, line_no, rest);
      saw_ranks = true;
    } else if (key == "completed_epochs") {
      manifest.completed_epochs = manifest_u64(path, line_no, rest);
      saw_epochs = true;
    } else if (key == "checkpoint_every") {
      manifest.checkpoint_every = manifest_u64(path, line_no, rest);
      saw_every = true;
    } else if (key == "encoding") {
      manifest.encoding = manifest_u64(path, line_no, rest);
      saw_encoding = true;
    } else if (key == "shard") {
      // "shard R ARCS BYTES CHECKSUM"
      std::array<std::uint64_t, 4> fields{};
      std::size_t begin = 0;
      for (std::size_t f = 0; f < fields.size(); ++f) {
        const bool last = f + 1 == fields.size();
        const std::size_t sep = last ? rest.size() : rest.find(' ', begin);
        if (sep == std::string::npos)
          bad_manifest(path, line_no, "expected 'shard R ARCS BYTES CHECKSUM'");
        fields[f] = manifest_u64(path, line_no, rest.substr(begin, sep - begin));
        begin = sep + 1;
      }
      if (fields[0] != manifest.shard_checksums.size())
        bad_manifest(path, line_no, "shard ranks out of order");
      manifest.shard_arc_counts.push_back(fields[1]);
      manifest.shard_bytes.push_back(fields[2]);
      manifest.shard_checksums.push_back(fields[3]);
    } else {
      bad_manifest(path, line_no, "unknown key '" + key + "'");
    }
  }
  if (!saw_hash || !saw_ranks || !saw_epochs || !saw_every || !saw_encoding)
    bad_manifest(path, line_no, "truncated manifest (missing required keys)");
  if (manifest.shard_checksums.size() != manifest.ranks)
    bad_manifest(path, line_no,
                 "manifest lists " + std::to_string(manifest.shard_checksums.size()) +
                     " shards for " + std::to_string(manifest.ranks) + " ranks");
  return manifest;
}

ResumeState load_resume_state(const std::filesystem::path& dir, std::uint64_t expected_hash,
                              std::uint64_t expected_ranks, std::uint64_t expected_every) {
  TRACE_SPAN("checkpoint.load_resume");
  ResumeState state;
  state.shard_arcs.resize(expected_ranks);
  state.shard_epochs.assign(expected_ranks, 0);
  if (!std::filesystem::exists(manifest_path(dir))) return state;  // fresh start

  const CheckpointManifest manifest = read_manifest(dir);
  if (manifest.config_hash != expected_hash)
    throw std::runtime_error(
        "resume: checkpoint in " + dir.string() +
        " belongs to a different generation (config hash " +
        std::to_string(manifest.config_hash) + " != " + std::to_string(expected_hash) +
        "); same factors, ranks, scheme, chunking and cadence are required");
  if (manifest.ranks != expected_ranks)
    throw std::runtime_error("resume: checkpoint in " + dir.string() + " was taken with " +
                             std::to_string(manifest.ranks) + " ranks, this run has " +
                             std::to_string(expected_ranks));
  if (manifest.checkpoint_every != expected_every)
    throw std::runtime_error("resume: checkpoint cadence mismatch in " + dir.string() +
                             " (" + std::to_string(manifest.checkpoint_every) +
                             " chunks/epoch recorded, " + std::to_string(expected_every) +
                             " requested)");
  if (manifest.encoding != kCheckpointEncoding)
    throw std::runtime_error(
        "resume: checkpoint in " + dir.string() + " uses shard encoding " +
        std::to_string(manifest.encoding) + ", this binary reads encoding " +
        std::to_string(kCheckpointEncoding) +
        "; restart the generation without --resume to rebuild the checkpoint");
  state.start_epoch = manifest.completed_epochs;
  if (state.start_epoch == 0) return state;

  for (std::uint64_t r = 0; r < expected_ranks; ++r) {
    ShardSnapshot shard;
    try {
      shard = read_shard_snapshot(shard_path(dir, static_cast<int>(r)));
    } catch (const std::exception& e) {
      throw std::runtime_error(
          "resume: shard for rank " + std::to_string(r) + " is missing or corrupt (" +
          e.what() + "); stored arcs cannot be regenerated piecemeal — restart without --resume");
    }
    if (shard.config_hash != expected_hash || shard.rank != r)
      throw std::runtime_error("resume: shard " + shard_path(dir, static_cast<int>(r)).string() +
                               " belongs to a different run or rank");
    if (shard.completed_epochs < manifest.completed_epochs)
      throw std::runtime_error("resume: shard for rank " + std::to_string(r) +
                               " is older than the manifest (epoch " +
                               std::to_string(shard.completed_epochs) + " < " +
                               std::to_string(manifest.completed_epochs) +
                               "); restart without --resume");
    // The manifest's records cover the shard as of the manifest's epoch; a
    // shard one epoch newer (crash landed between the shard writes and the
    // manifest write) is internally consistent and simply replays less.
    if (shard.completed_epochs == manifest.completed_epochs) {
      if (shard.arcs.size() != manifest.shard_arc_counts[r])
        throw std::runtime_error(
            "resume: shard for rank " + std::to_string(r) + " holds " +
            std::to_string(shard.arcs.size()) + " arcs, the manifest recorded " +
            std::to_string(manifest.shard_arc_counts[r]) +
            " (mixed or tampered checkpoint directory); restart without --resume");
      std::error_code size_error;
      const std::uintmax_t on_disk =
          std::filesystem::file_size(shard_path(dir, static_cast<int>(r)), size_error);
      if (size_error || on_disk != manifest.shard_bytes[r])
        throw std::runtime_error(
            "resume: shard file for rank " + std::to_string(r) + " is " +
            (size_error ? "unreadable" : std::to_string(on_disk) + " bytes") +
            ", the manifest recorded " + std::to_string(manifest.shard_bytes[r]) +
            " (mixed or truncated checkpoint directory); restart without --resume");
      if (arc_set_checksum(shard.arcs) != manifest.shard_checksums[r])
        throw std::runtime_error("resume: shard for rank " + std::to_string(r) +
                                 " does not match the manifest checksum (corrupted " +
                                 "checkpoint); restart without --resume");
    }
    state.shard_epochs[r] = shard.completed_epochs;
    state.shard_arcs[r] = std::move(shard.arcs);
  }
  return state;
}

}  // namespace kron
