// Generator checkpoint/resume bookkeeping (DESIGN.md §12).
//
// A checkpointed generation writes, at every epoch boundary, one shard
// snapshot per rank (graph/io.hpp ShardSnapshot) plus a single manifest
// describing the whole checkpoint: the configuration hash that pins which
// run the shards belong to, and the per-shard checksums that pin their
// contents.  Resume reads the manifest, verifies every shard against it,
// and restarts production at the first epoch some shard has not stored.
//
// The manifest is a small self-describing text file (one record per line)
// so an operator can inspect a checkpoint directory with `cat`:
//
//   KRONCK-MANIFEST 2
//   config_hash 1234567890
//   ranks 4
//   encoding 1
//   completed_epochs 7
//   checkpoint_every 8
//   shard 0 ARCS BYTES CHECKSUM
//   ...
//
// Version 2 added the `encoding` line (the shard files' on-disk encoding
// version) and per-shard arc counts and byte sizes, so a directory mixing
// shards from different builds — or shards truncated/grown behind the
// manifest's back — is rejected before any arc is trusted.  Version-1
// manifests are rejected outright with a pointer at the fix (they cannot
// be size-verified).
//
// Both the manifest and the shards are published atomically (temp file +
// rename), so a crash at any instant leaves either the previous complete
// checkpoint or the new one — never a torn state.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "graph/edge_list.hpp"

namespace kron {

struct GeneratorConfig;

/// Hash pinning everything that determines the produced arc stream and its
/// epoch structure: both factors (vertex counts and full arc lists), the
/// rank count, partition scheme, shuffle/owner-map/exchange settings, the
/// chunk size, and the checkpoint cadence.  Two runs with equal hashes
/// produce identical chunk sequences, so resuming one from the other's
/// shards is sound; anything else must be rejected.  (Pure perf knobs —
/// mailbox capacity, retry tuning — are deliberately excluded.)
[[nodiscard]] std::uint64_t generator_config_hash(const EdgeList& a, const EdgeList& b,
                                                  const GeneratorConfig& config);

/// On-disk encoding version of the checkpoint shard snapshots this build
/// reads and writes; recorded in every manifest and compared on resume.
inline constexpr std::uint64_t kCheckpointEncoding = 1;

/// One checkpoint directory's manifest.
struct CheckpointManifest {
  std::uint64_t config_hash = 0;
  std::uint64_t ranks = 0;
  std::uint64_t encoding = kCheckpointEncoding;  ///< shard snapshot encoding version
  std::uint64_t completed_epochs = 0;  ///< epochs every shard has stored
  std::uint64_t checkpoint_every = 0;  ///< production chunks per epoch
  std::vector<std::uint64_t> shard_checksums;   ///< arc_set_checksum per rank
  std::vector<std::uint64_t> shard_arc_counts;  ///< stored arcs per rank
  std::vector<std::uint64_t> shard_bytes;       ///< shard file size per rank
};

/// Canonical file layout inside a checkpoint directory.
[[nodiscard]] std::filesystem::path manifest_path(const std::filesystem::path& dir);
[[nodiscard]] std::filesystem::path shard_path(const std::filesystem::path& dir, int rank);

/// Write the manifest atomically (temp + rename); creates `dir` if absent.
void write_manifest(const std::filesystem::path& dir, const CheckpointManifest& manifest);

/// Parse and validate a manifest; throws std::runtime_error naming the
/// offending line on malformed or truncated input.
[[nodiscard]] CheckpointManifest read_manifest(const std::filesystem::path& dir);

/// Everything resume needs before ranks start: the epoch to restart from
/// and each rank's restored shard state.
struct ResumeState {
  std::uint64_t start_epoch = 0;
  std::vector<std::vector<Edge>> shard_arcs;       ///< per rank, may be empty
  std::vector<std::uint64_t> shard_epochs;         ///< completed epochs per rank
};

/// Load and verify a checkpoint for resumption.  Returns a fresh-start
/// state (start_epoch 0, empty shards) when `dir` holds no manifest — a
/// resume requested before the first checkpoint landed simply regenerates.
/// Throws std::runtime_error when the manifest or any shard is corrupt, or
/// when the checkpoint belongs to a different configuration (hash, rank
/// count, or cadence mismatch).
[[nodiscard]] ResumeState load_resume_state(const std::filesystem::path& dir,
                                            std::uint64_t expected_hash,
                                            std::uint64_t expected_ranks,
                                            std::uint64_t expected_every);

}  // namespace kron
