#include "core/laws.hpp"

#include <algorithm>
#include <stdexcept>

namespace kron {

double theta(std::uint64_t x, std::uint64_t y) {
  if (x < 2 || y < 2) throw std::invalid_argument("theta: requires x, y >= 2");
  return (static_cast<double>(x - 1) * static_cast<double>(y - 1)) /
         (static_cast<double>(x) * static_cast<double>(y) - 1.0);
}

double phi(std::uint64_t d_i, std::uint64_t d_j, std::uint64_t d_k, std::uint64_t d_l) {
  if (d_i < 2 || d_j < 2 || d_k < 2 || d_l < 2)
    throw std::invalid_argument("phi: requires all degrees >= 2");
  const double num = static_cast<double>(std::min(d_i, d_j) - 1) *
                     static_cast<double>(std::min(d_k, d_l) - 1);
  const double den =
      static_cast<double>(std::min(d_i * d_k, d_j * d_l)) - 1.0;
  return num / den;
}

double omega(std::uint64_t m_in_a, std::uint64_t m_out_a, std::uint64_t m_in_b,
             std::uint64_t m_out_b) {
  if (m_out_a == 0 || m_out_b == 0)
    throw std::invalid_argument("omega: requires nonzero external edge counts");
  return std::max(static_cast<double>(m_in_a) / static_cast<double>(m_out_a),
                  static_cast<double>(m_in_b) / static_cast<double>(m_out_b));
}

double capital_omega(std::uint64_t size_a, std::uint64_t n_a, std::uint64_t size_b,
                     std::uint64_t n_b) {
  const double fraction = (static_cast<double>(size_a) * static_cast<double>(size_b)) /
                          (static_cast<double>(n_a) * static_cast<double>(n_b));
  if (fraction >= 1.0)
    throw std::invalid_argument("capital_omega: community covers the whole graph");
  return (1.0 + fraction) / (1.0 - fraction);
}

double cor7_paper_coefficient(double omega_value) { return 1.0 + 3.0 * omega_value; }

double cor7_provable_coefficient(double omega_value) { return 3.0 + 4.0 * omega_value; }

}  // namespace kron
