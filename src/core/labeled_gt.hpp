// Ground truth for vertex-labeled Kronecker products (the [11] extension
// referenced in Sec. IV-A).
//
// With product labels (λ, μ) (graph/labels.hpp), label-class statistics
// factor exactly:
//
//   vertices per class:   n_C(λ,μ) = n_A(λ) · n_B(μ)
//   arcs between classes: arcs_C[(λ₁,μ₁) → (λ₂,μ₂)]
//                           = arcs_A[λ₁ → λ₂] · arcs_B[μ₁ → μ₂]
//   labeled degree:       d_C(p → (λ,μ)) = d_A(i → λ) · d_B(k → μ)
//
// so label-pattern workloads (GraphChallenge-style subgraph matching on
// labels) get the same validate-at-any-scale treatment as the unlabeled
// statistics.  All matrices are dense over the label alphabets (assumed
// small, as in practice).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/labels.hpp"

namespace kron {

/// Dense L×L matrix of arc counts between label classes: entry [from*L+to].
[[nodiscard]] std::vector<std::uint64_t> label_arc_matrix(const LabeledGraph& g);

/// Vertices per label class.
[[nodiscard]] std::vector<std::uint64_t> label_sizes(const LabeledGraph& g);

/// The labeled product graph's statistics, computed from the factors.
struct LabeledProductTruth {
  label_t num_labels = 0;                      ///< L_C = L_A · L_B
  std::vector<std::uint64_t> class_sizes;      ///< n_C per product class
  std::vector<std::uint64_t> arc_matrix;       ///< L_C × L_C arc counts
};

[[nodiscard]] LabeledProductTruth labeled_product_truth(const LabeledGraph& a,
                                                        const LabeledGraph& b);

/// Labeled degree of one product vertex toward one product class,
/// d_C(gamma(i,k) → (λ,μ)), from factor adjacency alone.
[[nodiscard]] std::uint64_t labeled_degree_product(const LabeledGraph& a, vertex_t i,
                                                   label_t lambda, const LabeledGraph& b,
                                                   vertex_t k, label_t mu);

}  // namespace kron
