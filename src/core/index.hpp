// Kronecker block-index maps (Sec. II-A).
//
// The paper uses 1-based maps α_n(i) = ⌊(i-1)/n⌋ + 1, β_n(i) = (i-1)%n + 1,
// γ_n(x, y) = (x-1)n + y.  With the library's 0-based vertex ids these
// become the plain div/mod maps below; the correspondence is pinned in
// tests/core/test_index.cpp.
//
// For C = A ⊗ B with block size n_B: vertex p of C corresponds to the pair
// (i, k) = (alpha(p), beta(p)) with i ∈ V_A, k ∈ V_B, and arcs satisfy
// C[gamma(i,k), gamma(j,l)] = A[i,j] * B[k,l]   (Def. 1).
#pragma once

#include "graph/types.hpp"

namespace kron {

/// Block number of p (the A-side vertex i).
[[nodiscard]] constexpr vertex_t alpha(vertex_t p, vertex_t n_b) noexcept { return p / n_b; }

/// Intra-block index of p (the B-side vertex k).
[[nodiscard]] constexpr vertex_t beta(vertex_t p, vertex_t n_b) noexcept { return p % n_b; }

/// Inverse map: the C-vertex for the pair (i, k).
[[nodiscard]] constexpr vertex_t gamma(vertex_t i, vertex_t k, vertex_t n_b) noexcept {
  return i * n_b + k;
}

static_assert(gamma(alpha(17, 5), beta(17, 5), 5) == 17,
              "gamma must invert (alpha, beta)");

}  // namespace kron
