#include "core/ground_truth.hpp"

#include <map>
#include <stdexcept>

#include "analytics/clustering.hpp"
#include "core/index.hpp"
#include "core/kron.hpp"

namespace kron {
namespace {

Csr simple_csr(const EdgeList& factor) {
  EdgeList copy = factor;
  copy.strip_loops();
  Csr csr(copy);
  if (!csr.is_symmetric())
    throw std::invalid_argument("KroneckerGroundTruth: factor must be undirected");
  return csr;
}

}  // namespace

KroneckerGroundTruth::KroneckerGroundTruth(const EdgeList& a, const EdgeList& b,
                                           LoopRegime regime)
    : a_(simple_csr(a)),
      b_(simple_csr(b)),
      census_a_(count_triangles(a_)),
      census_b_(count_triangles(b_)),
      deg_a_(a_.degrees()),
      deg_b_(b_.degrees()),
      regime_(regime) {
  // Global triangle count from factor aggregates only (O(n_A + n_B)).
  std::uint64_t sum_t_a = 0, sum_d_a = 0, sum_t_b = 0, sum_d_b = 0;
  for (const auto t : census_a_.per_vertex) sum_t_a += t;
  for (const auto d : deg_a_) sum_d_a += d;
  for (const auto t : census_b_.per_vertex) sum_t_b += t;
  for (const auto d : deg_b_) sum_d_b += d;
  const std::uint64_t n_a = a_.num_vertices();
  const std::uint64_t n_b = b_.num_vertices();
  switch (regime_) {
    case LoopRegime::kNoLoops:
      // τ_C = 6 τ_A τ_B, with Σ t = 3 τ.
      global_triangles_ = 6 * census_a_.total * census_b_.total;
      break;
    case LoopRegime::kFullLoops: {
      // Σ_p t_p over Cor. 1, then τ_C = Σ t_p / 3.
      const std::uint64_t sum_tp =
          2 * sum_t_a * sum_t_b +
          3 * (sum_t_a * sum_d_b + sum_d_a * sum_d_b + sum_d_a * sum_t_b) +
          sum_t_a * n_b + n_a * sum_t_b;
      global_triangles_ = sum_tp / 3;
      break;
    }
    case LoopRegime::kFullLoopsAOnly: {
      // Σ_p t_p = Σ_i (2 t_i + 3 d_i + 1) · Σ_k t_k.
      const std::uint64_t sum_tp = (2 * sum_t_a + 3 * sum_d_a + n_a) * sum_t_b;
      global_triangles_ = sum_tp / 3;
      break;
    }
  }
}

vertex_t KroneckerGroundTruth::num_vertices() const noexcept {
  return a_.num_vertices() * b_.num_vertices();
}

std::uint64_t KroneckerGroundTruth::num_edges() const noexcept {
  const std::uint64_t arcs_a = a_.num_arcs();
  const std::uint64_t arcs_b = b_.num_arcs();
  const std::uint64_t n_a = a_.num_vertices();
  const std::uint64_t n_b = b_.num_vertices();
  switch (regime_) {
    case LoopRegime::kNoLoops:
      // arcs(C) = arcs(A) arcs(B), no loops: m_C = 2 m_A m_B.
      return arcs_a * arcs_b / 2;
    case LoopRegime::kFullLoops: {
      const std::uint64_t arcs_c = (arcs_a + n_a) * (arcs_b + n_b);
      const std::uint64_t loops_c = n_a * n_b;
      return (arcs_c - loops_c) / 2 + loops_c;
    }
    case LoopRegime::kFullLoopsAOnly:
      // B is loop-free, so C is loop-free.
      return (arcs_a + n_a) * arcs_b / 2;
  }
  return 0;  // unreachable
}

KroneckerGroundTruth::Pair KroneckerGroundTruth::decompose(vertex_t p) const {
  const vertex_t n_b = b_.num_vertices();
  const vertex_t i = alpha(p, n_b);
  const vertex_t k = beta(p, n_b);
  if (i >= a_.num_vertices()) throw std::out_of_range("KroneckerGroundTruth: bad vertex");
  return {i, k, deg_a_[i], deg_b_[k], census_a_.per_vertex[i], census_b_.per_vertex[k]};
}

bool KroneckerGroundTruth::has_edge(vertex_t p, vertex_t q) const {
  const vertex_t n_b = b_.num_vertices();
  const vertex_t i = alpha(p, n_b), j = alpha(q, n_b);
  const vertex_t k = beta(p, n_b), l = beta(q, n_b);
  if (i >= a_.num_vertices() || j >= a_.num_vertices())
    throw std::out_of_range("KroneckerGroundTruth: bad vertex");
  const bool a_loops = regime_ != LoopRegime::kNoLoops;
  const bool b_loops = regime_ == LoopRegime::kFullLoops;
  const bool a_side = (a_loops && i == j) || a_.has_edge(i, j);
  const bool b_side = (b_loops && k == l) || b_.has_edge(k, l);
  return a_side && b_side;
}

std::uint64_t KroneckerGroundTruth::degree_formula(std::uint64_t d_i,
                                                   std::uint64_t d_k) const noexcept {
  switch (regime_) {
    case LoopRegime::kNoLoops: return d_i * d_k;
    case LoopRegime::kFullLoops: return d_i * d_k + d_i + d_k;
    case LoopRegime::kFullLoopsAOnly: return (d_i + 1) * d_k;
  }
  return 0;  // unreachable
}

std::uint64_t KroneckerGroundTruth::triangle_formula(std::uint64_t t_i, std::uint64_t d_i,
                                                     std::uint64_t t_k,
                                                     std::uint64_t d_k) const noexcept {
  switch (regime_) {
    case LoopRegime::kNoLoops:
      return 2 * t_i * t_k;
    case LoopRegime::kFullLoops:
      // Cor. 1.
      return 2 * t_i * t_k + 3 * (t_i * d_k + d_i * d_k + d_i * t_k) + t_i + t_k;
    case LoopRegime::kFullLoopsAOnly:
      // diag((A+I)³)_ii = 2 t_i + 3 d_i + 1, times diag(B³)_kk / 2 = t_k.
      return (2 * t_i + 3 * d_i + 1) * t_k;
  }
  return 0;  // unreachable
}

std::uint64_t KroneckerGroundTruth::degree(vertex_t p) const {
  const Pair f = decompose(p);
  return degree_formula(f.d_i, f.d_k);
}

std::uint64_t KroneckerGroundTruth::vertex_triangles(vertex_t p) const {
  const Pair f = decompose(p);
  return triangle_formula(f.t_i, f.d_i, f.t_k, f.d_k);
}

std::uint64_t KroneckerGroundTruth::edge_triangles(vertex_t p, vertex_t q) const {
  if (p == q)
    throw std::invalid_argument("edge_triangles: (p,p) is a self loop, not an edge");
  if (!has_edge(p, q)) throw std::invalid_argument("edge_triangles: (p,q) not an edge of C");
  const vertex_t n_b = b_.num_vertices();
  const vertex_t i = alpha(p, n_b), j = alpha(q, n_b);
  const vertex_t k = beta(p, n_b), l = beta(q, n_b);
  const bool diag_a = (i == j);
  const bool diag_b = (k == l);
  const std::uint64_t delta_ij = diag_a ? 0 : census_a_.per_arc[a_.arc_index(i, j)];
  const std::uint64_t delta_kl = diag_b ? 0 : census_b_.per_arc[b_.arc_index(k, l)];
  const std::uint64_t d_i = deg_a_[i];
  const std::uint64_t d_k = deg_b_[k];
  switch (regime_) {
    case LoopRegime::kNoLoops:
      return delta_ij * delta_kl;
    case LoopRegime::kFullLoops:
      // Cor. 2, with the A_ij / B_kl indicators kept explicit.  Expanding
      // the appendix derivation of [paper, Cor. 2] and substituting
      // A_ij = 1-δ(i,j) (valid because (p,q) ∈ E_C) collapses to three
      // disjoint cases; the corollary as *printed* in the paper drops the
      // A_ij/B_kl factors on the 2(Δ_ij + Δ_kl) and +2 terms and therefore
      // overcounts the diagonal cases by 2Δ + 2 — e.g. it predicts 31
      // instead of the true 23 for any edge of (K_5+I) ⊗ (K_5+I) = K_25+I
      // with i = j.  The direct-enumeration sweep in
      // tests/test_ground_truth.cpp pins the corrected form (DESIGN.md §7).
      if (diag_a) return delta_kl * (d_i + 1) + 2 * d_i;
      if (diag_b) return delta_ij * (d_k + 1) + 2 * d_k;
      return delta_ij * delta_kl + 2 * (delta_ij + delta_kl + 1);
    case LoopRegime::kFullLoopsAOnly:
      // Δ_C = [(A+I)²∘(A+I)] ⊗ [B²∘B]: off-diagonal A-entry Δ_ij + 2A_ij,
      // diagonal A-entry d_i + 1.
      if (diag_a) return (d_i + 1) * delta_kl;
      return (delta_ij + 2) * delta_kl;
  }
  return 0;  // unreachable
}

std::uint64_t KroneckerGroundTruth::wedge_count() const {
  // Σ_p d_p(d_p - 1)/2 = (Σ d_p² - Σ d_p)/2 with the degree moments of the
  // factors; each regime's d_p is a product of per-factor terms, so the
  // sums of squares and sums factor.
  std::uint64_t s1_a = 0, s2_a = 0, s1_b = 0, s2_b = 0;  // Σd, Σd² of factors
  std::uint64_t e1_a = 0, e2_a = 0, e1_b = 0, e2_b = 0;  // with e = d + 1
  for (const auto d : deg_a_) {
    s1_a += d;
    s2_a += d * d;
    e1_a += d + 1;
    e2_a += (d + 1) * (d + 1);
  }
  for (const auto d : deg_b_) {
    s1_b += d;
    s2_b += d * d;
    e1_b += d + 1;
    e2_b += (d + 1) * (d + 1);
  }
  switch (regime_) {
    case LoopRegime::kNoLoops:
      // d_p = d_i d_k.
      return (s2_a * s2_b - s1_a * s1_b) / 2;
    case LoopRegime::kFullLoops: {
      // d_p = (d_i+1)(d_k+1) - 1 = e_i e_k - 1:
      // Σ d_p² - Σ d_p = E2 E2 - 3 E1 E1 + 2 n_C.
      const std::uint64_t n_c = num_vertices();
      return (e2_a * e2_b + 2 * n_c - 3 * e1_a * e1_b) / 2;
    }
    case LoopRegime::kFullLoopsAOnly:
      // d_p = e_i d_k.
      return (e2_a * s2_b - e1_a * s1_b) / 2;
  }
  return 0;  // unreachable
}

double KroneckerGroundTruth::transitivity() const {
  const std::uint64_t wedges = wedge_count();
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(global_triangles_) / static_cast<double>(wedges);
}

double KroneckerGroundTruth::vertex_clustering_coeff(vertex_t p) const {
  return vertex_clustering(vertex_triangles(p), degree(p));
}

double KroneckerGroundTruth::edge_clustering_coeff(vertex_t p, vertex_t q) const {
  return edge_clustering(edge_triangles(p, q), degree(p), degree(q));
}

std::vector<std::uint64_t> KroneckerGroundTruth::all_degrees() const {
  const vertex_t n_b = b_.num_vertices();
  std::vector<std::uint64_t> out(num_vertices());
  for (vertex_t i = 0; i < a_.num_vertices(); ++i)
    for (vertex_t k = 0; k < n_b; ++k)
      out[gamma(i, k, n_b)] = degree_formula(deg_a_[i], deg_b_[k]);
  return out;
}

std::vector<std::uint64_t> KroneckerGroundTruth::all_vertex_triangles() const {
  const vertex_t n_b = b_.num_vertices();
  std::vector<std::uint64_t> out(num_vertices());
  for (vertex_t i = 0; i < a_.num_vertices(); ++i) {
    const std::uint64_t t_i = census_a_.per_vertex[i];
    const std::uint64_t d_i = deg_a_[i];
    for (vertex_t k = 0; k < n_b; ++k)
      out[gamma(i, k, n_b)] =
          triangle_formula(t_i, d_i, census_b_.per_vertex[k], deg_b_[k]);
  }
  return out;
}

Histogram KroneckerGroundTruth::degree_histogram() const {
  // Outer product of factor degree histograms — O(D_A · D_B) where D is the
  // number of distinct degrees, independent of n_C.
  const Histogram ha = Histogram::from(deg_a_);
  const Histogram hb = Histogram::from(deg_b_);
  Histogram out;
  for (const auto& [da, ca] : ha.items())
    for (const auto& [db, cb] : hb.items()) out.add(degree_formula(da, db), ca * cb);
  return out;
}

Histogram KroneckerGroundTruth::vertex_triangle_histogram() const {
  // t_p depends jointly on (t_i, d_i) and (t_k, d_k): outer product over the
  // distinct (t, d) classes of each factor.
  using Class = std::pair<std::uint64_t, std::uint64_t>;  // (t, d)
  const auto classes = [](const std::vector<std::uint64_t>& tri,
                          const std::vector<std::uint64_t>& deg) {
    std::map<Class, std::uint64_t> counts;
    for (std::size_t v = 0; v < tri.size(); ++v) ++counts[{tri[v], deg[v]}];
    return counts;
  };
  const auto ca = classes(census_a_.per_vertex, deg_a_);
  const auto cb = classes(census_b_.per_vertex, deg_b_);
  Histogram out;
  for (const auto& [cls_a, cnt_a] : ca) {
    const auto [t_i, d_i] = cls_a;
    for (const auto& [cls_b, cnt_b] : cb) {
      const auto [t_k, d_k] = cls_b;
      out.add(triangle_formula(t_i, d_i, t_k, d_k), cnt_a * cnt_b);
    }
  }
  return out;
}

Histogram KroneckerGroundTruth::edge_triangle_histogram() const {
  // Classes on each factor side: off-diagonal arcs grouped by Δ value, and
  // (for loop regimes) diagonal entries grouped by vertex degree.  Every
  // arc of C is one (A-side class, B-side class) pair; loop arcs of C are
  // excluded, and arc counts halve into undirected edge counts at the end.
  const Histogram arcs_a = Histogram::from(census_a_.per_arc);
  const Histogram arcs_b = Histogram::from(census_b_.per_arc);
  const Histogram diag_a = Histogram::from(deg_a_);  // diagonal of A+I by d_i
  const Histogram diag_b = Histogram::from(deg_b_);

  Histogram arc_hist;  // Δ value -> number of C arcs
  // (off-diagonal A arc, off-diagonal B arc) — present in every regime.
  for (const auto& [delta_a, count_a] : arcs_a.items()) {
    for (const auto& [delta_b, count_b] : arcs_b.items()) {
      std::uint64_t value = 0;
      switch (regime_) {
        case LoopRegime::kNoLoops: value = delta_a * delta_b; break;
        case LoopRegime::kFullLoops:
          value = delta_a * delta_b + 2 * (delta_a + delta_b + 1);
          break;
        case LoopRegime::kFullLoopsAOnly: value = (delta_a + 2) * delta_b; break;
      }
      arc_hist.add(value, count_a * count_b);
    }
  }
  if (regime_ != LoopRegime::kNoLoops) {
    // (diagonal of A+I, off-diagonal B arc): Δ_pq depends on d_i and Δ_kl.
    for (const auto& [d_i, count_a] : diag_a.items()) {
      for (const auto& [delta_b, count_b] : arcs_b.items()) {
        const std::uint64_t value = regime_ == LoopRegime::kFullLoops
                                        ? delta_b * (d_i + 1) + 2 * d_i
                                        : (d_i + 1) * delta_b;
        arc_hist.add(value, count_a * count_b);
      }
    }
  }
  if (regime_ == LoopRegime::kFullLoops) {
    // (off-diagonal A arc, diagonal of B+I).
    for (const auto& [delta_a, count_a] : arcs_a.items())
      for (const auto& [d_k, count_b] : diag_b.items())
        arc_hist.add(delta_a * (d_k + 1) + 2 * d_k, count_a * count_b);
    // (diagonal, diagonal) pairs are the self loops of C — not edges.
  }

  // Both arc directions of an undirected edge carry the same Δ, so arc
  // counts are exactly twice the edge counts.
  Histogram edges;
  for (const auto& [value, count] : arc_hist.items()) edges.add(value, count / 2);
  return edges;
}

EdgeList KroneckerGroundTruth::materialize() const {
  EdgeList a_list = a_.to_edge_list();
  const EdgeList b_list = b_.to_edge_list();
  switch (regime_) {
    case LoopRegime::kNoLoops:
      return kronecker_product(a_list, b_list);
    case LoopRegime::kFullLoops:
      return kronecker_product_with_loops(a_list, b_list);
    case LoopRegime::kFullLoopsAOnly:
      a_list.add_full_loops();
      return kronecker_product(a_list, b_list);
  }
  return EdgeList(0);  // unreachable
}

}  // namespace kron
