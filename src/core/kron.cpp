#include "core/kron.hpp"

#include <limits>
#include <stdexcept>

#include "core/index.hpp"
#include "util/overflow.hpp"

namespace kron {
namespace {

// Same trust boundary as generate_distributed: n_A·n_B must fit vertex_t
// before any γ base (i·n_B, i < n_A) is computed.
void check_product_bounds(const EdgeList& a, const EdgeList& b) {
  const vertex_t n_a = a.num_vertices();
  const vertex_t n_b = b.num_vertices();
  try {
    (void)checked_mul(n_a, n_b);
  } catch (const std::overflow_error&) {
    throw std::overflow_error("kronecker_product: vertex count " + std::to_string(n_a) +
                              " * " + std::to_string(n_b) + " overflows vertex_t");
  }
  const std::uint64_t arcs_a = a.num_arcs();
  const std::uint64_t arcs_b = b.num_arcs();
  try {
    (void)checked_mul(arcs_a, arcs_b);
  } catch (const std::overflow_error&) {
    throw std::overflow_error("kronecker_product: arc count " + std::to_string(arcs_a) +
                              " * " + std::to_string(arcs_b) + " overflows 64 bits");
  }
}

std::uint64_t count_loops(const EdgeList& g) { return g.num_loops(); }

}  // namespace

EdgeList kronecker_product(const EdgeList& a, const EdgeList& b) {
  check_product_bounds(a, b);
  const vertex_t n_b = b.num_vertices();
  EdgeList c(a.num_vertices() * n_b);
  std::vector<Edge> arcs;
  arcs.reserve(a.num_arcs() * b.num_arcs());
  // Blocked kernel: γ(i,k) = i·n_B + k shares its base per A-arc.
  for (const Edge& ea : a.edges()) {
    const vertex_t base_u = gamma(ea.u, 0, n_b);
    const vertex_t base_v = gamma(ea.v, 0, n_b);
    for (const Edge& eb : b.edges()) arcs.push_back({base_u + eb.u, base_v + eb.v});
  }
  c = EdgeList(a.num_vertices() * n_b, std::move(arcs));
  return c;
}

EdgeList kronecker_product_with_loops(const EdgeList& a, const EdgeList& b) {
  EdgeList a_loops = a;
  a_loops.strip_loops();
  a_loops.add_full_loops();
  EdgeList b_loops = b;
  b_loops.strip_loops();
  b_loops.add_full_loops();
  return kronecker_product(a_loops, b_loops);
}

KroneckerShape kronecker_shape(const EdgeList& a, const EdgeList& b) {
  check_product_bounds(a, b);
  KroneckerShape shape;
  shape.num_vertices = a.num_vertices() * b.num_vertices();
  shape.num_arcs = a.num_arcs() * b.num_arcs();
  shape.num_loops = count_loops(a) * count_loops(b);
  shape.num_undirected_edges = (shape.num_arcs - shape.num_loops) / 2 + shape.num_loops;
  return shape;
}

EdgeList kronecker_power(const EdgeList& a, unsigned k) {
  if (k == 0) throw std::invalid_argument("kronecker_power: k must be >= 1");
  EdgeList result = a;
  for (unsigned level = 1; level < k; ++level) result = kronecker_product(result, a);
  return result;
}

KroneckerShape kronecker_power_shape(const EdgeList& a, unsigned k) {
  if (k == 0) throw std::invalid_argument("kronecker_power_shape: k must be >= 1");
  KroneckerShape shape;
  shape.num_vertices = a.num_vertices();
  shape.num_arcs = a.num_arcs();
  shape.num_loops = count_loops(a);
  const std::uint64_t base_vertices = a.num_vertices();
  const std::uint64_t base_arcs = a.num_arcs();
  const std::uint64_t base_loops = shape.num_loops;
  for (unsigned level = 1; level < k; ++level) {
    if (base_vertices != 0 &&
        shape.num_vertices > std::numeric_limits<vertex_t>::max() / base_vertices)
      throw std::overflow_error("kronecker_power_shape: vertex count overflow");
    if (base_arcs != 0 &&
        shape.num_arcs > std::numeric_limits<std::uint64_t>::max() / base_arcs)
      throw std::overflow_error("kronecker_power_shape: arc count overflow");
    shape.num_vertices *= base_vertices;
    shape.num_arcs *= base_arcs;
    shape.num_loops *= base_loops;
  }
  shape.num_undirected_edges = (shape.num_arcs - shape.num_loops) / 2 + shape.num_loops;
  return shape;
}

KroneckerShape kronecker_shape_with_loops(const EdgeList& a, const EdgeList& b) {
  EdgeList a_loops = a;
  a_loops.strip_loops();
  a_loops.add_full_loops();
  EdgeList b_loops = b;
  b_loops.strip_loops();
  b_loops.add_full_loops();
  return kronecker_shape(a_loops, b_loops);
}

}  // namespace kron
