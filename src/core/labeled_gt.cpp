#include "core/labeled_gt.hpp"

#include <stdexcept>

namespace kron {

std::vector<std::uint64_t> label_arc_matrix(const LabeledGraph& g) {
  if (!g.valid()) throw std::invalid_argument("label_arc_matrix: invalid labeling");
  const label_t num_labels = g.num_labels;
  std::vector<std::uint64_t> matrix(static_cast<std::size_t>(num_labels) * num_labels, 0);
  for (const Edge& e : g.graph.edges())
    ++matrix[static_cast<std::size_t>(g.label_of[e.u]) * num_labels + g.label_of[e.v]];
  return matrix;
}

std::vector<std::uint64_t> label_sizes(const LabeledGraph& g) {
  if (!g.valid()) throw std::invalid_argument("label_sizes: invalid labeling");
  std::vector<std::uint64_t> sizes(g.num_labels, 0);
  for (const label_t l : g.label_of) ++sizes[l];
  return sizes;
}

LabeledProductTruth labeled_product_truth(const LabeledGraph& a, const LabeledGraph& b) {
  if (!a.valid() || !b.valid())
    throw std::invalid_argument("labeled_product_truth: invalid labeling");
  LabeledProductTruth truth;
  truth.num_labels = a.num_labels * b.num_labels;

  const auto sizes_a = label_sizes(a);
  const auto sizes_b = label_sizes(b);
  truth.class_sizes.resize(truth.num_labels);
  for (label_t la = 0; la < a.num_labels; ++la)
    for (label_t lb = 0; lb < b.num_labels; ++lb)
      truth.class_sizes[product_label(la, lb, b.num_labels)] = sizes_a[la] * sizes_b[lb];

  const auto arcs_a = label_arc_matrix(a);
  const auto arcs_b = label_arc_matrix(b);
  const std::size_t l_c = truth.num_labels;
  truth.arc_matrix.assign(l_c * l_c, 0);
  for (label_t a_from = 0; a_from < a.num_labels; ++a_from) {
    for (label_t a_to = 0; a_to < a.num_labels; ++a_to) {
      const std::uint64_t count_a =
          arcs_a[static_cast<std::size_t>(a_from) * a.num_labels + a_to];
      if (count_a == 0) continue;
      for (label_t b_from = 0; b_from < b.num_labels; ++b_from) {
        for (label_t b_to = 0; b_to < b.num_labels; ++b_to) {
          const std::uint64_t count_b =
              arcs_b[static_cast<std::size_t>(b_from) * b.num_labels + b_to];
          if (count_b == 0) continue;
          const label_t from = product_label(a_from, b_from, b.num_labels);
          const label_t to = product_label(a_to, b_to, b.num_labels);
          truth.arc_matrix[static_cast<std::size_t>(from) * l_c + to] += count_a * count_b;
        }
      }
    }
  }
  return truth;
}

std::uint64_t labeled_degree_product(const LabeledGraph& a, vertex_t i, label_t lambda,
                                     const LabeledGraph& b, vertex_t k, label_t mu) {
  if (!a.valid() || !b.valid())
    throw std::invalid_argument("labeled_degree_product: invalid labeling");
  std::uint64_t deg_a = 0;
  for (const Edge& e : a.graph.edges())
    if (e.u == i && a.label_of[e.v] == lambda) ++deg_a;
  std::uint64_t deg_b = 0;
  for (const Edge& e : b.graph.edges())
    if (e.u == k && b.label_of[e.v] == mu) ++deg_b;
  return deg_a * deg_b;
}

}  // namespace kron
