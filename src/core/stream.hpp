// Streaming Kronecker product: visit every arc of C = A ⊗ B without
// storing C.
//
// The paper's Sec. III decouples generation from storage ("the processor
// responsible for generating an edge must then send it to the processor
// responsible for its storage").  The fully decoupled limit is a stream:
// O(1) state per arc, so statistics of C — edge counts, degree histograms,
// filters like the Def. 8 rejection — can be computed for products far too
// large to materialise.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/index.hpp"
#include "graph/edge_list.hpp"
#include "runtime/partition.hpp"
#include "util/overflow.hpp"

namespace kron {

/// γ(i,k) = i·n_B + k silently wraps when n_A·n_B exceeds vertex_t; every
/// streaming visitor guards the product up front (once it fits, every base
/// i·n_B with i < n_A fits too).
inline void check_stream_bounds(const EdgeList& a, const EdgeList& b) {
  try {
    (void)checked_mul(a.num_vertices(), b.num_vertices());
  } catch (const std::overflow_error&) {
    throw std::overflow_error("for_each_product_arc: product vertex count " +
                              std::to_string(a.num_vertices()) + " * " +
                              std::to_string(b.num_vertices()) + " overflows vertex_t");
  }
}

/// Invoke fn(Edge) for every arc of A ⊗ B, in A-major order.
/// O(|E_A||E_B|) time, O(1) extra space.
template <typename Fn>
void for_each_product_arc(const EdgeList& a, const EdgeList& b, Fn&& fn) {
  check_stream_bounds(a, b);
  const vertex_t n_b = b.num_vertices();
  for (const Edge& ea : a.edges())
    for (const Edge& eb : b.edges())
      fn(Edge{gamma(ea.u, eb.u, n_b), gamma(ea.v, eb.v, n_b)});
}

/// Invoke fn(Edge) for the slice of A ⊗ B a single rank would generate
/// under the 1D scheme (contiguous block of A's arcs, full B) — the
/// building block for owner-rank streaming statistics.
template <typename Fn>
void for_each_product_arc_1d(const EdgeList& a, const EdgeList& b, std::uint64_t ranks,
                             std::uint64_t rank, Fn&& fn) {
  check_stream_bounds(a, b);
  const IndexRange range = block_range(a.num_arcs(), ranks, rank);
  const vertex_t n_b = b.num_vertices();
  const auto arcs = a.edges().subspan(range.begin, range.size());
  for (const Edge& ea : arcs)
    for (const Edge& eb : b.edges())
      fn(Edge{gamma(ea.u, eb.u, n_b), gamma(ea.v, eb.v, n_b)});
}

/// Invoke fn(Edge) for the cells a rank generates under the Rem. 1 2D grid.
template <typename Fn>
void for_each_product_arc_2d(const EdgeList& a, const EdgeList& b, std::uint64_t ranks,
                             std::uint64_t rank, Fn&& fn) {
  check_stream_bounds(a, b);
  const Grid2D grid(ranks);
  const vertex_t n_b = b.num_vertices();
  for (const auto& [a_part, b_part] : grid.cells_of(rank)) {
    const IndexRange ra = block_range(a.num_arcs(), grid.parts_a(), a_part);
    const IndexRange rb = block_range(b.num_arcs(), grid.parts_b(), b_part);
    for (const Edge& ea : a.edges().subspan(ra.begin, ra.size()))
      for (const Edge& eb : b.edges().subspan(rb.begin, rb.size()))
        fn(Edge{gamma(ea.u, eb.u, n_b), gamma(ea.v, eb.v, n_b)});
  }
}

}  // namespace kron
