// Probabilistic edge rejection (Sec. IV-C, Def. 8).
//
// A fixed hash maps every undirected edge of C to [0, 1); the subgraph
// G_{C,ν} keeps edge (p, q) iff hash(p, q) <= ν.  Because the hash is a
// function of the edge (not a random draw), the whole family
// {G_{C,ν}}_{ν} is generated *jointly*: one pass stores the hash per edge
// and every ν-subgraph is a threshold filter.  Likewise one triangle
// enumeration of G_C counts triangles of every member: triangle
// (p1, p2, p3) survives in G_{C,ν} iff the max of its three edge hashes is
// <= ν.  Expected local counts follow the paper:
//
//   E[t_p in G_{C,ν}]    = ν³ t_p      (vertex p survives trivially)
//   E[Δ_pq in G_{C,ν}]   = ν² Δ_pq     (conditioned on edge (p,q) surviving)
//
// This machinery makes the Kronecker structure much harder to exploit
// accidentally in benchmarks while preserving checkable local ground truth.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace kron {

/// The ν-subgraph of any graph: arcs whose (symmetric) edge hash is <= ν.
/// Both directions of an undirected edge share one hash, so symmetry is
/// preserved.
[[nodiscard]] EdgeList hashed_subgraph(const EdgeList& c, double nu, std::uint64_t seed = 0);

/// Joint triangle census of {G_{C,ν}} for several thresholds in one
/// enumeration sweep of G_C.
struct JointTriangleCensus {
  std::vector<double> nus;
  std::vector<std::uint64_t> totals;                   ///< τ per ν
  std::vector<std::vector<std::uint64_t>> per_vertex;  ///< [ν index][vertex]
  /// [ν index][Csr arc index]: triangles of G_{C,ν} at each arc of G_C.
  /// Both arcs of an undirected edge carry the same count, loops carry 0.
  /// This is the Δ_pq census the E[Δ_pq] = ν²Δ_pq expectation (Def. 8) is
  /// conditioned on — a triangle contributes at (p,q) only if the edge
  /// (p,q) itself survives, which holds automatically since the triangle's
  /// max edge hash is <= ν.
  std::vector<std::vector<std::uint64_t>> per_arc;
};

[[nodiscard]] JointTriangleCensus joint_triangle_census(const Csr& c,
                                                        std::vector<double> nus,
                                                        std::uint64_t seed = 0);

/// Expected counts per Def. 8.
[[nodiscard]] constexpr double expected_vertex_triangles(double nu, std::uint64_t t_p) noexcept {
  return nu * nu * nu * static_cast<double>(t_p);
}
[[nodiscard]] constexpr double expected_edge_triangles(double nu,
                                                       std::uint64_t delta_pq) noexcept {
  return nu * nu * static_cast<double>(delta_pq);
}

/// Number of surviving undirected edges of G_{C,ν} without building it
/// (counts hashes over the arc set; loops counted once).
[[nodiscard]] std::uint64_t surviving_edge_count(const Csr& c, double nu,
                                                 std::uint64_t seed = 0);

}  // namespace kron
