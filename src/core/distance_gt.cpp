#include "core/distance_gt.hpp"

#include <algorithm>
#include <mutex>
#include <stdexcept>

#include "analytics/bfs.hpp"
#include "analytics/eccentricity.hpp"
#include "core/index.hpp"
#include "core/kron.hpp"

namespace kron {
namespace {

Csr loopy_csr(const EdgeList& factor) {
  EdgeList copy = factor;
  copy.strip_loops();
  copy.add_full_loops();
  Csr csr(copy);
  if (!csr.is_symmetric())
    throw std::invalid_argument("DistanceGroundTruth: factor must be undirected");
  return csr;
}

/// Per-hop-value counting buckets of a hop row: bucket[h] = #{j : hops = h}.
std::vector<std::uint64_t> hop_buckets(const std::vector<std::uint64_t>& row,
                                       std::uint64_t max_hop) {
  std::vector<std::uint64_t> buckets(max_hop + 1, 0);
  for (const std::uint64_t h : row) {
    if (h == kUnreachable)
      throw std::logic_error("DistanceGroundTruth: factor is disconnected");
    ++buckets[h];
  }
  return buckets;
}

}  // namespace

Histogram max_combine(const Histogram& a, const Histogram& b) {
  // count_C(v) = cnt_A(v)·cum_B(v) + cum_A(v-1)·cnt_B(v), the standard
  // decomposition of max(X, Y) = v into (X = v, Y <= v) ∪ (X < v, Y = v).
  const auto items_a = a.items();
  const auto items_b = b.items();
  Histogram out;
  // Merge over the union of values, tracking cumulative counts.
  std::size_t ia = 0, ib = 0;
  std::uint64_t cum_a = 0, cum_b = 0;
  while (ia < items_a.size() || ib < items_b.size()) {
    const std::uint64_t va =
        ia < items_a.size() ? items_a[ia].first : ~std::uint64_t{0};
    const std::uint64_t vb =
        ib < items_b.size() ? items_b[ib].first : ~std::uint64_t{0};
    const std::uint64_t v = std::min(va, vb);
    const std::uint64_t cnt_a = (va == v) ? items_a[ia].second : 0;
    const std::uint64_t cnt_b = (vb == v) ? items_b[ib].second : 0;
    // Pairs whose max equals v.
    const std::uint64_t pairs = cnt_a * (cum_b + cnt_b) + cum_a * cnt_b;
    if (pairs > 0) out.add(v, pairs);
    cum_a += cnt_a;
    cum_b += cnt_b;
    if (va == v) ++ia;
    if (vb == v) ++ib;
  }
  return out;
}

DistanceGroundTruth::DistanceGroundTruth(const EdgeList& a, const EdgeList& b)
    : a_(loopy_csr(a)), b_(loopy_csr(b)) {
  ecc_a_ = exact_eccentricities(a_);
  ecc_b_ = exact_eccentricities(b_);
  for (const std::uint64_t e : ecc_a_)
    if (e == kUnreachable)
      throw std::invalid_argument("DistanceGroundTruth: factor A is disconnected");
  for (const std::uint64_t e : ecc_b_)
    if (e == kUnreachable)
      throw std::invalid_argument("DistanceGroundTruth: factor B is disconnected");
}

const std::vector<std::uint64_t>& DistanceGroundTruth::hops_row_a(vertex_t i) const {
  {
    std::shared_lock lock(rows_mutex_);
    const auto it = rows_a_.find(i);
    if (it != rows_a_.end()) return it->second;
  }
  // Run the BFS outside the exclusive section so a slow row does not
  // serialize unrelated cache hits, then re-check under the write lock
  // (another thread may have inserted the same row meanwhile).
  auto row = hops_from(a_, i);
  std::unique_lock lock(rows_mutex_);
  return rows_a_.try_emplace(i, std::move(row)).first->second;
}

const std::vector<std::uint64_t>& DistanceGroundTruth::hops_row_b(vertex_t k) const {
  {
    std::shared_lock lock(rows_mutex_);
    const auto it = rows_b_.find(k);
    if (it != rows_b_.end()) return it->second;
  }
  auto row = hops_from(b_, k);
  std::unique_lock lock(rows_mutex_);
  return rows_b_.try_emplace(k, std::move(row)).first->second;
}

std::uint64_t DistanceGroundTruth::hops(vertex_t p, vertex_t q) const {
  const vertex_t n_b = b_.num_vertices();
  const auto& row_a = hops_row_a(alpha(p, n_b));
  const auto& row_b = hops_row_b(beta(p, n_b));
  return hops_product(row_a[alpha(q, n_b)], row_b[beta(q, n_b)]);
}

std::uint64_t DistanceGroundTruth::eccentricity(vertex_t p) const {
  const vertex_t n_b = b_.num_vertices();
  return hops_product(ecc_a_[alpha(p, n_b)], ecc_b_[beta(p, n_b)]);
}

std::uint64_t DistanceGroundTruth::diameter() const {
  const std::uint64_t diam_a = *std::max_element(ecc_a_.begin(), ecc_a_.end());
  const std::uint64_t diam_b = *std::max_element(ecc_b_.begin(), ecc_b_.end());
  return hops_product(diam_a, diam_b);
}

double DistanceGroundTruth::closeness_naive(vertex_t p) const {
  const vertex_t n_b = b_.num_vertices();
  const auto& row_a = hops_row_a(alpha(p, n_b));
  const auto& row_b = hops_row_b(beta(p, n_b));
  double sum = 0.0;
  for (const std::uint64_t ha : row_a)
    for (const std::uint64_t hb : row_b)
      sum += 1.0 / static_cast<double>(hops_product(ha, hb));
  return sum;
}

double DistanceGroundTruth::closeness_fast(vertex_t p) const {
  const vertex_t n_b = b_.num_vertices();
  const vertex_t i = alpha(p, n_b);
  const vertex_t k = beta(p, n_b);
  const auto& row_a = hops_row_a(i);
  const auto& row_b = hops_row_b(k);
  const std::uint64_t h_star = hops_product(ecc_a_[i], ecc_b_[k]);
  const auto buckets_a = hop_buckets(row_a, h_star);
  const auto buckets_b = hop_buckets(row_b, h_star);

  // ζ_C(p) = Σ_h |{q : hops_C(p,q) = h}| / h with the max-decomposition.
  double sum = 0.0;
  std::uint64_t cum_a = 0, cum_b = 0;
  for (std::uint64_t h = 0; h <= h_star; ++h) {
    const std::uint64_t pairs = buckets_a[h] * (cum_b + buckets_b[h]) + cum_a * buckets_b[h];
    if (h > 0 && pairs > 0) sum += static_cast<double>(pairs) / static_cast<double>(h);
    cum_a += buckets_a[h];
    cum_b += buckets_b[h];
  }
  return sum;
}

std::vector<double> DistanceGroundTruth::closeness_grid(
    const std::vector<vertex_t>& rows_a, const std::vector<vertex_t>& rows_b) const {
  // Global bucket cap: the largest h* over the grid.
  std::uint64_t h_star = 0;
  for (const vertex_t i : rows_a)
    for (const vertex_t k : rows_b)
      h_star = std::max(h_star, hops_product(ecc_a_.at(i), ecc_b_.at(k)));

  // One BFS + one bucketing per factor row (the r-row setup).
  const auto bucketize = [h_star](const std::vector<std::uint64_t>& row) {
    std::vector<std::uint64_t> buckets(h_star + 1, 0);
    for (const std::uint64_t h : row) {
      if (h == kUnreachable)
        throw std::logic_error("closeness_grid: factor is disconnected");
      ++buckets[h];
    }
    // Prefix sums so each grid evaluation is a flat O(h*) scan.
    return buckets;
  };
  std::vector<std::vector<std::uint64_t>> buckets_a, buckets_b;
  buckets_a.reserve(rows_a.size());
  buckets_b.reserve(rows_b.size());
  for (const vertex_t i : rows_a) buckets_a.push_back(bucketize(hops_row_a(i)));
  for (const vertex_t k : rows_b) buckets_b.push_back(bucketize(hops_row_b(k)));

  std::vector<double> scores;
  scores.reserve(rows_a.size() * rows_b.size());
  for (const auto& ba : buckets_a) {
    for (const auto& bb : buckets_b) {
      double sum = 0.0;
      std::uint64_t cum_a = 0, cum_b = 0;
      for (std::uint64_t h = 0; h <= h_star; ++h) {
        const std::uint64_t pairs = ba[h] * (cum_b + bb[h]) + cum_a * bb[h];
        if (h > 0 && pairs > 0) sum += static_cast<double>(pairs) / static_cast<double>(h);
        cum_a += ba[h];
        cum_b += bb[h];
      }
      scores.push_back(sum);
    }
  }
  return scores;
}

Histogram DistanceGroundTruth::eccentricity_histogram() const {
  return max_combine(Histogram::from(ecc_a_), Histogram::from(ecc_b_));
}

EdgeList DistanceGroundTruth::materialize() const {
  return kronecker_product(a_.to_edge_list(), b_.to_edge_list());
}

}  // namespace kron
