// Ground-truth Kronecker formulas for degrees, triangles and clustering
// coefficients (Sec. IV).
//
// The central object of the paper: a `KroneckerGroundTruth` holds only the
// two *factors* — O(|E_C|^{1/2}) state — and answers queries about the
// product graph C without ever materialising it:
//
//   no-loop regime,  C = A ⊗ B             (results from [11])
//     d_p   = d_i d_k
//     t_p   = 2 t_i t_k
//     Δ_pq  = Δ_ij Δ_kl
//     τ_C   = 6 τ_A τ_B
//
//   full-loop regime, C = (A+I_A) ⊗ (B+I_B)  (this paper, Cor. 1 / Cor. 2)
//     d_p   = d_i d_k + d_i + d_k                       (loop-free degree)
//     t_p   = 2 t_i t_k + 3(t_i d_k + d_i d_k + d_i t_k) + t_i + t_k
//     Δ_pq  = Δ_ij Δ_kl + 2(Δ_ij + Δ_kl + 1)            if i ≠ j, k ≠ l
//           = Δ_kl (d_i + 1) + 2 d_i                    if i = j
//           = Δ_ij (d_k + 1) + 2 d_k                    if k = l
//     (the case split follows from the paper's appendix derivation; the
//      one-line form printed as Cor. 2 overcounts the diagonal cases —
//      see DESIGN.md §7 errata)
//
// where (i, k) = (alpha(p), beta(p)), d/t/Δ are the factor's loop-free
// degree / vertex-triangle / edge-triangle values, and δ is the Kronecker
// delta.  Global scalars are O(n_A + n_B) after factor setup (sublinear in
// |E_C|); per-vertex sweeps are O(n_C) (linear), exactly the cost profile
// claimed in Sec. I.
//
// Factors passed in are reduced to their simple parts (self loops
// stripped); the regime selects how C is built from them.
#pragma once

#include <cstdint>
#include <vector>

#include "analytics/triangles.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "util/histogram.hpp"

namespace kron {

enum class LoopRegime {
  kNoLoops,        ///< C = A ⊗ B with simple factors
  kFullLoops,      ///< C = (A + I_A) ⊗ (B + I_B) (this paper, Cor. 1/2)
  kFullLoopsAOnly  ///< C = (A + I_A) ⊗ B (the single-factor-loops design of
                   ///< [11] that Sec. IV-A extends; C is loop-free):
                   ///<   d_p  = (d_i + 1) d_k
                   ///<   t_p  = (2 t_i + 3 d_i + 1) t_k
                   ///<   Δ_pq = (Δ_ij + 2) Δ_kl   for i ≠ j
                   ///<        = (d_i + 1) Δ_kl    for i = j
};

class KroneckerGroundTruth {
 public:
  /// Build from factor edge lists.  Factors must be undirected; loops in
  /// the inputs are stripped (the formulas are stated for simple factors).
  KroneckerGroundTruth(const EdgeList& a, const EdgeList& b, LoopRegime regime);

  [[nodiscard]] LoopRegime regime() const noexcept { return regime_; }
  [[nodiscard]] vertex_t num_vertices() const noexcept;

  /// Undirected edge count of C (self loops counted once in the full-loop
  /// regime).
  [[nodiscard]] std::uint64_t num_edges() const noexcept;

  /// True if (p, q) is an edge of C — answered from the factors in
  /// O(log d) time.
  [[nodiscard]] bool has_edge(vertex_t p, vertex_t q) const;

  /// Loop-free degree of p in C (the d_p of the clustering formulas).
  [[nodiscard]] std::uint64_t degree(vertex_t p) const;

  /// t_p: triangles incident to vertex p (Def. 5 / Cor. 1).
  [[nodiscard]] std::uint64_t vertex_triangles(vertex_t p) const;

  /// Δ_pq: triangles incident to edge (p, q) (Def. 6 / Cor. 2).  Throws if
  /// (p, q) is not an edge of C or is a self loop.
  [[nodiscard]] std::uint64_t edge_triangles(vertex_t p, vertex_t q) const;

  /// τ_C: total distinct triangles — O(1) (precomputed from factor sums).
  [[nodiscard]] std::uint64_t global_triangles() const noexcept { return global_triangles_; }

  /// Wedge count Σ_p d_p(d_p-1)/2 of C — O(n_A + n_B) via factor degree
  /// moment sums.
  [[nodiscard]] std::uint64_t wedge_count() const;

  /// Global transitivity 3 τ_C / wedges — the whole-graph clustering
  /// analog of the η law, fully closed-form.
  [[nodiscard]] double transitivity() const;

  /// η_C(p) (Def. 7), from the formulas above.
  [[nodiscard]] double vertex_clustering_coeff(vertex_t p) const;

  /// ξ_C(p, q) (Def. 7).
  [[nodiscard]] double edge_clustering_coeff(vertex_t p, vertex_t q) const;

  /// Linear-time full sweeps (O(n_C)).
  [[nodiscard]] std::vector<std::uint64_t> all_degrees() const;
  [[nodiscard]] std::vector<std::uint64_t> all_vertex_triangles() const;

  /// Sublinear distribution queries: built from factor histograms without
  /// touching n_C-sized state.
  [[nodiscard]] Histogram degree_histogram() const;
  [[nodiscard]] Histogram vertex_triangle_histogram() const;

  /// Distribution of Δ_pq over the undirected non-loop edges of C, from
  /// factor per-arc censuses — O(E_A-classes × E_B-classes), independent
  /// of |E_C|.
  [[nodiscard]] Histogram edge_triangle_histogram() const;

  /// Factor access (simple parts) for law checks and benches.
  [[nodiscard]] const Csr& factor_a() const noexcept { return a_; }
  [[nodiscard]] const Csr& factor_b() const noexcept { return b_; }
  [[nodiscard]] const TriangleCounts& census_a() const noexcept { return census_a_; }
  [[nodiscard]] const TriangleCounts& census_b() const noexcept { return census_b_; }

  /// Materialise C (for cross-checking against direct algorithms).
  [[nodiscard]] EdgeList materialize() const;

 private:
  // Factor-local quantities for vertex p of C.
  struct Pair {
    vertex_t i, k;
    std::uint64_t d_i, d_k, t_i, t_k;
  };
  [[nodiscard]] Pair decompose(vertex_t p) const;

  // Per-regime closed forms.
  [[nodiscard]] std::uint64_t degree_formula(std::uint64_t d_i,
                                             std::uint64_t d_k) const noexcept;
  [[nodiscard]] std::uint64_t triangle_formula(std::uint64_t t_i, std::uint64_t d_i,
                                               std::uint64_t t_k,
                                               std::uint64_t d_k) const noexcept;

  Csr a_;
  Csr b_;
  TriangleCounts census_a_;
  TriangleCounts census_b_;
  std::vector<std::uint64_t> deg_a_;
  std::vector<std::uint64_t> deg_b_;
  LoopRegime regime_;
  std::uint64_t global_triangles_ = 0;
};

}  // namespace kron
