#include "core/directed_gt.hpp"

#include <algorithm>

#include "core/index.hpp"

namespace kron {

DirectedDegrees directed_degrees(const EdgeList& g) {
  DirectedDegrees degrees;
  degrees.out.assign(g.num_vertices(), 0);
  degrees.in.assign(g.num_vertices(), 0);
  for (const Edge& e : g.edges()) {
    ++degrees.out[e.u];
    ++degrees.in[e.v];
  }
  return degrees;
}

DirectedDegrees kronecker_directed_degrees(const EdgeList& a, const EdgeList& b) {
  const DirectedDegrees da = directed_degrees(a);
  const DirectedDegrees db = directed_degrees(b);
  const vertex_t n_b = b.num_vertices();
  DirectedDegrees out;
  out.out.resize(a.num_vertices() * n_b);
  out.in.resize(a.num_vertices() * n_b);
  for (vertex_t i = 0; i < a.num_vertices(); ++i) {
    for (vertex_t k = 0; k < n_b; ++k) {
      out.out[gamma(i, k, n_b)] = da.out[i] * db.out[k];
      out.in[gamma(i, k, n_b)] = da.in[i] * db.in[k];
    }
  }
  return out;
}

std::uint64_t reciprocal_pair_count(const EdgeList& g) {
  std::vector<Edge> sorted(g.edges().begin(), g.edges().end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  std::uint64_t count = 0;
  for (const Edge& e : sorted)
    if (std::binary_search(sorted.begin(), sorted.end(), reversed(e))) ++count;
  return count;
}

std::uint64_t kronecker_reciprocal_pairs(const EdgeList& a, const EdgeList& b) {
  return reciprocal_pair_count(a) * reciprocal_pair_count(b);
}

}  // namespace kron
