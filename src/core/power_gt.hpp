// Ground truth for Kronecker powers A^{⊗k} by iterated histogram
// composition.
//
// The paper's headline anecdote generates a *trillion-edge* graph (two
// Graph500 scale-18 factors) with ground truth.  This module shows the
// formula side of that story scales even further: in the no-loop regime
// the per-vertex laws are univariate —
//
//   d_p = d_i d_k        (degree values multiply)
//   t_p = 2 t_i t_k      (triangle counts multiply, with the factor 2)
//
// — so the full degree and triangle *distributions* of A^{⊗k} follow from
// composing the factor's value histograms k-1 times.  State is the number
// of distinct values per level (typically hundreds), not the n_A^k
// vertices; exact distributions for graphs with 10^12+ edges take
// milliseconds.  Scalars iterate as n_k = n^k, m_k = 2^{k-1} m^k,
// τ_k = 6^{k-1} τ^k.
//
// All counts and values use checked 64-bit arithmetic and throw
// std::overflow_error when a quantity genuinely exceeds 2^64 - 1; the
// scalar accessors also have double-precision variants that never throw.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"
#include "util/histogram.hpp"

namespace kron {

class PowerGroundTruth {
 public:
  /// Ground truth of A^{⊗k} for a simple undirected factor A (no-loop
  /// regime).  k >= 1.  Setup cost: one factor triangle census; histogram
  /// compositions are deferred to the first distribution query.
  PowerGroundTruth(const EdgeList& a, unsigned k);

  [[nodiscard]] unsigned power() const noexcept { return k_; }

  /// Exact scalars (throw std::overflow_error when > 2^64 - 1).
  [[nodiscard]] std::uint64_t num_vertices() const;
  [[nodiscard]] std::uint64_t num_edges() const;
  [[nodiscard]] std::uint64_t global_triangles() const;

  /// Approximate scalars in double precision (never throw).
  [[nodiscard]] double num_vertices_approx() const noexcept;
  [[nodiscard]] double num_edges_approx() const noexcept;
  [[nodiscard]] double global_triangles_approx() const noexcept;

  /// Exact degree distribution of A^{⊗k} (value = degree, count = number
  /// of vertices, totalling n_A^k).
  [[nodiscard]] Histogram degree_histogram() const;

  /// Exact t_p distribution of A^{⊗k}.
  [[nodiscard]] Histogram vertex_triangle_histogram() const;

 private:
  Histogram base_degrees_;
  Histogram base_triangles_;
  unsigned k_ = 1;
  std::uint64_t n_a_ = 0;
  std::uint64_t m_a_ = 0;
  std::uint64_t tau_a_ = 0;
};

}  // namespace kron
