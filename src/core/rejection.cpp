#include "core/rejection.hpp"

#include <algorithm>
#include <stdexcept>

#include "analytics/triangles.hpp"
#include "util/hash.hpp"

namespace kron {

EdgeList hashed_subgraph(const EdgeList& c, double nu, std::uint64_t seed) {
  if (nu < 0.0 || nu > 1.0) throw std::invalid_argument("hashed_subgraph: nu outside [0,1]");
  std::vector<Edge> kept;
  for (const Edge& e : c.edges())
    if (edge_unit_hash(e.u, e.v, seed) <= nu) kept.push_back(e);
  return EdgeList(c.num_vertices(), std::move(kept));
}

JointTriangleCensus joint_triangle_census(const Csr& c, std::vector<double> nus,
                                          std::uint64_t seed) {
  // Sort thresholds ascending so each triangle does one binary search to
  // find the smallest surviving ν.
  std::sort(nus.begin(), nus.end());
  JointTriangleCensus census;
  census.nus = nus;
  census.totals.assign(nus.size(), 0);
  census.per_vertex.assign(nus.size(),
                           std::vector<std::uint64_t>(c.num_vertices(), 0));
  for_each_triangle(c, [&](vertex_t a, vertex_t b, vertex_t w) {
    const double h = std::max({edge_unit_hash(a, b, seed), edge_unit_hash(a, w, seed),
                               edge_unit_hash(b, w, seed)});
    // Triangle survives for every ν >= h.
    const auto first = std::lower_bound(nus.begin(), nus.end(), h);
    for (auto it = first; it != nus.end(); ++it) {
      const auto idx = static_cast<std::size_t>(it - nus.begin());
      ++census.totals[idx];
      ++census.per_vertex[idx][a];
      ++census.per_vertex[idx][b];
      ++census.per_vertex[idx][w];
    }
  });
  return census;
}

std::uint64_t surviving_edge_count(const Csr& c, double nu, std::uint64_t seed) {
  if (nu < 0.0 || nu > 1.0)
    throw std::invalid_argument("surviving_edge_count: nu outside [0,1]");
  std::uint64_t arcs = 0;
  std::uint64_t loops = 0;
  for (vertex_t u = 0; u < c.num_vertices(); ++u) {
    for (const vertex_t v : c.neighbors(u)) {
      if (edge_unit_hash(u, v, seed) <= nu) {
        ++arcs;
        if (u == v) ++loops;
      }
    }
  }
  return (arcs - loops) / 2 + loops;
}

}  // namespace kron
