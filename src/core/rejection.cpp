#include "core/rejection.hpp"

#include <algorithm>
#include <stdexcept>

#include "analytics/triangles.hpp"
#include "util/hash.hpp"
#include "util/simd.hpp"

namespace kron {

EdgeList hashed_subgraph(const EdgeList& c, double nu, std::uint64_t seed) {
  if (nu < 0.0 || nu > 1.0) throw std::invalid_argument("hashed_subgraph: nu outside [0,1]");
  // Batched rejection: the ν comparison moves to the integer domain once
  // (simd::hash_threshold) and the whole buffer runs through the vectorised
  // filter — hash, compare, and compaction without a per-edge branch.
  // Bit-identical to `if (edge_unit_hash(u, v, seed) <= nu) keep` by the
  // threshold argument in util/simd.hpp.
  std::vector<Edge> kept(c.edges().size());
  const std::size_t n = simd::hash_filter(c.edges().data(), c.edges().size(), seed,
                                          simd::hash_threshold(nu), kept.data());
  kept.resize(n);
  kept.shrink_to_fit();
  return EdgeList(c.num_vertices(), std::move(kept));
}

JointTriangleCensus joint_triangle_census(const Csr& c, std::vector<double> nus,
                                          std::uint64_t seed) {
  // Sort thresholds ascending so each triangle does one binary search to
  // find the smallest surviving ν.
  std::sort(nus.begin(), nus.end());
  JointTriangleCensus census;
  census.nus = nus;
  census.totals.assign(nus.size(), 0);
  census.per_vertex.assign(nus.size(),
                           std::vector<std::uint64_t>(c.num_vertices(), 0));
  census.per_arc.assign(nus.size(), std::vector<std::uint64_t>(c.num_arcs(), 0));

  // One forward enumeration of G_C counts triangles of every ν-subgraph.
  // The emitted forward positions index per-forward accumulators directly;
  // they scatter onto both Csr arc directions afterwards, exactly like
  // count_triangles (analytics/triangles.cpp).
  const ForwardAdjacency fwd = build_forward_adjacency(c);
  const std::uint64_t num_forward = fwd.targets.size();
  std::vector<std::vector<std::uint64_t>> per_forward(
      nus.size(), std::vector<std::uint64_t>(num_forward, 0));
  const auto n = static_cast<vertex_t>(fwd.offsets.size() - 1);
  enumerate_forward_triangles(
      fwd, 0, n,
      [&](vertex_t u, vertex_t v, vertex_t w, std::uint64_t p_uv, std::uint64_t p_uw,
          std::uint64_t p_vw) {
        const double h = std::max({edge_unit_hash(u, v, seed), edge_unit_hash(u, w, seed),
                                   edge_unit_hash(v, w, seed)});
        // Triangle survives for every ν >= h.
        const auto first = std::lower_bound(census.nus.begin(), census.nus.end(), h);
        for (auto it = first; it != census.nus.end(); ++it) {
          const auto idx = static_cast<std::size_t>(it - census.nus.begin());
          ++census.totals[idx];
          ++census.per_vertex[idx][u];
          ++census.per_vertex[idx][v];
          ++census.per_vertex[idx][w];
          ++per_forward[idx][p_uv];
          ++per_forward[idx][p_uw];
          ++per_forward[idx][p_vw];
        }
      });

  for (std::size_t idx = 0; idx < census.nus.size(); ++idx) {
    for (vertex_t u = 0; u < n; ++u) {
      for (std::uint64_t k = fwd.offsets[u]; k < fwd.offsets[u + 1]; ++k) {
        const std::uint64_t delta = per_forward[idx][k];
        census.per_arc[idx][fwd.source_arc[k]] = delta;
        census.per_arc[idx][c.arc_index(fwd.targets[k], u)] = delta;
      }
    }
  }
  return census;
}

std::uint64_t surviving_edge_count(const Csr& c, double nu, std::uint64_t seed) {
  if (nu < 0.0 || nu > 1.0)
    throw std::invalid_argument("surviving_edge_count: nu outside [0,1]");
  const std::uint64_t threshold = simd::hash_threshold(nu);
  std::uint64_t arcs = 0;
  std::uint64_t loops = 0;
  for (vertex_t u = 0; u < c.num_vertices(); ++u) {
    // Whole-row batched count with u broadcast across lanes; the (rare)
    // self loop is patched separately so the vector body stays branch-free.
    const auto row = c.neighbors(u);
    arcs += simd::hash_count(u, row.data(), row.size(), seed, threshold);
    if (c.has_loop(u) && (edge_hash(u, u, seed) >> 11) <= threshold) ++loops;
  }
  return (arcs - loops) / 2 + loops;
}

}  // namespace kron
