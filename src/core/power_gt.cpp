#include "core/power_gt.hpp"

#include <cmath>
#include <stdexcept>

#include "analytics/triangles.hpp"
#include "graph/csr.hpp"
#include "util/overflow.hpp"

namespace kron {
namespace {

/// One composition step: out(value) = Σ left(v1) * base(v2) over pairs with
/// combine(v1, v2) = value.
template <typename Combine>
Histogram compose(const Histogram& left, const Histogram& base, Combine&& combine) {
  Histogram out;
  for (const auto& [v1, c1] : left.items())
    for (const auto& [v2, c2] : base.items())
      out.add(combine(v1, v2), checked_mul(c1, c2));
  return out;
}

template <typename Combine>
Histogram compose_power(const Histogram& base, unsigned k, Combine&& combine) {
  Histogram result = base;
  for (unsigned level = 1; level < k; ++level) result = compose(result, base, combine);
  return result;
}

}  // namespace

PowerGroundTruth::PowerGroundTruth(const EdgeList& a, unsigned k) : k_(k) {
  if (k == 0) throw std::invalid_argument("PowerGroundTruth: k must be >= 1");
  EdgeList simple = a;
  simple.strip_loops();
  const Csr csr(simple);
  if (!csr.is_symmetric())
    throw std::invalid_argument("PowerGroundTruth: factor must be undirected");
  const TriangleCounts census = count_triangles(csr);
  n_a_ = csr.num_vertices();
  m_a_ = csr.num_undirected_edges();
  tau_a_ = census.total;
  for (vertex_t v = 0; v < csr.num_vertices(); ++v) {
    base_degrees_.add(csr.degree(v));
    base_triangles_.add(census.per_vertex[v]);
  }
}

std::uint64_t PowerGroundTruth::num_vertices() const {
  std::uint64_t n = 1;
  for (unsigned level = 0; level < k_; ++level) n = checked_mul(n, n_a_);
  return n;
}

std::uint64_t PowerGroundTruth::num_edges() const {
  // m_k = 2^{k-1} m^k.
  std::uint64_t m = m_a_;
  for (unsigned level = 1; level < k_; ++level) m = checked_mul(m, checked_mul(2, m_a_));
  return m;
}

std::uint64_t PowerGroundTruth::global_triangles() const {
  // τ_k = 6^{k-1} τ^k.
  std::uint64_t tau = tau_a_;
  for (unsigned level = 1; level < k_; ++level)
    tau = checked_mul(tau, checked_mul(6, tau_a_));
  return tau;
}

double PowerGroundTruth::num_vertices_approx() const noexcept {
  return std::pow(static_cast<double>(n_a_), k_);
}

double PowerGroundTruth::num_edges_approx() const noexcept {
  return std::pow(2.0, k_ - 1) * std::pow(static_cast<double>(m_a_), k_);
}

double PowerGroundTruth::global_triangles_approx() const noexcept {
  return std::pow(6.0, k_ - 1) * std::pow(static_cast<double>(tau_a_), k_);
}

Histogram PowerGroundTruth::degree_histogram() const {
  return compose_power(base_degrees_, k_, [](std::uint64_t d1, std::uint64_t d2) {
    return checked_mul(d1, d2);
  });
}

Histogram PowerGroundTruth::vertex_triangle_histogram() const {
  return compose_power(base_triangles_, k_, [](std::uint64_t t1, std::uint64_t t2) {
    return checked_mul(2, checked_mul(t1, t2));
  });
}

}  // namespace kron
