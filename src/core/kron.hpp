// Sequential (single-rank) nonstochastic Kronecker product.
//
// The reference implementation: C = A ⊗ B materialised as an edge list by
// the double loop over factor arcs (Def. 1).  The distributed generator
// (core/generator.hpp) must produce exactly this graph for every rank count
// and partition scheme — that invariant is the generator's main test.
#pragma once

#include "graph/edge_list.hpp"

namespace kron {

/// C = A ⊗ B.  n_C = n_A * n_B, arcs(C) = arcs(A) * arcs(B).
/// O(|E_A||E_B|) time.  Throws std::overflow_error if n_A * n_B or the arc
/// product would overflow.
[[nodiscard]] EdgeList kronecker_product(const EdgeList& a, const EdgeList& b);

/// C = (A + I_A) ⊗ (B + I_B): the full-self-loop construction used by the
/// triangle (Cor. 1/2), distance (Thm. 3) and community (Thm. 6) results.
/// Input factors are taken as their simple parts (existing loops stripped
/// first, so passing a factor that already has loops is harmless).
[[nodiscard]] EdgeList kronecker_product_with_loops(const EdgeList& a, const EdgeList& b);

/// Predicted sizes without materialising C.
struct KroneckerShape {
  vertex_t num_vertices = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t num_loops = 0;
  std::uint64_t num_undirected_edges = 0;
};

/// Shape of A ⊗ B for canonical symmetric factors.
[[nodiscard]] KroneckerShape kronecker_shape(const EdgeList& a, const EdgeList& b);

/// Shape of (A + I_A) ⊗ (B + I_B) (loops in inputs ignored).
[[nodiscard]] KroneckerShape kronecker_shape_with_loops(const EdgeList& a, const EdgeList& b);

/// Kronecker power A^{⊗k} = A ⊗ A ⊗ ... ⊗ A (k >= 1 factors), the
/// repeated-product construction behind stochastic Kronecker models [16]
/// and a convenient way to grow a scale series with composable ground
/// truth (laws iterate: m = 2^{k-1} m_A^k, τ = 6^{k-1} τ_A^k, ...).
/// Throws std::invalid_argument for k = 0 and std::overflow_error when the
/// result would overflow.
[[nodiscard]] EdgeList kronecker_power(const EdgeList& a, unsigned k);

/// Shape of A^{⊗k} without materialising it.
[[nodiscard]] KroneckerShape kronecker_power_shape(const EdgeList& a, unsigned k);

}  // namespace kron
