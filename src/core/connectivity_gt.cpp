#include "core/connectivity_gt.hpp"

#include <vector>

#include "analytics/bipartite.hpp"
#include "graph/ops.hpp"

namespace kron {
namespace {

/// Per-component summary of one factor.
struct ComponentClass {
  std::uint64_t vertices = 0;
  bool has_arcs = false;
  bool bipartite = true;
};

std::vector<ComponentClass> classify_components(const Csr& g) {
  const auto component = connected_components(g);
  std::uint64_t count = 0;
  for (const auto c : component) count = std::max(count, c + 1);
  std::vector<ComponentClass> classes(count);

  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    ++classes[component[v]].vertices;
    if (g.degree(v) > 0) classes[component[v]].has_arcs = true;
  }

  // 2-color each component in one global sweep; a conflict (odd cycle or
  // self loop) marks that component non-bipartite.
  constexpr std::uint8_t kUncolored = 2;
  std::vector<std::uint8_t> side(g.num_vertices(), kUncolored);
  std::vector<vertex_t> frontier;
  for (vertex_t root = 0; root < g.num_vertices(); ++root) {
    if (side[root] != kUncolored) continue;
    side[root] = 0;
    frontier.assign(1, root);
    while (!frontier.empty()) {
      const vertex_t u = frontier.back();
      frontier.pop_back();
      for (const vertex_t v : g.neighbors(u)) {
        if (u == v) {
          classes[component[u]].bipartite = false;
          continue;
        }
        if (side[v] == kUncolored) {
          side[v] = static_cast<std::uint8_t>(1 - side[u]);
          frontier.push_back(v);
        } else if (side[v] == side[u]) {
          classes[component[u]].bipartite = false;
        }
      }
    }
  }
  return classes;
}

}  // namespace

std::uint64_t kronecker_num_components(const Csr& a, const Csr& b) {
  const auto classes_a = classify_components(a);
  const auto classes_b = classify_components(b);
  std::uint64_t total = 0;
  for (const auto& x : classes_a) {
    for (const auto& y : classes_b) {
      if (!x.has_arcs || !y.has_arcs) {
        total += x.vertices * y.vertices;  // every product vertex isolated
      } else if (!x.bipartite || !y.bipartite) {
        total += 1;  // Weichsel: odd closed walk on either side connects
      } else {
        total += 2;  // both bipartite: exactly two components
      }
    }
  }
  return total;
}

bool kronecker_is_connected(const Csr& a, const Csr& b) {
  return kronecker_num_components(a, b) == 1;
}

}  // namespace kron
