// Text edge-list file I/O.
//
// Format: one arc per line, "u v" (whitespace separated, 0-based ids);
// lines starting with '#' or '%' are comments.  This matches the format
// the paper's generator consumes ("we assume A and B are given as
// (unordered) edge lists", Sec. III) and the common SNAP dataset layout.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "graph/edge_list.hpp"

namespace kron {

/// Parse an edge list from a stream.  The vertex count is the largest id
/// seen + 1 unless `min_vertices` is larger.  Throws std::runtime_error on
/// malformed lines.
[[nodiscard]] EdgeList read_edge_list(std::istream& in, vertex_t min_vertices = 0);

/// Parse an edge list from a file.  Throws std::runtime_error if the file
/// cannot be opened.
[[nodiscard]] EdgeList read_edge_list_file(const std::filesystem::path& path,
                                           vertex_t min_vertices = 0);

/// Write one arc per line, preceded by a comment header with counts.
void write_edge_list(std::ostream& out, const EdgeList& edges);

void write_edge_list_file(const std::filesystem::path& path, const EdgeList& edges);

/// Binary edge-list format for large graphs: a 24-byte header
/// ("KRONEL1\0", u64 vertex count, u64 arc count) followed by arc pairs of
/// little-endian u64 — the kind of format the paper's trillion-edge
/// generation runs write.  Roughly 3x smaller and an order of magnitude
/// faster to parse than the text form.
void write_edge_list_binary(const std::filesystem::path& path, const EdgeList& edges);

/// Read the binary format; throws std::runtime_error on a bad magic,
/// truncated payload, or trailing bytes.
[[nodiscard]] EdgeList read_edge_list_binary(const std::filesystem::path& path);

}  // namespace kron
