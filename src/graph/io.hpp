// Text edge-list file I/O.
//
// Format: one arc per line, "u v" (whitespace separated, 0-based ids);
// lines starting with '#' or '%' are comments.  This matches the format
// the paper's generator consumes ("we assume A and B are given as
// (unordered) edge lists", Sec. III) and the common SNAP dataset layout.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "graph/edge_list.hpp"

namespace kron {

/// Parse an edge list from a stream.  The vertex count is the largest id
/// seen + 1 unless `min_vertices` is larger.  Throws std::runtime_error on
/// malformed lines.
[[nodiscard]] EdgeList read_edge_list(std::istream& in, vertex_t min_vertices = 0);

/// Parse an edge list from a file.  Throws std::runtime_error if the file
/// cannot be opened.
[[nodiscard]] EdgeList read_edge_list_file(const std::filesystem::path& path,
                                           vertex_t min_vertices = 0);

/// Write one arc per line, preceded by a comment header with counts.
void write_edge_list(std::ostream& out, const EdgeList& edges);

void write_edge_list_file(const std::filesystem::path& path, const EdgeList& edges);

/// Binary edge-list format for large graphs: a 24-byte header
/// ("KRONEL1\0", u64 vertex count, u64 arc count) followed by arc pairs of
/// little-endian u64 — the kind of format the paper's trillion-edge
/// generation runs write.  Roughly 3x smaller and an order of magnitude
/// faster to parse than the text form.
void write_edge_list_binary(const std::filesystem::path& path, const EdgeList& edges);

/// Read the binary format; throws std::runtime_error on a bad magic,
/// truncated payload, or trailing bytes.
[[nodiscard]] EdgeList read_edge_list_binary(const std::filesystem::path& path);

// --- generator shard snapshots (checkpoint/resume) -----------------------
//
// One rank's checkpoint state: the arcs it owns so far plus where its
// production stands, stamped with the generation-configuration hash so a
// resume against different factors or schemes is rejected, and an
// order-independent checksum so torn or corrupted shard files are caught
// before they poison a resumed run.  Binary format: a 24-byte header
// ("KRONCK1\0" + config hash + rank) followed by epoch/chunk/arc counts,
// the checksum, and the arc pairs; written atomically (temp file + rename).

struct ShardSnapshot {
  std::uint64_t config_hash = 0;      ///< core/checkpoint.hpp generator_config_hash
  std::uint64_t rank = 0;             ///< owning rank
  std::uint64_t completed_epochs = 0; ///< epochs fully exchanged and stored
  std::uint64_t produced_chunks = 0;  ///< production chunks this rank finished
  std::vector<Edge> arcs;             ///< arcs stored (owned) by the rank
};

/// Order-independent checksum of an arc set (stored-arc order varies run to
/// run under the asynchronous exchange, the checksum must not).
[[nodiscard]] std::uint64_t arc_set_checksum(std::span<const Edge> arcs) noexcept;

/// Write a shard snapshot atomically (temp + rename); throws
/// std::runtime_error on I/O failure.  Takes the arcs as a span so the
/// per-epoch checkpoint never copies a rank's whole arc store.
void write_shard_snapshot(const std::filesystem::path& path, std::uint64_t config_hash,
                          std::uint64_t rank, std::uint64_t completed_epochs,
                          std::uint64_t produced_chunks, std::span<const Edge> arcs);

/// Read and verify a shard snapshot; throws std::runtime_error on a bad
/// magic, size mismatch, or checksum divergence (corruption).
[[nodiscard]] ShardSnapshot read_shard_snapshot(const std::filesystem::path& path);

}  // namespace kron
