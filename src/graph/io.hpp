// Text edge-list file I/O.
//
// Format: one arc per line, "u v" (whitespace separated, 0-based ids);
// lines starting with '#' or '%' are comments.  This matches the format
// the paper's generator consumes ("we assume A and B are given as
// (unordered) edge lists", Sec. III) and the common SNAP dataset layout.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "graph/edge_list.hpp"

namespace kron {

/// Parse an edge list from a stream.  The vertex count is the largest id
/// seen + 1 unless `min_vertices` is larger.  Throws std::runtime_error on
/// malformed lines.
[[nodiscard]] EdgeList read_edge_list(std::istream& in, vertex_t min_vertices = 0);

/// Parse an edge list from a file.  Throws std::runtime_error if the file
/// cannot be opened.
[[nodiscard]] EdgeList read_edge_list_file(const std::filesystem::path& path,
                                           vertex_t min_vertices = 0);

/// Write one arc per line, preceded by a comment header with counts.
void write_edge_list(std::ostream& out, const EdgeList& edges);

void write_edge_list_file(const std::filesystem::path& path, const EdgeList& edges);

/// Binary edge-list format for large graphs: a 24-byte header
/// ("KRONEL1\0", u64 vertex count, u64 arc count) followed by arc pairs of
/// little-endian u64 — the kind of format the paper's trillion-edge
/// generation runs write.  Roughly 3x smaller and an order of magnitude
/// faster to parse than the text form.
void write_edge_list_binary(const std::filesystem::path& path, const EdgeList& edges);

/// Read the binary format; throws std::runtime_error on a bad magic,
/// truncated payload, or trailing bytes.
[[nodiscard]] EdgeList read_edge_list_binary(const std::filesystem::path& path);

// --- generator shard snapshots (checkpoint/resume) -----------------------
//
// One rank's checkpoint state: the arcs it owns so far plus where its
// production stands, stamped with the generation-configuration hash so a
// resume against different factors or schemes is rejected, and an
// order-independent checksum so torn or corrupted shard files are caught
// before they poison a resumed run.  Binary format: a 24-byte header
// ("KRONCK1\0" + config hash + rank) followed by epoch/chunk/arc counts,
// the checksum, and the arc pairs; written atomically (temp file + rename).

struct ShardSnapshot {
  std::uint64_t config_hash = 0;      ///< core/checkpoint.hpp generator_config_hash
  std::uint64_t rank = 0;             ///< owning rank
  std::uint64_t completed_epochs = 0; ///< epochs fully exchanged and stored
  std::uint64_t produced_chunks = 0;  ///< production chunks this rank finished
  std::vector<Edge> arcs;             ///< arcs stored (owned) by the rank
};

/// Order-independent checksum of an arc set (stored-arc order varies run to
/// run under the asynchronous exchange, the checksum must not).
[[nodiscard]] std::uint64_t arc_set_checksum(std::span<const Edge> arcs) noexcept;

/// Write a shard snapshot atomically (temp + rename); throws
/// std::runtime_error on I/O failure.  Takes the arcs as a span so the
/// per-epoch checkpoint never copies a rank's whole arc store.
void write_shard_snapshot(const std::filesystem::path& path, std::uint64_t config_hash,
                          std::uint64_t rank, std::uint64_t completed_epochs,
                          std::uint64_t produced_chunks, std::span<const Edge> arcs);

/// Read and verify a shard snapshot; throws std::runtime_error on a bad
/// magic, size mismatch, or checksum divergence (corruption).
[[nodiscard]] ShardSnapshot read_shard_snapshot(const std::filesystem::path& path);

// --- compressed arc shards (out-of-core sink, DESIGN.md §15) --------------
//
// A `.kshard` file holds one sorted run of packed arc keys:
//
//   ArcShardHeader (80 bytes, magic "KRONSH1\0")
//   payload        delta-varint blocks of shard::kBlockArcs keys each
//   index          num_blocks x ArcShardBlock, FNV-checksummed in the header
//
// Every block restarts with an absolute key and carries its own checksum
// in the index, so readers can verify and decode any block independently —
// the property the external merge's range partitioning needs.  Files are
// published with the checkpoint discipline (write temp, fsync, rename,
// fsync parent), so a crash never leaves a torn shard at a published path.

/// CommStats-style counters for shard I/O, accumulated by the writer and
/// cursor when a stats pointer is supplied.  Plain struct of u64/double so
/// the generator can marshal it through the gather blob unchanged.
struct ShardIoStats {
  std::uint64_t shards_written = 0;
  std::uint64_t arcs_written = 0;
  std::uint64_t bytes_written = 0;   ///< compressed bytes (payload + framing)
  std::uint64_t shards_opened = 0;
  std::uint64_t arcs_read = 0;
  std::uint64_t bytes_read = 0;
  double write_seconds = 0.0;        ///< encode + write + publish time
  double read_seconds = 0.0;         ///< read + verify + decode time

  ShardIoStats& operator+=(const ShardIoStats& o) noexcept;
};

/// Decoded shard header (returned by the writer and by `read_arc_shard_info`).
struct ArcShardInfo {
  std::filesystem::path path;
  std::uint64_t encoding = 0;        ///< shard::kEncodingVersion at write time
  std::uint64_t num_vertices = 0;    ///< n_C the keys were packed against
  std::uint64_t key_shift = 0;       ///< bits of v in each packed key
  std::uint64_t num_arcs = 0;
  std::uint64_t min_key = 0;         ///< valid iff num_arcs > 0
  std::uint64_t max_key = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t num_blocks = 0;
};

/// One index entry: where a payload block lives and how to verify it.
struct ArcShardBlock {
  std::uint64_t first_key = 0;   ///< absolute key restarting the block
  std::uint64_t byte_offset = 0; ///< offset of the block within the payload
  std::uint64_t byte_size = 0;   ///< encoded size of the block
  std::uint64_t arc_count = 0;   ///< keys in the block (<= shard::kBlockArcs)
  std::uint64_t checksum = 0;    ///< FNV over the block's encoded bytes
};

/// Default I/O buffer for the shard writer and cursor; KRON_OOC_BUFFER_BYTES
/// overrides it (the perf gate's negative control shrinks it to force a
/// syscall storm).
[[nodiscard]] std::size_t default_shard_buffer_bytes();

/// Streaming writer: feed sorted arcs (or pre-packed keys) in ascending
/// order, then `finish()` to publish atomically.  Destroying an unfinished
/// writer aborts the file (the temp is unlinked, nothing is published).
class ArcShardWriter {
 public:
  ArcShardWriter(std::filesystem::path path, vertex_t num_vertices,
                 std::size_t buffer_bytes = 0,  // 0 = default_shard_buffer_bytes()
                 ShardIoStats* stats = nullptr);
  ~ArcShardWriter();
  ArcShardWriter(const ArcShardWriter&) = delete;
  ArcShardWriter& operator=(const ArcShardWriter&) = delete;

  /// Append one packed key; must be >= every key appended before (throws
  /// std::logic_error otherwise — the caller owns the sort).
  void append_key(std::uint64_t key);

  /// Append a sorted span of arcs (packed with this writer's KeyPacker).
  void append(std::span<const Edge> sorted_arcs);

  [[nodiscard]] std::uint64_t arcs_appended() const noexcept { return num_arcs_; }

  /// Flush, write the index, patch the header, fsync and rename into place.
  /// Returns the published shard's header.  Throws on I/O failure.
  ArcShardInfo finish();

 private:
  void flush_block();
  void flush_buffer();

  std::filesystem::path path_;
  std::filesystem::path temp_;
  int fd_ = -1;
  bool finished_ = false;
  std::uint64_t num_vertices_ = 0;
  unsigned key_shift_ = 1;
  std::size_t buffer_cap_ = 0;
  ShardIoStats* stats_ = nullptr;
  std::vector<std::uint64_t> pending_;     // keys of the open block
  std::vector<std::uint8_t> buffer_;       // encoded bytes not yet written
  std::vector<ArcShardBlock> blocks_;
  std::uint64_t payload_bytes_ = 0;
  std::uint64_t num_arcs_ = 0;
  std::uint64_t min_key_ = 0;
  std::uint64_t max_key_ = 0;
  double seconds_ = 0.0;
};

/// Sort-order-checked convenience wrapper around ArcShardWriter.
ArcShardInfo write_arc_shard(const std::filesystem::path& path, vertex_t num_vertices,
                             std::span<const Edge> sorted_arcs,
                             ShardIoStats* stats = nullptr);

/// Read and validate a shard's header only (no payload I/O).  Throws on a
/// bad magic, unknown encoding version, or a header inconsistent with the
/// file's actual size.
[[nodiscard]] ArcShardInfo read_arc_shard_info(const std::filesystem::path& path);

/// Buffered streaming reader over one shard's sorted key stream.  Blocks
/// are checksum-verified as they are entered; any corruption — flipped
/// payload bytes, a tampered index, truncation — throws std::runtime_error
/// rather than yielding wrong keys.
class ArcShardCursor {
 public:
  explicit ArcShardCursor(const std::filesystem::path& path,
                          std::size_t buffer_bytes = 0,  // 0 = default
                          ShardIoStats* stats = nullptr);
  ~ArcShardCursor();
  ArcShardCursor(ArcShardCursor&& other) noexcept;
  ArcShardCursor& operator=(ArcShardCursor&&) = delete;
  ArcShardCursor(const ArcShardCursor&) = delete;
  ArcShardCursor& operator=(const ArcShardCursor&) = delete;

  [[nodiscard]] const ArcShardInfo& info() const noexcept { return info_; }
  [[nodiscard]] const std::vector<ArcShardBlock>& blocks() const noexcept { return blocks_; }

  /// Next key in ascending order; false once the shard is exhausted.
  [[nodiscard]] bool next(std::uint64_t& key);

  /// Bulk variant: fills up to `max` keys, returns how many (0 at end).
  [[nodiscard]] std::size_t next_batch(std::uint64_t* out, std::size_t max);

  /// Reposition at the first key >= `key` (any direction).
  void seek(std::uint64_t key);

 private:
  void load_block(std::size_t block_idx);

  std::filesystem::path path_;
  int fd_ = -1;
  ShardIoStats* stats_ = nullptr;
  std::size_t buffer_cap_ = 0;
  ArcShardInfo info_;
  std::vector<ArcShardBlock> blocks_;
  std::vector<std::uint64_t> keys_;        // decoded current block
  std::size_t key_pos_ = 0;
  std::size_t next_block_ = 0;             // next block to decode
  std::vector<std::uint8_t> raw_;          // scratch for encoded block bytes
};

}  // namespace kron
