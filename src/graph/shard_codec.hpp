// Delta-varint codec for sorted compressed arc shards (DESIGN.md §15).
//
// Arcs are packed into 64-bit keys — `(u << shift) | v` with
// `shift = bit_width(n_C - 1)` — so a lexicographically sorted arc stream
// is exactly a numerically sorted key stream.  Sorted keys are stored as
// LEB128 varints of consecutive deltas, grouped into fixed-size blocks of
// `kBlockArcs` keys; every block restarts with a full (absolute) key, so a
// block can be decoded — and checksummed — independently of its
// predecessors.  That independence is what the external merge's
// range-partitioned parallel pass and the cursor's `seek` rely on.
//
// Decode is written for untrusted bytes: truncated buffers, trailing
// garbage, overlong/overflowing varints, and decreasing keys are all
// rejected with a diagnostic rather than mis-decoded.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/types.hpp"

namespace kron::shard {

/// Keys per payload block.  Each block restarts delta coding with a full
/// key, bounding both the decode state a reader needs and the region a
/// single corrupted byte can poison.
constexpr std::size_t kBlockArcs = 4096;

/// Bumped whenever the on-disk payload encoding changes shape; readers
/// reject shards whose encoding they do not understand instead of
/// mis-decoding them.
constexpr std::uint64_t kEncodingVersion = 1;

// ------------------------------------------------------------- checksums

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over raw bytes.  Chainable: pass a previous result as `seed` to
/// extend the digest across buffers.
[[nodiscard]] inline std::uint64_t bytes_checksum(const void* data, std::size_t size,
                                                  std::uint64_t seed = kFnvOffset) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

// ------------------------------------------------------------ key packing

/// Packs arcs of an `n`-vertex graph into totally ordered 64-bit keys.
/// Both endpoints get `shift = bit_width(n-1)` bits, so the packing exists
/// only while `2*shift <= 64`; `for_vertices` rejects larger graphs with an
/// actionable error instead of silently folding distinct arcs together.
struct KeyPacker {
  unsigned shift = 1;                ///< low bits holding v
  std::uint64_t mask = 1;            ///< (1 << shift) - 1

  [[nodiscard]] static KeyPacker for_vertices(vertex_t num_vertices) {
    const std::uint64_t top = num_vertices == 0 ? 0 : num_vertices - 1;
    const unsigned bits = top == 0 ? 1u : static_cast<unsigned>(std::bit_width(top));
    if (bits > 32)
      throw std::invalid_argument(
          "shard::KeyPacker: " + std::to_string(num_vertices) +
          " vertices need " + std::to_string(2 * bits) +
          " key bits; the shard format packs one arc per 64-bit key and "
          "supports at most 2^32 vertices");
    KeyPacker p;
    p.shift = bits;
    p.mask = (std::uint64_t{1} << bits) - 1;
    return p;
  }

  [[nodiscard]] static KeyPacker for_shift(std::uint64_t shift_bits) {
    if (shift_bits == 0 || shift_bits > 32)
      throw std::invalid_argument("shard::KeyPacker: key shift " +
                                  std::to_string(shift_bits) + " outside [1, 32]");
    KeyPacker p;
    p.shift = static_cast<unsigned>(shift_bits);
    p.mask = (std::uint64_t{1} << shift_bits) - 1;
    return p;
  }

  [[nodiscard]] std::uint64_t pack(const Edge& e) const noexcept {
    return (e.u << shift) | e.v;
  }
  [[nodiscard]] Edge unpack(std::uint64_t key) const noexcept {
    return Edge{key >> shift, key & mask};
  }
};

// ----------------------------------------------------------------- varint

/// Append `value` as an LEB128 varint (1..10 bytes).
inline void put_varint(std::vector<std::uint8_t>& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::uint8_t>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(value));
}

/// Decode one varint from [p, end).  On success advances `p` past the
/// encoding and returns true; on a truncated buffer (continuation bit set
/// at `end`) or an encoding that overflows 64 bits, leaves `p` untouched
/// and returns false.
[[nodiscard]] inline bool get_varint(const std::uint8_t*& p, const std::uint8_t* end,
                                     std::uint64_t& value) noexcept {
  std::uint64_t result = 0;
  unsigned shift = 0;
  for (const std::uint8_t* q = p; q != end; ++q) {
    const std::uint8_t byte = *q;
    // The 10th byte holds bits 63..69 of the value; anything above bit 63
    // means the encoding does not fit in 64 bits.
    if (shift == 63 && (byte & 0x7e) != 0) return false;
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      value = result;
      p = q + 1;
      return true;
    }
    shift += 7;
    if (shift > 63) return false;  // an 11th byte can encode nothing
  }
  return false;  // ran off the buffer mid-varint
}

// ----------------------------------------------------------- block codec

/// Append one payload block for `keys` (ascending, duplicates allowed):
/// varint(keys[0]) followed by varint(keys[i] - keys[i-1]).  Returns the
/// number of bytes appended.  Throws std::invalid_argument if the keys are
/// not sorted (a delta would wrap and mis-decode).
inline std::size_t encode_key_block(std::span<const std::uint64_t> keys,
                                    std::vector<std::uint8_t>& out) {
  const std::size_t before = out.size();
  std::uint64_t prev = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (i == 0) {
      put_varint(out, keys[0]);
    } else {
      if (keys[i] < prev)
        throw std::invalid_argument("shard::encode_key_block: keys not sorted");
      put_varint(out, keys[i] - prev);
    }
    prev = keys[i];
  }
  return out.size() - before;
}

/// Decode exactly `count` keys from the `size`-byte block at `data`,
/// appending them to `out`.  Throws std::runtime_error naming `what` on a
/// truncated block, trailing garbage after the last key, a varint that
/// overflows 64 bits, or a delta that wraps the key space — every way a
/// corrupted block can fail to round-trip.
inline void decode_key_block(const std::uint8_t* data, std::size_t size, std::size_t count,
                             std::vector<std::uint64_t>& out, const std::string& what) {
  const std::uint8_t* p = data;
  const std::uint8_t* const end = data + size;
  std::uint64_t key = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t value = 0;
    if (!get_varint(p, end, value))
      throw std::runtime_error(what + ": truncated or overlong varint in shard block");
    if (i == 0) {
      key = value;
    } else {
      if (key + value < key)
        throw std::runtime_error(what + ": delta overflows the key space (corrupt block)");
      key += value;
    }
    out.push_back(key);
  }
  if (p != end)
    throw std::runtime_error(what + ": " + std::to_string(end - p) +
                             " trailing garbage byte(s) after shard block");
}

}  // namespace kron::shard
