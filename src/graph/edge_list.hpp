// Mutable edge-list graph representation.
//
// The generator side of the library works in edge lists (the paper assumes
// factors "are given as (unordered) edge lists", Sec. III); the analytics
// side converts to CSR (graph/csr.hpp) for traversal.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/types.hpp"

namespace kron {

class EdgeList {
 public:
  /// An empty graph on `n` vertices (vertices 0..n-1 exist even if isolated).
  explicit EdgeList(vertex_t n = 0) : n_(n) {}

  /// Takes ownership of a prebuilt arc vector.
  EdgeList(vertex_t n, std::vector<Edge> edges) : n_(n), edges_(std::move(edges)) {}

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return edges_.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges_.empty(); }
  [[nodiscard]] std::span<const Edge> edges() const noexcept { return edges_; }

  /// Number of undirected edges: (arcs - loops)/2 + loops.  Requires the
  /// list to be symmetric and deduplicated for the count to be meaningful.
  [[nodiscard]] std::uint64_t num_undirected_edges() const;

  /// Number of self loops.
  [[nodiscard]] std::uint64_t num_loops() const;

  /// Append one arc.  Vertex ids must be < num_vertices().
  void add(vertex_t u, vertex_t v);

  /// Append both arcs of an undirected edge (one arc if u == v).
  void add_undirected(vertex_t u, vertex_t v);

  /// Grow the vertex set (no-op if n <= current).
  void ensure_vertices(vertex_t n) { if (n > n_) n_ = n; }

  /// Sort arcs lexicographically and remove duplicates.
  void sort_dedupe();

  /// Add the reverse of every arc, then sort_dedupe().  After this the list
  /// represents an undirected graph.
  void symmetrize();

  /// Remove all self loops.
  void strip_loops();

  /// Add a self loop at every vertex (the paper's `A + I_A`), then
  /// sort_dedupe().
  void add_full_loops();

  /// True if for every arc (u,v) the arc (v,u) is present.  On an
  /// already-sorted list (e.g. post-sort_dedupe) this binary-searches the
  /// member vector in place; only an unsorted list pays for a sorted copy.
  [[nodiscard]] bool is_symmetric() const;

  /// True if sorted and free of duplicate arcs.
  [[nodiscard]] bool is_canonical() const;

  /// Largest endpoint + 1, or 0 for an empty list.  Useful when reading
  /// files that do not declare a vertex count.
  [[nodiscard]] vertex_t max_vertex_bound() const;

  friend bool operator==(const EdgeList&, const EdgeList&) = default;

 private:
  vertex_t n_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace kron
