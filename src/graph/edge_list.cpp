#include "graph/edge_list.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/sort.hpp"

namespace kron {

std::uint64_t EdgeList::num_undirected_edges() const {
  const std::uint64_t loops = num_loops();
  return (edges_.size() - loops) / 2 + loops;
}

std::uint64_t EdgeList::num_loops() const {
  return static_cast<std::uint64_t>(
      std::count_if(edges_.begin(), edges_.end(), [](const Edge& e) { return is_loop(e); }));
}

void EdgeList::add(vertex_t u, vertex_t v) {
  if (u >= n_ || v >= n_)
    throw std::out_of_range("EdgeList::add: endpoint exceeds vertex count");
  edges_.push_back({u, v});
}

void EdgeList::add_undirected(vertex_t u, vertex_t v) {
  add(u, v);
  if (u != v) add(v, u);
}

void EdgeList::sort_dedupe() { sort_dedupe_edges(edges_); }

void EdgeList::symmetrize() {
  const std::size_t original = edges_.size();
  edges_.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i)
    if (!is_loop(edges_[i])) edges_.push_back(reversed(edges_[i]));
  sort_dedupe();
}

void EdgeList::strip_loops() {
  edges_.erase(
      std::remove_if(edges_.begin(), edges_.end(), [](const Edge& e) { return is_loop(e); }),
      edges_.end());
}

void EdgeList::add_full_loops() {
  edges_.reserve(edges_.size() + n_);
  for (vertex_t v = 0; v < n_; ++v) edges_.push_back({v, v});
  sort_dedupe();
}

bool EdgeList::is_symmetric() const {
  // Post-sort_dedupe lists (the common case: every generator output is
  // canonical) are searchable in place — no copy, no sort.
  if (std::is_sorted(edges_.begin(), edges_.end())) {
    for (const Edge& e : edges_) {
      if (is_loop(e)) continue;
      if (!std::binary_search(edges_.begin(), edges_.end(), reversed(e))) return false;
    }
    return true;
  }
  std::vector<Edge> sorted(edges_.begin(), edges_.end());
  sort_edges(sorted);
  for (const Edge& e : edges_) {
    if (is_loop(e)) continue;
    if (!std::binary_search(sorted.begin(), sorted.end(), reversed(e))) return false;
  }
  return true;
}

bool EdgeList::is_canonical() const {
  return std::is_sorted(edges_.begin(), edges_.end()) &&
         std::adjacent_find(edges_.begin(), edges_.end()) == edges_.end();
}

vertex_t EdgeList::max_vertex_bound() const {
  vertex_t bound = 0;
  for (const Edge& e : edges_) bound = std::max({bound, e.u + 1, e.v + 1});
  return bound;
}

}  // namespace kron
