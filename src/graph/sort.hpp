// Canonicalisation sort kernels for arc vectors.
//
// Every canonical form in the library (EdgeList::sort_dedupe, the
// generator's gather(), CSR construction) needs arcs ordered
// lexicographically by (u, v).  A comparison std::sort over the 16-byte
// Edge struct pays ~log2(n) branchy comparisons per element; these kernels
// replace it with a stable LSD radix sort over the packed sort key:
//
//  * When bit_width(max_u) + bit_width(max_v) <= 64 (every realistic
//    product: n_C < 2^32 already satisfies it) each arc packs into one
//    64-bit key (u << bit_width(max_v)) | v, and only the bytes that can
//    differ are scattered — a 2^38-vertex product needs 5 counting passes
//    instead of ~24 comparison rounds.
//  * Wider graphs fall back to a byte-wise LSD radix over the struct
//    (v low→high, then u low→high), skipping constant byte positions.
//
// Both paths histogram every digit position in ONE prefix scan, run the
// scatter passes chunked over the global thread pool (util/parallel.hpp),
// and are stable — so the output is bit-identical to std::sort for every
// thread count (equal keys are identical arcs).  Below
// kRadixSortThreshold the plain std::sort wins on constants and is used
// directly.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/types.hpp"

namespace kron {

/// Below this many arcs the comparison sort's constants win; the radix
/// kernels delegate to std::sort.
inline constexpr std::size_t kRadixSortThreshold = std::size_t{1} << 14;

/// Sort arcs lexicographically by (u, v).  Equivalent to
/// std::sort(edges.begin(), edges.end()) — bit-identical output for every
/// thread count.
void sort_edges(std::vector<Edge>& edges);

/// sort_edges followed by in-place removal of duplicate arcs (the
/// canonicalisation primitive behind EdgeList::sort_dedupe).
void sort_dedupe_edges(std::vector<Edge>& edges);

}  // namespace kron
