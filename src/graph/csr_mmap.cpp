#include "graph/csr_mmap.hpp"

#include <sys/mman.h>

#include <chrono>
#include <cstring>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include <cerrno>

#include "graph/shard_codec.hpp"
#include "util/log.hpp"
#include "util/overflow.hpp"
#include "util/posix_io.hpp"
#include "util/simd.hpp"
#include "util/trace.hpp"

namespace kron {

namespace {

// The mapping calls below are hints or teardown: failure must not abort a
// query path, but it must not vanish either — a silently ignored madvise
// means the RSS budget quietly stops holding, and a failed munmap leaks
// the mapping for the process lifetime.  Both log with errno instead.
void advise_or_warn(const void* map, std::size_t bytes, int advice,
                    const char* what) noexcept {
  if (map == nullptr || bytes == 0) return;
  if (::madvise(const_cast<void*>(map), bytes, advice) != 0)
    log_warn("CsrMmap: madvise(", what, ") failed: ", std::strerror(errno),
             " (hint ignored; performance may degrade)");
}

void unmap_or_warn(void*& map, std::size_t bytes) noexcept {
  if (map == nullptr) return;
  if (::munmap(map, bytes) != 0)
    log_warn("CsrMmap: munmap of ", bytes, " bytes failed: ", std::strerror(errno),
             " (mapping leaked for the process lifetime)");
  map = nullptr;
}

constexpr char kCsrMagic[8] = {'K', 'R', 'O', 'N', 'C', 'S', '1', '\0'};
constexpr std::uint64_t kCsrVersion = 1;

struct CsrFileHeader {
  char magic[8];
  std::uint64_t version;
  std::uint64_t num_vertices;
  std::uint64_t num_arcs;
  std::uint64_t key_shift;          ///< provenance: the packing the arcs used
  std::uint64_t offsets_checksum;   ///< FNV over the offsets array bytes
  std::uint64_t targets_checksum;   ///< FNV over the targets array bytes
  std::uint64_t reserved;
};
static_assert(sizeof(CsrFileHeader) == 64);

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

constexpr std::size_t kKeyBatch = 8192;  ///< keys pulled per cursor call

}  // namespace

CsrBuildStats build_csr_file(const std::filesystem::path& merged_dir,
                             const std::filesystem::path& out_path) {
  TRACE_SPAN("ooc.csr_build");
  CsrBuildStats stats;
  const MergedManifest manifest = read_merged_manifest(merged_dir);
  if (manifest.num_vertices == 0 && manifest.total_arcs != 0)
    throw std::runtime_error("build_csr_file: merged shards record no vertex count");
  const vertex_t n = manifest.num_vertices;
  const shard::KeyPacker packer = shard::KeyPacker::for_shift(manifest.key_shift);
  stats.num_vertices = n;
  stats.num_arcs = manifest.total_arcs;

  // Pass 1 — degree count.  The only non-streaming state of the whole
  // build: 8(n+1) bytes of counts, which become the offsets array.
  auto t0 = SteadyClock::now();
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(n) + 1, 0);
  std::vector<std::uint64_t> batch(kKeyBatch);
  std::uint64_t seen = 0;
  for (const MergedPart& part : manifest.parts) {
    ArcShardCursor cursor(part.path, 0, &stats.io);
    std::size_t got = 0;
    while ((got = cursor.next_batch(batch.data(), batch.size())) != 0) {
      for (std::size_t i = 0; i < got; ++i) {
        // The count slot walk is monotone but strided by whole skipped
        // rows; fetching a few keys ahead hides the page-boundary stalls
        // of the 8(n+1)-byte count array (util/simd.hpp hooks).
        if (i + 8 < got) simd::prefetch_write(&offsets[(batch[i + 8] >> packer.shift) + 1]);
        const Edge e = packer.unpack(batch[i]);
        if (e.u >= n || e.v >= n)
          throw std::runtime_error("build_csr_file: arc (" + std::to_string(e.u) + ", " +
                                   std::to_string(e.v) + ") outside the declared " +
                                   std::to_string(n) + " vertices (corrupt merge)");
        ++offsets[e.u + 1];
      }
      seen += got;
    }
  }
  if (seen != manifest.total_arcs)
    throw std::runtime_error("build_csr_file: merged parts yielded " + std::to_string(seen) +
                             " arcs, manifest declares " +
                             std::to_string(manifest.total_arcs));
  for (vertex_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  stats.count_seconds = seconds_since(t0);

  // Pass 2 — scatter.  The merged key stream is globally sorted, so the
  // targets land append-only: buffered sequential writes, never a dirty
  // mapped page (mmap-writing an 8m-byte array would hold it all in RSS).
  t0 = SteadyClock::now();
  const std::filesystem::path temp = out_path.string() + ".tmp";
  const int fd = posix_io::open_write(temp, "build_csr_file");
  std::uint64_t targets_checksum = shard::kFnvOffset;
  try {
    CsrFileHeader header{};
    std::memcpy(header.magic, kCsrMagic, sizeof(kCsrMagic));
    header.version = kCsrVersion;
    header.num_vertices = n;
    header.num_arcs = manifest.total_arcs;
    header.key_shift = manifest.key_shift;
    header.offsets_checksum =
        shard::bytes_checksum(offsets.data(), offsets.size() * sizeof(std::uint64_t));
    posix_io::write_full(fd, &header, sizeof(header), "build_csr_file");
    posix_io::write_full(fd, offsets.data(), offsets.size() * sizeof(std::uint64_t),
                         "build_csr_file");

    std::vector<std::uint64_t> out_buffer;
    out_buffer.reserve(std::size_t{1} << 17);  // 1 MiB of targets per flush
    const auto flush = [&] {
      if (out_buffer.empty()) return;
      targets_checksum = shard::bytes_checksum(
          out_buffer.data(), out_buffer.size() * sizeof(std::uint64_t), targets_checksum);
      posix_io::write_full(fd, out_buffer.data(), out_buffer.size() * sizeof(std::uint64_t),
                           "build_csr_file");
      out_buffer.clear();
    };
    for (const MergedPart& part : manifest.parts) {
      ArcShardCursor cursor(part.path, 0, &stats.io);
      std::size_t got = 0;
      while ((got = cursor.next_batch(batch.data(), batch.size())) != 0) {
        for (std::size_t i = 0; i < got; ++i) {
          out_buffer.push_back(batch[i] & packer.mask);
          if (out_buffer.size() == out_buffer.capacity()) flush();
        }
      }
    }
    flush();
    header.targets_checksum = targets_checksum;
    posix_io::pwrite_full(fd, &header, sizeof(header), 0, "build_csr_file");
    posix_io::fsync_fd(fd, "build_csr_file");
  } catch (...) {
    posix_io::close_fd(fd);
    std::error_code ignored;
    std::filesystem::remove(temp, ignored);
    throw;
  }
  posix_io::close_fd(fd);
  std::error_code rename_error;
  std::filesystem::rename(temp, out_path, rename_error);
  if (rename_error)
    throw std::runtime_error("build_csr_file: cannot publish " + out_path.string() + ": " +
                             rename_error.message());
  posix_io::fsync_path(out_path.has_parent_path() ? out_path.parent_path() : ".",
                       "build_csr_file");
  stats.scatter_seconds = seconds_since(t0);
  stats.bytes_written = sizeof(CsrFileHeader) +
                        (static_cast<std::uint64_t>(n) + 1 + manifest.total_arcs) *
                            sizeof(std::uint64_t);
  return stats;
}

CsrMmap::CsrMmap(const std::filesystem::path& path) {
  TRACE_SPAN("ooc.csr_map");
  std::error_code size_error;
  const std::uintmax_t file_size = std::filesystem::file_size(path, size_error);
  if (size_error)
    throw std::runtime_error("CsrMmap: cannot stat " + path.string() + ": " +
                             size_error.message());
  fd_ = posix_io::open_read(path, "CsrMmap");
  try {
    if (file_size < sizeof(CsrFileHeader))
      throw std::runtime_error("CsrMmap: " + path.string() + " is smaller than the header");
    CsrFileHeader header{};
    posix_io::pread_full(fd_, &header, sizeof(header), 0, "CsrMmap");
    if (std::memcmp(header.magic, kCsrMagic, sizeof(kCsrMagic)) != 0)
      throw std::runtime_error("CsrMmap: bad magic in " + path.string() +
                               " (not a .kcsr file)");
    if (header.version != kCsrVersion)
      throw std::runtime_error("CsrMmap: " + path.string() + " is version " +
                               std::to_string(header.version) + ", this build reads " +
                               std::to_string(kCsrVersion));
    // Untrusted counts: the implied layout must match the real file size
    // before either count sizes the mapping views.
    std::uint64_t offsets_bytes = 0;
    std::uint64_t targets_bytes = 0;
    try {
      offsets_bytes = checked_mul(header.num_vertices + 1, sizeof(std::uint64_t));
      targets_bytes = checked_mul(header.num_arcs, sizeof(std::uint64_t));
    } catch (const std::overflow_error&) {
      throw std::runtime_error("CsrMmap: corrupt header in " + path.string() +
                               " (counts overflow the layout)");
    }
    if (offsets_bytes > file_size || targets_bytes > file_size ||
        sizeof(CsrFileHeader) + offsets_bytes + targets_bytes != file_size)
      throw std::runtime_error("CsrMmap: corrupt header in " + path.string() + ": " +
                               std::to_string(header.num_vertices) + " vertices and " +
                               std::to_string(header.num_arcs) +
                               " arcs do not match the " + std::to_string(file_size) +
                               "-byte file");
    map_bytes_ = static_cast<std::size_t>(file_size);
    map_ = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_SHARED, fd_, 0);
    if (map_ == MAP_FAILED) {
      map_ = nullptr;
      throw std::runtime_error("CsrMmap: mmap failed for " + path.string() + ": " +
                               std::strerror(errno));
    }
    const auto* offsets = reinterpret_cast<const std::uint64_t*>(
        static_cast<const char*>(map_) + sizeof(CsrFileHeader));
    const auto* targets = offsets + (header.num_vertices + 1);
    // Verify the offsets array eagerly (it is the index every kernel
    // trusts, and small); target pages stay lazy and are pinned by the
    // recorded checksum for tools that want a full verify.
    if (shard::bytes_checksum(offsets, offsets_bytes) != header.offsets_checksum)
      throw std::runtime_error("CsrMmap: offsets checksum mismatch in " + path.string() +
                               " (corrupted file)");
    if (offsets[0] != 0 || offsets[header.num_vertices] != header.num_arcs)
      throw std::runtime_error("CsrMmap: offsets endpoints corrupt in " + path.string());
    view_ = CsrView(header.num_vertices,
                    {offsets, static_cast<std::size_t>(header.num_vertices) + 1},
                    {targets, static_cast<std::size_t>(header.num_arcs)});
  } catch (...) {
    unmap_or_warn(map_, map_bytes_);
    posix_io::close_fd(fd_);
    throw;
  }
}

CsrMmap::~CsrMmap() {
  unmap_or_warn(map_, map_bytes_);
  if (fd_ >= 0) posix_io::close_fd(fd_);
}

CsrMmap::CsrMmap(CsrMmap&& other) noexcept
    : fd_(other.fd_), map_(other.map_), map_bytes_(other.map_bytes_), view_(other.view_) {
  other.fd_ = -1;
  other.map_ = nullptr;
  other.map_bytes_ = 0;
  other.view_ = CsrView();
}

void CsrMmap::advise_sequential() const noexcept {
  advise_or_warn(map_, map_bytes_, MADV_SEQUENTIAL, "MADV_SEQUENTIAL");
}

void CsrMmap::advise_random() const noexcept {
  advise_or_warn(map_, map_bytes_, MADV_RANDOM, "MADV_RANDOM");
}

void CsrMmap::release_pages() const noexcept {
  advise_or_warn(map_, map_bytes_, MADV_DONTNEED, "MADV_DONTNEED");
}

}  // namespace kron
