#include "graph/external_merge.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <system_error>

#include "graph/shard_codec.hpp"
#include "util/parallel.hpp"
#include "util/posix_io.hpp"
#include "util/trace.hpp"

namespace kron {

namespace {

constexpr const char* kPlanName = "merge.plan";
constexpr const char* kManifestName = "merged.manifest";
constexpr const char* kPlanHeader = "KRONMERGE-PLAN 1";
constexpr const char* kManifestHeader = "KRONMERGE 1";

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

// ------------------------------------------------------------- loser tree
//
// Classic tournament tree of losers: internal node t holds the loser of
// the match between the winners of its two subtrees, node[0] the overall
// winner, so replacing the winner's key costs one root-to-leaf replay
// (O(log k)) instead of a full O(k) scan.  Exhausted streams lose to every
// live one; ties break on stream index, which only matters for determinism
// of the consumption order (equal keys dedupe to one output either way).
class LoserTree {
 public:
  LoserTree(std::vector<std::uint64_t> keys, std::vector<char> alive)
      : k_(keys.size()), key_(std::move(keys)), alive_(std::move(alive)), node_(k_, kEmpty) {
    // Build by inserting each leaf along its path: the first winner to
    // reach an empty node parks there; the second plays the match.  Every
    // internal node has exactly two subtree winners, so all k-1 matches
    // are played exactly once and node_[0] ends as the overall winner.
    for (std::size_t s = 0; s < k_; ++s) {
      std::size_t w = s;
      bool parked = false;
      for (std::size_t t = (s + k_) / 2; t > 0; t /= 2) {
        if (node_[t] == kEmpty) {
          node_[t] = w;
          parked = true;
          break;
        }
        if (beats(node_[t], w)) std::swap(node_[t], w);
      }
      if (!parked) node_[0] = w;
    }
  }

  [[nodiscard]] std::size_t winner() const noexcept { return node_[0]; }
  [[nodiscard]] bool winner_alive() const noexcept { return alive_[node_[0]] != 0; }
  [[nodiscard]] std::uint64_t winner_key() const noexcept { return key_[node_[0]]; }

  /// Replace the current winner's key and replay its path.
  void advance(std::uint64_t new_key, bool still_alive) {
    const std::size_t s = node_[0];
    key_[s] = new_key;
    alive_[s] = still_alive ? 1 : 0;
    std::size_t w = s;
    for (std::size_t t = (s + k_) / 2; t > 0; t /= 2)
      if (beats(node_[t], w)) std::swap(node_[t], w);
    node_[0] = w;
  }

 private:
  static constexpr std::size_t kEmpty = static_cast<std::size_t>(-1);

  [[nodiscard]] bool beats(std::size_t a, std::size_t b) const noexcept {
    if (alive_[a] != alive_[b]) return alive_[a] != 0;
    if (alive_[a] == 0) return a < b;
    if (key_[a] != key_[b]) return key_[a] < key_[b];
    return a < b;
  }

  std::size_t k_;
  std::vector<std::uint64_t> key_;
  std::vector<char> alive_;
  std::vector<std::size_t> node_;
};

// ------------------------------------------------------- small text files

void write_text_atomic(const std::filesystem::path& target, const std::string& text,
                       const std::string& what) {
  const std::filesystem::path temp = target.string() + ".tmp";
  {
    const int fd = posix_io::open_write(temp, what);
    try {
      posix_io::write_full(fd, text.data(), text.size(), what);
      posix_io::fsync_fd(fd, what);
    } catch (...) {
      posix_io::close_fd(fd);
      throw;
    }
    posix_io::close_fd(fd);
  }
  std::error_code rename_error;
  std::filesystem::rename(temp, target, rename_error);
  if (rename_error)
    throw std::runtime_error(what + ": cannot publish " + target.string() + ": " +
                             rename_error.message());
  posix_io::fsync_path(target.parent_path(), what);
}

[[noreturn]] void bad_file(const std::filesystem::path& path, std::size_t line_no,
                           const std::string& why) {
  throw std::runtime_error(path.string() + " line " + std::to_string(line_no) + ": " + why);
}

std::uint64_t parse_u64(const std::filesystem::path& path, std::size_t line_no,
                        const std::string& token) {
  std::uint64_t value = 0;
  const auto [next, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || next != token.data() + token.size() || token.empty())
    bad_file(path, line_no, "expected a nonnegative integer, got '" + token + "'");
  return value;
}

std::vector<std::string> split_fields(const std::string& line) {
  std::vector<std::string> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    const std::size_t space = line.find(' ', i);
    if (space == std::string::npos) {
      fields.push_back(line.substr(i));
      break;
    }
    fields.push_back(line.substr(i, space - i));
    i = space + 1;
  }
  return fields;
}

// ------------------------------------------------------------------ plan

/// Identity of a merge's input set: which shards, with which contents.
/// Leftover part files in an output directory are only trusted when the
/// recorded plan hashes to the same inputs (resume of the SAME merge).
std::uint64_t inputs_identity(const std::vector<ArcShardInfo>& infos) {
  std::uint64_t h = shard::kFnvOffset;
  const auto mix = [&h](std::uint64_t v) { h = shard::bytes_checksum(&v, sizeof(v), h); };
  mix(infos.size());
  for (const ArcShardInfo& info : infos) {
    const std::string name = info.path.filename().string();
    h = shard::bytes_checksum(name.data(), name.size(), h);
    mix(info.num_arcs);
    mix(info.min_key);
    mix(info.max_key);
    mix(info.payload_bytes);
  }
  return h;
}

struct MergePlan {
  std::uint64_t num_vertices = 0;
  std::uint64_t key_shift = 0;
  std::uint64_t inputs_hash = 0;
  std::vector<std::uint64_t> splitters;  ///< parts = splitters.size() + 1
};

void write_plan(const std::filesystem::path& dir, const MergePlan& plan) {
  std::string text;
  text += std::string(kPlanHeader) + "\n";
  text += "encoding " + std::to_string(shard::kEncodingVersion) + "\n";
  text += "vertices " + std::to_string(plan.num_vertices) + "\n";
  text += "key_shift " + std::to_string(plan.key_shift) + "\n";
  text += "inputs_hash " + std::to_string(plan.inputs_hash) + "\n";
  text += "parts " + std::to_string(plan.splitters.size() + 1) + "\n";
  for (const std::uint64_t s : plan.splitters)
    text += "splitter " + std::to_string(s) + "\n";
  write_text_atomic(dir / kPlanName, text, "merge_shards(plan)");
}

MergePlan read_plan(const std::filesystem::path& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("merge_shards: cannot open " + path.string());
  std::string line;
  std::getline(in, line);
  if (line != kPlanHeader) bad_file(path, 1, "bad header '" + line + "'");
  MergePlan plan;
  std::uint64_t parts = 0;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> f = split_fields(line);
    if (f.size() != 2) bad_file(path, line_no, "expected 'key value'");
    if (f[0] == "encoding") {
      if (parse_u64(path, line_no, f[1]) != shard::kEncodingVersion)
        bad_file(path, line_no, "plan from an incompatible shard encoding");
    } else if (f[0] == "vertices") {
      plan.num_vertices = parse_u64(path, line_no, f[1]);
    } else if (f[0] == "key_shift") {
      plan.key_shift = parse_u64(path, line_no, f[1]);
    } else if (f[0] == "inputs_hash") {
      plan.inputs_hash = parse_u64(path, line_no, f[1]);
    } else if (f[0] == "parts") {
      parts = parse_u64(path, line_no, f[1]);
    } else if (f[0] == "splitter") {
      plan.splitters.push_back(parse_u64(path, line_no, f[1]));
    } else {
      bad_file(path, line_no, "unknown key '" + f[0] + "'");
    }
  }
  if (parts == 0 || plan.splitters.size() + 1 != parts)
    bad_file(path, line_no, "truncated plan (parts / splitters mismatch)");
  return plan;
}

std::filesystem::path part_path(const std::filesystem::path& dir, std::size_t part) {
  char name[32];
  std::snprintf(name, sizeof(name), "merged-%06zu.kshard", part);
  return dir / name;
}

/// Splitters for `parts` disjoint key ranges, drawn from the inputs' block
/// index first-keys — the natural quantile sketch the shard format already
/// pays for.  Deterministic for a given input set; independent of thread
/// count (the plan file then pins it across crash/resume runs).
std::vector<std::uint64_t> choose_splitters(const std::vector<std::filesystem::path>& inputs,
                                            std::size_t parts, std::size_t buffer_bytes) {
  std::vector<std::uint64_t> firsts;
  for (const std::filesystem::path& path : inputs) {
    ArcShardCursor cursor(path, buffer_bytes);  // header + index reads only
    for (const ArcShardBlock& b : cursor.blocks()) firsts.push_back(b.first_key);
  }
  std::sort(firsts.begin(), firsts.end());
  std::vector<std::uint64_t> splitters;
  if (parts <= 1 || firsts.empty()) return splitters;
  for (std::size_t p = 1; p < parts; ++p) {
    const std::uint64_t candidate = firsts[firsts.size() * p / parts];
    if (candidate == 0) continue;  // range [0, 0) would be empty anyway
    if (splitters.empty() || candidate > splitters.back()) splitters.push_back(candidate);
  }
  return splitters;
}

// ------------------------------------------------------------ part merge

struct PartRange {
  std::uint64_t lo = 0;       ///< first key of the range
  std::uint64_t hi = 0;       ///< exclusive upper bound; unused when !bounded
  bool bounded = false;       ///< last part runs to the end of the key space
};

struct PartOutcome {
  ArcShardInfo info;
  MergeStats stats;
  bool reused = false;
};

PartOutcome merge_one_part(const std::vector<std::filesystem::path>& inputs,
                           const std::filesystem::path& out_path, vertex_t num_vertices,
                           const PartRange& range, std::size_t buffer_bytes) {
  TRACE_SPAN("ooc.merge_part");
  PartOutcome out;
  MergeStats& st = out.stats;
  std::vector<ArcShardCursor> cursors;
  cursors.reserve(inputs.size());
  std::vector<std::uint64_t> keys(inputs.size(), 0);
  std::vector<char> alive(inputs.size(), 0);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    cursors.emplace_back(inputs[i], buffer_bytes, &st.io);
    cursors.back().seek(range.lo);
    std::uint64_t first = 0;
    if (cursors.back().next(first)) {
      keys[i] = first;
      alive[i] = 1;
    }
  }
  LoserTree tree(std::move(keys), std::move(alive));
  ArcShardWriter writer(out_path, num_vertices, buffer_bytes, &st.io);
  std::uint64_t last = 0;
  bool have_last = false;
  while (tree.winner_alive()) {
    const std::uint64_t key = tree.winner_key();
    if (range.bounded && key >= range.hi) break;  // winner is the global min
    ++st.arcs_in;
    if (!have_last || key != last) {
      writer.append_key(key);
      last = key;
      have_last = true;
      ++st.arcs_out;
    } else {
      ++st.duplicates_dropped;
    }
    std::uint64_t next_key = 0;
    const bool more = cursors[tree.winner()].next(next_key);
    tree.advance(next_key, more);
  }
  out.info = writer.finish();
  st.parts_merged = 1;
  return out;
}

// -------------------------------------------------------------- manifest

void write_merged_manifest_file(const std::filesystem::path& dir, const MergedManifest& m,
                                std::uint64_t inputs_hash) {
  std::string text;
  text += std::string(kManifestHeader) + "\n";
  text += "encoding " + std::to_string(m.encoding) + "\n";
  text += "vertices " + std::to_string(m.num_vertices) + "\n";
  text += "key_shift " + std::to_string(m.key_shift) + "\n";
  text += "inputs_hash " + std::to_string(inputs_hash) + "\n";
  text += "arcs " + std::to_string(m.total_arcs) + "\n";
  for (const MergedPart& p : m.parts)
    text += "part " + p.path.filename().string() + " " + std::to_string(p.num_arcs) + " " +
            std::to_string(p.min_key) + " " + std::to_string(p.max_key) + "\n";
  write_text_atomic(dir / kManifestName, text, "merge_shards(manifest)");
}

MergedManifest read_merged_manifest_file(const std::filesystem::path& dir,
                                         std::uint64_t* inputs_hash) {
  const std::filesystem::path path = dir / kManifestName;
  std::ifstream in(path);
  if (!in)
    throw std::runtime_error("read_merged_manifest: cannot open " + path.string() +
                             " — the merge never completed (or the wrong directory)");
  std::string line;
  std::getline(in, line);
  if (line != kManifestHeader) bad_file(path, 1, "bad header '" + line + "'");
  MergedManifest m;
  std::uint64_t declared_arcs = 0;
  bool saw_arcs = false;
  std::size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    const std::vector<std::string> f = split_fields(line);
    if (f[0] == "part") {
      if (f.size() != 5) bad_file(path, line_no, "expected 'part NAME ARCS MIN MAX'");
      MergedPart p;
      p.path = dir / f[1];
      p.num_arcs = parse_u64(path, line_no, f[2]);
      p.min_key = parse_u64(path, line_no, f[3]);
      p.max_key = parse_u64(path, line_no, f[4]);
      m.parts.push_back(std::move(p));
      continue;
    }
    if (f.size() != 2) bad_file(path, line_no, "expected 'key value'");
    if (f[0] == "encoding") {
      m.encoding = parse_u64(path, line_no, f[1]);
    } else if (f[0] == "vertices") {
      m.num_vertices = parse_u64(path, line_no, f[1]);
    } else if (f[0] == "key_shift") {
      m.key_shift = parse_u64(path, line_no, f[1]);
    } else if (f[0] == "inputs_hash") {
      if (inputs_hash != nullptr) *inputs_hash = parse_u64(path, line_no, f[1]);
    } else if (f[0] == "arcs") {
      declared_arcs = parse_u64(path, line_no, f[1]);
      saw_arcs = true;
    } else {
      bad_file(path, line_no, "unknown key '" + f[0] + "'");
    }
  }
  if (!saw_arcs || m.encoding != shard::kEncodingVersion)
    bad_file(path, line_no, "truncated manifest or incompatible encoding");
  std::uint64_t total = 0;
  std::uint64_t prev_max = 0;
  bool have_prev = false;
  for (const MergedPart& p : m.parts) {
    total += p.num_arcs;
    if (p.num_arcs == 0) continue;
    if (have_prev && p.min_key <= prev_max)
      bad_file(path, line_no, "parts are not disjoint ascending key ranges");
    prev_max = p.max_key;
    have_prev = true;
  }
  if (total != declared_arcs)
    bad_file(path, line_no, "part arc counts do not sum to the declared total");
  m.total_arcs = total;
  return m;
}

}  // namespace

std::vector<std::filesystem::path> list_arc_shards(const std::filesystem::path& dir) {
  if (!std::filesystem::is_directory(dir))
    throw std::runtime_error("list_arc_shards: " + dir.string() + " is not a directory");
  std::vector<std::filesystem::path> shards;
  for (const auto& entry : std::filesystem::directory_iterator(dir))
    if (entry.is_regular_file() && entry.path().extension() == ".kshard")
      shards.push_back(entry.path());
  std::sort(shards.begin(), shards.end());
  return shards;
}

MergedManifest merge_shards(const std::vector<std::filesystem::path>& inputs,
                            const std::filesystem::path& out_dir, const MergeOptions& options,
                            MergeStats* stats) {
  TRACE_SPAN("ooc.merge");
  const auto t0 = SteadyClock::now();
  if (inputs.empty())
    throw std::invalid_argument("merge_shards: no input shards (nothing to merge)");

  // Header pass: pin the key geometry and reject inconsistent inputs
  // before any byte of payload moves.
  std::vector<ArcShardInfo> infos;
  infos.reserve(inputs.size());
  for (const std::filesystem::path& path : inputs) infos.push_back(read_arc_shard_info(path));
  for (const ArcShardInfo& info : infos)
    if (info.key_shift != infos.front().key_shift ||
        info.num_vertices != infos.front().num_vertices)
      throw std::invalid_argument(
          "merge_shards: " + info.path.string() + " was packed for " +
          std::to_string(info.num_vertices) + " vertices (shift " +
          std::to_string(info.key_shift) + ") but " + infos.front().path.string() +
          " for " + std::to_string(infos.front().num_vertices) + " (shift " +
          std::to_string(infos.front().key_shift) +
          ") — shards from different products cannot be merged");
  const std::uint64_t identity = inputs_identity(infos);
  const vertex_t num_vertices = infos.front().num_vertices;

  // A completed merge is idempotent: return the existing commit record if
  // it matches these inputs, reject it loudly if it does not.
  if (std::filesystem::exists(out_dir / kManifestName)) {
    std::uint64_t recorded = 0;
    MergedManifest existing = read_merged_manifest_file(out_dir, &recorded);
    if (recorded != identity)
      throw std::runtime_error("merge_shards: " + out_dir.string() +
                               " already holds a merge of a DIFFERENT input set; "
                               "use a fresh output directory");
    if (stats != nullptr) {
      stats->parts_reused = existing.parts.size();
      stats->arcs_out = existing.total_arcs;
      stats->seconds = seconds_since(t0);
    }
    return existing;
  }

  std::filesystem::create_directories(out_dir);

  // The plan pins the partition (and the input identity) before any part
  // is written, so a crashed merge resumes against the same ranges and a
  // directory holding someone else's parts is rejected.
  const std::size_t pool_width = static_cast<std::size_t>(ThreadPool::instance().num_threads());
  const std::size_t want_parts = options.parts != 0 ? options.parts : pool_width;
  const std::size_t probe_buffer =
      options.buffer_bytes != 0 ? options.buffer_bytes : default_shard_buffer_bytes();
  MergePlan plan;
  if (std::filesystem::exists(out_dir / kPlanName)) {
    plan = read_plan(out_dir / kPlanName);
    if (plan.inputs_hash != identity || plan.num_vertices != num_vertices ||
        plan.key_shift != infos.front().key_shift)
      throw std::runtime_error("merge_shards: " + out_dir.string() +
                               " holds a partial merge of a DIFFERENT input set; "
                               "use a fresh output directory");
  } else {
    plan.num_vertices = num_vertices;
    plan.key_shift = infos.front().key_shift;
    plan.inputs_hash = identity;
    plan.splitters = choose_splitters(inputs, want_parts, probe_buffer);
    write_plan(out_dir, plan);
  }
  const std::size_t parts = plan.splitters.size() + 1;

  // Derive the per-stream buffer from the memory budget: every concurrent
  // part holds one cursor per input plus one writer.
  std::size_t buffer = options.buffer_bytes;
  if (buffer == 0) {
    const std::size_t concurrent = std::min(parts, pool_width);
    const std::uint64_t streams =
        static_cast<std::uint64_t>(concurrent) * (inputs.size() + 1);
    const std::uint64_t per_stream = options.budget_bytes / std::max<std::uint64_t>(streams, 1);
    buffer = static_cast<std::size_t>(
        std::clamp<std::uint64_t>(per_stream, 4096, default_shard_buffer_bytes()));
  }

  std::vector<PartOutcome> outcomes(parts);
  ThreadPool::instance().run_tasks(parts, [&](std::size_t p) {
    PartRange range;
    range.lo = p == 0 ? 0 : plan.splitters[p - 1];
    range.bounded = p + 1 < parts;
    range.hi = range.bounded ? plan.splitters[p] : 0;
    const std::filesystem::path path = part_path(out_dir, p);
    if (std::filesystem::exists(path)) {
      // Published parts are atomic, so an existing file is a complete part
      // of THIS plan (the plan hash vetted the directory).  Verify its
      // header against the range before trusting it.
      ArcShardInfo info = read_arc_shard_info(path);
      if (info.num_vertices != num_vertices || info.key_shift != plan.key_shift ||
          (info.num_arcs != 0 &&
           (info.min_key < range.lo || (range.bounded && info.max_key >= range.hi))))
        throw std::runtime_error("merge_shards: leftover part " + path.string() +
                                 " does not fit its key range; use a fresh output directory");
      outcomes[p].info = std::move(info);
      outcomes[p].reused = true;
      outcomes[p].stats.parts_reused = 1;
      outcomes[p].stats.arcs_out = outcomes[p].info.num_arcs;
      return;
    }
    outcomes[p] = merge_one_part(inputs, path, num_vertices, range, buffer);
  });

  MergedManifest manifest;
  manifest.encoding = shard::kEncodingVersion;
  manifest.num_vertices = num_vertices;
  manifest.key_shift = infos.front().key_shift;
  for (std::size_t p = 0; p < parts; ++p) {
    const ArcShardInfo& info = outcomes[p].info;
    manifest.total_arcs += info.num_arcs;
    manifest.parts.push_back(
        {info.path, info.num_arcs, info.min_key, info.max_key});
  }
  write_merged_manifest_file(out_dir, manifest, identity);

  if (stats != nullptr) {
    for (const PartOutcome& o : outcomes) {
      stats->arcs_in += o.stats.arcs_in;
      stats->arcs_out += o.stats.arcs_out;
      stats->duplicates_dropped += o.stats.duplicates_dropped;
      stats->parts_merged += o.stats.parts_merged;
      stats->parts_reused += o.stats.parts_reused;
      stats->io += o.stats.io;
    }
    stats->seconds = seconds_since(t0);
  }
  return manifest;
}

MergedManifest read_merged_manifest(const std::filesystem::path& dir) {
  MergedManifest m = read_merged_manifest_file(dir, nullptr);
  // Cross-check every part's on-disk header against the commit record —
  // cheap (header reads only) and catches a part swapped or lost after the
  // merge finished.
  for (const MergedPart& p : m.parts) {
    const ArcShardInfo info = read_arc_shard_info(p.path);
    if (info.num_arcs != p.num_arcs ||
        (info.num_arcs != 0 && (info.min_key != p.min_key || info.max_key != p.max_key)) ||
        info.key_shift != m.key_shift || info.num_vertices != m.num_vertices)
      throw std::runtime_error("read_merged_manifest: part " + p.path.string() +
                               " does not match the manifest (directory modified "
                               "after the merge?)");
  }
  return m;
}

EdgeList read_merged_edge_list(const std::filesystem::path& dir) {
  const MergedManifest m = read_merged_manifest(dir);
  const shard::KeyPacker packer = shard::KeyPacker::for_shift(m.key_shift);
  std::vector<Edge> edges;
  edges.reserve(m.total_arcs);
  for (const MergedPart& p : m.parts) {
    ArcShardCursor cursor(p.path);
    std::uint64_t key = 0;
    while (cursor.next(key)) edges.push_back(packer.unpack(key));
  }
  return EdgeList(m.num_vertices, std::move(edges));
}

void export_merged_binary(const std::filesystem::path& dir,
                          const std::filesystem::path& out_path) {
  TRACE_SPAN("ooc.export_binary");
  const MergedManifest m = read_merged_manifest(dir);
  const shard::KeyPacker packer = shard::KeyPacker::for_shift(m.key_shift);
  // Same 24-byte "KRONEL1\0" framing write_edge_list_binary emits, but
  // streamed arc by arc so the export never materialises the edge list.
  constexpr char kMagic[8] = {'K', 'R', 'O', 'N', 'E', 'L', '1', '\0'};
  const std::filesystem::path temp = out_path.string() + ".tmp";
  const int fd = posix_io::open_write(temp, "export_merged_binary");
  try {
    posix_io::write_full(fd, kMagic, sizeof(kMagic), "export_merged_binary");
    const std::uint64_t n = m.num_vertices;
    const std::uint64_t arcs = m.total_arcs;
    posix_io::write_full(fd, &n, sizeof(n), "export_merged_binary");
    posix_io::write_full(fd, &arcs, sizeof(arcs), "export_merged_binary");
    std::vector<Edge> buffer;
    buffer.reserve(std::size_t{1} << 16);
    for (const MergedPart& p : m.parts) {
      ArcShardCursor cursor(p.path);
      std::uint64_t key = 0;
      while (cursor.next(key)) {
        buffer.push_back(packer.unpack(key));
        if (buffer.size() == buffer.capacity()) {
          posix_io::write_full(fd, buffer.data(), buffer.size() * sizeof(Edge),
                               "export_merged_binary");
          buffer.clear();
        }
      }
    }
    if (!buffer.empty())
      posix_io::write_full(fd, buffer.data(), buffer.size() * sizeof(Edge),
                           "export_merged_binary");
    posix_io::fsync_fd(fd, "export_merged_binary");
  } catch (...) {
    posix_io::close_fd(fd);
    throw;
  }
  posix_io::close_fd(fd);
  std::error_code rename_error;
  std::filesystem::rename(temp, out_path, rename_error);
  if (rename_error)
    throw std::runtime_error("export_merged_binary: cannot publish " + out_path.string() +
                             ": " + rename_error.message());
  posix_io::fsync_path(out_path.has_parent_path() ? out_path.parent_path() : ".",
                       "export_merged_binary");
}

}  // namespace kron
