#include "graph/io.hpp"

#include <algorithm>
#include <fstream>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace kron {

EdgeList read_edge_list(std::istream& in, vertex_t min_vertices) {
  std::vector<Edge> edges;
  vertex_t n = min_vertices;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    std::istringstream fields(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    if (!(fields >> u >> v)) {
      throw std::runtime_error("read_edge_list: malformed line " + std::to_string(line_no) +
                               ": '" + line + "'");
    }
    edges.push_back({u, v});
    n = std::max({n, u + 1, v + 1});
  }
  return EdgeList(n, std::move(edges));
}

EdgeList read_edge_list_file(const std::filesystem::path& path, vertex_t min_vertices) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path.string());
  return read_edge_list(in, min_vertices);
}

void write_edge_list(std::ostream& out, const EdgeList& edges) {
  out << "# vertices " << edges.num_vertices() << "\n";
  out << "# arcs " << edges.num_arcs() << "\n";
  for (const Edge& e : edges.edges()) out << e.u << " " << e.v << "\n";
}

void write_edge_list_file(const std::filesystem::path& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path.string());
  write_edge_list(out, edges);
  if (!out) throw std::runtime_error("write_edge_list_file: write failed for " + path.string());
}

namespace {
constexpr char kBinaryMagic[8] = {'K', 'R', 'O', 'N', 'E', 'L', '1', '\0'};
}  // namespace

void write_edge_list_binary(const std::filesystem::path& path, const EdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_edge_list_binary: cannot open " + path.string());
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint64_t n = edges.num_vertices();
  const std::uint64_t arcs = edges.num_arcs();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(arcs * sizeof(Edge)));
  if (!out)
    throw std::runtime_error("write_edge_list_binary: write failed for " + path.string());
}

EdgeList read_edge_list_binary(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_edge_list_binary: cannot open " + path.string());
  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0)
    throw std::runtime_error("read_edge_list_binary: bad magic in " + path.string());
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  if (!in) throw std::runtime_error("read_edge_list_binary: truncated header");
  std::vector<Edge> list(arcs);
  in.read(reinterpret_cast<char*>(list.data()),
          static_cast<std::streamsize>(arcs * sizeof(Edge)));
  if (!in || in.gcount() != static_cast<std::streamsize>(arcs * sizeof(Edge)))
    throw std::runtime_error("read_edge_list_binary: truncated payload");
  if (in.peek() != std::ifstream::traits_type::eof())
    throw std::runtime_error("read_edge_list_binary: trailing bytes");
  for (const Edge& e : list)
    if (e.u >= n || e.v >= n)
      throw std::runtime_error("read_edge_list_binary: arc endpoint out of range");
  return EdgeList(n, std::move(list));
}

}  // namespace kron
