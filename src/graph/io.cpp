#include "graph/io.hpp"

#include <algorithm>
#include <charconv>
#include <filesystem>
#include <fstream>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include "util/hash.hpp"
#include "util/overflow.hpp"
#include "util/posix_io.hpp"
#include "util/trace.hpp"

namespace kron {

namespace {

[[noreturn]] void malformed_line(std::size_t line_no, const std::string& line,
                                 const std::string& why) {
  throw std::runtime_error("read_edge_list: malformed line " + std::to_string(line_no) +
                           " (" + why + "): '" + line + "'");
}

const char* skip_blank(const char* p, const char* end) {
  while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

/// Parse one vertex id.  `istream >> uint64_t` would accept "-1" by
/// modular wrap (yielding vertex 2^64-1); std::from_chars on an unsigned
/// type rejects any sign, and the leading '-' check turns that into a
/// specific diagnostic.
std::uint64_t parse_vertex(const char*& p, const char* end, std::size_t line_no,
                           const std::string& line) {
  if (p != end && *p == '-')
    malformed_line(line_no, line, "negative vertex id");
  std::uint64_t value = 0;
  const auto [next, ec] = std::from_chars(p, end, value);
  if (ec == std::errc::result_out_of_range)
    malformed_line(line_no, line, "vertex id exceeds 64 bits");
  if (ec != std::errc() || next == p)
    malformed_line(line_no, line, "expected a vertex id");
  p = next;
  return value;
}

}  // namespace

EdgeList read_edge_list(std::istream& in, vertex_t min_vertices) {
  std::vector<Edge> edges;
  vertex_t n = min_vertices;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const char* p = line.data();
    const char* const end = line.data() + line.size();
    p = skip_blank(p, end);
    if (p == end) continue;  // whitespace-only line
    const std::uint64_t u = parse_vertex(p, end, line_no, line);
    const char* after_u = skip_blank(p, end);
    if (after_u == p) malformed_line(line_no, line, "expected whitespace after first id");
    p = after_u;
    const std::uint64_t v = parse_vertex(p, end, line_no, line);
    p = skip_blank(p, end);
    if (p != end) malformed_line(line_no, line, "trailing garbage after second id");
    // Id 2^64-1 would need num_vertices = 2^64, which vertex_t cannot hold.
    if (u == std::numeric_limits<vertex_t>::max() || v == std::numeric_limits<vertex_t>::max())
      malformed_line(line_no, line, "vertex id too large for vertex_t");
    edges.push_back({u, v});
    n = std::max({n, u + 1, v + 1});
  }
  return EdgeList(n, std::move(edges));
}

EdgeList read_edge_list_file(const std::filesystem::path& path, vertex_t min_vertices) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path.string());
  return read_edge_list(in, min_vertices);
}

void write_edge_list(std::ostream& out, const EdgeList& edges) {
  out << "# vertices " << edges.num_vertices() << "\n";
  out << "# arcs " << edges.num_arcs() << "\n";
  for (const Edge& e : edges.edges()) out << e.u << " " << e.v << "\n";
}

void write_edge_list_file(const std::filesystem::path& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path.string());
  write_edge_list(out, edges);
  if (!out) throw std::runtime_error("write_edge_list_file: write failed for " + path.string());
}

namespace {
constexpr char kBinaryMagic[8] = {'K', 'R', 'O', 'N', 'E', 'L', '1', '\0'};
}  // namespace

void write_edge_list_binary(const std::filesystem::path& path, const EdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_edge_list_binary: cannot open " + path.string());
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint64_t n = edges.num_vertices();
  const std::uint64_t arcs = edges.num_arcs();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(arcs * sizeof(Edge)));
  if (!out)
    throw std::runtime_error("write_edge_list_binary: write failed for " + path.string());
}

EdgeList read_edge_list_binary(const std::filesystem::path& path) {
  TRACE_SPAN("io.read_binary");
  std::error_code size_error;
  const std::uintmax_t file_size = std::filesystem::file_size(path, size_error);
  if (size_error)
    throw std::runtime_error("read_edge_list_binary: cannot stat " + path.string() + ": " +
                             size_error.message());
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_edge_list_binary: cannot open " + path.string());
  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0)
    throw std::runtime_error("read_edge_list_binary: bad magic in " + path.string());
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  if (!in) throw std::runtime_error("read_edge_list_binary: truncated header");
  // The arc count is untrusted: `arcs * sizeof(Edge)` must not wrap (a
  // wrapped length would make the read below "succeed" short), and the
  // payload it implies must fit in the bytes actually present — checked
  // BEFORE the vector below sizes an allocation from it.
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kBinaryMagic) + sizeof(std::uint64_t) + sizeof(std::uint64_t);
  std::uint64_t payload_bytes = 0;
  try {
    payload_bytes = checked_mul(arcs, sizeof(Edge));
  } catch (const std::overflow_error&) {
    throw std::runtime_error("read_edge_list_binary: corrupt header in " + path.string() +
                             ": arc count " + std::to_string(arcs) +
                             " overflows the payload size");
  }
  if (file_size < kHeaderBytes || payload_bytes > file_size - kHeaderBytes)
    throw std::runtime_error("read_edge_list_binary: corrupt header in " + path.string() +
                             ": " + std::to_string(arcs) + " arcs (" +
                             std::to_string(payload_bytes) + " bytes) exceed the " +
                             std::to_string(file_size) + "-byte file");
  std::vector<Edge> list(arcs);
  in.read(reinterpret_cast<char*>(list.data()),
          static_cast<std::streamsize>(payload_bytes));
  if (!in || in.gcount() != static_cast<std::streamsize>(payload_bytes))
    throw std::runtime_error("read_edge_list_binary: truncated payload");
  if (in.peek() != std::ifstream::traits_type::eof())
    throw std::runtime_error("read_edge_list_binary: trailing bytes");
  for (const Edge& e : list)
    if (e.u >= n || e.v >= n)
      throw std::runtime_error("read_edge_list_binary: arc endpoint out of range");
  return EdgeList(n, std::move(list));
}

// --- generator shard snapshots (checkpoint/resume) -----------------------

namespace {

constexpr char kShardMagic[8] = {'K', 'R', 'O', 'N', 'C', 'K', '1', '\0'};

/// Fixed-size shard header, written verbatim (all fields little-endian u64
/// on every platform this library targets).
struct ShardHeader {
  char magic[8];
  std::uint64_t config_hash;
  std::uint64_t rank;
  std::uint64_t completed_epochs;
  std::uint64_t produced_chunks;
  std::uint64_t num_arcs;
  std::uint64_t checksum;
};
static_assert(sizeof(ShardHeader) == 56);

}  // namespace

std::uint64_t arc_set_checksum(std::span<const Edge> arcs) noexcept {
  // Wrapping sum of per-arc hashes: insensitive to storage order (which
  // varies run to run under the asynchronous exchange) but sensitive to
  // the multiset of arcs, including direction.
  std::uint64_t sum = 0;
  for (const Edge& e : arcs) sum += hash_combine(mix64(e.u ^ 0x636b70746b726fULL), e.v);
  return sum;
}

void write_shard_snapshot(const std::filesystem::path& path, std::uint64_t config_hash,
                          std::uint64_t rank, std::uint64_t completed_epochs,
                          std::uint64_t produced_chunks, std::span<const Edge> arcs) {
  TRACE_SPAN("checkpoint.write_shard");
  // Write-fsync-rename-fsync so a crash at any point — including a power
  // loss after the rename — can never leave a torn or empty file at the
  // published path: the temp file's bytes are durable before the rename
  // makes them visible, and the directory entry is durable before the
  // caller treats the checkpoint as taken.
  const std::filesystem::path temp = path.string() + ".tmp";
  {
    const int fd = posix_io::open_write(temp, "write_shard_snapshot");
    try {
      ShardHeader header{};
      std::memcpy(header.magic, kShardMagic, sizeof(kShardMagic));
      header.config_hash = config_hash;
      header.rank = rank;
      header.completed_epochs = completed_epochs;
      header.produced_chunks = produced_chunks;
      header.num_arcs = arcs.size();
      header.checksum = arc_set_checksum(arcs);
      posix_io::write_full(fd, &header, sizeof(header), "write_shard_snapshot");
      posix_io::write_full(fd, arcs.data(), arcs.size() * sizeof(Edge),
                           "write_shard_snapshot");
      posix_io::fsync_fd(fd, "write_shard_snapshot");
    } catch (...) {
      posix_io::close_fd(fd);
      throw;
    }
    posix_io::close_fd(fd);
  }
  std::error_code rename_error;
  std::filesystem::rename(temp, path, rename_error);
  if (rename_error)
    throw std::runtime_error("write_shard_snapshot: cannot publish " + path.string() + ": " +
                             rename_error.message());
  posix_io::fsync_path(path.has_parent_path() ? path.parent_path() : ".",
                       "write_shard_snapshot");
}

ShardSnapshot read_shard_snapshot(const std::filesystem::path& path) {
  TRACE_SPAN("checkpoint.read_shard");
  std::error_code size_error;
  const std::uintmax_t file_size = std::filesystem::file_size(path, size_error);
  if (size_error)
    throw std::runtime_error("read_shard_snapshot: cannot stat " + path.string() + ": " +
                             size_error.message());
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_shard_snapshot: cannot open " + path.string());
  ShardHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, kShardMagic, sizeof(kShardMagic)) != 0)
    throw std::runtime_error("read_shard_snapshot: bad magic in " + path.string() +
                             " (not a shard snapshot)");
  // Untrusted count: the implied payload must not wrap and must match the
  // bytes actually present — a torn shard fails here, not deep in a resume.
  std::uint64_t payload_bytes = 0;
  try {
    payload_bytes = checked_mul(header.num_arcs, sizeof(Edge));
  } catch (const std::overflow_error&) {
    throw std::runtime_error("read_shard_snapshot: corrupt header in " + path.string() +
                             ": arc count " + std::to_string(header.num_arcs) +
                             " overflows the payload size");
  }
  if (file_size != sizeof(ShardHeader) + payload_bytes)
    throw std::runtime_error("read_shard_snapshot: corrupt shard " + path.string() + ": " +
                             std::to_string(header.num_arcs) + " arcs imply " +
                             std::to_string(sizeof(ShardHeader) + payload_bytes) +
                             " bytes but the file holds " + std::to_string(file_size));
  ShardSnapshot shard;
  shard.config_hash = header.config_hash;
  shard.rank = header.rank;
  shard.completed_epochs = header.completed_epochs;
  shard.produced_chunks = header.produced_chunks;
  shard.arcs.resize(header.num_arcs);
  in.read(reinterpret_cast<char*>(shard.arcs.data()),
          static_cast<std::streamsize>(payload_bytes));
  if (!in || in.gcount() != static_cast<std::streamsize>(payload_bytes))
    throw std::runtime_error("read_shard_snapshot: truncated payload in " + path.string());
  if (arc_set_checksum(shard.arcs) != header.checksum)
    throw std::runtime_error("read_shard_snapshot: checksum mismatch in " + path.string() +
                             " (corrupted shard); restart the run without --resume");
  return shard;
}

}  // namespace kron
