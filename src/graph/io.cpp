#include "graph/io.hpp"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <cstring>
#include <limits>
#include <stdexcept>
#include <string>
#include <system_error>
#include <vector>

#include "graph/shard_codec.hpp"
#include "util/env.hpp"
#include "util/hash.hpp"
#include "util/overflow.hpp"
#include "util/posix_io.hpp"
#include "util/trace.hpp"

namespace kron {

namespace {

[[noreturn]] void malformed_line(std::size_t line_no, const std::string& line,
                                 const std::string& why) {
  throw std::runtime_error("read_edge_list: malformed line " + std::to_string(line_no) +
                           " (" + why + "): '" + line + "'");
}

const char* skip_blank(const char* p, const char* end) {
  while (p != end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
  return p;
}

/// Parse one vertex id.  `istream >> uint64_t` would accept "-1" by
/// modular wrap (yielding vertex 2^64-1); std::from_chars on an unsigned
/// type rejects any sign, and the leading '-' check turns that into a
/// specific diagnostic.
std::uint64_t parse_vertex(const char*& p, const char* end, std::size_t line_no,
                           const std::string& line) {
  if (p != end && *p == '-')
    malformed_line(line_no, line, "negative vertex id");
  std::uint64_t value = 0;
  const auto [next, ec] = std::from_chars(p, end, value);
  if (ec == std::errc::result_out_of_range)
    malformed_line(line_no, line, "vertex id exceeds 64 bits");
  if (ec != std::errc() || next == p)
    malformed_line(line_no, line, "expected a vertex id");
  p = next;
  return value;
}

}  // namespace

EdgeList read_edge_list(std::istream& in, vertex_t min_vertices) {
  std::vector<Edge> edges;
  vertex_t n = min_vertices;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const char* p = line.data();
    const char* const end = line.data() + line.size();
    p = skip_blank(p, end);
    if (p == end) continue;  // whitespace-only line
    const std::uint64_t u = parse_vertex(p, end, line_no, line);
    const char* after_u = skip_blank(p, end);
    if (after_u == p) malformed_line(line_no, line, "expected whitespace after first id");
    p = after_u;
    const std::uint64_t v = parse_vertex(p, end, line_no, line);
    p = skip_blank(p, end);
    if (p != end) malformed_line(line_no, line, "trailing garbage after second id");
    // Id 2^64-1 would need num_vertices = 2^64, which vertex_t cannot hold.
    if (u == std::numeric_limits<vertex_t>::max() || v == std::numeric_limits<vertex_t>::max())
      malformed_line(line_no, line, "vertex id too large for vertex_t");
    edges.push_back({u, v});
    n = std::max({n, u + 1, v + 1});
  }
  return EdgeList(n, std::move(edges));
}

EdgeList read_edge_list_file(const std::filesystem::path& path, vertex_t min_vertices) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_edge_list_file: cannot open " + path.string());
  return read_edge_list(in, min_vertices);
}

void write_edge_list(std::ostream& out, const EdgeList& edges) {
  out << "# vertices " << edges.num_vertices() << "\n";
  out << "# arcs " << edges.num_arcs() << "\n";
  for (const Edge& e : edges.edges()) out << e.u << " " << e.v << "\n";
}

void write_edge_list_file(const std::filesystem::path& path, const EdgeList& edges) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_edge_list_file: cannot open " + path.string());
  write_edge_list(out, edges);
  if (!out) throw std::runtime_error("write_edge_list_file: write failed for " + path.string());
}

namespace {
constexpr char kBinaryMagic[8] = {'K', 'R', 'O', 'N', 'E', 'L', '1', '\0'};
}  // namespace

void write_edge_list_binary(const std::filesystem::path& path, const EdgeList& edges) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("write_edge_list_binary: cannot open " + path.string());
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint64_t n = edges.num_vertices();
  const std::uint64_t arcs = edges.num_arcs();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  out.write(reinterpret_cast<const char*>(edges.edges().data()),
            static_cast<std::streamsize>(arcs * sizeof(Edge)));
  if (!out)
    throw std::runtime_error("write_edge_list_binary: write failed for " + path.string());
}

EdgeList read_edge_list_binary(const std::filesystem::path& path) {
  TRACE_SPAN("io.read_binary");
  std::error_code size_error;
  const std::uintmax_t file_size = std::filesystem::file_size(path, size_error);
  if (size_error)
    throw std::runtime_error("read_edge_list_binary: cannot stat " + path.string() + ": " +
                             size_error.message());
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_edge_list_binary: cannot open " + path.string());
  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0)
    throw std::runtime_error("read_edge_list_binary: bad magic in " + path.string());
  std::uint64_t n = 0;
  std::uint64_t arcs = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&arcs), sizeof(arcs));
  if (!in) throw std::runtime_error("read_edge_list_binary: truncated header");
  // The arc count is untrusted: `arcs * sizeof(Edge)` must not wrap (a
  // wrapped length would make the read below "succeed" short), and the
  // payload it implies must fit in the bytes actually present — checked
  // BEFORE the vector below sizes an allocation from it.
  constexpr std::uint64_t kHeaderBytes =
      sizeof(kBinaryMagic) + sizeof(std::uint64_t) + sizeof(std::uint64_t);
  std::uint64_t payload_bytes = 0;
  try {
    payload_bytes = checked_mul(arcs, sizeof(Edge));
  } catch (const std::overflow_error&) {
    throw std::runtime_error("read_edge_list_binary: corrupt header in " + path.string() +
                             ": arc count " + std::to_string(arcs) +
                             " overflows the payload size");
  }
  if (file_size < kHeaderBytes || payload_bytes > file_size - kHeaderBytes)
    throw std::runtime_error("read_edge_list_binary: corrupt header in " + path.string() +
                             ": " + std::to_string(arcs) + " arcs (" +
                             std::to_string(payload_bytes) + " bytes) exceed the " +
                             std::to_string(file_size) + "-byte file");
  std::vector<Edge> list(arcs);
  in.read(reinterpret_cast<char*>(list.data()),
          static_cast<std::streamsize>(payload_bytes));
  if (!in || in.gcount() != static_cast<std::streamsize>(payload_bytes))
    throw std::runtime_error("read_edge_list_binary: truncated payload");
  if (in.peek() != std::ifstream::traits_type::eof())
    throw std::runtime_error("read_edge_list_binary: trailing bytes");
  for (const Edge& e : list)
    if (e.u >= n || e.v >= n)
      throw std::runtime_error("read_edge_list_binary: arc endpoint out of range");
  return EdgeList(n, std::move(list));
}

// --- generator shard snapshots (checkpoint/resume) -----------------------

namespace {

constexpr char kShardMagic[8] = {'K', 'R', 'O', 'N', 'C', 'K', '1', '\0'};

/// Fixed-size shard header, written verbatim (all fields little-endian u64
/// on every platform this library targets).
struct ShardHeader {
  char magic[8];
  std::uint64_t config_hash;
  std::uint64_t rank;
  std::uint64_t completed_epochs;
  std::uint64_t produced_chunks;
  std::uint64_t num_arcs;
  std::uint64_t checksum;
};
static_assert(sizeof(ShardHeader) == 56);

}  // namespace

std::uint64_t arc_set_checksum(std::span<const Edge> arcs) noexcept {
  // Wrapping sum of per-arc hashes: insensitive to storage order (which
  // varies run to run under the asynchronous exchange) but sensitive to
  // the multiset of arcs, including direction.
  std::uint64_t sum = 0;
  for (const Edge& e : arcs) sum += hash_combine(mix64(e.u ^ 0x636b70746b726fULL), e.v);
  return sum;
}

void write_shard_snapshot(const std::filesystem::path& path, std::uint64_t config_hash,
                          std::uint64_t rank, std::uint64_t completed_epochs,
                          std::uint64_t produced_chunks, std::span<const Edge> arcs) {
  TRACE_SPAN("checkpoint.write_shard");
  // Write-fsync-rename-fsync so a crash at any point — including a power
  // loss after the rename — can never leave a torn or empty file at the
  // published path: the temp file's bytes are durable before the rename
  // makes them visible, and the directory entry is durable before the
  // caller treats the checkpoint as taken.
  const std::filesystem::path temp = path.string() + ".tmp";
  {
    const int fd = posix_io::open_write(temp, "write_shard_snapshot");
    try {
      ShardHeader header{};
      std::memcpy(header.magic, kShardMagic, sizeof(kShardMagic));
      header.config_hash = config_hash;
      header.rank = rank;
      header.completed_epochs = completed_epochs;
      header.produced_chunks = produced_chunks;
      header.num_arcs = arcs.size();
      header.checksum = arc_set_checksum(arcs);
      posix_io::write_full(fd, &header, sizeof(header), "write_shard_snapshot");
      posix_io::write_full(fd, arcs.data(), arcs.size() * sizeof(Edge),
                           "write_shard_snapshot");
      posix_io::fsync_fd(fd, "write_shard_snapshot");
    } catch (...) {
      posix_io::close_fd(fd);
      throw;
    }
    posix_io::close_fd(fd);
  }
  std::error_code rename_error;
  std::filesystem::rename(temp, path, rename_error);
  if (rename_error)
    throw std::runtime_error("write_shard_snapshot: cannot publish " + path.string() + ": " +
                             rename_error.message());
  posix_io::fsync_path(path.has_parent_path() ? path.parent_path() : ".",
                       "write_shard_snapshot");
}

ShardSnapshot read_shard_snapshot(const std::filesystem::path& path) {
  TRACE_SPAN("checkpoint.read_shard");
  std::error_code size_error;
  const std::uintmax_t file_size = std::filesystem::file_size(path, size_error);
  if (size_error)
    throw std::runtime_error("read_shard_snapshot: cannot stat " + path.string() + ": " +
                             size_error.message());
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_shard_snapshot: cannot open " + path.string());
  ShardHeader header{};
  in.read(reinterpret_cast<char*>(&header), sizeof(header));
  if (!in || std::memcmp(header.magic, kShardMagic, sizeof(kShardMagic)) != 0)
    throw std::runtime_error("read_shard_snapshot: bad magic in " + path.string() +
                             " (not a shard snapshot)");
  // Untrusted count: the implied payload must not wrap and must match the
  // bytes actually present — a torn shard fails here, not deep in a resume.
  std::uint64_t payload_bytes = 0;
  try {
    payload_bytes = checked_mul(header.num_arcs, sizeof(Edge));
  } catch (const std::overflow_error&) {
    throw std::runtime_error("read_shard_snapshot: corrupt header in " + path.string() +
                             ": arc count " + std::to_string(header.num_arcs) +
                             " overflows the payload size");
  }
  if (file_size != sizeof(ShardHeader) + payload_bytes)
    throw std::runtime_error("read_shard_snapshot: corrupt shard " + path.string() + ": " +
                             std::to_string(header.num_arcs) + " arcs imply " +
                             std::to_string(sizeof(ShardHeader) + payload_bytes) +
                             " bytes but the file holds " + std::to_string(file_size));
  ShardSnapshot shard;
  shard.config_hash = header.config_hash;
  shard.rank = header.rank;
  shard.completed_epochs = header.completed_epochs;
  shard.produced_chunks = header.produced_chunks;
  shard.arcs.resize(header.num_arcs);
  in.read(reinterpret_cast<char*>(shard.arcs.data()),
          static_cast<std::streamsize>(payload_bytes));
  if (!in || in.gcount() != static_cast<std::streamsize>(payload_bytes))
    throw std::runtime_error("read_shard_snapshot: truncated payload in " + path.string());
  if (arc_set_checksum(shard.arcs) != header.checksum)
    throw std::runtime_error("read_shard_snapshot: checksum mismatch in " + path.string() +
                             " (corrupted shard); restart the run without --resume");
  return shard;
}

// --- compressed arc shards (out-of-core sink, DESIGN.md §15) --------------

namespace {

constexpr char kArcShardMagic[8] = {'K', 'R', 'O', 'N', 'S', 'H', '1', '\0'};

/// Fixed-size compressed-shard header, written verbatim (little-endian u64
/// fields, like every other binary header in this file).
struct ArcShardHeader {
  char magic[8];
  std::uint64_t encoding;
  std::uint64_t num_vertices;
  std::uint64_t key_shift;
  std::uint64_t num_arcs;
  std::uint64_t min_key;
  std::uint64_t max_key;
  std::uint64_t payload_bytes;
  std::uint64_t num_blocks;
  std::uint64_t index_checksum;
};
static_assert(sizeof(ArcShardHeader) == 80);
static_assert(sizeof(ArcShardBlock) == 40, "index entries are written raw");

using SteadyClock = std::chrono::steady_clock;

double seconds_since(SteadyClock::time_point t0) {
  return std::chrono::duration<double>(SteadyClock::now() - t0).count();
}

[[noreturn]] void corrupt_shard(const std::filesystem::path& path, const std::string& why) {
  throw std::runtime_error("arc shard " + path.string() + ": " + why +
                           " (corrupted or truncated shard)");
}

/// Read + validate a shard header from an open fd.  Everything in the
/// header is untrusted: sizes are cross-checked against the real file size
/// before any of them is used to size a read or an allocation.  When
/// `index_checksum` is non-null it receives the header's index digest (the
/// cursor verifies the index it reads against it).
ArcShardInfo read_arc_shard_header(int fd, const std::filesystem::path& path,
                                   std::uint64_t* index_checksum = nullptr) {
  std::error_code size_error;
  const std::uintmax_t file_size = std::filesystem::file_size(path, size_error);
  if (size_error)
    throw std::runtime_error("arc shard: cannot stat " + path.string() + ": " +
                             size_error.message());
  if (file_size < sizeof(ArcShardHeader))
    corrupt_shard(path, "file smaller than the 80-byte header");
  ArcShardHeader header{};
  posix_io::pread_full(fd, &header, sizeof(header), 0, "read_arc_shard_header");
  if (std::memcmp(header.magic, kArcShardMagic, sizeof(kArcShardMagic)) != 0)
    throw std::runtime_error("arc shard " + path.string() +
                             ": bad magic (not a compressed arc shard)");
  if (header.encoding != shard::kEncodingVersion)
    throw std::runtime_error(
        "arc shard " + path.string() + ": encoding version " +
        std::to_string(header.encoding) + " but this build reads version " +
        std::to_string(shard::kEncodingVersion) +
        " — the shard directory mixes shards from an incompatible build; "
        "regenerate the shards with this binary");
  if (header.key_shift < 1 || header.key_shift > 32)
    corrupt_shard(path, "key shift " + std::to_string(header.key_shift) + " outside [1, 32]");
  std::uint64_t index_bytes = 0;
  try {
    index_bytes = checked_mul(header.num_blocks, sizeof(ArcShardBlock));
  } catch (const std::overflow_error&) {
    corrupt_shard(path, "block count overflows the index size");
  }
  const bool sizes_fit = header.payload_bytes <= file_size && index_bytes <= file_size;
  if (!sizes_fit ||
      sizeof(ArcShardHeader) + header.payload_bytes + index_bytes != file_size)
    corrupt_shard(path, std::to_string(header.num_blocks) + " blocks and " +
                            std::to_string(header.payload_bytes) +
                            " payload bytes do not match the " +
                            std::to_string(file_size) + "-byte file");
  const std::uint64_t expect_blocks =
      (header.num_arcs + shard::kBlockArcs - 1) / shard::kBlockArcs;
  if (header.num_blocks != expect_blocks)
    corrupt_shard(path, std::to_string(header.num_arcs) + " arcs imply " +
                            std::to_string(expect_blocks) + " blocks, header says " +
                            std::to_string(header.num_blocks));
  if (header.num_arcs != 0 && header.min_key > header.max_key)
    corrupt_shard(path, "min key above max key");
  if (index_checksum != nullptr) *index_checksum = header.index_checksum;
  ArcShardInfo info;
  info.path = path;
  info.encoding = header.encoding;
  info.num_vertices = header.num_vertices;
  info.key_shift = header.key_shift;
  info.num_arcs = header.num_arcs;
  info.min_key = header.min_key;
  info.max_key = header.max_key;
  info.payload_bytes = header.payload_bytes;
  info.num_blocks = header.num_blocks;
  return info;
}

}  // namespace

ShardIoStats& ShardIoStats::operator+=(const ShardIoStats& o) noexcept {
  shards_written += o.shards_written;
  arcs_written += o.arcs_written;
  bytes_written += o.bytes_written;
  shards_opened += o.shards_opened;
  arcs_read += o.arcs_read;
  bytes_read += o.bytes_read;
  write_seconds += o.write_seconds;
  read_seconds += o.read_seconds;
  return *this;
}

std::size_t default_shard_buffer_bytes() {
  // Strict full-token parse (util/env): strtoull used to wrap "-1" to
  // 2^64-1 and read "4kb" as 4 — a misconfigured buffer must be diagnosed,
  // not silently honoured at a nonsense size.
  if (const auto v = env_u64("KRON_OOC_BUFFER_BYTES")) {
    if (*v == 0)
      throw std::runtime_error(
          "KRON_OOC_BUFFER_BYTES must be a positive number of bytes, got '0' "
          "(unset it for the default 1 MiB)");
    return static_cast<std::size_t>(*v);
  }
  return std::size_t{1} << 20;
}

ArcShardWriter::ArcShardWriter(std::filesystem::path path, vertex_t num_vertices,
                               std::size_t buffer_bytes, ShardIoStats* stats)
    : path_(std::move(path)),
      temp_(path_.string() + ".tmp"),
      num_vertices_(num_vertices),
      buffer_cap_(buffer_bytes != 0 ? buffer_bytes : default_shard_buffer_bytes()),
      stats_(stats) {
  key_shift_ = shard::KeyPacker::for_vertices(num_vertices).shift;
  fd_ = posix_io::open_write(temp_, "ArcShardWriter");
  // Placeholder header so the payload streams at its final offset; the
  // real header is patched in at finish() once the counts are known.
  const ArcShardHeader zero{};
  try {
    posix_io::write_full(fd_, &zero, sizeof(zero), "ArcShardWriter");
  } catch (...) {
    posix_io::close_fd(fd_);
    fd_ = -1;
    throw;
  }
  pending_.reserve(shard::kBlockArcs);
  buffer_.reserve(buffer_cap_ + 16);
}

ArcShardWriter::~ArcShardWriter() {
  if (finished_) return;
  // Abort: nothing was published (the rename never happened), so just drop
  // the temp file.  Errors are ignored — this runs during unwinding.
  if (fd_ >= 0) posix_io::close_fd(fd_);
  std::error_code ignored;
  std::filesystem::remove(temp_, ignored);
}

void ArcShardWriter::append_key(std::uint64_t key) {
  if (finished_) throw std::logic_error("ArcShardWriter: append after finish");
  if (num_arcs_ != 0 && key < max_key_)
    throw std::logic_error("ArcShardWriter: keys must arrive in ascending order (shard " +
                           path_.string() + ")");
  if (num_arcs_ == 0) min_key_ = key;
  max_key_ = key;
  ++num_arcs_;
  pending_.push_back(key);
  if (pending_.size() == shard::kBlockArcs) flush_block();
}

void ArcShardWriter::append(std::span<const Edge> sorted_arcs) {
  const shard::KeyPacker packer = shard::KeyPacker::for_shift(key_shift_);
  for (const Edge& e : sorted_arcs) append_key(packer.pack(e));
}

void ArcShardWriter::flush_block() {
  if (pending_.empty()) return;
  const auto t0 = SteadyClock::now();
  ArcShardBlock entry;
  entry.first_key = pending_.front();
  entry.byte_offset = payload_bytes_;
  entry.arc_count = pending_.size();
  const std::size_t before = buffer_.size();
  entry.byte_size = shard::encode_key_block(pending_, buffer_);
  entry.checksum = shard::bytes_checksum(buffer_.data() + before, entry.byte_size);
  payload_bytes_ += entry.byte_size;
  blocks_.push_back(entry);
  pending_.clear();
  seconds_ += seconds_since(t0);
  if (buffer_.size() >= buffer_cap_) flush_buffer();
}

void ArcShardWriter::flush_buffer() {
  if (buffer_.empty()) return;
  const auto t0 = SteadyClock::now();
  const std::uint8_t* p = buffer_.data();
  std::size_t left = buffer_.size();
  while (left != 0) {
    const std::size_t chunk = std::min(left, buffer_cap_);
    posix_io::write_full(fd_, p, chunk, "ArcShardWriter");
    p += chunk;
    left -= chunk;
  }
  buffer_.clear();
  seconds_ += seconds_since(t0);
}

ArcShardInfo ArcShardWriter::finish() {
  if (finished_) throw std::logic_error("ArcShardWriter: finish called twice");
  TRACE_SPAN("ooc.shard_write");
  flush_block();
  flush_buffer();
  const auto t0 = SteadyClock::now();
  const std::size_t index_bytes = blocks_.size() * sizeof(ArcShardBlock);
  ArcShardHeader header{};
  std::memcpy(header.magic, kArcShardMagic, sizeof(kArcShardMagic));
  header.encoding = shard::kEncodingVersion;
  header.num_vertices = num_vertices_;
  header.key_shift = key_shift_;
  header.num_arcs = num_arcs_;
  header.min_key = min_key_;
  header.max_key = max_key_;
  header.payload_bytes = payload_bytes_;
  header.num_blocks = blocks_.size();
  header.index_checksum = shard::bytes_checksum(blocks_.data(), index_bytes);
  try {
    if (index_bytes != 0)
      posix_io::write_full(fd_, blocks_.data(), index_bytes, "ArcShardWriter");
    posix_io::pwrite_full(fd_, &header, sizeof(header), 0, "ArcShardWriter");
    posix_io::fsync_fd(fd_, "ArcShardWriter");
  } catch (...) {
    seconds_ += seconds_since(t0);
    throw;  // destructor aborts the temp file
  }
  posix_io::close_fd(fd_);
  fd_ = -1;
  std::error_code rename_error;
  std::filesystem::rename(temp_, path_, rename_error);
  if (rename_error)
    throw std::runtime_error("ArcShardWriter: cannot publish " + path_.string() + ": " +
                             rename_error.message());
  posix_io::fsync_path(path_.has_parent_path() ? path_.parent_path() : ".",
                       "ArcShardWriter");
  seconds_ += seconds_since(t0);
  finished_ = true;
  if (stats_ != nullptr) {
    stats_->shards_written += 1;
    stats_->arcs_written += num_arcs_;
    stats_->bytes_written += sizeof(ArcShardHeader) + payload_bytes_ + index_bytes;
    stats_->write_seconds += seconds_;
  }
  ArcShardInfo info;
  info.path = path_;
  info.encoding = header.encoding;
  info.num_vertices = header.num_vertices;
  info.key_shift = header.key_shift;
  info.num_arcs = header.num_arcs;
  info.min_key = header.min_key;
  info.max_key = header.max_key;
  info.payload_bytes = header.payload_bytes;
  info.num_blocks = header.num_blocks;
  return info;
}

ArcShardInfo write_arc_shard(const std::filesystem::path& path, vertex_t num_vertices,
                             std::span<const Edge> sorted_arcs, ShardIoStats* stats) {
  ArcShardWriter writer(path, num_vertices, 0, stats);
  writer.append(sorted_arcs);
  return writer.finish();
}

ArcShardInfo read_arc_shard_info(const std::filesystem::path& path) {
  const int fd = posix_io::open_read(path, "read_arc_shard_info");
  try {
    ArcShardInfo info = read_arc_shard_header(fd, path);
    posix_io::close_fd(fd);
    return info;
  } catch (...) {
    posix_io::close_fd(fd);
    throw;
  }
}

ArcShardCursor::ArcShardCursor(const std::filesystem::path& path, std::size_t buffer_bytes,
                               ShardIoStats* stats)
    : path_(path),
      stats_(stats),
      buffer_cap_(buffer_bytes != 0 ? buffer_bytes : default_shard_buffer_bytes()) {
  const auto t0 = SteadyClock::now();
  fd_ = posix_io::open_read(path_, "ArcShardCursor");
  try {
    std::uint64_t index_checksum = 0;
    info_ = read_arc_shard_header(fd_, path_, &index_checksum);
    const std::size_t index_bytes =
        static_cast<std::size_t>(info_.num_blocks) * sizeof(ArcShardBlock);
    blocks_.resize(info_.num_blocks);
    if (index_bytes != 0)
      posix_io::pread_full(fd_, blocks_.data(), index_bytes,
                           sizeof(ArcShardHeader) + info_.payload_bytes, "ArcShardCursor");
    if (shard::bytes_checksum(blocks_.data(), index_bytes) != index_checksum)
      corrupt_shard(path_, "block index checksum mismatch");
    // Cross-check the index against the header before trusting any entry
    // to size a read: blocks must tile the payload exactly and account for
    // every arc.
    std::uint64_t arcs = 0;
    std::uint64_t offset = 0;
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      const ArcShardBlock& e = blocks_[b];
      if (e.byte_offset != offset)
        corrupt_shard(path_, "block " + std::to_string(b) + " does not abut its predecessor");
      if (e.arc_count == 0 || e.arc_count > shard::kBlockArcs)
        corrupt_shard(path_, "block " + std::to_string(b) + " arc count out of range");
      if (b != 0 && e.first_key < blocks_[b - 1].first_key)
        corrupt_shard(path_, "block first keys not ascending");
      offset += e.byte_size;
      arcs += e.arc_count;
      if (offset > info_.payload_bytes)
        corrupt_shard(path_, "block extents overrun the payload");
    }
    if (offset != info_.payload_bytes || arcs != info_.num_arcs)
      corrupt_shard(path_, "index does not tile the payload / account for every arc");
    if (stats_ != nullptr) {
      stats_->shards_opened += 1;
      stats_->bytes_read += sizeof(ArcShardHeader) + index_bytes;
      stats_->read_seconds += seconds_since(t0);
    }
  } catch (...) {
    posix_io::close_fd(fd_);
    fd_ = -1;
    throw;
  }
}

ArcShardCursor::~ArcShardCursor() {
  if (fd_ >= 0) posix_io::close_fd(fd_);
}

ArcShardCursor::ArcShardCursor(ArcShardCursor&& other) noexcept
    : path_(std::move(other.path_)),
      fd_(other.fd_),
      stats_(other.stats_),
      buffer_cap_(other.buffer_cap_),
      info_(std::move(other.info_)),
      blocks_(std::move(other.blocks_)),
      keys_(std::move(other.keys_)),
      key_pos_(other.key_pos_),
      next_block_(other.next_block_),
      raw_(std::move(other.raw_)) {
  other.fd_ = -1;
  other.stats_ = nullptr;
}

void ArcShardCursor::load_block(std::size_t block_idx) {
  const auto t0 = SteadyClock::now();
  const ArcShardBlock& entry = blocks_[block_idx];
  raw_.resize(entry.byte_size);
  // Read in buffer-sized chunks: KRON_OOC_BUFFER_BYTES bounds the syscall
  // granularity (the perf gate's negative control shrinks it).
  std::uint64_t offset = sizeof(ArcShardHeader) + entry.byte_offset;
  std::uint8_t* p = raw_.data();
  std::size_t left = raw_.size();
  while (left != 0) {
    const std::size_t chunk = std::min(left, buffer_cap_);
    posix_io::pread_full(fd_, p, chunk, offset, "ArcShardCursor");
    p += chunk;
    left -= chunk;
    offset += chunk;
  }
  if (shard::bytes_checksum(raw_.data(), raw_.size()) != entry.checksum)
    corrupt_shard(path_, "payload block " + std::to_string(block_idx) +
                             " checksum mismatch");
  keys_.clear();
  shard::decode_key_block(raw_.data(), raw_.size(), entry.arc_count, keys_,
                          "arc shard " + path_.string());
  if (keys_.front() != entry.first_key)
    corrupt_shard(path_, "payload block " + std::to_string(block_idx) +
                             " disagrees with its index entry");
  key_pos_ = 0;
  next_block_ = block_idx + 1;
  if (stats_ != nullptr) {
    stats_->arcs_read += entry.arc_count;
    stats_->bytes_read += entry.byte_size;
    stats_->read_seconds += seconds_since(t0);
  }
}

bool ArcShardCursor::next(std::uint64_t& key) {
  if (key_pos_ >= keys_.size()) {
    if (next_block_ >= blocks_.size()) return false;
    load_block(next_block_);
  }
  key = keys_[key_pos_++];
  return true;
}

std::size_t ArcShardCursor::next_batch(std::uint64_t* out, std::size_t max) {
  std::size_t produced = 0;
  while (produced < max) {
    if (key_pos_ >= keys_.size()) {
      if (next_block_ >= blocks_.size()) break;
      load_block(next_block_);
    }
    const std::size_t take = std::min(max - produced, keys_.size() - key_pos_);
    std::copy_n(keys_.begin() + static_cast<std::ptrdiff_t>(key_pos_), take, out + produced);
    key_pos_ += take;
    produced += take;
  }
  return produced;
}

void ArcShardCursor::seek(std::uint64_t key) {
  if (blocks_.empty()) {
    keys_.clear();
    key_pos_ = 0;
    next_block_ = 0;
    return;
  }
  // Last block whose first key is <= `key` can contain the first key >= it.
  std::size_t lo = 0;
  std::size_t hi = blocks_.size();
  while (lo < hi) {  // upper_bound on first_key
    const std::size_t mid = lo + (hi - lo) / 2;
    if (blocks_[mid].first_key <= key)
      lo = mid + 1;
    else
      hi = mid;
  }
  std::size_t start = lo == 0 ? 0 : lo - 1;
  load_block(start);
  while (true) {
    const auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    key_pos_ = static_cast<std::size_t>(it - keys_.begin());
    if (key_pos_ < keys_.size() || next_block_ >= blocks_.size()) return;
    load_block(next_block_);
  }
}

}  // namespace kron
