#include "graph/sort.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>

#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/trace.hpp"

namespace kron {
namespace {

/// Minimum elements per chunk — below this the chunk bookkeeping costs
/// more than it saves.
constexpr std::size_t kMinChunk = std::size_t{1} << 15;

/// Widest digit the LSD passes will use.  Wide digits minimise the pass
/// count — a 38-bit packed key sorts in 2 passes of 19 bits instead of 5
/// byte passes — and the scatter tolerates the large (4 MiB) cursor array
/// because destinations are prefetched.  plan_radix caps the width further
/// for small inputs, where bucket setup would dominate.
constexpr unsigned kMaxDigitBits = 19;

/// Scatter prefetch distance, in elements.  The destination of element
/// i + K is computed from the cursor state at i, which is close enough: a
/// cursor advances at most K slots in between.
constexpr std::size_t kPrefetchAhead = 16;

struct Chunking {
  std::size_t chunks = 1;
  std::size_t per_chunk = 0;
};

Chunking plan_chunks(std::size_t n) {
  const auto threads = static_cast<std::size_t>(ThreadPool::instance().num_threads());
  std::size_t chunks = (n + kMinChunk - 1) / kMinChunk;
  if (chunks > threads) chunks = threads;
  if (chunks == 0) chunks = 1;
  return {chunks, (n + chunks - 1) / chunks};
}

struct RadixPlan {
  unsigned digit_bits = 8;
  unsigned passes = 0;
};

/// Spread `key_bits` evenly over the fewest passes with digits no wider
/// than kMaxDigitBits (even spread keeps every pass's bucket count low).
/// For small inputs the width is capped so the bucket count stays well
/// below n — otherwise histogram/cursor setup dominates the sort.
RadixPlan plan_radix(unsigned key_bits, std::size_t n) {
  unsigned max_bits = kMaxDigitBits;
  const auto n_bits = static_cast<unsigned>(std::bit_width(n >> 3));
  if (max_bits > n_bits) max_bits = n_bits;
  if (max_bits < 8) max_bits = 8;
  RadixPlan plan;
  plan.passes = (key_bits + max_bits - 1) / max_bits;
  if (plan.passes == 0) plan.passes = 1;
  plan.digit_bits = (key_bits + plan.passes - 1) / plan.passes;
  return plan;
}

/// Stable LSD radix scatter passes over `data`, least-significant digit
/// first, with `digit_of(x, p)` returning digit p of x and `totals` the
/// precomputed global histogram of every pass (num_digits * buckets,
/// pass-major).  Passes whose digit is constant across the whole array are
/// skipped.  Chunked over the global pool; the scatter is stable per chunk
/// and chunks are concatenated in index order, so the result is identical
/// for every thread count.
template <typename T, typename DigitOf>
void lsd_radix_passes(std::vector<T>& data, unsigned num_digits, std::size_t buckets,
                      const DigitOf& digit_of, const std::vector<std::uint64_t>& totals) {
  const std::size_t n = data.size();
  if (n < 2 || num_digits == 0) return;

  std::vector<T> temp(n);
  T* src = data.data();
  T* dst = temp.data();
  bool swapped = false;

  std::vector<std::uint64_t> base(buckets);
  std::vector<std::uint64_t> cursors;
  for (unsigned p = 0; p < num_digits; ++p) {
    const std::uint64_t* tot = totals.data() + p * buckets;
    // A digit constant across the array permutes nothing: skip the pass.
    bool trivial = false;
    for (std::size_t b = 0; b < buckets; ++b)
      if (tot[b] == n) {
        trivial = true;
        break;
      }
    if (trivial) continue;
    TRACE_SPAN("sort.radix_pass");

    std::uint64_t running = 0;
    for (std::size_t b = 0; b < buckets; ++b) {
      base[b] = running;
      running += tot[b];
    }

    const Chunking ck = plan_chunks(n);
    cursors.assign(ck.chunks * buckets, 0);
    if (ck.chunks == 1) {
      std::copy(base.begin(), base.end(), cursors.begin());
    } else {
      // The global histogram is layout-invariant, but the per-chunk split
      // of the *current* array is not: re-histogram this digit per chunk,
      // then turn the (bucket, chunk) prefix sums into write cursors.
      ThreadPool::instance().run_tasks(ck.chunks, [&](std::size_t c) {
        std::uint64_t* hist = cursors.data() + c * buckets;
        const std::size_t lo = c * ck.per_chunk;
        const std::size_t hi = std::min(n, lo + ck.per_chunk);
        for (std::size_t i = lo; i < hi; ++i) ++hist[digit_of(src[i], p)];
      });
      std::vector<std::uint64_t> next = base;
      for (std::size_t c = 0; c < ck.chunks; ++c)
        for (std::size_t b = 0; b < buckets; ++b) {
          const std::uint64_t start = next[b];
          next[b] += cursors[c * buckets + b];
          cursors[c * buckets + b] = start;
        }
    }

    ThreadPool::instance().run_tasks(ck.chunks, [&](std::size_t c) {
      std::uint64_t* cursor = cursors.data() + c * buckets;
      const std::size_t lo = c * ck.per_chunk;
      const std::size_t hi = std::min(n, lo + ck.per_chunk);
      // The scatter is latency-bound on the random destination store;
      // prefetching the (approximate) slot of element i + K hides it.
      for (std::size_t i = lo; i < hi; ++i) {
        if (i + kPrefetchAhead < hi)
          simd::prefetch_write(&dst[cursor[digit_of(src[i + kPrefetchAhead], p)]]);
        dst[cursor[digit_of(src[i], p)]++] = src[i];
      }
    });

    std::swap(src, dst);
    swapped = !swapped;
  }
  if (swapped) data.swap(temp);
}

/// One read of `data` yields every pass's global histogram (pass-major).
template <typename T, typename DigitOf>
std::vector<std::uint64_t> histogram_all(const std::vector<T>& data, unsigned num_digits,
                                         std::size_t buckets, const DigitOf& digit_of) {
  TRACE_SPAN("sort.histogram");
  const std::size_t n = data.size();
  std::vector<std::uint64_t> totals(num_digits * buckets, 0);
  const Chunking ck = plan_chunks(n);
  std::vector<std::uint64_t> part(ck.chunks * totals.size(), 0);
  ThreadPool::instance().run_tasks(ck.chunks, [&](std::size_t c) {
    std::uint64_t* hist = part.data() + c * num_digits * buckets;
    const std::size_t lo = c * ck.per_chunk;
    const std::size_t hi = std::min(n, lo + ck.per_chunk);
    for (std::size_t i = lo; i < hi; ++i)
      for (unsigned p = 0; p < num_digits; ++p)
        ++hist[p * buckets + digit_of(data[i], p)];
  });
  for (std::size_t c = 0; c < ck.chunks; ++c)
    for (std::size_t s = 0; s < totals.size(); ++s)
      totals[s] += part[c * num_digits * buckets + s];
  return totals;
}

/// Packed-key path: one 64-bit key per arc, sorted, then unpacked.  The
/// pack loop gathers every pass's histogram in the same scan; with
/// `dedupe`, duplicates are dropped on the packed keys (one 8-byte
/// comparison each) before unpacking.
void sort_packed(std::vector<Edge>& edges, unsigned bits_u, unsigned bits_v, bool dedupe) {
  const std::size_t n = edges.size();
  const unsigned shift = bits_v;
  const RadixPlan plan = plan_radix(bits_u + bits_v, n);
  const std::size_t buckets = std::size_t{1} << plan.digit_bits;
  const std::uint64_t digit_mask = buckets - 1;
  const unsigned digit_bits = plan.digit_bits;

  std::vector<std::uint64_t> keys(n);
  std::vector<std::uint64_t> totals(plan.passes * buckets, 0);
  {
    TRACE_SPAN("sort.pack");
    const Chunking ck = plan_chunks(n);
    std::vector<std::uint64_t> part(ck.chunks * totals.size(), 0);
    ThreadPool::instance().run_tasks(ck.chunks, [&](std::size_t c) {
      std::uint64_t* hist = part.data() + c * totals.size();
      const std::size_t lo = c * ck.per_chunk;
      const std::size_t hi = std::min(n, lo + ck.per_chunk);
      // Pack in L1-resident blocks through the vector kernel, then
      // histogram the freshly packed keys while they are still hot — the
      // same two streams as the old fused loop, but the pack runs whole
      // vectors at a time instead of one shift-OR per edge.
      constexpr std::size_t kBlock = 4096;
      for (std::size_t b = lo; b < hi; b += kBlock) {
        const std::size_t e = std::min(hi, b + kBlock);
        simd::pack_shift_or(edges.data() + b, e - b, shift, keys.data() + b);
        for (std::size_t i = b; i < e; ++i)
          for (unsigned p = 0; p < plan.passes; ++p)
            ++hist[p * buckets + ((keys[i] >> (p * digit_bits)) & digit_mask)];
      }
    });
    for (std::size_t c = 0; c < ck.chunks; ++c)
      for (std::size_t s = 0; s < totals.size(); ++s)
        totals[s] += part[c * totals.size() + s];
  }

  lsd_radix_passes(keys, plan.passes, buckets,
                   [digit_bits, digit_mask](std::uint64_t key, unsigned p) {
                     return static_cast<std::size_t>((key >> (p * digit_bits)) & digit_mask);
                   },
                   totals);

  if (dedupe) {
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
    edges.resize(keys.size());
  }

  TRACE_SPAN("sort.unpack");
  const std::uint64_t mask = shift == 0 ? 0 : (std::uint64_t{1} << shift) - 1;
  parallel_for(0, keys.size(), [&](std::size_t lo, std::size_t hi) {
    simd::unpack_shift_mask(keys.data() + lo, hi - lo, shift, mask, edges.data() + lo);
  }, kMinChunk);
}

/// Shared driver for sort_edges / sort_dedupe_edges.
void canonicalise(std::vector<Edge>& edges, bool dedupe) {
  TRACE_SPAN("sort.canonicalise");
  if (edges.size() < kRadixSortThreshold) {
    std::sort(edges.begin(), edges.end());
    if (dedupe) edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
    return;
  }

  struct MaxUV {
    vertex_t u = 0;
    vertex_t v = 0;
  };
  const MaxUV max_uv = parallel_reduce(
      std::size_t{0}, edges.size(), MaxUV{},
      [&](std::size_t lo, std::size_t hi) {
        MaxUV m;
        for (std::size_t i = lo; i < hi; ++i) {
          m.u = std::max(m.u, edges[i].u);
          m.v = std::max(m.v, edges[i].v);
        }
        return m;
      },
      [](MaxUV a, MaxUV b) { return MaxUV{std::max(a.u, b.u), std::max(a.v, b.v)}; },
      kMinChunk);

  const auto bits_u = static_cast<unsigned>(std::bit_width(max_uv.u));
  const auto bits_v = static_cast<unsigned>(std::bit_width(max_uv.v));
  // bits_v == 64 would make the pack shift undefined; that degenerate case
  // (v >= 2^63) takes the struct path below.
  if (bits_u + bits_v <= 64 && bits_v < 64) {
    sort_packed(edges, bits_u, bits_v, dedupe);
    return;
  }

  // Ids too wide to pack: byte-wise LSD over the struct, v first then u
  // (lexicographic (u, v) order = u is the more significant word).
  constexpr std::size_t kByteBuckets = 256;
  const auto byte_of = [](const Edge& e, unsigned p) {
    const vertex_t word = p < 8 ? e.v : e.u;
    const unsigned byte = p < 8 ? p : p - 8;
    return static_cast<std::size_t>((word >> (8 * byte)) & 0xff);
  };
  const std::vector<std::uint64_t> totals = histogram_all(edges, 16, kByteBuckets, byte_of);
  lsd_radix_passes(edges, 16, kByteBuckets, byte_of, totals);
  if (dedupe) edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
}

}  // namespace

void sort_edges(std::vector<Edge>& edges) { canonicalise(edges, false); }

void sort_dedupe_edges(std::vector<Edge>& edges) { canonicalise(edges, true); }

}  // namespace kron
