// External k-way merge of sorted compressed arc shards (DESIGN.md §15).
//
// Inputs are `.kshard` files (graph/io.hpp) — each a sorted run of packed
// arc keys, possibly overlapping and duplicate-heavy (every rank of a
// sharded generation spills its own runs).  The merge produces a globally
// canonical on-disk edge list: a directory of disjoint, sorted, deduplicated
// part shards plus a `merged.manifest` commit record, equal as a key
// sequence to `sort_dedupe` over the concatenated inputs — without ever
// holding |E_C| arcs in RAM.
//
// Parallelism: the key space is range-partitioned on splitter keys drawn
// from the inputs' block indexes, and each part range is merged
// independently on the shared ThreadPool (a loser tree over buffered shard
// cursors per part).  Part contents depend only on (inputs, range), so the
// decoded output is bit-identical for every thread count.
//
// Crash safety: each part publishes atomically (ArcShardWriter's
// temp+fsync+rename), a `merge.plan` pins the partition before any part is
// written, and `merged.manifest` is written last.  Re-running the merge on
// a crashed output directory re-uses every published part and redoes only
// the missing ones.
#pragma once

#include <cstdint>
#include <filesystem>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/io.hpp"

namespace kron {

struct MergeOptions {
  /// Part count (parallelism of the range partition); 0 = ThreadPool width.
  std::size_t parts = 0;
  /// Per-stream I/O buffer override; 0 = derive from `budget_bytes`.
  std::size_t buffer_bytes = 0;
  /// Advisory cap on merge working memory (cursor + writer buffers across
  /// all concurrent parts); the derived per-stream buffer is clamped to it.
  std::uint64_t budget_bytes = std::uint64_t{256} << 20;
};

/// One published part of a merged edge list, in key order.
struct MergedPart {
  std::filesystem::path path;
  std::uint64_t num_arcs = 0;
  std::uint64_t min_key = 0;  ///< valid iff num_arcs > 0
  std::uint64_t max_key = 0;
};

/// The `merged.manifest` commit record: global counts plus the ordered,
/// disjoint parts whose concatenation is the canonical arc sequence.
struct MergedManifest {
  std::uint64_t encoding = 0;
  std::uint64_t num_vertices = 0;
  std::uint64_t key_shift = 0;
  std::uint64_t total_arcs = 0;
  std::vector<MergedPart> parts;
};

struct MergeStats {
  std::uint64_t arcs_in = 0;              ///< keys consumed from the inputs
  std::uint64_t arcs_out = 0;             ///< keys surviving dedupe
  std::uint64_t duplicates_dropped = 0;
  std::uint64_t parts_merged = 0;
  std::uint64_t parts_reused = 0;         ///< published parts kept on resume
  double seconds = 0.0;                   ///< wall time of the whole merge
  ShardIoStats io;
};

/// All `.kshard` files directly inside `dir`, sorted by filename (the order
/// generation ranks produced them is irrelevant — the merge re-sorts).
/// Throws std::runtime_error if `dir` is not a directory.
[[nodiscard]] std::vector<std::filesystem::path> list_arc_shards(
    const std::filesystem::path& dir);

/// Merge `inputs` into `out_dir`.  Creates `out_dir` if absent.  If
/// `out_dir` already holds a complete `merged.manifest` for these inputs
/// the call is a no-op that re-reads it; if it holds a partial merge of the
/// SAME inputs (crash), published parts are re-used; a partial merge of
/// different inputs is rejected with an actionable error.  Throws
/// std::runtime_error on corrupt inputs (checksum mismatch anywhere) and
/// std::invalid_argument on inconsistent inputs (mixed key shifts or
/// vertex counts) or an empty input list.
MergedManifest merge_shards(const std::vector<std::filesystem::path>& inputs,
                            const std::filesystem::path& out_dir,
                            const MergeOptions& options = {},
                            MergeStats* stats = nullptr);

/// Read and validate the commit record of a finished merge; throws if the
/// merge never completed or any part file contradicts it.
[[nodiscard]] MergedManifest read_merged_manifest(const std::filesystem::path& dir);

/// Decode a merged directory back into an in-memory edge list (tests and
/// tier-1-sized products; defeats the purpose at out-of-core scale).
[[nodiscard]] EdgeList read_merged_edge_list(const std::filesystem::path& dir);

/// Stream a merged directory out as an uncompressed binary edge list
/// ("KRONEL1\0", graph/io.hpp) without materialising the arcs in RAM —
/// interop with every existing tool that loads `.bin` graphs.
void export_merged_binary(const std::filesystem::path& dir,
                          const std::filesystem::path& out_path);

}  // namespace kron
