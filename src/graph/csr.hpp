// Compressed sparse row (CSR) graph for traversal and analytics.
//
// Immutable once built.  Neighbor lists are sorted, which gives
// O(log d) membership queries (`has_edge`) and allows the triangle counter
// to use ordered intersection.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace kron {

class Csr {
 public:
  Csr() = default;

  /// Build from an edge list.  The list is copied, sorted and deduplicated;
  /// the input need not be canonical.
  explicit Csr(const EdgeList& edges);

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return targets_.size(); }

  /// Number of undirected edges (requires a symmetric graph).
  [[nodiscard]] std::uint64_t num_undirected_edges() const;

  /// Sorted neighbor list of v (self loop included if present).
  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  /// Out-degree counting a self loop once if present.
  [[nodiscard]] std::uint64_t degree(vertex_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Degree with any self loop excluded — this is the `d_i` of the paper's
  /// formulas, which always refer to the loop-free factor.
  [[nodiscard]] std::uint64_t degree_no_loop(vertex_t v) const {
    return degree(v) - (has_loop(v) ? 1 : 0);
  }

  /// O(log d) membership query.
  [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const;

  /// Position of arc (u, v) in the global arc array — stable index for
  /// per-arc attribute vectors (e.g. triangle counts).  Throws
  /// std::invalid_argument if the arc is absent.
  [[nodiscard]] std::uint64_t arc_index(vertex_t u, vertex_t v) const;

  /// First arc index of v's row: `arc_index(v, neighbors(v)[k]) ==
  /// row_offset(v) + k`.  Lets kernels that walk a row derive arc indices
  /// without the per-arc binary search.
  [[nodiscard]] std::uint64_t row_offset(vertex_t v) const { return offsets_[v]; }

  [[nodiscard]] bool has_loop(vertex_t v) const { return has_edge(v, v); }

  [[nodiscard]] std::uint64_t num_loops() const;

  /// Degree vector (self loops counted once); the paper's d_A for loop-free
  /// graphs.
  [[nodiscard]] std::vector<std::uint64_t> degrees() const;

  [[nodiscard]] std::vector<std::uint64_t> degrees_no_loops() const;

  /// True if the adjacency matrix is symmetric.
  [[nodiscard]] bool is_symmetric() const;

  /// Convert back to a canonical edge list.
  [[nodiscard]] EdgeList to_edge_list() const;

  friend bool operator==(const Csr&, const Csr&) = default;

 private:
  vertex_t n_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n_+1
  std::vector<vertex_t> targets_;       // size num_arcs, sorted per row
};

}  // namespace kron
