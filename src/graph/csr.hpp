// Compressed sparse row (CSR) graph for traversal and analytics.
//
// Two types share one read API:
//
//  * `Csr` — owning, immutable once built from an EdgeList.  Neighbor
//    lists are sorted, which gives O(log d) membership queries
//    (`has_edge`) and allows the triangle counter to use ordered
//    intersection.
//  * `CsrView` — non-owning view over any (offsets, targets) pair with the
//    same invariants: a `Csr`'s arrays, or a memory-mapped CSR file
//    (graph/csr_mmap.hpp).  Analytics take `const CsrView&`; the implicit
//    conversion from `const Csr&` keeps every existing call site working
//    unchanged while the same kernels run over out-of-core graphs.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/edge_list.hpp"
#include "graph/types.hpp"

namespace kron {

class Csr;

/// Non-owning CSR read surface.  The referenced arrays must outlive the
/// view (they belong to a Csr or an open CsrMmap).
class CsrView {
 public:
  CsrView() = default;

  /// Implicit: every analytics entry point taking `const CsrView&` keeps
  /// accepting a `Csr` directly.
  CsrView(const Csr& graph);  // NOLINT(google-explicit-constructor)

  /// Raw-array view: `offsets` has n+1 entries, `targets` holds the sorted
  /// rows back to back (the mmap loader's layout).
  CsrView(vertex_t num_vertices, std::span<const std::uint64_t> offsets,
          std::span<const vertex_t> targets) noexcept
      : n_(num_vertices), offsets_(offsets.data()), targets_(targets.data()),
        arcs_(targets.size()) {}

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return arcs_; }

  /// Number of undirected edges (requires a symmetric graph).
  [[nodiscard]] std::uint64_t num_undirected_edges() const;

  /// Sorted neighbor list of v (self loop included if present).
  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
    return {targets_ + offsets_[v], targets_ + offsets_[v + 1]};
  }

  /// Out-degree counting a self loop once if present.
  [[nodiscard]] std::uint64_t degree(vertex_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Degree with any self loop excluded — this is the `d_i` of the paper's
  /// formulas, which always refer to the loop-free factor.
  [[nodiscard]] std::uint64_t degree_no_loop(vertex_t v) const {
    return degree(v) - (has_loop(v) ? 1 : 0);
  }

  /// O(log d) membership query.
  [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const;

  /// Position of arc (u, v) in the global arc array — stable index for
  /// per-arc attribute vectors (e.g. triangle counts).  Throws
  /// std::invalid_argument if the arc is absent.
  [[nodiscard]] std::uint64_t arc_index(vertex_t u, vertex_t v) const;

  /// First arc index of v's row: `arc_index(v, neighbors(v)[k]) ==
  /// row_offset(v) + k`.  Lets kernels that walk a row derive arc indices
  /// without the per-arc binary search.
  [[nodiscard]] std::uint64_t row_offset(vertex_t v) const { return offsets_[v]; }

  [[nodiscard]] bool has_loop(vertex_t v) const { return has_edge(v, v); }

  [[nodiscard]] std::uint64_t num_loops() const;

  /// Degree vector (self loops counted once); the paper's d_A for loop-free
  /// graphs.
  [[nodiscard]] std::vector<std::uint64_t> degrees() const;

  [[nodiscard]] std::vector<std::uint64_t> degrees_no_loops() const;

  /// True if the adjacency matrix is symmetric.
  [[nodiscard]] bool is_symmetric() const;

  /// Convert to a canonical edge list (materialises all arcs).
  [[nodiscard]] EdgeList to_edge_list() const;

  [[nodiscard]] std::span<const std::uint64_t> raw_offsets() const noexcept {
    return {offsets_, offsets_ == nullptr ? 0 : static_cast<std::size_t>(n_) + 1};
  }
  [[nodiscard]] std::span<const vertex_t> raw_targets() const noexcept {
    return {targets_, arcs_};
  }

 private:
  vertex_t n_ = 0;
  const std::uint64_t* offsets_ = nullptr;  // n_+1 entries
  const vertex_t* targets_ = nullptr;       // arcs_ entries, sorted per row
  std::size_t arcs_ = 0;
};

class Csr {
 public:
  Csr() = default;

  /// Build from an edge list.  The list is copied, sorted and deduplicated;
  /// the input need not be canonical.
  explicit Csr(const EdgeList& edges);

  [[nodiscard]] vertex_t num_vertices() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_arcs() const noexcept { return targets_.size(); }

  [[nodiscard]] std::uint64_t num_undirected_edges() const { return view().num_undirected_edges(); }

  [[nodiscard]] std::span<const vertex_t> neighbors(vertex_t v) const {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  [[nodiscard]] std::uint64_t degree(vertex_t v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  [[nodiscard]] std::uint64_t degree_no_loop(vertex_t v) const {
    return degree(v) - (has_loop(v) ? 1 : 0);
  }

  [[nodiscard]] bool has_edge(vertex_t u, vertex_t v) const { return view().has_edge(u, v); }

  [[nodiscard]] std::uint64_t arc_index(vertex_t u, vertex_t v) const {
    return view().arc_index(u, v);
  }

  [[nodiscard]] std::uint64_t row_offset(vertex_t v) const { return offsets_[v]; }

  [[nodiscard]] bool has_loop(vertex_t v) const { return has_edge(v, v); }

  [[nodiscard]] std::uint64_t num_loops() const { return view().num_loops(); }

  [[nodiscard]] std::vector<std::uint64_t> degrees() const { return view().degrees(); }

  [[nodiscard]] std::vector<std::uint64_t> degrees_no_loops() const {
    return view().degrees_no_loops();
  }

  [[nodiscard]] bool is_symmetric() const { return view().is_symmetric(); }

  [[nodiscard]] EdgeList to_edge_list() const { return view().to_edge_list(); }

  /// This graph as a non-owning view (valid while the Csr lives).
  [[nodiscard]] CsrView view() const noexcept {
    return CsrView(n_, offsets_, targets_);
  }

  friend bool operator==(const Csr&, const Csr&) = default;

 private:
  vertex_t n_ = 0;
  std::vector<std::uint64_t> offsets_;  // size n_+1
  std::vector<vertex_t> targets_;       // size num_arcs, sorted per row
};

inline CsrView::CsrView(const Csr& graph) : CsrView(graph.view()) {}

}  // namespace kron
