// Fundamental graph types.
//
// Conventions (fixed across the whole library, see DESIGN.md §5):
//  * Vertices are 0-based std::uint64_t.  The paper's 1-based block-index
//    maps α, β, γ (Sec. II-A) become alpha(p)=p/n_B, beta(p)=p%n_B,
//    gamma(i,k)=i*n_B+k in 0-based form.
//  * An undirected graph stores both arcs (u,v) and (v,u); a self loop is
//    stored once as (v,v).  "Edge count" m counts undirected edges:
//    m = (arcs - loops)/2 + loops.
#pragma once

#include <compare>
#include <cstdint>

namespace kron {

using vertex_t = std::uint64_t;

/// One directed arc (one nonzero of the adjacency matrix).
struct Edge {
  vertex_t u = 0;
  vertex_t v = 0;

  friend constexpr auto operator<=>(const Edge&, const Edge&) = default;
};

/// True if the arc is a self loop.
[[nodiscard]] constexpr bool is_loop(const Edge& e) noexcept { return e.u == e.v; }

/// The reverse arc.
[[nodiscard]] constexpr Edge reversed(const Edge& e) noexcept { return {e.v, e.u}; }

}  // namespace kron
