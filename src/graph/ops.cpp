#include "graph/ops.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace kron {
namespace {

constexpr std::uint64_t kUnassigned = std::numeric_limits<std::uint64_t>::max();

}  // namespace

std::vector<std::uint64_t> connected_components(const Csr& g) {
  const vertex_t n = g.num_vertices();
  std::vector<std::uint64_t> component(n, kUnassigned);
  std::vector<vertex_t> frontier;
  std::uint64_t next_id = 0;
  for (vertex_t root = 0; root < n; ++root) {
    if (component[root] != kUnassigned) continue;
    const std::uint64_t id = next_id++;
    component[root] = id;
    frontier.assign(1, root);
    while (!frontier.empty()) {
      const vertex_t u = frontier.back();
      frontier.pop_back();
      for (const vertex_t v : g.neighbors(u)) {
        if (component[v] == kUnassigned) {
          component[v] = id;
          frontier.push_back(v);
        }
      }
    }
  }
  return component;
}

std::uint64_t num_components(const Csr& g) {
  const auto component = connected_components(g);
  std::uint64_t count = 0;
  for (const std::uint64_t c : component) count = std::max(count, c + 1);
  return g.num_vertices() == 0 ? 0 : count;
}

EdgeList largest_component(const Csr& g, std::vector<vertex_t>* old_ids) {
  if (g.num_vertices() == 0) return EdgeList(0);
  const auto component = connected_components(g);
  std::uint64_t num_ids = 0;
  for (const std::uint64_t c : component) num_ids = std::max(num_ids, c + 1);
  std::vector<std::uint64_t> sizes(num_ids, 0);
  for (const std::uint64_t c : component) ++sizes[c];
  const std::uint64_t best =
      static_cast<std::uint64_t>(std::max_element(sizes.begin(), sizes.end()) - sizes.begin());

  std::vector<vertex_t> members;
  members.reserve(sizes[best]);
  for (vertex_t v = 0; v < g.num_vertices(); ++v)
    if (component[v] == best) members.push_back(v);
  if (old_ids != nullptr) *old_ids = members;
  return induced_subgraph(g, members);
}

EdgeList induced_subgraph(const Csr& g, const std::vector<vertex_t>& vertices) {
  std::vector<std::uint64_t> new_id(g.num_vertices(), kUnassigned);
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    const vertex_t v = vertices[i];
    if (v >= g.num_vertices())
      throw std::out_of_range("induced_subgraph: vertex id out of range");
    new_id[v] = i;
  }
  EdgeList sub(vertices.size());
  for (std::size_t i = 0; i < vertices.size(); ++i) {
    for (const vertex_t w : g.neighbors(vertices[i])) {
      if (new_id[w] != kUnassigned) sub.add(i, new_id[w]);
    }
  }
  sub.sort_dedupe();
  return sub;
}

EdgeList prepare_factor(const EdgeList& raw, bool add_loops) {
  EdgeList sym = raw;
  sym.strip_loops();
  sym.symmetrize();
  EdgeList lcc = largest_component(Csr(sym));
  if (add_loops) lcc.add_full_loops();
  return lcc;
}

}  // namespace kron
