// Memory-mapped CSR: build a `.kcsr` file from a merged shard directory,
// map it read-only, and hand analytics a CsrView over the mapping — the
// PR 3 kernels (BFS, ecc/closeness, triangle census) run directly over a
// graph that never fits in RAM (DESIGN.md §15).
//
// File layout (little-endian u64 fields):
//
//   CsrFileHeader   64 bytes, magic "KRONCS1\0"
//   offsets         (n+1) x u64, offsets[0] = 0, offsets[n] = m
//   targets         m x u64, sorted within each row
//
// The build is two streaming passes over the merged parts (degree count,
// then target scatter) using plain buffered writes — NOT writes through a
// mapping, which would count every dirty page against RSS and defeat the
// out-of-core budget.  Loading maps the file PROT_READ and verifies the
// offsets array against its recorded checksum; target pages fault in
// lazily as kernels touch them.
#pragma once

#include <cstdint>
#include <filesystem>

#include "graph/csr.hpp"
#include "graph/external_merge.hpp"

namespace kron {

struct CsrBuildStats {
  std::uint64_t num_vertices = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t bytes_written = 0;     ///< size of the finished .kcsr file
  double count_seconds = 0.0;          ///< pass 1: degree count
  double scatter_seconds = 0.0;        ///< pass 2: target scatter + publish
  ShardIoStats io;                     ///< shard-side read counters
};

/// Build `out_path` (a `.kcsr` file, published atomically) from the
/// completed merge in `merged_dir`.  Streams the parts twice; peak memory
/// is the degree/offsets array (8(n+1) bytes) plus I/O buffers, never the
/// arc set.  Throws on corrupt inputs or arcs out of the declared vertex
/// range.
CsrBuildStats build_csr_file(const std::filesystem::path& merged_dir,
                             const std::filesystem::path& out_path);

/// A `.kcsr` file mapped read-only.  The view (and every span derived from
/// it) is valid while this object lives.
class CsrMmap {
 public:
  explicit CsrMmap(const std::filesystem::path& path);
  ~CsrMmap();
  CsrMmap(CsrMmap&& other) noexcept;
  CsrMmap& operator=(CsrMmap&&) = delete;
  CsrMmap(const CsrMmap&) = delete;
  CsrMmap& operator=(const CsrMmap&) = delete;

  [[nodiscard]] vertex_t num_vertices() const noexcept { return view_.num_vertices(); }
  [[nodiscard]] std::uint64_t num_arcs() const noexcept { return view_.num_arcs(); }

  /// The mapped graph as the analytics-facing view type.
  [[nodiscard]] const CsrView& view() const noexcept { return view_; }

  /// madvise hints for the target region: sweeps (degree scans, full BFS)
  /// want sequential readahead, point queries want random.
  void advise_sequential() const noexcept;
  void advise_random() const noexcept;

  /// Drop the mapping's resident pages (MADV_DONTNEED) — windowed sweeps
  /// call this between windows to keep peak RSS at the window size.
  void release_pages() const noexcept;

 private:
  int fd_ = -1;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
  CsrView view_;
};

}  // namespace kron
