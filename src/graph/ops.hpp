// Whole-graph operations: connected components, subgraph extraction,
// validation.  These prepare factor graphs the way the paper's experiments
// do ("we formed the undirected version of the largest connected component,
// adding all self loops", Sec. V-A).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_list.hpp"

namespace kron {

/// Component id per vertex (ids are 0-based, dense, in discovery order).
[[nodiscard]] std::vector<std::uint64_t> connected_components(const Csr& g);

/// Number of connected components.
[[nodiscard]] std::uint64_t num_components(const Csr& g);

/// Extract the largest connected component as a relabelled graph.  Vertices
/// keep their relative order.  Also returns the old-id list (new id -> old
/// id) through `old_ids` if non-null.
[[nodiscard]] EdgeList largest_component(const Csr& g,
                                         std::vector<vertex_t>* old_ids = nullptr);

/// Induced subgraph on the given (sorted or unsorted) vertex set, relabelled
/// to 0..k-1 in the order given.
[[nodiscard]] EdgeList induced_subgraph(const Csr& g, const std::vector<vertex_t>& vertices);

/// Prepare a factor the way the paper's experiments do: symmetrize, take the
/// largest connected component, and optionally add a self loop at every
/// vertex.
[[nodiscard]] EdgeList prepare_factor(const EdgeList& raw, bool add_loops);

}  // namespace kron
