// Vertex-labeled graphs.
//
// The predecessor paper [11] extends the Kronecker ground-truth results to
// labeled graphs (label-pattern statistics are a core GraphChallenge
// workload, ref. [14]).  A labeling is a dense id per vertex; product
// vertices inherit the *pair* of factor labels, so a product alphabet of
// size L_A · L_B (see core/labeled_gt.hpp for the ground-truth laws).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace kron {

using label_t = std::uint32_t;

struct LabeledGraph {
  EdgeList graph;
  std::vector<label_t> label_of;  ///< one label per vertex
  label_t num_labels = 0;         ///< labels are 0..num_labels-1

  [[nodiscard]] bool valid() const {
    if (label_of.size() != graph.num_vertices()) return false;
    for (const label_t l : label_of)
      if (l >= num_labels) return false;
    return true;
  }
};

/// Label of the product vertex (i, k): the flattened pair
/// label_A(i) * L_B + label_B(k).
[[nodiscard]] constexpr label_t product_label(label_t label_a, label_t label_b,
                                              label_t num_labels_b) noexcept {
  return label_a * num_labels_b + label_b;
}

/// Labeling of A ⊗ B induced by factor labelings.
[[nodiscard]] std::vector<label_t> kron_labels(const std::vector<label_t>& labels_a,
                                               label_t num_labels_b,
                                               const std::vector<label_t>& labels_b);

}  // namespace kron
