#include "graph/labels.hpp"

namespace kron {

std::vector<label_t> kron_labels(const std::vector<label_t>& labels_a, label_t num_labels_b,
                                 const std::vector<label_t>& labels_b) {
  std::vector<label_t> out(labels_a.size() * labels_b.size());
  std::size_t index = 0;
  for (const label_t la : labels_a)
    for (const label_t lb : labels_b) out[index++] = product_label(la, lb, num_labels_b);
  return out;
}

}  // namespace kron
