#include "graph/csr.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace kron {

Csr::Csr(const EdgeList& edges) : n_(edges.num_vertices()), offsets_(n_ + 1, 0) {
  // Counting sort by source vertex, then per-row sort + dedupe.  Two passes
  // over the arcs; no global sort of the (possibly huge) arc vector.  The
  // dominant phase — the per-row sorts — runs chunked over the global
  // thread pool; rows are disjoint, so the result is identical for every
  // thread count.
  for (const Edge& e : edges.edges()) ++offsets_[e.u + 1];
  for (vertex_t v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];

  targets_.resize(edges.num_arcs());
  std::vector<std::uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges.edges()) targets_[cursor[e.u]++] = e.v;

  // Phase 1 (parallel): sort each row and dedupe it *within its own
  // segment*, recording the surviving length per row.
  std::vector<std::uint64_t> row_len(n_, 0);
  parallel_for(0, n_, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v) {
      const std::uint64_t row_start = offsets_[v];
      const std::uint64_t row_end = offsets_[v + 1];
      std::sort(targets_.begin() + static_cast<std::ptrdiff_t>(row_start),
                targets_.begin() + static_cast<std::ptrdiff_t>(row_end));
      std::uint64_t keep = row_start;
      for (std::uint64_t i = row_start; i < row_end; ++i)
        if (i == row_start || targets_[i] != targets_[i - 1]) targets_[keep++] = targets_[i];
      row_len[v] = keep - row_start;
    }
  });

  // Phase 2 (sequential): prefix-sum the surviving lengths and compact the
  // rows left — a single O(arcs) move.
  std::vector<std::uint64_t> new_offsets(n_ + 1, 0);
  std::uint64_t write = 0;
  for (vertex_t v = 0; v < n_; ++v) {
    new_offsets[v] = write;
    const std::uint64_t row_start = offsets_[v];
    for (std::uint64_t i = 0; i < row_len[v]; ++i) targets_[write++] = targets_[row_start + i];
  }
  new_offsets[n_] = write;
  offsets_ = std::move(new_offsets);
  targets_.resize(write);
  targets_.shrink_to_fit();
}

std::uint64_t CsrView::num_undirected_edges() const {
  const std::uint64_t loops = num_loops();
  return (num_arcs() - loops) / 2 + loops;
}

bool CsrView::has_edge(vertex_t u, vertex_t v) const {
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

std::uint64_t CsrView::arc_index(vertex_t u, vertex_t v) const {
  const auto row = neighbors(u);
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v)
    throw std::invalid_argument("Csr::arc_index: arc not present");
  return offsets_[u] + static_cast<std::uint64_t>(it - row.begin());
}

std::uint64_t CsrView::num_loops() const {
  std::uint64_t loops = 0;
  for (vertex_t v = 0; v < n_; ++v) loops += has_loop(v) ? 1u : 0u;
  return loops;
}

std::vector<std::uint64_t> CsrView::degrees() const {
  std::vector<std::uint64_t> d(n_);
  for (vertex_t v = 0; v < n_; ++v) d[v] = degree(v);
  return d;
}

std::vector<std::uint64_t> CsrView::degrees_no_loops() const {
  std::vector<std::uint64_t> d(n_);
  for (vertex_t v = 0; v < n_; ++v) d[v] = degree_no_loop(v);
  return d;
}

bool CsrView::is_symmetric() const {
  for (vertex_t u = 0; u < n_; ++u) {
    const auto row = neighbors(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      // Each probe binary-searches a different row; fetch the next probe's
      // row bounds and its first midpoint while this search runs.
      if (i + 1 < row.size()) {
        const vertex_t w = row[i + 1];
        const std::uint64_t lo = offsets_[w];
        const std::uint64_t hi = offsets_[w + 1];
        if (lo != hi) simd::prefetch_read(&targets_[lo + (hi - lo) / 2]);
      }
      if (!has_edge(row[i], u)) return false;
    }
  }
  return true;
}

EdgeList CsrView::to_edge_list() const {
  std::vector<Edge> edges;
  edges.reserve(num_arcs());
  for (vertex_t u = 0; u < n_; ++u)
    for (const vertex_t v : neighbors(u)) edges.push_back({u, v});
  return EdgeList(n_, std::move(edges));
}

}  // namespace kron
