// Factor catalog and cached product analytics for krond (DESIGN.md §16).
//
// The catalog holds named factor edge lists and named Kronecker products
// *by reference to their factors* — a product is a (factor_a, factor_b,
// regime) triple, never a materialized graph, exactly the O(|E_C|^{1/2})
// state discipline of the paper.  Analytics contexts (the
// KroneckerGroundTruth, plus the DistanceGroundTruth where the regime
// supports it) are built lazily on first query and cached per product.
//
// Invalidation is generational: every factor registration (including
// re-registration under an existing name) gets a fresh monotonically
// increasing generation number, and a cached context remembers the factor
// generations it was built from.  A context is served only while both
// generations still match the catalog, so re-registering a factor
// invalidates every product built on it without any bookkeeping walk —
// the next query simply rebuilds (and the rebuilt answers must be
// bit-identical to a cold recompute; pinned by tests/test_serve.cpp).
//
// Thread safety: all public methods are safe to call concurrently.  The
// catalog mutex is held only for map lookups and pointer swaps; ground
// truth construction (the expensive part) runs outside it, and a lost
// build race is resolved by double-checked re-validation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "core/distance_gt.hpp"
#include "core/ground_truth.hpp"
#include "graph/edge_list.hpp"

namespace kron::serve {

/// Immutable analytics bundle for one product, shared by every in-flight
/// query that found it valid (queries keep their shared_ptr, so a
/// concurrent invalidation never pulls state out from under an answer).
struct ProductContext {
  std::uint64_t gen_a = 0;  ///< factor generations this was built from
  std::uint64_t gen_b = 0;
  std::optional<KroneckerGroundTruth> gt;
  /// Present only when the regime is kFullLoops (Thm. 3 needs loops on
  /// both sides) and both factors are connected; distance queries against
  /// a context without it fail kUnsupported.
  std::optional<DistanceGroundTruth> distances;
};

struct FactorInfo {
  std::string name;
  std::uint64_t num_vertices = 0;
  std::uint64_t num_arcs = 0;
  std::uint64_t generation = 0;
};

struct ProductInfo {
  std::string name;
  std::string factor_a;
  std::string factor_b;
  LoopRegime regime = LoopRegime::kFullLoops;
  bool has_distances = false;  ///< meaningful only when cached
  bool cached = false;         ///< a currently-valid context exists
};

class Catalog {
 public:
  /// `no_cache` disables context caching: every query rebuilds from the
  /// factors (the KRON_SERVE_NO_CACHE=1 perf-gate control; also a
  /// correctness oracle, since cached and uncached answers must agree).
  explicit Catalog(bool no_cache = false);

  /// Insert or replace the factor `name`.  The edge list must describe an
  /// undirected graph once symmetrized/deduplicated; it is canonicalised
  /// here so every later product build sees identical input.  Throws
  /// std::invalid_argument on an unusable factor.
  void register_factor(const std::string& name, EdgeList edges);

  /// Define (or redefine) the product `name` = factor_a ⊗ factor_b under
  /// `regime`.  Factors must already be registered; throws
  /// std::invalid_argument otherwise.  Cheap: nothing is built here.
  void define_product(const std::string& name, const std::string& factor_a,
                      const std::string& factor_b, LoopRegime regime);

  /// The analytics context for product `name`, building (and caching) it
  /// if missing or stale.  Throws std::invalid_argument when the product
  /// or either factor is gone.
  [[nodiscard]] std::shared_ptr<const ProductContext> product_context(const std::string& name);

  /// Remove the factor or product `name`.  Returns false when nothing by
  /// that name exists.  Dropping a factor leaves dependent products
  /// defined but unanswerable (their next query reports the missing
  /// factor).
  bool drop(const std::string& name);

  [[nodiscard]] std::vector<FactorInfo> factors() const;
  [[nodiscard]] std::vector<ProductInfo> products() const;

  /// Contexts built since construction (cache misses + forced rebuilds) —
  /// the observable the invalidation tests pin.
  [[nodiscard]] std::uint64_t contexts_built() const;

 private:
  struct FactorEntry {
    std::shared_ptr<const EdgeList> edges;  // canonical (symmetrized, deduped)
    std::uint64_t generation = 0;
  };
  struct ProductEntry {
    std::string factor_a;
    std::string factor_b;
    LoopRegime regime = LoopRegime::kFullLoops;
    std::shared_ptr<const ProductContext> context;  // nullptr until first query
  };

  [[nodiscard]] std::shared_ptr<const ProductContext> build_context(
      const ProductEntry& product) const;

  const bool no_cache_;
  mutable std::shared_mutex mutex_;
  std::map<std::string, FactorEntry> factors_;
  std::map<std::string, ProductEntry> products_;
  std::uint64_t next_generation_ = 1;
  mutable std::atomic<std::uint64_t> contexts_built_{0};
};

}  // namespace kron::serve
