#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "serve/protocol.hpp"
#include "util/log.hpp"
#include "util/parallel.hpp"
#include "util/posix_io.hpp"
#include "util/trace.hpp"

namespace kron::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

int listen_unix(const std::string& path, int backlog) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path '" + path + "' exceeds the " +
                             std::to_string(sizeof(addr.sun_path) - 1) + "-byte AF_UNIX limit");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("krond: socket(AF_UNIX)");
  // A stale path from a killed server would make bind fail with
  // EADDRINUSE forever; unlinking first is the standard daemon idiom.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    posix_io::close_fd(fd);
    throw_errno("krond: bind('" + path + "')");
  }
  if (::listen(fd, backlog) != 0) {
    posix_io::close_fd(fd);
    throw_errno("krond: listen('" + path + "')");
  }
  return fd;
}

int listen_tcp(const std::string& host, std::uint16_t port, int backlog,
               std::uint16_t& bound_port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("krond: '" + host + "' is not an IPv4 address");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("krond: socket(AF_INET)");
  const int one = 1;
  (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    posix_io::close_fd(fd);
    throw_errno("krond: bind(" + host + ":" + std::to_string(port) + ")");
  }
  if (::listen(fd, backlog) != 0) {
    posix_io::close_fd(fd);
    throw_errno("krond: listen(" + host + ":" + std::to_string(port) + ")");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    posix_io::close_fd(fd);
    throw_errno("krond: getsockname");
  }
  bound_port = ntohs(bound.sin_port);
  return fd;
}

std::vector<std::byte> error_payload(const std::string& message) {
  WireWriter out;
  out.str(message);
  return out.take();
}

}  // namespace

Server::Server(Catalog& catalog, ServerOptions options)
    : catalog_(catalog), options_(std::move(options)) {
  posix_io::ignore_sigpipe();  // a vanished client must surface as EPIPE
  int pipe_fds[2];
  if (::pipe2(pipe_fds, O_CLOEXEC) != 0) throw_errno("krond: pipe2");
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  try {
    if (!options_.unix_path.empty())
      listen_fd_ = listen_unix(options_.unix_path, options_.backlog);
    else
      listen_fd_ = listen_tcp(options_.host, options_.port, options_.backlog, bound_port_);
  } catch (...) {
    posix_io::close_fd(wake_read_);
    posix_io::close_fd(wake_write_);
    throw;
  }
}

Server::~Server() { stop(); }

void Server::start() {
  std::lock_guard lock(lifecycle_mutex_);
  if (accept_running_ || stopped_) return;
  accept_running_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_stop_async() noexcept {
  stop_requested_.store(true, std::memory_order_release);
  const char byte = 'q';
  // Best-effort wake; if the pipe is full a wake is already pending.
  (void)!::write(wake_write_, &byte, 1);
}

void Server::wait() {
  std::unique_lock lock(lifecycle_mutex_);
  stop_cv_.wait(lock, [this] {
    return stop_requested_.load(std::memory_order_acquire) || stopped_;
  });
}

void Server::stop() {
  request_stop_async();
  {
    std::lock_guard lock(lifecycle_mutex_);
    if (stopped_) return;
    stopped_ = true;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  // Unblock every connection thread parked in read_frame: shutdown(2)
  // forces their pending reads to return EOF without racing the close of
  // the descriptor number itself (the thread still owns the fd).
  {
    std::lock_guard lock(connections_mutex_);
    for (const int fd : connection_fds_) (void)::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> workers;
  {
    std::lock_guard lock(connections_mutex_);
    workers.swap(connection_threads_);
  }
  for (std::thread& worker : workers)
    if (worker.joinable()) worker.join();
  if (listen_fd_ >= 0) {
    posix_io::close_fd(listen_fd_);
    listen_fd_ = -1;
  }
  posix_io::close_fd(wake_read_);
  posix_io::close_fd(wake_write_);
  wake_read_ = wake_write_ = -1;
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  stop_cv_.notify_all();
}

void Server::accept_loop() {
  while (!stop_requested_.load(std::memory_order_acquire)) {
    pollfd fds[2] = {{listen_fd_, POLLIN, 0}, {wake_read_, POLLIN, 0}};
    const int ready = ::poll(fds, 2, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      log_warn("krond: accept poll failed: ", std::strerror(errno), " (accept loop exiting)");
      break;
    }
    if ((fds[1].revents & POLLIN) != 0) break;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      log_warn("krond: accept failed: ", std::strerror(errno), " (accept loop exiting)");
      break;
    }
    std::lock_guard lock(connections_mutex_);
    if (stop_requested_.load(std::memory_order_acquire)) {
      posix_io::close_fd(conn);
      break;
    }
    connection_fds_.push_back(conn);
    connection_threads_.emplace_back([this, conn] { serve_connection(conn); });
  }
  {
    std::lock_guard lock(lifecycle_mutex_);
    accept_running_ = false;
  }
  stop_cv_.notify_all();
}

void Server::serve_connection(int fd) {
  FrameHeader header;
  std::vector<std::byte> payload;
  bool keep_open = true;
  while (keep_open && !stop_requested_.load(std::memory_order_acquire)) {
    try {
      if (!read_frame(fd, header, payload, "krond request")) break;  // peer closed
    } catch (const ProtocolError& error) {
      // The stream is unframed from here on (we cannot tell where the
      // next request starts), so answer once and hang up.
      log_warn("krond: dropping connection: ", error.what());
      try {
        write_frame(fd, Opcode::kPing, Status::kBadRequest, error_payload(error.what()),
                    "krond error reply");
      } catch (const std::exception&) {
        // Peer is gone too; nothing left to tell it.
      }
      break;
    } catch (const std::exception& error) {
      log_warn("krond: connection read failed: ", error.what());
      break;
    }
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    try {
      keep_open = dispatch(fd, header.opcode, payload);
    } catch (const std::exception& error) {
      // dispatch() replies on its own; an exception here means the reply
      // write itself failed.
      log_warn("krond: reply failed: ", error.what());
      break;
    }
  }
  posix_io::close_fd(fd);
  std::lock_guard lock(connections_mutex_);
  for (auto it = connection_fds_.begin(); it != connection_fds_.end(); ++it) {
    if (*it == fd) {
      connection_fds_.erase(it);
      break;
    }
  }
}

bool Server::dispatch(int fd, std::uint8_t raw_opcode, const std::vector<std::byte>& payload) {
  TRACE_SPAN("serve.request");
  const auto opcode = static_cast<Opcode>(raw_opcode);  // validated by read_frame
  Status status = Status::kOk;
  std::vector<std::byte> reply;
  bool keep_open = true;
  bool shutdown_after_reply = false;
  try {
    // Opcodes without a request body must arrive without one — a payload
    // there means the peer framed something else, and answering it as a
    // no-op would mask the desync.  Notably a garbage frame that happens
    // to carry the shutdown opcode must NOT stop the server.
    if ((opcode == Opcode::kPing || opcode == Opcode::kCatalog ||
         opcode == Opcode::kShutdown) &&
        !payload.empty())
      throw ProtocolError("opcode " + std::to_string(raw_opcode) + " carries no payload, got " +
                          std::to_string(payload.size()) + " bytes");
    switch (opcode) {
      case Opcode::kPing:
        break;  // empty reply
      case Opcode::kRegisterFactor:
        reply = handle_register(payload);
        break;
      case Opcode::kDefineProduct:
        reply = handle_define(payload);
        break;
      case Opcode::kQuery:
        reply = handle_query(payload);
        break;
      case Opcode::kCatalog:
        reply = handle_catalog();
        break;
      case Opcode::kDrop:
        reply = handle_drop(payload);
        break;
      case Opcode::kShutdown:
        shutdown_after_reply = true;
        keep_open = false;
        break;
    }
  } catch (const StatusError& error) {
    status = error.status();
    reply = error_payload(error.what());
  } catch (const ProtocolError& error) {
    status = Status::kBadRequest;
    reply = error_payload(error.what());
  } catch (const std::invalid_argument& error) {
    status = Status::kBadRequest;
    reply = error_payload(error.what());
  } catch (const std::exception& error) {
    status = Status::kServerError;
    reply = error_payload(error.what());
  }
  write_frame(fd, opcode, status, reply, "krond reply");
  if (shutdown_after_reply) request_stop_async();
  return keep_open;
}

std::vector<std::byte> Server::handle_register(const std::vector<std::byte>& payload) {
  TRACE_SPAN("serve.register_factor");
  WireReader in(payload);
  const std::string name = in.str();
  const std::uint64_t n = in.u64();
  const std::uint64_t arcs = in.u64();
  // Size the whole batch against the actual payload BEFORE any allocation:
  // a corrupt count must not drive a giant reserve, and `arcs * 16` must
  // not wrap past 2^64 into a small number that passes the check.
  if (arcs > kMaxFrameBytes / (2 * sizeof(std::uint64_t)) ||
      in.remaining() != arcs * 2 * sizeof(std::uint64_t))
    throw ProtocolError("factor payload declares " + std::to_string(arcs) +
                        " arcs but carries " + std::to_string(in.remaining()) + " bytes");
  EdgeList edges(n);
  for (std::uint64_t e = 0; e < arcs; ++e) {
    const vertex_t u = in.u64();
    const vertex_t v = in.u64();
    if (u >= n || v >= n)
      throw StatusError(Status::kBadRequest,
                        "arc (" + std::to_string(u) + ", " + std::to_string(v) +
                            ") is out of range for " + std::to_string(n) + " vertices");
    edges.add(u, v);
  }
  in.finish();
  catalog_.register_factor(name, std::move(edges));
  return {};
}

std::vector<std::byte> Server::handle_define(const std::vector<std::byte>& payload) {
  TRACE_SPAN("serve.define_product");
  WireReader in(payload);
  const std::string name = in.str();
  const std::string factor_a = in.str();
  const std::string factor_b = in.str();
  const std::uint8_t raw_regime = in.u8();
  in.finish();
  if (raw_regime > static_cast<std::uint8_t>(LoopRegime::kFullLoopsAOnly))
    throw StatusError(Status::kBadRequest,
                      "unknown loop regime " + std::to_string(raw_regime));
  catalog_.define_product(name, factor_a, factor_b, static_cast<LoopRegime>(raw_regime));
  return {};
}

std::vector<std::byte> Server::handle_query(const std::vector<std::byte>& payload) {
  TRACE_SPAN("serve.query");
  WireReader in(payload);
  const std::string product = in.str();
  const std::uint8_t raw_stat = in.u8();
  if (!statistic_known(raw_stat))
    throw StatusError(Status::kBadRequest, "unknown statistic " + std::to_string(raw_stat));
  const auto stat = static_cast<Statistic>(raw_stat);
  const std::uint64_t count = in.u32();
  const std::uint64_t words = statistic_pairwise(stat) ? 2 * count : count;
  if (in.remaining() != words * sizeof(std::uint64_t))
    throw ProtocolError("query declares " + std::to_string(count) + " items but carries " +
                        std::to_string(in.remaining()) + " bytes");
  std::vector<std::uint64_t> args(words);
  for (std::uint64_t w = 0; w < words; ++w) args[w] = in.u64();
  in.finish();

  const auto context = catalog_.product_context(product);
  const KroneckerGroundTruth& gt = *context->gt;
  const bool needs_distances = stat == Statistic::kEccentricity ||
                               stat == Statistic::kCloseness || stat == Statistic::kHops;
  if (needs_distances && !context->distances.has_value())
    throw StatusError(Status::kUnsupported,
                      "distance statistics need the full-loop regime (Thm. 3) and connected "
                      "factors; product '" + product + "' does not qualify");
  const vertex_t n = gt.num_vertices();
  for (const std::uint64_t id : args)
    if (id >= n)
      throw StatusError(Status::kBadRequest, "vertex " + std::to_string(id) +
                                                 " is out of range for " + std::to_string(n) +
                                                 " product vertices");
  TRACE_COUNTER_ADD("serve.query_items", count);

  // Answer the batch on the shared pool; answers land at their request
  // index so the response order matches the request order regardless of
  // chunking.  Closeness doubles travel as bit patterns (bit-identical to
  // the offline computation by construction — it IS the offline code).
  std::vector<std::uint64_t> results(count);
  const DistanceGroundTruth* distances =
      context->distances.has_value() ? &*context->distances : nullptr;
  parallel_for(
      0, count,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t q = begin; q < end; ++q) {
          switch (stat) {
            case Statistic::kDegree:
              results[q] = gt.degree(args[q]);
              break;
            case Statistic::kVertexTriangles:
              results[q] = gt.vertex_triangles(args[q]);
              break;
            case Statistic::kEccentricity:
              results[q] = distances->eccentricity(args[q]);
              break;
            case Statistic::kCloseness: {
              const double value = distances->closeness_fast(args[q]);
              std::memcpy(&results[q], &value, sizeof(value));
              break;
            }
            case Statistic::kHops:
              results[q] = distances->hops(args[2 * q], args[2 * q + 1]);
              break;
            case Statistic::kEdgeTriangles:
              results[q] = gt.edge_triangles(args[2 * q], args[2 * q + 1]);
              break;
          }
        }
      },
      options_.batch_grain);

  WireWriter out;
  out.u32(static_cast<std::uint32_t>(count));
  for (const std::uint64_t value : results) out.u64(value);
  return out.take();
}

std::vector<std::byte> Server::handle_catalog() {
  TRACE_SPAN("serve.catalog");
  const auto factors = catalog_.factors();
  const auto products = catalog_.products();
  WireWriter out;
  out.u32(static_cast<std::uint32_t>(factors.size()));
  for (const FactorInfo& factor : factors) {
    out.str(factor.name);
    out.u64(factor.num_vertices);
    out.u64(factor.num_arcs);
    out.u64(factor.generation);
  }
  out.u32(static_cast<std::uint32_t>(products.size()));
  for (const ProductInfo& product : products) {
    out.str(product.name);
    out.str(product.factor_a);
    out.str(product.factor_b);
    out.u8(static_cast<std::uint8_t>(product.regime));
    out.u8(product.has_distances ? 1 : 0);
    out.u8(product.cached ? 1 : 0);
  }
  return out.take();
}

std::vector<std::byte> Server::handle_drop(const std::vector<std::byte>& payload) {
  TRACE_SPAN("serve.drop");
  WireReader in(payload);
  const std::string name = in.str();
  in.finish();
  if (!catalog_.drop(name))
    throw StatusError(Status::kNotFound, "nothing named '" + name + "' to drop");
  return {};
}

}  // namespace kron::serve
