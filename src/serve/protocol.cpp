#include "serve/protocol.hpp"

#include <cstdio>
#include <cstring>

#include "util/posix_io.hpp"

namespace kron::serve {

void validate_header(const FrameHeader& header) {
  if (header.magic != kMagic) {
    char got[16];
    std::snprintf(got, sizeof(got), "%08X", header.magic);
    throw ProtocolError(std::string("frame magic mismatch (got 0x") + got + ", want KRND)");
  }
  if (header.version != kVersion)
    throw ProtocolError("unsupported protocol version " + std::to_string(header.version) +
                        " (this build speaks version " + std::to_string(kVersion) + ")");
  if (!opcode_known(header.opcode))
    throw ProtocolError("unknown opcode " + std::to_string(header.opcode));
  if (header.length > kMaxFrameBytes)
    throw ProtocolError("frame length " + std::to_string(header.length) +
                        " exceeds the " + std::to_string(kMaxFrameBytes) + "-byte cap");
}

void WireWriter::append(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::byte*>(data);
  bytes_.insert(bytes_.end(), bytes, bytes + size);
}

void WireWriter::str(const std::string& s) {
  if (s.size() > kMaxFrameBytes)
    throw ProtocolError("string of " + std::to_string(s.size()) + " bytes cannot be framed");
  u32(static_cast<std::uint32_t>(s.size()));
  append(s.data(), s.size());
}

void WireReader::need(std::size_t bytes) const {
  if (remaining() < bytes)
    throw ProtocolError("payload truncated: need " + std::to_string(bytes) +
                        " more bytes, have " + std::to_string(remaining()));
}

std::string WireReader::str() {
  const std::uint32_t size = u32();
  need(size);
  std::string s(reinterpret_cast<const char*>(cur_), size);
  cur_ += size;
  return s;
}

void WireReader::finish() const {
  if (remaining() != 0)
    throw ProtocolError(std::to_string(remaining()) +
                        " trailing bytes after the last expected field");
}

void write_frame(int fd, Opcode opcode, Status status, const std::vector<std::byte>& payload,
                 const std::string& what) {
  FrameHeader header;
  header.opcode = static_cast<std::uint8_t>(opcode);
  header.status = static_cast<std::uint16_t>(status);
  header.length = payload.size();
  // One gather would be marginally cheaper, but two full writes keep the
  // EINTR/short-write handling in posix_io where every other caller has it.
  posix_io::write_full(fd, &header, sizeof(header), what + " header");
  if (!payload.empty()) posix_io::write_full(fd, payload.data(), payload.size(), what + " payload");
}

bool read_frame(int fd, FrameHeader& header, std::vector<std::byte>& payload,
                const std::string& what) {
  const std::size_t got = posix_io::read_full(fd, &header, sizeof(header), what + " header");
  if (got == 0) return false;  // clean close between frames
  if (got < sizeof(header))
    throw ProtocolError(what + ": stream ended inside a frame header (" +
                        std::to_string(got) + " of " + std::to_string(sizeof(header)) +
                        " bytes)");
  validate_header(header);
  payload.resize(header.length);  // capped by validate_header
  if (header.length > 0) {
    const std::size_t body =
        posix_io::read_full(fd, payload.data(), payload.size(), what + " payload");
    if (body < payload.size())
      throw ProtocolError(what + ": stream ended inside a frame payload (" +
                          std::to_string(body) + " of " + std::to_string(payload.size()) +
                          " bytes)");
  }
  return true;
}

}  // namespace kron::serve
