// krond server core: socket accept loop + request dispatch (DESIGN.md §16).
//
// One Server owns a listening socket (Unix-domain or loopback TCP), an
// accept thread, and one thread per live connection.  Connections speak
// the framed protocol of serve/protocol.hpp; request payloads are
// untrusted and go through the bounds-checked WireReader, with decode
// failures answered as kBadRequest (when the stream is still framed) or
// by dropping the connection (when it is not).
//
// The query path is read-mostly: a connection thread resolves the named
// product to a shared_ptr<const ProductContext> (building it on first
// touch, Catalog's job) and then answers the whole batch lock-free
// against that immutable context, chunking per-vertex work across the
// process-global ThreadPool.  Answers are produced by the same
// KroneckerGroundTruth / DistanceGroundTruth code the offline tools run,
// so a served value is bit-identical to the offline path by construction.
//
// Shutdown has two triggers — the kShutdown opcode and
// request_stop_async() (async-signal-safe, for krond's SIGINT/SIGTERM
// handler) — both of which wake the accept loop via the self-pipe;
// stop()/wait() then shut down every live connection socket (unblocking
// their reads) and join all threads.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/catalog.hpp"

namespace kron::serve {

struct ServerOptions {
  /// Listen on this Unix-domain socket path when non-empty (the path is
  /// unlinked on stop); otherwise on `host`:`port` TCP.
  std::string unix_path;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; Server::port() reports the bound one
  int backlog = 16;
  /// parallel_for grain for query batches: below this many items a batch
  /// is answered inline on the connection thread.
  std::size_t batch_grain = 64;
};

class Server {
 public:
  /// Binds and listens immediately (so the bound port is known before any
  /// thread starts); throws std::runtime_error on bind/listen failure.
  Server(Catalog& catalog, ServerOptions options);
  ~Server();  ///< calls stop()

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Start the accept thread.  Idempotent.
  void start();

  /// Block until a kShutdown request (or request_stop_async) arrives.
  void wait();

  /// Tear down: close the listener, unblock and join every connection
  /// thread, unlink the Unix socket path.  Idempotent; safe after wait().
  void stop();

  /// Async-signal-safe shutdown trigger (atomic store + self-pipe write).
  void request_stop_async() noexcept;

  /// The bound TCP port (meaningful when listening on TCP).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }

  /// Total requests answered (any status) since start — bench observable.
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_served_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void serve_connection(int fd);
  /// Decode + answer one request; returns true when the connection should
  /// stay open afterwards.
  bool dispatch(int fd, std::uint8_t opcode, const std::vector<std::byte>& payload);

  std::vector<std::byte> handle_register(const std::vector<std::byte>& payload);
  std::vector<std::byte> handle_define(const std::vector<std::byte>& payload);
  std::vector<std::byte> handle_query(const std::vector<std::byte>& payload);
  std::vector<std::byte> handle_catalog();
  std::vector<std::byte> handle_drop(const std::vector<std::byte>& payload);

  Catalog& catalog_;
  const ServerOptions options_;
  int listen_fd_ = -1;
  int wake_read_ = -1;   // self-pipe: accept loop poll()s the read end,
  int wake_write_ = -1;  // stop triggers write the other
  std::uint16_t bound_port_ = 0;

  std::atomic<bool> stop_requested_{false};
  std::atomic<std::uint64_t> requests_served_{0};

  std::mutex lifecycle_mutex_;
  std::condition_variable stop_cv_;
  bool accept_running_ = false;
  bool stopped_ = false;
  std::thread accept_thread_;

  std::mutex connections_mutex_;
  std::vector<int> connection_fds_;        // live sockets, for shutdown(2)
  std::vector<std::thread> connection_threads_;
};

}  // namespace kron::serve
