#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "util/posix_io.hpp"

namespace kron::serve {
namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

Client Client::connect_unix(const std::string& path) {
  posix_io::ignore_sigpipe();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw std::runtime_error("socket path '" + path + "' exceeds the AF_UNIX limit");
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("krond client: socket(AF_UNIX)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    posix_io::close_fd(fd);
    throw_errno("krond client: connect('" + path + "')");
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port) {
  posix_io::ignore_sigpipe();
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw std::runtime_error("krond client: '" + host + "' is not an IPv4 address");
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw_errno("krond client: socket(AF_INET)");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    posix_io::close_fd(fd);
    throw_errno("krond client: connect(" + host + ":" + std::to_string(port) + ")");
  }
  return Client(fd);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) posix_io::close_fd(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Client::~Client() {
  if (fd_ >= 0) posix_io::close_fd(fd_);
}

std::vector<std::byte> Client::round_trip(Opcode opcode, const std::vector<std::byte>& payload) {
  write_frame(fd_, opcode, Status::kOk, payload, "krond client request");
  FrameHeader header;
  std::vector<std::byte> reply;
  if (!read_frame(fd_, header, reply, "krond client reply"))
    throw std::runtime_error("krond client: server closed the connection before replying");
  if (header.status != static_cast<std::uint16_t>(Status::kOk)) {
    std::string message = "(no diagnostic)";
    try {
      WireReader in(reply);
      message = in.str();
    } catch (const ProtocolError&) {
      // Keep the placeholder; the status alone still tells the story.
    }
    throw StatusError(static_cast<Status>(header.status), message);
  }
  return reply;
}

void Client::ping() { (void)round_trip(Opcode::kPing, {}); }

void Client::register_factor(const std::string& name, const EdgeList& edges) {
  WireWriter out;
  out.str(name);
  out.u64(edges.num_vertices());
  out.u64(edges.num_arcs());
  for (const Edge& edge : edges.edges()) {
    out.u64(edge.u);
    out.u64(edge.v);
  }
  (void)round_trip(Opcode::kRegisterFactor, out.bytes());
}

void Client::define_product(const std::string& name, const std::string& factor_a,
                            const std::string& factor_b, LoopRegime regime) {
  WireWriter out;
  out.str(name);
  out.str(factor_a);
  out.str(factor_b);
  out.u8(static_cast<std::uint8_t>(regime));
  (void)round_trip(Opcode::kDefineProduct, out.bytes());
}

std::vector<std::uint64_t> Client::query_raw(const std::string& product, Statistic statistic,
                                             const std::vector<std::uint64_t>& words,
                                             std::size_t count) {
  WireWriter out;
  out.str(product);
  out.u8(static_cast<std::uint8_t>(statistic));
  out.u32(static_cast<std::uint32_t>(count));
  for (const std::uint64_t word : words) out.u64(word);
  const std::vector<std::byte> reply = round_trip(Opcode::kQuery, out.bytes());
  WireReader in(reply);
  const std::uint32_t got = in.u32();
  if (got != count)
    throw ProtocolError("query answered " + std::to_string(got) + " of " +
                        std::to_string(count) + " items");
  std::vector<std::uint64_t> values(got);
  for (std::uint32_t i = 0; i < got; ++i) values[i] = in.u64();
  in.finish();
  return values;
}

std::vector<std::uint64_t> Client::query(const std::string& product, Statistic statistic,
                                         const std::vector<vertex_t>& vertices) {
  if (statistic_pairwise(statistic))
    throw std::invalid_argument("query: pairwise statistic needs query_pairs");
  return query_raw(product, statistic, vertices, vertices.size());
}

std::vector<std::uint64_t> Client::query_pairs(const std::string& product, Statistic statistic,
                                               const std::vector<Edge>& pairs) {
  if (!statistic_pairwise(statistic))
    throw std::invalid_argument("query_pairs: per-vertex statistic needs query");
  std::vector<std::uint64_t> words;
  words.reserve(pairs.size() * 2);
  for (const Edge& pair : pairs) {
    words.push_back(pair.u);
    words.push_back(pair.v);
  }
  return query_raw(product, statistic, words, pairs.size());
}

std::vector<double> Client::query_closeness(const std::string& product,
                                            const std::vector<vertex_t>& vertices) {
  const std::vector<std::uint64_t> bits =
      query_raw(product, Statistic::kCloseness, vertices, vertices.size());
  std::vector<double> values(bits.size());
  static_assert(sizeof(double) == sizeof(std::uint64_t));
  std::memcpy(values.data(), bits.data(), bits.size() * sizeof(double));
  return values;
}

CatalogSnapshot Client::catalog() {
  const std::vector<std::byte> reply = round_trip(Opcode::kCatalog, {});
  WireReader in(reply);
  CatalogSnapshot snapshot;
  const std::uint32_t num_factors = in.u32();
  snapshot.factors.reserve(num_factors);
  for (std::uint32_t i = 0; i < num_factors; ++i) {
    FactorInfo factor;
    factor.name = in.str();
    factor.num_vertices = in.u64();
    factor.num_arcs = in.u64();
    factor.generation = in.u64();
    snapshot.factors.push_back(std::move(factor));
  }
  const std::uint32_t num_products = in.u32();
  snapshot.products.reserve(num_products);
  for (std::uint32_t i = 0; i < num_products; ++i) {
    ProductInfo product;
    product.name = in.str();
    product.factor_a = in.str();
    product.factor_b = in.str();
    product.regime = static_cast<LoopRegime>(in.u8());
    product.has_distances = in.u8() != 0;
    product.cached = in.u8() != 0;
    snapshot.products.push_back(std::move(product));
  }
  in.finish();
  return snapshot;
}

void Client::drop(const std::string& name) {
  WireWriter out;
  out.str(name);
  (void)round_trip(Opcode::kDrop, out.bytes());
}

void Client::shutdown_server() { (void)round_trip(Opcode::kShutdown, {}); }

}  // namespace kron::serve
