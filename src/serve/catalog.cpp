#include "serve/catalog.hpp"

#include <mutex>
#include <stdexcept>
#include <utility>

#include "serve/protocol.hpp"
#include "util/trace.hpp"

namespace kron::serve {

Catalog::Catalog(bool no_cache) : no_cache_(no_cache) {}

void Catalog::register_factor(const std::string& name, EdgeList edges) {
  if (name.empty()) throw std::invalid_argument("factor name must not be empty");
  if (edges.num_vertices() == 0)
    throw std::invalid_argument("factor '" + name + "' has no vertices");
  // Canonicalise once here so every product build — cached or forced —
  // starts from byte-identical factor state.
  edges.symmetrize();
  auto shared = std::make_shared<const EdgeList>(std::move(edges));
  std::unique_lock lock(mutex_);
  if (products_.count(name) != 0)
    throw std::invalid_argument("name '" + name + "' already names a product");
  FactorEntry& entry = factors_[name];
  entry.edges = std::move(shared);
  entry.generation = next_generation_++;
}

void Catalog::define_product(const std::string& name, const std::string& factor_a,
                             const std::string& factor_b, LoopRegime regime) {
  if (name.empty()) throw std::invalid_argument("product name must not be empty");
  std::unique_lock lock(mutex_);
  for (const std::string* factor : {&factor_a, &factor_b})
    if (factors_.count(*factor) == 0)
      throw StatusError(Status::kNotFound, "unknown factor '" + *factor + "'");
  if (factors_.count(name) != 0)
    throw std::invalid_argument("name '" + name + "' already names a factor");
  ProductEntry& entry = products_[name];
  entry.factor_a = factor_a;
  entry.factor_b = factor_b;
  entry.regime = regime;
  entry.context = nullptr;  // redefinition always invalidates
}

std::shared_ptr<const ProductContext> Catalog::build_context(const ProductEntry& product) const {
  TRACE_SPAN("serve.build_context");
  std::shared_ptr<const EdgeList> edges_a, edges_b;
  std::uint64_t gen_a = 0, gen_b = 0;
  {
    std::shared_lock lock(mutex_);
    const auto it_a = factors_.find(product.factor_a);
    const auto it_b = factors_.find(product.factor_b);
    if (it_a == factors_.end())
      throw StatusError(Status::kNotFound,
                        "product references dropped factor '" + product.factor_a + "'");
    if (it_b == factors_.end())
      throw StatusError(Status::kNotFound,
                        "product references dropped factor '" + product.factor_b + "'");
    edges_a = it_a->second.edges;
    edges_b = it_b->second.edges;
    gen_a = it_a->second.generation;
    gen_b = it_b->second.generation;
  }
  // The expensive part runs lock-free on factor snapshots: a concurrent
  // re-registration at worst wastes this build (the generation check on
  // store catches it).
  auto context = std::make_shared<ProductContext>();
  context->gen_a = gen_a;
  context->gen_b = gen_b;
  context->gt.emplace(*edges_a, *edges_b, product.regime);
  if (product.regime == LoopRegime::kFullLoops) {
    // Thm. 3 additionally needs connected factors; a disconnected one is
    // not an error for the triangle statistics, it just leaves the
    // distance family unsupported for this product.
    try {
      context->distances.emplace(*edges_a, *edges_b);
    } catch (const std::invalid_argument&) {
      context->distances.reset();
    }
  }
  contexts_built_.fetch_add(1, std::memory_order_relaxed);
  return context;
}

std::shared_ptr<const ProductContext> Catalog::product_context(const std::string& name) {
  ProductEntry snapshot;
  {
    std::shared_lock lock(mutex_);
    const auto it = products_.find(name);
    if (it == products_.end())
      throw StatusError(Status::kNotFound, "unknown product '" + name + "'");
    snapshot = it->second;
    if (!no_cache_ && snapshot.context != nullptr) {
      const auto it_a = factors_.find(snapshot.factor_a);
      const auto it_b = factors_.find(snapshot.factor_b);
      if (it_a != factors_.end() && it_b != factors_.end() &&
          snapshot.context->gen_a == it_a->second.generation &&
          snapshot.context->gen_b == it_b->second.generation)
        return snapshot.context;  // cache hit: still built from current factors
    }
  }
  auto fresh = build_context(snapshot);
  if (no_cache_) return fresh;
  std::unique_lock lock(mutex_);
  const auto it = products_.find(name);
  if (it == products_.end()) return fresh;  // dropped mid-build; still answer
  ProductEntry& entry = it->second;
  if (entry.context != nullptr) {
    // A concurrent builder may have stored a context meanwhile; keep
    // whichever is built from the newest factor generations so a stale
    // lost-race build never overwrites a fresh one.
    if (entry.context->gen_a >= fresh->gen_a && entry.context->gen_b >= fresh->gen_b)
      return entry.context;
  }
  entry.context = fresh;
  return fresh;
}

bool Catalog::drop(const std::string& name) {
  std::unique_lock lock(mutex_);
  return factors_.erase(name) + products_.erase(name) > 0;
}

std::vector<FactorInfo> Catalog::factors() const {
  std::shared_lock lock(mutex_);
  std::vector<FactorInfo> out;
  out.reserve(factors_.size());
  for (const auto& [name, entry] : factors_)
    out.push_back({name, entry.edges->num_vertices(), entry.edges->num_arcs(),
                   entry.generation});
  return out;
}

std::vector<ProductInfo> Catalog::products() const {
  std::shared_lock lock(mutex_);
  std::vector<ProductInfo> out;
  out.reserve(products_.size());
  for (const auto& [name, entry] : products_) {
    ProductInfo info;
    info.name = name;
    info.factor_a = entry.factor_a;
    info.factor_b = entry.factor_b;
    info.regime = entry.regime;
    if (entry.context != nullptr) {
      const auto it_a = factors_.find(entry.factor_a);
      const auto it_b = factors_.find(entry.factor_b);
      info.cached = it_a != factors_.end() && it_b != factors_.end() &&
                    entry.context->gen_a == it_a->second.generation &&
                    entry.context->gen_b == it_b->second.generation;
      info.has_distances = entry.context->distances.has_value();
    }
    out.push_back(std::move(info));
  }
  return out;
}

std::uint64_t Catalog::contexts_built() const {
  return contexts_built_.load(std::memory_order_relaxed);
}

}  // namespace kron::serve
