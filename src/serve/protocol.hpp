// Wire protocol of the krond ground-truth query service (DESIGN.md §16).
//
// Every message — request or response — is one length-prefixed frame:
// a fixed 16-byte header followed by `length` payload bytes.  The framing
// discipline matches the multi-process runtime's socket transport
// (DESIGN.md §13): the header carries everything needed to size the read,
// and the payload is decoded only through the bounds-checked WireReader
// below, never by pointer arithmetic — the same untrusted-input stance as
// the shard codec.  Frames are little-endian (the only byte order the
// supported toolchain targets; the magic doubles as an endianness check
// because a big-endian peer would present it byte-swapped).
//
// Requests carry an opcode and status 0; responses echo the opcode and
// carry a Status.  Error responses' payload is a single string with the
// diagnostic.  Closeness values travel as IEEE-754 bit patterns in a u64
// (never text), so a served value is bit-identical to the offline
// computation that produced it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace kron::serve {

/// Peer sent bytes that do not decode: bad magic, unsupported version, an
/// oversized frame, or a payload shorter than its fields claim.  Server
/// side this maps to Status::kBadRequest (when a reply is still possible);
/// client side it propagates to the caller.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// "KRND" little-endian.
inline constexpr std::uint32_t kMagic = 0x444E524Bu;
inline constexpr std::uint8_t kVersion = 1;

/// Hard cap on one frame's payload.  Large enough for a multi-million-arc
/// factor registration, small enough that a corrupt length field cannot
/// drive an absurd allocation.
inline constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{64} << 20;

enum class Opcode : std::uint8_t {
  kPing = 0,
  kRegisterFactor = 1,  ///< name + edge list -> catalog entry
  kDefineProduct = 2,   ///< name + two factor names + regime
  kQuery = 3,           ///< product + statistic + vertex (pair) batch
  kCatalog = 4,         ///< list factors and products
  kDrop = 5,            ///< remove a factor or product by name
  kShutdown = 6,        ///< stop the server after replying
};

/// Is `raw` one of the opcodes above?  (Decode validation; a cast alone
/// would launder any byte into the enum.)
[[nodiscard]] constexpr bool opcode_known(std::uint8_t raw) noexcept {
  return raw <= static_cast<std::uint8_t>(Opcode::kShutdown);
}

enum class Status : std::uint16_t {
  kOk = 0,
  kBadRequest = 1,   ///< frame decoded but the request is malformed
  kNotFound = 2,     ///< named factor/product is not in the catalog
  kUnsupported = 3,  ///< statistic not defined for this product's regime
  kServerError = 4,  ///< unexpected failure answering a valid request
};

/// A request that decoded but cannot be answered, with the Status the
/// response frame should carry.  Thrown by the catalog (kNotFound) and
/// the dispatch handlers; the client rethrows it for non-Ok responses so
/// callers see the server's diagnostic verbatim.
class StatusError : public std::runtime_error {
 public:
  StatusError(Status status, const std::string& message)
      : std::runtime_error(message), status_(status) {}
  [[nodiscard]] Status status() const noexcept { return status_; }

 private:
  Status status_;
};

/// Per-vertex / per-pair statistics a Query can request.  The composition
/// rule answering each one is the paper's: degrees and triangles via
/// Cor. 1/2 (KroneckerGroundTruth), distances via Thm. 3-5
/// (DistanceGroundTruth).
enum class Statistic : std::uint8_t {
  kDegree = 0,
  kVertexTriangles = 1,
  kEccentricity = 2,   ///< Cor. 4: max of factor eccentricities
  kCloseness = 3,      ///< Thm. 4 via the bucketed fast path (double)
  kHops = 4,           ///< Thm. 3: pairwise, max of factor hop counts
  kEdgeTriangles = 5,  ///< Cor. 2: pairwise, requires (p, q) an edge of C
};

[[nodiscard]] constexpr bool statistic_known(std::uint8_t raw) noexcept {
  return raw <= static_cast<std::uint8_t>(Statistic::kEdgeTriangles);
}

/// True for the statistics whose query payload is (p, q) pairs rather
/// than single vertices.
[[nodiscard]] constexpr bool statistic_pairwise(Statistic s) noexcept {
  return s == Statistic::kHops || s == Statistic::kEdgeTriangles;
}

/// True when the answer is an IEEE double (transported as a bit-cast u64).
[[nodiscard]] constexpr bool statistic_real_valued(Statistic s) noexcept {
  return s == Statistic::kCloseness;
}

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint8_t version = kVersion;
  std::uint8_t opcode = 0;
  std::uint16_t status = 0;
  std::uint64_t length = 0;  ///< payload bytes following the header
};
static_assert(sizeof(FrameHeader) == 16, "wire header must be exactly 16 bytes");

/// Validate a received header: magic, version, known opcode, sane length.
/// Throws ProtocolError naming the offending field.
void validate_header(const FrameHeader& header);

/// Append-only payload builder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(std::byte{v}); }
  void u16(std::uint16_t v) { append(&v, sizeof(v)); }
  void u32(std::uint32_t v) { append(&v, sizeof(v)); }
  void u64(std::uint64_t v) { append(&v, sizeof(v)); }
  void f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }
  /// Length-prefixed (u32) byte string.
  void str(const std::string& s);

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept { return bytes_; }
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(bytes_); }

 private:
  void append(const void* data, std::size_t size);
  std::vector<std::byte> bytes_;
};

/// Bounds-checked payload decoder over an untrusted buffer.  Every read
/// checks the remaining byte count first and throws ProtocolError on
/// overrun; `finish()` additionally rejects trailing bytes, so a payload
/// either decodes exactly or is diagnosed.
class WireReader {
 public:
  WireReader(const std::byte* data, std::size_t size) : cur_(data), end_(data + size) {}
  explicit WireReader(const std::vector<std::byte>& buffer)
      : WireReader(buffer.data(), buffer.size()) {}

  [[nodiscard]] std::uint8_t u8() { return take<std::uint8_t>(); }
  [[nodiscard]] std::uint16_t u16() { return take<std::uint16_t>(); }
  [[nodiscard]] std::uint32_t u32() { return take<std::uint32_t>(); }
  [[nodiscard]] std::uint64_t u64() { return take<std::uint64_t>(); }
  [[nodiscard]] double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] std::string str();

  [[nodiscard]] std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - cur_);
  }

  /// Reject trailing garbage after the last expected field.
  void finish() const;

 private:
  template <typename T>
  [[nodiscard]] T take() {
    need(sizeof(T));
    T v;
    std::memcpy(&v, cur_, sizeof(T));
    cur_ += sizeof(T);
    return v;
  }
  void need(std::size_t bytes) const;

  const std::byte* cur_;
  const std::byte* end_;
};

// --- framed socket I/O ---------------------------------------------------

/// Write one frame (header + payload) to `fd`.  Throws std::runtime_error
/// (posix_io) on transport failure.
void write_frame(int fd, Opcode opcode, Status status, const std::vector<std::byte>& payload,
                 const std::string& what);

/// Read one frame from `fd`.  Returns false on clean end-of-stream before
/// any header byte (peer closed between requests).  Throws ProtocolError
/// on a malformed header or a stream that ends mid-frame, std::runtime_error
/// on transport failure.
[[nodiscard]] bool read_frame(int fd, FrameHeader& header, std::vector<std::byte>& payload,
                              const std::string& what);

}  // namespace kron::serve
