// Blocking client for the krond protocol (DESIGN.md §16).
//
// One Client is one connection; methods are synchronous request/response
// and NOT thread-safe (open one Client per querying thread — the server
// is the concurrent side).  Non-Ok responses rethrow as StatusError with
// the server's diagnostic; transport failures are std::runtime_error.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/edge_list.hpp"
#include "serve/catalog.hpp"
#include "serve/protocol.hpp"

namespace kron::serve {

struct CatalogSnapshot {
  std::vector<FactorInfo> factors;
  std::vector<ProductInfo> products;
};

class Client {
 public:
  [[nodiscard]] static Client connect_unix(const std::string& path);
  [[nodiscard]] static Client connect_tcp(const std::string& host, std::uint16_t port);

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  ~Client();

  void ping();
  void register_factor(const std::string& name, const EdgeList& edges);
  void define_product(const std::string& name, const std::string& factor_a,
                      const std::string& factor_b, LoopRegime regime);

  /// Batched per-vertex query; `statistic` must not be pairwise.  Returns
  /// one value per requested vertex, in request order.
  [[nodiscard]] std::vector<std::uint64_t> query(const std::string& product,
                                                 Statistic statistic,
                                                 const std::vector<vertex_t>& vertices);

  /// Batched pairwise query (kHops, kEdgeTriangles).
  [[nodiscard]] std::vector<std::uint64_t> query_pairs(const std::string& product,
                                                       Statistic statistic,
                                                       const std::vector<Edge>& pairs);

  /// Closeness centrality — the one real-valued statistic; values are the
  /// server's doubles bit-for-bit (u64 transport, no text round trip).
  [[nodiscard]] std::vector<double> query_closeness(const std::string& product,
                                                    const std::vector<vertex_t>& vertices);

  [[nodiscard]] CatalogSnapshot catalog();
  void drop(const std::string& name);
  void shutdown_server();

  /// The raw socket, for tests that need to speak malformed frames.
  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  /// One request/response round trip; throws StatusError on non-Ok.
  std::vector<std::byte> round_trip(Opcode opcode, const std::vector<std::byte>& payload);
  std::vector<std::uint64_t> query_raw(const std::string& product, Statistic statistic,
                                       const std::vector<std::uint64_t>& words,
                                       std::size_t count);

  int fd_ = -1;
};

}  // namespace kron::serve
