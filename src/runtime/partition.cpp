#include "runtime/partition.hpp"

#include <cmath>
#include <stdexcept>

#include "util/overflow.hpp"

namespace kron {

IndexRange block_range(std::uint64_t total, std::uint64_t parts, std::uint64_t part) {
  if (parts == 0) throw std::invalid_argument("block_range: zero parts");
  if (part >= parts) throw std::out_of_range("block_range: part index out of range");
  const std::uint64_t base = total / parts;
  const std::uint64_t extra = total % parts;
  // `total` is an untrusted 64-bit count (arc totals near 2^64 arrive here
  // from file headers and CLI options): route the offset arithmetic through
  // checked ops so a wrap surfaces as a diagnostic, not a bogus range —
  // the same treatment PR 4 gave the vertex-count products.
  try {
    const std::uint64_t begin = checked_add(checked_mul(part, base), std::min(part, extra));
    const std::uint64_t size = base + (part < extra ? 1 : 0);
    return {begin, checked_add(begin, size)};
  } catch (const std::overflow_error&) {
    throw std::overflow_error(
        "block_range: partition offset overflows 64 bits (total " + std::to_string(total) +
        ", parts " + std::to_string(parts) + ", part " + std::to_string(part) +
        "); use fewer elements or more parts");
  }
}

Grid2D::Grid2D(std::uint64_t ranks) : ranks_(ranks) {
  if (ranks == 0) throw std::invalid_argument("Grid2D: zero ranks");
  parts_a_ = static_cast<std::uint64_t>(std::ceil(std::sqrt(static_cast<double>(ranks))));
  parts_b_ = (ranks + parts_a_ - 1) / parts_a_;
}

std::uint64_t Grid2D::owner(std::uint64_t a_part, std::uint64_t b_part) const {
  if (a_part >= parts_a_ || b_part >= parts_b_)
    throw std::out_of_range("Grid2D::owner: cell out of range");
  return (a_part * parts_b_ + b_part) % ranks_;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Grid2D::cells_of(
    std::uint64_t rank) const {
  if (rank >= ranks_) throw std::out_of_range("Grid2D::cells_of: rank out of range");
  std::vector<std::pair<std::uint64_t, std::uint64_t>> cells;
  for (std::uint64_t cell = rank; cell < num_cells(); cell += ranks_)
    cells.emplace_back(cell / parts_b_, cell % parts_b_);
  return cells;
}

}  // namespace kron
