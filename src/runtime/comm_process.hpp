// Fork-per-rank launcher for the multi-process Comm backend.
//
// `run_process_ranks` is the CommBackend::kProcs counterpart of the
// threaded loop inside Runtime::run_gather: it forks one child per rank,
// wires a full mesh of Unix-domain socket pairs between them (plus one
// parent<->child status channel each), runs the body in every child, and
// reassembles per-rank result blobs and exceptions in the parent with the
// same root-cause preference and "rank R:" annotation the threaded
// backend guarantees.  See DESIGN.md §13 for the frame format and child
// lifecycle.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "runtime/comm.hpp"

namespace kron::detail {

/// Fork `options.ranks` children, run `body` in each over the socket
/// transport, and return the per-rank result blobs.  Rethrows the
/// root-cause child exception (reconstructed from the status channel,
/// rank-annotated) when any rank failed; a child that dies without
/// reporting (signal, _exit) surfaces as an annotated std::runtime_error.
/// A reported RankCrashError also consumes the matching crash latch on
/// `options.fault_plan`, so parent-side crash/restart loops observe the
/// one-shot semantics the threaded backend has.
[[nodiscard]] std::vector<std::vector<std::byte>> run_process_ranks(
    const RuntimeOptions& options, const std::function<std::vector<std::byte>(Comm&)>& body);

}  // namespace kron::detail
