// Multi-producer single-consumer blocking channel.
//
// The unit of transport between ranks of the in-process runtime
// (runtime/comm.hpp).  FIFO; `pop` blocks until a message or close,
// mirroring a blocking MPI receive.  A channel may be *bounded*: with a
// nonzero capacity, producers exert backpressure — `push` blocks (and
// `try_push` fails) while the queue is at capacity, capping the memory a
// slow consumer can accumulate, exactly the streaming discipline the
// paper's asynchronous generator relies on.  Once the channel is closed,
// pushes are silently dropped (the consumer is gone; this keeps abort
// teardown deadlock-free).
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace kron {

template <typename T>
class Channel {
 public:
  Channel() = default;

  /// A bounded channel holding at most `capacity` messages (0 = unbounded).
  explicit Channel(std::size_t capacity) : capacity_(capacity) {}

  /// Enqueue a message (any thread).  Blocks while the channel is at
  /// capacity; returns immediately (dropping the value) once closed.
  void push(T value) {
    {
      std::unique_lock lock(mutex_);
      space_.wait(lock, [this] { return has_space() || closed_; });
      if (closed_) return;
      enqueue(std::move(value));
    }
    ready_.notify_one();
  }

  /// Non-blocking enqueue.  Returns false — leaving `value` untouched —
  /// when the channel is at capacity; true when enqueued (or dropped
  /// because the channel is closed).
  [[nodiscard]] bool try_push(T& value) {
    {
      const std::scoped_lock lock(mutex_);
      if (closed_) return true;
      if (!has_space()) return false;
      enqueue(std::move(value));
    }
    ready_.notify_one();
    return true;
  }

  /// try_push that waits up to `timeout` for space.  Same contract.
  template <typename Rep, typename Period>
  [[nodiscard]] bool try_push_for(T& value, std::chrono::duration<Rep, Period> timeout) {
    {
      std::unique_lock lock(mutex_);
      if (!space_.wait_for(lock, timeout, [this] { return has_space() || closed_; }))
        return false;
      if (closed_) return true;
      enqueue(std::move(value));
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeue, blocking until a message arrives or the channel is closed.
  /// Returns nullopt only when closed *and* drained.
  std::optional<T> pop() {
    std::optional<T> value;
    {
      std::unique_lock lock(mutex_);
      ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
      if (queue_.empty()) return std::nullopt;
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    space_.notify_one();
    return value;
  }

  /// Dequeue, waiting up to `timeout` for a message.  Returns nullopt on
  /// timeout *or* when closed-and-drained — callers that must distinguish
  /// check closed() afterwards.  The reliable-delivery layer's receive
  /// slice: it needs to regain control periodically to retransmit.
  template <typename Rep, typename Period>
  std::optional<T> try_pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::optional<T> value;
    {
      std::unique_lock lock(mutex_);
      if (!ready_.wait_for(lock, timeout, [this] { return !queue_.empty() || closed_; }))
        return std::nullopt;
      if (queue_.empty()) return std::nullopt;  // closed and drained
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    space_.notify_one();
    return value;
  }

  /// Dequeue without blocking; nullopt when currently empty.
  std::optional<T> try_pop() {
    std::optional<T> value;
    {
      const std::scoped_lock lock(mutex_);
      if (queue_.empty()) return std::nullopt;
      value = std::move(queue_.front());
      queue_.pop_front();
    }
    space_.notify_one();
    return value;
  }

  /// Close: pending pops drain the queue, then observe end-of-stream;
  /// blocked pushes wake and drop.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
    space_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    const std::scoped_lock lock(mutex_);
    return queue_.size();
  }

  /// Configured capacity (0 = unbounded).
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Deepest the queue has ever been (telemetry; never exceeds a nonzero
  /// capacity).
  [[nodiscard]] std::size_t high_water() const {
    const std::scoped_lock lock(mutex_);
    return high_water_;
  }

 private:
  [[nodiscard]] bool has_space() const {
    return capacity_ == 0 || queue_.size() < capacity_;
  }

  // Callers hold mutex_.
  void enqueue(T value) {
    queue_.push_back(std::move(value));
    high_water_ = std::max(high_water_, queue_.size());
  }

  const std::size_t capacity_ = 0;
  mutable std::mutex mutex_;
  std::condition_variable ready_;  // queue became non-empty / closed
  std::condition_variable space_;  // queue dropped below capacity / closed
  std::deque<T> queue_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace kron
