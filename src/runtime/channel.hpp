// Multi-producer single-consumer blocking channel.
//
// The unit of transport between ranks of the in-process runtime
// (runtime/comm.hpp).  Unbounded FIFO; `pop` blocks until a message or
// close, mirroring a blocking MPI receive.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace kron {

template <typename T>
class Channel {
 public:
  /// Enqueue a message (any thread).
  void push(T value) {
    {
      const std::scoped_lock lock(mutex_);
      queue_.push_back(std::move(value));
    }
    ready_.notify_one();
  }

  /// Dequeue, blocking until a message arrives or the channel is closed.
  /// Returns nullopt only when closed *and* drained.
  std::optional<T> pop() {
    std::unique_lock lock(mutex_);
    ready_.wait(lock, [this] { return !queue_.empty() || closed_; });
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Dequeue without blocking; nullopt when currently empty.
  std::optional<T> try_pop() {
    const std::scoped_lock lock(mutex_);
    if (queue_.empty()) return std::nullopt;
    T value = std::move(queue_.front());
    queue_.pop_front();
    return value;
  }

  /// Close: pending pops drain the queue, then observe end-of-stream.
  void close() {
    {
      const std::scoped_lock lock(mutex_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    const std::scoped_lock lock(mutex_);
    return closed_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<T> queue_;
  bool closed_ = false;
};

}  // namespace kron
