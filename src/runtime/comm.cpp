#include "runtime/comm.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <typeinfo>

#include "util/timer.hpp"
#include "util/trace.hpp"

namespace kron {
namespace detail {

/// State shared by all ranks of one Runtime::run invocation.
struct CommShared {
  CommShared(int num_ranks, const RuntimeOptions& options)
      : size(num_ranks),
        fault_plan(options.fault_plan),
        reliable(options.fault_plan != nullptr && options.fault_plan->has_message_faults()),
        retry_timeout(options.retry_timeout),
        max_retries(options.max_retries),
        slots(static_cast<std::size_t>(num_ranks)) {
    mailboxes.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r)
      mailboxes.push_back(std::make_unique<Channel<RankMessage>>(options.mailbox_capacity));
    a2a.resize(static_cast<std::size_t>(size));
  }

  const int size;

  // Fault injection / reliable delivery (runtime/faults.hpp).  `reliable`
  // is true only when the plan can actually fault a message, so plans that
  // carry nothing but crash events leave the fast p2p path untouched.
  const std::shared_ptr<const FaultPlan> fault_plan;
  const bool reliable;
  const std::chrono::microseconds retry_timeout;
  const int max_retries;

  // Point-to-point mailboxes, one per destination rank.
  std::vector<std::unique_ptr<Channel<RankMessage>>> mailboxes;

  // Central sense-reversing barrier.
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;
  bool aborted = false;

  // Staging areas for collectives (guarded by the barrier protocol: write
  // own slot, barrier, read, barrier).
  std::vector<std::vector<std::byte>> slots;
  std::vector<std::vector<std::vector<std::byte>>> a2a;  // [source][dest]

  void abort_all() {
    {
      const std::scoped_lock lock(mutex);
      aborted = true;
    }
    cv.notify_all();
    for (auto& box : mailboxes) box->close();
  }

  void barrier() {
    std::unique_lock lock(mutex);
    if (aborted) throw CommAbortError("Comm: runtime aborted by another rank");
    const std::uint64_t my_generation = generation;
    if (++arrived == size) {
      arrived = 0;
      ++generation;
      cv.notify_all();
      return;
    }
    cv.wait(lock, [&] { return generation != my_generation || aborted; });
    if (generation == my_generation && aborted)
      throw CommAbortError("Comm: runtime aborted by another rank");
  }
};

}  // namespace detail

namespace {

/// Internal tag carried by reliable-delivery acknowledgements; never
/// surfaced to user code (and rejected as a user tag in reliable mode).
constexpr int kAckTag = std::numeric_limits<int>::min();

/// Receive time slice in reliable mode: how long a blocking pop waits
/// before handing control back so overdue messages can be retransmitted.
constexpr std::chrono::microseconds kRecvSlice{200};

std::uint64_t read_seq(const std::vector<std::byte>& payload) {
  std::uint64_t seq = 0;
  std::memcpy(&seq, payload.data(), sizeof(seq));
  return seq;
}

std::vector<std::byte> seq_only_payload(std::uint64_t seq) {
  std::vector<std::byte> bytes(sizeof(seq));
  std::memcpy(bytes.data(), &seq, sizeof(seq));
  return bytes;
}

}  // namespace

void Comm::push_raw(int dest, RankMessage message) {
  Channel<RankMessage>& box = *shared_->mailboxes[static_cast<std::size_t>(dest)];
  if (box.try_push(message)) return;

  // Bounded destination mailbox at capacity: wait for space, but keep
  // draining our own inbox meanwhile — if the destination is itself
  // blocked sending to us, each of us frees the space the other needs.
  ++stats_.send_backpressure_waits;
  Channel<RankMessage>& inbox = *shared_->mailboxes[static_cast<std::size_t>(rank_)];
  while (!box.try_push_for(message, std::chrono::microseconds(200))) {
    while (auto incoming = inbox.try_pop()) pending_.push_back(std::move(*incoming));
  }
}

void Comm::send(int dest, int tag, std::vector<std::byte> payload) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("Comm::send: bad destination rank");
  auto& volume = stats_.sent[tag];
  ++volume.messages;
  volume.bytes += payload.size();
  TRACE_COUNTER_ADD("comm.p2p_bytes", payload.size());

  if (!shared_->reliable) {
    push_raw(dest, RankMessage{rank_, tag, std::move(payload)});
    return;
  }

  // Reliable path: assign a per-destination sequence number, keep the wire
  // copy for retransmission, then let the fault plan decide the first
  // transmission's fate.
  if (tag == kAckTag)
    throw std::invalid_argument("Comm::send: tag INT_MIN is reserved for reliable acks");
  if (next_seq_.empty()) next_seq_.resize(static_cast<std::size_t>(size_), 0);
  const std::uint64_t seq = next_seq_[static_cast<std::size_t>(dest)]++;

  std::vector<std::byte> wire(sizeof(seq) + payload.size());
  std::memcpy(wire.data(), &seq, sizeof(seq));
  std::memcpy(wire.data() + sizeof(seq), payload.data(), payload.size());
  unacked_.push_back(UnackedSend{dest, tag, seq, wire,
                                 std::chrono::steady_clock::now() + shared_->retry_timeout,
                                 std::chrono::nanoseconds(shared_->retry_timeout), 1});

  const FaultDecision fate = shared_->fault_plan->decide(rank_, dest, tag, seq);
  if (!fate.drop && fate.duplicate) {
    ++stats_.faults.injected_dups;
    TRACE_COUNTER_ADD("faults.dups", 1);
    push_raw(dest, RankMessage{rank_, tag, wire});
  }
  if (fate.drop) {
    // Not transmitted: the copy in unacked_ is delivered by retransmission.
    ++stats_.faults.injected_drops;
    TRACE_COUNTER_ADD("faults.drops", 1);
  } else if (fate.delay_ops != 0) {
    ++stats_.faults.injected_delays;
    TRACE_COUNTER_ADD("faults.delays", 1);
    delayed_.push_back(
        DelayedDelivery{op_count_ + fate.delay_ops, dest, RankMessage{rank_, tag, std::move(wire)}});
  } else {
    push_raw(dest, RankMessage{rank_, tag, std::move(wire)});
  }
  service_reliable();
}

void Comm::service_reliable() {
  ++op_count_;

  // Release injected delays that have come due.
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->release_op <= op_count_) {
      push_raw(it->dest, std::move(it->message));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }

  if (unacked_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& entry : unacked_) {
    if (entry.deadline > now) continue;
    if (entry.attempts > shared_->max_retries) {
      throw CommFaultError("Comm: rank " + std::to_string(rank_) + " -> rank " +
                               std::to_string(entry.dest) + " tag " +
                               std::to_string(entry.tag) + " seq " +
                               std::to_string(entry.seq) + ": unacked after " +
                               std::to_string(entry.attempts - 1) +
                               " retransmits (retries exhausted)",
                           rank_, entry.dest, entry.tag);
    }
    TRACE_SPAN("comm.retransmit");
    ++stats_.faults.retransmits;
    TRACE_COUNTER_ADD("faults.retransmits", 1);
    ++entry.attempts;
    entry.backoff = std::min<std::chrono::nanoseconds>(entry.backoff * 2,
                                                       shared_->retry_timeout * 64);
    entry.deadline = now + entry.backoff;
    push_raw(entry.dest, RankMessage{rank_, entry.tag, entry.payload});
  }
}

void Comm::filter_reliable(RankMessage raw) {
  if (raw.tag == kAckTag) {
    ++stats_.faults.acks_received;
    const std::uint64_t seq = read_seq(raw.payload);
    for (auto it = unacked_.begin(); it != unacked_.end(); ++it) {
      if (it->dest == raw.source && it->seq == seq) {
        unacked_.erase(it);
        break;
      }
    }
    return;
  }

  // Data: acknowledge every arrival (including duplicates — the original
  // ack may still be in flight when a retransmit lands), then sequence.
  const std::uint64_t seq = read_seq(raw.payload);
  ++stats_.faults.acks_sent;
  push_raw(raw.source, RankMessage{rank_, kAckTag, seq_only_payload(seq)});

  if (streams_.empty()) streams_.resize(static_cast<std::size_t>(size_));
  SourceStream& stream = streams_[static_cast<std::size_t>(raw.source)];
  if (seq < stream.next_seq || stream.out_of_order.count(seq) != 0) {
    ++stats_.faults.duplicates_discarded;
    return;
  }
  raw.payload.erase(raw.payload.begin(),
                    raw.payload.begin() + static_cast<std::ptrdiff_t>(sizeof(seq)));
  if (seq == stream.next_seq) {
    ++stream.next_seq;
    deliverable_.push_back(std::move(raw));
    // A gap may have just closed: flush the consecutive run behind it.
    for (auto it = stream.out_of_order.find(stream.next_seq);
         it != stream.out_of_order.end();
         it = stream.out_of_order.find(stream.next_seq)) {
      deliverable_.push_back(std::move(it->second));
      stream.out_of_order.erase(it);
      ++stream.next_seq;
    }
  } else {
    ++stats_.faults.out_of_order_buffered;
    stream.out_of_order.emplace(seq, std::move(raw));
  }
}

std::optional<RankMessage> Comm::pop_raw(bool block) {
  if (!pending_.empty()) {
    std::optional<RankMessage> message(std::move(pending_.front()));
    pending_.pop_front();
    return message;
  }
  Channel<RankMessage>& inbox = *shared_->mailboxes[static_cast<std::size_t>(rank_)];
  if (!block) return inbox.try_pop();
  std::optional<RankMessage> message = inbox.try_pop_for(kRecvSlice);
  if (!message && inbox.closed())
    throw CommAbortError("Comm::recv: mailbox closed (runtime aborted)");
  return message;
}

RankMessage Comm::recv() {
  if (shared_->reliable) {
    while (deliverable_.empty()) {
      service_reliable();
      // Bounded wait so overdue retransmissions keep flowing even while
      // this rank is parked waiting for data.
      if (std::optional<RankMessage> raw = pop_raw(/*block=*/true))
        filter_reliable(std::move(*raw));
    }
    RankMessage message = std::move(deliverable_.front());
    deliverable_.pop_front();
    auto& volume = stats_.received[message.tag];
    ++volume.messages;
    volume.bytes += message.payload.size();
    return message;
  }

  std::optional<RankMessage> message;
  if (!pending_.empty()) {
    message = std::move(pending_.front());
    pending_.pop_front();
  } else {
    message = shared_->mailboxes[static_cast<std::size_t>(rank_)]->pop();
    if (!message) throw CommAbortError("Comm::recv: mailbox closed (runtime aborted)");
  }
  auto& volume = stats_.received[message->tag];
  ++volume.messages;
  volume.bytes += message->payload.size();
  return std::move(*message);
}

std::optional<RankMessage> Comm::try_recv() {
  if (shared_->reliable) {
    service_reliable();
    while (deliverable_.empty()) {
      std::optional<RankMessage> raw = pop_raw(/*block=*/false);
      if (!raw) break;
      filter_reliable(std::move(*raw));
    }
    if (deliverable_.empty()) return std::nullopt;
    std::optional<RankMessage> message(std::move(deliverable_.front()));
    deliverable_.pop_front();
    auto& volume = stats_.received[message->tag];
    ++volume.messages;
    volume.bytes += message->payload.size();
    return message;
  }

  std::optional<RankMessage> message;
  if (!pending_.empty()) {
    message = std::move(pending_.front());
    pending_.pop_front();
  } else {
    message = shared_->mailboxes[static_cast<std::size_t>(rank_)]->try_pop();
    if (!message) return std::nullopt;
  }
  auto& volume = stats_.received[message->tag];
  ++volume.messages;
  volume.bytes += message->payload.size();
  return message;
}

bool Comm::reliable() const noexcept { return shared_->reliable; }

void Comm::reliable_flush() {
  if (!shared_->reliable) return;
  TRACE_SPAN("comm.reliable_flush");
  // Injected delays are released immediately: a flush point means the
  // protocol needs everything on the wire now.
  for (auto& held : delayed_) push_raw(held.dest, std::move(held.message));
  delayed_.clear();
  while (!unacked_.empty()) {
    service_reliable();
    if (std::optional<RankMessage> raw = pop_raw(/*block=*/true))
      filter_reliable(std::move(*raw));
  }
}

void Comm::timed_barrier() {
  ++stats_.barriers;
  const Timer timer;
  shared_->barrier();
  stats_.barrier_wait_seconds += timer.seconds();
}

void Comm::barrier() { timed_barrier(); }

std::vector<std::vector<std::byte>> Comm::allgather(std::vector<std::byte> mine) {
  ++stats_.collectives;
  stats_.collective_bytes_out += mine.size();
  shared_->slots[static_cast<std::size_t>(rank_)] = std::move(mine);
  timed_barrier();
  std::vector<std::vector<std::byte>> all(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;  // own slot is moved, not copied, below
    all[static_cast<std::size_t>(r)] = shared_->slots[static_cast<std::size_t>(r)];
    stats_.collective_bytes_in += all[static_cast<std::size_t>(r)].size();
  }
  timed_barrier();
  // After the closing barrier nobody reads our slot again: reclaim it by
  // move instead of leaving a stale copy in the staging area.
  all[static_cast<std::size_t>(rank_)] = std::move(shared_->slots[static_cast<std::size_t>(rank_)]);
  stats_.collective_bytes_in += all[static_cast<std::size_t>(rank_)].size();
  shared_->slots[static_cast<std::size_t>(rank_)] = {};
  return all;
}

template <typename T, typename Fold>
T Comm::reduce_scalar(T value, Fold fold) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++stats_.collectives;
  stats_.collective_bytes_out += sizeof(T);
  auto& slot = shared_->slots[static_cast<std::size_t>(rank_)];
  slot.resize(sizeof(T));
  std::memcpy(slot.data(), &value, sizeof(T));
  timed_barrier();
  // Read only the needed sizeof(T) bytes from each slot — no payload
  // vector copies (the seed allgathered the whole staging area here).
  T accumulated = value;
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    T contribution;
    std::memcpy(&contribution, shared_->slots[static_cast<std::size_t>(r)].data(), sizeof(T));
    accumulated = fold(accumulated, contribution);
  }
  stats_.collective_bytes_in += static_cast<std::uint64_t>(size_) * sizeof(T);
  timed_barrier();
  slot = {};  // clear staging after the closing barrier
  return accumulated;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t value) {
  return reduce_scalar(value, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t Comm::allreduce_max(std::uint64_t value) {
  return reduce_scalar(value, [](std::uint64_t a, std::uint64_t b) { return a < b ? b : a; });
}

double Comm::allreduce_sum(double value) {
  return reduce_scalar(value, [](double a, double b) { return a + b; });
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    std::vector<std::vector<std::byte>> outbox) {
  if (outbox.size() != static_cast<std::size_t>(size_))
    throw std::invalid_argument("Comm::alltoallv: outbox must have one bucket per rank");
  TRACE_SPAN("comm.alltoallv");
  ++stats_.collectives;
  std::uint64_t outgoing = 0;
  for (const auto& bucket : outbox) outgoing += bucket.size();
  stats_.collective_bytes_out += outgoing;
  TRACE_COUNTER_ADD("comm.collective_bytes", outgoing);
  shared_->a2a[static_cast<std::size_t>(rank_)] = std::move(outbox);
  timed_barrier();
  std::vector<std::vector<std::byte>> inbox(static_cast<std::size_t>(size_));
  for (int s = 0; s < size_; ++s) {
    // Each [s][dest] cell has exactly one reader (rank dest == us), so the
    // bucket can be moved out instead of deep-copied.
    inbox[static_cast<std::size_t>(s)] = std::move(
        shared_->a2a[static_cast<std::size_t>(s)][static_cast<std::size_t>(rank_)]);
    stats_.collective_bytes_in += inbox[static_cast<std::size_t>(s)].size();
  }
  timed_barrier();
  // Our row's buckets were all moved out by their readers; drop the husks.
  shared_->a2a[static_cast<std::size_t>(rank_)] = {};
  return inbox;
}

CommStats Comm::stats() const {
  CommStats snapshot = stats_;
  snapshot.mailbox_high_water = std::max<std::uint64_t>(
      snapshot.mailbox_high_water,
      shared_->mailboxes[static_cast<std::size_t>(rank_)]->high_water());
  return snapshot;
}

namespace {

/// Rethrow `error` with "rank R: " prepended when the concrete type allows
/// message rewriting; unknown types propagate unmodified (never change a
/// caller-visible exception type).
[[noreturn]] void rethrow_annotated(int rank, const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (std::exception& e) {
    const std::string annotated = "rank " + std::to_string(rank) + ": " + e.what();
    if (typeid(e) == typeid(CommAbortError)) throw CommAbortError(annotated);
    if (const auto* fault = dynamic_cast<const CommFaultError*>(&e);
        fault != nullptr && typeid(e) == typeid(CommFaultError))
      throw CommFaultError(annotated, fault->source(), fault->dest(), fault->tag());
    if (const auto* crash = dynamic_cast<const RankCrashError*>(&e);
        crash != nullptr && typeid(e) == typeid(RankCrashError))
      throw RankCrashError(annotated, crash->rank(), crash->chunk());
    if (typeid(e) == typeid(std::runtime_error)) throw std::runtime_error(annotated);
    if (typeid(e) == typeid(std::invalid_argument)) throw std::invalid_argument(annotated);
    if (typeid(e) == typeid(std::out_of_range)) throw std::out_of_range(annotated);
    if (typeid(e) == typeid(std::logic_error)) throw std::logic_error(annotated);
    throw;
  }
}

[[nodiscard]] bool is_abort_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const CommAbortError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

void Runtime::run(int ranks, const std::function<void(Comm&)>& body) {
  RuntimeOptions options;
  options.ranks = ranks;
  run(options, body);
}

void Runtime::run(const RuntimeOptions& options, const std::function<void(Comm&)>& body) {
  const int ranks = options.ranks;
  if (ranks < 1) throw std::invalid_argument("Runtime::run: need at least one rank");
  auto shared = std::make_shared<detail::CommShared>(ranks, options);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([r, ranks, &body, shared, &errors] {
      Comm comm(r, ranks, shared);
      // Label this thread's trace spans with its rank for the body's
      // lifetime, so phase attribution is per rank, not per OS thread.
      trace::set_rank(r);
      try {
        TRACE_SPAN("runtime.rank");
        body(comm);
        // A rank must not exit while messages it sent are unacked — its
        // retransmission timers die with it.  No-op without a fault plan.
        comm.reliable_flush();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        shared->abort_all();
      }
      trace::set_rank(-1);
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root cause, not the first error by rank index: when rank k
  // throws and abort_all() wakes a lower blocked rank into a secondary
  // CommAbortError, the secondary must not mask the real failure.
  int first_failed = -1;
  for (int r = 0; r < ranks; ++r) {
    const auto& error = errors[static_cast<std::size_t>(r)];
    if (!error) continue;
    if (first_failed < 0) first_failed = r;
    if (!is_abort_error(error)) rethrow_annotated(r, error);
  }
  if (first_failed >= 0)
    rethrow_annotated(first_failed, errors[static_cast<std::size_t>(first_failed)]);
}

}  // namespace kron
