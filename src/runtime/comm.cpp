#include "runtime/comm.hpp"

#include <chrono>
#include <exception>
#include <limits>
#include <stdexcept>
#include <string>
#include <thread>

#include "runtime/comm_process.hpp"
#include "util/timer.hpp"
#include "util/trace.hpp"

namespace kron {

namespace {

/// Internal tag carried by reliable-delivery acknowledgements; never
/// surfaced to user code (and rejected as a user tag in reliable mode).
constexpr int kAckTag = std::numeric_limits<int>::min();

/// Receive time slice in reliable mode: how long a blocking pop waits
/// before handing control back so overdue messages can be retransmitted.
constexpr std::chrono::microseconds kRecvSlice{200};

std::uint64_t read_seq(const std::vector<std::byte>& payload) {
  std::uint64_t seq = 0;
  std::memcpy(&seq, payload.data(), sizeof(seq));
  return seq;
}

std::vector<std::byte> seq_only_payload(std::uint64_t seq) {
  std::vector<std::byte> bytes(sizeof(seq));
  std::memcpy(bytes.data(), &seq, sizeof(seq));
  return bytes;
}

}  // namespace

Comm detail::make_comm(int rank, int size, std::shared_ptr<detail::Transport> transport,
                       const RuntimeOptions& options) {
  return Comm(rank, size, std::move(transport), options);
}

Comm::Comm(int rank, int size, std::shared_ptr<detail::Transport> transport,
           const RuntimeOptions& options)
    : rank_(rank),
      size_(size),
      transport_(std::move(transport)),
      fault_plan_(options.fault_plan),
      reliable_(options.fault_plan != nullptr && options.fault_plan->has_message_faults()),
      retry_timeout_(options.retry_timeout),
      max_retries_(options.max_retries) {}

void Comm::push_raw(int dest, RankMessage message) {
  transport_->push(dest, std::move(message));
}

void Comm::send(int dest, int tag, std::vector<std::byte> payload) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("Comm::send: bad destination rank");
  auto& volume = stats_.sent[tag];
  ++volume.messages;
  volume.bytes += payload.size();
  TRACE_COUNTER_ADD("comm.p2p_bytes", payload.size());

  if (!reliable_) {
    push_raw(dest, RankMessage{rank_, tag, std::move(payload)});
    return;
  }

  // Reliable path: assign a per-destination sequence number, keep the wire
  // copy for retransmission, then let the fault plan decide the first
  // transmission's fate.
  if (tag == kAckTag)
    throw std::invalid_argument("Comm::send: tag INT_MIN is reserved for reliable acks");
  if (next_seq_.empty()) next_seq_.resize(static_cast<std::size_t>(size_), 0);
  const std::uint64_t seq = next_seq_[static_cast<std::size_t>(dest)]++;

  std::vector<std::byte> wire(sizeof(seq) + payload.size());
  std::memcpy(wire.data(), &seq, sizeof(seq));
  std::memcpy(wire.data() + sizeof(seq), payload.data(), payload.size());
  unacked_.push_back(UnackedSend{dest, tag, seq, wire,
                                 std::chrono::steady_clock::now() + retry_timeout_,
                                 std::chrono::nanoseconds(retry_timeout_), 1});

  const FaultDecision fate = fault_plan_->decide(rank_, dest, tag, seq);
  if (!fate.drop && fate.duplicate) {
    ++stats_.faults.injected_dups;
    TRACE_COUNTER_ADD("faults.dups", 1);
    push_raw(dest, RankMessage{rank_, tag, wire});
  }
  if (fate.drop) {
    // Not transmitted: the copy in unacked_ is delivered by retransmission.
    ++stats_.faults.injected_drops;
    TRACE_COUNTER_ADD("faults.drops", 1);
  } else if (fate.delay_ops != 0) {
    ++stats_.faults.injected_delays;
    TRACE_COUNTER_ADD("faults.delays", 1);
    delayed_.push_back(
        DelayedDelivery{op_count_ + fate.delay_ops, dest, RankMessage{rank_, tag, std::move(wire)}});
  } else {
    push_raw(dest, RankMessage{rank_, tag, std::move(wire)});
  }
  service_reliable();
}

void Comm::service_reliable() {
  ++op_count_;

  // Release injected delays that have come due.
  for (auto it = delayed_.begin(); it != delayed_.end();) {
    if (it->release_op <= op_count_) {
      push_raw(it->dest, std::move(it->message));
      it = delayed_.erase(it);
    } else {
      ++it;
    }
  }

  if (unacked_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& entry : unacked_) {
    if (entry.deadline > now) continue;
    if (entry.attempts > max_retries_) {
      throw CommFaultError("Comm: rank " + std::to_string(rank_) + " -> rank " +
                               std::to_string(entry.dest) + " tag " +
                               std::to_string(entry.tag) + " seq " +
                               std::to_string(entry.seq) + ": unacked after " +
                               std::to_string(entry.attempts - 1) +
                               " retransmits (retries exhausted)",
                           rank_, entry.dest, entry.tag);
    }
    TRACE_SPAN("comm.retransmit");
    ++stats_.faults.retransmits;
    TRACE_COUNTER_ADD("faults.retransmits", 1);
    ++entry.attempts;
    entry.backoff = std::min<std::chrono::nanoseconds>(entry.backoff * 2, retry_timeout_ * 64);
    entry.deadline = now + entry.backoff;
    push_raw(entry.dest, RankMessage{rank_, entry.tag, entry.payload});
  }
}

void Comm::filter_reliable(RankMessage raw) {
  if (raw.tag == kAckTag) {
    ++stats_.faults.acks_received;
    const std::uint64_t seq = read_seq(raw.payload);
    for (auto it = unacked_.begin(); it != unacked_.end(); ++it) {
      if (it->dest == raw.source && it->seq == seq) {
        unacked_.erase(it);
        break;
      }
    }
    return;
  }

  // Data: acknowledge every arrival (including duplicates — the original
  // ack may still be in flight when a retransmit lands), then sequence.
  const std::uint64_t seq = read_seq(raw.payload);
  ++stats_.faults.acks_sent;
  push_raw(raw.source, RankMessage{rank_, kAckTag, seq_only_payload(seq)});

  if (streams_.empty()) streams_.resize(static_cast<std::size_t>(size_));
  SourceStream& stream = streams_[static_cast<std::size_t>(raw.source)];
  if (seq < stream.next_seq || stream.out_of_order.count(seq) != 0) {
    ++stats_.faults.duplicates_discarded;
    return;
  }
  raw.payload.erase(raw.payload.begin(),
                    raw.payload.begin() + static_cast<std::ptrdiff_t>(sizeof(seq)));
  if (seq == stream.next_seq) {
    ++stream.next_seq;
    deliverable_.push_back(std::move(raw));
    // A gap may have just closed: flush the consecutive run behind it.
    for (auto it = stream.out_of_order.find(stream.next_seq);
         it != stream.out_of_order.end();
         it = stream.out_of_order.find(stream.next_seq)) {
      deliverable_.push_back(std::move(it->second));
      stream.out_of_order.erase(it);
      ++stream.next_seq;
    }
  } else {
    ++stats_.faults.out_of_order_buffered;
    stream.out_of_order.emplace(seq, std::move(raw));
  }
}

std::optional<RankMessage> Comm::pop_raw(bool block) {
  // Bounded wait in blocking mode so overdue retransmissions keep flowing
  // even while this rank is parked waiting for data.
  return transport_->pop(block ? kRecvSlice : std::chrono::microseconds{0});
}

RankMessage Comm::recv() {
  if (reliable_) {
    while (deliverable_.empty()) {
      service_reliable();
      if (std::optional<RankMessage> raw = pop_raw(/*block=*/true))
        filter_reliable(std::move(*raw));
    }
    RankMessage message = std::move(deliverable_.front());
    deliverable_.pop_front();
    auto& volume = stats_.received[message.tag];
    ++volume.messages;
    volume.bytes += message.payload.size();
    return message;
  }

  std::optional<RankMessage> message = transport_->pop(std::nullopt);
  if (!message) throw CommAbortError("Comm::recv: mailbox closed (runtime aborted)");
  auto& volume = stats_.received[message->tag];
  ++volume.messages;
  volume.bytes += message->payload.size();
  return std::move(*message);
}

std::optional<RankMessage> Comm::try_recv() {
  if (reliable_) {
    service_reliable();
    while (deliverable_.empty()) {
      std::optional<RankMessage> raw = pop_raw(/*block=*/false);
      if (!raw) break;
      filter_reliable(std::move(*raw));
    }
    if (deliverable_.empty()) return std::nullopt;
    std::optional<RankMessage> message(std::move(deliverable_.front()));
    deliverable_.pop_front();
    auto& volume = stats_.received[message->tag];
    ++volume.messages;
    volume.bytes += message->payload.size();
    return message;
  }

  std::optional<RankMessage> message = transport_->pop(std::chrono::microseconds{0});
  if (!message) return std::nullopt;
  auto& volume = stats_.received[message->tag];
  ++volume.messages;
  volume.bytes += message->payload.size();
  return message;
}

bool Comm::reliable() const noexcept { return reliable_; }

void Comm::reliable_flush() {
  if (!reliable_) return;
  TRACE_SPAN("comm.reliable_flush");
  // Injected delays are released immediately: a flush point means the
  // protocol needs everything on the wire now.
  for (auto& held : delayed_) push_raw(held.dest, std::move(held.message));
  delayed_.clear();
  while (!unacked_.empty()) {
    service_reliable();
    if (std::optional<RankMessage> raw = pop_raw(/*block=*/true))
      filter_reliable(std::move(*raw));
  }
}

void Comm::timed_barrier() {
  ++stats_.barriers;
  const Timer timer;
  transport_->barrier();
  stats_.barrier_wait_seconds += timer.seconds();
}

void Comm::barrier() { timed_barrier(); }

std::vector<std::vector<std::byte>> Comm::allgather(std::vector<std::byte> mine) {
  ++stats_.collectives;
  stats_.collective_bytes_out += mine.size();
  auto all = transport_->allgather(std::move(mine), [this] { timed_barrier(); });
  for (const auto& blob : all) stats_.collective_bytes_in += blob.size();
  return all;
}

template <typename T, typename Fold>
T Comm::reduce_scalar(T value, Fold fold) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++stats_.collectives;
  stats_.collective_bytes_out += sizeof(T);
  std::vector<std::byte> mine(sizeof(T));
  std::memcpy(mine.data(), &value, sizeof(T));
  const auto all = transport_->allgather(std::move(mine), [this] { timed_barrier(); });
  T accumulated = value;
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    T contribution;
    std::memcpy(&contribution, all[static_cast<std::size_t>(r)].data(), sizeof(T));
    accumulated = fold(accumulated, contribution);
  }
  stats_.collective_bytes_in += static_cast<std::uint64_t>(size_) * sizeof(T);
  return accumulated;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t value) {
  return reduce_scalar(value, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t Comm::allreduce_max(std::uint64_t value) {
  return reduce_scalar(value, [](std::uint64_t a, std::uint64_t b) { return a < b ? b : a; });
}

double Comm::allreduce_sum(double value) {
  return reduce_scalar(value, [](double a, double b) { return a + b; });
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    std::vector<std::vector<std::byte>> outbox) {
  if (outbox.size() != static_cast<std::size_t>(size_))
    throw std::invalid_argument("Comm::alltoallv: outbox must have one bucket per rank");
  TRACE_SPAN("comm.alltoallv");
  ++stats_.collectives;
  std::uint64_t outgoing = 0;
  for (const auto& bucket : outbox) outgoing += bucket.size();
  stats_.collective_bytes_out += outgoing;
  TRACE_COUNTER_ADD("comm.collective_bytes", outgoing);
  auto inbox = transport_->alltoallv(std::move(outbox), [this] { timed_barrier(); });
  for (const auto& bucket : inbox) stats_.collective_bytes_in += bucket.size();
  return inbox;
}

CommStats Comm::stats() const {
  CommStats snapshot = stats_;
  snapshot.mailbox_high_water =
      std::max<std::uint64_t>(snapshot.mailbox_high_water, transport_->inbox_high_water());
  snapshot.send_backpressure_waits += transport_->send_backpressure_waits();
  return snapshot;
}

void Runtime::run(int ranks, const std::function<void(Comm&)>& body) {
  RuntimeOptions options;
  options.ranks = ranks;
  run(options, body);
}

void Runtime::run(const RuntimeOptions& options, const std::function<void(Comm&)>& body) {
  (void)run_gather(options, [&body](Comm& comm) {
    body(comm);
    return std::vector<std::byte>{};
  });
}

std::vector<std::vector<std::byte>> Runtime::run_gather(
    const RuntimeOptions& options, const std::function<std::vector<std::byte>(Comm&)>& body) {
  const int ranks = options.ranks;
  if (ranks < 1) throw std::invalid_argument("Runtime::run: need at least one rank");
  if (options.backend == CommBackend::kProcs) return detail::run_process_ranks(options, body);

  detail::ThreadBackend backend(ranks, options.mailbox_capacity);
  std::vector<std::vector<std::byte>> results(static_cast<std::size_t>(ranks));
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([r, ranks, &body, &backend, &options, &results, &errors] {
      Comm comm = detail::make_comm(r, ranks, backend.transport_for(r), options);
      // Label this thread's trace spans with its rank for the body's
      // lifetime, so phase attribution is per rank, not per OS thread.
      trace::set_rank(r);
      try {
        TRACE_SPAN("runtime.rank");
        results[static_cast<std::size_t>(r)] = body(comm);
        // A rank must not exit while messages it sent are unacked — its
        // retransmission timers die with it.  No-op without a fault plan.
        comm.reliable_flush();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        backend.abort_all();
      }
      trace::set_rank(-1);
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root cause, not the first error by rank index: when rank k
  // throws and abort_all() wakes a lower blocked rank into a secondary
  // CommAbortError, the secondary must not mask the real failure.
  int first_failed = -1;
  for (int r = 0; r < ranks; ++r) {
    const auto& error = errors[static_cast<std::size_t>(r)];
    if (!error) continue;
    if (first_failed < 0) first_failed = r;
    if (!detail::is_abort_error(error)) detail::rethrow_annotated(r, error);
  }
  if (first_failed >= 0)
    detail::rethrow_annotated(first_failed, errors[static_cast<std::size_t>(first_failed)]);
  return results;
}

}  // namespace kron
