#include "runtime/comm.hpp"

#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace kron {
namespace detail {

/// State shared by all ranks of one Runtime::run invocation.
struct CommShared {
  explicit CommShared(int num_ranks) : size(num_ranks), slots(static_cast<std::size_t>(num_ranks)) {
    mailboxes.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r)
      mailboxes.push_back(std::make_unique<Channel<RankMessage>>());
    a2a.resize(static_cast<std::size_t>(size));
  }

  const int size;

  // Point-to-point mailboxes, one per destination rank.
  std::vector<std::unique_ptr<Channel<RankMessage>>> mailboxes;

  // Central sense-reversing barrier.
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;
  bool aborted = false;

  // Staging areas for collectives (guarded by the barrier protocol: write
  // own slot, barrier, read, barrier).
  std::vector<std::vector<std::byte>> slots;
  std::vector<std::vector<std::vector<std::byte>>> a2a;  // [source][dest]

  void abort_all() {
    {
      const std::scoped_lock lock(mutex);
      aborted = true;
    }
    cv.notify_all();
    for (auto& box : mailboxes) box->close();
  }

  void barrier() {
    std::unique_lock lock(mutex);
    if (aborted) throw std::runtime_error("Comm: runtime aborted by another rank");
    const std::uint64_t my_generation = generation;
    if (++arrived == size) {
      arrived = 0;
      ++generation;
      cv.notify_all();
      return;
    }
    cv.wait(lock, [&] { return generation != my_generation || aborted; });
    if (generation == my_generation && aborted)
      throw std::runtime_error("Comm: runtime aborted by another rank");
  }
};

}  // namespace detail

void Comm::send(int dest, int tag, std::vector<std::byte> payload) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("Comm::send: bad destination rank");
  shared_->mailboxes[static_cast<std::size_t>(dest)]->push(
      RankMessage{rank_, tag, std::move(payload)});
}

RankMessage Comm::recv() {
  auto message = shared_->mailboxes[static_cast<std::size_t>(rank_)]->pop();
  if (!message) throw std::runtime_error("Comm::recv: mailbox closed (runtime aborted)");
  return std::move(*message);
}

std::optional<RankMessage> Comm::try_recv() {
  return shared_->mailboxes[static_cast<std::size_t>(rank_)]->try_pop();
}

void Comm::barrier() { shared_->barrier(); }

std::vector<std::vector<std::byte>> Comm::allgather(std::vector<std::byte> mine) {
  shared_->slots[static_cast<std::size_t>(rank_)] = std::move(mine);
  shared_->barrier();
  std::vector<std::vector<std::byte>> all = shared_->slots;  // copy while stable
  shared_->barrier();
  return all;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t value) {
  const auto all = allgather_values<std::uint64_t>(std::span(&value, 1));
  std::uint64_t sum = 0;
  for (const auto& contribution : all) sum += contribution.at(0);
  return sum;
}

std::uint64_t Comm::allreduce_max(std::uint64_t value) {
  const auto all = allgather_values<std::uint64_t>(std::span(&value, 1));
  std::uint64_t best = 0;
  for (const auto& contribution : all) best = std::max(best, contribution.at(0));
  return best;
}

double Comm::allreduce_sum(double value) {
  const auto all = allgather_values<double>(std::span(&value, 1));
  double sum = 0;
  for (const auto& contribution : all) sum += contribution.at(0);
  return sum;
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    std::vector<std::vector<std::byte>> outbox) {
  if (outbox.size() != static_cast<std::size_t>(size_))
    throw std::invalid_argument("Comm::alltoallv: outbox must have one bucket per rank");
  shared_->a2a[static_cast<std::size_t>(rank_)] = std::move(outbox);
  shared_->barrier();
  std::vector<std::vector<std::byte>> inbox(static_cast<std::size_t>(size_));
  for (int s = 0; s < size_; ++s)
    inbox[static_cast<std::size_t>(s)] =
        shared_->a2a[static_cast<std::size_t>(s)][static_cast<std::size_t>(rank_)];
  shared_->barrier();
  return inbox;
}

void Runtime::run(int ranks, const std::function<void(Comm&)>& body) {
  if (ranks < 1) throw std::invalid_argument("Runtime::run: need at least one rank");
  auto shared = std::make_shared<detail::CommShared>(ranks);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([r, ranks, &body, shared, &errors] {
      Comm comm(r, ranks, shared);
      try {
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        shared->abort_all();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& error : errors)
    if (error) std::rethrow_exception(error);
}

}  // namespace kron
