#include "runtime/comm.hpp"

#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <typeinfo>

#include "util/timer.hpp"
#include "util/trace.hpp"

namespace kron {
namespace detail {

/// State shared by all ranks of one Runtime::run invocation.
struct CommShared {
  CommShared(int num_ranks, std::size_t mailbox_capacity)
      : size(num_ranks), slots(static_cast<std::size_t>(num_ranks)) {
    mailboxes.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r)
      mailboxes.push_back(std::make_unique<Channel<RankMessage>>(mailbox_capacity));
    a2a.resize(static_cast<std::size_t>(size));
  }

  const int size;

  // Point-to-point mailboxes, one per destination rank.
  std::vector<std::unique_ptr<Channel<RankMessage>>> mailboxes;

  // Central sense-reversing barrier.
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;
  bool aborted = false;

  // Staging areas for collectives (guarded by the barrier protocol: write
  // own slot, barrier, read, barrier).
  std::vector<std::vector<std::byte>> slots;
  std::vector<std::vector<std::vector<std::byte>>> a2a;  // [source][dest]

  void abort_all() {
    {
      const std::scoped_lock lock(mutex);
      aborted = true;
    }
    cv.notify_all();
    for (auto& box : mailboxes) box->close();
  }

  void barrier() {
    std::unique_lock lock(mutex);
    if (aborted) throw CommAbortError("Comm: runtime aborted by another rank");
    const std::uint64_t my_generation = generation;
    if (++arrived == size) {
      arrived = 0;
      ++generation;
      cv.notify_all();
      return;
    }
    cv.wait(lock, [&] { return generation != my_generation || aborted; });
    if (generation == my_generation && aborted)
      throw CommAbortError("Comm: runtime aborted by another rank");
  }
};

}  // namespace detail

void Comm::send(int dest, int tag, std::vector<std::byte> payload) {
  if (dest < 0 || dest >= size_) throw std::out_of_range("Comm::send: bad destination rank");
  auto& volume = stats_.sent[tag];
  ++volume.messages;
  volume.bytes += payload.size();
  TRACE_COUNTER_ADD("comm.p2p_bytes", payload.size());

  RankMessage message{rank_, tag, std::move(payload)};
  Channel<RankMessage>& box = *shared_->mailboxes[static_cast<std::size_t>(dest)];
  if (box.try_push(message)) return;

  // Bounded destination mailbox at capacity: wait for space, but keep
  // draining our own inbox meanwhile — if the destination is itself
  // blocked sending to us, each of us frees the space the other needs.
  ++stats_.send_backpressure_waits;
  Channel<RankMessage>& inbox = *shared_->mailboxes[static_cast<std::size_t>(rank_)];
  while (!box.try_push_for(message, std::chrono::microseconds(200))) {
    while (auto incoming = inbox.try_pop()) pending_.push_back(std::move(*incoming));
  }
}

RankMessage Comm::recv() {
  std::optional<RankMessage> message;
  if (!pending_.empty()) {
    message = std::move(pending_.front());
    pending_.pop_front();
  } else {
    message = shared_->mailboxes[static_cast<std::size_t>(rank_)]->pop();
    if (!message) throw CommAbortError("Comm::recv: mailbox closed (runtime aborted)");
  }
  auto& volume = stats_.received[message->tag];
  ++volume.messages;
  volume.bytes += message->payload.size();
  return std::move(*message);
}

std::optional<RankMessage> Comm::try_recv() {
  std::optional<RankMessage> message;
  if (!pending_.empty()) {
    message = std::move(pending_.front());
    pending_.pop_front();
  } else {
    message = shared_->mailboxes[static_cast<std::size_t>(rank_)]->try_pop();
    if (!message) return std::nullopt;
  }
  auto& volume = stats_.received[message->tag];
  ++volume.messages;
  volume.bytes += message->payload.size();
  return message;
}

void Comm::timed_barrier() {
  ++stats_.barriers;
  const Timer timer;
  shared_->barrier();
  stats_.barrier_wait_seconds += timer.seconds();
}

void Comm::barrier() { timed_barrier(); }

std::vector<std::vector<std::byte>> Comm::allgather(std::vector<std::byte> mine) {
  ++stats_.collectives;
  stats_.collective_bytes_out += mine.size();
  shared_->slots[static_cast<std::size_t>(rank_)] = std::move(mine);
  timed_barrier();
  std::vector<std::vector<std::byte>> all(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;  // own slot is moved, not copied, below
    all[static_cast<std::size_t>(r)] = shared_->slots[static_cast<std::size_t>(r)];
    stats_.collective_bytes_in += all[static_cast<std::size_t>(r)].size();
  }
  timed_barrier();
  // After the closing barrier nobody reads our slot again: reclaim it by
  // move instead of leaving a stale copy in the staging area.
  all[static_cast<std::size_t>(rank_)] = std::move(shared_->slots[static_cast<std::size_t>(rank_)]);
  stats_.collective_bytes_in += all[static_cast<std::size_t>(rank_)].size();
  shared_->slots[static_cast<std::size_t>(rank_)] = {};
  return all;
}

template <typename T, typename Fold>
T Comm::reduce_scalar(T value, Fold fold) {
  static_assert(std::is_trivially_copyable_v<T>);
  ++stats_.collectives;
  stats_.collective_bytes_out += sizeof(T);
  auto& slot = shared_->slots[static_cast<std::size_t>(rank_)];
  slot.resize(sizeof(T));
  std::memcpy(slot.data(), &value, sizeof(T));
  timed_barrier();
  // Read only the needed sizeof(T) bytes from each slot — no payload
  // vector copies (the seed allgathered the whole staging area here).
  T accumulated = value;
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    T contribution;
    std::memcpy(&contribution, shared_->slots[static_cast<std::size_t>(r)].data(), sizeof(T));
    accumulated = fold(accumulated, contribution);
  }
  stats_.collective_bytes_in += static_cast<std::uint64_t>(size_) * sizeof(T);
  timed_barrier();
  slot = {};  // clear staging after the closing barrier
  return accumulated;
}

std::uint64_t Comm::allreduce_sum(std::uint64_t value) {
  return reduce_scalar(value, [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

std::uint64_t Comm::allreduce_max(std::uint64_t value) {
  return reduce_scalar(value, [](std::uint64_t a, std::uint64_t b) { return a < b ? b : a; });
}

double Comm::allreduce_sum(double value) {
  return reduce_scalar(value, [](double a, double b) { return a + b; });
}

std::vector<std::vector<std::byte>> Comm::alltoallv_bytes(
    std::vector<std::vector<std::byte>> outbox) {
  if (outbox.size() != static_cast<std::size_t>(size_))
    throw std::invalid_argument("Comm::alltoallv: outbox must have one bucket per rank");
  TRACE_SPAN("comm.alltoallv");
  ++stats_.collectives;
  std::uint64_t outgoing = 0;
  for (const auto& bucket : outbox) outgoing += bucket.size();
  stats_.collective_bytes_out += outgoing;
  TRACE_COUNTER_ADD("comm.collective_bytes", outgoing);
  shared_->a2a[static_cast<std::size_t>(rank_)] = std::move(outbox);
  timed_barrier();
  std::vector<std::vector<std::byte>> inbox(static_cast<std::size_t>(size_));
  for (int s = 0; s < size_; ++s) {
    // Each [s][dest] cell has exactly one reader (rank dest == us), so the
    // bucket can be moved out instead of deep-copied.
    inbox[static_cast<std::size_t>(s)] = std::move(
        shared_->a2a[static_cast<std::size_t>(s)][static_cast<std::size_t>(rank_)]);
    stats_.collective_bytes_in += inbox[static_cast<std::size_t>(s)].size();
  }
  timed_barrier();
  // Our row's buckets were all moved out by their readers; drop the husks.
  shared_->a2a[static_cast<std::size_t>(rank_)] = {};
  return inbox;
}

CommStats Comm::stats() const {
  CommStats snapshot = stats_;
  snapshot.mailbox_high_water = std::max<std::uint64_t>(
      snapshot.mailbox_high_water,
      shared_->mailboxes[static_cast<std::size_t>(rank_)]->high_water());
  return snapshot;
}

namespace {

/// Rethrow `error` with "rank R: " prepended when the concrete type allows
/// message rewriting; unknown types propagate unmodified (never change a
/// caller-visible exception type).
[[noreturn]] void rethrow_annotated(int rank, const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (std::exception& e) {
    const std::string annotated = "rank " + std::to_string(rank) + ": " + e.what();
    if (typeid(e) == typeid(CommAbortError)) throw CommAbortError(annotated);
    if (typeid(e) == typeid(std::runtime_error)) throw std::runtime_error(annotated);
    if (typeid(e) == typeid(std::invalid_argument)) throw std::invalid_argument(annotated);
    if (typeid(e) == typeid(std::out_of_range)) throw std::out_of_range(annotated);
    if (typeid(e) == typeid(std::logic_error)) throw std::logic_error(annotated);
    throw;
  }
}

[[nodiscard]] bool is_abort_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const CommAbortError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace

void Runtime::run(int ranks, const std::function<void(Comm&)>& body) {
  run(RuntimeOptions{ranks, 0}, body);
}

void Runtime::run(const RuntimeOptions& options, const std::function<void(Comm&)>& body) {
  const int ranks = options.ranks;
  if (ranks < 1) throw std::invalid_argument("Runtime::run: need at least one rank");
  auto shared = std::make_shared<detail::CommShared>(ranks, options.mailbox_capacity);
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(ranks));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(ranks));
  for (int r = 0; r < ranks; ++r) {
    threads.emplace_back([r, ranks, &body, shared, &errors] {
      Comm comm(r, ranks, shared);
      // Label this thread's trace spans with its rank for the body's
      // lifetime, so phase attribution is per rank, not per OS thread.
      trace::set_rank(r);
      try {
        TRACE_SPAN("runtime.rank");
        body(comm);
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
        shared->abort_all();
      }
      trace::set_rank(-1);
    });
  }
  for (auto& t : threads) t.join();
  // Rethrow the root cause, not the first error by rank index: when rank k
  // throws and abort_all() wakes a lower blocked rank into a secondary
  // CommAbortError, the secondary must not mask the real failure.
  int first_failed = -1;
  for (int r = 0; r < ranks; ++r) {
    const auto& error = errors[static_cast<std::size_t>(r)];
    if (!error) continue;
    if (first_failed < 0) first_failed = r;
    if (!is_abort_error(error)) rethrow_annotated(r, error);
  }
  if (first_failed >= 0)
    rethrow_annotated(first_failed, errors[static_cast<std::size_t>(first_failed)]);
}

}  // namespace kron
