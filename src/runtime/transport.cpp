#include "runtime/transport.hpp"

#include <condition_variable>
#include <deque>
#include <mutex>
#include <string>
#include <typeinfo>

#include "runtime/channel.hpp"
#include "runtime/faults.hpp"

namespace kron::detail {

/// State shared by all ranks of one threaded Runtime::run invocation.
struct ThreadBackend::Shared {
  Shared(int num_ranks, std::size_t mailbox_capacity) : size(num_ranks) {
    mailboxes.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r)
      mailboxes.push_back(std::make_unique<Channel<RankMessage>>(mailbox_capacity));
    slots.resize(static_cast<std::size_t>(size));
    a2a.resize(static_cast<std::size_t>(size));
  }

  const int size;

  // Point-to-point mailboxes, one per destination rank.
  std::vector<std::unique_ptr<Channel<RankMessage>>> mailboxes;

  // Central sense-reversing barrier.
  std::mutex mutex;
  std::condition_variable cv;
  int arrived = 0;
  std::uint64_t generation = 0;
  bool aborted = false;

  // Staging areas for collectives (guarded by the barrier protocol: write
  // own slot, barrier, read, barrier).
  std::vector<std::vector<std::byte>> slots;
  std::vector<std::vector<std::vector<std::byte>>> a2a;  // [source][dest]

  void abort_all() {
    {
      const std::scoped_lock lock(mutex);
      aborted = true;
    }
    cv.notify_all();
    for (auto& box : mailboxes) box->close();
  }

  void barrier() {
    std::unique_lock lock(mutex);
    if (aborted) throw CommAbortError("Comm: runtime aborted by another rank");
    const std::uint64_t my_generation = generation;
    if (++arrived == size) {
      arrived = 0;
      ++generation;
      cv.notify_all();
      return;
    }
    cv.wait(lock, [&] { return generation != my_generation || aborted; });
    if (generation == my_generation && aborted)
      throw CommAbortError("Comm: runtime aborted by another rank");
  }
};

namespace {

/// One rank's view of the shared-memory substrate.
class ThreadTransport final : public Transport {
 public:
  ThreadTransport(int rank, std::shared_ptr<ThreadBackend::Shared> shared)
      : rank_(rank), shared_(std::move(shared)) {}

  void push(int dest, RankMessage message) override {
    Channel<RankMessage>& box = *shared_->mailboxes[static_cast<std::size_t>(dest)];
    if (box.try_push(message)) return;

    // Bounded destination mailbox at capacity: wait for space, but keep
    // draining our own inbox meanwhile — if the destination is itself
    // blocked sending to us, each of us frees the space the other needs.
    ++backpressure_waits_;
    Channel<RankMessage>& inbox = *shared_->mailboxes[static_cast<std::size_t>(rank_)];
    while (!box.try_push_for(message, std::chrono::microseconds(200))) {
      while (auto incoming = inbox.try_pop()) pending_.push_back(std::move(*incoming));
    }
  }

  std::optional<RankMessage> pop(std::optional<std::chrono::microseconds> timeout) override {
    // Messages drained into pending_ by a backpressured push are served
    // first, preserving arrival order.
    if (!pending_.empty()) {
      std::optional<RankMessage> message(std::move(pending_.front()));
      pending_.pop_front();
      return message;
    }
    Channel<RankMessage>& inbox = *shared_->mailboxes[static_cast<std::size_t>(rank_)];
    if (!timeout) {
      std::optional<RankMessage> message = inbox.pop();
      if (!message) throw CommAbortError("Comm::recv: mailbox closed (runtime aborted)");
      return message;
    }
    if (timeout->count() == 0) return inbox.try_pop();
    std::optional<RankMessage> message = inbox.try_pop_for(*timeout);
    if (!message && inbox.closed())
      throw CommAbortError("Comm::recv: mailbox closed (runtime aborted)");
    return message;
  }

  void barrier() override { shared_->barrier(); }

  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> mine,
                                                const std::function<void()>& sync) override {
    shared_->slots[static_cast<std::size_t>(rank_)] = std::move(mine);
    sync();
    const int size = shared_->size;
    std::vector<std::vector<std::byte>> all(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      if (r == rank_) continue;  // own slot is moved, not copied, below
      all[static_cast<std::size_t>(r)] = shared_->slots[static_cast<std::size_t>(r)];
    }
    sync();
    // After the closing barrier nobody reads our slot again: reclaim it by
    // move instead of leaving a stale copy in the staging area.
    all[static_cast<std::size_t>(rank_)] =
        std::move(shared_->slots[static_cast<std::size_t>(rank_)]);
    shared_->slots[static_cast<std::size_t>(rank_)] = {};
    return all;
  }

  std::vector<std::vector<std::byte>> alltoallv(std::vector<std::vector<std::byte>> outbox,
                                                const std::function<void()>& sync) override {
    shared_->a2a[static_cast<std::size_t>(rank_)] = std::move(outbox);
    sync();
    const int size = shared_->size;
    std::vector<std::vector<std::byte>> inbox(static_cast<std::size_t>(size));
    for (int s = 0; s < size; ++s) {
      // Each [s][dest] cell has exactly one reader (rank dest == us), so the
      // bucket can be moved out instead of deep-copied.
      inbox[static_cast<std::size_t>(s)] = std::move(
          shared_->a2a[static_cast<std::size_t>(s)][static_cast<std::size_t>(rank_)]);
    }
    sync();
    // Our row's buckets were all moved out by their readers; drop the husks.
    shared_->a2a[static_cast<std::size_t>(rank_)] = {};
    return inbox;
  }

  std::uint64_t inbox_high_water() const override {
    return shared_->mailboxes[static_cast<std::size_t>(rank_)]->high_water();
  }

  std::uint64_t send_backpressure_waits() const override { return backpressure_waits_; }

 private:
  const int rank_;
  std::shared_ptr<ThreadBackend::Shared> shared_;
  // Messages popped from our own inbox while a bounded send was waiting.
  std::deque<RankMessage> pending_;
  std::uint64_t backpressure_waits_ = 0;
};

}  // namespace

ThreadBackend::ThreadBackend(int ranks, std::size_t mailbox_capacity)
    : shared_(std::make_shared<Shared>(ranks, mailbox_capacity)) {}

std::shared_ptr<Transport> ThreadBackend::transport_for(int rank) {
  return std::make_shared<ThreadTransport>(rank, shared_);
}

void ThreadBackend::abort_all() { shared_->abort_all(); }

void rethrow_annotated(int rank, const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (std::exception& e) {
    const std::string annotated = "rank " + std::to_string(rank) + ": " + e.what();
    if (typeid(e) == typeid(CommAbortError)) throw CommAbortError(annotated);
    if (const auto* fault = dynamic_cast<const CommFaultError*>(&e);
        fault != nullptr && typeid(e) == typeid(CommFaultError))
      throw CommFaultError(annotated, fault->source(), fault->dest(), fault->tag());
    if (const auto* crash = dynamic_cast<const RankCrashError*>(&e);
        crash != nullptr && typeid(e) == typeid(RankCrashError))
      throw RankCrashError(annotated, crash->rank(), crash->chunk());
    if (typeid(e) == typeid(std::runtime_error)) throw std::runtime_error(annotated);
    if (typeid(e) == typeid(std::invalid_argument)) throw std::invalid_argument(annotated);
    if (typeid(e) == typeid(std::out_of_range)) throw std::out_of_range(annotated);
    if (typeid(e) == typeid(std::logic_error)) throw std::logic_error(annotated);
    throw;
  }
}

bool is_abort_error(const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const CommAbortError&) {
    return true;
  } catch (...) {
    return false;
  }
}

}  // namespace kron::detail
