// Transport abstraction under the Comm API.
//
// `Comm` (runtime/comm.hpp) implements everything protocol-shaped — the
// reliable seq/ack/retransmit layer, fault injection, stats accounting —
// against the small primitive surface below.  Two transports provide it:
//
//  * ThreadBackend / thread transport (transport.cpp): ranks are threads
//    in one process; point-to-point messages travel through per-rank
//    bounded channels and collectives stage through shared memory guarded
//    by a sense-reversing barrier.  This is the original in-process
//    runtime, unchanged in behaviour.
//
//  * Process transport (comm_process.cpp): ranks are forked child
//    processes; messages travel as length-prefixed frames over Unix-domain
//    socket pairs (DESIGN.md §13).
//
// The collective entry points take a `sync` callback: the threaded staging
// protocol needs two barrier rounds (write slots / read slots) and the
// callback lets Comm time and count those exactly as it always has; the
// socket protocol's message exchanges self-synchronise and never invoke it.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

namespace kron {

/// One point-to-point message.
struct RankMessage {
  int source = 0;
  int tag = 0;
  std::vector<std::byte> payload;
};

/// Secondary failure: thrown by blocked ranks when the runtime is torn
/// down because *another* rank threw.  Runtime::run uses the type to
/// prefer the root-cause exception when several ranks failed.
class CommAbortError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Which substrate carries rank traffic (RuntimeOptions::backend).
enum class CommBackend {
  kThreads,  ///< ranks are threads of this process (shared-memory staging)
  kProcs,    ///< ranks are forked processes (Unix-socket frames)
};

namespace detail {

/// Primitive operations one rank performs against its runtime substrate.
/// All methods are called only by the owning rank's thread/process.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Enqueue a message for `dest` (never blocks indefinitely against a
  /// peer that is also sending: bounded-mailbox backpressure drains our
  /// own inbox meanwhile, and the socket transport queues in user space).
  virtual void push(int dest, RankMessage message) = 0;

  /// Next inbound message.  `timeout` semantics: nullopt blocks until a
  /// message arrives (throwing CommAbortError when the runtime aborted or
  /// every peer is gone with nothing queued); zero is a nonblocking probe
  /// that never throws; a positive value waits at most that long,
  /// returning nullopt on expiry and throwing CommAbortError on abort.
  [[nodiscard]] virtual std::optional<RankMessage> pop(
      std::optional<std::chrono::microseconds> timeout) = 0;

  /// Collective rendezvous of all ranks; throws CommAbortError when the
  /// runtime aborted.
  virtual void barrier() = 0;

  /// Allgather of one blob per rank, indexed by source.  Invokes `sync`
  /// for every internal barrier round the backend takes.
  [[nodiscard]] virtual std::vector<std::vector<std::byte>> allgather(
      std::vector<std::byte> mine, const std::function<void()>& sync) = 0;

  /// All-to-all personalized exchange (`outbox[d]` travels to rank d);
  /// returns the inbox indexed by source.  `sync` as in allgather.
  [[nodiscard]] virtual std::vector<std::vector<std::byte>> alltoallv(
      std::vector<std::vector<std::byte>> outbox, const std::function<void()>& sync) = 0;

  /// Deepest the rank's inbound queue ever got (messages), for CommStats.
  [[nodiscard]] virtual std::uint64_t inbox_high_water() const = 0;

  /// Sends that had to wait for space in a bounded destination mailbox
  /// (always zero for transports whose sends never block).
  [[nodiscard]] virtual std::uint64_t send_backpressure_waits() const = 0;
};

/// Shared state of one threaded Runtime::run: owns the mailboxes, the
/// central barrier, and the collective staging areas; hands out one
/// Transport per rank.
class ThreadBackend {
 public:
  ThreadBackend(int ranks, std::size_t mailbox_capacity);

  /// The transport rank `rank` communicates through (call once per rank).
  [[nodiscard]] std::shared_ptr<Transport> transport_for(int rank);

  /// Tear down: wake every blocked rank into CommAbortError and close the
  /// mailboxes (late pushes are dropped).
  void abort_all();

  struct Shared;  // defined in transport.cpp (the per-rank transport reads it)

 private:
  std::shared_ptr<Shared> shared_;
};

/// Rethrow `error` with "rank R: " prepended when the concrete type allows
/// message rewriting; unknown types propagate unmodified (never change a
/// caller-visible exception type).  Shared by both backend launchers.
[[noreturn]] void rethrow_annotated(int rank, const std::exception_ptr& error);

/// True when `error` is a (secondary) CommAbortError.
[[nodiscard]] bool is_abort_error(const std::exception_ptr& error);

}  // namespace detail
}  // namespace kron
