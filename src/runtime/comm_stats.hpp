// Per-rank communication telemetry for the in-process runtime.
//
// The paper's scaling story (and its antecedents, Sanders et al.
// arXiv:1803.09021 and Kepner et al. arXiv:1803.01281) leans on per-rank
// communication-volume accounting as the primary validation tool for a
// distributed generator.  `CommStats` is that ledger: every `Comm` records
// what its rank sent, received, waited on and staged, and exposes a
// snapshot via `Comm::stats()`.  The generator forwards the snapshots
// through `GeneratorResult::comm_per_rank`, turning every multi-rank run
// into a communication profile.
#pragma once

#include <cstdint>
#include <map>

namespace kron {

/// Message/byte volume for one direction of one message tag.
struct TagVolume {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Fault-injection and reliable-delivery counters for one rank (all zero
/// unless a FaultPlan was installed; see runtime/faults.hpp).
struct FaultStats {
  // Faults the plan injected into this rank's outgoing transmissions.
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_dups = 0;
  std::uint64_t injected_delays = 0;
  // Recovery work the reliable layer performed.
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t duplicates_discarded = 0;   ///< received dups filtered out
  std::uint64_t out_of_order_buffered = 0;  ///< arrivals held for sequencing

  [[nodiscard]] bool any() const {
    return injected_drops | injected_dups | injected_delays | retransmits | acks_sent |
           acks_received | duplicates_discarded | out_of_order_buffered;
  }
};

/// One rank's communication ledger (all counters cumulative over the
/// rank's lifetime inside a single Runtime::run).
struct CommStats {
  // Point-to-point traffic, keyed by message tag.
  std::map<int, TagVolume> sent;
  std::map<int, TagVolume> received;

  // Barrier protocol: every barrier() call, including the ones issued
  // internally by the collectives, plus the cumulative time this rank
  // spent parked waiting for the others.
  std::uint64_t barriers = 0;
  double barrier_wait_seconds = 0.0;

  // Collective payload volumes (allgather / allreduce / alltoallv):
  // bytes this rank contributed and bytes it read back.
  std::uint64_t collectives = 0;
  std::uint64_t collective_bytes_out = 0;
  std::uint64_t collective_bytes_in = 0;

  // Deepest the rank's own inbox ever got (queued messages), and how many
  // sends had to wait for space in a bounded destination mailbox.
  std::uint64_t mailbox_high_water = 0;
  std::uint64_t send_backpressure_waits = 0;

  // Injected-fault and recovery ledger (zero without a FaultPlan).
  FaultStats faults;

  [[nodiscard]] std::uint64_t messages_sent() const {
    std::uint64_t total = 0;
    for (const auto& [tag, volume] : sent) total += volume.messages;
    return total;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    std::uint64_t total = 0;
    for (const auto& [tag, volume] : sent) total += volume.bytes;
    return total;
  }
  [[nodiscard]] std::uint64_t messages_received() const {
    std::uint64_t total = 0;
    for (const auto& [tag, volume] : received) total += volume.messages;
    return total;
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    std::uint64_t total = 0;
    for (const auto& [tag, volume] : received) total += volume.bytes;
    return total;
  }
  /// All payload bytes this rank pushed into the runtime (point-to-point
  /// plus collective contributions) — the "shuffle volume" of a run.
  [[nodiscard]] std::uint64_t payload_bytes_out() const {
    return bytes_sent() + collective_bytes_out;
  }
};

}  // namespace kron
