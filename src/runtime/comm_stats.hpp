// Per-rank communication telemetry for the in-process runtime.
//
// The paper's scaling story (and its antecedents, Sanders et al.
// arXiv:1803.09021 and Kepner et al. arXiv:1803.01281) leans on per-rank
// communication-volume accounting as the primary validation tool for a
// distributed generator.  `CommStats` is that ledger: every `Comm` records
// what its rank sent, received, waited on and staged, and exposes a
// snapshot via `Comm::stats()`.  The generator forwards the snapshots
// through `GeneratorResult::comm_per_rank`, turning every multi-rank run
// into a communication profile.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <stdexcept>
#include <vector>

namespace kron {

/// Message/byte volume for one direction of one message tag.
struct TagVolume {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
};

/// Fault-injection and reliable-delivery counters for one rank (all zero
/// unless a FaultPlan was installed; see runtime/faults.hpp).
struct FaultStats {
  // Faults the plan injected into this rank's outgoing transmissions.
  std::uint64_t injected_drops = 0;
  std::uint64_t injected_dups = 0;
  std::uint64_t injected_delays = 0;
  // Recovery work the reliable layer performed.
  std::uint64_t retransmits = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t acks_received = 0;
  std::uint64_t duplicates_discarded = 0;   ///< received dups filtered out
  std::uint64_t out_of_order_buffered = 0;  ///< arrivals held for sequencing

  [[nodiscard]] bool any() const {
    return injected_drops | injected_dups | injected_delays | retransmits | acks_sent |
           acks_received | duplicates_discarded | out_of_order_buffered;
  }
};

/// One rank's communication ledger (all counters cumulative over the
/// rank's lifetime inside a single Runtime::run).
struct CommStats {
  // Point-to-point traffic, keyed by message tag.
  std::map<int, TagVolume> sent;
  std::map<int, TagVolume> received;

  // Barrier protocol: every barrier() call, including the ones issued
  // internally by the collectives, plus the cumulative time this rank
  // spent parked waiting for the others.
  std::uint64_t barriers = 0;
  double barrier_wait_seconds = 0.0;

  // Collective payload volumes (allgather / allreduce / alltoallv):
  // bytes this rank contributed and bytes it read back.
  std::uint64_t collectives = 0;
  std::uint64_t collective_bytes_out = 0;
  std::uint64_t collective_bytes_in = 0;

  // Deepest the rank's own inbox ever got (queued messages), and how many
  // sends had to wait for space in a bounded destination mailbox.
  std::uint64_t mailbox_high_water = 0;
  std::uint64_t send_backpressure_waits = 0;

  // Injected-fault and recovery ledger (zero without a FaultPlan).
  FaultStats faults;

  [[nodiscard]] std::uint64_t messages_sent() const {
    std::uint64_t total = 0;
    for (const auto& [tag, volume] : sent) total += volume.messages;
    return total;
  }
  [[nodiscard]] std::uint64_t bytes_sent() const {
    std::uint64_t total = 0;
    for (const auto& [tag, volume] : sent) total += volume.bytes;
    return total;
  }
  [[nodiscard]] std::uint64_t messages_received() const {
    std::uint64_t total = 0;
    for (const auto& [tag, volume] : received) total += volume.messages;
    return total;
  }
  [[nodiscard]] std::uint64_t bytes_received() const {
    std::uint64_t total = 0;
    for (const auto& [tag, volume] : received) total += volume.bytes;
    return total;
  }
  /// All payload bytes this rank pushed into the runtime (point-to-point
  /// plus collective contributions) — the "shuffle volume" of a run.
  [[nodiscard]] std::uint64_t payload_bytes_out() const {
    return bytes_sent() + collective_bytes_out;
  }
};

// --- flat serialization ----------------------------------------------------
//
// The process backend runs rank bodies in forked children, so their stats
// snapshots must cross a byte stream to reach the parent (the generator
// appends them to each rank's result blob).  Fixed-width little-host
// encoding; reader and writer are always the same build of this library.

namespace detail {

inline void append_stats_u64(std::vector<std::byte>& out, std::uint64_t value) {
  const auto* raw = reinterpret_cast<const std::byte*>(&value);
  out.insert(out.end(), raw, raw + sizeof(value));
}

inline std::uint64_t read_stats_u64(const std::byte*& cursor, const std::byte* end) {
  std::uint64_t value = 0;
  if (end - cursor < static_cast<std::ptrdiff_t>(sizeof(value)))
    throw std::runtime_error("CommStats: truncated serialized snapshot");
  std::memcpy(&value, cursor, sizeof(value));
  cursor += sizeof(value);
  return value;
}

inline void append_stats_tag_map(std::vector<std::byte>& out,
                                 const std::map<int, TagVolume>& volumes) {
  append_stats_u64(out, volumes.size());
  for (const auto& [tag, volume] : volumes) {
    append_stats_u64(out, static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
    append_stats_u64(out, volume.messages);
    append_stats_u64(out, volume.bytes);
  }
}

inline std::map<int, TagVolume> read_stats_tag_map(const std::byte*& cursor,
                                                   const std::byte* end) {
  std::map<int, TagVolume> volumes;
  const std::uint64_t entries = read_stats_u64(cursor, end);
  for (std::uint64_t i = 0; i < entries; ++i) {
    const auto tag = static_cast<int>(static_cast<std::int64_t>(read_stats_u64(cursor, end)));
    TagVolume& volume = volumes[tag];
    volume.messages = read_stats_u64(cursor, end);
    volume.bytes = read_stats_u64(cursor, end);
  }
  return volumes;
}

}  // namespace detail

/// Append a flat encoding of `stats` to `out` (see read_comm_stats).
inline void append_comm_stats(std::vector<std::byte>& out, const CommStats& stats) {
  detail::append_stats_tag_map(out, stats.sent);
  detail::append_stats_tag_map(out, stats.received);
  detail::append_stats_u64(out, stats.barriers);
  std::uint64_t wait_bits = 0;
  static_assert(sizeof(wait_bits) == sizeof(stats.barrier_wait_seconds));
  std::memcpy(&wait_bits, &stats.barrier_wait_seconds, sizeof(wait_bits));
  detail::append_stats_u64(out, wait_bits);
  detail::append_stats_u64(out, stats.collectives);
  detail::append_stats_u64(out, stats.collective_bytes_out);
  detail::append_stats_u64(out, stats.collective_bytes_in);
  detail::append_stats_u64(out, stats.mailbox_high_water);
  detail::append_stats_u64(out, stats.send_backpressure_waits);
  detail::append_stats_u64(out, stats.faults.injected_drops);
  detail::append_stats_u64(out, stats.faults.injected_dups);
  detail::append_stats_u64(out, stats.faults.injected_delays);
  detail::append_stats_u64(out, stats.faults.retransmits);
  detail::append_stats_u64(out, stats.faults.acks_sent);
  detail::append_stats_u64(out, stats.faults.acks_received);
  detail::append_stats_u64(out, stats.faults.duplicates_discarded);
  detail::append_stats_u64(out, stats.faults.out_of_order_buffered);
}

/// Decode one CommStats at `cursor` (advancing it); throws on truncation.
inline CommStats read_comm_stats(const std::byte*& cursor, const std::byte* end) {
  CommStats stats;
  stats.sent = detail::read_stats_tag_map(cursor, end);
  stats.received = detail::read_stats_tag_map(cursor, end);
  stats.barriers = detail::read_stats_u64(cursor, end);
  const std::uint64_t wait_bits = detail::read_stats_u64(cursor, end);
  std::memcpy(&stats.barrier_wait_seconds, &wait_bits, sizeof(wait_bits));
  stats.collectives = detail::read_stats_u64(cursor, end);
  stats.collective_bytes_out = detail::read_stats_u64(cursor, end);
  stats.collective_bytes_in = detail::read_stats_u64(cursor, end);
  stats.mailbox_high_water = detail::read_stats_u64(cursor, end);
  stats.send_backpressure_waits = detail::read_stats_u64(cursor, end);
  stats.faults.injected_drops = detail::read_stats_u64(cursor, end);
  stats.faults.injected_dups = detail::read_stats_u64(cursor, end);
  stats.faults.injected_delays = detail::read_stats_u64(cursor, end);
  stats.faults.retransmits = detail::read_stats_u64(cursor, end);
  stats.faults.acks_sent = detail::read_stats_u64(cursor, end);
  stats.faults.acks_received = detail::read_stats_u64(cursor, end);
  stats.faults.duplicates_discarded = detail::read_stats_u64(cursor, end);
  stats.faults.out_of_order_buffered = detail::read_stats_u64(cursor, end);
  return stats;
}

}  // namespace kron
