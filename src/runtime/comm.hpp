// Message-passing runtime: the distributed substrate.
//
// The paper's generator runs on MPI/HavoqGT across up to 1.57M cores.  This
// library targets environments without an MPI installation, so it provides
// an MPI-shaped runtime with two interchangeable transports (DESIGN.md §13):
// each *rank* is a thread of this process (CommBackend::kThreads, the
// default) or a forked child process talking over Unix-domain sockets
// (CommBackend::kProcs).  Ranks exchange byte payloads point-to-point, and
// the usual collectives (barrier, allreduce, gather, all-to-all) are built
// on the transport primitives.  Algorithms written against `Comm` exercise
// the same partitioning and communication structure they would under MPI —
// rank counts, per-rank memory bounds, and message volumes are all real;
// only physical parallel speedup is limited by the host's core count.
//
// Usage:
//   Runtime::run(8, [&](Comm& comm) {
//     ...             // SPMD body, comm.rank() in [0, comm.size())
//   });
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "runtime/comm_stats.hpp"
#include "runtime/faults.hpp"
#include "runtime/transport.hpp"

namespace kron {

class Comm;
struct RuntimeOptions;

namespace detail {
/// Backend-internal factory: builds the Comm a launcher hands to a rank
/// body (the constructor stays private to keep the API surface Runtime's).
Comm make_comm(int rank, int size, std::shared_ptr<Transport> transport,
               const RuntimeOptions& options);
}  // namespace detail

class Comm {
 public:
  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] int size() const noexcept { return size_; }

  // --- point-to-point ----------------------------------------------------

  /// Asynchronous send: enqueues and returns immediately on an unbounded
  /// mailbox.  When mailboxes are bounded (RuntimeOptions::mailbox_capacity)
  /// a full destination exerts backpressure: send blocks until space frees,
  /// draining this rank's own inbox meanwhile so two mutually-full ranks
  /// cannot deadlock (drained messages are returned by later recv calls in
  /// arrival order).
  void send(int dest, int tag, std::vector<std::byte> payload);

  /// Typed convenience: send a vector of trivially copyable values.
  template <typename T>
  void send_values(int dest, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(values.size_bytes());
    std::memcpy(bytes.data(), values.data(), values.size_bytes());
    send(dest, tag, std::move(bytes));
  }

  /// Blocking receive of the next message addressed to this rank.
  [[nodiscard]] RankMessage recv();

  /// Non-blocking receive; nullopt if no message is waiting.
  [[nodiscard]] std::optional<RankMessage> try_recv();

  /// Decode a typed payload.
  template <typename T>
  [[nodiscard]] static std::vector<T> decode(const RankMessage& message) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<T> values(message.payload.size() / sizeof(T));
    std::memcpy(values.data(), message.payload.data(), values.size() * sizeof(T));
    return values;
  }

  // --- collectives (must be called by every rank, in the same order) ------

  void barrier();

  [[nodiscard]] std::uint64_t allreduce_sum(std::uint64_t value);
  [[nodiscard]] std::uint64_t allreduce_max(std::uint64_t value);
  [[nodiscard]] double allreduce_sum(double value);

  /// Every rank contributes a blob; every rank receives all blobs indexed
  /// by source rank (an allgather).
  [[nodiscard]] std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> mine);

  /// Typed allgather of value vectors.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> allgather_values(std::span<const T> mine) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> bytes(mine.size_bytes());
    std::memcpy(bytes.data(), mine.data(), mine.size_bytes());
    auto blobs = allgather(std::move(bytes));
    std::vector<std::vector<T>> out(blobs.size());
    for (std::size_t r = 0; r < blobs.size(); ++r) {
      out[r].resize(blobs[r].size() / sizeof(T));
      std::memcpy(out[r].data(), blobs[r].data(), out[r].size() * sizeof(T));
    }
    return out;
  }

  /// All-to-all personalized exchange: `outbox[d]` goes to rank d; returns
  /// the inbox indexed by source rank.
  template <typename T>
  [[nodiscard]] std::vector<std::vector<T>> alltoallv(std::vector<std::vector<T>> outbox);

  // --- reliable delivery --------------------------------------------------

  /// True when this runtime injects faults and wraps point-to-point
  /// traffic in the reliable (seq/ack/retry) protocol.
  [[nodiscard]] bool reliable() const noexcept;

  /// Block until every message this rank sent has been acknowledged,
  /// releasing any injected delays and retransmitting as needed.  Called
  /// automatically when the rank body returns; protocols that must not
  /// leave the exchange with in-flight data (e.g. before a checkpoint)
  /// call it explicitly.  No-op when the runtime is not reliable.
  void reliable_flush();

  // --- telemetry ----------------------------------------------------------

  /// Snapshot of this rank's communication ledger (messages/bytes per tag,
  /// barrier waits, collective volumes, inbox high-water mark, injected
  /// faults and recovery work).
  [[nodiscard]] CommStats stats() const;

 private:
  friend class Runtime;
  friend Comm detail::make_comm(int rank, int size, std::shared_ptr<detail::Transport> transport,
                                const RuntimeOptions& options);
  Comm(int rank, int size, std::shared_ptr<detail::Transport> transport,
       const RuntimeOptions& options);

  // Untyped all-to-all used by the template above.
  [[nodiscard]] std::vector<std::vector<std::byte>> alltoallv_bytes(
      std::vector<std::vector<std::byte>> outbox);

  // Barrier with stats accounting (count + wait time).
  void timed_barrier();

  // Scalar reduction built on the transport allgather: sizeof(T) bytes per
  // rank, folded in place.
  template <typename T, typename Fold>
  [[nodiscard]] T reduce_scalar(T value, Fold fold);

  // --- reliable-delivery state (touched only by this rank's thread; used
  // only when a FaultPlan with message faults is installed) --------------

  /// One unacknowledged transmission, kept verbatim for retransmission.
  struct UnackedSend {
    int dest = 0;
    int tag = 0;
    std::uint64_t seq = 0;
    std::vector<std::byte> payload;  ///< user payload (no wire header)
    std::chrono::steady_clock::time_point deadline;
    std::chrono::nanoseconds backoff{0};
    int attempts = 1;
  };
  /// An injected-delay hold: deliver `message` once this rank has
  /// performed `release_op` further runtime operations.
  struct DelayedDelivery {
    std::uint64_t release_op = 0;
    int dest = 0;
    RankMessage message;
  };
  /// Receive-side sequencing for one sender.
  struct SourceStream {
    std::uint64_t next_seq = 0;
    std::map<std::uint64_t, RankMessage> out_of_order;
  };

  // Enqueue into `dest`'s inbound queue through the transport.
  void push_raw(int dest, RankMessage message);
  // Release due delayed deliveries and retransmit overdue unacked sends;
  // throws CommFaultError when a send exhausts its retries.
  void service_reliable();
  // Classify one raw arrival: acks and dups are consumed, in-order data
  // lands in deliverable_, out-of-order data is buffered.
  void filter_reliable(RankMessage raw);
  // Next raw message from the transport (reliable mode helper).
  [[nodiscard]] std::optional<RankMessage> pop_raw(bool block);

  std::deque<RankMessage> deliverable_;   ///< sequenced data ready for recv
  std::vector<std::uint64_t> next_seq_;   ///< per-destination send sequence
  std::vector<SourceStream> streams_;     ///< per-source receive sequencing
  std::deque<DelayedDelivery> delayed_;   ///< injected delays awaiting release
  std::list<UnackedSend> unacked_;        ///< retransmit buffer
  std::uint64_t op_count_ = 0;            ///< operations, for delay release

  CommStats stats_;

  int rank_ = 0;
  int size_ = 1;
  std::shared_ptr<detail::Transport> transport_;

  // Fault injection / reliable delivery (runtime/faults.hpp).  `reliable_`
  // is true only when the plan can actually fault a message, so plans that
  // carry nothing but crash events leave the fast p2p path untouched.
  std::shared_ptr<const FaultPlan> fault_plan_;
  bool reliable_ = false;
  std::chrono::microseconds retry_timeout_{2000};
  int max_retries_ = 16;
};

template <typename T>
std::vector<std::vector<T>> Comm::alltoallv(std::vector<std::vector<T>> outbox) {
  static_assert(std::is_trivially_copyable_v<T>);
  std::vector<std::vector<std::byte>> raw(outbox.size());
  for (std::size_t d = 0; d < outbox.size(); ++d) {
    raw[d].resize(outbox[d].size() * sizeof(T));
    std::memcpy(raw[d].data(), outbox[d].data(), raw[d].size());
  }
  auto in_raw = alltoallv_bytes(std::move(raw));
  std::vector<std::vector<T>> inbox(in_raw.size());
  for (std::size_t s = 0; s < in_raw.size(); ++s) {
    inbox[s].resize(in_raw[s].size() / sizeof(T));
    std::memcpy(inbox[s].data(), in_raw[s].data(), in_raw[s].size());
  }
  return inbox;
}

/// Launch configuration for Runtime::run.
struct RuntimeOptions {
  int ranks = 1;
  /// Transport substrate: threads of this process (default) or forked
  /// child processes over Unix-domain sockets.
  CommBackend backend = CommBackend::kThreads;
  /// Maximum queued messages per rank mailbox; 0 = unbounded.  A nonzero
  /// bound turns point-to-point sends into backpressured (blocking)
  /// operations, capping per-rank in-flight memory.  The process backend
  /// never blocks a sender (outbound frames queue in user space), so the
  /// bound is advisory there.
  std::size_t mailbox_capacity = 0;
  /// Deterministic fault schedule (runtime/faults.hpp).  Installing a plan
  /// with message faults switches point-to-point traffic to the reliable
  /// seq/ack/retransmit protocol; acknowledgements themselves travel
  /// un-faulted (both transports are lossless — faults model the network
  /// on payload transmissions).
  std::shared_ptr<const FaultPlan> fault_plan;
  /// Initial retransmission timeout for unacked sends (reliable mode);
  /// doubles per retry up to 64x.
  std::chrono::microseconds retry_timeout{2000};
  /// Retransmissions per message before the send fails with a
  /// CommFaultError naming the destination rank and tag.
  int max_retries = 16;
};

/// SPMD launcher.
class Runtime {
 public:
  /// Run `body` on `ranks` threads, each with its own Comm.  After joining
  /// all ranks, rethrows the *root-cause* exception: secondary
  /// CommAbortError failures (ranks merely woken by another rank's abort)
  /// are only rethrown when no rank failed for a real reason, and the
  /// originating rank is attached to the message.
  static void run(int ranks, const std::function<void(Comm&)>& body);

  /// Same, with explicit options (rank count, backend, mailbox capacity).
  static void run(const RuntimeOptions& options, const std::function<void(Comm&)>& body);

  /// Run a body that returns a per-rank byte blob; the launcher returns
  /// the blobs indexed by rank.  This is the only result channel that
  /// works on every backend — under CommBackend::kProcs the rank bodies
  /// execute in forked children, so writing results through captured
  /// references only mutates copy-on-write pages the parent never sees.
  [[nodiscard]] static std::vector<std::vector<std::byte>> run_gather(
      const RuntimeOptions& options, const std::function<std::vector<std::byte>(Comm&)>& body);
};

}  // namespace kron
