#include "runtime/faults.hpp"

#include <charconv>
#include <cstddef>

#include "util/hash.hpp"

namespace kron {

FaultPlan::FaultPlan(const FaultPlan& other)
    : seed_(other.seed_), rules_(other.rules_), crashes_(other.crashes_) {
  fired_.reserve(other.fired_.size());
  for (const auto& latch : other.fired_)
    fired_.push_back(std::make_unique<std::atomic<bool>>(latch->load()));
}

FaultPlan& FaultPlan::operator=(const FaultPlan& other) {
  if (this == &other) return *this;
  FaultPlan copy(other);
  *this = std::move(copy);
  return *this;
}

FaultPlan& FaultPlan::with_crash(int rank, std::uint64_t chunk) {
  crashes_.push_back(CrashEvent{rank, chunk});
  fired_.push_back(std::make_unique<std::atomic<bool>>(false));
  return *this;
}

bool FaultPlan::has_message_faults() const noexcept {
  for (const FaultRule& rule : rules_)
    if (rule.drop > 0.0 || rule.dup > 0.0 || rule.delay > 0.0) return true;
  return false;
}

namespace {

/// Deterministic unit draw for one (seed, message, fate) coordinate.
double fault_draw(std::uint64_t seed, int source, int dest, int tag, std::uint64_t seq,
                  std::uint64_t fate_salt) noexcept {
  std::uint64_t h = mix64(seed ^ fate_salt);
  h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(source)));
  h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(dest)));
  h = hash_combine(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(tag)));
  h = hash_combine(h, seq);
  return to_unit(h);
}

constexpr std::uint64_t kDropSalt = 0x64726f70ULL;    // "drop"
constexpr std::uint64_t kDupSalt = 0x647570ULL;       // "dup"
constexpr std::uint64_t kDelaySalt = 0x64656c6179ULL; // "delay"

}  // namespace

FaultDecision FaultPlan::decide(int source, int dest, int tag,
                                std::uint64_t seq) const noexcept {
  FaultDecision decision;
  for (const FaultRule& rule : rules_) {
    if (rule.source != -1 && rule.source != source) continue;
    if (rule.tag != -1 && rule.tag != tag) continue;
    if (rule.drop > 0.0 && fault_draw(seed_, source, dest, tag, seq, kDropSalt) < rule.drop)
      decision.drop = true;
    if (rule.dup > 0.0 && fault_draw(seed_, source, dest, tag, seq, kDupSalt) < rule.dup)
      decision.duplicate = true;
    if (rule.delay > 0.0) {
      const double draw = fault_draw(seed_, source, dest, tag, seq, kDelaySalt);
      if (draw < rule.delay) {
        // Defer by 1..8 sender operations, deterministically from the draw.
        decision.delay_ops = 1 + static_cast<std::uint32_t>(draw / rule.delay * 8.0) % 8;
      }
    }
  }
  if (decision.drop) decision.delay_ops = 0;  // a dropped transmit cannot also be delayed
  return decision;
}

bool FaultPlan::consume_crash(int rank, std::uint64_t chunk) const {
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    if (crashes_[i].rank != rank || crashes_[i].chunk != chunk) continue;
    bool expected = false;
    if (fired_[i]->compare_exchange_strong(expected, true)) return true;
  }
  return false;
}

std::optional<std::uint64_t> FaultPlan::next_crash_chunk(int rank) const {
  std::optional<std::uint64_t> next;
  for (std::size_t i = 0; i < crashes_.size(); ++i) {
    if (crashes_[i].rank != rank || fired_[i]->load()) continue;
    if (!next || crashes_[i].chunk < *next) next = crashes_[i].chunk;
  }
  return next;
}

namespace {

[[noreturn]] void bad_term(const std::string& term, const std::string& why) {
  throw std::invalid_argument("FaultPlan::parse: bad term '" + term + "' (" + why + ")");
}

/// Strict full-token numeric parse of spec fragments (no stoull: "-1" must
/// not wrap and "3x" must not pass).
std::uint64_t parse_u64_term(const std::string& term, std::string_view text,
                             const char* what) {
  std::uint64_t value = 0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [next, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || next != end || text.empty())
    bad_term(term, std::string(what) + " expects a nonnegative integer, got '" +
                       std::string(text) + "'");
  return value;
}

double parse_prob_term(const std::string& term, std::string_view text) {
  double value = 0.0;
  const char* begin = text.data();
  const char* end = text.data() + text.size();
  const auto [next, ec] = std::from_chars(begin, end, value);
  if (ec != std::errc() || next != end || text.empty())
    bad_term(term, "expects a probability, got '" + std::string(text) + "'");
  if (value < 0.0 || value > 1.0)
    bad_term(term, "probability must be in [0,1]");
  return value;
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string term = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (term.empty()) continue;
    const std::size_t colon = term.find(':');
    if (colon == std::string::npos) bad_term(term, "expected kind:value");
    const std::string kind = term.substr(0, colon);
    std::string value = term.substr(colon + 1);

    if (kind == "seed") {
      plan.with_seed(parse_u64_term(term, value, "seed"));
      continue;
    }
    if (kind == "crash") {
      const std::size_t at = value.find('@');
      if (at == std::string::npos) bad_term(term, "expected crash:R@C");
      const auto rank = parse_u64_term(term, std::string_view(value).substr(0, at), "rank");
      const auto chunk =
          parse_u64_term(term, std::string_view(value).substr(at + 1), "chunk");
      plan.with_crash(static_cast<int>(rank), chunk);
      continue;
    }
    if (kind != "drop" && kind != "dup" && kind != "delay")
      bad_term(term, "unknown fault kind '" + kind + "'");

    // Optional scope suffix: "@rR" (source rank) or "@tT" (tag).
    FaultRule rule;
    const std::size_t at = value.find('@');
    if (at != std::string::npos) {
      const std::string scope = value.substr(at + 1);
      value = value.substr(0, at);
      if (scope.size() < 2 || (scope[0] != 'r' && scope[0] != 't'))
        bad_term(term, "scope must be @rR (source rank) or @tT (tag)");
      const auto scoped = parse_u64_term(term, std::string_view(scope).substr(1), "scope");
      if (scope[0] == 'r')
        rule.source = static_cast<int>(scoped);
      else
        rule.tag = static_cast<int>(scoped);
    }
    const double probability = parse_prob_term(term, value);
    if (kind == "drop")
      rule.drop = probability;
    else if (kind == "dup")
      rule.dup = probability;
    else
      rule.delay = probability;
    plan.with_rule(rule);
  }
  return plan;
}

}  // namespace kron
