// Deterministic fault injection for the in-process runtime.
//
// The paper's generator ran on up to 1.57M cores — a regime where dropped
// messages, duplicated deliveries, and rank failures are routine operating
// conditions, not exceptional ones.  This header provides the *fault model*
// the runtime is validated under:
//
//  * A `FaultPlan` is a seedable, immutable schedule of message faults
//    (drop / duplicate / delay, scoped per source rank and per tag) and
//    rank-crash events (rank r aborts at production-chunk boundary c).
//    Every per-message decision is a pure hash of
//    (seed, source, dest, tag, sequence), so a plan injects *exactly the
//    same* faults on every run regardless of thread scheduling — chaos
//    tests are reproducible bit for bit.
//  * Installing a plan via `RuntimeOptions::fault_plan` switches `Comm`
//    point-to-point traffic to a reliable-delivery wrapper (sequence
//    numbers, acks, bounded retransmission with exponential backoff) that
//    recovers from the injected drops and duplicates transparently; see
//    runtime/comm.hpp.  When retries exhaust, the send fails with a
//    structured `CommFaultError` naming the offending rank and tag.
//  * Crash events are consumed by the generator at chunk boundaries
//    (core/generator.cpp) and fire **at most once per plan instance**, so
//    a driver that catches the resulting `RankCrashError` and re-runs with
//    `--resume` models a restarted rank recovering from checkpoints.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace kron {

/// Structured failure raised when the reliable-delivery layer gives up on
/// a message: retries exhausted against a destination that never acked.
class CommFaultError : public std::runtime_error {
 public:
  CommFaultError(std::string what, int source, int dest, int tag)
      : std::runtime_error(std::move(what)), source_(source), dest_(dest), tag_(tag) {}

  [[nodiscard]] int source() const noexcept { return source_; }
  [[nodiscard]] int dest() const noexcept { return dest_; }
  [[nodiscard]] int tag() const noexcept { return tag_; }

 private:
  int source_ = -1;
  int dest_ = -1;
  int tag_ = -1;
};

/// Injected rank failure: thrown by the generator when a FaultPlan crash
/// event fires at a production-chunk boundary.  Catch it, then re-run with
/// GeneratorConfig::resume to recover from the last checkpoint.
class RankCrashError : public std::runtime_error {
 public:
  RankCrashError(std::string what, int rank, std::uint64_t chunk)
      : std::runtime_error(std::move(what)), rank_(rank), chunk_(chunk) {}

  [[nodiscard]] int rank() const noexcept { return rank_; }
  [[nodiscard]] std::uint64_t chunk() const noexcept { return chunk_; }

 private:
  int rank_ = -1;
  std::uint64_t chunk_ = 0;
};

/// One message-fault rule.  A rule matches a message when both scopes
/// accept it (`source == -1` matches every source rank, `tag == -1` every
/// tag); every matching rule in FaultPlan::rules contributes its fates
/// independently (so "drop:P,dup:Q" can both fire on one message).
struct FaultRule {
  double drop = 0.0;   ///< P(message is not delivered on first transmit)
  double dup = 0.0;    ///< P(message is delivered twice)
  double delay = 0.0;  ///< P(first delivery is deferred by a few operations)
  int source = -1;     ///< restrict to one sending rank (-1 = any)
  int tag = -1;        ///< restrict to one message tag (-1 = any)
};

/// One injected rank failure: `rank` throws RankCrashError when it reaches
/// production chunk `chunk`.  Fires at most once per plan instance.
struct CrashEvent {
  int rank = 0;
  std::uint64_t chunk = 0;
};

/// What the plan decided for one (source, dest, tag, seq) message.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  /// Nonzero: hold the first delivery until the sender has performed this
  /// many further runtime operations (a deterministic reordering delay).
  std::uint32_t delay_ops = 0;
};

/// A deterministic, seedable fault schedule.  Immutable after construction
/// apart from the one-shot crash arming; safe to share across ranks.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

  // Copies carry the crash latch *states* (an already-fired crash stays
  // fired in the copy), so passing a plan by value cannot re-arm it.
  FaultPlan(const FaultPlan& other);
  FaultPlan& operator=(const FaultPlan& other);
  FaultPlan(FaultPlan&&) noexcept = default;
  FaultPlan& operator=(FaultPlan&&) noexcept = default;
  ~FaultPlan() = default;

  /// Parse a comma-separated spec, e.g.
  ///   "drop:0.01,dup:0.005,delay:0.02,crash:1@3,seed:42"
  /// Terms:
  ///   drop:P | dup:P | delay:P   message-fault probabilities in [0,1],
  ///                              optionally scoped "drop:P@rR" (source
  ///                              rank R) or "drop:P@tT" (tag T)
  ///   crash:R@C                  rank R crashes at production chunk C
  ///   seed:S                     decision seed (default 0)
  /// Each probability term opens a new rule; scopes attach to the term
  /// they follow.  Throws std::invalid_argument with the offending term.
  [[nodiscard]] static FaultPlan parse(const std::string& spec);

  /// Fluent construction for tests / programmatic plans.
  FaultPlan& with_rule(const FaultRule& rule) {
    rules_.push_back(rule);
    return *this;
  }
  FaultPlan& with_crash(int rank, std::uint64_t chunk);
  FaultPlan& with_seed(std::uint64_t seed) {
    seed_ = seed;
    return *this;
  }

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] const std::vector<FaultRule>& rules() const noexcept { return rules_; }
  [[nodiscard]] const std::vector<CrashEvent>& crashes() const noexcept { return crashes_; }

  /// True when any rule can fault a message (drives the reliable layer).
  [[nodiscard]] bool has_message_faults() const noexcept;

  /// Deterministic fate of message (source → dest, tag, seq): a pure
  /// function of the plan seed and the coordinates.
  [[nodiscard]] FaultDecision decide(int source, int dest, int tag,
                                     std::uint64_t seq) const noexcept;

  /// One-shot crash trigger: true exactly once for the first call that
  /// matches an armed (rank, chunk) event; later calls (e.g. after a
  /// resume re-runs the same plan) see the event as already fired.
  [[nodiscard]] bool consume_crash(int rank, std::uint64_t chunk) const;

  /// Next armed (not yet fired) crash chunk for `rank`, if any.
  [[nodiscard]] std::optional<std::uint64_t> next_crash_chunk(int rank) const;

 private:
  std::uint64_t seed_ = 0;
  std::vector<FaultRule> rules_;
  std::vector<CrashEvent> crashes_;
  // fired_[i] belongs to crashes_[i]; mutable one-shot latches so a shared
  // const plan can fire each crash exactly once across generation attempts.
  mutable std::vector<std::unique_ptr<std::atomic<bool>>> fired_;
};

}  // namespace kron
