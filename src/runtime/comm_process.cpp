#include "runtime/comm_process.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

#include "runtime/faults.hpp"
#include "runtime/transport.hpp"
#include "util/posix_io.hpp"
#include "util/trace.hpp"

namespace kron::detail {
namespace {

// --- wire format (DESIGN.md §13) -----------------------------------------
//
// Every socket carries a stream of length-prefixed frames.  The sender of
// a frame is implicit — each peer pair has a dedicated socket — so the
// header carries only the kind, the user tag (kData only), and the payload
// length.

enum class FrameKind : std::uint32_t {
  kData = 1,        ///< point-to-point RankMessage payload
  kBarrier = 2,     ///< barrier arrival (rank -> coordinator)
  kRelease = 3,     ///< barrier release (coordinator -> rank)
  kSlot = 4,        ///< allgather contribution (rank -> coordinator)
  kSlotResult = 5,  ///< allgather broadcast (coordinator -> rank)
  kA2a = 6,         ///< one alltoallv bucket (source -> destination)
  kGoodbye = 7,     ///< clean shutdown marker; EOF without it is an abort
};
constexpr std::uint32_t kMinCtrlKind = static_cast<std::uint32_t>(FrameKind::kBarrier);
constexpr std::uint32_t kMaxCtrlKind = static_cast<std::uint32_t>(FrameKind::kA2a);
constexpr std::size_t kNumCtrlKinds = kMaxCtrlKind - kMinCtrlKind + 1;

struct FrameHeader {
  std::uint32_t kind = 0;
  std::int32_t tag = 0;
  std::uint64_t length = 0;  ///< payload bytes following the header
};
static_assert(sizeof(FrameHeader) == 16);

/// Upper bound on a single frame payload — far above any real message,
/// low enough to catch a corrupted length before it drives an allocation.
constexpr std::uint64_t kMaxFrameBytes = std::uint64_t{1} << 42;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// One rank's end of the socket mesh: nonblocking fds, per-peer inbound
/// parse buffers and outbound frame queues, demultiplexed control queues.
/// Sends never block (frames queue in user space and drain on every pump),
/// so two mutually-streaming ranks cannot deadlock — the exact property
/// the threaded backend gets from backpressure-with-inbox-draining.
class ProcessTransport final : public Transport {
 public:
  ProcessTransport(int rank, int size, const std::vector<int>& peer_fds)
      : rank_(rank), size_(size), peers_(static_cast<std::size_t>(size)) {
    for (int p = 0; p < size; ++p) {
      peers_[static_cast<std::size_t>(p)].fd = peer_fds[static_cast<std::size_t>(p)];
      if (p != rank && peers_[static_cast<std::size_t>(p)].fd >= 0)
        set_nonblocking(peers_[static_cast<std::size_t>(p)].fd);
    }
  }

  ~ProcessTransport() override {
    for (Peer& peer : peers_) {
      posix_io::close_fd(peer.fd);
      peer.fd = -1;
    }
  }

  ProcessTransport(const ProcessTransport&) = delete;
  ProcessTransport& operator=(const ProcessTransport&) = delete;

  void push(int dest, RankMessage message) override {
    if (dest == rank_) {
      enqueue_data(std::move(message));
      return;
    }
    send_frame(dest, FrameKind::kData, message.tag, message.payload.data(),
               message.payload.size());
    // Opportunistic nonblocking pump: drain inbound frames and retry
    // stalled outbound queues so a send-heavy phase cannot fill the kernel
    // buffers on either side.
    pump(0);
  }

  std::optional<RankMessage> pop(std::optional<std::chrono::microseconds> timeout) override {
    if (!data_.empty()) return take_data();
    if (timeout && timeout->count() == 0) {
      pump(0);
      if (!data_.empty()) return take_data();
      return std::nullopt;
    }
    std::optional<std::chrono::steady_clock::time_point> deadline;
    if (timeout) deadline = std::chrono::steady_clock::now() + *timeout;
    while (data_.empty()) {
      if (dirty_abort_)
        throw CommAbortError("Comm::recv: mailbox closed (runtime aborted)");
      if (!deadline && all_peers_gone())
        throw CommAbortError("Comm::recv: every peer rank exited with no message queued");
      int wait_ms = 50;
      if (deadline) {
        const auto remaining = *deadline - std::chrono::steady_clock::now();
        if (remaining <= std::chrono::steady_clock::duration::zero()) return std::nullopt;
        const auto ms =
            std::chrono::duration_cast<std::chrono::milliseconds>(remaining).count();
        wait_ms = static_cast<int>(std::clamp<long long>(ms, 1, 50));
      }
      pump(wait_ms);
    }
    return take_data();
  }

  void barrier() override {
    if (size_ == 1) return;
    // Coordinator barrier: everyone reports to rank 0, rank 0 releases.
    // Per-socket FIFO plus per-(kind, source) queues make back-to-back
    // barriers safe without a generation counter.
    if (rank_ == 0) {
      for (int r = 1; r < size_; ++r) (void)wait_ctrl(FrameKind::kBarrier, r);
      for (int r = 1; r < size_; ++r) send_frame(r, FrameKind::kRelease, 0, nullptr, 0);
    } else {
      send_frame(0, FrameKind::kBarrier, 0, nullptr, 0);
      (void)wait_ctrl(FrameKind::kRelease, 0);
    }
  }

  std::vector<std::vector<std::byte>> allgather(std::vector<std::byte> mine,
                                                const std::function<void()>&) override {
    // Gather to rank 0, then broadcast the packed result: [u64 len][bytes]
    // per rank, in rank order.  The exchange self-synchronises; the sync
    // callback (threaded staging barriers) is never needed.
    std::vector<std::vector<std::byte>> all(static_cast<std::size_t>(size_));
    if (size_ == 1) {
      all[0] = std::move(mine);
      return all;
    }
    if (rank_ == 0) {
      all[0] = std::move(mine);
      for (int r = 1; r < size_; ++r)
        all[static_cast<std::size_t>(r)] = wait_ctrl(FrameKind::kSlot, r);
      std::size_t total = 0;
      for (const auto& blob : all) total += sizeof(std::uint64_t) + blob.size();
      std::vector<std::byte> packed;
      packed.reserve(total);
      for (const auto& blob : all) {
        const std::uint64_t length = blob.size();
        const auto* raw = reinterpret_cast<const std::byte*>(&length);
        packed.insert(packed.end(), raw, raw + sizeof(length));
        packed.insert(packed.end(), blob.begin(), blob.end());
      }
      for (int r = 1; r < size_; ++r)
        send_frame(r, FrameKind::kSlotResult, 0, packed.data(), packed.size());
      return all;
    }
    send_frame(0, FrameKind::kSlot, 0, mine.data(), mine.size());
    const std::vector<std::byte> packed = wait_ctrl(FrameKind::kSlotResult, 0);
    std::size_t offset = 0;
    for (int r = 0; r < size_; ++r) {
      std::uint64_t length = 0;
      if (packed.size() - offset < sizeof(length))
        throw std::runtime_error("Comm::allgather: truncated broadcast frame");
      std::memcpy(&length, packed.data() + offset, sizeof(length));
      offset += sizeof(length);
      if (packed.size() - offset < length)
        throw std::runtime_error("Comm::allgather: truncated broadcast frame");
      all[static_cast<std::size_t>(r)].assign(
          packed.begin() + static_cast<std::ptrdiff_t>(offset),
          packed.begin() + static_cast<std::ptrdiff_t>(offset + length));
      offset += length;
    }
    return all;
  }

  std::vector<std::vector<std::byte>> alltoallv(std::vector<std::vector<std::byte>> outbox,
                                                const std::function<void()>&) override {
    // Direct exchange: one kA2a frame per destination, one awaited per
    // source.  FIFO per (kind, source) keeps consecutive alltoallvs from
    // interleaving.
    std::vector<std::vector<std::byte>> inbox(static_cast<std::size_t>(size_));
    for (int d = 0; d < size_; ++d) {
      if (d == rank_) continue;
      auto& bucket = outbox[static_cast<std::size_t>(d)];
      send_frame(d, FrameKind::kA2a, 0, bucket.data(), bucket.size());
      bucket = {};
    }
    inbox[static_cast<std::size_t>(rank_)] = std::move(outbox[static_cast<std::size_t>(rank_)]);
    for (int s = 0; s < size_; ++s) {
      if (s == rank_) continue;
      inbox[static_cast<std::size_t>(s)] = wait_ctrl(FrameKind::kA2a, s);
    }
    return inbox;
  }

  std::uint64_t inbox_high_water() const override { return data_high_water_; }

  std::uint64_t send_backpressure_waits() const override { return 0; }

  /// Clean shutdown after the rank body returned: tell every peer goodbye
  /// (so our EOF is not mistaken for a crash) and drain the outbound
  /// queues, bounded so a wedged peer cannot block a clean exit forever.
  void finish() {
    for (int p = 0; p < size_; ++p) {
      if (p == rank_) continue;
      send_frame(p, FrameKind::kGoodbye, 0, nullptr, 0);
    }
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (std::chrono::steady_clock::now() < deadline) {
      bool pending = false;
      for (const Peer& peer : peers_)
        if (peer.fd >= 0 && !peer.write_dead && !peer.out.empty()) pending = true;
      if (!pending) return;
      pump(20);
    }
  }

 private:
  struct Peer {
    int fd = -1;            ///< -1 for self
    bool read_eof = false;  ///< read side closed (EOF or hard error)
    bool goodbye = false;   ///< clean Goodbye frame observed before EOF
    bool write_dead = false;  ///< write side failed (peer gone); sends drop

    std::vector<std::byte> in;  ///< unparsed inbound bytes
    std::size_t in_off = 0;

    std::deque<std::vector<std::byte>> out;  ///< framed outbound buffers
    std::size_t out_off = 0;                 ///< progress into out.front()

    /// Control frames by kind, FIFO per source.
    std::array<std::deque<std::vector<std::byte>>, kNumCtrlKinds> ctrl;

    [[nodiscard]] bool gone() const { return fd < 0 || read_eof; }
  };

  void enqueue_data(RankMessage message) {
    data_.push_back(std::move(message));
    data_high_water_ = std::max<std::uint64_t>(data_high_water_, data_.size());
  }

  RankMessage take_data() {
    RankMessage message = std::move(data_.front());
    data_.pop_front();
    return message;
  }

  [[nodiscard]] bool all_peers_gone() const {
    for (int p = 0; p < size_; ++p)
      if (p != rank_ && !peers_[static_cast<std::size_t>(p)].gone()) return false;
    return true;
  }

  std::deque<std::vector<std::byte>>& ctrl_queue(FrameKind kind, int source) {
    return peers_[static_cast<std::size_t>(source)]
        .ctrl[static_cast<std::uint32_t>(kind) - kMinCtrlKind];
  }

  void send_frame(int dest, FrameKind kind, int tag, const void* data, std::size_t length) {
    Peer& peer = peers_[static_cast<std::size_t>(dest)];
    // A gone peer behaves like a closed mailbox: the frame is dropped
    // silently (reliable-mode senders recover via retransmit timeouts).
    if (peer.fd < 0 || peer.write_dead) return;
    FrameHeader header;
    header.kind = static_cast<std::uint32_t>(kind);
    header.tag = tag;
    header.length = length;
    std::vector<std::byte> buffer(sizeof(header) + length);
    std::memcpy(buffer.data(), &header, sizeof(header));
    if (length != 0) std::memcpy(buffer.data() + sizeof(header), data, length);
    peer.out.push_back(std::move(buffer));
    flush_peer(peer);
  }

  void flush_peer(Peer& peer) {
    while (!peer.out.empty()) {
      const auto& front = peer.out.front();
      const long n = posix_io::write_some(peer.fd, front.data() + peer.out_off,
                                          front.size() - peer.out_off);
      if (n < 0) {  // EPIPE/ECONNRESET: peer is gone, drop queued output
        peer.write_dead = true;
        peer.out.clear();
        peer.out_off = 0;
        return;
      }
      if (n == 0) return;  // would block; the next pump retries
      peer.out_off += static_cast<std::size_t>(n);
      if (peer.out_off == front.size()) {
        peer.out.pop_front();
        peer.out_off = 0;
      }
    }
  }

  void read_peer(Peer& peer, int source) {
    std::byte buffer[65536];
    while (!peer.read_eof) {
      bool eof = false;
      const long n = posix_io::read_some(peer.fd, buffer, sizeof(buffer), eof);
      if (n > 0) {
        peer.in.insert(peer.in.end(), buffer, buffer + n);
        continue;
      }
      if (eof || n < 0) peer.read_eof = true;
      break;  // would-block, EOF, or hard error
    }
    parse_frames(peer, source);
    // EOF without a Goodbye frame means the peer died mid-run: abort,
    // exactly as the threaded backend's closed mailboxes do.  Checked only
    // after parsing — a Goodbye often arrives in the same read batch as
    // the EOF itself.
    if (peer.read_eof && !peer.goodbye) dirty_abort_ = true;
  }

  void parse_frames(Peer& peer, int source) {
    while (peer.in.size() - peer.in_off >= sizeof(FrameHeader)) {
      FrameHeader header;
      std::memcpy(&header, peer.in.data() + peer.in_off, sizeof(header));
      if (header.length > kMaxFrameBytes)
        throw std::runtime_error("Comm: corrupt frame length from rank " +
                                 std::to_string(source));
      if (peer.in.size() - peer.in_off - sizeof(header) < header.length) break;
      const std::byte* payload = peer.in.data() + peer.in_off + sizeof(header);
      dispatch(source, header, payload);
      peer.in_off += sizeof(header) + header.length;
    }
    if (peer.in_off == peer.in.size()) {
      peer.in.clear();
      peer.in_off = 0;
    } else if (peer.in_off > (std::size_t{1} << 20)) {
      peer.in.erase(peer.in.begin(), peer.in.begin() + static_cast<std::ptrdiff_t>(peer.in_off));
      peer.in_off = 0;
    }
  }

  void dispatch(int source, const FrameHeader& header, const std::byte* payload) {
    const auto kind = static_cast<FrameKind>(header.kind);
    if (kind == FrameKind::kData) {
      enqueue_data(RankMessage{source, header.tag,
                               std::vector<std::byte>(payload, payload + header.length)});
    } else if (kind == FrameKind::kGoodbye) {
      peers_[static_cast<std::size_t>(source)].goodbye = true;
    } else if (header.kind >= kMinCtrlKind && header.kind <= kMaxCtrlKind) {
      ctrl_queue(kind, source)
          .emplace_back(payload, payload + header.length);
    } else {
      throw std::runtime_error("Comm: corrupt frame kind " + std::to_string(header.kind) +
                               " from rank " + std::to_string(source));
    }
  }

  /// Wait for the next `kind` control frame from `source`.
  std::vector<std::byte> wait_ctrl(FrameKind kind, int source) {
    auto& queue = ctrl_queue(kind, source);
    while (queue.empty()) {
      if (dirty_abort_) throw CommAbortError("Comm: runtime aborted by another rank");
      if (peers_[static_cast<std::size_t>(source)].gone())
        throw CommAbortError("Comm: rank " + std::to_string(source) +
                             " exited during a collective");
      pump(50);
    }
    std::vector<std::byte> payload = std::move(queue.front());
    queue.pop_front();
    return payload;
  }

  /// One poll() round: flush writable outbound queues, read+parse readable
  /// peers.  `timeout_ms` 0 = nonblocking probe.
  void pump(int timeout_ms) {
    std::array<::pollfd, 64> small_fds;
    std::vector<::pollfd> big_fds;
    ::pollfd* fds = small_fds.data();
    if (static_cast<std::size_t>(size_) > small_fds.size()) {
      big_fds.resize(static_cast<std::size_t>(size_));
      fds = big_fds.data();
    }
    std::array<int, 64> small_owners;
    std::vector<int> big_owners;
    int* owners = small_owners.data();
    if (static_cast<std::size_t>(size_) > small_owners.size()) {
      big_owners.resize(static_cast<std::size_t>(size_));
      owners = big_owners.data();
    }
    ::nfds_t count = 0;
    for (int p = 0; p < size_; ++p) {
      Peer& peer = peers_[static_cast<std::size_t>(p)];
      if (peer.fd < 0) continue;
      short events = 0;
      if (!peer.read_eof) events |= POLLIN;
      if (!peer.out.empty() && !peer.write_dead) events |= POLLOUT;
      if (events == 0) continue;
      fds[count] = {peer.fd, events, 0};
      owners[count] = p;
      ++count;
    }
    if (count == 0) {
      // Nothing pollable (every peer gone): sleep the slice so bounded
      // retry loops (reliable-mode recv) don't spin hot.
      if (timeout_ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(std::min(timeout_ms, 10)));
      return;
    }
    int ready = 0;
    do {
      ready = ::poll(fds, count, timeout_ms);
    } while (ready < 0 && errno == EINTR);
    if (ready <= 0) return;
    for (::nfds_t i = 0; i < count; ++i) {
      if (fds[i].revents == 0) continue;
      Peer& peer = peers_[static_cast<std::size_t>(owners[i])];
      if ((fds[i].revents & POLLOUT) != 0) flush_peer(peer);
      if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) read_peer(peer, owners[i]);
    }
  }

  const int rank_;
  const int size_;
  std::vector<Peer> peers_;

  std::deque<RankMessage> data_;  ///< demultiplexed point-to-point arrivals
  std::uint64_t data_high_water_ = 0;
  bool dirty_abort_ = false;  ///< a peer died without saying goodbye
};

// --- child lifecycle ------------------------------------------------------

/// What a child tells the parent on its status socket, after the body has
/// returned (or thrown): a fixed header, the exception message, then the
/// result blob.  A missing/truncated report means the child died hard.
enum class ChildStatus : std::uint32_t {
  kOk = 1,
  kAbort,       // CommAbortError (secondary failure)
  kCommFault,   // CommFaultError(fields: source, dest, tag)
  kRankCrash,   // RankCrashError(fields: rank, chunk)
  kOverflow,    // std::overflow_error (propagates un-annotated, like threads)
  kInvalidArg,  // std::invalid_argument
  kOutOfRange,  // std::out_of_range
  kLogic,       // std::logic_error
  kRuntime,     // std::runtime_error
  kOther,       // anything else; reconstructed as std::runtime_error
};

struct ReportHeader {
  std::uint32_t magic = 0x4b52534fu;  // "KRSO": kron status object
  std::uint32_t status = 0;
  std::int64_t field0 = 0;
  std::int64_t field1 = 0;
  std::int64_t field2 = 0;
  std::uint64_t what_bytes = 0;
  std::uint64_t blob_bytes = 0;
};
static_assert(sizeof(ReportHeader) == 48);

struct ChildReport {
  bool present = false;
  ChildStatus status = ChildStatus::kOk;
  std::string what;
  std::int64_t field0 = 0;
  std::int64_t field1 = 0;
  std::int64_t field2 = 0;
  std::vector<std::byte> blob;
};

[[noreturn]] void run_child_rank(int rank, const RuntimeOptions& options,
                                 const std::function<std::vector<std::byte>(Comm&)>& body,
                                 const std::vector<int>& peer_fds, int status_fd) {
  ChildStatus status = ChildStatus::kOk;
  std::string what;
  std::int64_t field0 = 0, field1 = 0, field2 = 0;
  std::vector<std::byte> blob;
  try {
    auto transport = std::make_shared<ProcessTransport>(rank, options.ranks, peer_fds);
    Comm comm = make_comm(rank, options.ranks, transport, options);
    trace::set_rank(rank);
    {
      TRACE_SPAN("runtime.rank");
      blob = body(comm);
      // A rank must not exit while messages it sent are unacked — its
      // retransmission timers die with it.  No-op without a fault plan.
      comm.reliable_flush();
    }
    transport->finish();
  } catch (const CommAbortError& e) {
    status = ChildStatus::kAbort;
    what = e.what();
  } catch (const CommFaultError& e) {
    status = ChildStatus::kCommFault;
    what = e.what();
    field0 = e.source();
    field1 = e.dest();
    field2 = e.tag();
  } catch (const RankCrashError& e) {
    status = ChildStatus::kRankCrash;
    what = e.what();
    field0 = e.rank();
    field1 = static_cast<std::int64_t>(e.chunk());
  } catch (const std::out_of_range& e) {
    status = ChildStatus::kOutOfRange;
    what = e.what();
  } catch (const std::invalid_argument& e) {
    status = ChildStatus::kInvalidArg;
    what = e.what();
  } catch (const std::overflow_error& e) {
    status = ChildStatus::kOverflow;
    what = e.what();
  } catch (const std::runtime_error& e) {
    status = ChildStatus::kRuntime;
    what = e.what();
  } catch (const std::logic_error& e) {
    status = ChildStatus::kLogic;
    what = e.what();
  } catch (const std::exception& e) {
    status = ChildStatus::kOther;
    what = e.what();
  } catch (...) {
    status = ChildStatus::kOther;
    what = "unknown exception";
  }
  if (status != ChildStatus::kOk) blob.clear();
  try {
    ReportHeader header;
    header.status = static_cast<std::uint32_t>(status);
    header.field0 = field0;
    header.field1 = field1;
    header.field2 = field2;
    header.what_bytes = what.size();
    header.blob_bytes = blob.size();
    posix_io::write_full(status_fd, &header, sizeof(header), "Comm: child status report");
    posix_io::write_full(status_fd, what.data(), what.size(), "Comm: child status report");
    posix_io::write_full(status_fd, blob.data(), blob.size(), "Comm: child status report");
  } catch (...) {
    // Parent synthesizes an error from the missing report.
  }
  // _exit, not exit: the child must not run the parent's atexit handlers
  // or flush inherited stdio buffers a second time.
  ::_exit(status == ChildStatus::kOk ? 0 : 1);
}

ChildReport read_report(int fd) {
  ChildReport report;
  ReportHeader header;
  if (posix_io::read_full(fd, &header, sizeof(header), "Comm: child status report") !=
      sizeof(header))
    return report;  // child died before reporting
  if (header.magic != ReportHeader{}.magic) return report;
  if (header.what_bytes > (std::uint64_t{1} << 20) || header.blob_bytes > kMaxFrameBytes)
    return report;
  report.what.resize(header.what_bytes);
  if (posix_io::read_full(fd, report.what.data(), report.what.size(),
                          "Comm: child status report") != report.what.size())
    return report;
  report.blob.resize(header.blob_bytes);
  if (posix_io::read_full(fd, report.blob.data(), report.blob.size(),
                          "Comm: child status report") != report.blob.size())
    return report;
  if (header.status < static_cast<std::uint32_t>(ChildStatus::kOk) ||
      header.status > static_cast<std::uint32_t>(ChildStatus::kOther))
    return report;
  report.status = static_cast<ChildStatus>(header.status);
  report.field0 = header.field0;
  report.field1 = header.field1;
  report.field2 = header.field2;
  report.present = true;
  return report;
}

std::exception_ptr reconstruct_error(const ChildReport& report) {
  switch (report.status) {
    case ChildStatus::kAbort:
      return std::make_exception_ptr(CommAbortError(report.what));
    case ChildStatus::kCommFault:
      return std::make_exception_ptr(CommFaultError(report.what,
                                                    static_cast<int>(report.field0),
                                                    static_cast<int>(report.field1),
                                                    static_cast<int>(report.field2)));
    case ChildStatus::kRankCrash:
      return std::make_exception_ptr(
          RankCrashError(report.what, static_cast<int>(report.field0),
                         static_cast<std::uint64_t>(report.field1)));
    case ChildStatus::kOverflow:
      return std::make_exception_ptr(std::overflow_error(report.what));
    case ChildStatus::kInvalidArg:
      return std::make_exception_ptr(std::invalid_argument(report.what));
    case ChildStatus::kOutOfRange:
      return std::make_exception_ptr(std::out_of_range(report.what));
    case ChildStatus::kLogic:
      return std::make_exception_ptr(std::logic_error(report.what));
    default:
      return std::make_exception_ptr(std::runtime_error(report.what));
  }
}

std::string describe_death(int wstatus) {
  if (WIFSIGNALED(wstatus)) {
    const int sig = WTERMSIG(wstatus);
    const char* name = ::strsignal(sig);
    return "rank process killed by signal " + std::to_string(sig) +
           (name != nullptr ? std::string(" (") + name + ")" : std::string());
  }
  if (WIFEXITED(wstatus))
    return "rank process exited with status " + std::to_string(WEXITSTATUS(wstatus)) +
           " without reporting a result";
  return "rank process terminated abnormally without reporting a result";
}

}  // namespace

std::vector<std::vector<std::byte>> run_process_ranks(
    const RuntimeOptions& options, const std::function<std::vector<std::byte>(Comm&)>& body) {
  const int ranks = options.ranks;
  const auto nranks = static_cast<std::size_t>(ranks);
  // A dead peer must surface as EPIPE from write(), not kill the process.
  posix_io::ignore_sigpipe();

  // Full mesh of socket pairs (mesh[i][j] is the end rank i uses to talk
  // to rank j) plus one parent<->child status pair per rank, all created
  // before the first fork so every child inherits exactly its row.
  std::vector<std::vector<int>> mesh(nranks, std::vector<int>(nranks, -1));
  std::vector<int> status_parent(nranks, -1);
  std::vector<int> status_child(nranks, -1);
  std::vector<::pid_t> pids(nranks, -1);

  const auto close_everything = [&] {
    for (auto& row : mesh)
      for (int& fd : row) {
        posix_io::close_fd(fd);
        fd = -1;
      }
    for (int& fd : status_parent) {
      posix_io::close_fd(fd);
      fd = -1;
    }
    for (int& fd : status_child) {
      posix_io::close_fd(fd);
      fd = -1;
    }
  };

  try {
    for (int i = 0; i < ranks; ++i) {
      for (int j = i + 1; j < ranks; ++j) {
        int sv[2];
        if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
          throw std::runtime_error(
              std::string("Runtime: socketpair failed (") + std::strerror(errno) +
              "); the process backend needs ~ranks^2 descriptors — raise `ulimit -n` "
              "or use fewer ranks");
        mesh[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = sv[0];
        mesh[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = sv[1];
      }
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0)
        throw std::runtime_error(std::string("Runtime: socketpair failed (") +
                                 std::strerror(errno) + ")");
      status_parent[static_cast<std::size_t>(i)] = sv[0];
      status_child[static_cast<std::size_t>(i)] = sv[1];
    }
  } catch (...) {
    close_everything();
    throw;
  }

  for (int r = 0; r < ranks; ++r) {
    const ::pid_t pid = ::fork();
    if (pid == 0) {
      // Child: keep only our mesh row and our status end.
      for (int i = 0; i < ranks; ++i) {
        if (i != r)
          for (const int fd : mesh[static_cast<std::size_t>(i)]) posix_io::close_fd(fd);
        posix_io::close_fd(status_parent[static_cast<std::size_t>(i)]);
        if (i != r) posix_io::close_fd(status_child[static_cast<std::size_t>(i)]);
      }
      run_child_rank(r, options, body, mesh[static_cast<std::size_t>(r)],
                     status_child[static_cast<std::size_t>(r)]);  // _exits
    }
    if (pid < 0) {
      const std::string why = std::strerror(errno);
      for (int k = 0; k < r; ++k) (void)::kill(pids[static_cast<std::size_t>(k)], SIGKILL);
      for (int k = 0; k < r; ++k) {
        int ws = 0;
        while (::waitpid(pids[static_cast<std::size_t>(k)], &ws, 0) < 0 && errno == EINTR) {
        }
      }
      close_everything();
      throw std::runtime_error("Runtime: fork failed: " + why);
    }
    pids[static_cast<std::size_t>(r)] = pid;
  }

  // Parent: the children own the mesh and the child status ends now.
  // Closing our copies is what lets a child observe a sibling's EOF.
  for (auto& row : mesh)
    for (int& fd : row) {
      posix_io::close_fd(fd);
      fd = -1;
    }
  for (int& fd : status_child) {
    posix_io::close_fd(fd);
    fd = -1;
  }

  std::vector<ChildReport> reports(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    try {
      reports[r] = read_report(status_parent[r]);
    } catch (...) {
      // Treat a parent-side read failure like a missing report.
    }
    posix_io::close_fd(status_parent[r]);
    status_parent[r] = -1;
  }

  std::vector<int> wstatus(nranks, 0);
  for (std::size_t r = 0; r < nranks; ++r) {
    int ws = 0;
    while (::waitpid(pids[r], &ws, 0) < 0 && errno == EINTR) {
    }
    wstatus[r] = ws;
  }

  std::vector<std::vector<std::byte>> results(nranks);
  std::vector<std::exception_ptr> errors(nranks);
  for (std::size_t r = 0; r < nranks; ++r) {
    ChildReport& report = reports[r];
    if (report.present && report.status == ChildStatus::kOk) {
      results[r] = std::move(report.blob);
      continue;
    }
    if (report.present) {
      // The child consumed its copy-on-write crash latch; mirror the
      // one-shot semantics in the parent's plan instance so a restart of
      // the generation does not re-fire the same crash event.
      if (report.status == ChildStatus::kRankCrash && options.fault_plan != nullptr)
        (void)options.fault_plan->consume_crash(static_cast<int>(report.field0),
                                                static_cast<std::uint64_t>(report.field1));
      errors[r] = reconstruct_error(report);
    } else {
      errors[r] = std::make_exception_ptr(std::runtime_error(describe_death(wstatus[r])));
    }
  }

  // Root-cause preference, identical to the threaded launcher: secondary
  // CommAbortErrors only surface when no rank failed for a real reason.
  int first_failed = -1;
  for (int r = 0; r < ranks; ++r) {
    const auto& error = errors[static_cast<std::size_t>(r)];
    if (!error) continue;
    if (first_failed < 0) first_failed = r;
    if (!is_abort_error(error)) rethrow_annotated(r, error);
  }
  if (first_failed >= 0)
    rethrow_annotated(first_failed, errors[static_cast<std::size_t>(first_failed)]);
  return results;
}

}  // namespace kron::detail
