#include "gen/sbm.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/random.hpp"

namespace kron {
namespace {

/// Geometric-skipping Bernoulli(p) sample over a linear pair space of
/// `total` elements; `emit(idx)` is called for each selected index.
template <typename Emit>
void sample_indices(std::uint64_t total, double p, Xoshiro256& rng, Emit&& emit) {
  if (p <= 0.0 || total == 0) return;
  if (p >= 1.0) {
    for (std::uint64_t idx = 0; idx < total; ++idx) emit(idx);
    return;
  }
  const double log1mp = std::log1p(-p);
  std::uint64_t idx = 0;
  while (true) {
    const double r = rng.uniform();
    const double skip = std::floor(std::log1p(-r) / log1mp);
    if (skip >= static_cast<double>(total - idx)) break;
    idx += static_cast<std::uint64_t>(skip);
    emit(idx);
    ++idx;
    if (idx >= total) break;
  }
}

/// Map a linear upper-triangle index over an n-vertex pair space to (u, v),
/// u < v.  Amortised O(1) when indices arrive in increasing order.
struct TriangleUnranker {
  explicit TriangleUnranker(vertex_t size) : n(size) {}
  void operator()(std::uint64_t k, vertex_t& u, vertex_t& v) {
    while (row_start + (n - 1 - row) <= k) {
      row_start += n - 1 - row;
      ++row;
    }
    u = row;
    v = row + 1 + static_cast<vertex_t>(k - row_start);
  }
  vertex_t n;
  vertex_t row = 0;
  std::uint64_t row_start = 0;
};

}  // namespace

std::vector<vertex_t> SbmGraph::block_members(std::uint64_t b) const {
  std::vector<vertex_t> members;
  for (vertex_t v = 0; v < block_of.size(); ++v)
    if (block_of[v] == b) members.push_back(v);
  return members;
}

SbmGraph make_sbm(const SbmParams& params) {
  if (params.blocks == 0 || params.num_vertices < params.blocks)
    throw std::invalid_argument("make_sbm: need at least one vertex per block");
  if (params.p_in < 0 || params.p_in > 1 || params.p_out < 0 || params.p_out > 1)
    throw std::invalid_argument("make_sbm: probabilities outside [0,1]");
  if (!params.p_in_per_block.empty() && params.p_in_per_block.size() != params.blocks)
    throw std::invalid_argument("make_sbm: p_in_per_block size must equal blocks");
  for (const double p : params.p_in_per_block)
    if (p < 0 || p > 1) throw std::invalid_argument("make_sbm: block probability outside [0,1]");

  const vertex_t n = params.num_vertices;
  const std::uint64_t k = params.blocks;
  SbmGraph result;
  result.num_blocks = k;
  result.block_of.resize(n);
  // Near-equal contiguous blocks.
  for (vertex_t v = 0; v < n; ++v) result.block_of[v] = (v * k) / n;

  Xoshiro256 rng(params.seed);
  EdgeList g(n);

  // Intra-block edges: one skipping sweep per block over its own pair
  // space (also faster than sweeping all pairs and filtering).
  vertex_t block_lo = 0;
  for (std::uint64_t b = 0; b < k; ++b) {
    vertex_t block_hi = block_lo;
    while (block_hi < n && result.block_of[block_hi] == b) ++block_hi;
    const vertex_t size = block_hi - block_lo;
    const double p_b = params.p_in_per_block.empty() ? params.p_in : params.p_in_per_block[b];
    if (size >= 2) {
      TriangleUnranker unrank(size);
      sample_indices(static_cast<std::uint64_t>(size) * (size - 1) / 2, p_b, rng,
                     [&](std::uint64_t idx) {
                       vertex_t u = 0, v = 0;
                       unrank(idx, u, v);
                       g.add_undirected(block_lo + u, block_lo + v);
                     });
    }
    block_lo = block_hi;
  }

  // Inter-block edges: one sweep over the whole pair space at p_out,
  // keeping only inter-block pairs (each pair is considered in exactly one
  // sweep's accept test, so probabilities are exact).
  if (n >= 2) {
    TriangleUnranker unrank(n);
    sample_indices(static_cast<std::uint64_t>(n) * (n - 1) / 2, params.p_out, rng,
                   [&](std::uint64_t idx) {
                     vertex_t u = 0, v = 0;
                     unrank(idx, u, v);
                     if (result.block_of[u] != result.block_of[v]) g.add_undirected(u, v);
                   });
  }

  g.sort_dedupe();
  result.graph = std::move(g);
  return result;
}

SbmGraph make_groundtruth_like(double scale, std::uint64_t seed) {
  if (scale <= 0.0 || scale > 1.0)
    throw std::invalid_argument("make_groundtruth_like: scale outside (0,1]");
  SbmParams params;
  params.num_vertices = static_cast<vertex_t>(std::llround(20000.0 * scale));
  params.blocks = 33;
  if (params.num_vertices < params.blocks * 4) params.num_vertices = params.blocks * 4;
  // groundtruth_20000 signature: per-community internal densities spread
  // over [3e-2, 1e-1] (Sec. VI-A table), external densities in
  // [2.5e-4, 5.5e-4]; densities are intensive so they survive scaling.
  params.p_in_per_block.resize(params.blocks);
  Xoshiro256 rng(seed ^ 0x67726f756e644747ULL);
  for (double& p : params.p_in_per_block) p = 0.03 + 0.07 * rng.uniform();
  params.p_out = 0.0004;
  params.seed = seed;
  return make_sbm(params);
}

}  // namespace kron
