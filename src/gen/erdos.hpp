// Erdős–Rényi random graphs (undirected, simple, no self loops).
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace kron {

/// G(n, m): exactly m distinct undirected edges chosen uniformly.
/// Requires m <= n(n-1)/2.
[[nodiscard]] EdgeList make_gnm(vertex_t n, std::uint64_t m, std::uint64_t seed);

/// G(n, p): each of the n(n-1)/2 undirected edges present independently
/// with probability p.  Uses geometric skipping, O(m) expected time.
[[nodiscard]] EdgeList make_gnp(vertex_t n, double p, std::uint64_t seed);

}  // namespace kron
