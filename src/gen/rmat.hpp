// R-MAT / Graph500-style stochastic Kronecker generator.
//
// This is the *baseline comparator* the paper contrasts against (Sec. I):
// stochastic Kronecker generation is fast and produces realistic graphs in
// expectation, but exact graph properties are unknown until generation
// completes.  We implement the recursive quadrant-descent sampler with the
// Graph500 parameters (a=0.57, b=0.19, c=0.19, d=0.05) as defaults.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace kron {

struct RmatParams {
  int scale = 10;                 ///< n = 2^scale vertices.
  std::uint64_t edge_factor = 16; ///< m = edge_factor * n sampled edges.
  double a = 0.57;
  double b = 0.19;
  double c = 0.19;
  // d = 1 - a - b - c.
  bool symmetrize = true;         ///< emit the undirected version.
  bool strip_loops = true;
  std::uint64_t seed = 1;
};

/// Sample an R-MAT graph.  Duplicate samples are deduplicated, so the final
/// edge count is at most edge_factor * 2^scale.
[[nodiscard]] EdgeList make_rmat(const RmatParams& params);

}  // namespace kron
