#include "gen/smallworld.hpp"

#include <set>
#include <stdexcept>

#include "util/random.hpp"

namespace kron {

EdgeList make_small_world(vertex_t n, vertex_t k, double beta, std::uint64_t seed) {
  if (k < 2 || k % 2 != 0) throw std::invalid_argument("make_small_world: k must be even >= 2");
  if (n <= k) throw std::invalid_argument("make_small_world: need n > k");
  if (beta < 0.0 || beta > 1.0)
    throw std::invalid_argument("make_small_world: beta outside [0,1]");

  Xoshiro256 rng(seed);
  // Canonical undirected edge set, mutated during rewiring.
  std::set<std::pair<vertex_t, vertex_t>> edges;
  const auto canonical = [](vertex_t u, vertex_t v) {
    return u < v ? std::pair{u, v} : std::pair{v, u};
  };
  for (vertex_t v = 0; v < n; ++v)
    for (vertex_t offset = 1; offset <= k / 2; ++offset)
      edges.insert(canonical(v, (v + offset) % n));

  // Watts–Strogatz rewiring: each lattice edge (v, v+offset) is replaced
  // with probability beta by (v, random target) avoiding loops/duplicates.
  for (vertex_t v = 0; v < n; ++v) {
    for (vertex_t offset = 1; offset <= k / 2; ++offset) {
      if (!rng.chance(beta)) continue;
      const auto old_edge = canonical(v, (v + offset) % n);
      if (edges.count(old_edge) == 0) continue;  // already rewired away
      vertex_t target = rng.below(n);
      int attempts = 0;
      while ((target == v || edges.count(canonical(v, target)) != 0) && attempts < 64) {
        target = rng.below(n);
        ++attempts;
      }
      if (target == v || edges.count(canonical(v, target)) != 0) continue;  // saturated
      edges.erase(old_edge);
      edges.insert(canonical(v, target));
    }
  }

  EdgeList g(n);
  for (const auto& [u, v] : edges) g.add_undirected(u, v);
  g.sort_dedupe();
  return g;
}

}  // namespace kron
