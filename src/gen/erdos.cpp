#include "gen/erdos.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "util/hash.hpp"
#include "util/random.hpp"

namespace kron {

EdgeList make_gnm(vertex_t n, std::uint64_t m, std::uint64_t seed) {
  if (n < 2 && m > 0) throw std::invalid_argument("make_gnm: too few vertices");
  const std::uint64_t max_edges = n * (n - 1) / 2;
  if (m > max_edges) throw std::invalid_argument("make_gnm: m exceeds n(n-1)/2");

  Xoshiro256 rng(seed);
  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(m * 2);
  EdgeList g(n);
  while (chosen.size() < m) {
    vertex_t u = rng.below(n);
    vertex_t v = rng.below(n);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const std::uint64_t key = u * n + v;
    if (chosen.insert(key).second) g.add_undirected(u, v);
  }
  g.sort_dedupe();
  return g;
}

EdgeList make_gnp(vertex_t n, double p, std::uint64_t seed) {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("make_gnp: p outside [0,1]");
  EdgeList g(n);
  if (p == 0.0 || n < 2) return g;
  Xoshiro256 rng(seed);
  if (p == 1.0) {
    for (vertex_t u = 0; u < n; ++u)
      for (vertex_t v = u + 1; v < n; ++v) g.add_undirected(u, v);
    g.sort_dedupe();
    return g;
  }
  // Geometric skipping over the upper-triangle index space (Batagelj–Brandes).
  const double log1mp = std::log1p(-p);
  const std::uint64_t total = n * (n - 1) / 2;
  std::uint64_t idx = 0;
  // Map a linear upper-triangle index to (u, v).
  const auto unrank = [n](std::uint64_t k, vertex_t& u, vertex_t& v) {
    // Row u has (n-1-u) entries; walk rows (fast enough: amortized O(1) when
    // iterating in increasing k with a cached row start).
    vertex_t row = 0;
    std::uint64_t row_start = 0;
    while (row_start + (n - 1 - row) <= k) {
      row_start += n - 1 - row;
      ++row;
    }
    u = row;
    v = row + 1 + static_cast<vertex_t>(k - row_start);
  };
  while (true) {
    const double r = rng.uniform();
    const double skip = std::floor(std::log1p(-r) / log1mp);
    if (skip >= static_cast<double>(total - idx)) break;
    idx += static_cast<std::uint64_t>(skip);
    vertex_t u = 0;
    vertex_t v = 0;
    unrank(idx, u, v);
    g.add_undirected(u, v);
    ++idx;
    if (idx >= total) break;
  }
  g.sort_dedupe();
  return g;
}

}  // namespace kron
