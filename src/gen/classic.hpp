// Deterministic classic graph families.
//
// These are the factor building blocks the paper reasons with: cliques
// (maximal clustering coefficient, Thm. 1 discussion), disjoint cliques
// (community example Ex. 1), paths/cycles (diameter control, Sec. V-C),
// stars (tree-like neighborhoods, clustering coefficient 0).
#pragma once

#include "graph/edge_list.hpp"

namespace kron {

/// Complete graph K_n (no self loops).
[[nodiscard]] EdgeList make_clique(vertex_t n);

/// Cycle C_n (n >= 3).
[[nodiscard]] EdgeList make_cycle(vertex_t n);

/// Path P_n (n vertices, n-1 edges).
[[nodiscard]] EdgeList make_path(vertex_t n);

/// Star S_n: vertex 0 joined to vertices 1..n-1.
[[nodiscard]] EdgeList make_star(vertex_t n);

/// Complete bipartite graph K_{a,b}: parts {0..a-1} and {a..a+b-1}.
[[nodiscard]] EdgeList make_complete_bipartite(vertex_t a, vertex_t b);

/// `count` disjoint copies of K_{size} (the paper's Ex. 1 community factor).
[[nodiscard]] EdgeList make_disjoint_cliques(vertex_t count, vertex_t size);

/// rows x cols 2D grid (4-neighbor lattice).
[[nodiscard]] EdgeList make_grid(vertex_t rows, vertex_t cols);

}  // namespace kron
