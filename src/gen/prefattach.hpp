// Barabási–Albert preferential-attachment generator.
//
// Stand-in for the SNAP gnutella08 graph used in the paper's eccentricity
// experiment (Sec. V-A): a small-world, scale-free, heavy-tailed graph of
// matched size (see DESIGN.md §2 substitution table).  The experiment tests
// the max-type eccentricity law (Cor. 4), which only needs *a* real-looking
// scale-free factor, not that particular dataset.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace kron {

/// Barabási–Albert model: start from a small seed clique, then each new
/// vertex attaches to `edges_per_vertex` existing vertices chosen with
/// probability proportional to degree (implemented by uniform sampling from
/// the endpoint repetition list).  Undirected, simple, connected.
[[nodiscard]] EdgeList make_pref_attachment(vertex_t n, vertex_t edges_per_vertex,
                                            std::uint64_t seed);

/// A gnutella08-sized factor: |V| ~ 6.3K, |E| ~ 21K, largest CC, with all
/// self loops added — exactly the preparation of Sec. V-A.
[[nodiscard]] EdgeList make_gnutella_like(std::uint64_t seed);

}  // namespace kron
