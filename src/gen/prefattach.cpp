#include "gen/prefattach.hpp"

#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "graph/ops.hpp"
#include "util/random.hpp"

namespace kron {

EdgeList make_pref_attachment(vertex_t n, vertex_t edges_per_vertex, std::uint64_t seed) {
  if (edges_per_vertex < 1)
    throw std::invalid_argument("make_pref_attachment: need edges_per_vertex >= 1");
  const vertex_t seed_size = edges_per_vertex + 1;
  if (n < seed_size)
    throw std::invalid_argument("make_pref_attachment: n too small for seed clique");

  Xoshiro256 rng(seed);
  EdgeList g(n);
  // Endpoint repetition list: each vertex appears once per incident edge, so
  // uniform sampling from it is degree-proportional sampling.
  std::vector<vertex_t> endpoints;
  endpoints.reserve(2 * n * edges_per_vertex);

  for (vertex_t u = 0; u < seed_size; ++u) {
    for (vertex_t v = u + 1; v < seed_size; ++v) {
      g.add_undirected(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }

  std::unordered_set<vertex_t> targets;
  for (vertex_t w = seed_size; w < n; ++w) {
    targets.clear();
    while (targets.size() < edges_per_vertex) {
      const vertex_t candidate = endpoints[rng.below(endpoints.size())];
      targets.insert(candidate);
    }
    for (const vertex_t t : targets) {
      g.add_undirected(w, t);
      endpoints.push_back(w);
      endpoints.push_back(t);
    }
  }
  g.sort_dedupe();
  return g;
}

EdgeList make_gnutella_like(std::uint64_t seed) {
  // gnutella08 (largest CC, undirected): 6299 vertices, 20776 edges,
  // mean degree ~6.6.  BA with m=3 gives ~3n edges; to land near 20.8K
  // edges on 6.3K vertices we use n=6301, m=3 plus a sprinkle of extra
  // degree-proportional edges, then take the largest CC and add self loops.
  constexpr vertex_t kN = 6301;
  constexpr vertex_t kM = 3;
  EdgeList g = make_pref_attachment(kN, kM, seed);
  // ~3n = 18.9K edges so far; add ~1.9K random extra edges for density match.
  Xoshiro256 rng(seed ^ 0x676e7574656c6c61ULL);
  const std::uint64_t extra = 1900;
  for (std::uint64_t i = 0; i < extra; ++i) {
    const vertex_t u = rng.below(kN);
    const vertex_t v = rng.below(kN);
    if (u != v) g.add_undirected(u, v);
  }
  g.sort_dedupe();
  return prepare_factor(g, /*add_loops=*/true);
}

}  // namespace kron
