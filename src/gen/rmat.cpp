#include "gen/rmat.hpp"

#include <stdexcept>

#include "util/random.hpp"

namespace kron {

EdgeList make_rmat(const RmatParams& params) {
  if (params.scale < 1 || params.scale > 40)
    throw std::invalid_argument("make_rmat: scale outside [1, 40]");
  const double d = 1.0 - params.a - params.b - params.c;
  if (params.a < 0 || params.b < 0 || params.c < 0 || d < 0)
    throw std::invalid_argument("make_rmat: probabilities must be nonnegative and sum <= 1");

  const vertex_t n = vertex_t{1} << params.scale;
  const std::uint64_t samples = params.edge_factor * n;
  Xoshiro256 rng(params.seed);

  EdgeList g(n);
  for (std::uint64_t s = 0; s < samples; ++s) {
    vertex_t u = 0;
    vertex_t v = 0;
    for (int level = 0; level < params.scale; ++level) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < params.a) {
        // top-left quadrant
      } else if (r < params.a + params.b) {
        v |= 1;  // top-right
      } else if (r < params.a + params.b + params.c) {
        u |= 1;  // bottom-left
      } else {
        u |= 1;  // bottom-right
        v |= 1;
      }
    }
    if (params.strip_loops && u == v) continue;
    g.add(u, v);
  }
  if (params.symmetrize) {
    g.symmetrize();
  } else {
    g.sort_dedupe();
  }
  return g;
}

}  // namespace kron
