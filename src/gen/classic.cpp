#include "gen/classic.hpp"

#include <stdexcept>

namespace kron {

EdgeList make_clique(vertex_t n) {
  EdgeList g(n);
  for (vertex_t u = 0; u < n; ++u)
    for (vertex_t v = u + 1; v < n; ++v) g.add_undirected(u, v);
  g.sort_dedupe();
  return g;
}

EdgeList make_cycle(vertex_t n) {
  if (n < 3) throw std::invalid_argument("make_cycle: need n >= 3");
  EdgeList g(n);
  for (vertex_t v = 0; v < n; ++v) g.add_undirected(v, (v + 1) % n);
  g.sort_dedupe();
  return g;
}

EdgeList make_path(vertex_t n) {
  EdgeList g(n);
  for (vertex_t v = 0; v + 1 < n; ++v) g.add_undirected(v, v + 1);
  g.sort_dedupe();
  return g;
}

EdgeList make_star(vertex_t n) {
  if (n < 1) throw std::invalid_argument("make_star: need n >= 1");
  EdgeList g(n);
  for (vertex_t v = 1; v < n; ++v) g.add_undirected(0, v);
  g.sort_dedupe();
  return g;
}

EdgeList make_complete_bipartite(vertex_t a, vertex_t b) {
  EdgeList g(a + b);
  for (vertex_t u = 0; u < a; ++u)
    for (vertex_t v = a; v < a + b; ++v) g.add_undirected(u, v);
  g.sort_dedupe();
  return g;
}

EdgeList make_disjoint_cliques(vertex_t count, vertex_t size) {
  EdgeList g(count * size);
  for (vertex_t c = 0; c < count; ++c) {
    const vertex_t base = c * size;
    for (vertex_t u = 0; u < size; ++u)
      for (vertex_t v = u + 1; v < size; ++v) g.add_undirected(base + u, base + v);
  }
  g.sort_dedupe();
  return g;
}

EdgeList make_grid(vertex_t rows, vertex_t cols) {
  EdgeList g(rows * cols);
  const auto id = [cols](vertex_t r, vertex_t c) { return r * cols + c; };
  for (vertex_t r = 0; r < rows; ++r) {
    for (vertex_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_undirected(id(r, c), id(r, c + 1));
      if (r + 1 < rows) g.add_undirected(id(r, c), id(r + 1, c));
    }
  }
  g.sort_dedupe();
  return g;
}

}  // namespace kron
