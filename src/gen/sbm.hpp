// Stochastic block model with planted partition.
//
// Stand-in for the GraphChallenge `groundtruth_20000` graph used in the
// paper's community experiment (Sec. VI-A): n vertices in `blocks`
// communities, intra-block edge probability p_in, inter-block probability
// p_out.  The generator returns the planted partition alongside the graph
// so the community ground-truth formulas (Thm. 6) can be exercised.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/edge_list.hpp"

namespace kron {

struct SbmParams {
  vertex_t num_vertices = 1000;
  std::uint64_t blocks = 10;
  double p_in = 0.05;   ///< intra-community edge probability.
  double p_out = 0.0005; ///< inter-community edge probability.
  /// Optional per-block intra probabilities (size == blocks); when
  /// non-empty it overrides `p_in`, giving communities heterogeneous
  /// densities like the GraphChallenge ground-truth graphs.
  std::vector<double> p_in_per_block;
  std::uint64_t seed = 1;
};

struct SbmGraph {
  EdgeList graph;
  /// block id per vertex, 0-based, contiguous ranges.
  std::vector<std::uint64_t> block_of;
  std::uint64_t num_blocks = 0;

  /// Vertices of one block (they are a contiguous range by construction).
  [[nodiscard]] std::vector<vertex_t> block_members(std::uint64_t b) const;
};

/// Sample an SBM graph (undirected, simple, no self loops).  Blocks are
/// near-equal contiguous vertex ranges.
[[nodiscard]] SbmGraph make_sbm(const SbmParams& params);

/// A groundtruth_20000-shaped factor at configurable scale: `scale` = 1
/// reproduces the paper's signature (20000 vertices, 33 communities,
/// ρ_in ∈ [3e-2, 1e-1], ρ_out ∈ [2.5e-4, 5.5e-4]); smaller scales shrink n
/// while keeping 33 communities and the density *ranges* (densities are
/// intensive, so they survive scaling).
[[nodiscard]] SbmGraph make_groundtruth_like(double scale, std::uint64_t seed);

}  // namespace kron
