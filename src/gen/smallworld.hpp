// Watts–Strogatz small-world generator (the paper's ref. [19], where the
// clustering coefficient of Def. 7 originates).
//
// Ring of n vertices each joined to its k nearest neighbors, with every
// edge endpoint rewired with probability beta.  Interpolates between a
// high-clustering lattice (beta = 0) and an Erdős–Rényi-like graph
// (beta = 1) — a useful factor family for exercising the clustering-
// coefficient scaling laws across the whole η range.
#pragma once

#include <cstdint>

#include "graph/edge_list.hpp"

namespace kron {

/// Watts–Strogatz graph: n vertices, ring degree k (even, >= 2), rewiring
/// probability beta in [0, 1].  Simple and undirected; rewiring never
/// creates loops or duplicate edges.
[[nodiscard]] EdgeList make_small_world(vertex_t n, vertex_t k, double beta,
                                        std::uint64_t seed);

}  // namespace kron
