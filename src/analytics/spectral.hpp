// Spectral analytics: spectral radius and dominant eigenvalues of a
// symmetric adjacency matrix.
//
// Supports the paper's Sec. IV-C observation that the Kronecker structure
// leaks through the spectrum: eig(A ⊗ B) = { λ μ : λ ∈ eig(A), μ ∈ eig(B) },
// so ρ(C) = ρ(A) ρ(B) and large swathes of C's eigenspace come from factor
// eigenpairs — one of the ways a benchmark consumer could (accidentally)
// exploit the structure.  See core/spectral_gt.hpp for the product side.
//
// The spectral radius is computed by power iteration on A² (symmetric PSD
// shift-free dominant mode), which converges to ρ(A)² monotonically and is
// immune to the ±ρ oscillation of bipartite spectra.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace kron {

/// y = A x for the (possibly non-symmetric) adjacency matrix of g.
void adjacency_multiply(const Csr& g, const std::vector<double>& x, std::vector<double>& y);

struct SpectralRadiusResult {
  double value = 0.0;
  std::uint64_t iterations = 0;  ///< A² applications performed
  double residual = 0.0;         ///< |ρ_k - ρ_{k-1}| at termination
};

/// Spectral radius of the adjacency matrix by power iteration on A².
/// Deterministic for a given seed.  `tolerance` is the relative change
/// stopping criterion; `max_iterations` caps work.
[[nodiscard]] SpectralRadiusResult spectral_radius(const Csr& g, double tolerance = 1e-10,
                                                   std::uint64_t max_iterations = 5000,
                                                   std::uint64_t seed = 1);

/// Top-k eigenvalues of a *symmetric* adjacency matrix by magnitude,
/// via power iteration on A² with Gram–Schmidt deflation; returned as
/// |λ| values in decreasing order.  Intended for small factors (k and n
/// modest); throws if g is not symmetric.
[[nodiscard]] std::vector<double> top_eigenvalue_magnitudes(const Csr& g, std::size_t k,
                                                            double tolerance = 1e-10,
                                                            std::uint64_t max_iterations = 5000,
                                                            std::uint64_t seed = 1);

}  // namespace kron
