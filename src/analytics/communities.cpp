#include "analytics/communities.hpp"

#include <limits>
#include <stdexcept>

namespace kron {

double internal_density(std::uint64_t m_in, std::uint64_t size) {
  if (size < 2) return 0.0;
  return 2.0 * static_cast<double>(m_in) /
         (static_cast<double>(size) * static_cast<double>(size - 1));
}

double external_density(std::uint64_t m_out, std::uint64_t size, std::uint64_t n_total) {
  if (size == 0 || n_total <= size) return 0.0;
  return static_cast<double>(m_out) /
         (static_cast<double>(size) * static_cast<double>(n_total - size));
}

CommunityStats community_stats(const Csr& g, const std::vector<vertex_t>& members) {
  std::vector<bool> in_set(g.num_vertices(), false);
  for (const vertex_t v : members) {
    if (v >= g.num_vertices()) throw std::out_of_range("community_stats: bad vertex id");
    in_set[v] = true;
  }
  CommunityStats stats;
  stats.size = members.size();
  std::uint64_t internal_arcs = 0;
  for (const vertex_t u : members) {
    for (const vertex_t v : g.neighbors(u)) {
      if (u == v) continue;  // loops excluded (Thm. 6 uses C - I_C)
      if (in_set[v]) {
        ++internal_arcs;
      } else {
        ++stats.m_out;
      }
    }
  }
  stats.m_in = internal_arcs / 2;
  stats.rho_in = internal_density(stats.m_in, stats.size);
  stats.rho_out = external_density(stats.m_out, stats.size, g.num_vertices());
  return stats;
}

std::vector<CommunityStats> partition_stats(const Csr& g,
                                            const std::vector<std::uint64_t>& block_of,
                                            std::uint64_t num_blocks) {
  if (block_of.size() != g.num_vertices())
    throw std::invalid_argument("partition_stats: block vector size mismatch");
  std::vector<CommunityStats> stats(num_blocks);
  std::vector<std::uint64_t> internal_arcs(num_blocks, 0);
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    if (block_of[v] >= num_blocks) throw std::out_of_range("partition_stats: bad block id");
    ++stats[block_of[v]].size;
  }
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    const std::uint64_t bu = block_of[u];
    for (const vertex_t v : g.neighbors(u)) {
      if (u == v) continue;
      if (block_of[v] == bu) {
        ++internal_arcs[bu];
      } else {
        ++stats[bu].m_out;
      }
    }
  }
  for (std::uint64_t b = 0; b < num_blocks; ++b) {
    stats[b].m_in = internal_arcs[b] / 2;
    stats[b].rho_in = internal_density(stats[b].m_in, stats[b].size);
    stats[b].rho_out = external_density(stats[b].m_out, stats[b].size, g.num_vertices());
  }
  return stats;
}

}  // namespace kron
