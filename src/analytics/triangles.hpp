// Triangle participation (Def. 5, Def. 6) by direct enumeration.
//
// Counts follow the paper's conventions: self loops never participate in
// triangles (the definitions subtract A∘I before cubing), t_i counts each
// triangle once at each of its three corners, Δ_ij counts each triangle
// once at each of its three (undirected) edges, and the global count τ is
// the number of distinct triangles (Σ t_i / 3).
//
// The enumeration uses the forward/compact algorithm (degree-ordered
// neighbor intersection, cf. Chiba–Nishizeki and the paper's refs [22],
// [23]): O(Σ min(d_u, d_v)) over edges, which is O(m^{3/2}) worst case and
// near-linear on scale-free graphs.  The callback form is what the
// probabilistic-rejection machinery (core/rejection.hpp) uses to count
// triangles of all hashed subgraphs in one sweep (Def. 8).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace kron {

/// Enumerate each triangle of the undirected graph exactly once, ignoring
/// self loops.  The callback receives the three corners in increasing
/// vertex-id order.
template <typename Callback>
void for_each_triangle(const Csr& g, Callback&& callback) {
  const vertex_t n = g.num_vertices();
  // Rank vertices by (degree, id); orient each edge from lower to higher
  // rank.  Forward lists then have length O(sqrt(m)) max on simple graphs.
  std::vector<std::uint64_t> rank(n);
  {
    std::vector<vertex_t> order(n);
    for (vertex_t v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&g](vertex_t a, vertex_t b) {
      const auto da = g.degree_no_loop(a);
      const auto db = g.degree_no_loop(b);
      return da != db ? da < db : a < b;
    });
    for (std::uint64_t i = 0; i < n; ++i) rank[order[i]] = i;
  }

  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (vertex_t u = 0; u < n; ++u)
    for (const vertex_t v : g.neighbors(u))
      if (u != v && rank[u] < rank[v]) ++offsets[u + 1];
  for (vertex_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  std::vector<vertex_t> forward(offsets[n]);
  {
    std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
    for (vertex_t u = 0; u < n; ++u)
      for (const vertex_t v : g.neighbors(u))
        if (u != v && rank[u] < rank[v]) forward[cursor[u]++] = v;
  }
  // Forward lists are sorted by vertex id (inherited from CSR row order),
  // so ordered intersection applies.
  for (vertex_t u = 0; u < n; ++u) {
    const auto u_begin = forward.begin() + static_cast<std::ptrdiff_t>(offsets[u]);
    const auto u_end = forward.begin() + static_cast<std::ptrdiff_t>(offsets[u + 1]);
    for (auto it = u_begin; it != u_end; ++it) {
      const vertex_t v = *it;
      const auto v_begin = forward.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      const auto v_end = forward.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      auto a = u_begin;
      auto b = v_begin;
      while (a != u_end && b != v_end) {
        if (*a < *b) {
          ++a;
        } else if (*b < *a) {
          ++b;
        } else {
          const vertex_t w = *a;
          vertex_t x = u, y = v, z = w;
          if (x > y) std::swap(x, y);
          if (y > z) std::swap(y, z);
          if (x > y) std::swap(x, y);
          callback(x, y, z);
          ++a;
          ++b;
        }
      }
    }
  }
}

/// Full triangle census of a graph.
struct TriangleCounts {
  std::vector<std::uint64_t> per_vertex;  ///< t_i (Def. 5).
  std::vector<std::uint64_t> per_arc;     ///< Δ aligned with the graph's arc order.
  std::uint64_t total = 0;                ///< τ: number of distinct triangles.
};

/// Count triangles at every vertex and every arc.  `per_arc[k]` is the
/// triangle count of the k-th arc in the Csr's storage order; both arcs of
/// an undirected edge receive the same value, loop arcs receive 0.
[[nodiscard]] TriangleCounts count_triangles(const Csr& g);

/// Δ at one edge given a precomputed census.
[[nodiscard]] std::uint64_t edge_triangle_count(const Csr& g, const TriangleCounts& counts,
                                                vertex_t u, vertex_t v);

/// Global triangle count only (no per-entity arrays).
[[nodiscard]] std::uint64_t global_triangle_count(const Csr& g);

}  // namespace kron
