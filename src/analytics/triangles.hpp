// Triangle participation (Def. 5, Def. 6) by direct enumeration.
//
// Counts follow the paper's conventions: self loops never participate in
// triangles (the definitions subtract A∘I before cubing), t_i counts each
// triangle once at each of its three corners, Δ_ij counts each triangle
// once at each of its three (undirected) edges, and the global count τ is
// the number of distinct triangles (Σ t_i / 3).
//
// The enumeration uses the forward/compact algorithm (degree-ordered
// neighbor intersection, cf. Chiba–Nishizeki and the paper's refs [22],
// [23]): O(Σ min(d_u, d_v)) over edges, which is O(m^{3/2}) worst case and
// near-linear on scale-free graphs.  The shared ForwardAdjacency carries,
// per oriented edge, its global arc index, so the census kernels assign
// per-arc counts by position instead of a binary search per triangle edge.
// The callback form is what the probabilistic-rejection machinery
// (core/rejection.hpp) uses to count triangles of all hashed subgraphs in
// one sweep (Def. 8); count_triangles / global_triangle_count partition
// the same enumeration across the thread pool with per-thread accumulators
// (DESIGN.md §10).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "util/simd.hpp"

namespace kron {

/// Degree-oriented adjacency: each undirected non-loop edge appears exactly
/// once, directed from its lower-(degree, id)-ranked endpoint to the higher.
/// Rows inherit the CSR's sorted-by-id order, so ordered intersection
/// applies, and `source_arc[k]` maps forward position k back to the global
/// index of the underlying (u, v) arc in the Csr.
struct ForwardAdjacency {
  std::vector<std::uint64_t> offsets;     ///< size n+1
  std::vector<vertex_t> targets;          ///< higher-ranked neighbors per row
  std::vector<std::uint64_t> source_arc;  ///< Csr arc index of each forward arc
};

/// Build the forward orientation of `g` (parallel over rows).
[[nodiscard]] ForwardAdjacency build_forward_adjacency(const CsrView& g);

/// Enumerate the triangles whose lowest-ranked corner lies in [lo, hi),
/// reporting the corner ids AND the three global forward positions
/// (p_uv, p_uw, p_vw) — direct indices into per-forward-arc accumulators
/// and `fwd.source_arc`, no lookups.  The chunked census kernels and the
/// joint rejection census (core/rejection.cpp) share this loop.
template <typename Emit>
void enumerate_forward_triangles(const ForwardAdjacency& fwd, vertex_t lo, vertex_t hi,
                                 const Emit& emit) {
  for (vertex_t u = lo; u < hi; ++u) {
    const std::uint64_t u_begin = fwd.offsets[u];
    const std::uint64_t u_end = fwd.offsets[u + 1];
    for (std::uint64_t p_uv = u_begin; p_uv < u_end; ++p_uv) {
      const vertex_t v = fwd.targets[p_uv];
      // The next intersection's second row (fwd.targets of the *next* v) is
      // a dependent random access; fetching its head one edge early hides
      // most of the row-start miss.
      if (p_uv + 1 < u_end)
        simd::prefetch_read(&fwd.targets[fwd.offsets[fwd.targets[p_uv + 1]]]);
      std::uint64_t a = u_begin;
      std::uint64_t b = fwd.offsets[v];
      const std::uint64_t b_end = fwd.offsets[v + 1];
      while (a != u_end && b != b_end) {
        if (fwd.targets[a] < fwd.targets[b]) {
          ++a;
        } else if (fwd.targets[b] < fwd.targets[a]) {
          ++b;
        } else {
          emit(u, v, fwd.targets[a], p_uv, a, b);
          ++a;
          ++b;
        }
      }
    }
  }
}

/// Enumerate each triangle of the undirected graph exactly once, ignoring
/// self loops.  The callback receives the three corners in increasing
/// vertex-id order.  Sequential — callers that need the census arrays use
/// count_triangles, which runs the same enumeration chunked over threads.
template <typename Callback>
void for_each_triangle(const CsrView& g, Callback&& callback) {
  const ForwardAdjacency fwd = build_forward_adjacency(g);
  const auto n = static_cast<vertex_t>(fwd.offsets.size() - 1);
  enumerate_forward_triangles(
      fwd, 0, n,
      [&callback](vertex_t u, vertex_t v, vertex_t w, std::uint64_t, std::uint64_t,
                  std::uint64_t) {
        vertex_t x = u, y = v, z = w;
        if (x > y) std::swap(x, y);
        if (y > z) std::swap(y, z);
        if (x > y) std::swap(x, y);
        callback(x, y, z);
      });
}

/// Full triangle census of a graph.
struct TriangleCounts {
  std::vector<std::uint64_t> per_vertex;  ///< t_i (Def. 5).
  std::vector<std::uint64_t> per_arc;     ///< Δ aligned with the graph's arc order.
  std::uint64_t total = 0;                ///< τ: number of distinct triangles.
};

/// Count triangles at every vertex and every arc.  `per_arc[k]` is the
/// triangle count of the k-th arc in the Csr's storage order; both arcs of
/// an undirected edge receive the same value, loop arcs receive 0.
/// Parallel with per-thread accumulators reduced in chunk order —
/// bit-identical for every thread count.
[[nodiscard]] TriangleCounts count_triangles(const CsrView& g);

/// Δ at one edge given a precomputed census.
[[nodiscard]] std::uint64_t edge_triangle_count(const CsrView& g, const TriangleCounts& counts,
                                                vertex_t u, vertex_t v);

/// Global triangle count only (no per-entity arrays).
[[nodiscard]] std::uint64_t global_triangle_count(const CsrView& g);

}  // namespace kron
