#include "analytics/bipartite.hpp"

namespace kron {

std::optional<std::vector<std::uint8_t>> bipartition(const Csr& g) {
  constexpr std::uint8_t kUncolored = 2;
  const vertex_t n = g.num_vertices();
  std::vector<std::uint8_t> side(n, kUncolored);
  std::vector<vertex_t> frontier;
  for (vertex_t root = 0; root < n; ++root) {
    if (side[root] != kUncolored) continue;
    side[root] = 0;
    frontier.assign(1, root);
    while (!frontier.empty()) {
      const vertex_t u = frontier.back();
      frontier.pop_back();
      for (const vertex_t v : g.neighbors(u)) {
        if (u == v) return std::nullopt;  // self loop = odd closed walk
        if (side[v] == kUncolored) {
          side[v] = static_cast<std::uint8_t>(1 - side[u]);
          frontier.push_back(v);
        } else if (side[v] == side[u]) {
          return std::nullopt;  // odd cycle
        }
      }
    }
  }
  return side;
}

bool is_bipartite(const Csr& g) { return bipartition(g).has_value(); }

}  // namespace kron
