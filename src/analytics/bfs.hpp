// Breadth-first search and hop-count computation.
//
// Hop counts follow the paper's Def. 9: when every vertex carries a self
// loop, hops(i, j) = min{ h : (A^h)_ij > 0 } — in particular hops(i, i) = 1,
// because the self loop gives (A^1)_ii > 0.  Without a self loop at i the
// diagonal entry appears only via a round trip, so hops(i, i) = 2 when i has
// any neighbor.  Plain BFS level numbers give hops for i != j; the i == j
// case is patched according to the loop structure.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr.hpp"

namespace kron {

/// Level number per vertex from plain BFS (source level 0), kUnreachable if
/// disconnected from `source`.
inline constexpr std::uint64_t kUnreachable = std::numeric_limits<std::uint64_t>::max();

[[nodiscard]] std::vector<std::uint64_t> bfs_levels(const CsrView& g, vertex_t source);

/// Hop counts per Def. 9: hops(source, j).  For j != source this is the BFS
/// level; for j == source it is 1 if `source` has a self loop, 2 if it has
/// any neighbor (round trip), kUnreachable if isolated.
[[nodiscard]] std::vector<std::uint64_t> hops_from(const CsrView& g, vertex_t source);

/// Apply the Def. 9 diagonal rule in place: hops(i, i) = 1 with a self
/// loop, 2 with any neighbor, kUnreachable when isolated.
void patch_diagonal_hop(const CsrView& g, vertex_t source, std::uint64_t& hop);

/// All-pairs hop-count matrix, row-major n*n (for small graphs / factors).
/// Entry [i*n + j] = hops(i, j).  Computed by bit-parallel multi-source
/// BFS, 64 rows per batch (analytics/msbfs.hpp).  Throws
/// std::overflow_error when the n*n cell count cannot be represented.
[[nodiscard]] std::vector<std::uint64_t> all_pairs_hops(const CsrView& g);

}  // namespace kron
