#include "analytics/clustering.hpp"

#include <algorithm>

namespace kron {

double vertex_clustering(std::uint64_t triangles, std::uint64_t degree) {
  if (degree < 2) return 0.0;
  return 2.0 * static_cast<double>(triangles) /
         (static_cast<double>(degree) * static_cast<double>(degree - 1));
}

double edge_clustering(std::uint64_t edge_triangles, std::uint64_t deg_u, std::uint64_t deg_v) {
  const std::uint64_t dmin = std::min(deg_u, deg_v);
  if (dmin < 2) return 0.0;
  return static_cast<double>(edge_triangles) / static_cast<double>(dmin - 1);
}

std::vector<double> all_vertex_clustering(const Csr& g) {
  return all_vertex_clustering(g, count_triangles(g));
}

std::vector<double> all_vertex_clustering(const Csr& g, const TriangleCounts& counts) {
  std::vector<double> eta(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v)
    eta[v] = vertex_clustering(counts.per_vertex[v], g.degree_no_loop(v));
  return eta;
}

std::uint64_t wedge_count(const Csr& g) {
  std::uint64_t wedges = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    const std::uint64_t d = g.degree_no_loop(v);
    wedges += d * (d - (d > 0 ? 1 : 0)) / 2;
  }
  return wedges;
}

double transitivity(const Csr& g) {
  const std::uint64_t wedges = wedge_count(g);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(global_triangle_count(g)) / static_cast<double>(wedges);
}

std::vector<double> all_edge_clustering(const Csr& g, const TriangleCounts& counts) {
  std::vector<double> xi(g.num_arcs(), 0.0);
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    const auto row = g.neighbors(u);
    for (std::size_t k = 0; k < row.size(); ++k) {
      const vertex_t v = row[k];
      if (u == v) continue;
      const std::uint64_t idx = g.arc_index(u, v);
      xi[idx] = edge_clustering(counts.per_arc[idx], g.degree_no_loop(u), g.degree_no_loop(v));
    }
  }
  return xi;
}

}  // namespace kron
