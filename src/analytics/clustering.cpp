#include "analytics/clustering.hpp"

#include <algorithm>

#include "util/parallel.hpp"

namespace kron {

double vertex_clustering(std::uint64_t triangles, std::uint64_t degree) {
  if (degree < 2) return 0.0;
  return 2.0 * static_cast<double>(triangles) /
         (static_cast<double>(degree) * static_cast<double>(degree - 1));
}

double edge_clustering(std::uint64_t edge_triangles, std::uint64_t deg_u, std::uint64_t deg_v) {
  const std::uint64_t dmin = std::min(deg_u, deg_v);
  if (dmin < 2) return 0.0;
  return static_cast<double>(edge_triangles) / static_cast<double>(dmin - 1);
}

std::vector<double> all_vertex_clustering(const Csr& g) {
  return all_vertex_clustering(g, count_triangles(g));
}

std::vector<double> all_vertex_clustering(const Csr& g, const TriangleCounts& counts) {
  std::vector<double> eta(g.num_vertices());
  // Each η(v) is computed independently from its own slot — disjoint
  // writes, identical doubles for every thread count.
  parallel_for(0, g.num_vertices(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v)
      eta[v] = vertex_clustering(counts.per_vertex[v],
                                 g.degree_no_loop(static_cast<vertex_t>(v)));
  });
  return eta;
}

std::uint64_t wedge_count(const Csr& g) {
  return parallel_reduce(
      std::size_t{0}, g.num_vertices(), std::uint64_t{0},
      [&](std::size_t lo, std::size_t hi) {
        std::uint64_t wedges = 0;
        for (std::size_t v = lo; v < hi; ++v) {
          const std::uint64_t d = g.degree_no_loop(static_cast<vertex_t>(v));
          wedges += d * (d - (d > 0 ? 1 : 0)) / 2;
        }
        return wedges;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; }, /*grain=*/4096);
}

double transitivity(const Csr& g) {
  const std::uint64_t wedges = wedge_count(g);
  if (wedges == 0) return 0.0;
  return 3.0 * static_cast<double>(global_triangle_count(g)) / static_cast<double>(wedges);
}

std::vector<double> all_edge_clustering(const Csr& g, const TriangleCounts& counts) {
  std::vector<double> xi(g.num_arcs(), 0.0);
  // Walk rows and derive arc indices from the row offset — no per-arc
  // binary search; arcs of distinct rows never alias.
  parallel_for(0, g.num_vertices(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      const auto row = g.neighbors(static_cast<vertex_t>(u));
      const std::uint64_t row_base = g.row_offset(static_cast<vertex_t>(u));
      const std::uint64_t deg_u = g.degree_no_loop(static_cast<vertex_t>(u));
      for (std::size_t k = 0; k < row.size(); ++k) {
        const vertex_t v = row[k];
        if (u == v) continue;
        xi[row_base + k] =
            edge_clustering(counts.per_arc[row_base + k], deg_u, g.degree_no_loop(v));
      }
    }
  });
  return xi;
}

}  // namespace kron
