// Bit-parallel multi-source BFS (MS-BFS, Then et al., VLDB'15 flavor).
//
// The validation analytics that check Thm. 3-5 / Cor. 3-5 (exact
// eccentricities, closeness, diameter/radius, all-pairs hops) all run one
// BFS per vertex.  MS-BFS packs 64 sources into one machine word per
// vertex: `word[v]` has bit s set when source s of the batch has reached
// v, so one sweep advances 64 traversals at once and the n-BFS loop
// becomes n/64 word-parallel sweeps.
//
// Word layout: bit s of every per-vertex word belongs to `sources[s]` of
// the batch (at most 64 sources, all distinct).  Three n-word arrays hold
// the state — `seen` (all bits ever reached), `cur` (bits that arrived at
// the previous level, the per-source frontiers), and an accumulator for
// the next level.  Each level either *pushes* (iterate the frontier list,
// OR its words into out-neighbors — cheap while frontiers are sparse) or
// *pulls* (sweep all vertices, OR in-neighbor words — cheap once the
// frontier's degree mass is a large fraction of the graph).  Pull needs
// in-edges: on non-symmetric graphs the engine builds the transpose once
// at construction.
//
// Consumers observe levels through a callback: after each level the engine
// reports the newly-reached vertices and their new-bit words; per-source
// statistics (max depth, per-depth counts, row writes) are folded from
// that.  Outputs are bit-identical for every thread count: the engine runs
// one batch on one thread (callers schedule the n/64 batches across the
// pool; see DESIGN.md §10), and within a batch the push/pull decision
// depends only on graph quantities.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "graph/csr.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"
#include "util/trace.hpp"

namespace kron {

class MsBfs {
 public:
  /// Sources per batch — one bit of a machine word each.
  static constexpr std::size_t kBatchSize = 64;

  /// Builds the engine; on non-symmetric graphs this materialises the
  /// transpose (O(n + m)) so pull sweeps can follow in-edges.
  explicit MsBfs(const CsrView& g);

  /// Run one batch of at most 64 distinct sources to exhaustion.
  /// `on_level(depth, active, words)` is invoked once per level (depth 0 is
  /// the sources themselves): `active` lists the vertices first reached at
  /// `depth` and `words[v]` holds the batch bits that arrived at v — valid
  /// only for v in `active`, and only during the callback.
  /// Thread-safe: scratch state is per-call, so distinct batches may run
  /// concurrently on the pool.
  template <typename OnLevel>
  void run_batch(std::span<const vertex_t> sources, OnLevel&& on_level) const {
    if (sources.size() > kBatchSize) throw std::invalid_argument("MsBfs: batch exceeds 64");
    const CsrView& g = g_;
    const vertex_t n = g.num_vertices();
    std::vector<std::uint64_t> seen(n, 0);
    std::vector<std::uint64_t> cur(n, 0);   // new bits of the current level
    std::vector<std::uint64_t> next(n, 0);  // accumulator, all-zero between levels
    std::vector<vertex_t> frontier;
    std::vector<vertex_t> next_frontier;
    std::vector<vertex_t> touched;

    for (std::size_t s = 0; s < sources.size(); ++s) {
      const vertex_t v = sources[s];
      if (v >= n) throw std::out_of_range("MsBfs: bad source");
      if (cur[v] == 0) frontier.push_back(v);
      const std::uint64_t bit = 1ULL << s;
      if ((seen[v] & bit) != 0) throw std::invalid_argument("MsBfs: duplicate source");
      cur[v] |= bit;
      seen[v] |= bit;
    }
    std::uint64_t depth = 0;
    on_level(depth, std::span<const vertex_t>(frontier), cur.data());

    const std::uint64_t total_arcs = g.num_arcs();
    while (!frontier.empty()) {
      ++depth;
      next_frontier.clear();
      std::uint64_t frontier_degree = 0;
      for (const vertex_t u : frontier) frontier_degree += g.degree(u);

      if (frontier_degree * kPullFactor < total_arcs + n) {
        // Push: expand the (sparse) frontier along out-edges.
        touched.clear();
        for (const vertex_t u : frontier) {
          const std::uint64_t word = cur[u];
          for (const vertex_t v : g.neighbors(u)) {
            if (next[v] == 0) touched.push_back(v);
            next[v] |= word;
          }
        }
        for (const vertex_t v : touched) {
          const std::uint64_t fresh = next[v] & ~seen[v];
          if (fresh != 0) {
            seen[v] |= fresh;
            next[v] = fresh;
            next_frontier.push_back(v);
          } else {
            next[v] = 0;
          }
        }
      } else {
        // Pull: sweep every vertex, gathering frontier words over in-edges.
        // The inner OR-reduction is the hot loop of every dense level; it
        // runs through the vectorised gather kernel (util/simd.hpp).
        for (vertex_t v = 0; v < n; ++v) {
          const auto row = in_neighbors(v);
          const std::uint64_t word = simd::or_gather(cur.data(), row.data(), row.size());
          const std::uint64_t fresh = word & ~seen[v];
          if (fresh != 0) {
            seen[v] |= fresh;
            next[v] = fresh;
            next_frontier.push_back(v);
          }
        }
      }

      for (const vertex_t u : frontier) cur[u] = 0;
      std::swap(cur, next);  // cur := new bits; next := all-zero again
      frontier.swap(next_frontier);
      if (!frontier.empty()) on_level(depth, std::span<const vertex_t>(frontier), cur.data());
    }
  }

  [[nodiscard]] bool symmetric() const noexcept { return rev_offsets_.empty(); }

 private:
  /// Pull switches on when the frontier's degree mass reaches 1/kPullFactor
  /// of the arc count — past that, one O(n + m) word sweep beats per-edge
  /// push bookkeeping.
  static constexpr std::uint64_t kPullFactor = 4;

  [[nodiscard]] std::span<const vertex_t> in_neighbors(vertex_t v) const {
    if (rev_offsets_.empty()) return g_.neighbors(v);
    return {rev_targets_.data() + rev_offsets_[v], rev_targets_.data() + rev_offsets_[v + 1]};
  }

  CsrView g_;
  std::vector<std::uint64_t> rev_offsets_;  // empty when the graph is symmetric
  std::vector<vertex_t> rev_targets_;
};

/// Schedule the standard full sweep — sources 0..n-1 in ⌈n/64⌉ batches —
/// across the thread pool.  `consume_batch(base, sources)` runs once per
/// batch (concurrently; outputs must be written to disjoint, per-source
/// locations): `base` is the id of the batch's first source and `sources`
/// the batch's source list (base, base+1, ...).
template <typename ConsumeBatch>
void msbfs_all_sources(const CsrView& g, ConsumeBatch&& consume_batch) {
  const vertex_t n = g.num_vertices();
  const std::size_t batches = (n + MsBfs::kBatchSize - 1) / MsBfs::kBatchSize;
  if (batches == 0) return;
  ThreadPool::instance().run_tasks(batches, [&](std::size_t b) {
    TRACE_SPAN("msbfs.batch");
    TRACE_COUNTER_ADD("msbfs.batches_run", 1);
    const vertex_t base = static_cast<vertex_t>(b) * MsBfs::kBatchSize;
    const vertex_t end = std::min<vertex_t>(base + MsBfs::kBatchSize, n);
    std::vector<vertex_t> sources;
    sources.reserve(end - base);
    for (vertex_t v = base; v < end; ++v) sources.push_back(v);
    consume_batch(base, std::span<const vertex_t>(sources));
  });
}

}  // namespace kron
