#include "analytics/eccentricity.hpp"
#include <tuple>

#include <algorithm>
#include <stdexcept>

#include "analytics/bfs.hpp"

namespace kron {
namespace {

std::uint64_t max_hop(const std::vector<std::uint64_t>& hops) {
  std::uint64_t ecc = 0;
  for (const std::uint64_t h : hops) {
    if (h == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, h);
  }
  return ecc;
}

}  // namespace

std::vector<std::uint64_t> exact_eccentricities(const Csr& g) {
  const vertex_t n = g.num_vertices();
  std::vector<std::uint64_t> ecc(n);
  for (vertex_t v = 0; v < n; ++v) ecc[v] = max_hop(hops_from(g, v));
  return ecc;
}

BoundedEccResult bounded_eccentricities(const Csr& g) {
  const vertex_t n = g.num_vertices();
  BoundedEccResult result;
  result.ecc.assign(n, 0);
  if (n == 0) return result;

  std::vector<std::uint64_t> lower(n, 0);
  std::vector<std::uint64_t> upper(n, kUnreachable);
  std::vector<bool> resolved(n, false);
  std::uint64_t unresolved = n;

  // Alternate between the vertex with the largest upper bound (tightens the
  // diameter side) and the smallest lower bound (tightens the radius side);
  // start from a max-degree vertex, a good center candidate.
  bool pick_max_upper = false;
  vertex_t pivot = 0;
  for (vertex_t v = 1; v < n; ++v)
    if (g.degree(v) > g.degree(pivot)) pivot = v;

  while (unresolved > 0) {
    const auto hops = hops_from(g, pivot);
    const std::uint64_t ecc_pivot = max_hop(hops);
    if (ecc_pivot == kUnreachable)
      throw std::invalid_argument("bounded_eccentricities: graph is disconnected");
    ++result.bfs_count;
    if (!resolved[pivot]) {
      result.ecc[pivot] = ecc_pivot;
      resolved[pivot] = true;
      --unresolved;
    }

    for (vertex_t v = 0; v < n; ++v) {
      if (resolved[v]) continue;
      const std::uint64_t d = hops[v];
      // Triangle-inequality bounds: |ecc(p) - d| <= ecc(v) <= ecc(p) + d,
      // and ecc(v) >= d always.
      const std::uint64_t lo_candidate =
          std::max(d, ecc_pivot > d ? ecc_pivot - d : d - ecc_pivot);
      lower[v] = std::max(lower[v], lo_candidate);
      upper[v] = std::min(upper[v], ecc_pivot + d);
      if (lower[v] == upper[v]) {
        result.ecc[v] = lower[v];
        resolved[v] = true;
        --unresolved;
      }
    }

    // Propagate the edge constraint |ecc(u) - ecc(v)| <= 1 to a fixpoint:
    // upper(v) <= upper(u) + 1 across every edge.  This closes the large
    // plateaus of tied eccentricities that pivot distances alone cannot,
    // cutting the number of BFS sweeps dramatically on small-world graphs.
    bool changed = unresolved > 0;
    while (changed) {
      changed = false;
      for (vertex_t u = 0; u < n; ++u) {
        const std::uint64_t cap = upper[u] == kUnreachable ? kUnreachable : upper[u] + 1;
        if (cap == kUnreachable) continue;
        for (const vertex_t v : g.neighbors(u)) {
          if (upper[v] > cap) {
            upper[v] = cap;
            changed = true;
            if (!resolved[v] && lower[v] == upper[v]) {
              result.ecc[v] = lower[v];
              resolved[v] = true;
              --unresolved;
            }
          }
        }
      }
    }

    if (unresolved == 0) break;
    // Choose the next pivot among unresolved vertices, alternating between
    // the largest upper bound (attacks the periphery, raises lower bounds
    // of everything far away) and the smallest lower bound (attacks the
    // center); ties break toward the larger bound gap, then higher degree.
    vertex_t best = n;  // sentinel
    for (vertex_t v = 0; v < n; ++v) {
      if (resolved[v]) continue;
      if (best == n) {
        best = v;
        continue;
      }
      const auto key = [&](vertex_t w) {
        const std::uint64_t primary = pick_max_upper ? upper[w] : ~lower[w];
        return std::tuple(primary, upper[w] - lower[w], g.degree(w));
      };
      if (key(v) > key(best)) best = v;
    }
    pivot = best;
    pick_max_upper = !pick_max_upper;
  }
  return result;
}

ApproxEccResult approx_eccentricities(const Csr& g, std::uint64_t num_pivots) {
  const vertex_t n = g.num_vertices();
  ApproxEccResult result;
  result.lower.assign(n, 0);
  result.upper.assign(n, kUnreachable);
  if (n == 0) return result;
  num_pivots = std::max<std::uint64_t>(1, std::min<std::uint64_t>(num_pivots, n));

  // min distance to any previous pivot, for farthest-point spreading.
  std::vector<std::uint64_t> closest(n, kUnreachable);
  vertex_t pivot = 0;
  for (vertex_t v = 1; v < n; ++v)
    if (g.degree(v) > g.degree(pivot)) pivot = v;

  for (std::uint64_t round = 0; round < num_pivots; ++round) {
    const auto hops = hops_from(g, pivot);
    std::uint64_t ecc_pivot = 0;
    for (const std::uint64_t h : hops) {
      if (h == kUnreachable)
        throw std::invalid_argument("approx_eccentricities: graph is disconnected");
      ecc_pivot = std::max(ecc_pivot, h);
    }
    ++result.bfs_count;
    for (vertex_t v = 0; v < n; ++v) {
      const std::uint64_t d = hops[v];
      result.lower[v] = std::max(
          result.lower[v], std::max(d, ecc_pivot > d ? ecc_pivot - d : d - ecc_pivot));
      result.upper[v] = std::min(result.upper[v], ecc_pivot + d);
      closest[v] = std::min(closest[v], d);
    }
    result.lower[pivot] = result.upper[pivot] = ecc_pivot;
    // Next pivot: the vertex farthest from every pivot so far.
    vertex_t farthest = 0;
    for (vertex_t v = 1; v < n; ++v)
      if (closest[v] > closest[farthest]) farthest = v;
    pivot = farthest;
  }
  result.estimate = result.upper;
  return result;
}

std::uint64_t diameter(const Csr& g) {
  const auto ecc = exact_eccentricities(g);
  std::uint64_t d = 0;
  for (const std::uint64_t e : ecc) {
    if (e == kUnreachable) return kUnreachable;
    d = std::max(d, e);
  }
  return d;
}

std::uint64_t radius(const Csr& g) {
  const auto ecc = exact_eccentricities(g);
  std::uint64_t r = kUnreachable;
  for (const std::uint64_t e : ecc) r = std::min(r, e);
  return r;
}

}  // namespace kron
