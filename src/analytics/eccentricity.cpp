#include "analytics/eccentricity.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>
#include <tuple>

#include "analytics/bfs.hpp"
#include "analytics/msbfs.hpp"
#include "util/parallel.hpp"

namespace kron {
namespace {

std::uint64_t max_hop(const std::vector<std::uint64_t>& hops) {
  // kUnreachable is the max uint64, so a plain max-reduce reports
  // disconnection automatically; chunk partials fold in chunk order.
  return parallel_reduce(
      std::size_t{0}, hops.size(), std::uint64_t{0},
      [&](std::size_t lo, std::size_t hi) {
        std::uint64_t ecc = 0;
        for (std::size_t i = lo; i < hi; ++i) ecc = std::max(ecc, hops[i]);
        return ecc;
      },
      [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); }, /*grain=*/4096);
}

// First vertex (lowest id) maximising `key` among vertices where
// `eligible` holds; n when none.  Sequential scan semantics — a later
// chunk wins only on a strictly greater key — for every thread count.
template <typename Key, typename Eligible>
vertex_t first_argmax(vertex_t n, const Eligible& eligible, const Key& key) {
  return parallel_reduce(
      std::size_t{0}, n, static_cast<vertex_t>(n),
      [&](std::size_t lo, std::size_t hi) {
        vertex_t best = n;
        for (std::size_t v = lo; v < hi; ++v) {
          if (!eligible(v)) continue;
          if (best == n || key(v) > key(best)) best = static_cast<vertex_t>(v);
        }
        return best;
      },
      [&](vertex_t a, vertex_t b) {
        if (a == n) return b;
        if (b == n) return a;
        return key(b) > key(a) ? b : a;
      },
      /*grain=*/4096);
}

}  // namespace

std::vector<std::uint64_t> exact_eccentricities(const CsrView& g) {
  const vertex_t n = g.num_vertices();
  std::vector<std::uint64_t> ecc(n, 0);
  if (n == 0) return ecc;
  const MsBfs engine(g);
  // 64 sources per word, batches scheduled across the pool; each batch
  // folds max depth + reached count per source and writes its own slice.
  msbfs_all_sources(g, [&](vertex_t base, std::span<const vertex_t> sources) {
    std::array<std::uint64_t, MsBfs::kBatchSize> deepest{};
    std::array<std::uint64_t, MsBfs::kBatchSize> reached{};
    engine.run_batch(sources, [&](std::uint64_t depth, std::span<const vertex_t> active,
                                  const std::uint64_t* words) {
      for (const vertex_t v : active) {
        std::uint64_t word = words[v];
        while (word != 0) {
          const auto s = static_cast<std::size_t>(__builtin_ctzll(word));
          word &= word - 1;
          deepest[s] = depth;
          ++reached[s];
        }
      }
    });
    for (std::size_t s = 0; s < sources.size(); ++s) {
      std::uint64_t diagonal = 0;
      patch_diagonal_hop(g, sources[s], diagonal);
      ecc[base + s] = (reached[s] == n && diagonal != kUnreachable)
                          ? std::max(deepest[s], diagonal)
                          : kUnreachable;
    }
  });
  return ecc;
}

BoundedEccResult bounded_eccentricities(const CsrView& g) {
  const vertex_t n = g.num_vertices();
  BoundedEccResult result;
  result.ecc.assign(n, 0);
  if (n == 0) return result;

  // The pivot bounds |ecc(p) - d| <= ecc(v) <= ecc(p) + d are triangle
  // inequalities over a *symmetric* distance; on a directed graph they are
  // simply false (d(p,v) says nothing about d(v,p)) and the algorithm
  // would return silently wrong values.
  if (!g.is_symmetric())
    throw std::invalid_argument(
        "bounded_eccentricities: pivot bounds require an undirected (symmetric) graph; "
        "use exact_eccentricities");

  std::vector<std::uint64_t> lower(n, 0);
  std::vector<std::uint64_t> upper(n, kUnreachable);
  std::vector<std::uint64_t> upper_next(n, kUnreachable);
  std::vector<std::uint8_t> resolved(n, 0);
  std::uint64_t unresolved = n;

  // Alternate between the vertex with the largest upper bound (tightens the
  // diameter side) and the smallest lower bound (tightens the radius side);
  // start from a max-degree vertex, a good center candidate.
  bool pick_max_upper = false;
  vertex_t pivot = first_argmax(
      n, [](std::size_t) { return true; }, [&g](std::size_t v) { return g.degree(v); });

  while (unresolved > 0) {
    const auto hops = hops_from(g, pivot);
    const std::uint64_t ecc_pivot = max_hop(hops);
    if (ecc_pivot == kUnreachable)
      throw std::invalid_argument("bounded_eccentricities: graph is disconnected");
    ++result.bfs_count;
    if (!resolved[pivot]) {
      result.ecc[pivot] = ecc_pivot;
      resolved[pivot] = 1;
      --unresolved;
    }

    // Triangle-inequality bounds: |ecc(p) - d| <= ecc(v) <= ecc(p) + d,
    // and ecc(v) >= d always.  One parallel pass; chunk partials count
    // newly resolved vertices.
    unresolved -= parallel_reduce(
        std::size_t{0}, n, std::uint64_t{0},
        [&](std::size_t lo, std::size_t hi) {
          std::uint64_t newly = 0;
          for (std::size_t v = lo; v < hi; ++v) {
            if (resolved[v]) continue;
            const std::uint64_t d = hops[v];
            const std::uint64_t lo_candidate =
                std::max(d, ecc_pivot > d ? ecc_pivot - d : d - ecc_pivot);
            lower[v] = std::max(lower[v], lo_candidate);
            upper[v] = std::min(upper[v], ecc_pivot + d);
            if (lower[v] == upper[v]) {
              result.ecc[v] = lower[v];
              resolved[v] = 1;
              ++newly;
            }
          }
          return newly;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; }, /*grain=*/4096);

    // Propagate the edge constraint |ecc(u) - ecc(v)| <= 1 to a fixpoint:
    // upper(v) <= upper(u) + 1 across every edge.  This closes the large
    // plateaus of tied eccentricities that pivot distances alone cannot,
    // cutting the number of BFS sweeps dramatically on small-world graphs.
    // Jacobi sweeps (read `upper`, write `upper_next`, disjoint per
    // vertex) converge to the same unique fixpoint as the sequential
    // edge-order relaxation, so results stay bit-identical.
    bool changed = unresolved > 0;
    while (changed) {
      // std::uint8_t flag (not bool: vector<bool> partials would share
      // words across chunks).
      changed = 0 != parallel_reduce(
                         std::size_t{0}, n, std::uint8_t{0},
                         [&](std::size_t lo, std::size_t hi) {
                           std::uint8_t any = 0;
                           for (std::size_t v = lo; v < hi; ++v) {
                             std::uint64_t best = upper[v];
                             for (const vertex_t u : g.neighbors(v)) {
                               const std::uint64_t cap =
                                   upper[u] == kUnreachable ? kUnreachable : upper[u] + 1;
                               best = std::min(best, cap);
                             }
                             upper_next[v] = best;
                             if (best != upper[v]) any = 1;
                           }
                           return any;
                         },
                         [](std::uint8_t a, std::uint8_t b) {
                           return static_cast<std::uint8_t>(a | b);
                         },
                         /*grain=*/1024);
      upper.swap(upper_next);
    }
    // Resolve everything the fixpoint closed (lower never moves during it).
    unresolved -= parallel_reduce(
        std::size_t{0}, n, std::uint64_t{0},
        [&](std::size_t lo, std::size_t hi) {
          std::uint64_t newly = 0;
          for (std::size_t v = lo; v < hi; ++v) {
            if (resolved[v] || lower[v] != upper[v]) continue;
            result.ecc[v] = lower[v];
            resolved[v] = 1;
            ++newly;
          }
          return newly;
        },
        [](std::uint64_t a, std::uint64_t b) { return a + b; }, /*grain=*/4096);

    if (unresolved == 0) break;
    // Choose the next pivot among unresolved vertices, alternating between
    // the largest upper bound (attacks the periphery, raises lower bounds
    // of everything far away) and the smallest lower bound (attacks the
    // center); ties break toward the larger bound gap, then higher degree.
    pivot = first_argmax(
        n, [&](std::size_t v) { return !resolved[v]; },
        [&](std::size_t w) {
          const std::uint64_t primary = pick_max_upper ? upper[w] : ~lower[w];
          return std::tuple(primary, upper[w] - lower[w], g.degree(w));
        });
    pick_max_upper = !pick_max_upper;
  }
  return result;
}

ApproxEccResult approx_eccentricities(const CsrView& g, std::uint64_t num_pivots) {
  const vertex_t n = g.num_vertices();
  ApproxEccResult result;
  result.lower.assign(n, 0);
  result.upper.assign(n, kUnreachable);
  if (n == 0) return result;
  // Same symmetric-distance requirement as bounded_eccentricities.
  if (!g.is_symmetric())
    throw std::invalid_argument(
        "approx_eccentricities: pivot bounds require an undirected (symmetric) graph; "
        "use exact_eccentricities");
  num_pivots = std::max<std::uint64_t>(1, std::min<std::uint64_t>(num_pivots, n));

  // min distance to any previous pivot, for farthest-point spreading.
  std::vector<std::uint64_t> closest(n, kUnreachable);
  vertex_t pivot = first_argmax(
      n, [](std::size_t) { return true; }, [&g](std::size_t v) { return g.degree(v); });

  for (std::uint64_t round = 0; round < num_pivots; ++round) {
    const auto hops = hops_from(g, pivot);
    const std::uint64_t ecc_pivot = max_hop(hops);
    if (ecc_pivot == kUnreachable)
      throw std::invalid_argument("approx_eccentricities: graph is disconnected");
    ++result.bfs_count;
    // One fused pass: update the bounds and the pivot-distance array AND
    // select the next farthest-point pivot, instead of rescanning all n
    // vertices afterwards.  Chunk partials keep the sequential first-max
    // tie-break.
    const vertex_t farthest = parallel_reduce(
        std::size_t{0}, n, static_cast<vertex_t>(n),
        [&](std::size_t lo, std::size_t hi) {
          vertex_t best = n;
          for (std::size_t v = lo; v < hi; ++v) {
            const std::uint64_t d = hops[v];
            result.lower[v] = std::max(
                result.lower[v], std::max(d, ecc_pivot > d ? ecc_pivot - d : d - ecc_pivot));
            result.upper[v] = std::min(result.upper[v], ecc_pivot + d);
            closest[v] = std::min(closest[v], d);
            if (best == n || closest[v] > closest[best]) best = static_cast<vertex_t>(v);
          }
          return best;
        },
        [&](vertex_t a, vertex_t b) {
          if (a == n) return b;
          if (b == n) return a;
          return closest[b] > closest[a] ? b : a;
        },
        /*grain=*/4096);
    result.lower[pivot] = result.upper[pivot] = ecc_pivot;
    pivot = farthest;
  }
  result.estimate = result.upper;
  return result;
}

std::uint64_t diameter(const CsrView& g) {
  const auto ecc = exact_eccentricities(g);
  std::uint64_t d = 0;
  for (const std::uint64_t e : ecc) {
    if (e == kUnreachable) return kUnreachable;
    d = std::max(d, e);
  }
  return d;
}

std::uint64_t radius(const CsrView& g) {
  const auto ecc = exact_eccentricities(g);
  std::uint64_t r = kUnreachable;
  for (const std::uint64_t e : ecc) r = std::min(r, e);
  return r;
}

}  // namespace kron
