#include "analytics/spectral.hpp"

#include <cmath>
#include <stdexcept>

#include "util/random.hpp"

namespace kron {
namespace {

double dot(const std::vector<double>& x, const std::vector<double>& y) {
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double norm(const std::vector<double>& x) { return std::sqrt(dot(x, x)); }

void normalize(std::vector<double>& x) {
  const double scale = norm(x);
  if (scale == 0.0) return;
  for (double& value : x) value /= scale;
}

std::vector<double> random_unit_vector(std::size_t n, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<double> x(n);
  for (double& value : x) value = rng.uniform() - 0.5;
  normalize(x);
  return x;
}

/// Remove the components of x along each vector in basis (Gram–Schmidt).
void deflate(std::vector<double>& x, const std::vector<std::vector<double>>& basis) {
  for (const auto& b : basis) {
    const double coefficient = dot(x, b);
    for (std::size_t i = 0; i < x.size(); ++i) x[i] -= coefficient * b[i];
  }
}

}  // namespace

void adjacency_multiply(const Csr& g, const std::vector<double>& x, std::vector<double>& y) {
  const vertex_t n = g.num_vertices();
  y.assign(n, 0.0);
  for (vertex_t u = 0; u < n; ++u) {
    double sum = 0.0;
    for (const vertex_t v : g.neighbors(u)) sum += x[v];
    y[u] = sum;
  }
}

SpectralRadiusResult spectral_radius(const Csr& g, double tolerance,
                                     std::uint64_t max_iterations, std::uint64_t seed) {
  SpectralRadiusResult result;
  const vertex_t n = g.num_vertices();
  if (n == 0 || g.num_arcs() == 0) return result;

  std::vector<double> x = random_unit_vector(n, seed);
  std::vector<double> y;
  std::vector<double> z;
  double previous = 0.0;
  for (std::uint64_t iteration = 0; iteration < max_iterations; ++iteration) {
    adjacency_multiply(g, x, y);
    adjacency_multiply(g, y, z);  // z = A² x
    const double rayleigh = dot(x, z);  // converges to ρ(A)²
    const double estimate = std::sqrt(std::max(rayleigh, 0.0));
    result.iterations = iteration + 1;
    result.residual = std::abs(estimate - previous);
    x.swap(z);
    normalize(x);
    if (iteration > 0 && result.residual <= tolerance * std::max(1.0, estimate)) {
      result.value = estimate;
      return result;
    }
    previous = estimate;
  }
  result.value = previous;
  return result;
}

std::vector<double> top_eigenvalue_magnitudes(const Csr& g, std::size_t k, double tolerance,
                                              std::uint64_t max_iterations,
                                              std::uint64_t seed) {
  if (!g.is_symmetric())
    throw std::invalid_argument("top_eigenvalue_magnitudes: graph must be undirected");
  const vertex_t n = g.num_vertices();
  k = std::min<std::size_t>(k, n);
  std::vector<double> magnitudes;
  std::vector<std::vector<double>> basis;  // converged A²-eigenvectors

  for (std::size_t mode = 0; mode < k; ++mode) {
    std::vector<double> x = random_unit_vector(n, seed + mode);
    deflate(x, basis);
    normalize(x);
    std::vector<double> y, z;
    double previous = 0.0;
    for (std::uint64_t iteration = 0; iteration < max_iterations; ++iteration) {
      adjacency_multiply(g, x, y);
      adjacency_multiply(g, y, z);
      deflate(z, basis);  // keep the iterate orthogonal to converged modes
      const double rayleigh = dot(x, z);
      const double estimate = std::sqrt(std::max(rayleigh, 0.0));
      x.swap(z);
      normalize(x);
      if (iteration > 0 && std::abs(estimate - previous) <=
                               tolerance * std::max(1.0, estimate)) {
        previous = estimate;
        break;
      }
      previous = estimate;
    }
    magnitudes.push_back(previous);
    basis.push_back(x);
  }
  return magnitudes;
}

}  // namespace kron
