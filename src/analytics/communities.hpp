// Measured community structure (Def. 13): internal/external edge counts and
// densities of vertex sets, computed directly on a graph.  Self loops are
// excluded from both counts, matching the paper's use of C - I_C in Thm. 6.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace kron {

struct CommunityStats {
  std::uint64_t size = 0;      ///< |S|
  std::uint64_t m_in = 0;      ///< internal undirected edge count
  std::uint64_t m_out = 0;     ///< external (boundary) edge count
  double rho_in = 0.0;         ///< 2 m_in / (|S|(|S|-1))
  double rho_out = 0.0;        ///< m_out / (|S|(n - |S|))
};

/// Stats for one vertex set.
[[nodiscard]] CommunityStats community_stats(const Csr& g,
                                             const std::vector<vertex_t>& members);

/// Stats for every part of a partition given as a block-id-per-vertex
/// vector with ids 0..k-1.
[[nodiscard]] std::vector<CommunityStats> partition_stats(
    const Csr& g, const std::vector<std::uint64_t>& block_of, std::uint64_t num_blocks);

/// Density helpers (shared with the ground-truth side).
[[nodiscard]] double internal_density(std::uint64_t m_in, std::uint64_t size);
[[nodiscard]] double external_density(std::uint64_t m_out, std::uint64_t size,
                                      std::uint64_t n_total);

}  // namespace kron
