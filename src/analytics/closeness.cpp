#include "analytics/closeness.hpp"

#include <array>

#include "analytics/bfs.hpp"
#include "analytics/msbfs.hpp"

namespace kron {
namespace {

// Canonical evaluation order for ζ: fold the hop-count histogram smallest
// depth first, one fused multiply per depth.  Both the single-source and
// the multi-source evaluator build the same histogram, so their doubles
// are bit-identical — the determinism contract the parallel analytics
// suite pins (DESIGN.md §10).
double fold_reciprocal_hops(const std::vector<std::uint64_t>& count_at_depth) {
  double sum = 0.0;
  for (std::size_t d = 1; d < count_at_depth.size(); ++d)
    if (count_at_depth[d] != 0)
      sum += static_cast<double>(count_at_depth[d]) / static_cast<double>(d);
  return sum;
}

void record_hop(std::vector<std::uint64_t>& histogram, std::uint64_t hop) {
  if (histogram.size() <= hop) histogram.resize(hop + 1, 0);
  ++histogram[hop];
}

}  // namespace

double closeness(const CsrView& g, vertex_t i) {
  const auto hops = hops_from(g, i);
  std::vector<std::uint64_t> histogram;
  for (const std::uint64_t h : hops)
    if (h != kUnreachable) record_hop(histogram, h);
  return fold_reciprocal_hops(histogram);
}

std::vector<double> all_closeness(const CsrView& g) {
  const vertex_t n = g.num_vertices();
  std::vector<double> scores(n, 0.0);
  if (n == 0) return scores;
  const MsBfs engine(g);
  msbfs_all_sources(g, [&](vertex_t base, std::span<const vertex_t> sources) {
    std::array<std::vector<std::uint64_t>, MsBfs::kBatchSize> histograms;
    engine.run_batch(sources, [&](std::uint64_t depth, std::span<const vertex_t> active,
                                  const std::uint64_t* words) {
      if (depth == 0) return;  // the diagonal term follows Def. 9, below
      for (const vertex_t v : active) {
        std::uint64_t word = words[v];
        while (word != 0) {
          const auto s = static_cast<std::size_t>(__builtin_ctzll(word));
          word &= word - 1;
          record_hop(histograms[s], depth);
        }
      }
    });
    for (std::size_t s = 0; s < sources.size(); ++s) {
      std::uint64_t diagonal = 0;
      patch_diagonal_hop(g, sources[s], diagonal);
      if (diagonal != kUnreachable) record_hop(histograms[s], diagonal);
      scores[base + s] = fold_reciprocal_hops(histograms[s]);
    }
  });
  return scores;
}

}  // namespace kron
