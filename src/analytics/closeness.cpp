#include "analytics/closeness.hpp"

#include "analytics/bfs.hpp"

namespace kron {

double closeness(const Csr& g, vertex_t i) {
  const auto hops = hops_from(g, i);
  double sum = 0.0;
  for (const std::uint64_t h : hops) {
    if (h == kUnreachable) continue;
    sum += 1.0 / static_cast<double>(h);
  }
  return sum;
}

std::vector<double> all_closeness(const Csr& g) {
  std::vector<double> scores(g.num_vertices());
  for (vertex_t v = 0; v < g.num_vertices(); ++v) scores[v] = closeness(g, v);
  return scores;
}

}  // namespace kron
