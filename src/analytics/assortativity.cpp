#include "analytics/assortativity.hpp"

#include <cmath>

namespace kron {

double degree_assortativity(const Csr& g) {
  // Pearson correlation of (deg(u), deg(v)) over arcs (u, v), u != v.
  // Single pass accumulating the standard sums.
  double count = 0;
  double sum_x = 0, sum_y = 0, sum_xy = 0, sum_x2 = 0, sum_y2 = 0;
  for (vertex_t u = 0; u < g.num_vertices(); ++u) {
    const auto du = static_cast<double>(g.degree_no_loop(u));
    for (const vertex_t v : g.neighbors(u)) {
      if (u == v) continue;
      const auto dv = static_cast<double>(g.degree_no_loop(v));
      count += 1;
      sum_x += du;
      sum_y += dv;
      sum_xy += du * dv;
      sum_x2 += du * du;
      sum_y2 += dv * dv;
    }
  }
  if (count < 2) return 0.0;
  const double cov = sum_xy / count - (sum_x / count) * (sum_y / count);
  const double var_x = sum_x2 / count - (sum_x / count) * (sum_x / count);
  const double var_y = sum_y2 / count - (sum_y / count) * (sum_y / count);
  const double denom = std::sqrt(var_x * var_y);
  if (denom <= 0.0) return 0.0;
  return cov / denom;
}

}  // namespace kron
