// Degree assortativity (Newman, the paper's ref. [20]).
//
// Thm. 2's discussion predicts the edge-clustering law collapses exactly
// when factors have "relatively negative assortativity (more than expected
// high-degree vertices connected to low-degree vertices)".  This analytic
// quantifies that: the Pearson correlation of endpoint degrees over all
// (directed) arcs, in [-1, 1]; negative = disassortative.
#pragma once

#include "graph/csr.hpp"

namespace kron {

/// Degree assortativity coefficient.  Self loops are excluded; returns 0
/// for graphs with fewer than 2 edges or zero degree variance (regular
/// graphs).
[[nodiscard]] double degree_assortativity(const Csr& g);

}  // namespace kron
