// Vertex eccentricity (Def. 11): ε(i) = max_j hops(i, j).
//
// Two implementations:
//  * exact_eccentricities — one BFS per vertex, O(|V||E|); the trusted
//    reference for factors and small products.
//  * bounded_eccentricities — a Takes–Kosters-style bounding algorithm,
//    standing in for the distributed exact-eccentricity algorithms of the
//    paper's reference [3]: BFS from a few well-chosen roots, propagate
//    lower/upper bounds ecc(u) ± d(u,v) until every vertex's bounds meet.
//    Exact results, usually far fewer than |V| BFS runs on small-world
//    graphs.
//
// Hop-count semantics follow Def. 9 (see analytics/bfs.hpp): the diagonal
// term hops(i,i) participates in the max, which matters only for degenerate
// graphs; with full self loops hops(i,i)=1 and the value agrees with the
// classical eccentricity.  Disconnected graphs have infinite eccentricity;
// we report kUnreachable for vertices that cannot reach the whole graph.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"

namespace kron {

/// O(|V||E|) exact eccentricities via BFS from every vertex.
[[nodiscard]] std::vector<std::uint64_t> exact_eccentricities(const CsrView& g);

struct BoundedEccResult {
  std::vector<std::uint64_t> ecc;
  std::uint64_t bfs_count = 0;  ///< BFS runs actually performed.
};

/// Exact eccentricities with the bounding strategy; requires a connected,
/// undirected graph (throws otherwise — the pivot triangle inequalities
/// assume symmetric distances).  `bfs_count` reports how many BFS sweeps
/// were needed — the quantity the paper's reference [3] optimises.
[[nodiscard]] BoundedEccResult bounded_eccentricities(const CsrView& g);

/// Approximate eccentricities from a handful of pivot BFS sweeps — the
/// flavor of estimate the paper's Fig. 1 uses for the direct side
/// ("30% of vertices may be estimating a value 1 greater than actual").
/// From each pivot s with exact ecc(s):
///   lower(v) = max_s max(d(s,v), ecc(s) - d(s,v))   (never exceeds ecc)
///   upper(v) = min_s (ecc(s) + d(s,v))              (never undershoots)
/// `estimate` is the upper bound, whose error is observed to be mostly
/// 0 or +1 on small-world graphs with a few well-spread pivots.
struct ApproxEccResult {
  std::vector<std::uint64_t> lower;
  std::vector<std::uint64_t> upper;
  std::vector<std::uint64_t> estimate;  ///< == upper
  std::uint64_t bfs_count = 0;
};

/// Requires a connected, undirected graph (throws otherwise).  Pivots: the
/// max-degree vertex, then repeatedly the vertex farthest from all previous
/// pivots (2-sweep style spreading); `num_pivots` BFS total.
[[nodiscard]] ApproxEccResult approx_eccentricities(const CsrView& g, std::uint64_t num_pivots);

/// Graph diameter (Def. 10): max eccentricity.
[[nodiscard]] std::uint64_t diameter(const CsrView& g);

/// Graph radius: min eccentricity.
[[nodiscard]] std::uint64_t radius(const CsrView& g);

}  // namespace kron
