// Bipartiteness testing (BFS 2-coloring).
//
// Needed by the connectivity ground truth (core/connectivity_gt.hpp):
// Weichsel's theorem [paper ref. 1] makes the component count of a
// Kronecker product depend on whether the factors contain an odd closed
// walk.  A self loop is an odd closed walk, so a graph with any loop is
// treated as non-bipartite here.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/csr.hpp"

namespace kron {

/// A proper 2-coloring (side 0/1 per vertex) if the graph is bipartite,
/// nullopt otherwise.  Works per connected component; isolated vertices
/// get side 0.
[[nodiscard]] std::optional<std::vector<std::uint8_t>> bipartition(const Csr& g);

[[nodiscard]] bool is_bipartite(const Csr& g);

}  // namespace kron
