#include "analytics/betweenness.hpp"

#include <vector>

namespace kron {

std::vector<double> betweenness_centrality(const Csr& g) {
  const vertex_t n = g.num_vertices();
  std::vector<double> centrality(n, 0.0);

  // Brandes: one BFS per source with path counting, then dependency
  // accumulation in reverse BFS order.
  std::vector<std::uint64_t> distance(n);
  std::vector<double> sigma(n);       // shortest-path counts
  std::vector<double> delta(n);       // dependencies
  std::vector<vertex_t> order;        // vertices in BFS discovery order
  std::vector<std::vector<vertex_t>> predecessors(n);
  constexpr std::uint64_t kInf = ~std::uint64_t{0};

  for (vertex_t source = 0; source < n; ++source) {
    std::fill(distance.begin(), distance.end(), kInf);
    std::fill(sigma.begin(), sigma.end(), 0.0);
    std::fill(delta.begin(), delta.end(), 0.0);
    for (auto& preds : predecessors) preds.clear();
    order.clear();

    distance[source] = 0;
    sigma[source] = 1.0;
    std::vector<vertex_t> frontier{source};
    std::size_t head = 0;
    order.push_back(source);
    while (head < order.size()) {
      const vertex_t u = order[head++];
      for (const vertex_t v : g.neighbors(u)) {
        if (u == v) continue;
        if (distance[v] == kInf) {
          distance[v] = distance[u] + 1;
          order.push_back(v);
        }
        if (distance[v] == distance[u] + 1) {
          sigma[v] += sigma[u];
          predecessors[v].push_back(u);
        }
      }
    }

    for (std::size_t i = order.size(); i-- > 1;) {  // skip the source itself
      const vertex_t w = order[i];
      for (const vertex_t u : predecessors[w])
        delta[u] += sigma[u] / sigma[w] * (1.0 + delta[w]);
      centrality[w] += delta[w];
    }
    // The source's own dependency is accumulated when it appears as a
    // predecessor; nothing to add for i == 0.
  }

  // Each unordered pair was counted from both endpoints.
  for (double& value : centrality) value /= 2.0;
  return centrality;
}

}  // namespace kron
