// Clustering coefficients (Def. 7).
//
// Vertex: η(i) = 2 t_i / (d_i (d_i - 1)); edge: ξ(i,j) = Δ_ij /
// (min(d_i, d_j) - 1).  Degrees are loop-free (`d_i` in the paper's
// formulas always refers to the simple part of the graph).  Vertices of
// degree < 2 have undefined η; we report 0 for them, and likewise ξ = 0
// when min degree < 2, matching the usual convention.
#pragma once

#include <vector>

#include "analytics/triangles.hpp"
#include "graph/csr.hpp"

namespace kron {

/// η at one vertex given its triangle count.
[[nodiscard]] double vertex_clustering(std::uint64_t triangles, std::uint64_t degree);

/// ξ at one edge given its triangle count and endpoint degrees.
[[nodiscard]] double edge_clustering(std::uint64_t edge_triangles, std::uint64_t deg_u,
                                     std::uint64_t deg_v);

/// η for every vertex (computes a triangle census internally).
[[nodiscard]] std::vector<double> all_vertex_clustering(const Csr& g);

/// η for every vertex from a precomputed census.
[[nodiscard]] std::vector<double> all_vertex_clustering(const Csr& g,
                                                        const TriangleCounts& counts);

/// ξ aligned with the graph's arc order, from a precomputed census.
[[nodiscard]] std::vector<double> all_edge_clustering(const Csr& g,
                                                      const TriangleCounts& counts);

/// Wedge (open two-path) count: Σ_v d_v (d_v - 1) / 2, loop-free degrees.
[[nodiscard]] std::uint64_t wedge_count(const Csr& g);

/// Global transitivity: 3 τ / wedges (0 if the graph has no wedges).
[[nodiscard]] double transitivity(const Csr& g);

}  // namespace kron
