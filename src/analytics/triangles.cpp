#include "analytics/triangles.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/parallel.hpp"
#include "util/trace.hpp"

namespace kron {
namespace {

// Vertex chunk boundaries giving roughly equal shares of forward arcs (the
// enumeration scans forward positions, so arc share tracks work share far
// better than vertex share on skewed degree sequences).
std::vector<vertex_t> arc_balanced_boundaries(const ForwardAdjacency& fwd, std::size_t chunks) {
  const auto n = static_cast<vertex_t>(fwd.offsets.size() - 1);
  const std::uint64_t total = fwd.offsets[n];
  std::vector<vertex_t> bounds(chunks + 1, n);
  bounds[0] = 0;
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::uint64_t share = total / chunks * c;
    const auto it = std::lower_bound(fwd.offsets.begin(), fwd.offsets.end(), share);
    auto v = static_cast<vertex_t>(it - fwd.offsets.begin());
    bounds[c] = std::clamp(v, bounds[c - 1], n);
  }
  return bounds;
}

// Below this many forward arcs the per-thread n-sized accumulators cost
// more than they save; run one chunk.
constexpr std::uint64_t kSequentialArcs = 2048;

std::size_t pick_chunks(const ForwardAdjacency& fwd) {
  const auto threads = static_cast<std::size_t>(ThreadPool::instance().num_threads());
  if (threads <= 1 || fwd.targets.size() < kSequentialArcs) return 1;
  return threads;
}

}  // namespace

ForwardAdjacency build_forward_adjacency(const CsrView& g) {
  TRACE_SPAN("triangles.build");
  const vertex_t n = g.num_vertices();
  // Rank vertices by (loop-free degree, id); orient each edge from lower to
  // higher rank.  Forward lists then have length O(sqrt(m)) max on simple
  // graphs.
  std::vector<std::uint64_t> rank(n);
  {
    std::vector<vertex_t> order(n);
    for (vertex_t v = 0; v < n; ++v) order[v] = v;
    std::sort(order.begin(), order.end(), [&g](vertex_t a, vertex_t b) {
      const auto da = g.degree_no_loop(a);
      const auto db = g.degree_no_loop(b);
      return da != db ? da < db : a < b;
    });
    for (std::uint64_t i = 0; i < n; ++i) rank[order[i]] = i;
  }

  ForwardAdjacency fwd;
  fwd.offsets.assign(n + 1, 0);
  parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      std::uint64_t count = 0;
      for (const vertex_t v : g.neighbors(static_cast<vertex_t>(u)))
        if (u != v && rank[u] < rank[v]) ++count;
      fwd.offsets[u + 1] = count;
    }
  });
  for (vertex_t v = 0; v < n; ++v) fwd.offsets[v + 1] += fwd.offsets[v];

  fwd.targets.resize(fwd.offsets[n]);
  fwd.source_arc.resize(fwd.offsets[n]);
  parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      std::uint64_t cursor = fwd.offsets[u];
      const auto row = g.neighbors(static_cast<vertex_t>(u));
      const std::uint64_t row_base = g.row_offset(static_cast<vertex_t>(u));
      for (std::size_t k = 0; k < row.size(); ++k) {
        const vertex_t v = row[k];
        if (u == v || rank[u] >= rank[v]) continue;
        fwd.targets[cursor] = v;
        fwd.source_arc[cursor] = row_base + k;
        ++cursor;
      }
    }
  });
  return fwd;
}

TriangleCounts count_triangles(const CsrView& g) {
  const vertex_t n = g.num_vertices();
  TriangleCounts counts;
  counts.per_vertex.assign(n, 0);
  counts.per_arc.assign(g.num_arcs(), 0);

  const ForwardAdjacency fwd = build_forward_adjacency(g);
  const std::uint64_t num_forward = fwd.targets.size();
  const std::size_t chunks = pick_chunks(fwd);
  const auto bounds = arc_balanced_boundaries(fwd, chunks);

  // Per-thread accumulators — the hot loop touches no shared state, so no
  // atomics; integer partials summed in chunk-index order afterwards are
  // order-free anyway.
  struct Partial {
    std::vector<std::uint64_t> per_vertex;
    std::vector<std::uint64_t> per_forward;
    std::uint64_t total = 0;
  };
  std::vector<Partial> partials(chunks);
  ThreadPool::instance().run_tasks(chunks, [&](std::size_t c) {
    TRACE_SPAN("triangles.enumerate");
    Partial& p = partials[c];
    p.per_vertex.assign(n, 0);
    p.per_forward.assign(num_forward, 0);
    enumerate_forward_triangles(fwd, bounds[c], bounds[c + 1],
                    [&](vertex_t u, vertex_t v, vertex_t w, std::uint64_t p_uv,
                        std::uint64_t p_uw, std::uint64_t p_vw) {
                      ++p.total;
                      ++p.per_vertex[u];
                      ++p.per_vertex[v];
                      ++p.per_vertex[w];
                      ++p.per_forward[p_uv];
                      ++p.per_forward[p_uw];
                      ++p.per_forward[p_vw];
                    });
  });

  TRACE_SPAN("triangles.reduce");
  for (const Partial& p : partials) counts.total += p.total;
  parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t v = lo; v < hi; ++v)
      for (const Partial& p : partials) counts.per_vertex[v] += p.per_vertex[v];
  });
  std::vector<std::uint64_t> per_forward(num_forward, 0);
  parallel_for(0, num_forward, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k)
      for (const Partial& p : partials) per_forward[k] += p.per_forward[k];
  });

  // Scatter forward-arc counts onto both Csr arcs of each edge.  Each
  // undirected edge has exactly one forward position, so every write below
  // targets a distinct arc slot — safe to run chunked.
  parallel_for(0, n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t u = lo; u < hi; ++u) {
      for (std::uint64_t k = fwd.offsets[u]; k < fwd.offsets[u + 1]; ++k) {
        const std::uint64_t delta = per_forward[k];
        counts.per_arc[fwd.source_arc[k]] = delta;
        counts.per_arc[g.arc_index(fwd.targets[k], static_cast<vertex_t>(u))] = delta;
      }
    }
  });
  return counts;
}

std::uint64_t edge_triangle_count(const CsrView& g, const TriangleCounts& counts, vertex_t u,
                                  vertex_t v) {
  return counts.per_arc[g.arc_index(u, v)];
}

std::uint64_t global_triangle_count(const CsrView& g) {
  const ForwardAdjacency fwd = build_forward_adjacency(g);
  const std::size_t chunks = pick_chunks(fwd);
  const auto bounds = arc_balanced_boundaries(fwd, chunks);
  std::vector<std::uint64_t> totals(chunks, 0);
  ThreadPool::instance().run_tasks(chunks, [&](std::size_t c) {
    TRACE_SPAN("triangles.enumerate");
    std::uint64_t t = 0;
    enumerate_forward_triangles(fwd, bounds[c], bounds[c + 1],
                    [&](vertex_t, vertex_t, vertex_t, std::uint64_t, std::uint64_t,
                        std::uint64_t) { ++t; });
    totals[c] = t;
  });
  std::uint64_t total = 0;
  for (const std::uint64_t t : totals) total += t;
  return total;
}

}  // namespace kron
