#include "analytics/triangles.hpp"

#include <algorithm>
#include <stdexcept>

namespace kron {

TriangleCounts count_triangles(const Csr& g) {
  TriangleCounts counts;
  counts.per_vertex.assign(g.num_vertices(), 0);
  counts.per_arc.assign(g.num_arcs(), 0);
  for_each_triangle(g, [&](vertex_t a, vertex_t b, vertex_t c) {
    ++counts.total;
    ++counts.per_vertex[a];
    ++counts.per_vertex[b];
    ++counts.per_vertex[c];
    for (const auto& [u, v] : {std::pair{a, b}, std::pair{a, c}, std::pair{b, c}}) {
      ++counts.per_arc[g.arc_index(u, v)];
      ++counts.per_arc[g.arc_index(v, u)];
    }
  });
  return counts;
}

std::uint64_t edge_triangle_count(const Csr& g, const TriangleCounts& counts, vertex_t u,
                                  vertex_t v) {
  return counts.per_arc[g.arc_index(u, v)];
}

std::uint64_t global_triangle_count(const Csr& g) {
  std::uint64_t total = 0;
  for_each_triangle(g, [&total](vertex_t, vertex_t, vertex_t) { ++total; });
  return total;
}

}  // namespace kron
