// Frontier machinery for the hybrid (direction-optimising) BFS.
//
// A BFS frontier lives in one of two representations:
//  * a *queue* — the vertex list of the current level, cheap to expand when
//    the frontier is a small fraction of the graph (top-down), and
//  * a *bitmap* — one bit per vertex, cheap to probe when most of the graph
//    is active and unvisited vertices can scan their own neighborhoods for
//    any parent in the frontier (bottom-up, Beamer et al.).
//
// The engine switches between the two with the classic degree-weighted
// heuristic: go bottom-up when the frontier's out-degree sum exceeds
// 1/kAlpha of the edges still incident to unvisited vertices, and return
// top-down when the frontier shrinks below n/kBeta vertices.  Bottom-up
// probes neighbor lists as *in*-edges, which is only sound on symmetric
// graphs; symmetry is established lazily (at the first switch attempt, once
// per engine) so directed traversals and small/deep graphs never pay for
// the check and simply stay top-down.
//
// Determinism: the level array is the only output, and BFS level numbers
// are a pure function of the graph — the top-down expansion claims each
// vertex exactly once (CAS on its level slot) with the same depth no matter
// which thread wins, and the bottom-up sweep writes bitmap words chunked on
// 64-vertex boundaries, so no two chunks touch the same word.  Levels are
// therefore bit-identical for every thread count, matching the sequential
// reference (DESIGN.md §10).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

#include "analytics/bfs.hpp"
#include "graph/csr.hpp"
#include "util/bitset.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace kron {

/// Reusable hybrid BFS over one graph.  Construction is free; the first
/// traversal that wants to go bottom-up performs (and caches) the symmetry
/// check, so repeated runs from many sources amortise it.
class HybridBfs {
 public:
  explicit HybridBfs(const CsrView& g) : g_(g) {}

  /// Direction-switch parameters (Beamer's α and β).
  static constexpr std::uint64_t kAlpha = 14;
  static constexpr std::uint64_t kBeta = 24;

  /// Below this frontier degree-sum the top-down step skips the parallel
  /// machinery entirely — small levels are cheaper claimed sequentially.
  static constexpr std::uint64_t kSequentialDegree = 2048;

  /// Fill `level` with BFS level numbers from `source` (kUnreachable where
  /// disconnected).  Bit-identical to the sequential frontier walk for
  /// every thread count.
  void levels(vertex_t source, std::vector<std::uint64_t>& level) {
    const CsrView& g = g_;
    const vertex_t n = g.num_vertices();
    if (source >= n) throw std::out_of_range("bfs_levels: bad source");
    level.assign(n, kUnreachable);
    level[source] = 0;

    std::vector<vertex_t> frontier{source};
    std::vector<vertex_t> next;
    std::uint64_t frontier_degree = g.degree(source);
    // Degree mass still incident to unvisited vertices (the m_u of the
    // switch heuristic); decremented as vertices are claimed.
    std::uint64_t unexplored_degree = g.num_arcs() - frontier_degree;
    Bitset current_bitmap;
    Bitset next_bitmap;
    bool bottom_up = false;
    std::uint64_t depth = 0;

    while (true) {
      ++depth;
      if (!bottom_up && frontier_degree * kAlpha > unexplored_degree && symmetric()) {
        bottom_up = true;
        current_bitmap = Bitset(n);
        next_bitmap = Bitset(n);
        for (const vertex_t u : frontier) current_bitmap.set(u);
      }

      if (bottom_up) {
        const auto [newly, newly_degree] = bottom_up_step(level, current_bitmap, next_bitmap, depth);
        if (newly == 0) break;
        unexplored_degree -= newly_degree;
        std::swap(current_bitmap, next_bitmap);
        next_bitmap.reset();
        if (newly < n / kBeta) {
          // Shrink back to a queue for the next level.
          bottom_up = false;
          frontier_degree = collect_frontier(level, depth, frontier);
        }
      } else {
        frontier_degree = top_down_step(level, frontier, frontier_degree, next, depth);
        frontier.swap(next);
        if (frontier.empty()) break;
        unexplored_degree -= frontier_degree;
      }
    }
  }

 private:
  [[nodiscard]] bool symmetric() {
    if (symmetric_ < 0) symmetric_ = g_.is_symmetric() ? 1 : 0;
    return symmetric_ == 1;
  }

  /// Expand `frontier` into `next`; returns the degree sum of `next`.
  /// Claims go through a CAS on the level slot, so every vertex is pushed
  /// by exactly one chunk; chunk buffers are concatenated in chunk order.
  std::uint64_t top_down_step(std::vector<std::uint64_t>& level,
                              const std::vector<vertex_t>& frontier, std::uint64_t frontier_degree,
                              std::vector<vertex_t>& next, std::uint64_t depth) {
    const CsrView& g = g_;
    next.clear();
    ThreadPool& pool = ThreadPool::instance();
    const auto threads = static_cast<std::size_t>(pool.num_threads());
    std::uint64_t degree_sum = 0;
    if (threads <= 1 || frontier_degree < kSequentialDegree) {
      for (const vertex_t u : frontier) {
        for (const vertex_t v : g.neighbors(u)) {
          if (level[v] == kUnreachable) {
            level[v] = depth;
            next.push_back(v);
            degree_sum += g.degree(v);
          }
        }
      }
      return degree_sum;
    }

    std::size_t chunks = threads;
    if (chunks > frontier.size()) chunks = frontier.size();
    const std::size_t per_chunk = (frontier.size() + chunks - 1) / chunks;
    std::vector<std::vector<vertex_t>> buffers(chunks);
    std::vector<std::uint64_t> degrees(chunks, 0);
    pool.run_tasks(chunks, [&](std::size_t c) {
      const std::size_t b = c * per_chunk;
      const std::size_t e = std::min(b + per_chunk, frontier.size());
      auto& buffer = buffers[c];
      std::uint64_t local_degree = 0;
      for (std::size_t i = b; i < e; ++i) {
        for (const vertex_t v : g.neighbors(frontier[i])) {
          std::atomic_ref<std::uint64_t> slot(level[v]);
          if (slot.load(std::memory_order_relaxed) != kUnreachable) continue;
          std::uint64_t expected = kUnreachable;
          if (slot.compare_exchange_strong(expected, depth, std::memory_order_relaxed)) {
            buffer.push_back(v);
            local_degree += g.degree(v);
          }
        }
      }
      degrees[c] = local_degree;
    });
    for (std::size_t c = 0; c < chunks; ++c) {
      next.insert(next.end(), buffers[c].begin(), buffers[c].end());
      degree_sum += degrees[c];
    }
    return degree_sum;
  }

  /// One bottom-up sweep: every unvisited vertex scans its neighbors for a
  /// parent in `current`.  Chunked on whole bitmap words, so writes to
  /// `next` and `level` are chunk-disjoint.  Returns {newly visited, their
  /// degree sum}.
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> bottom_up_step(
      std::vector<std::uint64_t>& level, const Bitset& current, Bitset& next,
      std::uint64_t depth) {
    const CsrView& g = g_;
    const vertex_t n = g.num_vertices();
    const std::size_t words = current.num_words();
    using Partial = std::pair<std::uint64_t, std::uint64_t>;
    return parallel_reduce(
        std::size_t{0}, words, Partial{0, 0},
        [&](std::size_t lo, std::size_t hi) {
          Partial partial{0, 0};
          for (std::size_t w = lo; w < hi; ++w) {
            const vertex_t base = static_cast<vertex_t>(w) * 64;
            const vertex_t end = std::min<vertex_t>(base + 64, n);
            std::uint64_t word = next.word(w);
            for (vertex_t v = base; v < end; ++v) {
              if (level[v] != kUnreachable) continue;
              // "Does v have any parent in the frontier?" — neighbor ids are
              // bit indices into the frontier bitmap, probed 8 lanes at a
              // time by the vectorised gather-test (util/simd.hpp).
              const auto row = g.neighbors(v);
              if (simd::any_bit_set(current.words(), row.data(), row.size())) {
                level[v] = depth;
                word |= 1ULL << (v & 63);
                ++partial.first;
                partial.second += g.degree(v);
              }
            }
            next.set_word(w, word);
          }
          return partial;
        },
        [](Partial a, const Partial& b) {
          a.first += b.first;
          a.second += b.second;
          return a;
        },
        /*grain=*/256);
  }

  /// Rebuild the queue representation from the level array (vertices at
  /// exactly `depth`), ascending by vertex id; returns its degree sum.
  std::uint64_t collect_frontier(const std::vector<std::uint64_t>& level, std::uint64_t depth,
                                 std::vector<vertex_t>& frontier) {
    const CsrView& g = g_;
    const vertex_t n = g.num_vertices();
    // Vectorised equality scan + index compaction (vertex_t is the kernel's
    // index type, so the frontier buffer is written in place).
    frontier.resize(n);
    frontier.resize(simd::collect_equal(level.data(), n, depth, frontier.data()));
    std::uint64_t degree_sum = 0;
    for (const vertex_t v : frontier) degree_sum += g.degree(v);
    return degree_sum;
  }

  CsrView g_;
  int symmetric_ = -1;  // lazy tri-state: -1 unknown, 0 directed, 1 symmetric
};

}  // namespace kron
