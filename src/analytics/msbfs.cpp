#include "analytics/msbfs.hpp"

namespace kron {

MsBfs::MsBfs(const CsrView& g) : g_(g) {
  if (g.is_symmetric()) return;  // out-lists double as in-lists
  // Counting-sort transpose: in-neighbor lists for the pull sweep, sorted
  // by source id (inherited from CSR row order).
  const vertex_t n = g.num_vertices();
  rev_offsets_.assign(n + 1, 0);
  for (vertex_t u = 0; u < n; ++u)
    for (const vertex_t v : g.neighbors(u)) ++rev_offsets_[v + 1];
  for (vertex_t v = 0; v < n; ++v) rev_offsets_[v + 1] += rev_offsets_[v];
  rev_targets_.resize(g.num_arcs());
  std::vector<std::uint64_t> cursor(rev_offsets_.begin(), rev_offsets_.end() - 1);
  for (vertex_t u = 0; u < n; ++u)
    for (const vertex_t v : g.neighbors(u)) rev_targets_[cursor[v]++] = u;
}

}  // namespace kron
