// Betweenness centrality (Brandes' algorithm, the paper's ref. [24]).
//
// The paper lists betweenness among the expensive distance-based metrics
// motivating ground-truth generation, but derives no Kronecker formula for
// it (shortest-path *counts* do not factor through the max-law the way
// distances do).  It is included as a reference analytic so benchmark
// consumers can decorate Kronecker graphs with it; exactness is validated
// against hand-computed values on structured graphs in the tests.
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace kron {

/// Exact betweenness centrality of every vertex (unnormalised, counting
/// each unordered pair once — the standard undirected convention).  Self
/// loops are ignored.  O(|V||E|) time, O(|V| + |E|) space (Brandes).
[[nodiscard]] std::vector<double> betweenness_centrality(const Csr& g);

}  // namespace kron
