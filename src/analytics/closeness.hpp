// Closeness centrality (Def. 12): ζ(i) = Σ_j 1 / hops(i, j).
//
// Note the paper's definition sums reciprocal hop counts (what much of the
// literature calls *harmonic* centrality) over every j ∈ V, including j = i;
// with full self loops hops(i, i) = 1 and the diagonal contributes 1.
// Unreachable vertices contribute 0 (1/∞).
#pragma once

#include <vector>

#include "graph/csr.hpp"

namespace kron {

/// ζ(i) for one vertex: a single BFS, O(|E|).
[[nodiscard]] double closeness(const CsrView& g, vertex_t i);

/// ζ for all vertices via bit-parallel multi-source BFS — ⌈|V|/64⌉
/// word-parallel sweeps scheduled across the thread pool, bit-identical to
/// calling `closeness` per vertex (both evaluators fold the hop histogram
/// in the same canonical order).
[[nodiscard]] std::vector<double> all_closeness(const CsrView& g);

}  // namespace kron
