#include "analytics/bfs.hpp"

#include <stdexcept>

namespace kron {

std::vector<std::uint64_t> bfs_levels(const Csr& g, vertex_t source) {
  if (source >= g.num_vertices()) throw std::out_of_range("bfs_levels: bad source");
  std::vector<std::uint64_t> level(g.num_vertices(), kUnreachable);
  std::vector<vertex_t> frontier{source};
  std::vector<vertex_t> next;
  level[source] = 0;
  std::uint64_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const vertex_t u : frontier) {
      for (const vertex_t v : g.neighbors(u)) {
        if (level[v] == kUnreachable) {
          level[v] = depth;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return level;
}

std::vector<std::uint64_t> hops_from(const Csr& g, vertex_t source) {
  std::vector<std::uint64_t> hops = bfs_levels(g, source);
  if (g.has_loop(source)) {
    hops[source] = 1;
  } else if (g.degree(source) > 0) {
    hops[source] = 2;  // out and back over any incident edge
  } else {
    hops[source] = kUnreachable;
  }
  return hops;
}

std::vector<std::uint64_t> all_pairs_hops(const Csr& g) {
  const vertex_t n = g.num_vertices();
  std::vector<std::uint64_t> matrix(n * n);
  for (vertex_t i = 0; i < n; ++i) {
    const auto row = hops_from(g, i);
    std::copy(row.begin(), row.end(), matrix.begin() + static_cast<std::ptrdiff_t>(i * n));
  }
  return matrix;
}

}  // namespace kron
