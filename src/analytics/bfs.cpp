#include "analytics/bfs.hpp"

#include <stdexcept>
#include <string>

#include "analytics/frontier.hpp"
#include "analytics/msbfs.hpp"
#include "util/overflow.hpp"

namespace kron {

std::vector<std::uint64_t> bfs_levels(const CsrView& g, vertex_t source) {
  std::vector<std::uint64_t> level;
  HybridBfs(g).levels(source, level);
  return level;
}

std::vector<std::uint64_t> hops_from(const CsrView& g, vertex_t source) {
  std::vector<std::uint64_t> hops = bfs_levels(g, source);
  patch_diagonal_hop(g, source, hops[source]);
  return hops;
}

void patch_diagonal_hop(const CsrView& g, vertex_t source, std::uint64_t& hop) {
  if (g.has_loop(source)) {
    hop = 1;
  } else if (g.degree(source) > 0) {
    hop = 2;  // out and back over any incident edge
  } else {
    hop = kUnreachable;
  }
}

std::vector<std::uint64_t> all_pairs_hops(const CsrView& g) {
  const vertex_t n = g.num_vertices();
  std::uint64_t cells = 0;
  try {
    cells = checked_mul(n, n);
  } catch (const std::overflow_error&) {
    throw std::overflow_error("all_pairs_hops: n*n hop matrix overflows 64 bits (n = " +
                              std::to_string(n) + "); use hops_from on selected rows instead");
  }
  std::vector<std::uint64_t> matrix(cells, kUnreachable);
  const MsBfs engine(g);
  msbfs_all_sources(g, [&](vertex_t base, std::span<const vertex_t> sources) {
    engine.run_batch(sources, [&](std::uint64_t depth, std::span<const vertex_t> active,
                                  const std::uint64_t* words) {
      for (const vertex_t v : active) {
        std::uint64_t word = words[v];
        while (word != 0) {
          const auto s = static_cast<std::uint64_t>(__builtin_ctzll(word));
          word &= word - 1;
          matrix[(base + s) * n + v] = depth;
        }
      }
    });
  });
  for (vertex_t i = 0; i < n; ++i) patch_diagonal_hop(g, i, matrix[i * n + i]);
  return matrix;
}

}  // namespace kron
