// Monotonic wall-clock timer for benches and examples.
#pragma once

#include <chrono>

namespace kron {

class Timer {
 public:
  Timer() noexcept : start_(clock::now()) {}

  /// Restart the timer.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace kron
