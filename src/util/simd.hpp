// Portable SIMD layer for the known hot paths (DESIGN.md §14).
//
// Every kernel here has three implementations — scalar reference, AVX2,
// AVX-512 — behind one runtime-dispatched entry point.  The scalar path is
// the canonical semantics; the vector paths are required to be BIT-IDENTICAL
// to it (tests/test_simd.cpp pins this on adversarial inputs), so callers
// never see a behavioural difference, only a throughput one.  Dispatch is
// decided once per process from CPUID, overridable two ways:
//
//   * KRON_SIMD=scalar|avx2|avx512 — environment, clamped to what the host
//     supports.  `KRON_SIMD=scalar` is the perf-gate's synthetic-slowdown
//     injection (tools/perf_gate).
//   * simd::force_level(level) — programmatic, used by the bit-identity
//     tests and the benches' scalar-vs-vector ablations.
//
// The kernels are the four hot loops named by the trace/bench baselines:
//   1. hash_filter / hash_count — batched rejection test hash(p,q) <= ν
//      (core/rejection.cpp).  The [0,1) threshold is converted to the
//      integer domain once (hash_threshold), so the whole kernel runs in
//      64-bit integer lanes yet accepts exactly the edges the scalar
//      double comparison accepts.
//   2. or_gather — the MS-BFS pull sweep's word gathers
//      (analytics/msbfs.hpp).
//   3. any_bit_set / collect_equal — the hybrid-BFS bottom-up bitmap
//      probes and frontier collection (analytics/frontier.hpp).
//   4. pack_shift_or / unpack_shift_mask — the radix sort's key pack and
//      unpack sweeps (graph/sort.cpp).
// plus prefetch_read / prefetch_write hints used by the CSR and triangle
// traversals.
//
// Builds need no special flags: the vector bodies carry GCC/Clang `target`
// attributes, so a generic -O2 binary still contains them and picks at
// runtime.  KRON_NATIVE remains orthogonal (it vectorises everything else).
#pragma once

#include <atomic>
#include <bit>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graph/types.hpp"
#include "util/hash.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define KRON_SIMD_X86 1
// GCC 12's AVX-512 headers trip -Wmaybe-uninitialized on their own
// _mm512_undefined_epi32 idiom once intrinsics get inlined; the diagnostic
// points into the header, so the suppression must cover the include.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#include <immintrin.h>
#pragma GCC diagnostic pop
#else
#define KRON_SIMD_X86 0
#endif

namespace kron::simd {

// ------------------------------------------------------------------ levels

enum class Level : int { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

[[nodiscard]] constexpr const char* level_name(Level level) noexcept {
  switch (level) {
    case Level::kAvx512: return "avx512";
    case Level::kAvx2: return "avx2";
    default: return "scalar";
  }
}

/// What the CPU can run, independent of any override (pure CPUID).
[[nodiscard]] inline Level host_level() noexcept {
#if KRON_SIMD_X86
  static const Level detected = [] {
    if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512dq"))
      return Level::kAvx512;
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    return Level::kScalar;
  }();
  return detected;
#else
  return Level::kScalar;
#endif
}

namespace detail {
inline std::atomic<int>& forced_level() {
  static std::atomic<int> forced{-1};
  return forced;
}

inline Level env_level() {
  Level level = host_level();
  if (const char* env = std::getenv("KRON_SIMD")) {
    const std::string want(env);
    Level requested = level;
    if (want == "scalar" || want == "off")
      requested = Level::kScalar;
    else if (want == "avx2")
      requested = Level::kAvx2;
    else if (want == "avx512")
      requested = Level::kAvx512;
    if (static_cast<int>(requested) < static_cast<int>(level)) level = requested;
  }
  return level;
}
}  // namespace detail

/// Override the dispatch level (clamped to host capability); `reset_level`
/// restores the KRON_SIMD/CPUID default.  For tests and ablation benches.
inline void force_level(Level level) noexcept {
  const int clamped = std::min(static_cast<int>(level), static_cast<int>(host_level()));
  detail::forced_level().store(clamped, std::memory_order_relaxed);
}
inline void reset_level() noexcept {
  detail::forced_level().store(-1, std::memory_order_relaxed);
}

/// The level kernels dispatch on: force_level override, else KRON_SIMD env
/// (clamped to the host), else the host's best.
[[nodiscard]] inline Level active_level() noexcept {
  const int forced = detail::forced_level().load(std::memory_order_relaxed);
  if (forced >= 0) return static_cast<Level>(forced);
  static const Level from_env = detail::env_level();
  return from_env;
}

// ---------------------------------------------------------------- prefetch

inline void prefetch_read(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 0, 1);
#else
  (void)addr;
#endif
}

inline void prefetch_write(const void* addr) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(addr, 1, 0);
#else
  (void)addr;
#endif
}

// ------------------------------------------------- rejection-hash kernels

/// Convert a [0,1] rejection threshold ν to the integer domain of the top
/// 53 hash bits: to_unit(h) <= ν  ⟺  (h >> 11) <= hash_threshold(ν).
/// Exact, not approximate: to_unit(h) = (h>>11)·2⁻⁵³ with no rounding, and
/// ν·2⁵³ only shifts ν's exponent, so comparing the integer (h>>11) with
/// ⌊ν·2⁵³⌋ decides every edge exactly as the double comparison does.
[[nodiscard]] constexpr std::uint64_t hash_threshold(double nu) noexcept {
  return static_cast<std::uint64_t>(nu * 0x1p53);
}

/// Scalar reference: copy the edges with edge_hash(u,v) in-threshold into
/// `out` (which may equal `in`), preserving order; returns the kept count.
inline std::size_t hash_filter_scalar(const Edge* in, std::size_t n, std::uint64_t seed,
                                      std::uint64_t threshold, Edge* out) {
  const std::uint64_t state = edge_hash_state(seed);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if ((edge_hash_from_state(state, in[i].u, in[i].v) >> 11) <= threshold)
      out[kept++] = in[i];
  }
  return kept;
}

/// Scalar reference: count the targets whose edge {u, targets[i]} hashes
/// in-threshold (the per-row form surviving_edge_count uses).
inline std::size_t hash_count_scalar(std::uint64_t u, const std::uint64_t* targets,
                                     std::size_t n, std::uint64_t seed,
                                     std::uint64_t threshold) {
  const std::uint64_t state = edge_hash_state(seed);
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i)
    if ((edge_hash_from_state(state, u, targets[i]) >> 11) <= threshold) ++count;
  return count;
}

// ------------------------------------------------- bitmap / word kernels

/// Scalar reference: OR of words[idx[i]] — the MS-BFS pull gather.
inline std::uint64_t or_gather_scalar(const std::uint64_t* words, const std::uint64_t* idx,
                                      std::size_t n) {
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < n; ++i) acc |= words[idx[i]];
  return acc;
}

/// Scalar reference: true iff any bitmap bit `bits[i]` is set in `words`
/// (bit b lives at words[b>>6] bit b&63) — the bottom-up parent probe.
inline bool any_bit_set_scalar(const std::uint64_t* words, const std::uint64_t* bits,
                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if ((words[bits[i] >> 6] >> (bits[i] & 63)) & 1ULL) return true;
  return false;
}

/// Scalar reference: append the indices i in [0,n) with values[i] == target
/// to `out` (ascending); returns how many were written.
inline std::size_t collect_equal_scalar(const std::uint64_t* values, std::size_t n,
                                        std::uint64_t target, std::uint64_t* out) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (values[i] == target) out[count++] = i;
  return count;
}

// ----------------------------------------------------- radix-key kernels

/// Scalar reference: keys[i] = (edges[i].u << shift) | edges[i].v — the
/// radix sort's key pack.  Requires shift < 64 and v < 2^shift (or shift=0
/// and v=0), as guaranteed by plan_radix's width check.
inline void pack_shift_or_scalar(const Edge* edges, std::size_t n, unsigned shift,
                                 std::uint64_t* keys) {
  for (std::size_t i = 0; i < n; ++i) keys[i] = (edges[i].u << shift) | edges[i].v;
}

/// Scalar reference: edges[i] = {keys[i] >> shift, keys[i] & mask} — the
/// radix sort's key unpack.
inline void unpack_shift_mask_scalar(const std::uint64_t* keys, std::size_t n, unsigned shift,
                                     std::uint64_t mask, Edge* edges) {
  for (std::size_t i = 0; i < n; ++i) edges[i] = {keys[i] >> shift, keys[i] & mask};
}

// ------------------------------------------------------- x86 vector paths
#if KRON_SIMD_X86
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
namespace detail {

#define KRON_TARGET_AVX2 __attribute__((target("avx2")))
#define KRON_TARGET_AVX512 __attribute__((target("avx512f,avx512dq")))

// ---- AVX2 helpers (4 × 64-bit lanes; no native 64-bit multiply) ----

KRON_TARGET_AVX2 inline __m256i mullo64_avx2(__m256i a, __m256i b) {
  // 64-bit product from 32x32 partial products: lo*lo + ((hi*lo + lo*hi) << 32).
  const __m256i lo = _mm256_mul_epu32(a, b);
  const __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                                         _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lo, _mm256_slli_epi64(cross, 32));
}

KRON_TARGET_AVX2 inline __m256i mix64_avx2(__m256i x) {
  const __m256i c = _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m256i m1 = _mm256_set1_epi64x(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m256i m2 = _mm256_set1_epi64x(static_cast<long long>(0x94d049bb133111ebULL));
  x = _mm256_add_epi64(x, c);
  x = mullo64_avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 30)), m1);
  x = mullo64_avx2(_mm256_xor_si256(x, _mm256_srli_epi64(x, 27)), m2);
  return _mm256_xor_si256(x, _mm256_srli_epi64(x, 31));
}

// hash_combine(a, b) = mix64(a ^ (mix64(b) + C + (a<<6) + (a>>2)))
KRON_TARGET_AVX2 inline __m256i hash_combine_avx2(__m256i a, __m256i b) {
  const __m256i c = _mm256_set1_epi64x(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  __m256i t = _mm256_add_epi64(mix64_avx2(b), c);
  t = _mm256_add_epi64(t, _mm256_slli_epi64(a, 6));
  t = _mm256_add_epi64(t, _mm256_srli_epi64(a, 2));
  return mix64_avx2(_mm256_xor_si256(a, t));
}

// Unsigned 64-bit min/max via sign-flipped signed compare.
KRON_TARGET_AVX2 inline __m256i cmpgt_epu64_avx2(__m256i a, __m256i b) {
  const __m256i sign = _mm256_set1_epi64x(static_cast<long long>(0x8000000000000000ULL));
  return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign), _mm256_xor_si256(b, sign));
}

// Per-lane symmetric edge hash of (u, v) with the seed state broadcast.
KRON_TARGET_AVX2 inline __m256i edge_hash_avx2(__m256i state, __m256i u, __m256i v) {
  const __m256i u_gt = cmpgt_epu64_avx2(u, v);
  const __m256i lo = _mm256_blendv_epi8(u, v, u_gt);
  const __m256i hi = _mm256_blendv_epi8(v, u, u_gt);
  return hash_combine_avx2(hash_combine_avx2(state, lo), hi);
}

// Deinterleave 4 consecutive Edge structs into a u-lane and a v-lane vector.
KRON_TARGET_AVX2 inline void load_edges_avx2(const Edge* e, __m256i& u, __m256i& v) {
  const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e));      // u0 v0 u1 v1
  const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(e + 2));  // u2 v2 u3 v3
  const __m256i even = _mm256_unpacklo_epi64(a, b);  // u0 u2 u1 u3
  const __m256i odd = _mm256_unpackhi_epi64(a, b);   // v0 v2 v1 v3
  u = _mm256_permute4x64_epi64(even, _MM_SHUFFLE(3, 1, 2, 0));
  v = _mm256_permute4x64_epi64(odd, _MM_SHUFFLE(3, 1, 2, 0));
}

KRON_TARGET_AVX2 inline std::size_t hash_filter_avx2(const Edge* in, std::size_t n,
                                                     std::uint64_t seed,
                                                     std::uint64_t threshold, Edge* out) {
  const __m256i state = _mm256_set1_epi64x(static_cast<long long>(edge_hash_state(seed)));
  const __m256i thresh = _mm256_set1_epi64x(static_cast<long long>(threshold));
  std::size_t kept = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i u, v;
    load_edges_avx2(in + i, u, v);
    const __m256i h53 = _mm256_srli_epi64(edge_hash_avx2(state, u, v), 11);
    // h53 and threshold both < 2^63, so the signed compare is exact.
    const __m256i reject = _mm256_cmpgt_epi64(h53, thresh);
    unsigned keep =
        ~static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(reject))) & 0xFu;
    while (keep != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(keep));
      out[kept++] = in[i + j];
      keep &= keep - 1;
    }
  }
  kept += hash_filter_scalar(in + i, n - i, seed, threshold, out + kept);
  return kept;
}

KRON_TARGET_AVX2 inline std::size_t hash_count_avx2(std::uint64_t u_scalar,
                                                    const std::uint64_t* targets,
                                                    std::size_t n, std::uint64_t seed,
                                                    std::uint64_t threshold) {
  const __m256i state = _mm256_set1_epi64x(static_cast<long long>(edge_hash_state(seed)));
  const __m256i thresh = _mm256_set1_epi64x(static_cast<long long>(threshold));
  const __m256i u = _mm256_set1_epi64x(static_cast<long long>(u_scalar));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(targets + i));
    const __m256i h53 = _mm256_srli_epi64(edge_hash_avx2(state, u, v), 11);
    const __m256i reject = _mm256_cmpgt_epi64(h53, thresh);
    const unsigned keep =
        ~static_cast<unsigned>(_mm256_movemask_pd(_mm256_castsi256_pd(reject))) & 0xFu;
    count += static_cast<std::size_t>(std::popcount(keep));
  }
  count += hash_count_scalar(u_scalar, targets + i, n - i, seed, threshold);
  return count;
}

KRON_TARGET_AVX2 inline std::uint64_t or_gather_avx2(const std::uint64_t* words,
                                                     const std::uint64_t* idx,
                                                     std::size_t n) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i vi = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + i));
    acc = _mm256_or_si256(
        acc, _mm256_i64gather_epi64(reinterpret_cast<const long long*>(words), vi, 8));
  }
  alignas(32) std::uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t result = lanes[0] | lanes[1] | lanes[2] | lanes[3];
  for (; i < n; ++i) result |= words[idx[i]];
  return result;
}

KRON_TARGET_AVX2 inline bool any_bit_set_avx2(const std::uint64_t* words,
                                              const std::uint64_t* bits, std::size_t n) {
  const __m256i one = _mm256_set1_epi64x(1);
  const __m256i low6 = _mm256_set1_epi64x(63);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bits + i));
    const __m256i word = _mm256_i64gather_epi64(reinterpret_cast<const long long*>(words),
                                                _mm256_srli_epi64(b, 6), 8);
    const __m256i mask = _mm256_sllv_epi64(one, _mm256_and_si256(b, low6));
    const __m256i hit = _mm256_and_si256(word, mask);
    if (_mm256_testz_si256(hit, hit) == 0) return true;
  }
  return any_bit_set_scalar(words, bits + i, n - i);
}

KRON_TARGET_AVX2 inline std::size_t collect_equal_avx2(const std::uint64_t* values,
                                                       std::size_t n, std::uint64_t target,
                                                       std::uint64_t* out) {
  const __m256i want = _mm256_set1_epi64x(static_cast<long long>(target));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(values + i));
    unsigned hits = static_cast<unsigned>(
                        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(v, want)))) &
                    0xFu;
    while (hits != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(hits));
      out[count++] = i + j;
      hits &= hits - 1;
    }
  }
  for (; i < n; ++i)
    if (values[i] == target) out[count++] = i;
  return count;
}

KRON_TARGET_AVX2 inline void pack_shift_or_avx2(const Edge* edges, std::size_t n,
                                                unsigned shift, std::uint64_t* keys) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i u, v;
    load_edges_avx2(edges + i, u, v);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(keys + i),
                        _mm256_or_si256(_mm256_sll_epi64(u, sh), v));
  }
  pack_shift_or_scalar(edges + i, n - i, shift, keys + i);
}

KRON_TARGET_AVX2 inline void unpack_shift_mask_avx2(const std::uint64_t* keys, std::size_t n,
                                                    unsigned shift, std::uint64_t mask,
                                                    Edge* edges) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m256i m = _mm256_set1_epi64x(static_cast<long long>(mask));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i k = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(keys + i));
    const __m256i u = _mm256_srl_epi64(k, sh);
    const __m256i v = _mm256_and_si256(k, m);
    const __m256i up = _mm256_permute4x64_epi64(u, _MM_SHUFFLE(3, 1, 2, 0));  // u0 u2 u1 u3
    const __m256i vp = _mm256_permute4x64_epi64(v, _MM_SHUFFLE(3, 1, 2, 0));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(edges + i),
                        _mm256_unpacklo_epi64(up, vp));  // u0 v0 u1 v1
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(edges + i + 2),
                        _mm256_unpackhi_epi64(up, vp));  // u2 v2 u3 v3
  }
  unpack_shift_mask_scalar(keys + i, n - i, shift, mask, edges + i);
}

// ---- AVX-512 helpers (8 × 64-bit lanes; native vpmullq via DQ) ----

KRON_TARGET_AVX512 inline __m512i mix64_avx512(__m512i x) {
  const __m512i c = _mm512_set1_epi64(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  const __m512i m1 = _mm512_set1_epi64(static_cast<long long>(0xbf58476d1ce4e5b9ULL));
  const __m512i m2 = _mm512_set1_epi64(static_cast<long long>(0x94d049bb133111ebULL));
  x = _mm512_add_epi64(x, c);
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 30)), m1);
  x = _mm512_mullo_epi64(_mm512_xor_si512(x, _mm512_srli_epi64(x, 27)), m2);
  return _mm512_xor_si512(x, _mm512_srli_epi64(x, 31));
}

KRON_TARGET_AVX512 inline __m512i hash_combine_avx512(__m512i a, __m512i b) {
  const __m512i c = _mm512_set1_epi64(static_cast<long long>(0x9e3779b97f4a7c15ULL));
  __m512i t = _mm512_add_epi64(mix64_avx512(b), c);
  t = _mm512_add_epi64(t, _mm512_slli_epi64(a, 6));
  t = _mm512_add_epi64(t, _mm512_srli_epi64(a, 2));
  return mix64_avx512(_mm512_xor_si512(a, t));
}

KRON_TARGET_AVX512 inline __m512i edge_hash_avx512(__m512i state, __m512i u, __m512i v) {
  const __m512i lo = _mm512_min_epu64(u, v);
  const __m512i hi = _mm512_max_epu64(u, v);
  return hash_combine_avx512(hash_combine_avx512(state, lo), hi);
}

// Deinterleave 8 consecutive Edge structs into a u-lane and a v-lane vector.
KRON_TARGET_AVX512 inline void load_edges_avx512(const Edge* e, __m512i& u, __m512i& v) {
  const __m512i a = _mm512_loadu_si512(e);      // u0 v0 u1 v1 u2 v2 u3 v3
  const __m512i b = _mm512_loadu_si512(e + 4);  // u4 v4 ...
  const __m512i idx_u = _mm512_set_epi64(14, 12, 10, 8, 6, 4, 2, 0);
  const __m512i idx_v = _mm512_set_epi64(15, 13, 11, 9, 7, 5, 3, 1);
  u = _mm512_permutex2var_epi64(a, idx_u, b);
  v = _mm512_permutex2var_epi64(a, idx_v, b);
}

KRON_TARGET_AVX512 inline std::size_t hash_filter_avx512(const Edge* in, std::size_t n,
                                                         std::uint64_t seed,
                                                         std::uint64_t threshold, Edge* out) {
  const __m512i state = _mm512_set1_epi64(static_cast<long long>(edge_hash_state(seed)));
  const __m512i thresh = _mm512_set1_epi64(static_cast<long long>(threshold));
  std::size_t kept = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i u, v;
    load_edges_avx512(in + i, u, v);
    const __m512i h53 = _mm512_srli_epi64(edge_hash_avx512(state, u, v), 11);
    unsigned keep = _mm512_cmple_epu64_mask(h53, thresh);
    while (keep != 0) {
      const unsigned j = static_cast<unsigned>(std::countr_zero(keep));
      out[kept++] = in[i + j];
      keep &= keep - 1;
    }
  }
  kept += hash_filter_scalar(in + i, n - i, seed, threshold, out + kept);
  return kept;
}

KRON_TARGET_AVX512 inline std::size_t hash_count_avx512(std::uint64_t u_scalar,
                                                        const std::uint64_t* targets,
                                                        std::size_t n, std::uint64_t seed,
                                                        std::uint64_t threshold) {
  const __m512i state = _mm512_set1_epi64(static_cast<long long>(edge_hash_state(seed)));
  const __m512i thresh = _mm512_set1_epi64(static_cast<long long>(threshold));
  const __m512i u = _mm512_set1_epi64(static_cast<long long>(u_scalar));
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(targets + i);
    const __m512i h53 = _mm512_srli_epi64(edge_hash_avx512(state, u, v), 11);
    count += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(_mm512_cmple_epu64_mask(h53, thresh))));
  }
  count += hash_count_scalar(u_scalar, targets + i, n - i, seed, threshold);
  return count;
}

KRON_TARGET_AVX512 inline std::uint64_t or_gather_avx512(const std::uint64_t* words,
                                                         const std::uint64_t* idx,
                                                         std::size_t n) {
  __m512i acc = _mm512_setzero_si512();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i vi = _mm512_loadu_si512(idx + i);
    acc = _mm512_or_si512(acc, _mm512_i64gather_epi64(vi, words, 8));
  }
  // _mm512_reduce_or_epi64 trips -Wuninitialized in GCC 12's header even
  // under the include-time suppression; reduce through memory instead.
  alignas(64) std::uint64_t lanes[8];
  _mm512_store_si512(lanes, acc);
  std::uint64_t result = 0;
  for (const std::uint64_t lane : lanes) result |= lane;
  for (; i < n; ++i) result |= words[idx[i]];
  return result;
}

KRON_TARGET_AVX512 inline bool any_bit_set_avx512(const std::uint64_t* words,
                                                  const std::uint64_t* bits, std::size_t n) {
  const __m512i one = _mm512_set1_epi64(1);
  const __m512i low6 = _mm512_set1_epi64(63);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i b = _mm512_loadu_si512(bits + i);
    const __m512i word = _mm512_i64gather_epi64(_mm512_srli_epi64(b, 6), words, 8);
    const __m512i mask = _mm512_sllv_epi64(one, _mm512_and_si512(b, low6));
    if (_mm512_test_epi64_mask(word, mask) != 0) return true;
  }
  return any_bit_set_scalar(words, bits + i, n - i);
}

KRON_TARGET_AVX512 inline std::size_t collect_equal_avx512(const std::uint64_t* values,
                                                           std::size_t n,
                                                           std::uint64_t target,
                                                           std::uint64_t* out) {
  const __m512i want = _mm512_set1_epi64(static_cast<long long>(target));
  const __m512i step = _mm512_set1_epi64(8);
  __m512i iota = _mm512_set_epi64(7, 6, 5, 4, 3, 2, 1, 0);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i v = _mm512_loadu_si512(values + i);
    const __mmask8 hits = _mm512_cmpeq_epu64_mask(v, want);
    _mm512_mask_compressstoreu_epi64(out + count, hits, iota);
    count += static_cast<std::size_t>(std::popcount(static_cast<unsigned>(hits)));
    iota = _mm512_add_epi64(iota, step);
  }
  for (; i < n; ++i)
    if (values[i] == target) out[count++] = i;
  return count;
}

KRON_TARGET_AVX512 inline void pack_shift_or_avx512(const Edge* edges, std::size_t n,
                                                    unsigned shift, std::uint64_t* keys) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i u, v;
    load_edges_avx512(edges + i, u, v);
    _mm512_storeu_si512(keys + i, _mm512_or_si512(_mm512_sll_epi64(u, sh), v));
  }
  pack_shift_or_scalar(edges + i, n - i, shift, keys + i);
}

KRON_TARGET_AVX512 inline void unpack_shift_mask_avx512(const std::uint64_t* keys,
                                                        std::size_t n, unsigned shift,
                                                        std::uint64_t mask, Edge* edges) {
  const __m128i sh = _mm_cvtsi32_si128(static_cast<int>(shift));
  const __m512i m = _mm512_set1_epi64(static_cast<long long>(mask));
  const __m512i idx_lo = _mm512_set_epi64(11, 3, 10, 2, 9, 1, 8, 0);   // u0 v0 u1 v1 ...
  const __m512i idx_hi = _mm512_set_epi64(15, 7, 14, 6, 13, 5, 12, 4);  // u4 v4 u5 v5 ...
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i k = _mm512_loadu_si512(keys + i);
    const __m512i u = _mm512_srl_epi64(k, sh);
    const __m512i v = _mm512_and_si512(k, m);
    _mm512_storeu_si512(edges + i, _mm512_permutex2var_epi64(u, idx_lo, v));
    _mm512_storeu_si512(edges + i + 4, _mm512_permutex2var_epi64(u, idx_hi, v));
  }
  unpack_shift_mask_scalar(keys + i, n - i, shift, mask, edges + i);
}

#undef KRON_TARGET_AVX2
#undef KRON_TARGET_AVX512

}  // namespace detail
#pragma GCC diagnostic pop
#endif  // KRON_SIMD_X86

// ---------------------------------------------------- dispatched wrappers

/// Batched rejection filter: keep edges with edge_hash(u,v,seed) in
/// threshold (see hash_threshold), order-preserving; returns kept count.
/// `out` must hold n entries and may alias `in`.
inline std::size_t hash_filter(const Edge* in, std::size_t n, std::uint64_t seed,
                               std::uint64_t threshold, Edge* out) {
#if KRON_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512: return detail::hash_filter_avx512(in, n, seed, threshold, out);
    case Level::kAvx2: return detail::hash_filter_avx2(in, n, seed, threshold, out);
    case Level::kScalar: break;
  }
#endif
  return hash_filter_scalar(in, n, seed, threshold, out);
}

/// Batched rejection count over one CSR row: |{i : hash(u, targets[i]) in threshold}|.
inline std::size_t hash_count(std::uint64_t u, const std::uint64_t* targets, std::size_t n,
                              std::uint64_t seed, std::uint64_t threshold) {
#if KRON_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512: return detail::hash_count_avx512(u, targets, n, seed, threshold);
    case Level::kAvx2: return detail::hash_count_avx2(u, targets, n, seed, threshold);
    case Level::kScalar: break;
  }
#endif
  return hash_count_scalar(u, targets, n, seed, threshold);
}

/// OR-reduction of words[idx[i]] (MS-BFS pull gather).
inline std::uint64_t or_gather(const std::uint64_t* words, const std::uint64_t* idx,
                               std::size_t n) {
#if KRON_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512: return detail::or_gather_avx512(words, idx, n);
    case Level::kAvx2: return detail::or_gather_avx2(words, idx, n);
    case Level::kScalar: break;
  }
#endif
  return or_gather_scalar(words, idx, n);
}

/// True iff any bitmap bit bits[i] is set (hybrid-BFS bottom-up probe).
inline bool any_bit_set(const std::uint64_t* words, const std::uint64_t* bits,
                        std::size_t n) {
#if KRON_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512: return detail::any_bit_set_avx512(words, bits, n);
    case Level::kAvx2: return detail::any_bit_set_avx2(words, bits, n);
    case Level::kScalar: break;
  }
#endif
  return any_bit_set_scalar(words, bits, n);
}

/// Compact the indices where values[i] == target (frontier collection).
inline std::size_t collect_equal(const std::uint64_t* values, std::size_t n,
                                 std::uint64_t target, std::uint64_t* out) {
#if KRON_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512: return detail::collect_equal_avx512(values, n, target, out);
    case Level::kAvx2: return detail::collect_equal_avx2(values, n, target, out);
    case Level::kScalar: break;
  }
#endif
  return collect_equal_scalar(values, n, target, out);
}

/// Radix key pack: keys[i] = (u << shift) | v.
inline void pack_shift_or(const Edge* edges, std::size_t n, unsigned shift,
                          std::uint64_t* keys) {
#if KRON_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512: return detail::pack_shift_or_avx512(edges, n, shift, keys);
    case Level::kAvx2: return detail::pack_shift_or_avx2(edges, n, shift, keys);
    case Level::kScalar: break;
  }
#endif
  pack_shift_or_scalar(edges, n, shift, keys);
}

/// Radix key unpack: edges[i] = {key >> shift, key & mask}.  The unpack is
/// store-bound, and 512-bit stores measured *slower* than 256-bit ones here
/// (see DESIGN.md §14), so AVX-512 hosts dispatch to the 256-bit body.
inline void unpack_shift_mask(const std::uint64_t* keys, std::size_t n, unsigned shift,
                              std::uint64_t mask, Edge* edges) {
#if KRON_SIMD_X86
  switch (active_level()) {
    case Level::kAvx512:
    case Level::kAvx2: return detail::unpack_shift_mask_avx2(keys, n, shift, mask, edges);
    case Level::kScalar: break;
  }
#endif
  unpack_shift_mask_scalar(keys, n, shift, mask, edges);
}

}  // namespace kron::simd
