#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace kron {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

void Table::row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument("Table: row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string Table::str() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) width[c] = std::max(width[c], r[c].size());

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << "| " << std::left << std::setw(static_cast<int>(width[c])) << cells[c] << " ";
    }
    out << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c)
    out << "|" << std::string(width[c] + 2, '-');
  out << "|\n";
  for (const auto& r : rows_) emit(r);
  return out.str();
}

std::string Table::num(double v, int precision) {
  std::ostringstream out;
  out << std::setprecision(precision) << v;
  return out.str();
}

std::string Table::sci(double v, int precision) {
  std::ostringstream out;
  out << std::scientific << std::setprecision(precision) << v;
  return out.str();
}

}  // namespace kron
