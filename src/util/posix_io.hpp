// EINTR-safe POSIX I/O helpers.
//
// Everything in src/ that touches raw file descriptors goes through this
// header: the checkpoint publish path (fsync-then-rename durability), the
// multi-process runtime's socket transport, and the parent<->child status
// channels.  Two families:
//
//  * Throwing full-buffer helpers (`write_full`, `read_full`, ...): retry
//    on EINTR until the whole buffer moved, raise std::runtime_error
//    naming the caller-supplied context and the errno string otherwise.
//    `read_full` may return a short count only at end-of-stream.
//
//  * Single-shot helpers (`write_some`, `read_some`): retry EINTR only,
//    report would-block as zero progress, and never throw — the shape a
//    nonblocking poll() pump needs.
//
// `ignore_sigpipe` is here too: a process whose peer died must see EPIPE
// from write(), not be killed by SIGPIPE.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <string>

namespace kron::posix_io {

/// Open `path` for writing (create/truncate, 0644).  Throws on failure.
[[nodiscard]] int open_write(const std::filesystem::path& path, const std::string& what);

/// Open `path` read-only.  Throws on failure.
[[nodiscard]] int open_read(const std::filesystem::path& path, const std::string& what);

/// Positional read of the entire buffer (pread, EINTR-safe); does not move
/// the file offset.  Throws if the file ends before `size` bytes — callers
/// read framed regions whose length they already know, so a short read is
/// always corruption/truncation, never a normal end-of-stream.
void pread_full(int fd, void* data, std::size_t size, std::uint64_t offset,
                const std::string& what);

/// Positional write of the entire buffer (pwrite, EINTR-safe); used to
/// patch a fixed-size header at offset 0 after streaming the payload.
void pwrite_full(int fd, const void* data, std::size_t size, std::uint64_t offset,
                 const std::string& what);

/// Write the entire buffer, retrying on EINTR and short writes.
void write_full(int fd, const void* data, std::size_t size, const std::string& what);

/// Read up to `size` bytes, retrying on EINTR and short reads; a return
/// value below `size` means end-of-stream was reached first.
[[nodiscard]] std::size_t read_full(int fd, void* data, std::size_t size,
                                    const std::string& what);

/// fsync the descriptor (durability barrier before a rename publishes it).
void fsync_fd(int fd, const std::string& what);

/// Open `path` (a file or a directory) read-only and fsync it.  Syncing
/// the containing directory after a rename makes the new directory entry
/// itself durable.
void fsync_path(const std::filesystem::path& path, const std::string& what);

/// close(2) swallowing EINTR; never throws (used in cleanup paths).
void close_fd(int fd) noexcept;

/// One write attempt, EINTR retried.  Returns bytes written (0 when a
/// nonblocking fd would block), or -1 on a hard error with errno set.
[[nodiscard]] long write_some(int fd, const void* data, std::size_t size) noexcept;

/// One read attempt, EINTR retried.  Returns bytes read (0 when a
/// nonblocking fd would block), or -1 on a hard error with errno set;
/// sets `eof` instead of returning 0 ambiguously at end-of-stream.
[[nodiscard]] long read_some(int fd, void* data, std::size_t size, bool& eof) noexcept;

/// Set SIGPIPE to SIG_IGN process-wide (idempotent).  Installed by the
/// runtime before any socket traffic so a dead peer surfaces as EPIPE.
void ignore_sigpipe() noexcept;

}  // namespace kron::posix_io
