#include "util/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <stdexcept>

#include "util/table.hpp"

namespace kron::trace {
namespace detail {

std::atomic<bool> g_enabled{false};

namespace {

std::uint64_t now_ns() noexcept {
  // One fixed epoch per process so timestamps from every thread share an
  // origin (Chrome trace lanes line up).
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - epoch)
                                        .count());
}

// Per-thread recording state.  Owned by the registry (so buffers survive
// thread exit — rank threads die with each Runtime::run); the thread_local
// below is only a cached pointer.
struct ThreadState {
  std::uint64_t tid = 0;
  // Guards spans/rank against snapshot()/clear() walking the registry;
  // uncontended on the recording fast path.
  std::mutex mutex;
  std::vector<SpanRecord> spans;
  int rank = -1;
  std::uint32_t depth = 0;  ///< open spans; only the owning thread touches it
};

struct Registry {
  std::mutex mutex;  // guards threads/counters/gauges structure
  std::deque<std::unique_ptr<ThreadState>> threads;
  // std::map: stable iteration order for exports, pointers stable forever.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
};

Registry& registry() {
  static Registry* instance = new Registry;  // leaked: threads may record at exit
  return *instance;
}

ThreadState& thread_state() {
  thread_local ThreadState* state = [] {
    Registry& reg = registry();
    const std::scoped_lock lock(reg.mutex);
    reg.threads.push_back(std::make_unique<ThreadState>());
    reg.threads.back()->tid = reg.threads.size() - 1;
    return reg.threads.back().get();
  }();
  return *state;
}

}  // namespace

std::uint64_t span_begin() noexcept {
  ++thread_state().depth;
  return now_ns();
}

void span_end(const char* name, std::uint64_t start_ns) noexcept {
  const std::uint64_t end_ns = now_ns();
  ThreadState& state = thread_state();
  const std::scoped_lock lock(state.mutex);
  const std::uint32_t depth = state.depth > 0 ? --state.depth : 0;
  state.spans.push_back({name, start_ns, end_ns - start_ns, depth, state.rank});
}

}  // namespace detail

void enable(bool on) noexcept { detail::g_enabled.store(on, std::memory_order_relaxed); }

void clear() {
  auto& reg = detail::registry();
  const std::scoped_lock lock(reg.mutex);
  for (auto& thread : reg.threads) {
    const std::scoped_lock state_lock(thread->mutex);
    thread->spans.clear();
  }
  for (auto& [name, counter] : reg.counters) counter->reset();
  for (auto& [name, gauge] : reg.gauges) gauge->reset();
}

void set_rank(int rank) {
  detail::ThreadState& state = detail::thread_state();
  const std::scoped_lock lock(state.mutex);
  state.rank = rank;
}

Counter& counter(const char* name) {
  auto& reg = detail::registry();
  const std::scoped_lock lock(reg.mutex);
  auto& slot = reg.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& gauge(const char* name) {
  auto& reg = detail::registry();
  const std::scoped_lock lock(reg.mutex);
  auto& slot = reg.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Snapshot snapshot() {
  auto& reg = detail::registry();
  const std::scoped_lock lock(reg.mutex);
  Snapshot snap;
  snap.threads.reserve(reg.threads.size());
  for (auto& thread : reg.threads) {
    const std::scoped_lock state_lock(thread->mutex);
    if (thread->spans.empty()) continue;
    snap.threads.push_back({thread->tid, thread->spans});
  }
  for (const auto& [name, counter] : reg.counters)
    snap.counters.push_back({name, counter->value()});
  for (const auto& [name, gauge] : reg.gauges) snap.gauges.push_back({name, gauge->value()});
  return snap;
}

std::vector<PhaseTotal> phase_totals(const Snapshot& snap) {
  std::map<std::pair<std::string, int>, PhaseTotal> totals;
  for (const ThreadSpans& thread : snap.threads) {
    for (const SpanRecord& span : thread.spans) {
      PhaseTotal& total = totals[{span.name, span.rank}];
      if (total.count == 0) {
        total.name = span.name;
        total.rank = span.rank;
      }
      ++total.count;
      total.seconds += static_cast<double>(span.dur_ns) * 1e-9;
    }
  }
  std::vector<PhaseTotal> out;
  out.reserve(totals.size());
  for (auto& [key, total] : totals) out.push_back(std::move(total));
  return out;
}

std::vector<PhaseTotal> phase_totals() { return phase_totals(snapshot()); }

std::string phase_table() {
  const Snapshot snap = snapshot();
  const std::vector<PhaseTotal> totals = phase_totals(snap);
  std::string out;
  Table spans({"phase", "rank", "count", "total s"});
  for (const PhaseTotal& total : totals)
    spans.row({total.name, total.rank < 0 ? std::string("-") : std::to_string(total.rank),
               std::to_string(total.count), Table::num(total.seconds, 6)});
  out += "per-rank phase totals:\n";
  out += spans.str();
  if (!snap.counters.empty() || !snap.gauges.empty()) {
    Table metrics({"metric", "kind", "value"});
    for (const CounterValue& entry : snap.counters)
      metrics.row({entry.name, "counter", std::to_string(entry.value)});
    for (const CounterValue& entry : snap.gauges)
      metrics.row({entry.name, "gauge", std::to_string(entry.value)});
    out += "metrics:\n";
    out += metrics.str();
  }
  return out;
}

namespace {

void append_json_escaped(std::string& out, const char* raw) {
  for (const char* p = raw; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');  // control characters never appear in span names
    } else {
      out.push_back(c);
    }
  }
}

std::string microseconds(std::uint64_t ns) {
  // ts/dur are microseconds; print as fixed-point us.nnn to stay exact.
  std::string out = std::to_string(ns / 1000);
  const std::uint64_t frac = ns % 1000;
  out.push_back('.');
  out.push_back(static_cast<char>('0' + frac / 100));
  out.push_back(static_cast<char>('0' + frac / 10 % 10));
  out.push_back(static_cast<char>('0' + frac % 10));
  return out;
}

}  // namespace

void write_chrome_trace(std::ostream& out) {
  const Snapshot snap = snapshot();
  // The exporter runs in whichever process collected the spans; emitting
  // the real pid (instead of a hardcoded 0) keeps traces from the
  // multi-process runtime's children distinguishable when merged, and the
  // process_name metadata event labels the lane group in the viewer.
  const std::string pid = std::to_string(::getpid());
  std::string json = "{\"traceEvents\":[";
  json += "\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + pid +
          ",\"tid\":0,\"args\":{\"name\":\"kron\"}}";
  // Lane id: ranked threads share the rank lane (successive Runtime::run
  // invocations aggregate); unlabelled threads get a synthetic high lane.
  constexpr std::uint64_t kUnrankedBase = 1000;
  for (const ThreadSpans& thread : snap.threads) {
    for (const SpanRecord& span : thread.spans) {
      const std::uint64_t lane = span.rank >= 0 ? static_cast<std::uint64_t>(span.rank)
                                                : kUnrankedBase + thread.tid;
      json += ",\n{\"name\":\"";
      append_json_escaped(json, span.name);
      json += "\",\"cat\":\"kron\",\"ph\":\"X\",\"ts\":";
      json += microseconds(span.start_ns);
      json += ",\"dur\":";
      json += microseconds(span.dur_ns);
      json += ",\"pid\":" + pid + ",\"tid\":";
      json += std::to_string(lane);
      json += '}';
    }
  }
  json += "\n],\"displayTimeUnit\":\"ms\",\"otherData\":{";
  bool first_metric = true;
  for (const CounterValue& entry : snap.counters) {
    if (!first_metric) json += ',';
    first_metric = false;
    json += "\"";
    append_json_escaped(json, entry.name.c_str());
    json += "\":" + std::to_string(entry.value);
  }
  for (const CounterValue& entry : snap.gauges) {
    if (!first_metric) json += ',';
    first_metric = false;
    json += "\"";
    append_json_escaped(json, entry.name.c_str());
    json += "\":" + std::to_string(entry.value);
  }
  json += "}}\n";
  out << json;
}

void write_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_chrome_trace_file: cannot open " + path);
  write_chrome_trace(out);
  if (!out) throw std::runtime_error("write_chrome_trace_file: write failed for " + path);
}

}  // namespace kron::trace
