// Strict environment-variable parsing.
//
// Every numeric knob read from the environment (KRON_THREADS,
// KRON_OOC_BUFFER_BYTES, ...) goes through here so the full-token
// `from_chars` convention of util/cli applies to env vars too: "-1" must
// not wrap to 2^64-1, "4kb" must not silently parse as 4, and overflow
// must be diagnosed — with an error naming the variable, never absorbed.
// A process that tolerates a typo in its configuration serves wrong
// numbers at full speed; one that names the typo gets fixed.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace kron {

/// Strict full-token unsigned parse of `value` (the text of env var
/// `var`): the whole token must be consumed and fit in 64 bits.  Throws
/// std::runtime_error naming the variable and the offending value.
[[nodiscard]] std::uint64_t parse_env_u64(const std::string& var, const std::string& value);

/// Read env var `var` and strict-parse it; nullopt when the variable is
/// unset.  Set-but-malformed values throw (a typo must not silently fall
/// back to a default).
[[nodiscard]] std::optional<std::uint64_t> env_u64(const char* var);

}  // namespace kron
