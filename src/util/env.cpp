#include "util/env.hpp"

#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace kron {

std::uint64_t parse_env_u64(const std::string& var, const std::string& value) {
  const char* begin = value.data();
  const char* end = begin + value.size();
  std::uint64_t parsed = 0;
  const auto [next, ec] = std::from_chars(begin, end, parsed);
  if (ec == std::errc::result_out_of_range)
    throw std::runtime_error(var + " value '" + value + "' does not fit in 64 bits");
  if (ec != std::errc() || next != end || value.empty())
    throw std::runtime_error(var + " expects an unsigned integer, got '" + value +
                             "' (unset it or use a plain byte/count value)");
  return parsed;
}

std::optional<std::uint64_t> env_u64(const char* var) {
  const char* raw = std::getenv(var);
  if (raw == nullptr) return std::nullopt;
  return parse_env_u64(var, raw);
}

}  // namespace kron
