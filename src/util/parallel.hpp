// Intra-rank work-sharing layer: a process-global thread pool plus
// deterministic parallel_for / parallel_reduce helpers.
//
// The runtime already uses one thread per *rank* (runtime/comm.hpp), so a
// naive per-call thread spawn would oversubscribe the machine R-fold.  All
// data parallelism therefore funnels through ONE process-global pool:
// every rank (and the single-threaded tools/benches) submits chunked tasks
// to the same worker set, and a task submitted from inside a pool worker
// runs inline, so nested parallel sections can never deadlock or stack
// extra threads.  Worker count comes from, in priority order:
// ThreadPool::set_num_threads (the tools' --threads flag), the
// KRON_THREADS environment variable, std::thread::hardware_concurrency().
// KRON_AFFINITY=1 additionally pins workers to cores, matching the pool's
// striped chunk→thread assignment (DESIGN.md §14).
//
// Determinism contract: parallel_for chunks write disjoint outputs and
// parallel_reduce combines per-chunk partials in chunk-index order, so any
// algorithm built from them with associative combines (all users: integer
// histograms, max, sums) produces bit-identical results for every thread
// count — the invariant the canonicalisation pipeline relies on (see
// DESIGN.md §8).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace kron {

/// Process-global work-sharing pool.  `run_tasks` may be called
/// concurrently from many threads (ranks); calls from inside a pool worker
/// degrade to inline sequential execution.
class ThreadPool {
 public:
  /// The global pool (created on first use; workers are lazy).
  [[nodiscard]] static ThreadPool& instance();

  /// Set the parallelism degree for the global pool: `n` <= 0 restores the
  /// default (KRON_THREADS env var, else hardware_concurrency).  Joins and
  /// respawns workers; do not call concurrently with running parallel work.
  static void set_num_threads(int n);

  /// Parallelism degree (participating caller + workers), >= 1.
  [[nodiscard]] int num_threads() const;

  /// True when KRON_AFFINITY pinned the current worker set to cores
  /// (workers pin to cores 1..N-1; the submitting caller keeps core 0).
  [[nodiscard]] bool affinity_enabled() const;

  /// Run task(i) for every i in [0, num_tasks).  The calling thread
  /// participates; returns after all tasks finished.  The first exception
  /// thrown by a task is rethrown here (remaining tasks still run).
  void run_tasks(std::size_t num_tasks, const std::function<void(std::size_t)>& task);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool();
  struct Impl;
  Impl* impl_;
};

/// Chunked parallel loop: invokes `body(begin, end)` on disjoint subranges
/// covering [begin, end), at most `ceil(range / grain)` chunks, across the
/// global pool.  Runs inline when the range is small or no workers exist.
template <typename Body>
void parallel_for(std::size_t begin, std::size_t end, const Body& body,
                  std::size_t grain = 1024) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  ThreadPool& pool = ThreadPool::instance();
  const auto threads = static_cast<std::size_t>(pool.num_threads());
  std::size_t chunks = (range + grain - 1) / grain;
  if (chunks > threads) chunks = threads;
  if (chunks <= 1) {
    body(begin, end);
    return;
  }
  const std::size_t per_chunk = (range + chunks - 1) / chunks;
  pool.run_tasks(chunks, [&](std::size_t c) {
    const std::size_t b = begin + c * per_chunk;
    const std::size_t e = b + per_chunk < end ? b + per_chunk : end;
    if (b < e) body(b, e);
  });
}

/// Chunked parallel reduction: `map(begin, end)` produces one T per chunk;
/// partials are folded left-to-right in chunk-index order with `combine`,
/// starting from `init` — deterministic for associative combines.
template <typename T, typename Map, typename Combine>
[[nodiscard]] T parallel_reduce(std::size_t begin, std::size_t end, T init, const Map& map,
                                const Combine& combine, std::size_t grain = 1024) {
  if (begin >= end) return init;
  const std::size_t range = end - begin;
  ThreadPool& pool = ThreadPool::instance();
  const auto threads = static_cast<std::size_t>(pool.num_threads());
  std::size_t chunks = (range + grain - 1) / grain;
  if (chunks > threads) chunks = threads;
  if (chunks <= 1) return combine(std::move(init), map(begin, end));
  const std::size_t per_chunk = (range + chunks - 1) / chunks;
  std::vector<T> partials(chunks, init);
  pool.run_tasks(chunks, [&](std::size_t c) {
    const std::size_t b = begin + c * per_chunk;
    const std::size_t e = b + per_chunk < end ? b + per_chunk : end;
    if (b < e) partials[c] = map(b, e);
  });
  T result = std::move(init);
  for (std::size_t c = 0; c < chunks; ++c) result = combine(std::move(result), partials[c]);
  return result;
}

}  // namespace kron
