// Aligned ASCII table printer used by the bench binaries to render the
// paper's tables (scaling-law table, experiment summary tables).
#pragma once

#include <string>
#include <vector>

namespace kron {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append one row; must have the same number of cells as the header.
  void row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  [[nodiscard]] std::string str() const;

  /// Format helpers for numeric cells.
  static std::string num(double v, int precision = 4);
  static std::string sci(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace kron
