// Minimal command-line option parser for the tools/ binaries.
//
// Grammar: `prog <command> [--flag] [--key value] ... [positional ...]`.
// Options may be declared required, carry defaults, and parse as strings,
// integers or doubles.  Unknown options are errors (catches typos in
// benchmark scripts).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace kron {

class CliArgs {
 public:
  /// Parse argv after the command word.  `flags` lists the valueless
  /// option names; everything else starting with "--" consumes the next
  /// token as its value.  Throws std::invalid_argument on malformed input.
  CliArgs(int argc, const char* const* argv, int first,
          const std::set<std::string>& flags = {});

  [[nodiscard]] bool has_flag(const std::string& name) const;

  [[nodiscard]] std::optional<std::string> get(const std::string& name) const;
  [[nodiscard]] std::string get_or(const std::string& name, const std::string& fallback) const;
  [[nodiscard]] std::string require(const std::string& name) const;

  [[nodiscard]] std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  /// As get_u64, additionally rejecting values outside [min, max] with a
  /// diagnostic naming the option, the value, and the accepted range.
  [[nodiscard]] std::uint64_t get_u64(const std::string& name, std::uint64_t fallback,
                                      std::uint64_t min, std::uint64_t max) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;

  /// Strict unsigned parse of `text`: the whole token must be consumed and
  /// must fit in 64 bits (no sign, no trailing garbage, no overflow
  /// wrapping).  Diagnostics name `option` and the offending value.
  [[nodiscard]] static std::uint64_t parse_u64(const std::string& option,
                                               const std::string& text);

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Throws if any parsed option name is not in `known` — call after
  /// reading everything a command understands.
  void reject_unknown(const std::set<std::string>& known) const;

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace kron
