#include "util/cli.hpp"

#include <stdexcept>

namespace kron {

CliArgs::CliArgs(int argc, const char* const* argv, int first,
                 const std::set<std::string>& flags) {
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string name = token.substr(2);
    if (name.empty()) throw std::invalid_argument("CliArgs: bare '--' is not an option");
    if (flags.count(name) != 0) {
      flags_.insert(name);
      continue;
    }
    if (i + 1 >= argc)
      throw std::invalid_argument("CliArgs: option --" + name + " needs a value");
    values_[name] = argv[++i];
  }
}

bool CliArgs::has_flag(const std::string& name) const { return flags_.count(name) != 0; }

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::string CliArgs::require(const std::string& name) const {
  const auto value = get(name);
  if (!value) throw std::invalid_argument("missing required option --" + name);
  return *value;
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  try {
    return std::stoull(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects an integer, got '" + *value +
                                "'");
  }
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  try {
    return std::stod(*value);
  } catch (const std::exception&) {
    throw std::invalid_argument("option --" + name + " expects a number, got '" + *value +
                                "'");
  }
}

void CliArgs::reject_unknown(const std::set<std::string>& known) const {
  for (const auto& [name, value] : values_)
    if (known.count(name) == 0)
      throw std::invalid_argument("unknown option --" + name);
  for (const auto& name : flags_)
    if (known.count(name) == 0)
      throw std::invalid_argument("unknown option --" + name);
}

}  // namespace kron
