#include "util/cli.hpp"

#include <charconv>
#include <stdexcept>

namespace kron {

CliArgs::CliArgs(int argc, const char* const* argv, int first,
                 const std::set<std::string>& flags) {
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string name = token.substr(2);
    if (name.empty()) throw std::invalid_argument("CliArgs: bare '--' is not an option");
    // Duplicates are rejected rather than resolved last-one-wins: a repeated
    // flag is almost always a mangled invocation (edited command line, shell
    // variable expanded twice), and silently keeping one of the two values
    // hides which one the user meant.
    if (flags.count(name) != 0) {
      if (!flags_.insert(name).second)
        throw std::invalid_argument("option --" + name + " given more than once");
      continue;
    }
    if (i + 1 >= argc)
      throw std::invalid_argument("CliArgs: option --" + name + " needs a value");
    if (!values_.emplace(name, argv[++i]).second)
      throw std::invalid_argument("option --" + name + " given more than once");
  }
}

bool CliArgs::has_flag(const std::string& name) const { return flags_.count(name) != 0; }

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name, const std::string& fallback) const {
  return get(name).value_or(fallback);
}

std::string CliArgs::require(const std::string& name) const {
  const auto value = get(name);
  if (!value) throw std::invalid_argument("missing required option --" + name);
  return *value;
}

std::uint64_t CliArgs::parse_u64(const std::string& option, const std::string& text) {
  // std::stoull silently accepts "-1" (wrapping to 2^64-1), "10x" (parses
  // the prefix) and leading whitespace — all of which here are user typos
  // that must be diagnosed, not absorbed.  std::from_chars with a
  // full-token check rejects every one of them.
  const char* begin = text.data();
  const char* end = begin + text.size();
  std::uint64_t parsed = 0;
  const auto [next, ec] = std::from_chars(begin, end, parsed);
  if (ec == std::errc::result_out_of_range)
    throw std::invalid_argument("option " + option + " value '" + text +
                                "' does not fit in 64 bits");
  if (ec != std::errc() || next != end || text.empty())
    throw std::invalid_argument("option " + option + " expects an unsigned integer, got '" +
                                text + "'");
  return parsed;
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  return parse_u64("--" + name, *value);
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t fallback,
                               std::uint64_t min, std::uint64_t max) const {
  const std::uint64_t parsed = get_u64(name, fallback);
  if (parsed < min || parsed > max)
    throw std::invalid_argument("option --" + name + " value " + std::to_string(parsed) +
                                " is outside [" + std::to_string(min) + ", " +
                                std::to_string(max) + "]");
  return parsed;
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  const auto value = get(name);
  if (!value) return fallback;
  const std::string& text = *value;
  const char* begin = text.data();
  const char* end = begin + text.size();
  double parsed = 0.0;
  const auto [next, ec] = std::from_chars(begin, end, parsed);
  if (ec != std::errc() || next != end || text.empty())
    throw std::invalid_argument("option --" + name + " expects a number, got '" + text + "'");
  return parsed;
}

void CliArgs::reject_unknown(const std::set<std::string>& known) const {
  for (const auto& [name, value] : values_)
    if (known.count(name) == 0)
      throw std::invalid_argument("unknown option --" + name);
  for (const auto& name : flags_)
    if (known.count(name) == 0)
      throw std::invalid_argument("unknown option --" + name);
}

}  // namespace kron
