// Integer-valued histograms.
//
// Used throughout the benches: degree distributions, eccentricity
// distributions (Fig. 1), triangle-count distributions.  A histogram over a
// product graph's eccentricities can be formed *without materialising the
// product* by an outer max-combination of the factor histograms
// (see core/distance_gt.hpp), so the histogram type also supports
// multiplicity-weighted insertion.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace kron {

class Histogram {
 public:
  Histogram() = default;

  /// Count one observation of `value`.
  void add(std::uint64_t value, std::uint64_t multiplicity = 1);

  /// Merge another histogram into this one.
  void merge(const Histogram& other);

  /// Number of distinct values observed.
  [[nodiscard]] std::size_t distinct() const noexcept { return counts_.size(); }

  /// Total number of observations (sum of multiplicities).
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Count for a particular value (0 if absent).
  [[nodiscard]] std::uint64_t count(std::uint64_t value) const;

  [[nodiscard]] std::uint64_t min() const;
  [[nodiscard]] std::uint64_t max() const;

  /// Mean of the observed distribution.
  [[nodiscard]] double mean() const;

  /// Smallest value v such that at least `q * total()` observations are <= v.
  [[nodiscard]] std::uint64_t quantile(double q) const;

  /// (value, count) pairs in increasing value order.
  [[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>> items() const;

  /// Render as an ASCII bar chart, one row per distinct value.  `width` is
  /// the maximum bar width in characters.
  [[nodiscard]] std::string ascii(int width = 50) const;

  /// Build from a vector of samples.
  static Histogram from(const std::vector<std::uint64_t>& samples);

 private:
  std::map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace kron
