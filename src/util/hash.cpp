#include "util/hash.hpp"

// All hash utilities are constexpr and header-only; this translation unit
// exists to anchor the library and to host compile-time self-checks.

namespace kron {
namespace {

static_assert(mix64(0) != 0, "mix64 must not fix zero");
static_assert(edge_hash(3, 7) == edge_hash(7, 3), "edge_hash must be symmetric");
static_assert(edge_unit_hash(1, 2) >= 0.0 && edge_unit_hash(1, 2) < 1.0,
              "edge_unit_hash must land in [0,1)");

}  // namespace
}  // namespace kron
