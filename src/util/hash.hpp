// Deterministic 64-bit hashing utilities.
//
// The probabilistic edge-rejection scheme of the paper (Def. 8) requires a
// fixed hash function mapping edges of the product graph to [0, 1].  All
// hashing in the library is deterministic and seedable so that every
// experiment is exactly reproducible, including across rank counts of the
// distributed generator.
#pragma once

#include <cstdint>

namespace kron {

/// SplitMix64 finalizer: a strong 64-bit mixing function.  Passes the
/// avalanche tests used for hash finalizers; adjacent inputs map to
/// uncorrelated outputs.
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combine two 64-bit values into one well-mixed value.
[[nodiscard]] constexpr std::uint64_t hash_combine(std::uint64_t a,
                                                   std::uint64_t b) noexcept {
  return mix64(a ^ (mix64(b) + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2)));
}

/// Seed pre-mix shared by every edge hash: hoisting it lets batch kernels
/// (util/simd.hpp) compute it once per buffer instead of once per edge
/// while staying bit-identical to edge_hash.
[[nodiscard]] constexpr std::uint64_t edge_hash_state(std::uint64_t seed) noexcept {
  return mix64(seed ^ 0x6b79726f6e6b6579ULL);
}

/// edge_hash with the seed pre-mix already applied.
[[nodiscard]] constexpr std::uint64_t edge_hash_from_state(std::uint64_t state,
                                                           std::uint64_t u,
                                                           std::uint64_t v) noexcept {
  const std::uint64_t lo = u < v ? u : v;
  const std::uint64_t hi = u < v ? v : u;
  return hash_combine(hash_combine(state, lo), hi);
}

/// Hash of an *undirected* edge: symmetric in (u, v) so that both arc
/// directions of an undirected edge receive the same hash, as required for
/// consistent edge rejection (Def. 8).
[[nodiscard]] constexpr std::uint64_t edge_hash(std::uint64_t u,
                                                std::uint64_t v,
                                                std::uint64_t seed = 0) noexcept {
  return edge_hash_from_state(edge_hash_state(seed), u, v);
}

/// Map a 64-bit hash to the unit interval [0, 1).
[[nodiscard]] constexpr double to_unit(std::uint64_t h) noexcept {
  // Take the top 53 bits so the result is an exactly representable double.
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/// hash(p, q) -> [0, 1) for edge rejection (Def. 8).  Symmetric in (p, q).
[[nodiscard]] constexpr double edge_unit_hash(std::uint64_t p, std::uint64_t q,
                                              std::uint64_t seed = 0) noexcept {
  return to_unit(edge_hash(p, q, seed));
}

}  // namespace kron
