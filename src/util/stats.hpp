// Streaming summary statistics (Welford's algorithm).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace kron {

/// Single-pass accumulator for count / mean / variance / min / max.
class Stats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }

  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace kron
