// Minimal leveled logger.
//
// The distributed generator logs per-rank progress; output from concurrent
// ranks is serialised by a process-wide mutex so lines never interleave.
#pragma once

#include <sstream>
#include <string>

namespace kron {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Set the minimum level that is emitted (default: kInfo).
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emit one line at `level` (thread-safe, newline appended).
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream out;
  (out << ... << std::forward<Args>(args));
  return out.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  log_line(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  log_line(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace kron
