#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>

#include "util/env.hpp"
#include "util/trace.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace kron {
namespace {

// Set while a thread is executing pool tasks; submissions from such a
// thread (nested parallelism) run inline instead of re-entering the queue.
thread_local bool tls_in_pool_task = false;

int default_num_threads() {
  // Strict full-token parse (util/env): stoi accepted "8x" as 8 and let
  // "-1" or garbage fall back to hardware_concurrency silently — a typo in
  // KRON_THREADS must be named, not absorbed into a surprise thread count.
  if (const auto parsed = env_u64("KRON_THREADS")) {
    if (*parsed == 0 || *parsed > 4096)
      throw std::runtime_error("KRON_THREADS value " + std::to_string(*parsed) +
                               " is outside [1, 4096]");
    return static_cast<int>(*parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

bool affinity_requested() {
  const char* env = std::getenv("KRON_AFFINITY");
  if (env == nullptr) return false;
  const std::string value(env);
  return !value.empty() && value != "0" && value != "off";
}

// Pin `handle` to one CPU (best effort; silently a no-op off Linux or when
// the mask call fails, e.g. inside a restricted container).
void pin_thread(std::thread& handle, unsigned cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % std::max(1u, std::thread::hardware_concurrency()), &set);
  (void)pthread_setaffinity_np(handle.native_handle(), sizeof(set), &set);
#else
  (void)handle;
  (void)cpu;
#endif
}

}  // namespace

// One submitted run_tasks call.  Task indices are claimed lock-free from
// per-participant *stripes* of contiguous indices: participant p owns
// indices [p·total/stripes, (p+1)·total/stripes) and only steals from other
// stripes once its own is drained.  Consecutive chunk indices map to
// adjacent data regions in parallel_for, so the striped assignment keeps
// each thread walking one contiguous region (no boundary cache lines
// ping-ponging between claimants) and, across repeated loops over the same
// arrays, tends to hand the same region to the same thread.  Completion,
// the number of workers still holding a pointer to the batch, and the
// first task exception are tracked under the batch mutex.
struct Batch {
  const std::function<void(std::size_t)>& task;
  const std::size_t total;
  const std::size_t stripes;
  std::unique_ptr<std::atomic<std::size_t>[]> cursors;  ///< next index per stripe
  std::atomic<int> active{0};  ///< workers currently inside work()
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t done = 0;
  std::exception_ptr error;

  Batch(const std::function<void(std::size_t)>& t, std::size_t n, std::size_t participants)
      : task(t), total(n), stripes(std::clamp<std::size_t>(participants, 1, n)) {
    cursors = std::make_unique<std::atomic<std::size_t>[]>(stripes);
    for (std::size_t s = 0; s < stripes; ++s)
      cursors[s].store(stripe_begin(s), std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t stripe_begin(std::size_t s) const { return s * total / stripes; }
  [[nodiscard]] std::size_t stripe_end(std::size_t s) const {
    return (s + 1) * total / stripes;
  }

  // True once every stripe's cursor has passed its end (no index left to
  // claim; claimed indices may still be executing).
  [[nodiscard]] bool drained() const {
    for (std::size_t s = 0; s < stripes; ++s)
      if (cursors[s].load(std::memory_order_relaxed) < stripe_end(s)) return false;
    return true;
  }

  // Claim and run indices — own stripe first, then steal — until none
  // remain; returns tasks executed.
  std::size_t work(std::size_t home) {
    std::size_t executed = 0;
    for (std::size_t offset = 0; offset < stripes; ++offset) {
      const std::size_t s = (home + offset) % stripes;
      const std::size_t end = stripe_end(s);
      while (true) {
        const std::size_t i = cursors[s].fetch_add(1, std::memory_order_relaxed);
        if (i >= end) break;
        std::exception_ptr caught;
        try {
          TRACE_SPAN("pool.task");
          TRACE_COUNTER_ADD("pool.tasks_run", 1);
          task(i);
        } catch (...) {
          caught = std::current_exception();
        }
        std::lock_guard lock(mutex);
        if (caught && !error) error = caught;
        if (++done == total) done_cv.notify_all();
        ++executed;
      }
    }
    return executed;
  }
};

struct ThreadPool::Impl {
  std::mutex mutex;
  std::condition_variable work_cv;
  std::deque<Batch*> queue;
  std::vector<std::thread> workers;
  int configured_threads = 1;
  bool affinity = false;
  bool stop = false;

  void worker_loop(std::size_t home) {
    tls_in_pool_task = true;
    while (true) {
      Batch* batch = nullptr;
      {
        std::unique_lock lock(mutex);
        work_cv.wait(lock, [&] { return stop || !queue.empty(); });
        if (stop && queue.empty()) return;
        batch = queue.front();
        if (batch->drained()) {
          queue.pop_front();
          continue;
        }
        // Registering under the queue lock pins the batch: the submitter
        // only destroys it after removing it from the queue (blocking new
        // registrations) and waiting for active to drain to zero.
        batch->active.fetch_add(1, std::memory_order_acq_rel);
      }
      batch->work(home);
      {
        std::lock_guard batch_lock(batch->mutex);
        batch->active.fetch_sub(1, std::memory_order_acq_rel);
        batch->done_cv.notify_all();
      }
    }
  }

  void spawn(int threads) {
    configured_threads = threads > 0 ? threads : 1;
    affinity = affinity_requested();
    const int worker_count = configured_threads - 1;  // the caller participates
    workers.reserve(static_cast<std::size_t>(worker_count));
    for (int w = 0; w < worker_count; ++w) {
      // Stripe 0 belongs to the submitting caller; workers take 1..N-1.
      const auto home = static_cast<std::size_t>(w) + 1;
      workers.emplace_back([this, home] { worker_loop(home); });
      // KRON_AFFINITY: pin worker w to core home (caller keeps core 0), so
      // the stripe→thread map is also a stripe→core map and per-core caches
      // see the same data region across loops.
      if (affinity) pin_thread(workers.back(), static_cast<unsigned>(home));
    }
  }

  void shutdown() {
    {
      std::lock_guard lock(mutex);
      stop = true;
    }
    work_cv.notify_all();
    for (std::thread& w : workers) w.join();
    workers.clear();
    stop = false;
  }
};

ThreadPool::ThreadPool() : impl_(new Impl) { impl_->spawn(default_num_threads()); }

ThreadPool::~ThreadPool() {
  impl_->shutdown();
  delete impl_;
}

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::set_num_threads(int n) {
  ThreadPool& pool = instance();
  pool.impl_->shutdown();
  pool.impl_->spawn(n > 0 ? n : default_num_threads());
}

int ThreadPool::num_threads() const { return impl_->configured_threads; }

bool ThreadPool::affinity_enabled() const {
  return impl_->affinity && !impl_->workers.empty();
}

void ThreadPool::run_tasks(std::size_t num_tasks,
                           const std::function<void(std::size_t)>& task) {
  if (num_tasks == 0) return;
  // Inline paths: single task, no workers, or nested submission from a
  // pool task (running inline keeps the worker set bounded and cannot
  // deadlock on queue capacity).
  if (num_tasks == 1 || impl_->workers.empty() || tls_in_pool_task) {
    for (std::size_t i = 0; i < num_tasks; ++i) {
      TRACE_SPAN("pool.task");
      TRACE_COUNTER_ADD("pool.tasks_run", 1);
      task(i);
    }
    return;
  }

  Batch batch(task, num_tasks, static_cast<std::size_t>(impl_->configured_threads));
  {
    std::lock_guard lock(impl_->mutex);
    impl_->queue.push_back(&batch);
  }
  impl_->work_cv.notify_all();

  // Participate (stripe 0), then wait for workers to finish the remainder.
  const bool was_in_task = tls_in_pool_task;
  tls_in_pool_task = true;
  batch.work(0);
  tls_in_pool_task = was_in_task;

  std::unique_lock lock(batch.mutex);
  batch.done_cv.wait(lock, [&] { return batch.done == batch.total; });
  lock.unlock();
  // All tasks ran, but the batch may still sit in the queue; remove it so
  // no further worker can pick it up, then wait out workers that already
  // hold a pointer — after that the stack-allocated batch is safe to die.
  {
    std::lock_guard queue_lock(impl_->mutex);
    auto& q = impl_->queue;
    for (auto it = q.begin(); it != q.end(); ++it) {
      if (*it == &batch) {
        q.erase(it);
        break;
      }
    }
  }
  lock.lock();
  batch.done_cv.wait(lock, [&] { return batch.active.load(std::memory_order_acquire) == 0; });
  lock.unlock();
  if (batch.error) std::rethrow_exception(batch.error);
}

}  // namespace kron
