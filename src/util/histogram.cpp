#include "util/histogram.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace kron {

void Histogram::add(std::uint64_t value, std::uint64_t multiplicity) {
  if (multiplicity == 0) return;
  counts_[value] += multiplicity;
  total_ += multiplicity;
}

void Histogram::merge(const Histogram& other) {
  for (const auto& [value, count] : other.counts_) add(value, count);
}

std::uint64_t Histogram::count(std::uint64_t value) const {
  const auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::uint64_t Histogram::min() const {
  if (counts_.empty()) throw std::logic_error("Histogram::min on empty histogram");
  return counts_.begin()->first;
}

std::uint64_t Histogram::max() const {
  if (counts_.empty()) throw std::logic_error("Histogram::max on empty histogram");
  return counts_.rbegin()->first;
}

double Histogram::mean() const {
  if (total_ == 0) throw std::logic_error("Histogram::mean on empty histogram");
  double sum = 0.0;
  for (const auto& [value, count] : counts_)
    sum += static_cast<double>(value) * static_cast<double>(count);
  return sum / static_cast<double>(total_);
}

std::uint64_t Histogram::quantile(double q) const {
  if (total_ == 0) throw std::logic_error("Histogram::quantile on empty histogram");
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  std::uint64_t seen = 0;
  for (const auto& [value, count] : counts_) {
    seen += count;
    if (static_cast<double>(seen) >= target) return value;
  }
  return counts_.rbegin()->first;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> Histogram::items() const {
  return {counts_.begin(), counts_.end()};
}

std::string Histogram::ascii(int width) const {
  if (counts_.empty()) return "(empty)\n";
  std::uint64_t peak = 0;
  for (const auto& [value, count] : counts_) peak = std::max(peak, count);
  std::ostringstream out;
  for (const auto& [value, count] : counts_) {
    const auto bar = static_cast<int>(
        static_cast<double>(count) / static_cast<double>(peak) * width);
    out << value << "\t" << count << "\t" << std::string(static_cast<std::size_t>(bar), '#')
        << "\n";
  }
  return out.str();
}

Histogram Histogram::from(const std::vector<std::uint64_t>& samples) {
  Histogram h;
  for (const std::uint64_t s : samples) h.add(s);
  return h;
}

}  // namespace kron
