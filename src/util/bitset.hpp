// Compact dynamic bitset used as the visited set in graph traversals.
//
// std::vector<bool> has awkward iterator semantics and no fast reset-to-zero
// guarantee; this is a plain word array with the three operations BFS needs.
#pragma once

#include <cstdint>
#include <vector>

namespace kron {

class Bitset {
 public:
  explicit Bitset(std::size_t n = 0) : n_(n), words_((n + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  [[nodiscard]] bool test(std::size_t i) const noexcept {
    return (words_[i >> 6] >> (i & 63)) & 1ULL;
  }

  void set(std::size_t i) noexcept { words_[i >> 6] |= 1ULL << (i & 63); }

  /// Set bit i; returns true iff the bit was previously clear.
  bool set_once(std::size_t i) noexcept {
    const std::uint64_t mask = 1ULL << (i & 63);
    std::uint64_t& w = words_[i >> 6];
    const bool was_clear = (w & mask) == 0;
    w |= mask;
    return was_clear;
  }

  void reset() noexcept { std::fill(words_.begin(), words_.end(), 0ULL); }

  /// Word-granular access for kernels that partition work on 64-bit
  /// boundaries (the bottom-up BFS sweep writes whole words per chunk, so
  /// concurrent chunks never share a word).
  [[nodiscard]] std::size_t num_words() const noexcept { return words_.size(); }
  [[nodiscard]] std::uint64_t word(std::size_t w) const noexcept { return words_[w]; }
  void set_word(std::size_t w, std::uint64_t value) noexcept { words_[w] = value; }

  /// Raw word array for batch probes (util/simd.hpp any_bit_set).
  [[nodiscard]] const std::uint64_t* words() const noexcept { return words_.data(); }

  /// Number of set bits.
  [[nodiscard]] std::size_t popcount() const noexcept {
    std::size_t c = 0;
    for (const std::uint64_t w : words_) c += static_cast<std::size_t>(__builtin_popcountll(w));
    return c;
  }

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace kron
