// Checked 64-bit arithmetic.
//
// Kronecker quantities grow multiplicatively (counts like n_A^k, τ ~ 6^k τ^k
// for the k-th power), so the ground-truth composition code must detect —
// not silently wrap on — overflow.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace kron {

/// a * b, throwing std::overflow_error if the product exceeds 64 bits.
[[nodiscard]] inline std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b) {
  std::uint64_t result = 0;
  if (__builtin_mul_overflow(a, b, &result))
    throw std::overflow_error("checked_mul: 64-bit overflow");
  return result;
}

/// a + b, throwing std::overflow_error on wraparound.
[[nodiscard]] inline std::uint64_t checked_add(std::uint64_t a, std::uint64_t b) {
  std::uint64_t result = 0;
  if (__builtin_add_overflow(a, b, &result))
    throw std::overflow_error("checked_add: 64-bit overflow");
  return result;
}

}  // namespace kron
