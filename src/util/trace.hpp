// Phase-scoped tracing and metrics.
//
// The paper's Sec. V scaling narrative attributes cost *per phase per
// rank* (generate → shuffle → sort → analytics); this subsystem makes the
// same attribution observable in every run.  Three pieces:
//
//  * RAII spans — `TRACE_SPAN("generate.rank")` records wall time, the
//    recording thread (and its rank, when Runtime::run labelled it), and
//    the nesting depth, into a per-thread buffer.  Span names must be
//    string literals (the record stores the pointer, never a copy).
//  * A process-global counter/gauge registry — `TRACE_COUNTER_ADD` /
//    `TRACE_GAUGE_MAX` accumulate named totals (arcs generated, chunks
//    flushed, messages drained, bytes exchanged, pool tasks run) with one
//    relaxed atomic op per call site.
//  * Two exporters — a human-readable per-rank phase table
//    (`phase_table()`) and Chrome `trace_event` JSON
//    (`write_chrome_trace()`, loads in chrome://tracing / Perfetto).
//
// Overhead contract (measured by bench/bench_trace.cpp):
//  * runtime-disabled (the default): a span is one relaxed atomic load and
//    a branch — about a nanosecond — so instrumented hot paths stay hot;
//  * compile-time off (`-DKRON_TRACE_OFF`): the macros expand to nothing
//    at all, for builds that must not even carry the load.
//
// Thread safety: recording threads append to their own buffer under a
// per-thread mutex that is uncontended except while `snapshot()` /
// `clear()` walk the registry, so concurrent spans, counters, and
// snapshots are race-free (covered by the TSan recipe, Trace tests).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace kron::trace {

namespace detail {
/// Runtime master switch, read on every span/counter fast path.
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// Turn recording on or off at runtime (off by default).  Spans that are
/// open when recording stops still complete and are kept.
void enable(bool on = true) noexcept;

/// True when recording is on (relaxed load — the fast-path check).
[[nodiscard]] inline bool enabled() noexcept {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Drop every recorded span and zero every counter/gauge (thread buffers
/// and registered names persist).
void clear();

/// Label the calling thread with a rank id; spans recorded afterwards
/// carry it.  Runtime::run labels each rank thread for its body's
/// lifetime; pass -1 to clear.  Threads never labelled export under a
/// synthetic per-thread lane instead.
void set_rank(int rank);

// --- recorded data -------------------------------------------------------

/// One completed span.
struct SpanRecord {
  const char* name = nullptr;  ///< static string passed to TRACE_SPAN
  std::uint64_t start_ns = 0;  ///< since the trace epoch (process start)
  std::uint64_t dur_ns = 0;
  std::uint32_t depth = 0;  ///< nesting level within the recording thread
  int rank = -1;            ///< rank label at record time, -1 if unlabelled
};

/// All spans recorded by one thread, in completion order.
struct ThreadSpans {
  std::uint64_t tid = 0;  ///< registration-order thread id
  std::vector<SpanRecord> spans;
};

struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

/// Consistent copy of everything recorded so far.
struct Snapshot {
  std::vector<ThreadSpans> threads;    ///< ordered by tid
  std::vector<CounterValue> counters;  ///< ordered by registration
  std::vector<CounterValue> gauges;    ///< running maxima
};

[[nodiscard]] Snapshot snapshot();

/// Aggregated inclusive time per (span name, rank) — the per-rank phase
/// attribution.  Spans from unlabelled threads aggregate under rank -1.
struct PhaseTotal {
  std::string name;
  int rank = -1;
  std::uint64_t count = 0;
  double seconds = 0.0;
};

/// Totals from a snapshot, ordered by name then rank.
[[nodiscard]] std::vector<PhaseTotal> phase_totals(const Snapshot& snap);
[[nodiscard]] std::vector<PhaseTotal> phase_totals();

// --- exporters -----------------------------------------------------------

/// Human-readable per-rank phase table plus the counter/gauge registry.
[[nodiscard]] std::string phase_table();

/// Chrome trace_event JSON ("X" duration events, one lane per rank /
/// thread; counters in otherData).  Loads in chrome://tracing or
/// https://ui.perfetto.dev.
void write_chrome_trace(std::ostream& out);
void write_chrome_trace_file(const std::string& path);

// --- counters / gauges ---------------------------------------------------

/// Monotonic counter.  Handles returned by counter() stay valid for the
/// process lifetime, so call sites cache them in a static.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { value_.fetch_add(delta, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Running-maximum gauge (high-water marks).
class Gauge {
 public:
  void record_max(std::uint64_t value) noexcept {
    std::uint64_t seen = value_.load(std::memory_order_relaxed);
    while (seen < value &&
           !value_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Look up (registering on first use) a named counter/gauge.
[[nodiscard]] Counter& counter(const char* name);
[[nodiscard]] Gauge& gauge(const char* name);

// --- the RAII span -------------------------------------------------------

namespace detail {
/// Cold path: stamp the start, bump the thread's nesting depth.
[[nodiscard]] std::uint64_t span_begin() noexcept;
/// Cold path: complete the record in the thread's buffer.
void span_end(const char* name, std::uint64_t start_ns) noexcept;
}  // namespace detail

/// RAII span.  When recording is off at construction the whole object is
/// a relaxed load and a branch; when on, destruction appends one record
/// to the calling thread's buffer.
class Span {
 public:
  explicit Span(const char* name) noexcept {
    if (detail::g_enabled.load(std::memory_order_relaxed)) {
      name_ = name;
      start_ns_ = detail::span_begin();
    }
  }
  ~Span() {
    if (name_ != nullptr) detail::span_end(name_, start_ns_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;  ///< nullptr = disarmed (recording was off)
  std::uint64_t start_ns_ = 0;
};

}  // namespace kron::trace

// --- macros --------------------------------------------------------------
//
// TRACE_SPAN("name");             scope-lifetime span (name: string literal)
// TRACE_COUNTER_ADD("name", n);   counter += n when recording is on
// TRACE_GAUGE_MAX("name", v);     gauge = max(gauge, v) when recording is on
//
// With -DKRON_TRACE_OFF all three expand to nothing.

#define KRON_TRACE_CONCAT_INNER(a, b) a##b
#define KRON_TRACE_CONCAT(a, b) KRON_TRACE_CONCAT_INNER(a, b)

#ifndef KRON_TRACE_OFF

#define TRACE_SPAN(name) \
  const ::kron::trace::Span KRON_TRACE_CONCAT(kron_trace_span_, __LINE__)(name)

#define TRACE_COUNTER_ADD(name, delta)                                          \
  do {                                                                          \
    if (::kron::trace::detail::g_enabled.load(std::memory_order_relaxed)) {     \
      static ::kron::trace::Counter& kron_trace_counter_ =                      \
          ::kron::trace::counter(name);                                         \
      kron_trace_counter_.add(static_cast<std::uint64_t>(delta));               \
    }                                                                           \
  } while (0)

#define TRACE_GAUGE_MAX(name, value)                                            \
  do {                                                                          \
    if (::kron::trace::detail::g_enabled.load(std::memory_order_relaxed)) {     \
      static ::kron::trace::Gauge& kron_trace_gauge_ = ::kron::trace::gauge(name); \
      kron_trace_gauge_.record_max(static_cast<std::uint64_t>(value));          \
    }                                                                           \
  } while (0)

#else  // KRON_TRACE_OFF: every macro collapses to a no-op statement.

#define TRACE_SPAN(name) static_cast<void>(0)
#define TRACE_COUNTER_ADD(name, delta) static_cast<void>(0)
#define TRACE_GAUGE_MAX(name, value) static_cast<void>(0)

#endif  // KRON_TRACE_OFF
