#include "util/posix_io.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace kron::posix_io {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

int open_write(const std::filesystem::path& path, const std::string& what) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail(what + ": cannot open " + path.string());
  return fd;
}

int open_read(const std::filesystem::path& path, const std::string& what) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail(what + ": cannot open " + path.string());
  return fd;
}

void pread_full(int fd, void* data, std::size_t size, std::uint64_t offset,
                const std::string& what) {
  char* cursor = static_cast<char*>(data);
  while (size != 0) {
    const ::ssize_t n = ::pread(fd, cursor, size, static_cast<::off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(what + ": pread failed");
    }
    if (n == 0)
      throw std::runtime_error(what + ": file truncated (" + std::to_string(size) +
                               " bytes short at offset " + std::to_string(offset) + ")");
    cursor += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void pwrite_full(int fd, const void* data, std::size_t size, std::uint64_t offset,
                 const std::string& what) {
  const char* cursor = static_cast<const char*>(data);
  while (size != 0) {
    const ::ssize_t n = ::pwrite(fd, cursor, size, static_cast<::off_t>(offset));
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(what + ": pwrite failed");
    }
    cursor += n;
    size -= static_cast<std::size_t>(n);
    offset += static_cast<std::uint64_t>(n);
  }
}

void write_full(int fd, const void* data, std::size_t size, const std::string& what) {
  const char* cursor = static_cast<const char*>(data);
  while (size != 0) {
    const ::ssize_t n = ::write(fd, cursor, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(what + ": write failed");
    }
    cursor += n;
    size -= static_cast<std::size_t>(n);
  }
}

std::size_t read_full(int fd, void* data, std::size_t size, const std::string& what) {
  char* cursor = static_cast<char*>(data);
  std::size_t total = 0;
  while (total != size) {
    const ::ssize_t n = ::read(fd, cursor + total, size - total);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail(what + ": read failed");
    }
    if (n == 0) break;  // end of stream
    total += static_cast<std::size_t>(n);
  }
  return total;
}

void fsync_fd(int fd, const std::string& what) {
  int rc = 0;
  do {
    rc = ::fsync(fd);
  } while (rc < 0 && errno == EINTR);
  // Some filesystems reject fsync on directories (EINVAL); treat a refusal
  // to sync as best-effort there, but surface real I/O errors.
  if (rc < 0 && errno != EINVAL && errno != EROFS) fail(what + ": fsync failed");
}

void fsync_path(const std::filesystem::path& path, const std::string& what) {
  int fd = -1;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) fail(what + ": cannot open " + path.string() + " for fsync");
  try {
    fsync_fd(fd, what);
  } catch (...) {
    close_fd(fd);
    throw;
  }
  close_fd(fd);
}

void close_fd(int fd) noexcept {
  if (fd < 0) return;
  // POSIX leaves the fd state unspecified after EINTR from close; Linux
  // releases it, so retrying would race a concurrent open.  Close once.
  ::close(fd);
}

long write_some(int fd, const void* data, std::size_t size) noexcept {
  while (true) {
    const ::ssize_t n = ::write(fd, data, size);
    if (n >= 0) return static_cast<long>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

long read_some(int fd, void* data, std::size_t size, bool& eof) noexcept {
  while (true) {
    const ::ssize_t n = ::read(fd, data, size);
    if (n > 0) return static_cast<long>(n);
    if (n == 0) {
      eof = true;
      return 0;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return 0;
    return -1;
  }
}

void ignore_sigpipe() noexcept { ::signal(SIGPIPE, SIG_IGN); }

}  // namespace kron::posix_io
