// Seedable, fast PRNG used by all generators.
//
// xoshiro256** (Blackman & Vigna) — excellent statistical quality, trivially
// seedable from a single 64-bit value via SplitMix64, and much faster than
// std::mt19937_64.  Deterministic across platforms, which std::* distributions
// are not; we therefore implement the few distributions we need by hand.
#pragma once

#include <array>
#include <cstdint>

#include "util/hash.hpp"

namespace kron {

class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      word = mix64(x);
    }
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept { return to_unit((*this)()); }

  /// Uniform integer in [0, bound) using Lemire's unbiased multiply-shift
  /// rejection method.
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + below(hi - lo + 1);
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace kron
