// Property-based tests: randomized factor pairs across many seeds, each
// checking a bundle of structural invariants of the Kronecker machinery.
// These complement the fixed-fixture suites with breadth — every invariant
// here must hold for *any* valid input, so each seed is an independent
// trial.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "analytics/triangles.hpp"
#include "core/connectivity_gt.hpp"
#include "core/generator.hpp"
#include "core/ground_truth.hpp"
#include "core/kron.hpp"
#include "core/rejection.hpp"
#include "gen/erdos.hpp"
#include "gen/prefattach.hpp"
#include "graph/csr.hpp"
#include "graph/ops.hpp"
#include "util/random.hpp"

namespace kron {
namespace {

/// Random factor: structure and size vary with the seed.
EdgeList random_factor(std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const vertex_t n = 6 + rng.below(10);
  switch (rng.below(3)) {
    case 0: return prepare_factor(make_gnm(n, n + rng.below(2 * n), seed), false);
    case 1: return prepare_factor(make_gnp(n, 0.2 + 0.3 * rng.uniform(), seed), false);
    default:
      return prepare_factor(make_pref_attachment(std::max<vertex_t>(n, 5), 2, seed), false);
  }
}

class RandomPair : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    a_ = random_factor(GetParam() * 2 + 1);
    b_ = random_factor(GetParam() * 2 + 2);
    if (a_.num_arcs() == 0 || b_.num_arcs() == 0) GTEST_SKIP() << "degenerate factor";
  }
  EdgeList a_;
  EdgeList b_;
};

TEST_P(RandomPair, ProductStructuralInvariants) {
  EdgeList c = kronecker_product(a_, b_);
  c.sort_dedupe();
  // Symmetric factors give a symmetric, loop-free product of the exact
  // predicted shape.
  EXPECT_TRUE(c.is_symmetric());
  EXPECT_EQ(c.num_loops(), 0u);
  const KroneckerShape shape = kronecker_shape(a_, b_);
  EXPECT_EQ(c.num_vertices(), shape.num_vertices);
  EXPECT_EQ(c.num_arcs(), shape.num_arcs);
  EXPECT_EQ(c.num_undirected_edges(), 2 * a_.num_undirected_edges() * b_.num_undirected_edges());
}

TEST_P(RandomPair, GroundTruthInternalConsistency) {
  // Invariants of the formulas themselves (no product needed):
  // Σ t_p = 3 τ_C,  Σ d_p = 2 m'_C where m' excludes loops.
  for (const LoopRegime regime :
       {LoopRegime::kNoLoops, LoopRegime::kFullLoops, LoopRegime::kFullLoopsAOnly}) {
    const KroneckerGroundTruth gt(a_, b_, regime);
    const auto triangles = gt.all_vertex_triangles();
    const std::uint64_t sum_t = std::accumulate(triangles.begin(), triangles.end(), 0ULL);
    EXPECT_EQ(sum_t, 3 * gt.global_triangles());
    const auto degrees = gt.all_degrees();
    const std::uint64_t sum_d = std::accumulate(degrees.begin(), degrees.end(), 0ULL);
    const std::uint64_t loops =
        regime == LoopRegime::kFullLoops ? gt.num_vertices() : 0;
    EXPECT_EQ(sum_d, 2 * (gt.num_edges() - loops));
  }
}

TEST_P(RandomPair, HistogramsAreConsistentWithSweeps) {
  const KroneckerGroundTruth gt(a_, b_, LoopRegime::kFullLoops);
  const auto degrees = gt.all_degrees();
  Histogram from_sweep;
  for (const auto d : degrees) from_sweep.add(d);
  EXPECT_EQ(gt.degree_histogram().items(), from_sweep.items());
  const auto triangles = gt.all_vertex_triangles();
  Histogram tri_sweep;
  for (const auto t : triangles) tri_sweep.add(t);
  EXPECT_EQ(gt.vertex_triangle_histogram().items(), tri_sweep.items());
}

TEST_P(RandomPair, GeneratorAgreesAcrossConfigurations) {
  GeneratorConfig base;
  base.ranks = 1;
  const EdgeList reference = generate_distributed(a_, b_, base).gather();
  Xoshiro256 rng(GetParam());
  GeneratorConfig other;
  other.ranks = static_cast<int>(2 + rng.below(6));
  other.scheme = rng.chance(0.5) ? PartitionScheme::k1D : PartitionScheme::k2D;
  other.shuffle_to_owner = rng.chance(0.5);
  other.owner_seed = rng();
  EXPECT_EQ(generate_distributed(a_, b_, other).gather(), reference);
}

TEST_P(RandomPair, WeichselPredictionMatchesDirect) {
  EdgeList c = kronecker_product(a_, b_);
  c.sort_dedupe();
  EXPECT_EQ(kronecker_num_components(Csr(a_), Csr(b_)), num_components(Csr(c)));
}

TEST_P(RandomPair, RejectionFamilyIsNested) {
  EdgeList c = kronecker_product(a_, b_);
  c.sort_dedupe();
  Xoshiro256 rng(GetParam() + 99);
  const double lo = 0.3 + 0.3 * rng.uniform();
  const double hi = lo + (1.0 - lo) * rng.uniform();
  const EdgeList sub_lo = hashed_subgraph(c, lo, GetParam());
  const EdgeList sub_hi = hashed_subgraph(c, hi, GetParam());
  EXPECT_LE(sub_lo.num_arcs(), sub_hi.num_arcs());
  const Csr hi_csr(sub_hi);
  for (const Edge& e : sub_lo.edges()) EXPECT_TRUE(hi_csr.has_edge(e.u, e.v));
}

TEST_P(RandomPair, TriangleFormulaMatchesEnumerationSpotChecks) {
  const KroneckerGroundTruth gt(a_, b_, LoopRegime::kNoLoops);
  EdgeList c_list = gt.materialize();
  c_list.sort_dedupe();
  const Csr c(c_list);
  const auto census = count_triangles(c);
  EXPECT_EQ(census.total, gt.global_triangles());
  Xoshiro256 rng(GetParam() + 7);
  for (int probe = 0; probe < 20; ++probe) {
    const vertex_t p = rng.below(c.num_vertices());
    EXPECT_EQ(gt.vertex_triangles(p), census.per_vertex[p]) << "vertex " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPair, ::testing::Range<std::uint64_t>(1, 26));

}  // namespace
}  // namespace kron
