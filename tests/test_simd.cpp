// Bit-identity contract of the SIMD layer (util/simd.hpp, DESIGN.md §14).
//
// Every vector kernel must produce output bit-identical to its scalar
// reference at every dispatch level the host supports, on adversarial
// inputs: all-accept / all-reject thresholds, duplicate-heavy streams,
// and lengths straddling every vector-width tail boundary.  The radix
// sort (whose pack/unpack sweeps the kernels feed) is additionally pinned
// across thread counts and across its >64-bit-key struct fallback.
//
// Build with `-DKRON_SANITIZE=address` to also prove the vector tails
// never read or write past their buffers (see CMakeLists.txt).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/sort.hpp"
#include "graph/types.hpp"
#include "util/hash.hpp"
#include "util/parallel.hpp"
#include "util/simd.hpp"

namespace kron {
namespace {

// Every level the host can actually run; on a non-AVX box this collapses
// to {kScalar} and the suite still passes (it then only pins the scalar
// reference against itself, which is the correct vacuous contract).
std::vector<simd::Level> testable_levels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::host_level() >= simd::Level::kAvx2) levels.push_back(simd::Level::kAvx2);
  if (simd::host_level() >= simd::Level::kAvx512) levels.push_back(simd::Level::kAvx512);
  return levels;
}

struct LevelGuard {
  ~LevelGuard() { simd::reset_level(); }
};

// Lengths straddling the 4-lane (AVX2) and 8-lane (AVX-512) boundaries,
// plus a few long blocks so the unrolled bodies run more than once.
const std::size_t kLengths[] = {0,  1,  2,  3,  4,  5,  7,  8,  9,  15, 16,
                                17, 31, 32, 33, 63, 64, 65, 70, 127, 1000};

std::uint64_t next_u64(std::uint64_t& state) {
  state = mix64(state + 0x9e3779b97f4a7c15ULL);
  return state;
}

std::vector<Edge> random_edges(std::size_t n, std::uint64_t& state,
                               std::uint64_t vertex_mask) {
  std::vector<Edge> edges(n);
  for (Edge& e : edges) {
    e.u = next_u64(state) & vertex_mask;
    e.v = next_u64(state) & vertex_mask;
  }
  return edges;
}

// ------------------------------------------------------------ hash_filter

void check_filter_identity(const std::vector<Edge>& input, std::uint64_t seed,
                           std::uint64_t threshold) {
  LevelGuard guard;
  std::vector<Edge> expected(input.size());
  const std::size_t expected_kept = simd::hash_filter_scalar(
      input.data(), input.size(), seed, threshold, expected.data());
  expected.resize(expected_kept);
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    std::vector<Edge> kept(input.size());
    const std::size_t n =
        simd::hash_filter(input.data(), input.size(), seed, threshold, kept.data());
    kept.resize(n);
    ASSERT_EQ(kept.size(), expected.size()) << simd::level_name(level);
    for (std::size_t i = 0; i < kept.size(); ++i) {
      ASSERT_EQ(kept[i].u, expected[i].u) << simd::level_name(level) << " at " << i;
      ASSERT_EQ(kept[i].v, expected[i].v) << simd::level_name(level) << " at " << i;
    }
  }
}

TEST(SimdHashFilter, BitIdenticalAcrossLevelsAndTails) {
  std::uint64_t state = 1;
  for (const std::size_t n : kLengths) {
    const std::vector<Edge> edges = random_edges(n, state, (1ULL << 40) - 1);
    check_filter_identity(edges, 20190527, simd::hash_threshold(0.35));
  }
}

TEST(SimdHashFilter, AllAcceptThreshold) {
  // ν = 1.0: threshold 2^53 while every hash>>11 < 2^53 — nothing rejected,
  // output must be the input verbatim (order preserved).
  std::uint64_t state = 2;
  const std::vector<Edge> edges = random_edges(257, state, ~0ULL);
  check_filter_identity(edges, 7, simd::hash_threshold(1.0));
  LevelGuard guard;
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    std::vector<Edge> kept(edges.size());
    ASSERT_EQ(simd::hash_filter(edges.data(), edges.size(), 7,
                                simd::hash_threshold(1.0), kept.data()),
              edges.size());
  }
}

TEST(SimdHashFilter, AllRejectThreshold) {
  // ν = 0.0: threshold 0 — only a hash of exactly zero would pass.
  std::uint64_t state = 3;
  const std::vector<Edge> edges = random_edges(257, state, ~0ULL);
  check_filter_identity(edges, 11, simd::hash_threshold(0.0));
}

TEST(SimdHashFilter, DuplicateHeavyStream) {
  // One of two arcs repeated 500× — compaction runs in long all-accept /
  // all-reject bursts, the worst case for the mask-compress path.
  std::vector<Edge> edges;
  for (int i = 0; i < 500; ++i) edges.push_back(i % 2 == 0 ? Edge{3, 5} : Edge{9, 2});
  check_filter_identity(edges, 13, simd::hash_threshold(0.5));
}

TEST(SimdHashFilter, ThresholdMatchesDoubleComparison) {
  // The integer rewrite must accept EXACTLY the arcs the seed's double
  // comparison accepts: to_unit(h) <= ν  ⟺  (h >> 11) <= hash_threshold(ν).
  std::uint64_t state = 4;
  const double nus[] = {0.0, 1e-9, 0.25, 0.35, 0.5, 0.999999, 1.0};
  for (const double nu : nus) {
    const std::uint64_t threshold = simd::hash_threshold(nu);
    for (int i = 0; i < 2000; ++i) {
      const std::uint64_t u = next_u64(state);
      const std::uint64_t v = next_u64(state);
      const bool by_double = edge_unit_hash(u, v, 42) <= nu;
      const bool by_integer = (edge_hash(u, v, 42) >> 11) <= threshold;
      ASSERT_EQ(by_double, by_integer) << "nu=" << nu << " u=" << u << " v=" << v;
    }
  }
}

// ------------------------------------------------------------- hash_count

TEST(SimdHashCount, BitIdenticalAcrossLevelsAndTails) {
  LevelGuard guard;
  std::uint64_t state = 5;
  for (const std::size_t n : kLengths) {
    std::vector<std::uint64_t> targets(n);
    for (auto& t : targets) t = next_u64(state) & ((1ULL << 30) - 1);
    const std::uint64_t u = next_u64(state) & ((1ULL << 30) - 1);
    const std::uint64_t threshold = simd::hash_threshold(0.4);
    const std::size_t expected =
        simd::hash_count_scalar(u, targets.data(), n, 99, threshold);
    for (const simd::Level level : testable_levels()) {
      simd::force_level(level);
      ASSERT_EQ(simd::hash_count(u, targets.data(), n, 99, threshold), expected)
          << simd::level_name(level) << " n=" << n;
    }
  }
}

// -------------------------------------------------- or_gather / any_bit_set

TEST(SimdOrGather, BitIdenticalAcrossLevelsAndTails) {
  LevelGuard guard;
  std::uint64_t state = 6;
  std::vector<std::uint64_t> words(512);
  for (auto& w : words) w = next_u64(state);
  for (const std::size_t n : kLengths) {
    std::vector<std::uint64_t> idx(n);
    for (auto& i : idx) i = next_u64(state) % words.size();
    const std::uint64_t expected = simd::or_gather_scalar(words.data(), idx.data(), n);
    for (const simd::Level level : testable_levels()) {
      simd::force_level(level);
      ASSERT_EQ(simd::or_gather(words.data(), idx.data(), n), expected)
          << simd::level_name(level) << " n=" << n;
    }
  }
}

TEST(SimdOrGather, DuplicateIndices) {
  LevelGuard guard;
  const std::vector<std::uint64_t> words = {0x1, 0x2, 0x4};
  const std::vector<std::uint64_t> idx(100, 1);  // same word gathered 100×
  for (const simd::Level level : testable_levels()) {
    simd::force_level(level);
    ASSERT_EQ(simd::or_gather(words.data(), idx.data(), idx.size()), 0x2ULL);
  }
}

TEST(SimdAnyBitSet, MatchesScalarOnSingleBitPlacements) {
  LevelGuard guard;
  std::uint64_t state = 7;
  std::vector<std::uint64_t> words(8, 0);
  words[5] = 1ULL << 17;  // exactly one bit set in the whole bitmap
  for (const std::size_t n : kLengths) {
    std::vector<std::uint64_t> bits(n);
    for (auto& b : bits) b = next_u64(state) % (words.size() * 64);
    const bool expected = simd::any_bit_set_scalar(words.data(), bits.data(), n);
    for (const simd::Level level : testable_levels()) {
      simd::force_level(level);
      ASSERT_EQ(simd::any_bit_set(words.data(), bits.data(), n), expected)
          << simd::level_name(level) << " n=" << n;
    }
    // Force a hit at every position in the probe list in turn: the early
    // exit must never change the answer.
    if (n > 0) {
      for (const std::size_t hit : {std::size_t{0}, n / 2, n - 1}) {
        std::vector<std::uint64_t> with_hit = bits;
        with_hit[hit] = 5 * 64 + 17;
        for (const simd::Level level : testable_levels()) {
          simd::force_level(level);
          ASSERT_TRUE(simd::any_bit_set(words.data(), with_hit.data(), n))
              << simd::level_name(level) << " n=" << n << " hit=" << hit;
        }
      }
    }
  }
}

// ------------------------------------------------------------ collect_equal

TEST(SimdCollectEqual, BitIdenticalAcrossLevelsAndPatterns) {
  LevelGuard guard;
  std::uint64_t state = 8;
  for (const std::size_t n : kLengths) {
    // Three densities: none match, all match, ~1/4 match.
    for (const std::uint64_t modulo : {1ULL, 4ULL, 0ULL}) {
      std::vector<std::uint64_t> values(n);
      for (std::size_t i = 0; i < n; ++i)
        values[i] = modulo == 0 ? 3 : (modulo == 1 ? 7 : next_u64(state) % 4);
      const std::uint64_t target = 3;
      std::vector<std::uint64_t> expected(n);
      expected.resize(simd::collect_equal_scalar(values.data(), n, target,
                                                 expected.data()));
      for (const simd::Level level : testable_levels()) {
        simd::force_level(level);
        std::vector<std::uint64_t> got(n);
        got.resize(simd::collect_equal(values.data(), n, target, got.data()));
        ASSERT_EQ(got, expected) << simd::level_name(level) << " n=" << n
                                 << " modulo=" << modulo;
      }
    }
  }
}

// ------------------------------------------------------- pack / unpack

TEST(SimdPackUnpack, RoundTripsAcrossLevelsAndShifts) {
  LevelGuard guard;
  std::uint64_t state = 9;
  for (const unsigned shift : {1U, 13U, 20U, 32U, 40U, 63U}) {
    const std::uint64_t mask = shift == 64 ? ~0ULL : (1ULL << shift) - 1;
    for (const std::size_t n : kLengths) {
      std::vector<Edge> edges = random_edges(n, state, ~0ULL);
      for (Edge& e : edges) {
        e.u &= (shift == 0 ? 0 : (~0ULL >> shift));
        e.v &= mask;
      }
      std::vector<std::uint64_t> expected_keys(n);
      simd::pack_shift_or_scalar(edges.data(), n, shift, expected_keys.data());
      for (const simd::Level level : testable_levels()) {
        simd::force_level(level);
        std::vector<std::uint64_t> keys(n);
        simd::pack_shift_or(edges.data(), n, shift, keys.data());
        ASSERT_EQ(keys, expected_keys) << simd::level_name(level) << " n=" << n
                                       << " shift=" << shift;
        std::vector<Edge> unpacked(n);
        simd::unpack_shift_mask(keys.data(), n, shift, mask, unpacked.data());
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_EQ(unpacked[i].u, edges[i].u) << simd::level_name(level) << " " << i;
          ASSERT_EQ(unpacked[i].v, edges[i].v) << simd::level_name(level) << " " << i;
        }
      }
    }
  }
}

// ------------------------------------------- radix sort across thread counts

// The sort must be bit-identical to std::sort at every (thread count,
// SIMD level) combination, through BOTH key paths: packed 64-bit keys
// (small vertex ids) and the >64-bit struct fallback (ids wide enough
// that bit_width(u) + bit_width(v) > 64).
void check_sort_everywhere(std::vector<Edge> input) {
  LevelGuard guard;
  std::vector<Edge> expected = input;
  std::sort(expected.begin(), expected.end());
  for (const int threads : {1, 2, 7}) {
    ThreadPool::set_num_threads(threads);
    for (const simd::Level level : testable_levels()) {
      simd::force_level(level);
      std::vector<Edge> got = input;
      sort_edges(got);
      ASSERT_EQ(got.size(), expected.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].u, expected[i].u)
            << threads << " threads, " << simd::level_name(level) << ", at " << i;
        ASSERT_EQ(got[i].v, expected[i].v)
            << threads << " threads, " << simd::level_name(level) << ", at " << i;
      }
    }
  }
  ThreadPool::set_num_threads(0);
}

TEST(SimdRadixSort, PackedKeysAcrossThreadsAndLevels) {
  // Above kRadixSortThreshold so the radix path actually runs; 20-bit ids
  // keep it on the packed 64-bit-key path.
  std::uint64_t state = 10;
  check_sort_everywhere(random_edges(kRadixSortThreshold + 1000, state,
                                     (1ULL << 20) - 1));
}

TEST(SimdRadixSort, WideKeysUseStructFallback) {
  // 40-bit u and 40-bit v: 80 key bits > 64 forces the byte-wise struct
  // fallback, which must still match std::sort everywhere.
  std::uint64_t state = 11;
  check_sort_everywhere(random_edges(kRadixSortThreshold + 1000, state,
                                     (1ULL << 40) - 1));
}

TEST(SimdRadixSort, DuplicateHeavyAcrossThreadsAndLevels) {
  std::uint64_t state = 12;
  std::vector<Edge> edges = random_edges(kRadixSortThreshold + 500, state, 7);
  check_sort_everywhere(std::move(edges));
}

// ------------------------------------------------------------ dispatch env

TEST(SimdDispatch, ForceLevelClampsToHostAndResets) {
  LevelGuard guard;
  simd::force_level(simd::Level::kAvx512);
  ASSERT_LE(simd::active_level(), simd::host_level());
  simd::force_level(simd::Level::kScalar);
  ASSERT_EQ(simd::active_level(), simd::Level::kScalar);
  simd::reset_level();
  ASSERT_LE(simd::active_level(), simd::host_level());
}

}  // namespace
}  // namespace kron
