// Tests for the distributed generator (Sec. III, Rem. 1): equivalence with
// the sequential product for every rank count and partition scheme, storage
// balance under the hash owner map, and the per-rank cost model.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>

#include "core/generator.hpp"
#include "core/kron.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "graph/csr.hpp"
#include "runtime/partition.hpp"
#include "test_factors.hpp"

namespace kron {
namespace {

EdgeList sequential_reference(const EdgeList& a, const EdgeList& b, bool loops) {
  EdgeList c = loops ? kronecker_product_with_loops(a, b) : kronecker_product(a, b);
  c.sort_dedupe();
  return c;
}

// Parameterized over (ranks, scheme, shuffle).
class GeneratorEquivalence
    : public ::testing::TestWithParam<std::tuple<int, PartitionScheme, bool>> {};

TEST_P(GeneratorEquivalence, MatchesSequentialProduct) {
  const auto [ranks, scheme, shuffle] = GetParam();
  const EdgeList a = make_gnm(9, 14, 5);
  const EdgeList b = make_gnm(7, 9, 6);

  GeneratorConfig config;
  config.ranks = ranks;
  config.scheme = scheme;
  config.shuffle_to_owner = shuffle;
  const GeneratorResult result = generate_distributed(a, b, config);

  EXPECT_EQ(result.gather(), sequential_reference(a, b, false));
  EXPECT_EQ(result.num_vertices, 63u);
  // Every arc is generated exactly once: totals match the arc product.
  const std::uint64_t generated = std::accumulate(result.generated_per_rank.begin(),
                                                  result.generated_per_rank.end(), 0ULL);
  EXPECT_EQ(generated, a.num_arcs() * b.num_arcs());
  EXPECT_EQ(result.total_arcs(), generated);
}

INSTANTIATE_TEST_SUITE_P(
    RanksSchemesShuffles, GeneratorEquivalence,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5, 7, 8),
                       ::testing::Values(PartitionScheme::k1D, PartitionScheme::k2D),
                       ::testing::Bool()),
    [](const auto& info) {
      return "R" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == PartitionScheme::k1D ? "_1D" : "_2D") +
             (std::get<2>(info.param) ? "_shuffle" : "_local");
    });

// Parameterized over (ranks, chunk): the asynchronous streaming exchange
// must produce the same graph as the bulk-synchronous path, including with
// tiny chunks that force many in-flight messages.
class AsyncGenerator : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(AsyncGenerator, MatchesBulkSynchronous) {
  const auto [ranks, chunk] = GetParam();
  const EdgeList a = make_gnm(10, 18, 15);
  const EdgeList b = make_gnm(8, 12, 16);
  GeneratorConfig config;
  config.ranks = ranks;
  config.scheme = PartitionScheme::k2D;
  config.shuffle_to_owner = true;
  config.exchange = ExchangeMode::kAsync;
  config.async_chunk = chunk;
  const GeneratorResult async_result = generate_distributed(a, b, config);
  config.exchange = ExchangeMode::kBulkSynchronous;
  const GeneratorResult sync_result = generate_distributed(a, b, config);
  EXPECT_EQ(async_result.gather(), sync_result.gather());
  // Same owner map, so the same per-rank storage contents (as sets).
  for (std::size_t rank = 0; rank < async_result.stored_per_rank.size(); ++rank) {
    auto lhs = async_result.stored_per_rank[rank];
    auto rhs = sync_result.stored_per_rank[rank];
    std::sort(lhs.begin(), lhs.end());
    std::sort(rhs.begin(), rhs.end());
    EXPECT_EQ(lhs, rhs) << "rank " << rank;
  }
  EXPECT_EQ(async_result.generated_per_rank, sync_result.generated_per_rank);
}

INSTANTIATE_TEST_SUITE_P(RanksChunks, AsyncGenerator,
                         ::testing::Combine(::testing::Values(2, 3, 5, 8),
                                            ::testing::Values(std::uint64_t{1},
                                                              std::uint64_t{7},
                                                              std::uint64_t{4096})),
                         [](const auto& info) {
                           return "R" + std::to_string(std::get<0>(info.param)) + "_chunk" +
                                  std::to_string(std::get<1>(info.param));
                         });

TEST(Generator, AsyncBoundedChannelMatchesBulkAndRespectsBound) {
  // Backpressure regression: async_chunk=1 makes every arc its own message
  // (hundreds of chunks), while the mailbox holds at most 2 — the exchange
  // must still complete (senders drain while blocked, receivers drain on a
  // production cadence), produce exactly the bulk-synchronous edge set,
  // and never exceed the configured mailbox bound.
  const EdgeList a = make_gnm(10, 18, 15);
  const EdgeList b = make_gnm(8, 12, 16);
  GeneratorConfig config;
  config.ranks = 4;
  config.scheme = PartitionScheme::k2D;
  config.shuffle_to_owner = true;
  config.exchange = ExchangeMode::kAsync;
  config.async_chunk = 1;
  config.channel_capacity = 2;  // far below the number of generated chunks
  const GeneratorResult bounded = generate_distributed(a, b, config);

  GeneratorConfig bulk = config;
  bulk.exchange = ExchangeMode::kBulkSynchronous;
  bulk.channel_capacity = 0;
  const GeneratorResult reference = generate_distributed(a, b, bulk);

  EXPECT_EQ(bounded.gather(), reference.gather());
  ASSERT_EQ(bounded.comm_per_rank.size(), 4u);
  std::uint64_t total_messages = 0;
  for (const CommStats& stats : bounded.comm_per_rank) {
    EXPECT_LE(stats.mailbox_high_water, 2u);
    total_messages += stats.messages_sent();
  }
  // Chunk size 1 ⇒ the shuffle really did stream many messages through the
  // tiny mailboxes.
  EXPECT_GT(total_messages, 100u);
}

TEST(Generator, BulkSynchronousCommStatsMatchKnownVolumes) {
  const EdgeList a = make_gnm(9, 14, 5);
  const EdgeList b = make_gnm(7, 9, 6);
  GeneratorConfig config;
  config.ranks = 3;
  config.shuffle_to_owner = true;
  const GeneratorResult result = generate_distributed(a, b, config);
  ASSERT_EQ(result.comm_per_rank.size(), 3u);
  for (std::size_t r = 0; r < 3; ++r) {
    const CommStats& stats = result.comm_per_rank[r];
    // One alltoallv: everything the rank generated went out as collective
    // payload, and everything it stores came back in.
    EXPECT_EQ(stats.collectives, 1u);
    EXPECT_EQ(stats.collective_bytes_out, result.generated_per_rank[r] * sizeof(Edge));
    EXPECT_EQ(stats.collective_bytes_in,
              result.stored_per_rank[r].size() * sizeof(Edge));
    EXPECT_EQ(stats.barriers, 2u);  // the alltoallv's open/close pair
    EXPECT_EQ(stats.messages_sent(), 0u);  // no point-to-point traffic
    EXPECT_EQ(stats.mailbox_high_water, 0u);
  }
}

TEST(Generator, AsyncCommStatsConserveMessagesAndBytes) {
  const EdgeList a = make_gnm(10, 18, 15);
  const EdgeList b = make_gnm(8, 12, 16);
  GeneratorConfig config;
  config.ranks = 3;
  config.shuffle_to_owner = true;
  config.exchange = ExchangeMode::kAsync;
  config.async_chunk = 7;
  const GeneratorResult result = generate_distributed(a, b, config);
  ASSERT_EQ(result.comm_per_rank.size(), 3u);
  std::uint64_t sent_messages = 0, sent_bytes = 0, recv_messages = 0, recv_bytes = 0;
  for (const CommStats& stats : result.comm_per_rank) {
    sent_messages += stats.messages_sent();
    sent_bytes += stats.bytes_sent();
    recv_messages += stats.messages_received();
    recv_bytes += stats.bytes_received();
    // Every rank broadcasts one end-of-stream marker to every rank
    // (including itself), so it sends and receives at least `ranks`
    // messages.
    EXPECT_GE(stats.messages_sent(), 3u);
    EXPECT_GE(stats.messages_received(), 3u);
  }
  // The exchange drains completely: global conservation of messages/bytes.
  EXPECT_EQ(sent_messages, recv_messages);
  EXPECT_EQ(sent_bytes, recv_bytes);
}

TEST(Generator, AsyncRejectsZeroChunk) {
  GeneratorConfig config;
  config.async_chunk = 0;
  EXPECT_THROW((void)generate_distributed(make_clique(3), make_clique(3), config),
               std::invalid_argument);
}

TEST(Generator, ModuloOwnerMapRoutesByRow) {
  const EdgeList a = make_gnm(8, 12, 3);
  const EdgeList b = make_gnm(6, 8, 4);
  GeneratorConfig config;
  config.ranks = 4;
  config.shuffle_to_owner = true;
  config.owner_map = OwnerMap::kModulo;
  const GeneratorResult result = generate_distributed(a, b, config);
  for (std::size_t r = 0; r < result.stored_per_rank.size(); ++r)
    for (const Edge& e : result.stored_per_rank[r]) EXPECT_EQ(e.u % 4, r);
  EXPECT_EQ(result.gather(), sequential_reference(a, b, false));
}

TEST(Generator, FullLoopConfigMatchesWithLoopsProduct) {
  const EdgeList a = make_cycle(5);
  const EdgeList b = make_path(4);
  GeneratorConfig config;
  config.ranks = 4;
  config.scheme = PartitionScheme::k2D;
  config.add_full_loops = true;
  const GeneratorResult result = generate_distributed(a, b, config);
  EXPECT_EQ(result.gather(), sequential_reference(a, b, true));
}

TEST(Generator, SweepOverFactorPairs) {
  for (const auto& [name_a, a] : testing::compact_factors()) {
    for (const auto& [name_b, b] : testing::compact_factors()) {
      GeneratorConfig config;
      config.ranks = 3;
      config.scheme = PartitionScheme::k2D;
      config.shuffle_to_owner = true;
      const GeneratorResult result = generate_distributed(a, b, config);
      EXPECT_EQ(result.gather(), sequential_reference(a, b, false))
          << name_a << " x " << name_b;
    }
  }
}

TEST(Generator, RejectsBadRankCount) {
  GeneratorConfig config;
  config.ranks = 0;
  EXPECT_THROW((void)generate_distributed(make_clique(3), make_clique(3), config),
               std::invalid_argument);
}

TEST(Generator, OneDGenerationIsBalancedInAArcs) {
  // Under 1D each rank generates |E_A|/R * |E_B| arcs (±|E_B| for the
  // block remainder).
  const EdgeList a = make_gnm(20, 40, 9);
  const EdgeList b = make_gnm(10, 15, 10);
  GeneratorConfig config;
  config.ranks = 6;
  const GeneratorResult result = generate_distributed(a, b, config);
  const std::uint64_t arcs_b = b.num_arcs();
  const std::uint64_t lo = (a.num_arcs() / 6) * arcs_b;
  const std::uint64_t hi = (a.num_arcs() / 6 + 1) * arcs_b;
  for (const std::uint64_t g : result.generated_per_rank) {
    EXPECT_GE(g, lo);
    EXPECT_LE(g, hi);
  }
}

TEST(Generator, ShuffleKeepsUndirectedEdgesTogether) {
  // The hash owner map is symmetric, so both arcs of an undirected edge
  // must land on the same rank after the shuffle.
  const EdgeList a = make_gnm(8, 12, 3);
  const EdgeList b = make_gnm(6, 8, 4);
  GeneratorConfig config;
  config.ranks = 5;
  config.shuffle_to_owner = true;
  const GeneratorResult result = generate_distributed(a, b, config);
  for (std::size_t r = 0; r < result.stored_per_rank.size(); ++r) {
    EdgeList rank_edges(result.num_vertices,
                        {result.stored_per_rank[r].begin(), result.stored_per_rank[r].end()});
    EXPECT_TRUE(rank_edges.is_symmetric()) << "rank " << r;
  }
}

TEST(Generator, ShuffleRoutesToHashOwner) {
  const EdgeList a = make_gnm(8, 12, 3);
  const EdgeList b = make_gnm(6, 8, 4);
  GeneratorConfig config;
  config.ranks = 4;
  config.shuffle_to_owner = true;
  config.owner_seed = 11;
  const GeneratorResult result = generate_distributed(a, b, config);
  for (std::size_t r = 0; r < result.stored_per_rank.size(); ++r)
    for (const Edge& e : result.stored_per_rank[r])
      EXPECT_EQ(edge_storage_owner(e.u, e.v, 4, 11), r);
}

TEST(Generator, TwoDUsesAllRanksBeyondAArcCount) {
  // Rem. 1's motivation: with 1D, ranks beyond |E_A| sit idle; with 2D they
  // do not.  Factor A has 4 arcs; run with 8 ranks.
  EdgeList a(3);
  a.add_undirected(0, 1);
  a.add_undirected(1, 2);  // 4 arcs
  const EdgeList b = make_clique(6);

  GeneratorConfig one_d;
  one_d.ranks = 8;
  const GeneratorResult r1 = generate_distributed(a, b, one_d);
  const std::uint64_t idle_1d = static_cast<std::uint64_t>(
      std::count(r1.generated_per_rank.begin(), r1.generated_per_rank.end(), 0ULL));
  EXPECT_GE(idle_1d, 4u);  // at most 4 ranks can have work

  GeneratorConfig two_d = one_d;
  two_d.scheme = PartitionScheme::k2D;
  const GeneratorResult r2 = generate_distributed(a, b, two_d);
  const std::uint64_t idle_2d = static_cast<std::uint64_t>(
      std::count(r2.generated_per_rank.begin(), r2.generated_per_rank.end(), 0ULL));
  EXPECT_LT(idle_2d, idle_1d);
  EXPECT_EQ(r2.gather(), r1.gather());
}

TEST(Generator, GatherIsCanonical) {
  GeneratorConfig config;
  config.ranks = 3;
  const EdgeList c =
      generate_distributed(make_clique(4), make_cycle(5), config).gather();
  EXPECT_TRUE(c.is_canonical());
}

TEST(Generator, ProductVertexCountOverflowDetected) {
  // n_A = n_B = 2^33, so n_C = 2^66 wraps vertex_t.  Before the
  // checked_mul guard the wrapped count silently corrupted every γ index;
  // now the generator must refuse up front (the arc counts are tiny, so
  // nothing else stops it first).
  const EdgeList huge_a(vertex_t{1} << 33, {{0, 1}, {1, 0}});
  const EdgeList huge_b(vertex_t{1} << 33, {{0, 1}, {1, 0}});
  GeneratorConfig config;
  config.ranks = 1;
  EXPECT_THROW((void)generate_distributed(huge_a, huge_b, config), std::overflow_error);
}

}  // namespace
}  // namespace kron
