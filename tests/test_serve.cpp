// krond query-service suite: wire protocol decoding, catalog lifecycle,
// and client/server round trips against an in-process server.
//
// The two properties the service is sold on are pinned here:
//  * served answers are BIT-IDENTICAL to the offline ground-truth classes
//    (same inputs, same code, doubles compared by bit pattern through the
//    u64 transport);
//  * cached answers survive catalog churn correctly — re-registering a
//    factor invalidates every product built on it, and the rebuilt
//    answers equal a cold recompute exactly.
//
// The fuzz section feeds the server truncated frames, oversized lengths,
// bad magic/version bytes, unknown opcodes and garbage payloads over a
// raw socket: the server must answer kBadRequest where the stream is
// still framed, hang up where it is not, never crash, and keep serving
// well-formed clients afterwards.  Run under ASan for the leak half.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/distance_gt.hpp"
#include "core/ground_truth.hpp"
#include "graph/edge_list.hpp"
#include "serve/catalog.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/posix_io.hpp"

namespace kron::serve {
namespace {

namespace fs = std::filesystem;

// Factor A: path 0-1-2-3 plus chord 1-3 (one triangle).  Factor B: 5-cycle.
EdgeList factor_a() {
  EdgeList g(4, {{0, 1}, {1, 2}, {2, 3}, {1, 3}});
  g.symmetrize();
  return g;
}

EdgeList factor_b() {
  EdgeList g(5, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}});
  g.symmetrize();
  return g;
}

// A replacement for factor A with different analytics (star + chord).
EdgeList factor_a2() {
  EdgeList g(4, {{0, 1}, {0, 2}, {0, 3}, {2, 3}});
  g.symmetrize();
  return g;
}

std::uint64_t closeness_bits(double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// ------------------------------------------------------------ wire format

TEST(ServeProtocol, HeaderIsSixteenBytes) {
  static_assert(sizeof(FrameHeader) == 16);
  FrameHeader header;
  EXPECT_EQ(header.magic, kMagic);
  EXPECT_NO_THROW(validate_header(header));
}

TEST(ServeProtocol, HeaderValidationNamesTheField) {
  FrameHeader header;
  header.magic = 0xDEADBEEF;
  EXPECT_THROW(validate_header(header), ProtocolError);
  header = FrameHeader{};
  header.version = 9;
  EXPECT_THROW(validate_header(header), ProtocolError);
  header = FrameHeader{};
  header.opcode = 200;
  EXPECT_THROW(validate_header(header), ProtocolError);
  header = FrameHeader{};
  header.length = kMaxFrameBytes + 1;
  EXPECT_THROW(validate_header(header), ProtocolError);
}

TEST(ServeProtocol, ReaderRejectsOverrun) {
  WireWriter out;
  out.u32(7);
  const auto bytes = out.bytes();
  WireReader in(bytes);
  EXPECT_EQ(in.u32(), 7u);
  EXPECT_THROW((void)in.u64(), ProtocolError);
}

TEST(ServeProtocol, ReaderRejectsTrailingBytes) {
  WireWriter out;
  out.u64(1);
  out.u8(0);
  const auto bytes = out.bytes();
  WireReader in(bytes);
  EXPECT_EQ(in.u64(), 1u);
  EXPECT_THROW(in.finish(), ProtocolError);
}

TEST(ServeProtocol, StringLengthIsBoundsChecked) {
  WireWriter out;
  out.u32(1000);  // claims 1000 bytes, provides none
  const auto bytes = out.bytes();
  WireReader in(bytes);
  EXPECT_THROW((void)in.str(), ProtocolError);
}

TEST(ServeProtocol, RoundTripPreservesValues) {
  WireWriter out;
  out.u8(3);
  out.u64(~std::uint64_t{0});
  out.f64(0.1 + 0.2);  // not exactly 0.3 — bit transport must not care
  out.str("kron");
  const auto bytes = out.bytes();
  WireReader in(bytes);
  EXPECT_EQ(in.u8(), 3u);
  EXPECT_EQ(in.u64(), ~std::uint64_t{0});
  EXPECT_EQ(closeness_bits(in.f64()), closeness_bits(0.1 + 0.2));
  EXPECT_EQ(in.str(), "kron");
  in.finish();
}

// --------------------------------------------------------------- catalog

TEST(ServeCatalog, RegisterDefineQueryLifecycle) {
  Catalog catalog;
  catalog.register_factor("a", factor_a());
  catalog.register_factor("b", factor_b());
  catalog.define_product("c", "a", "b", LoopRegime::kFullLoops);
  const auto context = catalog.product_context("c");
  ASSERT_TRUE(context->gt.has_value());
  EXPECT_TRUE(context->distances.has_value());
  EXPECT_EQ(context->gt->num_vertices(), 20u);
  EXPECT_EQ(catalog.contexts_built(), 1u);
  // Second query is a cache hit: same object, no extra build.
  EXPECT_EQ(catalog.product_context("c").get(), context.get());
  EXPECT_EQ(catalog.contexts_built(), 1u);
}

TEST(ServeCatalog, ReregistrationInvalidatesDependentProducts) {
  Catalog catalog;
  catalog.register_factor("a", factor_a());
  catalog.register_factor("b", factor_b());
  catalog.define_product("c", "a", "b", LoopRegime::kFullLoops);
  const auto before = catalog.product_context("c");
  catalog.register_factor("a", factor_a2());
  const auto after = catalog.product_context("c");
  EXPECT_NE(before.get(), after.get());
  EXPECT_EQ(catalog.contexts_built(), 2u);
  // The rebuilt context answers from the NEW factor, bit-for-bit equal to
  // a cold offline recompute.
  const KroneckerGroundTruth cold(factor_a2(), factor_b(), LoopRegime::kFullLoops);
  const DistanceGroundTruth cold_dist(factor_a2(), factor_b());
  for (vertex_t p = 0; p < cold.num_vertices(); ++p) {
    EXPECT_EQ(after->gt->degree(p), cold.degree(p));
    EXPECT_EQ(after->gt->vertex_triangles(p), cold.vertex_triangles(p));
    EXPECT_EQ(closeness_bits(after->distances->closeness_fast(p)),
              closeness_bits(cold_dist.closeness_fast(p)));
  }
}

TEST(ServeCatalog, NoCacheModeRebuildsEveryQueryWithEqualAnswers) {
  Catalog cached(false);
  Catalog uncached(true);
  for (Catalog* c : {&cached, &uncached}) {
    c->register_factor("a", factor_a());
    c->register_factor("b", factor_b());
    c->define_product("c", "a", "b", LoopRegime::kFullLoops);
  }
  const auto warm = cached.product_context("c");
  (void)uncached.product_context("c");
  (void)uncached.product_context("c");
  EXPECT_EQ(cached.contexts_built(), 1u);
  EXPECT_EQ(uncached.contexts_built(), 2u);  // every call is a cold build
  const auto cold = uncached.product_context("c");
  for (vertex_t p = 0; p < warm->gt->num_vertices(); ++p) {
    EXPECT_EQ(warm->gt->degree(p), cold->gt->degree(p));
    EXPECT_EQ(closeness_bits(warm->distances->closeness_fast(p)),
              closeness_bits(cold->distances->closeness_fast(p)));
  }
}

TEST(ServeCatalog, NameCollisionsAndMissingNamesDiagnosed) {
  Catalog catalog;
  catalog.register_factor("a", factor_a());
  catalog.register_factor("b", factor_b());
  catalog.define_product("c", "a", "b", LoopRegime::kFullLoops);
  EXPECT_THROW(catalog.register_factor("c", factor_a()), std::invalid_argument);
  EXPECT_THROW(catalog.define_product("a", "a", "b", LoopRegime::kNoLoops),
               std::invalid_argument);
  EXPECT_THROW(catalog.define_product("d", "a", "nope", LoopRegime::kNoLoops), StatusError);
  EXPECT_THROW((void)catalog.product_context("nope"), StatusError);
  EXPECT_FALSE(catalog.drop("nope"));
  EXPECT_TRUE(catalog.drop("a"));
  // Product survives the drop but can no longer be answered.
  EXPECT_THROW((void)catalog.product_context("c"), StatusError);
}

TEST(ServeCatalog, DisconnectedFactorLeavesDistancesUnsupported) {
  EdgeList disconnected(4, {{0, 1}, {2, 3}});
  disconnected.symmetrize();
  Catalog catalog;
  catalog.register_factor("d", disconnected);
  catalog.register_factor("b", factor_b());
  catalog.define_product("c", "d", "b", LoopRegime::kFullLoops);
  const auto context = catalog.product_context("c");
  EXPECT_TRUE(context->gt.has_value());        // triangles still fine
  EXPECT_FALSE(context->distances.has_value());  // Thm. 3 needs connectivity
}

// ------------------------------------------------- client/server fixture

class ServeRoundTrip : public ::testing::Test {
 protected:
  void SetUp() override {
    socket_path_ = (fs::temp_directory_path() /
                    ("kron_serve_" + std::to_string(::getpid()) + "_" +
                     ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".sock"))
                       .string();
    catalog_ = std::make_unique<Catalog>();
    ServerOptions options;
    options.unix_path = socket_path_;
    server_ = std::make_unique<Server>(*catalog_, options);
    server_->start();
  }

  void TearDown() override {
    server_->stop();
    server_.reset();
    catalog_.reset();
  }

  [[nodiscard]] Client client() const { return Client::connect_unix(socket_path_); }

  /// Register the standard factors and define product "c" (full loops).
  void populate(Client& c) const {
    c.register_factor("a", factor_a());
    c.register_factor("b", factor_b());
    c.define_product("c", "a", "b", LoopRegime::kFullLoops);
  }

  std::string socket_path_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServeRoundTrip, PingAndCatalog) {
  Client c = client();
  c.ping();
  populate(c);
  const CatalogSnapshot snapshot = c.catalog();
  ASSERT_EQ(snapshot.factors.size(), 2u);
  EXPECT_EQ(snapshot.factors[0].name, "a");
  EXPECT_EQ(snapshot.factors[0].num_vertices, 4u);
  ASSERT_EQ(snapshot.products.size(), 1u);
  EXPECT_EQ(snapshot.products[0].name, "c");
  EXPECT_FALSE(snapshot.products[0].cached);  // nothing queried yet
}

TEST_F(ServeRoundTrip, ServedAnswersAreBitIdenticalToOffline) {
  Client c = client();
  populate(c);
  const KroneckerGroundTruth offline(factor_a(), factor_b(), LoopRegime::kFullLoops);
  const DistanceGroundTruth offline_dist(factor_a(), factor_b());
  const vertex_t n = offline.num_vertices();
  std::vector<vertex_t> all(n);
  for (vertex_t p = 0; p < n; ++p) all[p] = p;

  const auto degrees = c.query("c", Statistic::kDegree, all);
  const auto triangles = c.query("c", Statistic::kVertexTriangles, all);
  const auto eccs = c.query("c", Statistic::kEccentricity, all);
  const auto closeness = c.query_closeness("c", all);
  ASSERT_EQ(degrees.size(), n);
  for (vertex_t p = 0; p < n; ++p) {
    EXPECT_EQ(degrees[p], offline.degree(p));
    EXPECT_EQ(triangles[p], offline.vertex_triangles(p));
    EXPECT_EQ(eccs[p], offline_dist.eccentricity(p));
    EXPECT_EQ(closeness_bits(closeness[p]), closeness_bits(offline_dist.closeness_fast(p)))
        << "closeness of vertex " << p << " not bit-identical";
  }

  // Pairwise statistics over real edges of C (and hop queries over
  // arbitrary pairs).
  std::vector<Edge> edges;
  const EdgeList materialized = offline.materialize();
  for (const Edge& edge : materialized.edges()) {
    if (!is_loop(edge)) edges.push_back(edge);
    if (edges.size() == 12) break;
  }
  const auto edge_triangles = c.query_pairs("c", Statistic::kEdgeTriangles, edges);
  for (std::size_t i = 0; i < edges.size(); ++i)
    EXPECT_EQ(edge_triangles[i], offline.edge_triangles(edges[i].u, edges[i].v));
  std::vector<Edge> pairs = {{0, 19}, {3, 3}, {7, 12}, {19, 0}};
  const auto hops = c.query_pairs("c", Statistic::kHops, pairs);
  for (std::size_t i = 0; i < pairs.size(); ++i)
    EXPECT_EQ(hops[i], offline_dist.hops(pairs[i].u, pairs[i].v));
}

TEST_F(ServeRoundTrip, BatchEqualsSingleQueries) {
  Client c = client();
  populate(c);
  const std::vector<vertex_t> batch = {0, 7, 13, 19, 4};
  const auto batched = c.query("c", Statistic::kDegree, batch);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto single = c.query("c", Statistic::kDegree, {batch[i]});
    ASSERT_EQ(single.size(), 1u);
    EXPECT_EQ(batched[i], single[0]);
  }
}

TEST_F(ServeRoundTrip, ConcurrentClientsGetConsistentAnswers) {
  {
    Client c = client();
    populate(c);
  }
  const KroneckerGroundTruth offline(factor_a(), factor_b(), LoopRegime::kFullLoops);
  const DistanceGroundTruth offline_dist(factor_a(), factor_b());
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      try {
        Client c = Client::connect_unix(socket_path_);
        for (int round = 0; round < 20; ++round) {
          const vertex_t p = static_cast<vertex_t>((t * 7 + round * 3) % 20);
          if (c.query("c", Statistic::kDegree, {p})[0] != offline.degree(p)) ++failures;
          if (closeness_bits(c.query_closeness("c", {p})[0]) !=
              closeness_bits(offline_dist.closeness_fast(p)))
            ++failures;
        }
      } catch (const std::exception&) {
        ++failures;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(ServeRoundTrip, InvalidationOverTheWireMatchesColdRecompute) {
  Client c = client();
  populate(c);
  (void)c.query("c", Statistic::kDegree, {0});  // warm the cache
  EXPECT_EQ(catalog_->contexts_built(), 1u);
  c.register_factor("a", factor_a2());  // invalidates product c
  const auto degrees = c.query("c", Statistic::kDegree, {0, 5, 19});
  EXPECT_EQ(catalog_->contexts_built(), 2u);
  const KroneckerGroundTruth cold(factor_a2(), factor_b(), LoopRegime::kFullLoops);
  EXPECT_EQ(degrees[0], cold.degree(0));
  EXPECT_EQ(degrees[1], cold.degree(5));
  EXPECT_EQ(degrees[2], cold.degree(19));
}

TEST_F(ServeRoundTrip, ErrorPathsCarryStatusAndDiagnostic) {
  Client c = client();
  populate(c);
  try {
    (void)c.query("nope", Statistic::kDegree, {0});
    FAIL() << "expected kNotFound";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.status(), Status::kNotFound);
    EXPECT_NE(std::string(error.what()).find("nope"), std::string::npos);
  }
  try {
    (void)c.query("c", Statistic::kDegree, {10'000});
    FAIL() << "expected kBadRequest";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.status(), Status::kBadRequest);
  }
  // A no-loop product supports triangles but not distances (Thm. 3 needs
  // full loops on both factors).
  c.define_product("plain", "a", "b", LoopRegime::kNoLoops);
  EXPECT_NO_THROW((void)c.query("plain", Statistic::kVertexTriangles, {0}));
  try {
    (void)c.query("plain", Statistic::kEccentricity, {0});
    FAIL() << "expected kUnsupported";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.status(), Status::kUnsupported);
  }
  // (0, 0) is a loop, never a countable edge.
  try {
    (void)c.query_pairs("c", Statistic::kEdgeTriangles, {{0, 0}});
    FAIL() << "expected kBadRequest";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.status(), Status::kBadRequest);
  }
  try {
    c.drop("nothing-here");
    FAIL() << "expected kNotFound";
  } catch (const StatusError& error) {
    EXPECT_EQ(error.status(), Status::kNotFound);
  }
  // The connection must still be usable after every error reply.
  c.ping();
}

TEST_F(ServeRoundTrip, TcpTransportServesToo) {
  Catalog catalog;
  ServerOptions options;  // no unix_path -> loopback TCP, ephemeral port
  Server tcp_server(catalog, options);
  tcp_server.start();
  ASSERT_NE(tcp_server.port(), 0);
  Client c = Client::connect_tcp("127.0.0.1", tcp_server.port());
  c.ping();
  c.register_factor("a", factor_a());
  c.register_factor("b", factor_b());
  c.define_product("c", "a", "b", LoopRegime::kFullLoops);
  const KroneckerGroundTruth offline(factor_a(), factor_b(), LoopRegime::kFullLoops);
  EXPECT_EQ(c.query("c", Statistic::kDegree, {11})[0], offline.degree(11));
  tcp_server.stop();
}

TEST_F(ServeRoundTrip, ShutdownOpcodeStopsTheServer) {
  Client c = client();
  c.shutdown_server();
  server_->wait();  // must return promptly
  server_->stop();
  EXPECT_THROW((void)Client::connect_unix(socket_path_), std::runtime_error);
}

// ------------------------------------------------------- protocol fuzzing

class ServeFuzz : public ServeRoundTrip {
 protected:
  /// Raw connected socket with a receive timeout (a hung read fails the
  /// test instead of wedging the suite).
  [[nodiscard]] int raw_socket() const {
    Client c = Client::connect_unix(socket_path_);
    const int fd = ::dup(c.fd());
    timeval timeout{2, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    return fd;
  }

  static void send_bytes(int fd, const void* data, std::size_t size) {
    posix_io::write_full(fd, data, size, "fuzz send");
  }

  /// Read one reply frame; returns its status, or nullopt when the server
  /// hung up instead of replying.
  static std::optional<Status> read_status(int fd) {
    FrameHeader header;
    std::vector<std::byte> payload;
    try {
      if (!read_frame(fd, header, payload, "fuzz reply")) return std::nullopt;
    } catch (const std::exception&) {
      return std::nullopt;
    }
    return static_cast<Status>(header.status);
  }

  /// The invariant after every attack: a fresh well-formed client works.
  void expect_still_serving() {
    Client c = client();
    c.ping();
  }
};

TEST_F(ServeFuzz, TruncatedHeaderDropsConnectionOnly) {
  const int fd = raw_socket();
  const char half[7] = {0};
  send_bytes(fd, half, sizeof(half));
  (void)::shutdown(fd, SHUT_WR);
  // A best-effort diagnostic, then hangup — never a wedge or a crash.
  EXPECT_EQ(read_status(fd), Status::kBadRequest);
  EXPECT_EQ(read_status(fd), std::nullopt);
  posix_io::close_fd(fd);
  expect_still_serving();
}

TEST_F(ServeFuzz, BadMagicIsRejected) {
  const int fd = raw_socket();
  FrameHeader header;
  header.magic = 0x12345678;
  send_bytes(fd, &header, sizeof(header));
  EXPECT_EQ(read_status(fd), Status::kBadRequest);
  EXPECT_EQ(read_status(fd), std::nullopt);  // and the server hangs up
  posix_io::close_fd(fd);
  expect_still_serving();
}

TEST_F(ServeFuzz, WrongVersionIsRejected) {
  const int fd = raw_socket();
  FrameHeader header;
  header.version = 99;
  send_bytes(fd, &header, sizeof(header));
  EXPECT_EQ(read_status(fd), Status::kBadRequest);
  posix_io::close_fd(fd);
  expect_still_serving();
}

TEST_F(ServeFuzz, UnknownOpcodeIsRejected) {
  const int fd = raw_socket();
  FrameHeader header;
  header.opcode = 250;
  send_bytes(fd, &header, sizeof(header));
  EXPECT_EQ(read_status(fd), Status::kBadRequest);
  posix_io::close_fd(fd);
  expect_still_serving();
}

TEST_F(ServeFuzz, OversizedLengthIsRejectedWithoutAllocation) {
  const int fd = raw_socket();
  FrameHeader header;
  header.opcode = static_cast<std::uint8_t>(Opcode::kQuery);
  header.length = ~std::uint64_t{0};  // 16 EiB claimed
  send_bytes(fd, &header, sizeof(header));
  EXPECT_EQ(read_status(fd), Status::kBadRequest);
  posix_io::close_fd(fd);
  expect_still_serving();
}

TEST_F(ServeFuzz, TruncatedPayloadDropsConnectionOnly) {
  const int fd = raw_socket();
  FrameHeader header;
  header.opcode = static_cast<std::uint8_t>(Opcode::kQuery);
  header.length = 64;  // promises 64 bytes, delivers 3
  send_bytes(fd, &header, sizeof(header));
  const char stub[3] = {1, 2, 3};
  send_bytes(fd, stub, sizeof(stub));
  (void)::shutdown(fd, SHUT_WR);
  EXPECT_EQ(read_status(fd), Status::kBadRequest);  // diagnostic, then hangup
  EXPECT_EQ(read_status(fd), std::nullopt);
  posix_io::close_fd(fd);
  expect_still_serving();
}

TEST_F(ServeFuzz, GarbagePayloadAnswersBadRequestAndKeepsConnection) {
  const int fd = raw_socket();
  // Well-framed frame whose payload is noise: must be answered, not fatal.
  std::vector<std::byte> noise(48);
  for (std::size_t i = 0; i < noise.size(); ++i)
    noise[i] = static_cast<std::byte>((i * 37 + 11) & 0xFF);
  FrameHeader header;
  header.opcode = static_cast<std::uint8_t>(Opcode::kQuery);
  header.length = noise.size();
  send_bytes(fd, &header, sizeof(header));
  send_bytes(fd, noise.data(), noise.size());
  EXPECT_EQ(read_status(fd), Status::kBadRequest);
  // Same connection, now a valid request: still answered.
  FrameHeader ping;
  ping.opcode = static_cast<std::uint8_t>(Opcode::kPing);
  send_bytes(fd, &ping, sizeof(ping));
  EXPECT_EQ(read_status(fd), Status::kOk);
  posix_io::close_fd(fd);
}

TEST_F(ServeFuzz, EveryOpcodeSurvivesTruncatedAndNoisyPayloads) {
  for (std::uint8_t opcode = 0; opcode_known(opcode); ++opcode) {
    for (const std::size_t size : {std::size_t{1}, std::size_t{7}, std::size_t{33}}) {
      const int fd = raw_socket();
      std::vector<std::byte> noise(size);
      for (std::size_t i = 0; i < size; ++i)
        noise[i] = static_cast<std::byte>((i * 251 + opcode * 13) & 0xFF);
      FrameHeader header;
      header.opcode = opcode;
      header.length = noise.size();
      send_bytes(fd, &header, sizeof(header));
      send_bytes(fd, noise.data(), noise.size());
      const auto status = read_status(fd);
      // Any framed answer (or a hangup for kShutdown) is acceptable; a
      // crash or a wedge is not — the 2 s receive timeout converts a
      // wedge into nullopt and the follow-up ping below catches a crash.
      (void)status;
      posix_io::close_fd(fd);
    }
  }
  expect_still_serving();
}

TEST_F(ServeFuzz, QueryCountPayloadMismatchIsDiagnosed) {
  Client c = client();
  populate(c);
  const int fd = raw_socket();
  WireWriter out;
  out.str("c");
  out.u8(static_cast<std::uint8_t>(Statistic::kDegree));
  out.u32(1000);  // claims 1000 vertices, sends one
  out.u64(0);
  FrameHeader header;
  header.opcode = static_cast<std::uint8_t>(Opcode::kQuery);
  header.length = out.bytes().size();
  send_bytes(fd, &header, sizeof(header));
  send_bytes(fd, out.bytes().data(), out.bytes().size());
  EXPECT_EQ(read_status(fd), Status::kBadRequest);
  posix_io::close_fd(fd);
  expect_still_serving();
}

}  // namespace
}  // namespace kron::serve
