// Unit tests for the in-process message-passing runtime: channels,
// point-to-point messaging, collectives, and the partitioning schemes.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "runtime/channel.hpp"
#include "runtime/comm.hpp"
#include "runtime/partition.hpp"

namespace kron {
namespace {

// ---------------------------------------------------------------- channel

TEST(Channel, FifoOrder) {
  Channel<int> ch;
  ch.push(1);
  ch.push(2);
  ch.push(3);
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_EQ(ch.pop(), 3);
}

TEST(Channel, TryPopOnEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_pop().has_value());
  ch.push(7);
  EXPECT_EQ(ch.try_pop(), 7);
}

TEST(Channel, CloseDrainsThenEnds) {
  Channel<int> ch;
  ch.push(5);
  ch.close();
  EXPECT_TRUE(ch.closed());
  EXPECT_EQ(ch.pop(), 5);
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, PopBlocksUntilPush) {
  Channel<int> ch;
  std::thread producer([&ch] { ch.push(42); });
  EXPECT_EQ(ch.pop(), 42);
  producer.join();
}

TEST(Channel, BoundedTryPushRespectsCapacity) {
  Channel<int> ch(2);
  EXPECT_EQ(ch.capacity(), 2u);
  int value = 1;
  EXPECT_TRUE(ch.try_push(value));
  value = 2;
  EXPECT_TRUE(ch.try_push(value));
  value = 3;
  EXPECT_FALSE(ch.try_push(value));
  EXPECT_EQ(value, 3);  // failed try_push must not consume the value
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_TRUE(ch.try_push(value));
  EXPECT_EQ(ch.high_water(), 2u);
  EXPECT_EQ(ch.pop(), 2);
  EXPECT_EQ(ch.pop(), 3);
}

TEST(Channel, BoundedPushBlocksUntilPop) {
  Channel<int> ch(1);
  ch.push(1);
  std::atomic<bool> second_pushed{false};
  std::thread producer([&] {
    ch.push(2);  // blocks until the consumer frees a slot
    second_pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_EQ(ch.pop(), 2);
  producer.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(ch.high_water(), 1u);
}

TEST(Channel, TryPushForTimesOutWhenFull) {
  Channel<int> ch(1);
  int value = 1;
  EXPECT_TRUE(ch.try_push(value));
  value = 2;
  EXPECT_FALSE(ch.try_push_for(value, std::chrono::milliseconds(5)));
}

TEST(Channel, ClosedChannelDropsPushes) {
  Channel<int> ch(1);
  int value = 1;
  EXPECT_TRUE(ch.try_push(value));
  ch.close();
  value = 2;
  EXPECT_TRUE(ch.try_push(value));  // dropped, not queued
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_FALSE(ch.pop().has_value());
}

TEST(Channel, TryPopForTimesOutOnEmpty) {
  Channel<int> ch;
  EXPECT_FALSE(ch.try_pop_for(std::chrono::milliseconds(2)).has_value());
  ch.push(9);
  EXPECT_EQ(ch.try_pop_for(std::chrono::milliseconds(2)), 9);
}

TEST(Channel, TryPopForWakesOnPush) {
  Channel<int> ch;
  std::thread producer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ch.push(13);
  });
  // Generous timeout: the wait must end on the push, not the deadline.
  EXPECT_EQ(ch.try_pop_for(std::chrono::seconds(10)), 13);
  producer.join();
}

TEST(Channel, TryPopForDrainsThenSeesClose) {
  Channel<int> ch;
  ch.push(1);
  ch.close();
  EXPECT_EQ(ch.try_pop_for(std::chrono::milliseconds(2)), 1);
  // Closed and drained: returns nullopt immediately, not after the timeout.
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.try_pop_for(std::chrono::seconds(10)).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(5));
  EXPECT_TRUE(ch.closed());
}

// Close must wake a waiting try_pop_for (and a waiting try_push_for)
// promptly — the timeout-vs-close race the reliable layer's receive slice
// depends on.  Run under TSan via KRON_SANITIZE=thread.
TEST(Channel, CloseWakesWaitingTimedPop) {
  Channel<int> ch;
  std::thread closer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ch.close();
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_FALSE(ch.try_pop_for(std::chrono::seconds(30)).has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(10));
  closer.join();
}

TEST(Channel, CloseWakesWaitingTimedPush) {
  Channel<int> ch(1);
  int value = 1;
  EXPECT_TRUE(ch.try_push(value));
  std::thread closer([&ch] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ch.close();
  });
  value = 2;
  const auto start = std::chrono::steady_clock::now();
  // Wakes on close and reports success (the value is dropped, as for push).
  EXPECT_TRUE(ch.try_push_for(value, std::chrono::seconds(30)));
  EXPECT_LT(std::chrono::steady_clock::now() - start, std::chrono::seconds(10));
  closer.join();
  EXPECT_EQ(ch.pop(), 1);
  EXPECT_FALSE(ch.pop().has_value());  // value 2 was dropped, not enqueued
}

// Hammer timed pops against concurrent pushes and a racing close: every
// pushed value must be received exactly once, and the consumer must
// terminate (no missed close wakeup).
TEST(Channel, TimedPopRacesPushAndClose) {
  for (int round = 0; round < 20; ++round) {
    Channel<int> ch(4);
    constexpr int kCount = 50;
    std::vector<int> received;
    std::thread consumer([&] {
      while (true) {
        auto value = ch.try_pop_for(std::chrono::microseconds(50));
        if (value) {
          received.push_back(*value);
        } else if (ch.closed()) {
          // Drain whatever landed between the timeout and the check.
          while ((value = ch.try_pop())) received.push_back(*value);
          return;
        }
      }
    });
    for (int i = 0; i < kCount; ++i) ch.push(i);
    ch.close();
    consumer.join();
    ASSERT_EQ(received.size(), kCount) << "round " << round;
    for (int i = 0; i < kCount; ++i) EXPECT_EQ(received[static_cast<std::size_t>(i)], i);
  }
}

TEST(Channel, HighWaterTracksDeepestQueue) {
  Channel<int> ch;
  for (int i = 0; i < 5; ++i) ch.push(i);
  (void)ch.pop();
  ch.push(99);
  EXPECT_EQ(ch.high_water(), 5u);
}

TEST(Channel, ConcurrentProducers) {
  Channel<int> ch;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p)
    producers.emplace_back([&ch, p] {
      for (int i = 0; i < kPerProducer; ++i) ch.push(p * kPerProducer + i);
    });
  std::set<int> received;
  for (int i = 0; i < 4 * kPerProducer; ++i) received.insert(*ch.pop());
  for (auto& t : producers) t.join();
  EXPECT_EQ(received.size(), 4u * kPerProducer);
}

// ---------------------------------------------------------------- runtime

TEST(Runtime, RanksSeeCorrectIdentity) {
  for (const int ranks : {1, 2, 5}) {
    std::vector<int> seen(static_cast<std::size_t>(ranks), -1);
    Runtime::run(ranks, [&](Comm& comm) {
      EXPECT_EQ(comm.size(), ranks);
      seen[static_cast<std::size_t>(comm.rank())] = comm.rank();
    });
    for (int r = 0; r < ranks; ++r) EXPECT_EQ(seen[static_cast<std::size_t>(r)], r);
  }
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), std::invalid_argument);
}

TEST(Runtime, PropagatesExceptions) {
  EXPECT_THROW(Runtime::run(3,
                            [](Comm& comm) {
                              if (comm.rank() == 1) throw std::runtime_error("rank failure");
                              // Other ranks park in a barrier; the abort
                              // must wake them rather than deadlock.
                              comm.barrier();
                            }),
               std::runtime_error);
}

TEST(Runtime, RethrowsRootCauseWhenOthersBlockInBarrier) {
  // Rank 2 throws the root cause; ranks 0 and 1 park in the barrier and
  // are woken by the abort with a secondary CommAbortError at a LOWER rank
  // index.  The runtime must surface the root cause, not the secondary.
  try {
    Runtime::run(3, [](Comm& comm) {
      if (comm.rank() == 2) throw std::runtime_error("root cause failure");
      comm.barrier();
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("root cause failure"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
  }
}

TEST(Runtime, RethrowsRootCauseWhenOthersBlockInRecv) {
  // Same masking scenario with the blocked ranks parked in recv(); also
  // pins that the original exception *type* survives the rethrow.
  try {
    Runtime::run(3, [](Comm& comm) {
      if (comm.rank() == 2) throw std::invalid_argument("recv root cause");
      (void)comm.recv();  // blocks until abort closes the mailbox
    });
    FAIL() << "expected an exception";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("recv root cause"), std::string::npos) << what;
    EXPECT_NE(what.find("rank 2"), std::string::npos) << what;
  }
}

TEST(Runtime, AbortErrorSurfacesWhenItIsTheOnlyFailure) {
  // A body that throws CommAbortError itself (no real root cause) must
  // still propagate something.
  EXPECT_THROW(Runtime::run(2,
                            [](Comm& comm) {
                              if (comm.rank() == 0) throw CommAbortError("synthetic abort");
                              comm.barrier();
                            }),
               CommAbortError);
}

TEST(Runtime, BarrierSynchronizes) {
  constexpr int kRanks = 4;
  std::atomic<int> phase_one{0};
  std::atomic<bool> violation{false};
  Runtime::run(kRanks, [&](Comm& comm) {
    ++phase_one;
    comm.barrier();
    // After the barrier every rank must observe all increments.
    if (phase_one.load() != kRanks) violation = true;
  });
  EXPECT_FALSE(violation.load());
}

TEST(Runtime, RepeatedBarriers) {
  std::atomic<int> counter{0};
  Runtime::run(3, [&](Comm& comm) {
    for (int round = 0; round < 50; ++round) {
      comm.barrier();
      ++counter;
      comm.barrier();
      EXPECT_EQ(counter.load() % 3, 0);  // all ranks finished the round
    }
  });
  EXPECT_EQ(counter.load(), 150);
}

TEST(Comm, SendRecvPointToPoint) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      const std::vector<std::uint64_t> data{10, 20, 30};
      comm.send_values<std::uint64_t>(1, 7, data);
    } else {
      const RankMessage message = comm.recv();
      EXPECT_EQ(message.source, 0);
      EXPECT_EQ(message.tag, 7);
      EXPECT_EQ(Comm::decode<std::uint64_t>(message),
                (std::vector<std::uint64_t>{10, 20, 30}));
    }
  });
}

TEST(Comm, SendToInvalidRankThrows) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) EXPECT_THROW(comm.send(5, 0, {}), std::out_of_range);
  });
}

TEST(Comm, TryRecvNonBlocking) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      EXPECT_FALSE(comm.try_recv().has_value());
      comm.barrier();  // let rank 1 send
      comm.barrier();
      const auto message = comm.try_recv();
      ASSERT_TRUE(message.has_value());
      EXPECT_EQ(message->tag, 3);
    } else {
      comm.barrier();
      comm.send(0, 3, {});
      comm.barrier();
    }
  });
}

TEST(Comm, AllreduceSum) {
  for (const int ranks : {1, 2, 4, 7}) {
    Runtime::run(ranks, [ranks](Comm& comm) {
      const std::uint64_t total =
          comm.allreduce_sum(static_cast<std::uint64_t>(comm.rank() + 1));
      EXPECT_EQ(total, static_cast<std::uint64_t>(ranks) * (ranks + 1) / 2);
    });
  }
}

TEST(Comm, AllreduceMax) {
  Runtime::run(5, [](Comm& comm) {
    const std::uint64_t best =
        comm.allreduce_max(static_cast<std::uint64_t>(comm.rank() * 10));
    EXPECT_EQ(best, 40u);
  });
}

TEST(Comm, AllreduceSumDouble) {
  Runtime::run(4, [](Comm& comm) {
    const double total = comm.allreduce_sum(0.5);
    EXPECT_DOUBLE_EQ(total, 2.0);
  });
}

TEST(Comm, AllgatherValues) {
  Runtime::run(3, [](Comm& comm) {
    const std::vector<std::uint64_t> mine(static_cast<std::size_t>(comm.rank()) + 1,
                                          static_cast<std::uint64_t>(comm.rank()));
    const auto all = comm.allgather_values<std::uint64_t>(mine);
    ASSERT_EQ(all.size(), 3u);
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(all[r].size(), r + 1);
      for (const auto v : all[r]) EXPECT_EQ(v, r);
    }
  });
}

TEST(Comm, AlltoallvRoutesBuckets) {
  constexpr int kRanks = 4;
  Runtime::run(kRanks, [](Comm& comm) {
    // Rank r sends value 100*r + d to destination d.
    std::vector<std::vector<std::uint64_t>> outbox(kRanks);
    for (int d = 0; d < kRanks; ++d)
      outbox[static_cast<std::size_t>(d)].push_back(
          static_cast<std::uint64_t>(100 * comm.rank() + d));
    const auto inbox = comm.alltoallv(std::move(outbox));
    ASSERT_EQ(inbox.size(), static_cast<std::size_t>(kRanks));
    for (int s = 0; s < kRanks; ++s) {
      ASSERT_EQ(inbox[static_cast<std::size_t>(s)].size(), 1u);
      EXPECT_EQ(inbox[static_cast<std::size_t>(s)][0],
                static_cast<std::uint64_t>(100 * s + comm.rank()));
    }
  });
}

TEST(Comm, AlltoallvRejectsWrongBucketCount) {
  Runtime::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      std::vector<std::vector<std::uint64_t>> outbox(1);
      EXPECT_THROW((void)comm.alltoallv(std::move(outbox)), std::invalid_argument);
    }
  });
}

TEST(Comm, CollectivesComposeAcrossRounds) {
  Runtime::run(3, [](Comm& comm) {
    std::uint64_t running = 1;
    for (int round = 0; round < 10; ++round) running = comm.allreduce_max(running + 1);
    EXPECT_EQ(running, 11u);
  });
}

// ------------------------------------------------------------- telemetry

TEST(CommStats, CountsHandBuiltExchange) {
  // Rank 0 sends three 80-byte messages (tag 7) to rank 1, which receives
  // them only after a barrier — so all three are queued at once and the
  // inbox high-water mark is exactly 3.
  std::vector<CommStats> stats(2);
  Runtime::run(2, [&](Comm& comm) {
    const std::vector<std::uint64_t> payload(10, 42);  // 80 bytes
    if (comm.rank() == 0) {
      for (int i = 0; i < 3; ++i) comm.send_values<std::uint64_t>(1, 7, payload);
      comm.barrier();
    } else {
      comm.barrier();  // all three messages are in the mailbox by now
      for (int i = 0; i < 3; ++i) {
        const RankMessage message = comm.recv();
        EXPECT_EQ(message.tag, 7);
      }
    }
    stats[static_cast<std::size_t>(comm.rank())] = comm.stats();
  });

  EXPECT_EQ(stats[0].sent.at(7).messages, 3u);
  EXPECT_EQ(stats[0].sent.at(7).bytes, 240u);
  EXPECT_EQ(stats[0].messages_received(), 0u);
  EXPECT_EQ(stats[0].barriers, 1u);

  EXPECT_EQ(stats[1].received.at(7).messages, 3u);
  EXPECT_EQ(stats[1].received.at(7).bytes, 240u);
  EXPECT_EQ(stats[1].messages_sent(), 0u);
  EXPECT_EQ(stats[1].mailbox_high_water, 3u);
  // Conservation: what rank 0 sent is exactly what rank 1 received.
  EXPECT_EQ(stats[0].bytes_sent(), stats[1].bytes_received());
}

TEST(CommStats, CollectivesAccountPayloadAndBarriers) {
  std::vector<CommStats> stats(3);
  Runtime::run(3, [&](Comm& comm) {
    (void)comm.allreduce_sum(std::uint64_t{1});
    comm.barrier();
    stats[static_cast<std::size_t>(comm.rank())] = comm.stats();
  });
  for (const CommStats& s : stats) {
    EXPECT_EQ(s.collectives, 1u);
    EXPECT_EQ(s.collective_bytes_out, sizeof(std::uint64_t));
    EXPECT_EQ(s.collective_bytes_in, 3 * sizeof(std::uint64_t));
    EXPECT_EQ(s.barriers, 3u);  // 2 inside the reduction + 1 explicit
    EXPECT_GE(s.barrier_wait_seconds, 0.0);
  }
}

TEST(Comm, BoundedMailboxMutualSendsDoNotDeadlock) {
  // Both ranks fire 50 sends at each other through capacity-1 mailboxes
  // before receiving anything.  Without the drain-while-blocked send path
  // this deadlocks immediately; with it, both complete and the queue depth
  // never exceeds the bound.
  constexpr int kMessages = 50;
  std::vector<CommStats> stats(2);
  Runtime::run(RuntimeOptions{.ranks = 2, .mailbox_capacity = 1}, [&](Comm& comm) {
    const int peer = 1 - comm.rank();
    const std::vector<std::uint64_t> payload{static_cast<std::uint64_t>(comm.rank())};
    for (int i = 0; i < kMessages; ++i) comm.send_values<std::uint64_t>(peer, 1, payload);
    std::uint64_t received = 0;
    while (received < kMessages) {
      const RankMessage message = comm.recv();
      EXPECT_EQ(message.source, peer);
      ++received;
    }
    stats[static_cast<std::size_t>(comm.rank())] = comm.stats();
  });
  for (const CommStats& s : stats) {
    EXPECT_EQ(s.messages_sent(), static_cast<std::uint64_t>(kMessages));
    EXPECT_EQ(s.messages_received(), static_cast<std::uint64_t>(kMessages));
    EXPECT_LE(s.mailbox_high_water, 1u);
  }
}

TEST(Comm, BoundedMailboxPreservesPerSenderOrder) {
  // Messages drained to the pending stash during a blocked send must still
  // be returned in arrival order.
  constexpr std::uint64_t kMessages = 40;
  Runtime::run(RuntimeOptions{.ranks = 2, .mailbox_capacity = 2}, [&](Comm& comm) {
    const int peer = 1 - comm.rank();
    for (std::uint64_t i = 0; i < kMessages; ++i)
      comm.send_values<std::uint64_t>(peer, 1, std::span(&i, 1));
    for (std::uint64_t expected = 0; expected < kMessages; ++expected) {
      const RankMessage message = comm.recv();
      EXPECT_EQ(Comm::decode<std::uint64_t>(message).at(0), expected);
    }
  });
}

// -------------------------------------------------------------- partition

TEST(Partition, BlockRangeCoversWithoutOverlap) {
  for (const std::uint64_t total : {0ULL, 1ULL, 10ULL, 97ULL}) {
    for (const std::uint64_t parts : {1ULL, 2ULL, 3ULL, 8ULL}) {
      std::uint64_t covered = 0;
      std::uint64_t previous_end = 0;
      for (std::uint64_t p = 0; p < parts; ++p) {
        const IndexRange range = block_range(total, parts, p);
        EXPECT_EQ(range.begin, previous_end);
        previous_end = range.end;
        covered += range.size();
      }
      EXPECT_EQ(previous_end, total);
      EXPECT_EQ(covered, total);
    }
  }
}

TEST(Partition, BlockRangeBalanced) {
  for (std::uint64_t p = 0; p < 4; ++p) {
    const IndexRange range = block_range(10, 4, p);
    EXPECT_GE(range.size(), 2u);
    EXPECT_LE(range.size(), 3u);
  }
}

TEST(Partition, BlockRangeValidates) {
  EXPECT_THROW((void)block_range(10, 0, 0), std::invalid_argument);
  EXPECT_THROW((void)block_range(10, 2, 2), std::out_of_range);
}

TEST(Partition, CyclicOwner) {
  EXPECT_EQ(cyclic_owner(0, 3), 0u);
  EXPECT_EQ(cyclic_owner(7, 3), 1u);
}

TEST(Partition, EdgeStorageOwnerIsSymmetricAndInRange) {
  for (std::uint64_t u = 0; u < 20; ++u) {
    for (std::uint64_t v = 0; v < 20; ++v) {
      const std::uint64_t owner = edge_storage_owner(u, v, 7);
      EXPECT_LT(owner, 7u);
      EXPECT_EQ(owner, edge_storage_owner(v, u, 7));
    }
  }
}

TEST(Grid2D, DimensionsMatchRemarkOne) {
  // parts_a = ceil(sqrt(R)), parts_b = ceil(R / parts_a).
  const Grid2D g4(4);
  EXPECT_EQ(g4.parts_a(), 2u);
  EXPECT_EQ(g4.parts_b(), 2u);
  const Grid2D g10(10);
  EXPECT_EQ(g10.parts_a(), 4u);
  EXPECT_EQ(g10.parts_b(), 3u);
}

TEST(Grid2D, CellsCoverExactlyOnce) {
  for (const std::uint64_t ranks : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL, 7ULL, 8ULL, 16ULL}) {
    const Grid2D grid(ranks);
    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    for (std::uint64_t r = 0; r < ranks; ++r) {
      for (const auto& cell : grid.cells_of(r)) {
        EXPECT_LT(cell.first, grid.parts_a());
        EXPECT_LT(cell.second, grid.parts_b());
        EXPECT_TRUE(seen.insert(cell).second) << "duplicate cell";
        EXPECT_EQ(grid.owner(cell.first, cell.second), r);
      }
    }
    EXPECT_EQ(seen.size(), grid.num_cells());
  }
}

TEST(Grid2D, Validates) {
  EXPECT_THROW(Grid2D(0), std::invalid_argument);
  const Grid2D grid(4);
  EXPECT_THROW((void)grid.owner(5, 0), std::out_of_range);
  EXPECT_THROW((void)grid.cells_of(4), std::out_of_range);
}

}  // namespace
}  // namespace kron
