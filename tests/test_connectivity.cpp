// Tests for bipartiteness and the Weichsel connectivity ground truth
// (core/connectivity_gt.hpp): the component count of A ⊗ B predicted from
// factor structure vs counted on the materialised product, across
// bipartite / non-bipartite / looped / disconnected factor combinations.
#include <gtest/gtest.h>

#include "analytics/bipartite.hpp"
#include "core/connectivity_gt.hpp"
#include "core/kron.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "gen/prefattach.hpp"
#include "graph/csr.hpp"
#include "graph/ops.hpp"
#include "test_factors.hpp"

namespace kron {
namespace {

// ------------------------------------------------------------- bipartite

TEST(Bipartite, ClassifiesClassicFamilies) {
  EXPECT_TRUE(is_bipartite(Csr(make_path(6))));
  EXPECT_TRUE(is_bipartite(Csr(make_cycle(8))));
  EXPECT_FALSE(is_bipartite(Csr(make_cycle(7))));
  EXPECT_TRUE(is_bipartite(Csr(make_star(9))));
  EXPECT_TRUE(is_bipartite(Csr(make_complete_bipartite(3, 5))));
  EXPECT_FALSE(is_bipartite(Csr(make_clique(3))));
  EXPECT_TRUE(is_bipartite(Csr(make_grid(4, 5))));
}

TEST(Bipartite, SelfLoopMakesNonBipartite) {
  EdgeList g = make_path(4);
  g.add(2, 2);
  g.sort_dedupe();
  EXPECT_FALSE(is_bipartite(Csr(g)));
}

TEST(Bipartite, EmptyAndEdgelessGraphsAreBipartite) {
  EXPECT_TRUE(is_bipartite(Csr(EdgeList(0))));
  EXPECT_TRUE(is_bipartite(Csr(EdgeList(5))));
}

TEST(Bipartite, PartitionIsProper) {
  const Csr g(make_complete_bipartite(4, 3));
  const auto side = bipartition(g);
  ASSERT_TRUE(side.has_value());
  for (vertex_t u = 0; u < g.num_vertices(); ++u)
    for (const vertex_t v : g.neighbors(u)) EXPECT_NE((*side)[u], (*side)[v]);
}

TEST(Bipartite, HandlesDisconnectedMixtures) {
  // One bipartite component + one odd cycle: the graph is not bipartite.
  EdgeList g(9);
  g.add_undirected(0, 1);
  g.add_undirected(1, 2);  // path component (bipartite)
  g.add_undirected(3, 4);
  g.add_undirected(4, 5);
  g.add_undirected(5, 3);  // triangle component
  EXPECT_FALSE(is_bipartite(Csr(g)));
}

// -------------------------------------------------------------- Weichsel

std::uint64_t direct_components(const EdgeList& a, const EdgeList& b) {
  EdgeList c = kronecker_product(a, b);
  c.sort_dedupe();
  return num_components(Csr(c));
}

TEST(Weichsel, BothNonBipartiteGivesConnected) {
  const EdgeList a = make_clique(4);
  const EdgeList b = make_cycle(5);
  EXPECT_EQ(kronecker_num_components(Csr(a), Csr(b)), 1u);
  EXPECT_EQ(direct_components(a, b), 1u);
  EXPECT_TRUE(kronecker_is_connected(Csr(a), Csr(b)));
}

TEST(Weichsel, BothBipartiteGivesTwoComponents) {
  const EdgeList a = make_path(4);
  const EdgeList b = make_cycle(6);
  EXPECT_EQ(kronecker_num_components(Csr(a), Csr(b)), 2u);
  EXPECT_EQ(direct_components(a, b), 2u);
  EXPECT_FALSE(kronecker_is_connected(Csr(a), Csr(b)));
}

TEST(Weichsel, OneNonBipartiteSideSuffices) {
  EXPECT_EQ(kronecker_num_components(Csr(make_path(5)), Csr(make_cycle(7))), 1u);
  EXPECT_EQ(direct_components(make_path(5), make_cycle(7)), 1u);
}

TEST(Weichsel, SelfLoopsConnectTheProduct) {
  // This is why the paper adds full self loops: a bipartite factor plus
  // loops becomes non-bipartite, keeping C connected.
  EdgeList a = make_path(4);
  a.add_full_loops();
  const EdgeList b = make_cycle(6);
  EXPECT_EQ(kronecker_num_components(Csr(a), Csr(b)), 1u);
  EXPECT_EQ(direct_components(a, b), 1u);
}

TEST(Weichsel, IsolatedVerticesMultiply) {
  // A has an isolated vertex: each of its |V_B| product copies is its own
  // component.
  EdgeList a(3);
  a.add_undirected(0, 1);  // vertex 2 isolated
  const EdgeList b = make_clique(3);
  // Pair (edge-comp of A, B): both have arcs, A-comp bipartite (single
  // edge), B non-bipartite -> 1; isolated vertex x B -> 3 components.
  EXPECT_EQ(kronecker_num_components(Csr(a), Csr(b)), 4u);
  EXPECT_EQ(direct_components(a, b), 4u);
}

TEST(Weichsel, DisjointCliquesCompose) {
  // 2 triangles x 3 triangles: every pair of (non-bipartite) components
  // gives one product component.
  const EdgeList a = make_disjoint_cliques(2, 3);
  const EdgeList b = make_disjoint_cliques(3, 3);
  EXPECT_EQ(kronecker_num_components(Csr(a), Csr(b)), 6u);
  EXPECT_EQ(direct_components(a, b), 6u);
}

TEST(Weichsel, MixedComponentZoo) {
  // A: a triangle + a single edge + an isolated vertex.
  EdgeList a(6);
  a.add_undirected(0, 1);
  a.add_undirected(1, 2);
  a.add_undirected(2, 0);
  a.add_undirected(3, 4);  // vertex 5 isolated
  // B: an even cycle + a loop vertex.
  EdgeList b(5);
  b.add_undirected(0, 1);
  b.add_undirected(1, 2);
  b.add_undirected(2, 3);
  b.add_undirected(3, 0);
  b.add(4, 4);
  // Pairs: (tri, C4): 1; (tri, loop): 1; (edge, C4): 2; (edge, loop): 2? --
  // the single edge is bipartite, loop vertex is non-bipartite -> 1;
  // (isolated, C4): 4; (isolated, loop): 1.
  const std::uint64_t predicted = kronecker_num_components(Csr(a), Csr(b));
  EXPECT_EQ(predicted, direct_components(a, b));
  EXPECT_EQ(predicted, 1u + 1u + 2u + 1u + 4u + 1u);
}

TEST(Weichsel, SweepAgainstDirectCount) {
  const auto factors = testing::standard_factors();
  for (const auto& [name_a, a] : factors) {
    for (const auto& [name_b, b] : factors) {
      EXPECT_EQ(kronecker_num_components(Csr(a), Csr(b)), direct_components(a, b))
          << name_a << " x " << name_b;
    }
  }
}

TEST(Weichsel, LoopedFactorSweep) {
  // With full loops on A every product against a connected factor is
  // connected — the paper's standard preparation.
  for (const auto& [name, factor] : testing::compact_factors()) {
    EdgeList a = factor;
    a.add_full_loops();
    EXPECT_EQ(kronecker_num_components(Csr(a), Csr(factor)), 1u) << name;
  }
}

}  // namespace
}  // namespace kron
