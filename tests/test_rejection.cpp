// Tests for probabilistic edge rejection (Sec. IV-C, Def. 8): hashed
// subgraph semantics, joint multi-ν triangle counting, and the expected
// local triangle counts ν³ t_p / ν² Δ_pq.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/triangles.hpp"
#include "core/ground_truth.hpp"
#include "core/kron.hpp"
#include "core/rejection.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "gen/prefattach.hpp"
#include "graph/csr.hpp"
#include "graph/ops.hpp"
#include "util/hash.hpp"
#include "util/stats.hpp"

namespace kron {
namespace {

EdgeList test_product() {
  EdgeList c = kronecker_product_with_loops(prepare_factor(make_pref_attachment(20, 2, 3), false),
                                            make_gnm(12, 24, 5));
  c.sort_dedupe();
  return c;
}

// --------------------------------------------------------- subgraph filter

TEST(HashedSubgraph, NuOneKeepsEverything) {
  const EdgeList c = test_product();
  EXPECT_EQ(hashed_subgraph(c, 1.0).num_arcs(), c.num_arcs());
}

TEST(HashedSubgraph, NuZeroKeepsAlmostNothing) {
  // hash == 0.0 exactly has probability ~2^-53 per edge.
  const EdgeList c = test_product();
  EXPECT_EQ(hashed_subgraph(c, 0.0).num_arcs(), 0u);
}

TEST(HashedSubgraph, PreservesSymmetry) {
  const EdgeList c = test_product();
  const EdgeList sub = hashed_subgraph(c, 0.7);
  EXPECT_TRUE(sub.is_symmetric());
}

TEST(HashedSubgraph, FamilyIsMonotone) {
  // ν < ν' ⟹ G_{C,ν} ⊆ G_{C,ν'}: every kept edge of the smaller threshold
  // appears in the larger one.
  const EdgeList c = test_product();
  const EdgeList small = hashed_subgraph(c, 0.5);
  const Csr large_csr(hashed_subgraph(c, 0.9));
  for (const Edge& e : small.edges()) EXPECT_TRUE(large_csr.has_edge(e.u, e.v));
}

TEST(HashedSubgraph, SurvivalRateNearNu) {
  const EdgeList c = test_product();
  for (const double nu : {0.9, 0.5, 0.2}) {
    const EdgeList sub = hashed_subgraph(c, nu);
    const double rate =
        static_cast<double>(sub.num_arcs()) / static_cast<double>(c.num_arcs());
    // Binomial concentration: thousands of edges, so ±0.03 is generous.
    EXPECT_NEAR(rate, nu, 0.03) << "nu=" << nu;
  }
}

TEST(HashedSubgraph, SeedChangesSelection) {
  const EdgeList c = test_product();
  EXPECT_NE(hashed_subgraph(c, 0.5, 1), hashed_subgraph(c, 0.5, 2));
}

TEST(HashedSubgraph, RejectsBadNu) {
  EXPECT_THROW((void)hashed_subgraph(EdgeList(2), -0.1), std::invalid_argument);
  EXPECT_THROW((void)hashed_subgraph(EdgeList(2), 1.1), std::invalid_argument);
}

TEST(SurvivingEdgeCount, MatchesFilteredGraph) {
  const EdgeList c = test_product();
  const Csr csr(c);
  for (const double nu : {1.0, 0.95, 0.5}) {
    const EdgeList sub = hashed_subgraph(c, nu);
    EXPECT_EQ(surviving_edge_count(csr, nu), sub.num_undirected_edges()) << "nu=" << nu;
  }
}

// ------------------------------------------------------------ joint census

TEST(JointCensus, NuOneMatchesPlainCensus) {
  const Csr c(test_product());
  const TriangleCounts plain = count_triangles(c);
  const JointTriangleCensus joint = joint_triangle_census(c, {1.0});
  EXPECT_EQ(joint.totals[0], plain.total);
  EXPECT_EQ(joint.per_vertex[0], plain.per_vertex);
}

TEST(JointCensus, MatchesPerNuDirectCounts) {
  // The one-sweep joint count must equal counting triangles of each
  // filtered subgraph separately — the Def. 8 consistency property.
  const EdgeList c_list = test_product();
  const Csr c(c_list);
  const std::vector<double> nus{0.9, 0.95, 0.99, 1.0};
  const JointTriangleCensus joint = joint_triangle_census(c, nus, 7);
  for (std::size_t idx = 0; idx < nus.size(); ++idx) {
    const Csr sub(hashed_subgraph(c_list, nus[idx], 7));
    const TriangleCounts direct = count_triangles(sub);
    EXPECT_EQ(joint.totals[idx], direct.total) << "nu=" << nus[idx];
    EXPECT_EQ(joint.per_vertex[idx], direct.per_vertex) << "nu=" << nus[idx];
  }
}

TEST(JointCensus, NuOnePerArcMatchesPlainCensus) {
  const Csr c(test_product());
  const TriangleCounts plain = count_triangles(c);
  const JointTriangleCensus joint = joint_triangle_census(c, {1.0});
  EXPECT_EQ(joint.per_arc[0], plain.per_arc);
}

TEST(JointCensus, PerArcMatchesExactCensusOfEachSubgraph) {
  // The per-edge half of Def. 8: the one-sweep joint census must assign
  // every arc of G_C the exact triangle count that edge has in G_{C,ν} —
  // and zero to arcs whose own hash rejects them (a triangle containing a
  // rejected edge can never survive, its max hash exceeds ν).
  const EdgeList c_list = test_product();
  const Csr c(c_list);
  const std::uint64_t seed = 7;
  const std::vector<double> nus{0.9, 0.95, 1.0};
  const JointTriangleCensus joint = joint_triangle_census(c, nus, seed);
  for (std::size_t idx = 0; idx < joint.nus.size(); ++idx) {
    const double nu = joint.nus[idx];
    const Csr sub(hashed_subgraph(c_list, nu, seed));
    const TriangleCounts direct = count_triangles(sub);
    for (vertex_t u = 0; u < c.num_vertices(); ++u) {
      for (const vertex_t v : c.neighbors(u)) {
        const std::uint64_t counted = joint.per_arc[idx][c.arc_index(u, v)];
        if (edge_unit_hash(u, v, seed) <= nu) {
          EXPECT_EQ(counted, direct.per_arc[sub.arc_index(u, v)])
              << "nu=" << nu << " edge (" << u << "," << v << ")";
        } else {
          EXPECT_EQ(counted, 0u) << "nu=" << nu << " rejected edge (" << u << "," << v << ")";
        }
      }
    }
  }
}

TEST(JointCensus, TotalsAreMonotoneInNu) {
  const Csr c(test_product());
  const JointTriangleCensus joint = joint_triangle_census(c, {0.5, 0.7, 0.9, 1.0});
  for (std::size_t i = 1; i < joint.nus.size(); ++i)
    EXPECT_LE(joint.totals[i - 1], joint.totals[i]);
}

TEST(JointCensus, UnsortedInputIsSorted) {
  const Csr c(test_product());
  const JointTriangleCensus joint = joint_triangle_census(c, {1.0, 0.5, 0.9});
  EXPECT_EQ(joint.nus, (std::vector<double>{0.5, 0.9, 1.0}));
}

// ----------------------------------------------------------- expectations

TEST(Expectations, VertexTriangleMeanNearNuCubed) {
  // Average over many vertices: Σ_p t_p^(ν) ≈ ν³ Σ_p t_p.  One hash draw
  // per edge, so this is a concentration test on the global count (each
  // triangle survives with probability exactly ν³).
  const Csr c(test_product());
  const TriangleCounts plain = count_triangles(c);
  const JointTriangleCensus joint = joint_triangle_census(c, {0.9, 0.95});
  for (std::size_t idx = 0; idx < joint.nus.size(); ++idx) {
    const double nu = joint.nus[idx];
    const double expected = nu * nu * nu * static_cast<double>(plain.total);
    const double sd = std::sqrt(expected);  // Poisson-ish scale
    EXPECT_NEAR(static_cast<double>(joint.totals[idx]), expected, 6 * sd) << "nu=" << nu;
  }
}

TEST(Expectations, EdgeTriangleMeanNearNuSquared) {
  // Over surviving edges, the mean ratio Δ^(ν)/Δ should approach ν².
  const EdgeList c_list = test_product();
  const Csr c(c_list);
  const TriangleCounts plain = count_triangles(c);
  const double nu = 0.9;
  const Csr sub(hashed_subgraph(c_list, nu, 0));
  const TriangleCounts filtered = count_triangles(sub);
  Stats ratio;
  for (vertex_t u = 0; u < sub.num_vertices(); ++u) {
    for (const vertex_t v : sub.neighbors(u)) {
      if (u >= v) continue;
      const std::uint64_t before = plain.per_arc[c.arc_index(u, v)];
      if (before < 3) continue;  // skip tiny denominators
      const std::uint64_t after = filtered.per_arc[sub.arc_index(u, v)];
      ratio.add(static_cast<double>(after) / static_cast<double>(before));
    }
  }
  ASSERT_GT(ratio.count(), 50u);
  EXPECT_NEAR(ratio.mean(), nu * nu, 0.05);
}

TEST(Expectations, JointCensusPinsBothDefEightExpectations) {
  // Both Def. 8 expectations from ONE joint census, checked against the
  // exact census of G_C: Σ_p t_p^(ν) concentrates around ν³ Σ_p t_p, and
  // over surviving edges the mean of Δ_pq^(ν) / (ν² Δ_pq) is near 1.
  const EdgeList c_list = test_product();
  const Csr c(c_list);
  const TriangleCounts plain = count_triangles(c);
  const double nu = 0.9;
  const JointTriangleCensus joint = joint_triangle_census(c, {nu}, 0);

  double vertex_observed = 0.0;
  double vertex_expected = 0.0;
  for (vertex_t p = 0; p < c.num_vertices(); ++p) {
    vertex_observed += static_cast<double>(joint.per_vertex[0][p]);
    vertex_expected += expected_vertex_triangles(nu, plain.per_vertex[p]);
  }
  // Σ t_p = 3τ, so the Poisson-ish scale is sqrt(3 · expected τ) · 3.
  const double sd = 3.0 * std::sqrt(vertex_expected / 3.0);
  EXPECT_NEAR(vertex_observed, vertex_expected, 6 * sd);

  Stats edge_ratio;
  for (vertex_t u = 0; u < c.num_vertices(); ++u) {
    for (const vertex_t v : c.neighbors(u)) {
      if (u >= v) continue;
      if (edge_unit_hash(u, v, 0) > nu) continue;  // expectation conditions on survival
      const std::uint64_t before = plain.per_arc[c.arc_index(u, v)];
      if (before < 3) continue;  // skip tiny denominators
      const double expected = expected_edge_triangles(nu, before);
      edge_ratio.add(static_cast<double>(joint.per_arc[0][c.arc_index(u, v)]) / expected);
    }
  }
  ASSERT_GT(edge_ratio.count(), 50u);
  EXPECT_NEAR(edge_ratio.mean(), 1.0, 0.07);
}

TEST(Expectations, HelperFormulas) {
  EXPECT_DOUBLE_EQ(expected_vertex_triangles(0.5, 80), 10.0);
  EXPECT_DOUBLE_EQ(expected_edge_triangles(0.5, 80), 20.0);
  EXPECT_DOUBLE_EQ(expected_vertex_triangles(1.0, 7), 7.0);
}

TEST(Expectations, GroundTruthSurvivesRejectionCheck) {
  // The paper's validation story: an algorithm that gets all local counts
  // of G_C right can be checked on G_{C,ν} by filtering its enumeration.
  // Here: ground-truth t_p of C (Cor. 1) equals the ν=1 joint census.
  const EdgeList a = prepare_factor(make_pref_attachment(15, 2, 3), false);
  const EdgeList b = make_gnm(10, 18, 5);
  const KroneckerGroundTruth gt(a, b, LoopRegime::kFullLoops);
  const Csr c(gt.materialize());
  const JointTriangleCensus joint = joint_triangle_census(c, {1.0});
  const auto predicted = gt.all_vertex_triangles();
  EXPECT_EQ(joint.per_vertex[0], predicted);
}

}  // namespace
}  // namespace kron
