// Tests for the intro scaling-law table as a whole: every row checked
// end-to-end on materialised products, plus the law-coefficient helpers.
// This is the executable form of the table in Sec. I.
#include <gtest/gtest.h>

#include <algorithm>

#include "analytics/clustering.hpp"
#include "analytics/eccentricity.hpp"
#include "analytics/triangles.hpp"
#include "core/community_gt.hpp"
#include "core/distance_gt.hpp"
#include "core/ground_truth.hpp"
#include "core/index.hpp"
#include "core/kron.hpp"
#include "core/laws.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "graph/csr.hpp"
#include "graph/ops.hpp"

namespace kron {
namespace {

// Fixed factor pair used by most rows: connected, triangle-rich, irregular.
EdgeList factor_a() { return prepare_factor(make_gnm(11, 24, 31), false); }
EdgeList factor_b() { return prepare_factor(make_gnm(9, 17, 32), false); }

TEST(ScalingTable, VerticesRow) {
  // n_C = n_A n_B.
  const EdgeList a = factor_a(), b = factor_b();
  EXPECT_EQ(kronecker_product(a, b).num_vertices(), a.num_vertices() * b.num_vertices());
}

TEST(ScalingTable, EdgesRow) {
  // m_C = 2 m_A m_B (simple factors).
  const EdgeList a = factor_a(), b = factor_b();
  EdgeList c = kronecker_product(a, b);
  c.sort_dedupe();
  EXPECT_EQ(c.num_undirected_edges(),
            2 * a.num_undirected_edges() * b.num_undirected_edges());
}

TEST(ScalingTable, DegreeRow) {
  // d_C = d_A ⊗ d_B.
  const EdgeList a = factor_a(), b = factor_b();
  const Csr ca(a), cb(b), cc(kronecker_product(a, b));
  const vertex_t n_b = cb.num_vertices();
  for (vertex_t i = 0; i < ca.num_vertices(); ++i)
    for (vertex_t k = 0; k < n_b; ++k)
      EXPECT_EQ(cc.degree(gamma(i, k, n_b)), ca.degree(i) * cb.degree(k));
}

TEST(ScalingTable, VertexTrianglesRow) {
  // t_C = 2 t_A ⊗ t_B.
  const EdgeList a = factor_a(), b = factor_b();
  const auto ta = count_triangles(Csr(a)).per_vertex;
  const auto tb = count_triangles(Csr(b)).per_vertex;
  EdgeList c = kronecker_product(a, b);
  c.sort_dedupe();
  const auto tc = count_triangles(Csr(c)).per_vertex;
  const vertex_t n_b = b.num_vertices();
  for (vertex_t i = 0; i < a.num_vertices(); ++i)
    for (vertex_t k = 0; k < n_b; ++k)
      EXPECT_EQ(tc[gamma(i, k, n_b)], 2 * ta[i] * tb[k]);
}

TEST(ScalingTable, EdgeTrianglesRow) {
  // Δ_C = Δ_A ⊗ Δ_B at every product edge.
  const EdgeList a = factor_a(), b = factor_b();
  const Csr ca(a), cb(b);
  const auto census_a = count_triangles(ca);
  const auto census_b = count_triangles(cb);
  EdgeList c_list = kronecker_product(a, b);
  c_list.sort_dedupe();
  const Csr cc(c_list);
  const auto census_c = count_triangles(cc);
  const vertex_t n_b = cb.num_vertices();
  for (vertex_t i = 0; i < ca.num_vertices(); ++i)
    for (const vertex_t j : ca.neighbors(i))
      for (vertex_t k = 0; k < n_b; ++k)
        for (const vertex_t l : cb.neighbors(k))
          EXPECT_EQ(census_c.per_arc[cc.arc_index(gamma(i, k, n_b), gamma(j, l, n_b))],
                    census_a.per_arc[ca.arc_index(i, j)] *
                        census_b.per_arc[cb.arc_index(k, l)]);
}

TEST(ScalingTable, GlobalTrianglesRow) {
  // τ_C = 6 τ_A τ_B.
  const EdgeList a = factor_a(), b = factor_b();
  EdgeList c = kronecker_product(a, b);
  c.sort_dedupe();
  EXPECT_EQ(global_triangle_count(Csr(c)),
            6 * global_triangle_count(Csr(a)) * global_triangle_count(Csr(b)));
}

TEST(ScalingTable, ClusteringRow) {
  // η_C(p) >= (1/3) η_A(i) η_B(k) for qualifying vertices.
  const EdgeList a = factor_a(), b = factor_b();
  const Csr ca(a), cb(b);
  const auto eta_a = all_vertex_clustering(ca);
  const auto eta_b = all_vertex_clustering(cb);
  const KroneckerGroundTruth gt(a, b, LoopRegime::kNoLoops);
  const vertex_t n_b = cb.num_vertices();
  for (vertex_t i = 0; i < ca.num_vertices(); ++i) {
    for (vertex_t k = 0; k < n_b; ++k) {
      if (ca.degree(i) < 2 || cb.degree(k) < 2) continue;
      EXPECT_GE(gt.vertex_clustering_coeff(gamma(i, k, n_b)) + 1e-12,
                eta_a[i] * eta_b[k] / 3.0);
    }
  }
}

TEST(ScalingTable, EccentricityRow) {
  // ε_C(p) = max(ε_A(i), ε_B(k)) with full loops.
  const EdgeList a = factor_a(), b = factor_b();
  const DistanceGroundTruth gt(a, b);
  const Csr c(gt.materialize());
  const auto direct = exact_eccentricities(c);
  for (vertex_t p = 0; p < c.num_vertices(); ++p) EXPECT_EQ(gt.eccentricity(p), direct[p]);
}

TEST(ScalingTable, DiameterRow) {
  const EdgeList a = factor_a(), b = factor_b();
  const DistanceGroundTruth gt(a, b);
  EXPECT_EQ(gt.diameter(), diameter(Csr(gt.materialize())));
}

TEST(ScalingTable, CommunityCountRow) {
  // |Π_C| = |Π_A| |Π_B| by construction of the Kronecker partition.
  const std::vector<std::uint64_t> block_a{0, 0, 1, 1, 2};
  const std::vector<std::uint64_t> block_b{0, 1, 1};
  const auto block_c = kron_partition(block_a, 3, block_b, 2);
  const std::uint64_t distinct = [&] {
    std::vector<std::uint64_t> ids = block_c;
    std::sort(ids.begin(), ids.end());
    return static_cast<std::uint64_t>(std::unique(ids.begin(), ids.end()) - ids.begin());
  }();
  EXPECT_EQ(distinct, 6u);
}

// -------------------------------------------------------- law coefficients

TEST(LawCoefficients, ThetaMonotoneInDegrees) {
  double previous = 0.0;
  for (std::uint64_t d = 2; d < 100; ++d) {
    const double value = theta(d, d);
    EXPECT_GT(value, previous);
    previous = value;
  }
  EXPECT_GT(theta(1000, 1000), 0.99);
}

TEST(LawCoefficients, ThetaValidation) {
  EXPECT_THROW((void)theta(1, 5), std::invalid_argument);
  EXPECT_THROW((void)theta(5, 0), std::invalid_argument);
}

TEST(LawCoefficients, PhiInUnitInterval) {
  for (std::uint64_t di = 2; di < 12; ++di)
    for (std::uint64_t dj = 2; dj < 12; ++dj)
      for (std::uint64_t dk = 2; dk < 12; ++dk)
        for (std::uint64_t dl = 2; dl < 12; ++dl) {
          const double value = phi(di, dj, dk, dl);
          EXPECT_GT(value, 0.0);
          EXPECT_LE(value, 1.0);
        }
}

TEST(LawCoefficients, PhiValidation) {
  EXPECT_THROW((void)phi(1, 2, 2, 2), std::invalid_argument);
}

TEST(LawCoefficients, Cor7Coefficients) {
  EXPECT_DOUBLE_EQ(cor7_paper_coefficient(1.0), 4.0);
  EXPECT_DOUBLE_EQ(cor7_provable_coefficient(1.0), 7.0);
  EXPECT_LT(cor7_paper_coefficient(0.5), cor7_provable_coefficient(0.5));
}

}  // namespace
}  // namespace kron
