// Tests for the memory-mapped CSR (graph/csr_mmap.hpp): a .kcsr built from
// a merged shard directory must expose exactly the graph the in-memory Csr
// builds from the same arcs, the PR 3 analytics must produce identical
// results over the mapping, and corrupt files must be rejected at load.
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analytics/bfs.hpp"
#include "analytics/closeness.hpp"
#include "analytics/eccentricity.hpp"
#include "analytics/triangles.hpp"
#include "gen/erdos.hpp"
#include "graph/csr.hpp"
#include "graph/csr_mmap.hpp"
#include "graph/external_merge.hpp"
#include "core/kron.hpp"
#include "graph/io.hpp"

namespace kron {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Build a merged directory + .kcsr for `edges`, returning the .kcsr path.
fs::path build_kcsr(const std::string& name, const EdgeList& edges,
                    CsrBuildStats* stats_out = nullptr) {
  const fs::path dir = fresh_dir(name);
  EdgeList canonical = edges;
  canonical.sort_dedupe();
  (void)write_arc_shard(dir / "all.kshard", canonical.num_vertices(), canonical.edges());
  const fs::path merged = dir / "merged";
  (void)merge_shards(list_arc_shards(dir), merged);
  const fs::path kcsr = dir / "graph.kcsr";
  const CsrBuildStats stats = build_csr_file(merged, kcsr);
  if (stats_out != nullptr) *stats_out = stats;
  return kcsr;
}

EdgeList product_graph() {
  const EdgeList a = make_gnm(11, 20, 31);
  const EdgeList b = make_gnm(8, 13, 32);
  return kronecker_product(a, b);
}

TEST(CsrMmap, BuildMatchesInMemoryCsr) {
  const EdgeList edges = product_graph();
  const Csr reference(edges);

  CsrBuildStats stats;
  const fs::path kcsr = build_kcsr("kron_kcsr_equal", edges, &stats);
  EXPECT_EQ(stats.num_vertices, reference.num_vertices());
  EXPECT_EQ(stats.num_arcs, reference.num_arcs());
  EXPECT_EQ(stats.bytes_written, fs::file_size(kcsr));

  const CsrMmap mapped(kcsr);
  ASSERT_EQ(mapped.num_vertices(), reference.num_vertices());
  ASSERT_EQ(mapped.num_arcs(), reference.num_arcs());
  const CsrView& g = mapped.view();
  for (vertex_t v = 0; v < reference.num_vertices(); ++v) {
    const auto expect = reference.neighbors(v);
    const auto got = g.neighbors(v);
    ASSERT_EQ(got.size(), expect.size()) << "row " << v;
    for (std::size_t i = 0; i < expect.size(); ++i)
      ASSERT_EQ(got[i], expect[i]) << "row " << v << " slot " << i;
  }
}

TEST(CsrMmap, AnalyticsMatchInMemoryResults) {
  const EdgeList edges = product_graph();
  const Csr reference(edges);
  const CsrMmap mapped(build_kcsr("kron_kcsr_analytics", edges));
  const CsrView& g = mapped.view();

  mapped.advise_sequential();
  EXPECT_EQ(bfs_levels(g, 0), bfs_levels(reference, 0));
  EXPECT_EQ(hops_from(g, 3), hops_from(reference, 3));
  EXPECT_EQ(exact_eccentricities(g), exact_eccentricities(reference));
  EXPECT_EQ(global_triangle_count(g), global_triangle_count(reference));
  EXPECT_EQ(all_closeness(g), all_closeness(reference));

  // The page hints must not change observable results.
  mapped.advise_random();
  EXPECT_EQ(bfs_levels(g, 1), bfs_levels(reference, 1));
  mapped.release_pages();
  EXPECT_EQ(global_triangle_count(g), global_triangle_count(reference));
}

TEST(CsrMmap, GraphWithIsolatedTailVertexRoundTrips) {
  // The merged arcs never mention the last vertices; the builder must still
  // emit n+1 offsets for the declared vertex count.
  EdgeList edges(10, {});
  edges.add(0, 1);
  edges.add(1, 0);
  edges.add(4, 4);
  const Csr reference(edges);
  const CsrMmap mapped(build_kcsr("kron_kcsr_isolated", edges));
  ASSERT_EQ(mapped.num_vertices(), 10u);
  ASSERT_EQ(mapped.num_arcs(), 3u);
  for (vertex_t v = 0; v < 10; ++v)
    EXPECT_EQ(mapped.view().degree(v), reference.degree(v)) << "row " << v;
}

TEST(CsrMmap, RejectsMissingAndCorruptFiles) {
  const fs::path dir = fresh_dir("kron_kcsr_corrupt");
  EXPECT_THROW(CsrMmap missing(dir / "nope.kcsr"), std::runtime_error);

  const fs::path kcsr = build_kcsr("kron_kcsr_corrupt_build", product_graph());

  // Bad magic.
  const fs::path bad_magic = dir / "magic.kcsr";
  fs::copy_file(kcsr, bad_magic);
  {
    std::fstream file(bad_magic, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(0);
    file.put('X');
  }
  EXPECT_THROW(CsrMmap m(bad_magic), std::runtime_error);

  // Flipped byte inside the offsets array (checksummed at load).
  const fs::path bad_offsets = dir / "offsets.kcsr";
  fs::copy_file(kcsr, bad_offsets);
  {
    std::fstream file(bad_offsets, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(72);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x04);
    file.seekp(72);
    file.write(&byte, 1);
  }
  EXPECT_THROW(CsrMmap m(bad_offsets), std::runtime_error);

  // Truncated file.
  const fs::path truncated = dir / "short.kcsr";
  fs::copy_file(kcsr, truncated);
  fs::resize_file(truncated, fs::file_size(truncated) - 16);
  EXPECT_THROW(CsrMmap m(truncated), std::runtime_error);
}

TEST(CsrMmap, BuildRejectsIncompleteMerge) {
  const fs::path dir = fresh_dir("kron_kcsr_nomerge");
  fs::create_directories(dir / "merged");
  EXPECT_THROW((void)build_csr_file(dir / "merged", dir / "graph.kcsr"),
               std::runtime_error);
}

}  // namespace
}  // namespace kron
