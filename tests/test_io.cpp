// Corrupt-input regression suite for graph I/O.
//
// The binary reader takes the arc count from an untrusted header: these
// tests pin that `arcs * sizeof(Edge)` cannot wrap (arcs = 2^60 makes the
// product ≡ 0 mod 2^64, which would sail past a naive size check and then
// try a 16-EiB allocation) and that the implied payload is checked against
// the real file size BEFORE any allocation happens.  The text reader pins
// the from_chars migration: `istream >> uint64_t` used to accept "-1" by
// modular wrap (vertex 2^64-1); now a leading '-', an overflowing id, and
// trailing garbage are all rejected with the offending line number.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "graph/edge_list.hpp"
#include "graph/io.hpp"

namespace kron {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'K', 'R', 'O', 'N', 'E', 'L', '1', '\0'};
constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

// Hand-craft a binary edge-list file: header plus `payload_words` u64s.
fs::path write_raw(const std::string& name, std::uint64_t n, std::uint64_t arcs,
                   const std::vector<std::uint64_t>& payload_words) {
  const fs::path path = fs::temp_directory_path() / name;
  std::ofstream out(path, std::ios::binary);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&arcs), sizeof(arcs));
  for (const std::uint64_t w : payload_words)
    out.write(reinterpret_cast<const char*>(&w), sizeof(w));
  return path;
}

std::string thrown_message(const fs::path& path) {
  try {
    (void)read_edge_list_binary(path);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return "";
}

// ------------------------------------------------- corrupt binary headers

TEST(IoBinaryCorrupt, WrappingArcCountRejectedBeforeAllocation) {
  // arcs = 2^60: arcs * sizeof(Edge) = 2^64 ≡ 0, so an unchecked
  // multiply passes every size comparison and the reader then tries to
  // allocate 2^60 edges.  Must throw a diagnostic instead.
  const auto path = write_raw("kron_io_wrap.bin", 4, std::uint64_t{1} << 60, {0, 1});
  const std::string msg = thrown_message(path);
  EXPECT_NE(msg.find("overflows"), std::string::npos) << msg;
  fs::remove(path);
}

TEST(IoBinaryCorrupt, HugeArcCountRejectedBeforeAllocation) {
  // Non-wrapping but absurd: 2^40 arcs claimed by a 40-byte file.  The
  // payload-vs-file-size check must fire before the 16-TiB allocation.
  const auto path = write_raw("kron_io_huge.bin", 4, std::uint64_t{1} << 40, {0, 1});
  const std::string msg = thrown_message(path);
  EXPECT_NE(msg.find("exceed"), std::string::npos) << msg;
  fs::remove(path);
}

TEST(IoBinaryCorrupt, ArcCountBeyondPayloadRejected) {
  // Ten arcs claimed, one present.
  const auto path = write_raw("kron_io_short.bin", 4, 10, {0, 1});
  EXPECT_THROW((void)read_edge_list_binary(path), std::runtime_error);
  fs::remove(path);
}

TEST(IoBinaryCorrupt, TruncatedHeaderRejected) {
  const fs::path path = fs::temp_directory_path() / "kron_io_header.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out.write(kMagic, sizeof(kMagic));
    const std::uint64_t n = 4;
    out.write(reinterpret_cast<const char*>(&n), sizeof(n));
    // Arc count missing entirely.
  }
  EXPECT_THROW((void)read_edge_list_binary(path), std::runtime_error);
  fs::remove(path);
}

TEST(IoBinaryCorrupt, TrailingBytesRejected) {
  const auto path = write_raw("kron_io_trail.bin", 4, 1, {0, 1, 99});
  EXPECT_THROW((void)read_edge_list_binary(path), std::runtime_error);
  fs::remove(path);
}

TEST(IoBinaryCorrupt, OutOfRangeEndpointRejected) {
  const auto path = write_raw("kron_io_range.bin", 2, 1, {0, 5});
  EXPECT_THROW((void)read_edge_list_binary(path), std::runtime_error);
  fs::remove(path);
}

// ------------------------------------------------------ binary round trips

TEST(IoBinaryRoundTrip, EmptyZeroVertexGraph) {
  const fs::path path = fs::temp_directory_path() / "kron_io_rt_empty.bin";
  write_edge_list_binary(path, EdgeList(0));
  const EdgeList back = read_edge_list_binary(path);
  EXPECT_EQ(back.num_vertices(), 0u);
  EXPECT_EQ(back.num_arcs(), 0u);
  fs::remove(path);
}

TEST(IoBinaryRoundTrip, LoopOnlyGraph) {
  const fs::path path = fs::temp_directory_path() / "kron_io_rt_loops.bin";
  EdgeList g(3);
  g.add_full_loops();
  write_edge_list_binary(path, g);
  EXPECT_EQ(read_edge_list_binary(path), g);
  fs::remove(path);
}

TEST(IoBinaryRoundTrip, MaximumVertexId) {
  // The largest representable graph shape: n = 2^64 - 1, so the largest
  // legal id is 2^64 - 2.  Binary preserves n exactly (text cannot).
  const fs::path path = fs::temp_directory_path() / "kron_io_rt_max.bin";
  const EdgeList g(kMax, {{kMax - 1, 0}, {0, kMax - 1}});
  write_edge_list_binary(path, g);
  EXPECT_EQ(read_edge_list_binary(path), g);
  fs::remove(path);
}

// ------------------------------------------------------------ text parsing

std::string text_thrown_message(const std::string& content) {
  std::istringstream in(content);
  try {
    (void)read_edge_list(in);
  } catch (const std::runtime_error& error) {
    return error.what();
  }
  return "";
}

TEST(IoText, NegativeIdRejectedNotWrapped) {
  // `istream >> uint64_t` would turn -1 into 2^64 - 1 and silently build
  // an enormous vertex set; the parser must reject the sign instead.
  const std::string msg = text_thrown_message("-1 2\n");
  EXPECT_NE(msg.find("negative"), std::string::npos) << msg;
  EXPECT_NE(msg.find("line 1"), std::string::npos) << msg;
}

TEST(IoText, NegativeSecondIdRejected) {
  EXPECT_NE(text_thrown_message("1 -2\n").find("negative"), std::string::npos);
}

TEST(IoText, MalformedLineReportsLineNumber) {
  // Comments and blanks still count toward the reported line number.
  const std::string msg = text_thrown_message("# header\n0 1\n\nbogus line\n");
  EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
}

TEST(IoText, TrailingGarbageRejected) {
  EXPECT_NE(text_thrown_message("1 2 x\n").find("trailing"), std::string::npos);
  EXPECT_NE(text_thrown_message("1 2 3\n").find("trailing"), std::string::npos);
}

TEST(IoText, MissingSecondIdRejected) {
  EXPECT_NE(text_thrown_message("7\n").find("line 1"), std::string::npos);
}

TEST(IoText, OverflowingIdRejected) {
  // 2^64 exactly: out of range for uint64_t.
  const std::string msg = text_thrown_message("18446744073709551616 0\n");
  EXPECT_NE(msg.find("64 bits"), std::string::npos) << msg;
}

TEST(IoText, MaxU64IdRejected) {
  // Id 2^64 - 1 parses but would need num_vertices = 2^64, which
  // vertex_t cannot hold.
  const std::string msg = text_thrown_message("18446744073709551615 0\n");
  EXPECT_NE(msg.find("too large"), std::string::npos) << msg;
}

TEST(IoText, LargestUsableIdAccepted) {
  std::istringstream in("18446744073709551614 0\n");
  const EdgeList g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), kMax);
  EXPECT_EQ(g.num_arcs(), 1u);
}

TEST(IoText, CrlfAndTabsAccepted) {
  std::istringstream in("0\t1\r\n1 2\r\n");
  const EdgeList g = read_edge_list(in);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.num_vertices(), 3u);
}

TEST(IoText, LeadingWhitespaceAccepted) {
  std::istringstream in("  0 1\n\t2 3\n");
  const EdgeList g = read_edge_list(in);
  EXPECT_EQ(g.num_arcs(), 2u);
}

// ----------------------------------------------- shard buffer env override
//
// KRON_OOC_BUFFER_BYTES previously went through strtoull, which wrapped
// "-1" to 2^64-1 (an absurd allocation request) and partial-parsed "4kb"
// as 4 (a syscall-per-key storm).  The strict parse must reject both with
// an error naming the variable, and keep honouring valid overrides.
class ShardBufferEnv : public ::testing::Test {
 protected:
  void TearDown() override { ::unsetenv("KRON_OOC_BUFFER_BYTES"); }
};

TEST_F(ShardBufferEnv, DefaultsToOneMiBWhenUnset) {
  ::unsetenv("KRON_OOC_BUFFER_BYTES");
  EXPECT_EQ(default_shard_buffer_bytes(), std::size_t{1} << 20);
}

TEST_F(ShardBufferEnv, HonoursValidOverride) {
  ::setenv("KRON_OOC_BUFFER_BYTES", "512", 1);
  EXPECT_EQ(default_shard_buffer_bytes(), 512u);
}

TEST_F(ShardBufferEnv, RejectsLenientParseFamily) {
  for (const char* bad : {"-1", "4kb", "1 2", "", " 512", "99999999999999999999"}) {
    ::setenv("KRON_OOC_BUFFER_BYTES", bad, 1);
    try {
      (void)default_shard_buffer_bytes();
      FAIL() << "expected diagnostic for '" << bad << "'";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("KRON_OOC_BUFFER_BYTES"), std::string::npos)
          << error.what();
    }
  }
}

TEST_F(ShardBufferEnv, RejectsZero) {
  ::setenv("KRON_OOC_BUFFER_BYTES", "0", 1);
  try {
    (void)default_shard_buffer_bytes();
    FAIL() << "expected diagnostic for '0'";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("positive"), std::string::npos);
  }
}

}  // namespace
}  // namespace kron
