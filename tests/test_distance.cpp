// Tests for the distance-based ground truth (Sec. V): hop counts (Thm. 3
// and the Thm. 5 sandwich), diameter (Cor. 3/5), eccentricity (Cor. 4),
// closeness centrality (Thm. 4, both evaluators), plus the direct
// reference algorithms they are checked against (BFS, exact and bounded
// eccentricity).
#include <gtest/gtest.h>

#include <memory>

#include "analytics/bfs.hpp"
#include "analytics/closeness.hpp"
#include "analytics/eccentricity.hpp"
#include "core/distance_gt.hpp"
#include "core/index.hpp"
#include "core/kron.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "gen/prefattach.hpp"
#include "graph/csr.hpp"
#include "graph/ops.hpp"
#include "test_factors.hpp"

namespace kron {
namespace {

// ------------------------------------------------------------ BFS baseline

TEST(Bfs, LevelsOnPath) {
  const Csr g(make_path(5));
  const auto levels = bfs_levels(g, 0);
  for (vertex_t v = 0; v < 5; ++v) EXPECT_EQ(levels[v], v);
}

TEST(Bfs, UnreachableMarked) {
  const Csr g(make_disjoint_cliques(2, 3));
  const auto levels = bfs_levels(g, 0);
  EXPECT_EQ(levels[1], 1u);
  EXPECT_EQ(levels[3], kUnreachable);
}

TEST(Bfs, HopsDiagonalWithLoop) {
  // Def. 9: with a self loop at the source, hops(i, i) = 1.
  EdgeList g = make_path(3);
  g.add_full_loops();
  const auto hops = hops_from(Csr(g), 1);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[0], 1u);
  EXPECT_EQ(hops[2], 1u);
}

TEST(Bfs, HopsDiagonalWithoutLoop) {
  // Without a loop the shortest closed walk is out-and-back: hops = 2.
  const auto hops = hops_from(Csr(make_path(3)), 1);
  EXPECT_EQ(hops[1], 2u);
}

TEST(Bfs, HopsDiagonalIsolatedVertex) {
  EdgeList g(2);
  g.add_undirected(0, 1);
  g.ensure_vertices(3);
  const auto hops = hops_from(Csr(g), 2);
  EXPECT_EQ(hops[2], kUnreachable);
}

TEST(Bfs, AllPairsMatrixConsistent) {
  const Csr g(make_cycle(6));
  const auto matrix = all_pairs_hops(g);
  for (vertex_t i = 0; i < 6; ++i)
    for (vertex_t j = 0; j < 6; ++j)
      if (i != j) EXPECT_EQ(matrix[i * 6 + j], matrix[j * 6 + i]);
  EXPECT_EQ(matrix[0 * 6 + 3], 3u);
}

// ------------------------------------------------------------ eccentricity

TEST(Eccentricity, ExactOnCycle) {
  EdgeList g = make_cycle(8);
  g.add_full_loops();
  const auto ecc = exact_eccentricities(Csr(g));
  for (const auto e : ecc) EXPECT_EQ(e, 4u);
}

TEST(Eccentricity, ExactOnPathEnds) {
  EdgeList g = make_path(5);
  g.add_full_loops();
  const auto ecc = exact_eccentricities(Csr(g));
  EXPECT_EQ(ecc[0], 4u);
  EXPECT_EQ(ecc[2], 2u);
  EXPECT_EQ(ecc[4], 4u);
}

TEST(Eccentricity, BoundedMatchesExact) {
  for (const auto& [name, factor] : testing::standard_factors()) {
    if (num_components(Csr(factor)) != 1) continue;
    EdgeList g = factor;
    g.add_full_loops();
    const Csr csr(g);
    const auto exact = exact_eccentricities(csr);
    const auto bounded = bounded_eccentricities(csr);
    EXPECT_EQ(bounded.ecc, exact) << name;
    EXPECT_GE(bounded.bfs_count, 1u);
    EXPECT_LE(bounded.bfs_count, csr.num_vertices());
  }
}

TEST(Eccentricity, BoundedUsesFewerBfsOnScaleFree) {
  // Scale-free graphs have a narrow eccentricity plateau ({r+1, r+2} holds
  // almost every vertex), the hard case for bound-based exact algorithms;
  // the win is real but bounded — well under one BFS per vertex.
  EdgeList g = prepare_factor(make_pref_attachment(400, 3, 5), true);
  const auto result = bounded_eccentricities(Csr(g));
  EXPECT_LT(result.bfs_count, g.num_vertices() / 2);
}

TEST(Eccentricity, BoundedNeedsVeryFewBfsOnWideEccRange) {
  // A long path with a clique blob at one end has a wide eccentricity
  // range; the pivot bounds collapse it in a handful of BFS sweeps.
  EdgeList g(64);
  for (vertex_t u = 0; u < 8; ++u)
    for (vertex_t v = u + 1; v < 8; ++v) g.add_undirected(u, v);
  for (vertex_t v = 7; v + 1 < 64; ++v) g.add_undirected(v, v + 1);
  g.add_full_loops();
  const auto result = bounded_eccentricities(Csr(g));
  EXPECT_EQ(result.ecc, exact_eccentricities(Csr(g)));
  EXPECT_LE(result.bfs_count, 10u);
}

TEST(Eccentricity, BoundedRejectsDisconnected) {
  EXPECT_THROW((void)bounded_eccentricities(Csr(make_disjoint_cliques(2, 3))),
               std::invalid_argument);
}

TEST(Eccentricity, DiameterAndRadius) {
  EdgeList g = make_path(7);
  g.add_full_loops();
  const Csr csr(g);
  EXPECT_EQ(diameter(csr), 6u);
  EXPECT_EQ(radius(csr), 3u);
}

// ------------------------------------------------------- closeness (direct)

TEST(Closeness, MatchesHandComputationOnPathWithLoops) {
  EdgeList g = make_path(3);
  g.add_full_loops();
  const Csr csr(g);
  // Vertex 0: hops = [1, 1, 2] → ζ = 1 + 1 + 0.5.
  EXPECT_DOUBLE_EQ(closeness(csr, 0), 2.5);
  // Vertex 1: hops = [1, 1, 1] → 3.
  EXPECT_DOUBLE_EQ(closeness(csr, 1), 3.0);
}

TEST(Closeness, UnreachableContributesZero) {
  const Csr csr(make_disjoint_cliques(2, 2));
  // Vertex 0: hops(0)=2 (no loop), hops(1)=1, others unreachable.
  EXPECT_DOUBLE_EQ(closeness(csr, 0), 1.5);
}

TEST(Closeness, AllVector) {
  EdgeList g = make_cycle(5);
  g.add_full_loops();
  const auto scores = all_closeness(Csr(g));
  for (const double s : scores) EXPECT_DOUBLE_EQ(s, scores[0]);  // vertex-transitive
}

// ------------------------------------------------- DistanceGroundTruth sweep

class DistanceSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {};

TEST_P(DistanceSweep, AllFormulasMatchDirect) {
  const auto factors = testing::compact_factors();
  const auto& fa = factors[std::get<0>(GetParam())];
  const auto& fb = factors[std::get<1>(GetParam())];
  if (num_components(Csr(fa.graph)) != 1 || num_components(Csr(fb.graph)) != 1)
    GTEST_SKIP() << "factors must be connected";

  const DistanceGroundTruth gt(fa.graph, fb.graph);
  const Csr c(gt.materialize());
  ASSERT_EQ(c.num_vertices(), gt.num_vertices());

  // Hop counts: every pair (product is small enough).
  for (vertex_t p = 0; p < c.num_vertices(); ++p) {
    const auto direct = hops_from(c, p);
    for (vertex_t q = 0; q < c.num_vertices(); ++q)
      ASSERT_EQ(gt.hops(p, q), direct[q]) << fa.name << "x" << fb.name << " " << p << "->" << q;
  }

  // Eccentricity per Cor. 4 and closeness per Thm. 4.
  const auto ecc_direct = exact_eccentricities(c);
  for (vertex_t p = 0; p < c.num_vertices(); ++p) {
    EXPECT_EQ(gt.eccentricity(p), ecc_direct[p]) << "vertex " << p;
    const double zeta_direct = closeness(c, p);
    EXPECT_NEAR(gt.closeness_naive(p), zeta_direct, 1e-9) << "vertex " << p;
    EXPECT_NEAR(gt.closeness_fast(p), zeta_direct, 1e-9) << "vertex " << p;
  }

  EXPECT_EQ(gt.diameter(), diameter(c));

  // Eccentricity distribution (Fig. 1 machinery).
  Histogram direct_hist;
  for (const auto e : ecc_direct) direct_hist.add(e);
  EXPECT_EQ(gt.eccentricity_histogram().items(), direct_hist.items());
}

INSTANTIATE_TEST_SUITE_P(ConnectedPairs, DistanceSweep,
                         ::testing::Combine(::testing::Range<std::size_t>(0, 6),
                                            ::testing::Range<std::size_t>(0, 6)));

// ---------------------------------------------------------- targeted cases

TEST(DistanceGroundTruth, HopsIsMaxOfFactorHops) {
  const DistanceGroundTruth gt(make_path(4), make_cycle(5));
  // p = (0, 0), q = (3, 2): hops_A = 3, hops_B = 2 → max 3.
  const vertex_t p = gamma(0, 0, 5);
  const vertex_t q = gamma(3, 2, 5);
  EXPECT_EQ(gt.hops(p, q), 3u);
}

TEST(DistanceGroundTruth, DiameterIsMaxOfFactorDiameters) {
  const DistanceGroundTruth gt(make_path(6), make_cycle(4));
  EXPECT_EQ(gt.diameter(), 5u);  // max(5, 2)
}

TEST(DistanceGroundTruth, EccentricityVectorsExposed) {
  const DistanceGroundTruth gt(make_path(5), make_path(3));
  EXPECT_EQ(gt.ecc_a(), (std::vector<std::uint64_t>{4, 3, 2, 3, 4}));
  EXPECT_EQ(gt.ecc_b(), (std::vector<std::uint64_t>{2, 1, 2}));
  // ε_C((0,1)) = max(4, 1) = 4.
  EXPECT_EQ(gt.eccentricity(gamma(0, 1, 3)), 4u);
}

TEST(DistanceGroundTruth, RejectsDisconnectedFactor) {
  EXPECT_THROW(DistanceGroundTruth(make_disjoint_cliques(2, 3), make_clique(3)),
               std::invalid_argument);
}

TEST(DistanceGroundTruth, DiameterControlCor5) {
  // Cor. 5: with loops only in A, diam(C) is within +1 of
  // max(diam A, diam B).  Build C = (A+I) ⊗ B explicitly and check.
  EdgeList a = make_path(7);  // diameter 6 once loops added
  a.add_full_loops();
  const EdgeList b = make_cycle(5);  // diameter 2, no loops
  EdgeList c = kronecker_product(a, b);
  c.sort_dedupe();
  const Csr csr(c);
  ASSERT_EQ(num_components(csr), 1u);
  const std::uint64_t diam_c = diameter(csr);
  EXPECT_GE(diam_c, 6u);
  EXPECT_LE(diam_c, 7u);
}

TEST(DistanceGroundTruth, Thm5SandwichHoldsPairwise) {
  // hops_C within [max, max+1] when only A has loops.
  EdgeList a = make_path(4);
  a.add_full_loops();
  const EdgeList b = make_cycle(6);
  EdgeList c_list = kronecker_product(a, b);
  c_list.sort_dedupe();
  const Csr c(c_list);
  const Csr ca(a), cb(b);
  const vertex_t n_b = cb.num_vertices();
  for (vertex_t p = 0; p < c.num_vertices(); ++p) {
    const auto direct = hops_from(c, p);
    const auto row_a = hops_from(ca, alpha(p, n_b));
    const auto row_b = hops_from(cb, beta(p, n_b));
    for (vertex_t q = 0; q < c.num_vertices(); ++q) {
      if (p == q) continue;
      const HopBounds bounds =
          hops_product_mixed(row_a[alpha(q, n_b)], row_b[beta(q, n_b)]);
      EXPECT_GE(direct[q], bounds.lower) << p << "->" << q;
      EXPECT_LE(direct[q], bounds.upper) << p << "->" << q;
    }
  }
}

// -------------------------------------------------------- approx ecc / grid

TEST(ApproxEccentricity, BoundsBracketExact) {
  EdgeList g = prepare_factor(make_pref_attachment(300, 3, 9), true);
  const Csr csr(g);
  const auto exact = exact_eccentricities(csr);
  const auto approx = approx_eccentricities(csr, 8);
  for (vertex_t v = 0; v < csr.num_vertices(); ++v) {
    EXPECT_LE(approx.lower[v], exact[v]) << "vertex " << v;
    EXPECT_GE(approx.upper[v], exact[v]) << "vertex " << v;
  }
  EXPECT_EQ(approx.bfs_count, 8u);
}

TEST(ApproxEccentricity, MostEstimatesWithinOne) {
  // The paper's Fig. 1 caveat: the approximate direct algorithm may
  // overshoot by 1 on a minority of vertices.  Our pivot estimator shows
  // the same profile: everything within +1 on a small-world graph, and a
  // majority exact.
  EdgeList g = prepare_factor(make_pref_attachment(300, 3, 9), true);
  const Csr csr(g);
  const auto exact = exact_eccentricities(csr);
  const auto approx = approx_eccentricities(csr, 8);
  std::uint64_t exact_hits = 0, within_one = 0;
  for (vertex_t v = 0; v < csr.num_vertices(); ++v) {
    if (approx.estimate[v] == exact[v]) ++exact_hits;
    if (approx.estimate[v] <= exact[v] + 1) ++within_one;
  }
  EXPECT_EQ(within_one, csr.num_vertices());
  EXPECT_GT(exact_hits * 2, csr.num_vertices());  // majority exact
}

TEST(ApproxEccentricity, MorePivotsTightenBounds) {
  EdgeList g = prepare_factor(make_gnm(200, 600, 4), true);
  const Csr csr(g);
  const auto few = approx_eccentricities(csr, 2);
  const auto many = approx_eccentricities(csr, 16);
  std::uint64_t few_gap = 0, many_gap = 0;
  for (vertex_t v = 0; v < csr.num_vertices(); ++v) {
    few_gap += few.upper[v] - few.lower[v];
    many_gap += many.upper[v] - many.lower[v];
  }
  EXPECT_LE(many_gap, few_gap);
}

TEST(ApproxEccentricity, RejectsDisconnected) {
  EXPECT_THROW((void)approx_eccentricities(Csr(make_disjoint_cliques(2, 4)), 3),
               std::invalid_argument);
}

TEST(ClosenessGrid, MatchesPerVertexEvaluators) {
  const DistanceGroundTruth gt(prepare_factor(make_gnm(40, 120, 8), false),
                               prepare_factor(make_pref_attachment(30, 2, 9), false));
  const std::vector<vertex_t> rows_a{0, 5, 11};
  const std::vector<vertex_t> rows_b{2, 7};
  const auto grid = gt.closeness_grid(rows_a, rows_b);
  ASSERT_EQ(grid.size(), 6u);
  const vertex_t n_b = gt.factor_b().num_vertices();
  for (std::size_t ia = 0; ia < rows_a.size(); ++ia) {
    for (std::size_t ib = 0; ib < rows_b.size(); ++ib) {
      const vertex_t p = gamma(rows_a[ia], rows_b[ib], n_b);
      EXPECT_NEAR(grid[ia * rows_b.size() + ib], gt.closeness_fast(p), 1e-9)
          << "cell " << ia << "," << ib;
      EXPECT_NEAR(grid[ia * rows_b.size() + ib], gt.closeness_naive(p), 1e-9);
    }
  }
}

TEST(ClosenessGrid, EmptySelectionGivesEmptyResult) {
  const DistanceGroundTruth gt(make_clique(4), make_clique(3));
  EXPECT_TRUE(gt.closeness_grid({}, {0}).empty());
  EXPECT_TRUE(gt.closeness_grid({0}, {}).empty());
}

// --------------------------------------------------------------- max_combine

TEST(MaxCombine, MatchesBruteForce) {
  const Histogram a = Histogram::from({1, 2, 2, 5});
  const Histogram b = Histogram::from({2, 3, 3});
  Histogram expected;
  for (const std::uint64_t x : {1u, 2u, 2u, 5u})
    for (const std::uint64_t y : {2u, 3u, 3u}) expected.add(std::max<std::uint64_t>(x, y));
  EXPECT_EQ(max_combine(a, b).items(), expected.items());
}

TEST(MaxCombine, TotalIsProductOfTotals) {
  const Histogram a = Histogram::from({1, 1, 4, 9});
  const Histogram b = Histogram::from({3, 3, 3, 7, 8});
  EXPECT_EQ(max_combine(a, b).total(), a.total() * b.total());
}

TEST(MaxCombine, EmptyOperandGivesEmpty) {
  const Histogram a = Histogram::from({1, 2});
  EXPECT_EQ(max_combine(a, Histogram{}).total(), 0u);
}

}  // namespace
}  // namespace kron
