// Tests for the streaming product visitors (core/stream.hpp) and the
// directed-graph ground truth (core/directed_gt.hpp).
#include <gtest/gtest.h>

#include <algorithm>

#include "core/directed_gt.hpp"
#include "core/kron.hpp"
#include "core/stream.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "graph/csr.hpp"
#include "test_factors.hpp"
#include "util/histogram.hpp"

namespace kron {
namespace {

std::vector<Edge> collect_stream(const EdgeList& a, const EdgeList& b) {
  std::vector<Edge> arcs;
  for_each_product_arc(a, b, [&arcs](const Edge& e) { arcs.push_back(e); });
  return arcs;
}

// ------------------------------------------------------------- streaming

TEST(Stream, MatchesMaterializedProduct) {
  const EdgeList a = make_gnm(7, 12, 2);
  const EdgeList b = make_cycle(5);
  auto streamed = collect_stream(a, b);
  const EdgeList c = kronecker_product(a, b);
  std::vector<Edge> stored(c.edges().begin(), c.edges().end());
  std::sort(streamed.begin(), streamed.end());
  std::sort(stored.begin(), stored.end());
  EXPECT_EQ(streamed, stored);
}

TEST(Stream, ArcCountIsProduct) {
  const EdgeList a = make_clique(4);
  const EdgeList b = make_star(6);
  std::uint64_t count = 0;
  for_each_product_arc(a, b, [&count](const Edge&) { ++count; });
  EXPECT_EQ(count, a.num_arcs() * b.num_arcs());
}

TEST(Stream, DegreeHistogramWithoutMaterializing) {
  // A realistic streaming statistic: out-degree histogram of C.
  const EdgeList a = make_gnm(9, 16, 5);
  const EdgeList b = make_gnm(8, 13, 6);
  std::vector<std::uint64_t> degree(a.num_vertices() * b.num_vertices(), 0);
  for_each_product_arc(a, b, [&degree](const Edge& e) { ++degree[e.u]; });
  const Csr c(kronecker_product(a, b));
  for (vertex_t v = 0; v < c.num_vertices(); ++v) EXPECT_EQ(degree[v], c.degree(v));
}

TEST(Stream, OneDSlicesPartitionTheStream) {
  const EdgeList a = make_gnm(10, 20, 7);
  const EdgeList b = make_cycle(4);
  for (const std::uint64_t ranks : {1ULL, 3ULL, 5ULL}) {
    std::vector<Edge> sliced;
    for (std::uint64_t r = 0; r < ranks; ++r)
      for_each_product_arc_1d(a, b, ranks, r, [&sliced](const Edge& e) { sliced.push_back(e); });
    auto full = collect_stream(a, b);
    std::sort(sliced.begin(), sliced.end());
    std::sort(full.begin(), full.end());
    EXPECT_EQ(sliced, full) << "ranks=" << ranks;
  }
}

TEST(Stream, TwoDSlicesPartitionTheStream) {
  const EdgeList a = make_gnm(10, 20, 7);
  const EdgeList b = make_gnm(8, 12, 8);
  for (const std::uint64_t ranks : {2ULL, 4ULL, 7ULL}) {
    std::vector<Edge> sliced;
    for (std::uint64_t r = 0; r < ranks; ++r)
      for_each_product_arc_2d(a, b, ranks, r, [&sliced](const Edge& e) { sliced.push_back(e); });
    auto full = collect_stream(a, b);
    std::sort(sliced.begin(), sliced.end());
    std::sort(full.begin(), full.end());
    EXPECT_EQ(sliced, full) << "ranks=" << ranks;
  }
}

// -------------------------------------------------------------- directed

EdgeList directed_fixture() {
  EdgeList g(5);
  g.add(0, 1);
  g.add(1, 0);  // reciprocated pair
  g.add(1, 2);
  g.add(2, 3);
  g.add(3, 3);  // loop
  g.add(4, 0);
  return g;
}

TEST(Directed, DegreeVectors) {
  const auto degrees = directed_degrees(directed_fixture());
  EXPECT_EQ(degrees.out, (std::vector<std::uint64_t>{1, 2, 1, 1, 1}));
  EXPECT_EQ(degrees.in, (std::vector<std::uint64_t>{2, 1, 1, 2, 0}));
}

TEST(Directed, KroneckerDegreeLawMatchesDirect) {
  const EdgeList a = directed_fixture();
  EdgeList b(3);
  b.add(0, 1);
  b.add(1, 2);
  b.add(2, 0);
  b.add(0, 2);
  const auto predicted = kronecker_directed_degrees(a, b);
  const auto direct = directed_degrees(kronecker_product(a, b));
  EXPECT_EQ(predicted.out, direct.out);
  EXPECT_EQ(predicted.in, direct.in);
}

TEST(Directed, ReciprocalPairCount) {
  // (0,1)+(1,0) give 2 ordered pairs; loop (3,3) gives 1.
  EXPECT_EQ(reciprocal_pair_count(directed_fixture()), 3u);
}

TEST(Directed, ReciprocalPairsMultiply) {
  const EdgeList a = directed_fixture();
  EdgeList b(4);
  b.add(0, 1);
  b.add(1, 0);
  b.add(2, 3);
  b.add(1, 1);
  EdgeList c = kronecker_product(a, b);
  EXPECT_EQ(kronecker_reciprocal_pairs(a, b), reciprocal_pair_count(c));
  EXPECT_EQ(kronecker_reciprocal_pairs(a, b), 3u * 3u);
}

TEST(Directed, UndirectedGraphIsFullyReciprocal) {
  const EdgeList g = make_clique(4);
  EXPECT_EQ(reciprocal_pair_count(g), g.num_arcs());
}

TEST(Directed, SweepDegreesOverFactorPairs) {
  for (const auto& [name_a, a] : testing::compact_factors()) {
    for (const auto& [name_b, b] : testing::compact_factors()) {
      const auto predicted = kronecker_directed_degrees(a, b);
      const auto direct = directed_degrees(kronecker_product(a, b));
      EXPECT_EQ(predicted.out, direct.out) << name_a << " x " << name_b;
      EXPECT_EQ(predicted.in, direct.in) << name_a << " x " << name_b;
    }
  }
}

TEST(Stream, ProductVertexCountOverflowDetected) {
  // Every streaming visitor computes γ(i,k) = i·n_B + k; with
  // n_A·n_B > 2^64 those indices wrap silently, so the visitors must
  // refuse before emitting a single arc.
  const EdgeList huge_a(vertex_t{1} << 33, {{0, 1}, {1, 0}});
  const EdgeList huge_b(vertex_t{1} << 33, {{0, 1}, {1, 0}});
  const auto sink = [](const Edge&) { FAIL() << "no arc may be emitted"; };
  EXPECT_THROW(for_each_product_arc(huge_a, huge_b, sink), std::overflow_error);
  EXPECT_THROW(for_each_product_arc_1d(huge_a, huge_b, 2, 0, sink), std::overflow_error);
  EXPECT_THROW(for_each_product_arc_2d(huge_a, huge_b, 4, 0, sink), std::overflow_error);
}

}  // namespace
}  // namespace kron
