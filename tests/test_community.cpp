// Tests for community structure (Sec. VI): measured internal/external edge
// counts and densities (Def. 13), the Thm. 6 product formulas, Kronecker
// vertex sets and partitions (Def. 14-16), and the Cor. 6 / Cor. 7 scaling
// laws.
#include <gtest/gtest.h>

#include <numeric>

#include "analytics/communities.hpp"
#include "core/community_gt.hpp"
#include "core/index.hpp"
#include "core/kron.hpp"
#include "core/laws.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "gen/sbm.hpp"
#include "graph/csr.hpp"
#include "test_factors.hpp"

namespace kron {
namespace {

// -------------------------------------------------------- measured stats

TEST(CommunityStats, CliqueSubsetCounts) {
  const Csr g(make_clique(6));
  const CommunityStats s = community_stats(g, {0, 1, 2});
  EXPECT_EQ(s.size, 3u);
  EXPECT_EQ(s.m_in, 3u);    // triangle inside
  EXPECT_EQ(s.m_out, 9u);   // 3 members x 3 outsiders
  EXPECT_DOUBLE_EQ(s.rho_in, 1.0);
  EXPECT_DOUBLE_EQ(s.rho_out, 1.0);
}

TEST(CommunityStats, LoopsAreExcluded) {
  EdgeList g = make_clique(4);
  g.add_full_loops();
  const CommunityStats s = community_stats(Csr(g), {0, 1});
  EXPECT_EQ(s.m_in, 1u);
  EXPECT_EQ(s.m_out, 4u);
}

TEST(CommunityStats, DisjointSetHasNoInternalEdges) {
  const Csr g(make_star(5));
  const CommunityStats s = community_stats(g, {1, 2});
  EXPECT_EQ(s.m_in, 0u);
  EXPECT_EQ(s.m_out, 2u);
}

TEST(CommunityStats, ValidatesVertexIds) {
  const Csr g(make_clique(3));
  EXPECT_THROW((void)community_stats(g, {0, 7}), std::out_of_range);
}

TEST(PartitionStats, CoversAllBlocks) {
  const SbmGraph sbm = [] {
    SbmParams params;
    params.num_vertices = 60;
    params.blocks = 3;
    params.p_in = 0.5;
    params.p_out = 0.05;
    params.seed = 5;
    return make_sbm(params);
  }();
  const Csr g(sbm.graph);
  const auto stats = partition_stats(g, sbm.block_of, sbm.num_blocks);
  ASSERT_EQ(stats.size(), 3u);
  std::uint64_t total_members = 0;
  for (const auto& s : stats) total_members += s.size;
  EXPECT_EQ(total_members, 60u);
  // Per-block stats agree with the one-set routine.
  for (std::uint64_t b = 0; b < 3; ++b) {
    const CommunityStats single = community_stats(g, sbm.block_members(b));
    EXPECT_EQ(stats[b].m_in, single.m_in);
    EXPECT_EQ(stats[b].m_out, single.m_out);
    EXPECT_EQ(stats[b].size, single.size);
  }
}

TEST(PartitionStats, ValidatesInput) {
  const Csr g(make_clique(4));
  EXPECT_THROW((void)partition_stats(g, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW((void)partition_stats(g, {0, 1, 5, 0}, 2), std::out_of_range);
}

TEST(Densities, Formulas) {
  EXPECT_DOUBLE_EQ(internal_density(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(internal_density(0, 1), 0.0);  // degenerate size
  EXPECT_DOUBLE_EQ(external_density(6, 3, 5), 1.0);
  EXPECT_DOUBLE_EQ(external_density(1, 5, 5), 0.0);  // S covers everything
}

// ----------------------------------------------------------- Thm. 6 sweep

/// Direct measurement of S_C = S_A ⊗ S_B in the materialised product.
CommunityStats measured_product(const EdgeList& a, const std::vector<vertex_t>& sa,
                                const EdgeList& b, const std::vector<vertex_t>& sb) {
  EdgeList c = kronecker_product_with_loops(a, b);
  c.sort_dedupe();
  return community_stats(Csr(c), kron_vertex_set(sa, sb, b.num_vertices()));
}

TEST(CommunityProduct, MatchesDirectOnCliqueSets) {
  const EdgeList a = make_clique(5);
  const EdgeList b = make_clique(4);
  const std::vector<vertex_t> sa{0, 1, 2};
  const std::vector<vertex_t> sb{0, 1};
  const CommunityStats stats_a = community_stats(Csr(a), sa);
  const CommunityStats stats_b = community_stats(Csr(b), sb);
  const CommunityStats predicted = community_product(stats_a, 5, stats_b, 4);
  const CommunityStats measured = measured_product(a, sa, b, sb);
  EXPECT_EQ(predicted.size, measured.size);
  EXPECT_EQ(predicted.m_in, measured.m_in);
  EXPECT_EQ(predicted.m_out, measured.m_out);
  EXPECT_DOUBLE_EQ(predicted.rho_in, measured.rho_in);
  EXPECT_DOUBLE_EQ(predicted.rho_out, measured.rho_out);
}

TEST(CommunityProduct, MatchesDirectOnRandomFactors) {
  const EdgeList a = make_gnm(10, 20, 3);
  const EdgeList b = make_gnm(8, 14, 4);
  const std::vector<vertex_t> sa{1, 3, 5, 7};
  const std::vector<vertex_t> sb{0, 2, 4};
  const CommunityStats predicted = community_product(community_stats(Csr(a), sa), 10,
                                                     community_stats(Csr(b), sb), 8);
  const CommunityStats measured = measured_product(a, sa, b, sb);
  EXPECT_EQ(predicted.m_in, measured.m_in);
  EXPECT_EQ(predicted.m_out, measured.m_out);
  EXPECT_NEAR(predicted.rho_in, measured.rho_in, 1e-12);
  EXPECT_NEAR(predicted.rho_out, measured.rho_out, 1e-12);
}

TEST(CommunityProduct, SweepOverFactorsAndSets) {
  for (const auto& [name_a, a] : testing::compact_factors()) {
    for (const auto& [name_b, b] : testing::compact_factors()) {
      // Take the low half of each factor as the community.
      std::vector<vertex_t> sa(a.num_vertices() / 2);
      std::iota(sa.begin(), sa.end(), 0);
      std::vector<vertex_t> sb(b.num_vertices() / 2);
      std::iota(sb.begin(), sb.end(), 0);
      if (sa.empty() || sb.empty()) continue;
      const CommunityStats predicted =
          community_product(community_stats(Csr(a), sa), a.num_vertices(),
                            community_stats(Csr(b), sb), b.num_vertices());
      const CommunityStats measured = measured_product(a, sa, b, sb);
      EXPECT_EQ(predicted.m_in, measured.m_in) << name_a << " x " << name_b;
      EXPECT_EQ(predicted.m_out, measured.m_out) << name_a << " x " << name_b;
    }
  }
}

// ------------------------------------------------- partitions (Def. 15/16)

TEST(KronPartition, BlockIdsAndCount) {
  // |Π_C| = |Π_A| |Π_B| (intro table).
  const std::vector<std::uint64_t> block_a{0, 0, 1};
  const std::vector<std::uint64_t> block_b{0, 1};
  const auto block_c = kron_partition(block_a, 2, block_b, 2);
  ASSERT_EQ(block_c.size(), 6u);
  // Vertex (i, k) -> block a*2 + b.
  EXPECT_EQ(block_c[gamma(0, 0, 2)], 0u);
  EXPECT_EQ(block_c[gamma(0, 1, 2)], 1u);
  EXPECT_EQ(block_c[gamma(2, 0, 2)], 2u);
  EXPECT_EQ(block_c[gamma(2, 1, 2)], 3u);
}

TEST(KronPartition, IsAPartition) {
  const std::vector<std::uint64_t> block_a{0, 1, 2, 0};
  const std::vector<std::uint64_t> block_b{0, 0, 1};
  const auto block_c = kron_partition(block_a, 3, block_b, 2);
  // Every vertex gets a block id < 6, and every block id corresponds to the
  // Kronecker set of its factor blocks.
  for (const auto id : block_c) EXPECT_LT(id, 6u);
}

TEST(KronPartition, ValidatesBlockIds) {
  EXPECT_THROW((void)kron_partition({0, 5}, 2, {0}, 1), std::out_of_range);
}

TEST(KronVertexSet, MatchesGammaMap) {
  const auto members = kron_vertex_set({1, 2}, {0, 3}, 4);
  EXPECT_EQ(members, (std::vector<vertex_t>{4, 7, 8, 11}));
}

TEST(PartitionProduct, MatchesDirectMeasurement) {
  // Full pipeline on an SBM pair: Thm. 6 per block pair vs measuring the
  // materialised product with the Kronecker partition.
  SbmParams params;
  params.num_vertices = 24;
  params.blocks = 3;
  params.p_in = 0.7;
  params.p_out = 0.1;
  params.seed = 17;
  const SbmGraph sbm_a = make_sbm(params);
  params.seed = 18;
  const SbmGraph sbm_b = make_sbm(params);

  const Csr a(sbm_a.graph), b(sbm_b.graph);
  const auto predicted =
      partition_product_stats(a, sbm_a.block_of, 3, b, sbm_b.block_of, 3);
  ASSERT_EQ(predicted.size(), 9u);

  EdgeList c = kronecker_product_with_loops(sbm_a.graph, sbm_b.graph);
  c.sort_dedupe();
  const auto block_c = kron_partition(sbm_a.block_of, 3, sbm_b.block_of, 3);
  const auto measured = partition_stats(Csr(c), block_c, 9);
  for (std::size_t i = 0; i < 9; ++i) {
    EXPECT_EQ(predicted[i].size, measured[i].size) << "block " << i;
    EXPECT_EQ(predicted[i].m_in, measured[i].m_in) << "block " << i;
    EXPECT_EQ(predicted[i].m_out, measured[i].m_out) << "block " << i;
  }
}

// ------------------------------------------------------- Cor. 6 / Cor. 7

TEST(ScalingLaws, Cor6LowerBoundHolds) {
  // ρ_in(S_C) >= (1/3) ρ_in(S_A) ρ_in(S_B) whenever |S| > 1.
  const EdgeList a = make_gnm(12, 30, 5);
  const EdgeList b = make_gnm(10, 22, 6);
  for (const std::size_t half_a : {2u, 4u, 6u}) {
    for (const std::size_t half_b : {2u, 3u, 5u}) {
      std::vector<vertex_t> sa(half_a);
      std::iota(sa.begin(), sa.end(), 0);
      std::vector<vertex_t> sb(half_b);
      std::iota(sb.begin(), sb.end(), 0);
      const CommunityStats stats_a = community_stats(Csr(a), sa);
      const CommunityStats stats_b = community_stats(Csr(b), sb);
      const CommunityStats product = community_product(stats_a, 12, stats_b, 10);
      EXPECT_GE(product.rho_in + 1e-12, stats_a.rho_in * stats_b.rho_in / 3.0);
      // The tight factor is θ(|S_A|, |S_B|).
      EXPECT_GE(product.rho_in + 1e-12,
                theta(stats_a.size, stats_b.size) * stats_a.rho_in * stats_b.rho_in);
    }
  }
}

TEST(ScalingLaws, Cor7UpperBoundHoldsWithProvableCoefficient) {
  // With m_out >= |S| in both factors, ρ_out(S_C) <= (3+4ω) Ω ρ_out ρ_out.
  const EdgeList a = make_gnm(14, 40, 9);
  const EdgeList b = make_gnm(12, 30, 10);
  std::vector<vertex_t> sa{0, 1, 2};
  std::vector<vertex_t> sb{0, 1, 2, 3};
  const CommunityStats stats_a = community_stats(Csr(a), sa);
  const CommunityStats stats_b = community_stats(Csr(b), sb);
  ASSERT_GE(stats_a.m_out, stats_a.size);
  ASSERT_GE(stats_b.m_out, stats_b.size);
  const CommunityStats product = community_product(stats_a, 14, stats_b, 12);
  const double w = omega(stats_a.m_in, stats_a.m_out, stats_b.m_in, stats_b.m_out);
  const double big_omega = capital_omega(stats_a.size, 14, stats_b.size, 12);
  EXPECT_LE(product.rho_out, cor7_provable_coefficient(w) * big_omega * stats_a.rho_out *
                                 stats_b.rho_out +
                                 1e-12);
}

TEST(ScalingLaws, OmegaAndCapitalOmega) {
  EXPECT_DOUBLE_EQ(omega(4, 2, 3, 6), 2.0);
  EXPECT_GT(capital_omega(2, 100, 2, 100), 1.0);
  EXPECT_LT(capital_omega(2, 100, 2, 100), 1.01);
  EXPECT_THROW((void)omega(1, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW((void)capital_omega(10, 10, 10, 10), std::invalid_argument);
}

TEST(ScalingLaws, ExampleOneDisjointCliqueDensities) {
  // Ex. 1: disjoint-clique factors give disjoint-clique products with
  // ρ_in = 1 and ρ_out = 0 for every Kronecker community.
  const EdgeList a = make_disjoint_cliques(2, 3);
  const EdgeList b = make_disjoint_cliques(2, 2);
  std::vector<std::uint64_t> block_a(6), block_b(4);
  for (vertex_t v = 0; v < 6; ++v) block_a[v] = v / 3;
  for (vertex_t v = 0; v < 4; ++v) block_b[v] = v / 2;
  const auto stats =
      partition_product_stats(Csr(a), block_a, 2, Csr(b), block_b, 2);
  ASSERT_EQ(stats.size(), 4u);
  for (const auto& s : stats) {
    EXPECT_EQ(s.size, 6u);
    EXPECT_DOUBLE_EQ(s.rho_in, 1.0);
    EXPECT_EQ(s.m_out, 0u);
  }
}

}  // namespace
}  // namespace kron
