// Tests for the delta-varint shard codec (graph/shard_codec.hpp) and the
// .kshard writer/cursor (graph/io.hpp): varint boundary round-trips,
// rejection of truncated/overlong/trailing-garbage encodings, key packing
// limits, shard round-trips through writer and cursor, seek, and every
// corruption mode the reader must catch (flipped payload byte, tampered
// index, truncated file).
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "graph/io.hpp"
#include "graph/shard_codec.hpp"
#include "graph/types.hpp"

namespace kron {
namespace {

namespace fs = std::filesystem;

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::vector<std::uint8_t> encode_varint(std::uint64_t value) {
  std::vector<std::uint8_t> out;
  shard::put_varint(out, value);
  return out;
}

// Every power-of-two boundary where the varint length changes, plus the
// extremes: 0, 2^7k - 1 / 2^7k / 2^7k + 1 for each length step, UINT64_MAX.
std::vector<std::uint64_t> boundary_values() {
  std::vector<std::uint64_t> values = {0, 1, UINT64_MAX, UINT64_MAX - 1};
  for (unsigned bits = 7; bits < 64; bits += 7) {
    const std::uint64_t edge = std::uint64_t{1} << bits;
    values.push_back(edge - 1);
    values.push_back(edge);
    values.push_back(edge + 1);
  }
  values.push_back(std::uint64_t{1} << 63);
  values.push_back((std::uint64_t{1} << 63) - 1);
  values.push_back((std::uint64_t{1} << 63) + 1);
  return values;
}

// ------------------------------------------------------------------ varint

TEST(Varint, BoundaryRoundTrip) {
  for (const std::uint64_t value : boundary_values()) {
    const std::vector<std::uint8_t> bytes = encode_varint(value);
    ASSERT_GE(bytes.size(), 1u);
    ASSERT_LE(bytes.size(), 10u);
    const std::uint8_t* p = bytes.data();
    std::uint64_t decoded = 0;
    ASSERT_TRUE(shard::get_varint(p, bytes.data() + bytes.size(), decoded)) << value;
    EXPECT_EQ(decoded, value);
    EXPECT_EQ(p, bytes.data() + bytes.size()) << "decoder must consume exactly the encoding";
  }
}

TEST(Varint, EncodedLengthMatchesSevenBitGroups) {
  EXPECT_EQ(encode_varint(0).size(), 1u);
  EXPECT_EQ(encode_varint(0x7f).size(), 1u);
  EXPECT_EQ(encode_varint(0x80).size(), 2u);
  EXPECT_EQ(encode_varint((std::uint64_t{1} << 14) - 1).size(), 2u);
  EXPECT_EQ(encode_varint(std::uint64_t{1} << 14).size(), 3u);
  EXPECT_EQ(encode_varint((std::uint64_t{1} << 63)).size(), 10u);
  EXPECT_EQ(encode_varint(UINT64_MAX).size(), 10u);
}

TEST(Varint, TruncatedBufferRejectedAndPointerUntouched) {
  for (const std::uint64_t value : boundary_values()) {
    const std::vector<std::uint8_t> bytes = encode_varint(value);
    if (bytes.size() < 2) continue;
    for (std::size_t keep = 0; keep < bytes.size(); ++keep) {
      const std::uint8_t* p = bytes.data();
      std::uint64_t decoded = 0;
      EXPECT_FALSE(shard::get_varint(p, bytes.data() + keep, decoded))
          << value << " truncated to " << keep << " byte(s)";
      EXPECT_EQ(p, bytes.data()) << "failed decode must not advance";
    }
  }
}

TEST(Varint, OverflowingTenthByteRejected) {
  // Nine continuation bytes put the tenth byte at bit 63; any payload bit
  // above the lowest one overflows 64 bits.
  std::vector<std::uint8_t> bytes(9, 0x80);
  bytes.push_back(0x02);  // would set bit 64
  const std::uint8_t* p = bytes.data();
  std::uint64_t decoded = 0;
  EXPECT_FALSE(shard::get_varint(p, bytes.data() + bytes.size(), decoded));

  bytes.back() = 0x01;  // bit 63 itself is fine
  p = bytes.data();
  ASSERT_TRUE(shard::get_varint(p, bytes.data() + bytes.size(), decoded));
  EXPECT_EQ(decoded, std::uint64_t{1} << 63);
}

TEST(Varint, EleventhByteRejected) {
  const std::vector<std::uint8_t> bytes(11, 0x80);
  const std::uint8_t* p = bytes.data();
  std::uint64_t decoded = 0;
  EXPECT_FALSE(shard::get_varint(p, bytes.data() + bytes.size(), decoded));
  EXPECT_EQ(p, bytes.data());
}

// -------------------------------------------------------------- key packing

TEST(KeyPacker, PackUnpackRoundTrip) {
  const auto packer = shard::KeyPacker::for_vertices(1000);
  EXPECT_EQ(packer.shift, 10u);
  for (const Edge e : {Edge{0, 0}, Edge{0, 999}, Edge{999, 0}, Edge{999, 999}, Edge{123, 456}}) {
    const std::uint64_t key = packer.pack(e);
    EXPECT_EQ(packer.unpack(key), e);
  }
}

TEST(KeyPacker, OrderMatchesLexicographicArcOrder) {
  const auto packer = shard::KeyPacker::for_vertices(64);
  EXPECT_LT(packer.pack({1, 63}), packer.pack({2, 0}));
  EXPECT_LT(packer.pack({2, 0}), packer.pack({2, 1}));
}

TEST(KeyPacker, VertexCountLimits) {
  EXPECT_EQ(shard::KeyPacker::for_vertices(0).shift, 1u);
  EXPECT_EQ(shard::KeyPacker::for_vertices(1).shift, 1u);
  EXPECT_EQ(shard::KeyPacker::for_vertices(2).shift, 1u);
  EXPECT_EQ(shard::KeyPacker::for_vertices(std::uint64_t{1} << 32).shift, 32u);
  EXPECT_THROW((void)shard::KeyPacker::for_vertices((std::uint64_t{1} << 32) + 1),
               std::invalid_argument);
  EXPECT_THROW((void)shard::KeyPacker::for_shift(0), std::invalid_argument);
  EXPECT_THROW((void)shard::KeyPacker::for_shift(33), std::invalid_argument);
}

// -------------------------------------------------------------- block codec

TEST(BlockCodec, RoundTripWithDuplicates) {
  const std::vector<std::uint64_t> keys = {0, 0, 1, 1, 1, 127, 128, 16384, 16384, UINT64_MAX};
  std::vector<std::uint8_t> encoded;
  const std::size_t bytes = shard::encode_key_block(keys, encoded);
  EXPECT_EQ(bytes, encoded.size());
  std::vector<std::uint64_t> decoded;
  shard::decode_key_block(encoded.data(), encoded.size(), keys.size(), decoded, "test");
  EXPECT_EQ(decoded, keys);
}

TEST(BlockCodec, RejectsUnsortedKeys) {
  const std::vector<std::uint64_t> keys = {5, 4};
  std::vector<std::uint8_t> encoded;
  EXPECT_THROW((void)shard::encode_key_block(keys, encoded), std::invalid_argument);
}

TEST(BlockCodec, DecodeRejectsTruncationAndTrailingGarbage) {
  const std::vector<std::uint64_t> keys = {10, 200, 300000, 300000 + (std::uint64_t{1} << 40)};
  std::vector<std::uint8_t> encoded;
  (void)shard::encode_key_block(keys, encoded);
  std::vector<std::uint64_t> decoded;
  // Every proper prefix must be rejected as truncated.
  for (std::size_t keep = 0; keep < encoded.size(); ++keep) {
    decoded.clear();
    EXPECT_THROW(shard::decode_key_block(encoded.data(), keep, keys.size(), decoded, "test"),
                 std::runtime_error);
  }
  // Extra bytes after the last key must be rejected as trailing garbage.
  std::vector<std::uint8_t> padded = encoded;
  padded.push_back(0x00);
  decoded.clear();
  EXPECT_THROW(shard::decode_key_block(padded.data(), padded.size(), keys.size(), decoded, "test"),
               std::runtime_error);
}

TEST(BlockCodec, DecodeRejectsDeltaWrap) {
  // First key UINT64_MAX followed by delta 1 wraps the key space.
  std::vector<std::uint8_t> encoded;
  shard::put_varint(encoded, UINT64_MAX);
  shard::put_varint(encoded, 1);
  std::vector<std::uint64_t> decoded;
  EXPECT_THROW(shard::decode_key_block(encoded.data(), encoded.size(), 2, decoded, "test"),
               std::runtime_error);
}

TEST(BlockCodec, RandomizedRoundTripMatchesUncompressed) {
  std::mt19937_64 rng(20260808);
  for (int round = 0; round < 20; ++round) {
    std::uniform_int_distribution<std::size_t> len_dist(1, 3 * shard::kBlockArcs);
    std::vector<std::uint64_t> keys(len_dist(rng));
    // Mix of tiny and huge deltas plus duplicates.
    std::uniform_int_distribution<std::uint64_t> delta(0, round % 2 == 0 ? 3 : UINT64_MAX >> 20);
    std::uint64_t key = 0;
    for (auto& k : keys) {
      key += delta(rng);
      k = key;
    }
    std::vector<std::uint8_t> encoded;
    std::vector<std::uint64_t> decoded;
    for (std::size_t i = 0; i < keys.size(); i += shard::kBlockArcs) {
      const std::size_t count = std::min(shard::kBlockArcs, keys.size() - i);
      encoded.clear();
      (void)shard::encode_key_block(std::span<const std::uint64_t>(keys).subspan(i, count),
                                    encoded);
      shard::decode_key_block(encoded.data(), encoded.size(), count, decoded, "test");
    }
    EXPECT_EQ(decoded, keys);
  }
}

// ------------------------------------------------------------ shard files

std::vector<Edge> sorted_random_arcs(std::size_t count, vertex_t n, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vertex_t> vtx(0, n - 1);
  std::vector<Edge> arcs(count);
  for (auto& e : arcs) e = Edge{vtx(rng), vtx(rng)};
  std::sort(arcs.begin(), arcs.end());
  return arcs;
}

TEST(ArcShard, WriterCursorRoundTripAcrossBlocks) {
  const fs::path dir = fresh_dir("kron_shard_roundtrip");
  constexpr vertex_t kVertices = 5000;
  const std::vector<Edge> arcs = sorted_random_arcs(3 * shard::kBlockArcs + 17, kVertices, 1);

  ShardIoStats stats;
  const ArcShardInfo info = write_arc_shard(dir / "a.kshard", kVertices, arcs, &stats);
  EXPECT_EQ(info.num_arcs, arcs.size());
  EXPECT_EQ(info.encoding, shard::kEncodingVersion);
  EXPECT_EQ(info.num_vertices, kVertices);
  EXPECT_EQ(info.num_blocks, (arcs.size() + shard::kBlockArcs - 1) / shard::kBlockArcs);
  EXPECT_EQ(stats.shards_written, 1u);
  EXPECT_EQ(stats.arcs_written, arcs.size());
  EXPECT_GT(stats.bytes_written, 0u);

  const auto packer = shard::KeyPacker::for_shift(info.key_shift);
  EXPECT_EQ(info.min_key, packer.pack(arcs.front()));
  EXPECT_EQ(info.max_key, packer.pack(arcs.back()));

  // Streaming read via next().
  ArcShardCursor cursor(dir / "a.kshard", 0, &stats);
  std::vector<Edge> read;
  std::uint64_t key = 0;
  while (cursor.next(key)) read.push_back(packer.unpack(key));
  EXPECT_EQ(read, arcs);
  EXPECT_FALSE(cursor.next(key)) << "exhausted cursor must stay exhausted";
  EXPECT_EQ(stats.arcs_read, arcs.size());

  // Bulk read via next_batch() with an awkward batch size.
  ArcShardCursor bulk(dir / "a.kshard");
  std::vector<std::uint64_t> keys;
  std::uint64_t batch[257];
  for (std::size_t got; (got = bulk.next_batch(batch, 257)) > 0;)
    keys.insert(keys.end(), batch, batch + got);
  ASSERT_EQ(keys.size(), arcs.size());
  for (std::size_t i = 0; i < keys.size(); ++i) EXPECT_EQ(packer.unpack(keys[i]), arcs[i]);
}

TEST(ArcShard, EmptyShardRoundTrips) {
  const fs::path dir = fresh_dir("kron_shard_empty");
  const ArcShardInfo info = write_arc_shard(dir / "empty.kshard", 16, {});
  EXPECT_EQ(info.num_arcs, 0u);
  EXPECT_EQ(info.num_blocks, 0u);
  ArcShardCursor cursor(dir / "empty.kshard");
  std::uint64_t key = 0;
  EXPECT_FALSE(cursor.next(key));
}

TEST(ArcShard, WriterRejectsDecreasingKeys) {
  const fs::path dir = fresh_dir("kron_shard_order");
  ArcShardWriter writer(dir / "bad.kshard", 100);
  writer.append_key(50);
  writer.append_key(50);  // equal is fine (duplicates are merged later)
  EXPECT_THROW(writer.append_key(49), std::logic_error);
}

TEST(ArcShard, AbortedWriterPublishesNothing) {
  const fs::path dir = fresh_dir("kron_shard_abort");
  {
    ArcShardWriter writer(dir / "gone.kshard", 100);
    writer.append_key(1);
    // destroyed without finish()
  }
  EXPECT_FALSE(fs::exists(dir / "gone.kshard"));
}

TEST(ArcShard, SeekRepositionsInEitherDirection) {
  const fs::path dir = fresh_dir("kron_shard_seek");
  constexpr vertex_t kVertices = 4096;
  std::vector<Edge> arcs = sorted_random_arcs(2 * shard::kBlockArcs + 100, kVertices, 2);
  arcs.erase(std::unique(arcs.begin(), arcs.end()), arcs.end());
  (void)write_arc_shard(dir / "s.kshard", kVertices, arcs);

  const auto packer = shard::KeyPacker::for_vertices(kVertices);
  std::vector<std::uint64_t> keys(arcs.size());
  for (std::size_t i = 0; i < arcs.size(); ++i) keys[i] = packer.pack(arcs[i]);

  ArcShardCursor cursor(dir / "s.kshard");
  const auto expect_from = [&](std::uint64_t target) {
    cursor.seek(target);
    const auto it = std::lower_bound(keys.begin(), keys.end(), target);
    std::uint64_t key = 0;
    if (it == keys.end()) {
      EXPECT_FALSE(cursor.next(key)) << "seek past max must exhaust";
    } else {
      ASSERT_TRUE(cursor.next(key));
      EXPECT_EQ(key, *it) << "target " << target;
    }
  };

  expect_from(0);                       // before the first key
  expect_from(keys.front());            // exact first
  expect_from(keys[keys.size() / 2]);   // exact middle (forward)
  expect_from(keys[keys.size() / 4]);   // backwards
  expect_from(keys[keys.size() / 2] + 1);
  expect_from(keys.back());             // exact last
  expect_from(keys.back() + 1);         // past the end
  expect_from(keys[keys.size() / 3]);   // backwards again after exhaustion
}

// ------------------------------------------------------------- corruption

struct ShardFile {
  fs::path path;
  ArcShardInfo info;
};

ShardFile make_shard(const fs::path& dir) {
  constexpr vertex_t kVertices = 3000;
  const std::vector<Edge> arcs = sorted_random_arcs(2 * shard::kBlockArcs, kVertices, 3);
  ShardFile f;
  f.path = dir / "victim.kshard";
  f.info = write_arc_shard(f.path, kVertices, arcs);
  return f;
}

void flip_byte(const fs::path& path, std::uint64_t offset) {
  std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(file) << path;
  file.seekg(static_cast<std::streamoff>(offset));
  char byte = 0;
  file.read(&byte, 1);
  byte = static_cast<char>(byte ^ 0x40);
  file.seekp(static_cast<std::streamoff>(offset));
  file.write(&byte, 1);
}

std::uint64_t drain_count(const fs::path& path) {
  ArcShardCursor cursor(path);
  std::uint64_t key = 0;
  std::uint64_t count = 0;
  while (cursor.next(key)) ++count;
  return count;
}

TEST(ArcShardCorruption, FlippedPayloadByteDetected) {
  const fs::path dir = fresh_dir("kron_shard_corrupt_payload");
  const ShardFile f = make_shard(dir);
  // Middle of the second payload block (header is 80 bytes).
  flip_byte(f.path, 80 + f.info.payload_bytes / 2 + 8);
  EXPECT_THROW((void)drain_count(f.path), std::runtime_error);
}

TEST(ArcShardCorruption, TamperedIndexDetected) {
  const fs::path dir = fresh_dir("kron_shard_corrupt_index");
  const ShardFile f = make_shard(dir);
  // The block index follows the payload.
  flip_byte(f.path, 80 + f.info.payload_bytes + 4);
  EXPECT_THROW((void)drain_count(f.path), std::runtime_error);
}

TEST(ArcShardCorruption, TruncatedFileDetected) {
  const fs::path dir = fresh_dir("kron_shard_truncated");
  const ShardFile f = make_shard(dir);
  fs::resize_file(f.path, fs::file_size(f.path) - 13);
  EXPECT_THROW((void)drain_count(f.path), std::runtime_error);
}

TEST(ArcShardCorruption, BadMagicDetected) {
  const fs::path dir = fresh_dir("kron_shard_magic");
  const ShardFile f = make_shard(dir);
  flip_byte(f.path, 0);
  EXPECT_THROW((void)read_arc_shard_info(f.path), std::runtime_error);
}

}  // namespace
}  // namespace kron
