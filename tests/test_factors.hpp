// Shared factor-graph factories for the test suite.
//
// Each factory returns a small undirected simple graph; parameterized test
// suites sweep over pairs of them to exercise the Kronecker formulas on
// structurally diverse factors (dense, sparse, regular, scale-free,
// community-structured, bipartite, tree-like).
#pragma once

#include <string>
#include <vector>

#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "gen/prefattach.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "gen/smallworld.hpp"
#include "graph/edge_list.hpp"
#include "graph/ops.hpp"

namespace kron::testing {

struct NamedFactor {
  std::string name;
  EdgeList graph;
};

/// The standard sweep set: small, connected, simple, undirected factors.
inline std::vector<NamedFactor> standard_factors() {
  std::vector<NamedFactor> factors;
  factors.push_back({"clique5", make_clique(5)});
  factors.push_back({"clique7", make_clique(7)});
  factors.push_back({"cycle6", make_cycle(6)});
  factors.push_back({"cycle9", make_cycle(9)});
  factors.push_back({"path8", make_path(8)});
  factors.push_back({"star7", make_star(7)});
  factors.push_back({"bipartite34", make_complete_bipartite(3, 4)});
  factors.push_back({"grid3x4", make_grid(3, 4)});
  // Random graphs: take the largest connected component to guarantee the
  // distance formulas apply.
  factors.push_back({"gnm_12_20", prepare_factor(make_gnm(12, 20, 7), false)});
  factors.push_back({"gnp_14", prepare_factor(make_gnp(14, 0.3, 11), false)});
  factors.push_back({"ba_15", prepare_factor(make_pref_attachment(15, 2, 3), false)});
  {
    RmatParams params;
    params.scale = 4;
    params.edge_factor = 4;
    params.seed = 5;
    factors.push_back({"rmat_s4", prepare_factor(make_rmat(params), false)});
  }
  {
    SbmParams params;
    params.num_vertices = 18;
    params.blocks = 3;
    params.p_in = 0.7;
    params.p_out = 0.1;
    params.seed = 13;
    factors.push_back({"sbm18", prepare_factor(make_sbm(params).graph, false)});
  }
  factors.push_back({"cliques2x4", make_disjoint_cliques(2, 4)});
  factors.push_back({"ws16", prepare_factor(make_small_world(16, 4, 0.3, 19), false)});
  return factors;
}

/// A compact subset for the more expensive product sweeps.
inline std::vector<NamedFactor> compact_factors() {
  std::vector<NamedFactor> factors;
  factors.push_back({"clique5", make_clique(5)});
  factors.push_back({"cycle6", make_cycle(6)});
  factors.push_back({"star7", make_star(7)});
  factors.push_back({"grid3x4", make_grid(3, 4)});
  factors.push_back({"gnm_12_20", prepare_factor(make_gnm(12, 20, 7), false)});
  factors.push_back({"ba_15", prepare_factor(make_pref_attachment(15, 2, 3), false)});
  return factors;
}

}  // namespace kron::testing
