// Unit tests for the factor generators: classic families, Erdős–Rényi,
// R-MAT, preferential attachment, and the stochastic block model.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analytics/clustering.hpp"
#include "analytics/triangles.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "gen/prefattach.hpp"
#include "gen/rmat.hpp"
#include "gen/sbm.hpp"
#include "gen/smallworld.hpp"
#include "graph/csr.hpp"
#include "graph/ops.hpp"

namespace kron {
namespace {

// ---------------------------------------------------------------- classic

TEST(Classic, CliqueShape) {
  const EdgeList g = make_clique(6);
  EXPECT_EQ(g.num_vertices(), 6u);
  EXPECT_EQ(g.num_undirected_edges(), 15u);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_loops(), 0u);
}

TEST(Classic, CliqueIsComplete) {
  const Csr g(make_clique(5));
  for (vertex_t u = 0; u < 5; ++u)
    for (vertex_t v = 0; v < 5; ++v)
      EXPECT_EQ(g.has_edge(u, v), u != v) << u << "," << v;
}

TEST(Classic, CycleShape) {
  const EdgeList g = make_cycle(8);
  EXPECT_EQ(g.num_undirected_edges(), 8u);
  const Csr csr(g);
  for (vertex_t v = 0; v < 8; ++v) EXPECT_EQ(csr.degree(v), 2u);
}

TEST(Classic, CycleRejectsTiny) { EXPECT_THROW((void)make_cycle(2), std::invalid_argument); }

TEST(Classic, PathShape) {
  const EdgeList g = make_path(6);
  EXPECT_EQ(g.num_undirected_edges(), 5u);
  const Csr csr(g);
  EXPECT_EQ(csr.degree(0), 1u);
  EXPECT_EQ(csr.degree(5), 1u);
  EXPECT_EQ(csr.degree(3), 2u);
}

TEST(Classic, SinglePathVertexHasNoEdges) {
  EXPECT_EQ(make_path(1).num_arcs(), 0u);
}

TEST(Classic, StarShape) {
  const Csr g(make_star(7));
  EXPECT_EQ(g.degree(0), 6u);
  for (vertex_t v = 1; v < 7; ++v) EXPECT_EQ(g.degree(v), 1u);
  // A star has no triangles.
  EXPECT_EQ(global_triangle_count(g), 0u);
}

TEST(Classic, CompleteBipartiteShape) {
  const EdgeList g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_undirected_edges(), 12u);
  // Bipartite: no triangles.
  EXPECT_EQ(global_triangle_count(Csr(g)), 0u);
}

TEST(Classic, DisjointCliques) {
  const EdgeList g = make_disjoint_cliques(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_undirected_edges(), 3u * 6u);
  EXPECT_EQ(num_components(Csr(g)), 3u);
}

TEST(Classic, GridShape) {
  const EdgeList g = make_grid(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  // 3 rows * 3 horizontal + 2 * 4 vertical = 9 + 8.
  EXPECT_EQ(g.num_undirected_edges(), 17u);
  EXPECT_EQ(num_components(Csr(g)), 1u);
}

// ------------------------------------------------------------ Erdős–Rényi

TEST(Gnm, ExactEdgeCount) {
  const EdgeList g = make_gnm(30, 50, 42);
  EXPECT_EQ(g.num_vertices(), 30u);
  EXPECT_EQ(g.num_undirected_edges(), 50u);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_loops(), 0u);
}

TEST(Gnm, Deterministic) {
  EXPECT_EQ(make_gnm(20, 30, 7), make_gnm(20, 30, 7));
  EXPECT_NE(make_gnm(20, 30, 7), make_gnm(20, 30, 8));
}

TEST(Gnm, FullDensity) {
  const EdgeList g = make_gnm(6, 15, 1);
  EXPECT_EQ(g.num_undirected_edges(), 15u);
}

TEST(Gnm, RejectsTooManyEdges) {
  EXPECT_THROW((void)make_gnm(4, 7, 1), std::invalid_argument);
}

TEST(Gnp, ZeroAndOneProbability) {
  EXPECT_EQ(make_gnp(10, 0.0, 3).num_arcs(), 0u);
  EXPECT_EQ(make_gnp(6, 1.0, 3).num_undirected_edges(), 15u);
}

TEST(Gnp, EdgeCountNearExpectation) {
  const vertex_t n = 200;
  const double p = 0.1;
  const EdgeList g = make_gnp(n, p, 5);
  const double expected = p * n * (n - 1) / 2.0;
  // Within 5 standard deviations.
  const double sd = std::sqrt(expected * (1 - p));
  EXPECT_NEAR(static_cast<double>(g.num_undirected_edges()), expected, 5 * sd);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_loops(), 0u);
}

TEST(Gnp, RejectsBadProbability) {
  EXPECT_THROW((void)make_gnp(5, -0.1, 1), std::invalid_argument);
  EXPECT_THROW((void)make_gnp(5, 1.1, 1), std::invalid_argument);
}

// ------------------------------------------------------------------ R-MAT

TEST(Rmat, ShapeAndSimplicity) {
  RmatParams params;
  params.scale = 6;
  params.edge_factor = 8;
  const EdgeList g = make_rmat(params);
  EXPECT_EQ(g.num_vertices(), 64u);
  EXPECT_LE(g.num_undirected_edges(), params.edge_factor * 64);
  EXPECT_GT(g.num_undirected_edges(), 0u);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_loops(), 0u);
  EXPECT_TRUE(g.is_canonical());
}

TEST(Rmat, Deterministic) {
  RmatParams params;
  params.scale = 5;
  EXPECT_EQ(make_rmat(params), make_rmat(params));
  RmatParams other = params;
  other.seed = 2;
  EXPECT_NE(make_rmat(params), make_rmat(other));
}

TEST(Rmat, SkewedParametersConcentrateDegree) {
  // With a >> d, low-id vertices should accumulate much higher degree.
  RmatParams params;
  params.scale = 8;
  params.edge_factor = 8;
  const Csr g(make_rmat(params));
  std::uint64_t low = 0, high = 0;
  const vertex_t n = g.num_vertices();
  for (vertex_t v = 0; v < n / 4; ++v) low += g.degree(v);
  for (vertex_t v = 3 * n / 4; v < n; ++v) high += g.degree(v);
  EXPECT_GT(low, 2 * high);
}

TEST(Rmat, RejectsBadParameters) {
  RmatParams params;
  params.scale = 0;
  EXPECT_THROW((void)make_rmat(params), std::invalid_argument);
  params.scale = 5;
  params.a = 0.9;
  params.b = 0.2;  // sum > 1
  EXPECT_THROW((void)make_rmat(params), std::invalid_argument);
}

// -------------------------------------------------- preferential attachment

TEST(PrefAttachment, ShapeAndConnectivity) {
  const EdgeList g = make_pref_attachment(100, 3, 17);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_loops(), 0u);
  EXPECT_EQ(num_components(Csr(g)), 1u);
  // Each non-seed vertex contributes exactly 3 edges; the seed clique has 6.
  EXPECT_EQ(g.num_undirected_edges(), 6u + 96u * 3u);
}

TEST(PrefAttachment, Deterministic) {
  EXPECT_EQ(make_pref_attachment(50, 2, 9), make_pref_attachment(50, 2, 9));
  EXPECT_NE(make_pref_attachment(50, 2, 9), make_pref_attachment(50, 2, 10));
}

TEST(PrefAttachment, HeavyTail) {
  const Csr g(make_pref_attachment(2000, 2, 23));
  std::uint64_t max_degree = 0;
  for (vertex_t v = 0; v < g.num_vertices(); ++v)
    max_degree = std::max(max_degree, g.degree(v));
  // Scale-free graphs develop hubs far above the mean degree (4).
  EXPECT_GT(max_degree, 40u);
}

TEST(PrefAttachment, RejectsBadArguments) {
  EXPECT_THROW((void)make_pref_attachment(2, 3, 1), std::invalid_argument);
  EXPECT_THROW((void)make_pref_attachment(10, 0, 1), std::invalid_argument);
}

TEST(GnutellaLike, MatchesPaperSignature) {
  const EdgeList g = make_gnutella_like(1);
  // Sec. V-A table: ~6.3K vertices, ~21K edges, connected, full loops.
  EXPECT_NEAR(static_cast<double>(g.num_vertices()), 6300.0, 200.0);
  EXPECT_EQ(g.num_loops(), g.num_vertices());
  const std::uint64_t simple_edges = g.num_undirected_edges() - g.num_loops();
  EXPECT_NEAR(static_cast<double>(simple_edges), 21000.0, 2000.0);
  EXPECT_EQ(num_components(Csr(g)), 1u);
}

// ------------------------------------------------------------- small world

TEST(SmallWorld, LatticeLimitIsRegularRing) {
  // beta = 0: the pristine ring lattice, every vertex degree k.
  const Csr g(make_small_world(30, 4, 0.0, 1));
  for (vertex_t v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_EQ(g.num_undirected_edges(), 60u);
}

TEST(SmallWorld, EdgeCountIsPreservedByRewiring) {
  // Rewiring replaces edges one for one (unless saturated): m = nk/2.
  for (const double beta : {0.1, 0.5, 1.0}) {
    const EdgeList g = make_small_world(60, 6, beta, 7);
    EXPECT_EQ(g.num_undirected_edges(), 180u) << "beta=" << beta;
    EXPECT_TRUE(g.is_symmetric());
    EXPECT_EQ(g.num_loops(), 0u);
  }
}

TEST(SmallWorld, RewiringLowersClustering) {
  // The defining WS phenomenon: transitivity decays as beta grows.
  const double lattice = transitivity(Csr(make_small_world(200, 6, 0.0, 3)));
  const double random_ish = transitivity(Csr(make_small_world(200, 6, 1.0, 3)));
  EXPECT_GT(lattice, 0.5);  // ring lattice: 3(k-2)/(4(k-1)) = 0.6 for k=6
  EXPECT_LT(random_ish, lattice / 2);
}

TEST(SmallWorld, Deterministic) {
  EXPECT_EQ(make_small_world(40, 4, 0.3, 5), make_small_world(40, 4, 0.3, 5));
}

TEST(SmallWorld, RejectsBadParameters) {
  EXPECT_THROW((void)make_small_world(10, 3, 0.1, 1), std::invalid_argument);  // odd k
  EXPECT_THROW((void)make_small_world(4, 4, 0.1, 1), std::invalid_argument);   // n <= k
  EXPECT_THROW((void)make_small_world(10, 4, 1.5, 1), std::invalid_argument);
}

// -------------------------------------------------------------------- SBM

TEST(Sbm, BlocksAreContiguousAndBalanced) {
  SbmParams params;
  params.num_vertices = 100;
  params.blocks = 4;
  params.seed = 3;
  const SbmGraph sbm = make_sbm(params);
  EXPECT_EQ(sbm.num_blocks, 4u);
  EXPECT_EQ(sbm.block_of.size(), 100u);
  for (std::uint64_t b = 0; b < 4; ++b) EXPECT_EQ(sbm.block_members(b).size(), 25u);
  // Contiguity: block id is nondecreasing.
  for (vertex_t v = 1; v < 100; ++v) EXPECT_LE(sbm.block_of[v - 1], sbm.block_of[v]);
}

TEST(Sbm, IntraDensityExceedsInterDensity) {
  SbmParams params;
  params.num_vertices = 300;
  params.blocks = 3;
  params.p_in = 0.2;
  params.p_out = 0.01;
  params.seed = 21;
  const SbmGraph sbm = make_sbm(params);
  const Csr g(sbm.graph);
  std::uint64_t intra = 0, inter = 0;
  for (vertex_t u = 0; u < g.num_vertices(); ++u)
    for (const vertex_t v : g.neighbors(u))
      (sbm.block_of[u] == sbm.block_of[v] ? intra : inter) += 1;
  // 100-vertex blocks: ~0.2*3*C(100,2) intra vs ~0.01*3*10000 inter arcs.
  EXPECT_GT(intra, 2 * inter);
}

TEST(Sbm, EdgeProbabilitiesApproximatelyRespected) {
  SbmParams params;
  params.num_vertices = 400;
  params.blocks = 4;
  params.p_in = 0.1;
  params.p_out = 0.005;
  params.seed = 8;
  const SbmGraph sbm = make_sbm(params);
  const Csr g(sbm.graph);
  std::uint64_t intra_arcs = 0;
  for (vertex_t u = 0; u < g.num_vertices(); ++u)
    for (const vertex_t v : g.neighbors(u))
      if (sbm.block_of[u] == sbm.block_of[v]) ++intra_arcs;
  const double intra_pairs = 4 * 100.0 * 99.0 / 2.0;
  const double observed_p = static_cast<double>(intra_arcs / 2) / intra_pairs;
  EXPECT_NEAR(observed_p, 0.1, 0.02);
}

TEST(Sbm, Deterministic) {
  SbmParams params;
  params.seed = 5;
  EXPECT_EQ(make_sbm(params).graph, make_sbm(params).graph);
}

TEST(Sbm, RejectsBadParameters) {
  SbmParams params;
  params.num_vertices = 3;
  params.blocks = 5;
  EXPECT_THROW((void)make_sbm(params), std::invalid_argument);
  params.blocks = 2;
  params.p_in = 1.5;
  EXPECT_THROW((void)make_sbm(params), std::invalid_argument);
}

TEST(Sbm, PerBlockProbabilitiesProduceHeterogeneousDensities) {
  SbmParams params;
  params.num_vertices = 600;
  params.blocks = 3;
  params.p_in_per_block = {0.05, 0.2, 0.6};
  params.p_out = 0.0;
  params.seed = 19;
  const SbmGraph sbm = make_sbm(params);
  const Csr g(sbm.graph);
  // Per-block observed densities should be ordered like the probabilities.
  std::vector<double> density(3);
  for (std::uint64_t b = 0; b < 3; ++b) {
    const auto members = sbm.block_members(b);
    std::uint64_t arcs = 0;
    for (const vertex_t v : members) arcs += g.degree(v);
    const double pairs = static_cast<double>(members.size()) *
                         static_cast<double>(members.size() - 1);
    density[b] = static_cast<double>(arcs) / pairs;
  }
  EXPECT_LT(density[0], density[1]);
  EXPECT_LT(density[1], density[2]);
  EXPECT_NEAR(density[0], 0.05, 0.02);
  EXPECT_NEAR(density[2], 0.6, 0.05);
}

TEST(Sbm, PerBlockVectorSizeValidated) {
  SbmParams params;
  params.blocks = 4;
  params.p_in_per_block = {0.1, 0.2};  // wrong size
  EXPECT_THROW((void)make_sbm(params), std::invalid_argument);
  params.p_in_per_block = {0.1, 0.2, 0.3, 1.5};  // bad probability
  EXPECT_THROW((void)make_sbm(params), std::invalid_argument);
}

TEST(Sbm, UniformAndPerBlockAgreeInDistribution) {
  // A per-block vector of identical probabilities should give the same
  // *expected* edge count as the uniform path (not the same graph — the
  // sampling order differs — but statistically matched).
  SbmParams uniform;
  uniform.num_vertices = 900;
  uniform.blocks = 3;
  uniform.p_in = 0.1;
  uniform.p_out = 0.01;
  uniform.seed = 23;
  SbmParams per_block = uniform;
  per_block.p_in_per_block = {0.1, 0.1, 0.1};
  const double m_uniform = static_cast<double>(make_sbm(uniform).graph.num_undirected_edges());
  const double m_block = static_cast<double>(make_sbm(per_block).graph.num_undirected_edges());
  EXPECT_NEAR(m_uniform, m_block, 0.1 * m_uniform);
}

TEST(GroundtruthLike, HeterogeneousDensitySpread) {
  // The stand-in now carries the paper's per-community rho_in spread.
  const SbmGraph sbm = make_groundtruth_like(0.2, 11);
  const Csr g(sbm.graph);
  double min_density = 1.0, max_density = 0.0;
  for (std::uint64_t b = 0; b < sbm.num_blocks; ++b) {
    const auto members = sbm.block_members(b);
    std::uint64_t arcs = 0;
    for (const vertex_t v : members)
      for (const vertex_t w : g.neighbors(v))
        if (sbm.block_of[w] == b && w != v) ++arcs;
    const double pairs = static_cast<double>(members.size()) *
                         static_cast<double>(members.size() - 1);
    const double density = static_cast<double>(arcs) / pairs;
    min_density = std::min(min_density, density);
    max_density = std::max(max_density, density);
  }
  // Spread should roughly cover the paper's [3e-2, 1e-1] band.
  EXPECT_LT(min_density, 0.05);
  EXPECT_GT(max_density, 0.07);
}

TEST(GroundtruthLike, MatchesPaperDensityRanges) {
  // Scaled-down groundtruth_20000 stand-in: densities are intensive, so the
  // paper's ranges should hold at 10% scale.
  const SbmGraph sbm = make_groundtruth_like(0.1, 7);
  EXPECT_EQ(sbm.num_blocks, 33u);
  EXPECT_EQ(sbm.graph.num_vertices(), 2000u);
  EXPECT_TRUE(sbm.graph.is_symmetric());
}

}  // namespace
}  // namespace kron
