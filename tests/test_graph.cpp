// Unit tests for the graph substrate: edge lists, CSR, file I/O, and
// whole-graph operations.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "gen/classic.hpp"
#include "graph/csr.hpp"
#include "graph/edge_list.hpp"
#include "graph/io.hpp"
#include "graph/ops.hpp"

namespace kron {
namespace {

// -------------------------------------------------------------- edge list

TEST(EdgeList, EmptyGraph) {
  EdgeList g(5);
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_arcs(), 0u);
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_undirected_edges(), 0u);
}

TEST(EdgeList, AddValidatesEndpoints) {
  EdgeList g(3);
  g.add(0, 2);
  EXPECT_THROW(g.add(0, 3), std::out_of_range);
  EXPECT_THROW(g.add(3, 0), std::out_of_range);
}

TEST(EdgeList, AddUndirectedAddsBothArcs) {
  EdgeList g(3);
  g.add_undirected(0, 1);
  EXPECT_EQ(g.num_arcs(), 2u);
  g.add_undirected(2, 2);  // loop: one arc
  EXPECT_EQ(g.num_arcs(), 3u);
  EXPECT_EQ(g.num_loops(), 1u);
}

TEST(EdgeList, UndirectedEdgeCount) {
  EdgeList g(4);
  g.add_undirected(0, 1);
  g.add_undirected(1, 2);
  g.add_undirected(3, 3);
  EXPECT_EQ(g.num_undirected_edges(), 3u);
}

TEST(EdgeList, SortDedupe) {
  EdgeList g(3);
  g.add(1, 0);
  g.add(0, 1);
  g.add(1, 0);
  g.sort_dedupe();
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_TRUE(g.is_canonical());
}

TEST(EdgeList, SymmetrizeProducesSymmetricGraph) {
  EdgeList g(4);
  g.add(0, 1);
  g.add(2, 3);
  g.add(3, 3);
  EXPECT_FALSE(g.is_symmetric());
  g.symmetrize();
  EXPECT_TRUE(g.is_symmetric());
  EXPECT_EQ(g.num_arcs(), 5u);  // two pairs + one loop
}

TEST(EdgeList, StripLoops) {
  EdgeList g(3);
  g.add_undirected(0, 1);
  g.add(1, 1);
  g.add(2, 2);
  g.strip_loops();
  EXPECT_EQ(g.num_loops(), 0u);
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(EdgeList, AddFullLoops) {
  EdgeList g(4);
  g.add_undirected(0, 1);
  g.add_full_loops();
  EXPECT_EQ(g.num_loops(), 4u);
  EXPECT_EQ(g.num_arcs(), 6u);
  // Idempotent thanks to dedupe.
  g.add_full_loops();
  EXPECT_EQ(g.num_loops(), 4u);
}

TEST(EdgeList, IsCanonicalDetectsDisorder) {
  EdgeList g(3);
  g.add(2, 0);
  g.add(0, 1);
  EXPECT_FALSE(g.is_canonical());
  g.sort_dedupe();
  EXPECT_TRUE(g.is_canonical());
}

TEST(EdgeList, MaxVertexBound) {
  EdgeList g(10);
  EXPECT_EQ(g.max_vertex_bound(), 0u);
  g.add(2, 7);
  EXPECT_EQ(g.max_vertex_bound(), 8u);
}

TEST(EdgeList, EnsureVerticesGrowsOnly) {
  EdgeList g(3);
  g.ensure_vertices(10);
  EXPECT_EQ(g.num_vertices(), 10u);
  g.ensure_vertices(4);
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(EdgeList, EqualityComparesContent) {
  EdgeList a(3);
  a.add_undirected(0, 1);
  EdgeList b(3);
  b.add_undirected(0, 1);
  EXPECT_EQ(a, b);
  b.add(2, 2);
  EXPECT_NE(a, b);
}

// -------------------------------------------------------------------- CSR

TEST(Csr, BuildsSortedNeighborLists) {
  EdgeList g(4);
  g.add(0, 3);
  g.add(0, 1);
  g.add(0, 2);
  const Csr csr(g);
  const auto row = csr.neighbors(0);
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[0], 1u);
  EXPECT_EQ(row[1], 2u);
  EXPECT_EQ(row[2], 3u);
}

TEST(Csr, DeduplicatesArcs) {
  EdgeList g(3);
  g.add(0, 1);
  g.add(0, 1);
  g.add(0, 2);
  const Csr csr(g);
  EXPECT_EQ(csr.num_arcs(), 2u);
  EXPECT_EQ(csr.degree(0), 2u);
}

TEST(Csr, DegreeAndLoopHandling) {
  EdgeList g(3);
  g.add_undirected(0, 1);
  g.add(0, 0);
  const Csr csr(g);
  EXPECT_EQ(csr.degree(0), 2u);          // neighbor 1 + self loop
  EXPECT_EQ(csr.degree_no_loop(0), 1u);  // self loop excluded
  EXPECT_TRUE(csr.has_loop(0));
  EXPECT_FALSE(csr.has_loop(1));
  EXPECT_EQ(csr.num_loops(), 1u);
}

TEST(Csr, HasEdge) {
  const Csr csr(make_cycle(5));
  EXPECT_TRUE(csr.has_edge(0, 1));
  EXPECT_TRUE(csr.has_edge(0, 4));
  EXPECT_FALSE(csr.has_edge(0, 2));
}

TEST(Csr, ArcIndexIsStableAndDense) {
  const Csr csr(make_clique(4));
  std::vector<bool> seen(csr.num_arcs(), false);
  for (vertex_t u = 0; u < 4; ++u) {
    for (const vertex_t v : csr.neighbors(u)) {
      const std::uint64_t idx = csr.arc_index(u, v);
      ASSERT_LT(idx, csr.num_arcs());
      EXPECT_FALSE(seen[idx]);
      seen[idx] = true;
    }
  }
}

TEST(Csr, ArcIndexThrowsForMissingArc) {
  const Csr csr(make_path(4));
  EXPECT_THROW((void)csr.arc_index(0, 3), std::invalid_argument);
}

TEST(Csr, UndirectedEdgeCountMatchesEdgeList) {
  EdgeList g = make_clique(6);
  g.add_full_loops();
  const Csr csr(g);
  EXPECT_EQ(csr.num_undirected_edges(), g.num_undirected_edges());
  EXPECT_EQ(csr.num_undirected_edges(), 15u + 6u);
}

TEST(Csr, IsSymmetric) {
  EXPECT_TRUE(Csr(make_clique(4)).is_symmetric());
  EdgeList g(3);
  g.add(0, 1);
  EXPECT_FALSE(Csr(g).is_symmetric());
}

TEST(Csr, RoundTripThroughEdgeList) {
  EdgeList g = make_grid(3, 3);
  g.add_full_loops();
  const Csr csr(g);
  EXPECT_EQ(csr.to_edge_list(), g);
}

TEST(Csr, DegreesVectors) {
  const Csr csr(make_star(5));
  const auto d = csr.degrees();
  EXPECT_EQ(d[0], 4u);
  for (vertex_t v = 1; v < 5; ++v) EXPECT_EQ(d[v], 1u);
}

// --------------------------------------------------------------------- IO

TEST(Io, RoundTrip) {
  EdgeList g = make_clique(5);
  std::ostringstream out;
  write_edge_list(out, g);
  std::istringstream in(out.str());
  const EdgeList back = read_edge_list(in);
  EXPECT_EQ(back, g);
}

TEST(Io, SkipsCommentsAndBlankLines) {
  std::istringstream in("# header\n\n% other comment\n0 1\n1 0\n");
  const EdgeList g = read_edge_list(in);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.num_vertices(), 2u);
}

TEST(Io, RejectsMalformedLines) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW((void)read_edge_list(in), std::runtime_error);
}

TEST(Io, MinVerticesExtendsVertexSet) {
  std::istringstream in("0 1\n");
  const EdgeList g = read_edge_list(in, 10);
  EXPECT_EQ(g.num_vertices(), 10u);
}

TEST(Io, FileRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "kron_io_test.txt";
  EdgeList g = make_cycle(7);
  write_edge_list_file(path, g);
  EXPECT_EQ(read_edge_list_file(path), g);
  std::filesystem::remove(path);
}

TEST(Io, MissingFileThrows) {
  EXPECT_THROW((void)read_edge_list_file("/nonexistent/path/graph.txt"), std::runtime_error);
}

TEST(IoBinary, RoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "kron_io_test.bin";
  EdgeList g = make_clique(9);
  g.add_full_loops();
  write_edge_list_binary(path, g);
  EXPECT_EQ(read_edge_list_binary(path), g);
  std::filesystem::remove(path);
}

TEST(IoBinary, EmptyGraphRoundTrip) {
  const auto path = std::filesystem::temp_directory_path() / "kron_io_empty.bin";
  write_edge_list_binary(path, EdgeList(17));
  const EdgeList back = read_edge_list_binary(path);
  EXPECT_EQ(back.num_vertices(), 17u);
  EXPECT_EQ(back.num_arcs(), 0u);
  std::filesystem::remove(path);
}

TEST(IoBinary, RejectsBadMagic) {
  const auto path = std::filesystem::temp_directory_path() / "kron_io_bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a kron file at all, definitely longer than the header";
  }
  EXPECT_THROW((void)read_edge_list_binary(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(IoBinary, RejectsTruncatedPayload) {
  const auto path = std::filesystem::temp_directory_path() / "kron_io_trunc.bin";
  write_edge_list_binary(path, make_clique(6));
  std::filesystem::resize_file(path, std::filesystem::file_size(path) - 8);
  EXPECT_THROW((void)read_edge_list_binary(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(IoBinary, RejectsOutOfRangeEndpoint) {
  const auto path = std::filesystem::temp_directory_path() / "kron_io_range.bin";
  // Hand-craft a file claiming 2 vertices but containing arc (0, 5).
  {
    std::ofstream out(path, std::ios::binary);
    const char magic[8] = {'K', 'R', 'O', 'N', 'E', 'L', '1', '\0'};
    out.write(magic, 8);
    const std::uint64_t n = 2, arcs = 1, u = 0, v = 5;
    out.write(reinterpret_cast<const char*>(&n), 8);
    out.write(reinterpret_cast<const char*>(&arcs), 8);
    out.write(reinterpret_cast<const char*>(&u), 8);
    out.write(reinterpret_cast<const char*>(&v), 8);
  }
  EXPECT_THROW((void)read_edge_list_binary(path), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(IoBinary, TextAndBinaryAgree) {
  const auto dir = std::filesystem::temp_directory_path();
  EdgeList g = make_grid(4, 5);
  write_edge_list_file(dir / "kron_agree.txt", g);
  write_edge_list_binary(dir / "kron_agree.bin", g);
  EXPECT_EQ(read_edge_list_file(dir / "kron_agree.txt"),
            read_edge_list_binary(dir / "kron_agree.bin"));
  std::filesystem::remove(dir / "kron_agree.txt");
  std::filesystem::remove(dir / "kron_agree.bin");
}

// -------------------------------------------------------------------- ops

TEST(Ops, ConnectedComponentsSingle) {
  const auto comp = connected_components(Csr(make_cycle(6)));
  for (const auto c : comp) EXPECT_EQ(c, 0u);
  EXPECT_EQ(num_components(Csr(make_cycle(6))), 1u);
}

TEST(Ops, ConnectedComponentsMultiple) {
  const Csr g(make_disjoint_cliques(3, 4));
  EXPECT_EQ(num_components(g), 3u);
  const auto comp = connected_components(g);
  EXPECT_EQ(comp[0], comp[3]);
  EXPECT_NE(comp[0], comp[4]);
}

TEST(Ops, IsolatedVerticesAreOwnComponents) {
  EdgeList g(4);
  g.add_undirected(0, 1);
  EXPECT_EQ(num_components(Csr(g)), 3u);
}

TEST(Ops, LargestComponentExtractsBiggest) {
  // Two components: a 5-clique and a 3-cycle.
  EdgeList g(8);
  for (vertex_t u = 0; u < 5; ++u)
    for (vertex_t v = u + 1; v < 5; ++v) g.add_undirected(u, v);
  g.add_undirected(5, 6);
  g.add_undirected(6, 7);
  g.add_undirected(7, 5);
  std::vector<vertex_t> old_ids;
  const EdgeList lcc = largest_component(Csr(g), &old_ids);
  EXPECT_EQ(lcc.num_vertices(), 5u);
  EXPECT_EQ(lcc.num_undirected_edges(), 10u);
  EXPECT_EQ(old_ids, (std::vector<vertex_t>{0, 1, 2, 3, 4}));
}

TEST(Ops, InducedSubgraphRelabels) {
  const Csr g(make_cycle(6));
  const EdgeList sub = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(sub.num_vertices(), 3u);
  // Edges 1-2 and 2-3 survive as 0-1, 1-2.
  EXPECT_EQ(sub.num_undirected_edges(), 2u);
}

TEST(Ops, InducedSubgraphValidatesIds) {
  const Csr g(make_cycle(4));
  EXPECT_THROW((void)induced_subgraph(g, {0, 9}), std::out_of_range);
}

TEST(Ops, PrepareFactorSymmetrizesAndTakesLcc) {
  EdgeList raw(6);
  raw.add(0, 1);  // directed arc only
  raw.add(1, 2);
  raw.add(4, 5);  // smaller component
  raw.add(2, 2);  // loop must be stripped
  const EdgeList factor = prepare_factor(raw, /*add_loops=*/false);
  EXPECT_EQ(factor.num_vertices(), 3u);
  EXPECT_TRUE(factor.is_symmetric());
  EXPECT_EQ(factor.num_loops(), 0u);
}

TEST(Ops, PrepareFactorAddsLoops) {
  EdgeList raw(3);
  raw.add_undirected(0, 1);
  raw.add_undirected(1, 2);
  const EdgeList factor = prepare_factor(raw, /*add_loops=*/true);
  EXPECT_EQ(factor.num_loops(), factor.num_vertices());
}

TEST(Ops, LargestComponentOfEmptyGraph) {
  const EdgeList lcc = largest_component(Csr(EdgeList(0)));
  EXPECT_EQ(lcc.num_vertices(), 0u);
}

}  // namespace
}  // namespace kron
