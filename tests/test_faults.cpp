// Fault injection, reliable delivery, and checkpoint/resume (DESIGN.md §12).
//
// The chaos tests pin the PR's core guarantee: a generation run under a
// nonzero fault plan — message drops, duplicates, delays, plus a rank
// crash recovered via checkpoint resume — produces an edge list *bit
// identical* to the fault-free run, across partition schemes and rank
// counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/generator.hpp"
#include "gen/erdos.hpp"
#include "graph/io.hpp"
#include "runtime/comm.hpp"
#include "runtime/faults.hpp"

namespace kron {
namespace {

std::filesystem::path fresh_dir(const std::string& name) {
  const std::filesystem::path dir = std::filesystem::path(::testing::TempDir()) / name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// ------------------------------------------------------------ plan parsing

TEST(FaultPlanParse, FullSpec) {
  const FaultPlan plan = FaultPlan::parse("drop:0.01,dup:0.005,delay:0.02@r1,crash:1@3,seed:42");
  EXPECT_EQ(plan.seed(), 42u);
  ASSERT_EQ(plan.rules().size(), 3u);
  EXPECT_DOUBLE_EQ(plan.rules()[0].drop, 0.01);
  EXPECT_DOUBLE_EQ(plan.rules()[1].dup, 0.005);
  EXPECT_DOUBLE_EQ(plan.rules()[2].delay, 0.02);
  EXPECT_EQ(plan.rules()[2].source, 1);
  ASSERT_EQ(plan.crashes().size(), 1u);
  EXPECT_EQ(plan.crashes()[0].rank, 1);
  EXPECT_EQ(plan.crashes()[0].chunk, 3u);
  EXPECT_TRUE(plan.has_message_faults());
}

TEST(FaultPlanParse, CrashOnlyPlanHasNoMessageFaults) {
  const FaultPlan plan = FaultPlan::parse("crash:0@2");
  EXPECT_FALSE(plan.has_message_faults());
  EXPECT_EQ(plan.crashes().size(), 1u);
}

TEST(FaultPlanParse, RejectsMalformedTerms) {
  EXPECT_THROW((void)FaultPlan::parse("drop:1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop:-0.1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop:abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("crash:1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("crash:1@x"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("bogus:1"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("drop:0.1@z5"), std::invalid_argument);
  EXPECT_THROW((void)FaultPlan::parse("seed:12junk"), std::invalid_argument);
}

// ------------------------------------------------------- decisions & crash

TEST(FaultPlan, DecisionsAreDeterministic) {
  FaultPlan plan;
  plan.with_rule({.drop = 0.5, .dup = 0.5}).with_seed(7);
  int drops = 0, dups = 0;
  for (std::uint64_t seq = 0; seq < 1000; ++seq) {
    const FaultDecision first = plan.decide(0, 1, 1, seq);
    const FaultDecision again = plan.decide(0, 1, 1, seq);
    EXPECT_EQ(first.drop, again.drop);
    EXPECT_EQ(first.duplicate, again.duplicate);
    EXPECT_EQ(first.delay_ops, again.delay_ops);
    drops += first.drop ? 1 : 0;
    dups += first.duplicate ? 1 : 0;
  }
  // Rough frequency sanity for a 0.5 probability over 1000 draws.
  EXPECT_GT(drops, 350);
  EXPECT_LT(drops, 650);
  EXPECT_GT(dups, 350);
  EXPECT_LT(dups, 650);
}

TEST(FaultPlan, SeedChangesDecisions) {
  FaultPlan a, b;
  a.with_rule({.drop = 0.5}).with_seed(1);
  b.with_rule({.drop = 0.5}).with_seed(2);
  int differing = 0;
  for (std::uint64_t seq = 0; seq < 200; ++seq)
    differing += a.decide(0, 1, 1, seq).drop != b.decide(0, 1, 1, seq).drop ? 1 : 0;
  EXPECT_GT(differing, 0);
}

TEST(FaultPlan, ScopedRulesRespectSourceAndTag) {
  FaultPlan plan;
  plan.with_rule({.drop = 1.0, .source = 2}).with_rule({.dup = 1.0, .tag = 5});
  EXPECT_TRUE(plan.decide(2, 0, 1, 0).drop);
  EXPECT_FALSE(plan.decide(1, 0, 1, 0).drop);
  EXPECT_TRUE(plan.decide(1, 0, 5, 0).duplicate);
  EXPECT_FALSE(plan.decide(1, 0, 4, 0).duplicate);
}

TEST(FaultPlan, CrashLatchFiresExactlyOnce) {
  FaultPlan plan;
  plan.with_crash(2, 5);
  EXPECT_FALSE(plan.consume_crash(2, 4));  // wrong chunk
  EXPECT_FALSE(plan.consume_crash(1, 5));  // wrong rank
  ASSERT_EQ(plan.next_crash_chunk(2), std::uint64_t{5});
  EXPECT_TRUE(plan.consume_crash(2, 5));
  EXPECT_FALSE(plan.consume_crash(2, 5));  // already fired
  EXPECT_FALSE(plan.next_crash_chunk(2).has_value());
  // A copy taken after the crash fired must not re-arm it.
  const FaultPlan copy = plan;
  EXPECT_FALSE(copy.consume_crash(2, 5));
}

// --------------------------------------------------------- reliable layer

// Every rank sends an ordered stream of payloads to every other rank under
// aggressive drop/dup/delay injection; the reliable layer must deliver each
// stream complete, deduplicated, and in order.
TEST(ReliableDelivery, StreamsSurviveDropsDupsAndDelays) {
  constexpr int kRanks = 4;
  constexpr std::uint64_t kMessages = 60;
  auto plan = std::make_shared<FaultPlan>();
  plan->with_rule({.drop = 0.25, .dup = 0.25, .delay = 0.25}).with_seed(11);

  RuntimeOptions options;
  options.ranks = kRanks;
  options.fault_plan = plan;
  options.retry_timeout = std::chrono::microseconds(500);

  std::vector<std::vector<std::vector<std::uint64_t>>> received(
      kRanks, std::vector<std::vector<std::uint64_t>>(kRanks));
  Runtime::run(options, [&](Comm& comm) {
    ASSERT_TRUE(comm.reliable());
    const int me = comm.rank();
    for (std::uint64_t i = 0; i < kMessages; ++i) {
      for (int dest = 0; dest < kRanks; ++dest) {
        if (dest == me) continue;
        const std::uint64_t payload = static_cast<std::uint64_t>(me) * 1000 + i;
        comm.send_values<std::uint64_t>(dest, 1, std::span(&payload, 1));
      }
    }
    for (std::uint64_t got = 0; got < kMessages * (kRanks - 1); ++got) {
      const RankMessage message = comm.recv();
      const auto values = Comm::decode<std::uint64_t>(message);
      ASSERT_EQ(values.size(), 1u);
      received[me][message.source].push_back(values[0]);
    }
  });

  for (int dest = 0; dest < kRanks; ++dest) {
    for (int src = 0; src < kRanks; ++src) {
      if (src == dest) continue;
      const auto& stream = received[dest][src];
      ASSERT_EQ(stream.size(), kMessages) << "stream " << src << " -> " << dest;
      for (std::uint64_t i = 0; i < kMessages; ++i)
        EXPECT_EQ(stream[i], static_cast<std::uint64_t>(src) * 1000 + i)
            << "stream " << src << " -> " << dest << " at " << i;
    }
  }
}

TEST(ReliableDelivery, CountersRecordInjectionAndRecovery) {
  auto plan = std::make_shared<FaultPlan>();
  plan->with_rule({.drop = 0.5, .dup = 0.5}).with_seed(3);
  RuntimeOptions options;
  options.ranks = 2;
  options.fault_plan = plan;
  options.retry_timeout = std::chrono::microseconds(300);

  FaultStats sender_faults;
  Runtime::run(options, [&](Comm& comm) {
    if (comm.rank() == 0) {
      for (std::uint64_t i = 0; i < 50; ++i)
        comm.send_values<std::uint64_t>(1, 1, std::span(&i, 1));
      comm.reliable_flush();
      sender_faults = comm.stats().faults;
    } else {
      for (int i = 0; i < 50; ++i) (void)comm.recv();
    }
  });
  EXPECT_TRUE(sender_faults.any());
  EXPECT_GT(sender_faults.injected_drops + sender_faults.injected_dups, 0u);
  EXPECT_GT(sender_faults.acks_received, 0u);
  // Every injected drop forces a retransmission; a slow ack may add more.
  EXPECT_GE(sender_faults.retransmits, sender_faults.injected_drops);
}

// A destination that exits without ever receiving never acks, so the
// sender's bounded retries must exhaust into a structured CommFaultError
// naming the offending ranks and tag.
TEST(ReliableDelivery, ExhaustedRetriesRaiseCommFaultError) {
  auto plan = std::make_shared<FaultPlan>();
  plan->with_rule({.drop = 0.01}).with_seed(1);
  RuntimeOptions options;
  options.ranks = 2;
  options.fault_plan = plan;
  options.retry_timeout = std::chrono::microseconds(100);
  options.max_retries = 3;

  try {
    Runtime::run(options, [&](Comm& comm) {
      if (comm.rank() == 0) {
        const std::uint64_t payload = 7;
        comm.send_values<std::uint64_t>(1, 9, std::span(&payload, 1));
        comm.reliable_flush();
      }
      // Rank 1 returns immediately: it never receives, never acks.
    });
    FAIL() << "expected CommFaultError";
  } catch (const CommFaultError& error) {
    EXPECT_EQ(error.source(), 0);
    EXPECT_EQ(error.dest(), 1);
    EXPECT_EQ(error.tag(), 9);
  }
}

// ------------------------------------------------------------- checkpoints

TEST(Checkpoint, ShardSnapshotRoundTrip) {
  const auto dir = fresh_dir("shard_roundtrip");
  const std::vector<Edge> arcs{{0, 1}, {1, 0}, {2, 3}};
  const auto path = shard_path(dir, 2);
  write_shard_snapshot(path, 0xabcdu, 2, 4, 17, arcs);
  const ShardSnapshot snapshot = read_shard_snapshot(path);
  EXPECT_EQ(snapshot.config_hash, 0xabcdu);
  EXPECT_EQ(snapshot.rank, 2u);
  EXPECT_EQ(snapshot.completed_epochs, 4u);
  EXPECT_EQ(snapshot.produced_chunks, 17u);
  EXPECT_EQ(snapshot.arcs, arcs);
}

TEST(Checkpoint, CorruptShardIsRejected) {
  const auto dir = fresh_dir("shard_corrupt");
  const std::vector<Edge> arcs{{0, 1}, {2, 3}};
  const auto path = shard_path(dir, 0);
  write_shard_snapshot(path, 1, 0, 1, 1, arcs);
  {
    // Flip one payload byte: the checksum must catch it.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(-1, std::ios::end);
    file.put('\x5a');
  }
  EXPECT_THROW((void)read_shard_snapshot(path), std::runtime_error);
}

TEST(Checkpoint, ChecksumIsOrderIndependent) {
  const std::vector<Edge> forward{{0, 1}, {1, 2}, {5, 9}};
  std::vector<Edge> shuffled = {{5, 9}, {0, 1}, {1, 2}};
  EXPECT_EQ(arc_set_checksum(forward), arc_set_checksum(shuffled));
  shuffled[0] = {5, 8};
  EXPECT_NE(arc_set_checksum(forward), arc_set_checksum(shuffled));
}

TEST(Checkpoint, ManifestRoundTripAndValidation) {
  const auto dir = fresh_dir("manifest_roundtrip");
  CheckpointManifest manifest;
  manifest.config_hash = 99;
  manifest.ranks = 2;
  manifest.completed_epochs = 3;
  manifest.checkpoint_every = 4;
  manifest.shard_checksums = {11, 22};
  manifest.shard_arc_counts = {5, 7};
  manifest.shard_bytes = {120, 152};
  write_manifest(dir, manifest);
  const CheckpointManifest loaded = read_manifest(dir);
  EXPECT_EQ(loaded.config_hash, 99u);
  EXPECT_EQ(loaded.ranks, 2u);
  EXPECT_EQ(loaded.encoding, kCheckpointEncoding);
  EXPECT_EQ(loaded.completed_epochs, 3u);
  EXPECT_EQ(loaded.checkpoint_every, 4u);
  EXPECT_EQ(loaded.shard_checksums, (std::vector<std::uint64_t>{11, 22}));
  EXPECT_EQ(loaded.shard_arc_counts, (std::vector<std::uint64_t>{5, 7}));
  EXPECT_EQ(loaded.shard_bytes, (std::vector<std::uint64_t>{120, 152}));

  // Wrong configuration: hash, rank count, and cadence must all be pinned.
  EXPECT_THROW((void)load_resume_state(dir, 100, 2, 4), std::runtime_error);
  EXPECT_THROW((void)load_resume_state(dir, 99, 3, 4), std::runtime_error);
  EXPECT_THROW((void)load_resume_state(dir, 99, 2, 5), std::runtime_error);
}

TEST(Checkpoint, ManifestRejectsVersionOneWithActionableError) {
  const auto dir = fresh_dir("manifest_v1");
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(manifest_path(dir));
    out << "KRONCK-MANIFEST 1\n"
        << "config_hash 99\nranks 1\ncompleted_epochs 1\ncheckpoint_every 2\n"
        << "shard 0 1234\n";
  }
  try {
    (void)read_manifest(dir);
    FAIL() << "v1 manifest must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("older build"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("--resume"), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, ResumeRejectsForeignShardEncoding) {
  const auto dir = fresh_dir("manifest_encoding");
  CheckpointManifest manifest;
  manifest.config_hash = 7;
  manifest.ranks = 1;
  manifest.encoding = kCheckpointEncoding + 1;  // a future build's shards
  manifest.completed_epochs = 1;
  manifest.checkpoint_every = 2;
  manifest.shard_checksums = {1};
  manifest.shard_arc_counts = {1};
  manifest.shard_bytes = {64};
  write_manifest(dir, manifest);
  try {
    (void)load_resume_state(dir, 7, 1, 2);
    FAIL() << "foreign shard encoding must be rejected";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("encoding"), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, MissingManifestMeansFreshStart) {
  const auto dir = fresh_dir("manifest_missing");
  const ResumeState state = load_resume_state(dir, 1, 2, 3);
  EXPECT_EQ(state.start_epoch, 0u);
  for (const auto& shard : state.shard_arcs) EXPECT_TRUE(shard.empty());
}

TEST(Checkpoint, ConfigHashPinsFactorsAndSettings) {
  const EdgeList a = make_gnm(30, 90, 5);
  const EdgeList b = make_gnm(20, 50, 6);
  GeneratorConfig config;
  config.ranks = 2;
  const std::uint64_t base = generator_config_hash(a, b, config);
  EXPECT_EQ(generator_config_hash(a, b, config), base);

  GeneratorConfig other = config;
  other.ranks = 3;
  EXPECT_NE(generator_config_hash(a, b, other), base);
  other = config;
  other.scheme = PartitionScheme::k2D;
  EXPECT_NE(generator_config_hash(a, b, other), base);
  other = config;
  other.checkpoint_every = 99;
  EXPECT_NE(generator_config_hash(a, b, other), base);
  EXPECT_NE(generator_config_hash(b, a, config), base);  // factors matter

  // Pure perf knobs must NOT invalidate a checkpoint.
  other = config;
  other.channel_capacity = 77;
  other.max_retries = 3;
  EXPECT_EQ(generator_config_hash(a, b, other), base);
}

// ----------------------------------------------------------- chaos soak

EdgeList reference_product(const EdgeList& a, const EdgeList& b, GeneratorConfig config) {
  config.fault_plan = nullptr;
  config.checkpoint_dir.clear();
  config.resume = false;
  return generate_distributed(a, b, config).gather();
}

// Crash mid-generation, resume from the checkpoint, and require the final
// edge list bit-identical to the fault-free run — across both partition
// schemes and two rank (thread) counts, with message faults active
// throughout.
TEST(ChaosSoak, CrashResumeIsBitIdenticalAcrossSchemesAndRankCounts) {
  const EdgeList a = make_gnm(48, 160, 21);
  const EdgeList b = make_gnm(32, 100, 22);
  int soak = 0;
  for (const PartitionScheme scheme : {PartitionScheme::k1D, PartitionScheme::k2D}) {
    for (const int ranks : {2, 4}) {
      GeneratorConfig config;
      config.ranks = ranks;
      config.scheme = scheme;
      config.shuffle_to_owner = true;
      config.exchange = ExchangeMode::kAsync;
      config.async_chunk = 256;
      config.checkpoint_every = 2;
      config.checkpoint_dir = fresh_dir("chaos_soak_" + std::to_string(soak++));
      config.retry_timeout = std::chrono::microseconds(500);

      const EdgeList expected = reference_product(a, b, config);

      auto plan = std::make_shared<FaultPlan>();
      plan->with_rule({.drop = 0.05, .dup = 0.03, .delay = 0.03})
          .with_seed(static_cast<std::uint64_t>(soak))
          .with_crash(ranks - 1, 3);
      config.fault_plan = plan;

      EXPECT_THROW((void)generate_distributed(a, b, config), RankCrashError);

      config.resume = true;  // the crash latch is spent: this attempt completes
      const EdgeList recovered = generate_distributed(a, b, config).gather();
      EXPECT_EQ(recovered.num_vertices(), expected.num_vertices());
      ASSERT_EQ(recovered.edges().size(), expected.edges().size())
          << "scheme " << (scheme == PartitionScheme::k1D ? "1d" : "2d") << " ranks "
          << ranks;
      EXPECT_TRUE(std::equal(recovered.edges().begin(), recovered.edges().end(),
                             expected.edges().begin()))
          << "recovered edge list diverged from the fault-free run";
    }
  }
}

// Resume must also work under the bulk-synchronous exchange and without
// any shuffle (chunked local production).
TEST(ChaosSoak, CrashResumeCoversBulkAndLocalModes) {
  const EdgeList a = make_gnm(40, 120, 31);
  const EdgeList b = make_gnm(24, 70, 32);
  int soak = 0;
  for (const bool shuffle : {true, false}) {
    GeneratorConfig config;
    config.ranks = 3;
    config.shuffle_to_owner = shuffle;
    config.exchange = ExchangeMode::kBulkSynchronous;
    config.async_chunk = 200;
    config.checkpoint_every = 3;
    config.checkpoint_dir = fresh_dir("chaos_bulk_" + std::to_string(soak++));

    const EdgeList expected = reference_product(a, b, config);

    auto plan = std::make_shared<FaultPlan>();
    plan->with_crash(1, 4);
    config.fault_plan = plan;
    EXPECT_THROW((void)generate_distributed(a, b, config), RankCrashError);

    config.resume = true;
    const EdgeList recovered = generate_distributed(a, b, config).gather();
    ASSERT_EQ(recovered.edges().size(), expected.edges().size());
    EXPECT_TRUE(std::equal(recovered.edges().begin(), recovered.edges().end(),
                           expected.edges().begin()));
  }
}

// A checkpointed run with no faults at all must still equal the plain run
// (the epoch machinery itself must not perturb the output).
TEST(ChaosSoak, CheckpointingAloneDoesNotChangeTheGraph) {
  const EdgeList a = make_gnm(36, 110, 41);
  const EdgeList b = make_gnm(28, 80, 42);
  GeneratorConfig config;
  config.ranks = 4;
  config.scheme = PartitionScheme::k2D;
  config.shuffle_to_owner = true;
  config.exchange = ExchangeMode::kAsync;
  config.async_chunk = 300;

  const EdgeList expected = reference_product(a, b, config);

  config.checkpoint_dir = fresh_dir("chaos_nofault");
  config.checkpoint_every = 2;
  const EdgeList checkpointed = generate_distributed(a, b, config).gather();
  ASSERT_EQ(checkpointed.edges().size(), expected.edges().size());
  EXPECT_TRUE(std::equal(checkpointed.edges().begin(), checkpointed.edges().end(),
                         expected.edges().begin()));

  // And a redundant resume of a *completed* run replays the final epoch
  // into the same graph.
  config.resume = true;
  const EdgeList resumed = generate_distributed(a, b, config).gather();
  EXPECT_TRUE(std::equal(resumed.edges().begin(), resumed.edges().end(),
                         expected.edges().begin()));
}

}  // namespace
}  // namespace kron
