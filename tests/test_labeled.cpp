// Tests for vertex-labeled Kronecker ground truth (graph/labels.hpp,
// core/labeled_gt.hpp): label-class sizes, inter-class arc counts, and
// labeled degrees, validated against direct measurement on materialised
// labeled products.
#include <gtest/gtest.h>

#include "core/index.hpp"
#include "core/kron.hpp"
#include "core/labeled_gt.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "graph/labels.hpp"
#include "util/random.hpp"

namespace kron {
namespace {

LabeledGraph labeled_fixture(EdgeList graph, label_t num_labels, std::uint64_t seed) {
  LabeledGraph g;
  g.num_labels = num_labels;
  g.label_of.resize(graph.num_vertices());
  Xoshiro256 rng(seed);
  for (auto& l : g.label_of) l = static_cast<label_t>(rng.below(num_labels));
  g.graph = std::move(graph);
  return g;
}

/// Direct measurement on the materialised labeled product.
LabeledGraph materialize_labeled(const LabeledGraph& a, const LabeledGraph& b) {
  LabeledGraph c;
  c.graph = kronecker_product(a.graph, b.graph);
  c.num_labels = a.num_labels * b.num_labels;
  c.label_of = kron_labels(a.label_of, b.num_labels, b.label_of);
  return c;
}

TEST(Labels, ProductLabelFlattening) {
  EXPECT_EQ(product_label(0, 0, 3), 0u);
  EXPECT_EQ(product_label(1, 2, 3), 5u);
  EXPECT_EQ(product_label(2, 0, 3), 6u);
}

TEST(Labels, KronLabelsFollowGammaOrder) {
  const std::vector<label_t> la{0, 1};
  const std::vector<label_t> lb{2, 0, 1};
  const auto lc = kron_labels(la, 3, lb);
  ASSERT_EQ(lc.size(), 6u);
  // Vertex gamma(i, k, 3) = 3i + k carries (la[i], lb[k]).
  for (vertex_t i = 0; i < 2; ++i)
    for (vertex_t k = 0; k < 3; ++k)
      EXPECT_EQ(lc[gamma(i, k, 3)], product_label(la[i], lb[k], 3));
}

TEST(Labels, ValidDetectsBadLabels) {
  LabeledGraph g;
  g.graph = make_clique(3);
  g.num_labels = 2;
  g.label_of = {0, 1, 5};  // out of range
  EXPECT_FALSE(g.valid());
  g.label_of = {0, 1};  // wrong size
  EXPECT_FALSE(g.valid());
  g.label_of = {0, 1, 1};
  EXPECT_TRUE(g.valid());
}

TEST(LabeledGt, ClassSizesMultiply) {
  const LabeledGraph a = labeled_fixture(make_clique(6), 2, 3);
  const LabeledGraph b = labeled_fixture(make_cycle(5), 3, 4);
  const LabeledProductTruth truth = labeled_product_truth(a, b);
  const LabeledGraph c = materialize_labeled(a, b);
  EXPECT_EQ(truth.num_labels, 6u);
  EXPECT_EQ(truth.class_sizes, label_sizes(c));
}

TEST(LabeledGt, ArcMatrixMatchesDirect) {
  const LabeledGraph a = labeled_fixture(make_gnm(8, 16, 5), 3, 6);
  const LabeledGraph b = labeled_fixture(make_gnm(7, 12, 7), 2, 8);
  const LabeledProductTruth truth = labeled_product_truth(a, b);
  const LabeledGraph c = materialize_labeled(a, b);
  EXPECT_EQ(truth.arc_matrix, label_arc_matrix(c));
}

TEST(LabeledGt, ArcMatrixTotalEqualsArcProduct) {
  const LabeledGraph a = labeled_fixture(make_gnm(9, 20, 9), 4, 10);
  const LabeledGraph b = labeled_fixture(make_clique(5), 2, 11);
  const LabeledProductTruth truth = labeled_product_truth(a, b);
  std::uint64_t total = 0;
  for (const auto count : truth.arc_matrix) total += count;
  EXPECT_EQ(total, a.graph.num_arcs() * b.graph.num_arcs());
}

TEST(LabeledGt, LabeledDegreeMatchesDirect) {
  const LabeledGraph a = labeled_fixture(make_gnm(8, 18, 13), 2, 14);
  const LabeledGraph b = labeled_fixture(make_gnm(6, 10, 15), 2, 16);
  const LabeledGraph c = materialize_labeled(a, b);
  const vertex_t n_b = b.graph.num_vertices();
  // Direct labeled degree on the product vs the product of factor labeled
  // degrees, for a grid of (vertex, class) probes.
  for (vertex_t i = 0; i < 4; ++i) {
    for (vertex_t k = 0; k < 3; ++k) {
      const vertex_t p = gamma(i, k, n_b);
      for (label_t lambda = 0; lambda < 2; ++lambda) {
        for (label_t mu = 0; mu < 2; ++mu) {
          std::uint64_t direct = 0;
          for (const Edge& e : c.graph.edges())
            if (e.u == p &&
                c.label_of[e.v] == product_label(lambda, mu, b.num_labels))
              ++direct;
          EXPECT_EQ(labeled_degree_product(a, i, lambda, b, k, mu), direct)
              << "p=" << p << " class=(" << lambda << "," << mu << ")";
        }
      }
    }
  }
}

TEST(LabeledGt, SingleLabelReducesToUnlabeled) {
  // With one label everywhere, the arc matrix is just the arc count.
  const LabeledGraph a = labeled_fixture(make_clique(4), 1, 1);
  const LabeledGraph b = labeled_fixture(make_cycle(4), 1, 2);
  const LabeledProductTruth truth = labeled_product_truth(a, b);
  ASSERT_EQ(truth.arc_matrix.size(), 1u);
  EXPECT_EQ(truth.arc_matrix[0], a.graph.num_arcs() * b.graph.num_arcs());
  EXPECT_EQ(truth.class_sizes[0], 16u);
}

TEST(LabeledGt, RejectsInvalidLabelings) {
  LabeledGraph bad;
  bad.graph = make_clique(3);
  bad.num_labels = 1;
  bad.label_of = {0, 0};  // size mismatch
  const LabeledGraph good = labeled_fixture(make_clique(3), 1, 1);
  EXPECT_THROW((void)labeled_product_truth(bad, good), std::invalid_argument);
  EXPECT_THROW((void)label_arc_matrix(bad), std::invalid_argument);
  EXPECT_THROW((void)label_sizes(bad), std::invalid_argument);
}

}  // namespace
}  // namespace kron
