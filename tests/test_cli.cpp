// Unit tests for the command-line option parser behind tools/krongen.
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace kron {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens,
              const std::set<std::string>& flags = {}) {
  std::vector<const char*> argv{"prog", "cmd"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data(), 2, flags);
}

TEST(Cli, ParsesKeyValueOptions) {
  const CliArgs args = parse({"--a", "input.txt", "--ranks", "4"});
  EXPECT_EQ(args.get("a"), "input.txt");
  EXPECT_EQ(args.get_u64("ranks", 1), 4u);
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(Cli, FlagsDoNotConsumeValues) {
  const CliArgs args = parse({"--shuffle", "--out", "c.txt"}, {"shuffle"});
  EXPECT_TRUE(args.has_flag("shuffle"));
  EXPECT_EQ(args.get("out"), "c.txt");
}

TEST(Cli, PositionalArguments) {
  const CliArgs args = parse({"first", "--k", "v", "second"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"first", "second"}));
}

TEST(Cli, DefaultsAndRequire) {
  const CliArgs args = parse({"--n", "12"});
  EXPECT_EQ(args.get_or("family", "er"), "er");
  EXPECT_EQ(args.get_u64("n", 0), 12u);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.5), 0.5);
  EXPECT_THROW((void)args.require("out"), std::invalid_argument);
  EXPECT_EQ(args.require("n"), "12");
}

TEST(Cli, MissingValueIsError) {
  EXPECT_THROW(parse({"--out"}), std::invalid_argument);
}

TEST(Cli, BareDashesRejected) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Cli, NonNumericValuesRejectedByTypedGetters) {
  const CliArgs args = parse({"--n", "twelve", "--p", "many"});
  EXPECT_THROW((void)args.get_u64("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("p", 0), std::invalid_argument);
}

TEST(Cli, RejectUnknownCatchesTypos) {
  const CliArgs args = parse({"--rnaks", "4"});
  EXPECT_THROW(args.reject_unknown({"ranks", "out"}), std::invalid_argument);
  const CliArgs ok = parse({"--ranks", "4"});
  EXPECT_NO_THROW(ok.reject_unknown({"ranks", "out"}));
}

TEST(Cli, UnknownFlagAlsoRejected) {
  const CliArgs args = parse({"--verbose"}, {"verbose"});
  EXPECT_THROW(args.reject_unknown({"quiet"}), std::invalid_argument);
}

}  // namespace
}  // namespace kron
