// Unit tests for the command-line option parser behind tools/krongen.
#include <gtest/gtest.h>

#include "util/cli.hpp"

namespace kron {
namespace {

CliArgs parse(std::initializer_list<const char*> tokens,
              const std::set<std::string>& flags = {}) {
  std::vector<const char*> argv{"prog", "cmd"};
  argv.insert(argv.end(), tokens.begin(), tokens.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data(), 2, flags);
}

TEST(Cli, ParsesKeyValueOptions) {
  const CliArgs args = parse({"--a", "input.txt", "--ranks", "4"});
  EXPECT_EQ(args.get("a"), "input.txt");
  EXPECT_EQ(args.get_u64("ranks", 1), 4u);
  EXPECT_FALSE(args.get("missing").has_value());
}

TEST(Cli, FlagsDoNotConsumeValues) {
  const CliArgs args = parse({"--shuffle", "--out", "c.txt"}, {"shuffle"});
  EXPECT_TRUE(args.has_flag("shuffle"));
  EXPECT_EQ(args.get("out"), "c.txt");
}

TEST(Cli, PositionalArguments) {
  const CliArgs args = parse({"first", "--k", "v", "second"});
  EXPECT_EQ(args.positional(), (std::vector<std::string>{"first", "second"}));
}

TEST(Cli, DefaultsAndRequire) {
  const CliArgs args = parse({"--n", "12"});
  EXPECT_EQ(args.get_or("family", "er"), "er");
  EXPECT_EQ(args.get_u64("n", 0), 12u);
  EXPECT_DOUBLE_EQ(args.get_double("p", 0.5), 0.5);
  EXPECT_THROW((void)args.require("out"), std::invalid_argument);
  EXPECT_EQ(args.require("n"), "12");
}

TEST(Cli, MissingValueIsError) {
  EXPECT_THROW(parse({"--out"}), std::invalid_argument);
}

TEST(Cli, BareDashesRejected) {
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Cli, NonNumericValuesRejectedByTypedGetters) {
  const CliArgs args = parse({"--n", "twelve", "--p", "many"});
  EXPECT_THROW((void)args.get_u64("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("p", 0), std::invalid_argument);
}

// The stoull bug family: "-1" silently wrapped to 2^64-1, "10x" parsed its
// prefix, and 21-digit values wrapped.  All must now be diagnosed.
TEST(Cli, NegativeIntegersRejected) {
  const CliArgs args = parse({"--n", "-1"});
  EXPECT_THROW((void)args.get_u64("n", 0), std::invalid_argument);
}

TEST(Cli, TrailingGarbageRejected) {
  const CliArgs args = parse({"--n", "10x", "--m", "1 2", "--p", "0.5abc"});
  EXPECT_THROW((void)args.get_u64("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_u64("m", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_double("p", 0), std::invalid_argument);
}

TEST(Cli, OverflowRejectedNotWrapped) {
  const CliArgs args = parse({"--n", "99999999999999999999"});  // > 2^64-1
  try {
    (void)args.get_u64("n", 0);
    FAIL() << "expected overflow diagnostic";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("does not fit in 64 bits"), std::string::npos);
  }
}

TEST(Cli, MaxU64StillAccepted) {
  const CliArgs args = parse({"--n", "18446744073709551615"});
  EXPECT_EQ(args.get_u64("n", 0), 18446744073709551615ull);
}

TEST(Cli, EmptyAndWhitespaceValuesRejected) {
  const CliArgs args = parse({"--n", "", "--m", " 7"});
  EXPECT_THROW((void)args.get_u64("n", 0), std::invalid_argument);
  EXPECT_THROW((void)args.get_u64("m", 0), std::invalid_argument);  // stoull skipped ws
}

TEST(Cli, RangeCheckedGetter) {
  const CliArgs args = parse({"--ranks", "4"});
  EXPECT_EQ(args.get_u64("ranks", 1, 1, 8), 4u);
  EXPECT_THROW((void)args.get_u64("ranks", 1, 5, 8), std::invalid_argument);
  EXPECT_THROW((void)args.get_u64("ranks", 1, 1, 3), std::invalid_argument);
  // The fallback is range-checked too: a default outside the range is a bug.
  EXPECT_EQ(args.get_u64("missing", 2, 1, 8), 2u);
}

TEST(Cli, ParseU64NamesTheOptionAndValue) {
  try {
    (void)CliArgs::parse_u64("--vertex", "-1");
    FAIL() << "expected diagnostic";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--vertex"), std::string::npos);
    EXPECT_NE(what.find("'-1'"), std::string::npos);
  }
  EXPECT_EQ(CliArgs::parse_u64("--vertex", "42"), 42u);
}

TEST(Cli, DoubleParsingStillAcceptsUsualForms) {
  const CliArgs args = parse({"--p", "0.25", "--q", "1e-3", "--r", "-0.5"});
  EXPECT_DOUBLE_EQ(args.get_double("p", 0), 0.25);
  EXPECT_DOUBLE_EQ(args.get_double("q", 0), 1e-3);
  EXPECT_DOUBLE_EQ(args.get_double("r", 0), -0.5);
}

TEST(Cli, RejectUnknownCatchesTypos) {
  const CliArgs args = parse({"--rnaks", "4"});
  EXPECT_THROW(args.reject_unknown({"ranks", "out"}), std::invalid_argument);
  const CliArgs ok = parse({"--ranks", "4"});
  EXPECT_NO_THROW(ok.reject_unknown({"ranks", "out"}));
}

TEST(Cli, UnknownFlagAlsoRejected) {
  const CliArgs args = parse({"--verbose"}, {"verbose"});
  EXPECT_THROW(args.reject_unknown({"quiet"}), std::invalid_argument);
}

// Duplicate occurrences were previously resolved last-one-wins, silently
// discarding the first value; both forms must now be diagnosed naming the
// repeated flag.
TEST(Cli, DuplicateValuedOptionRejected) {
  try {
    parse({"--out", "a.txt", "--ranks", "2", "--out", "b.txt"});
    FAIL() << "expected duplicate diagnostic";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("--out"), std::string::npos);
    EXPECT_NE(what.find("more than once"), std::string::npos);
  }
}

TEST(Cli, DuplicateFlagRejected) {
  try {
    parse({"--shuffle", "--shuffle"}, {"shuffle"});
    FAIL() << "expected duplicate diagnostic";
  } catch (const std::invalid_argument& error) {
    EXPECT_NE(std::string(error.what()).find("--shuffle"), std::string::npos);
  }
}

TEST(Cli, DistinctOptionsStillAccepted) {
  const CliArgs args = parse({"--a", "x", "--b", "x", "--lcc"}, {"lcc"});
  EXPECT_EQ(args.get("a"), "x");
  EXPECT_EQ(args.get("b"), "x");
  EXPECT_TRUE(args.has_flag("lcc"));
}

}  // namespace
}  // namespace kron
