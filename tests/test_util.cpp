// Unit tests for the util module: hashing, PRNG, histograms, statistics,
// bitsets, table rendering.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_set>

#include <iostream>

#include <cstdlib>

#include "util/bitset.hpp"
#include "util/env.hpp"
#include "util/hash.hpp"
#include "util/histogram.hpp"
#include "util/log.hpp"
#include "util/overflow.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace kron {
namespace {

// ---------------------------------------------------------------- hashing

TEST(Hash, Mix64IsDeterministic) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Hash, Mix64AvalanchesAdjacentInputs) {
  // Adjacent inputs must differ in many bits; 16 is a loose floor.
  for (std::uint64_t x = 0; x < 64; ++x) {
    const int differing = __builtin_popcountll(mix64(x) ^ mix64(x + 1));
    EXPECT_GE(differing, 16) << "x=" << x;
  }
}

TEST(Hash, EdgeHashIsSymmetric) {
  for (std::uint64_t u = 0; u < 20; ++u)
    for (std::uint64_t v = 0; v < 20; ++v)
      EXPECT_EQ(edge_hash(u, v), edge_hash(v, u));
}

TEST(Hash, EdgeHashDependsOnSeed) {
  EXPECT_NE(edge_hash(3, 5, 0), edge_hash(3, 5, 1));
}

TEST(Hash, EdgeHashDistinguishesEdges) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t u = 0; u < 50; ++u)
    for (std::uint64_t v = u; v < 50; ++v) seen.insert(edge_hash(u, v));
  // All 1275 canonical pairs should hash distinctly (collision would be a
  // ~1e-16 probability event for a good 64-bit hash).
  EXPECT_EQ(seen.size(), 50u * 51u / 2u);
}

TEST(Hash, ToUnitIsInHalfOpenInterval) {
  for (std::uint64_t x : {0ULL, 1ULL, ~0ULL, 0x8000000000000000ULL, 12345ULL}) {
    const double u = to_unit(mix64(x));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  EXPECT_EQ(to_unit(0), 0.0);
}

TEST(Hash, EdgeUnitHashIsRoughlyUniform) {
  // Mean of many unit hashes should be near 0.5.
  double sum = 0.0;
  const int trials = 10000;
  for (int i = 0; i < trials; ++i)
    sum += edge_unit_hash(static_cast<std::uint64_t>(i), static_cast<std::uint64_t>(i) + 7);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

// ------------------------------------------------------------------- PRNG

TEST(Random, DeterministicForSeed) {
  Xoshiro256 a(99);
  Xoshiro256 b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Random, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Random, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Random, BelowRespectsBound) {
  Xoshiro256 rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Random, BelowOneAlwaysZero) {
  Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Random, BetweenIsInclusive) {
  Xoshiro256 rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t x = rng.between(4, 6);
    EXPECT_GE(x, 4u);
    EXPECT_LE(x, 6u);
    saw_lo |= (x == 4);
    saw_hi |= (x == 6);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Random, BelowIsApproximatelyUniform) {
  Xoshiro256 rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(10)];
  for (const int c : counts) EXPECT_NEAR(c, trials / 10, trials / 100);
}

TEST(Random, ChanceExtremes) {
  Xoshiro256 rng(2);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

// -------------------------------------------------------------- histogram

TEST(Histogram, EmptyState) {
  Histogram h;
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.distinct(), 0u);
  EXPECT_EQ(h.count(5), 0u);
  EXPECT_THROW((void)h.min(), std::logic_error);
  EXPECT_THROW((void)h.max(), std::logic_error);
  EXPECT_THROW((void)h.mean(), std::logic_error);
}

TEST(Histogram, AddAndCount) {
  Histogram h;
  h.add(3);
  h.add(3);
  h.add(7, 5);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.distinct(), 2u);
  EXPECT_EQ(h.count(3), 2u);
  EXPECT_EQ(h.count(7), 5u);
  EXPECT_EQ(h.min(), 3u);
  EXPECT_EQ(h.max(), 7u);
}

TEST(Histogram, ZeroMultiplicityIsNoop) {
  Histogram h;
  h.add(4, 0);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_EQ(h.distinct(), 0u);
}

TEST(Histogram, Mean) {
  Histogram h;
  h.add(1, 3);
  h.add(5, 1);
  EXPECT_DOUBLE_EQ(h.mean(), (3.0 * 1 + 5.0) / 4.0);
}

TEST(Histogram, Quantiles) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 100; ++v) h.add(v);
  EXPECT_EQ(h.quantile(0.5), 50u);
  EXPECT_EQ(h.quantile(0.0), 1u);
  EXPECT_EQ(h.quantile(1.0), 100u);
  EXPECT_EQ(h.quantile(0.9), 90u);
}

TEST(Histogram, Merge) {
  Histogram a, b;
  a.add(1, 2);
  b.add(1, 3);
  b.add(9);
  a.merge(b);
  EXPECT_EQ(a.count(1), 5u);
  EXPECT_EQ(a.count(9), 1u);
  EXPECT_EQ(a.total(), 6u);
}

TEST(Histogram, FromSamples) {
  const Histogram h = Histogram::from({4, 4, 2, 9});
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_EQ(h.count(2), 1u);
  EXPECT_EQ(h.count(9), 1u);
}

TEST(Histogram, ItemsSorted) {
  Histogram h;
  h.add(9);
  h.add(1);
  h.add(5);
  const auto items = h.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0].first, 1u);
  EXPECT_EQ(items[1].first, 5u);
  EXPECT_EQ(items[2].first, 9u);
}

TEST(Histogram, AsciiRendersEachValue) {
  Histogram h;
  h.add(1, 10);
  h.add(2, 5);
  const std::string art = h.ascii(10);
  EXPECT_NE(art.find("1\t10"), std::string::npos);
  EXPECT_NE(art.find("2\t5"), std::string::npos);
}

// ------------------------------------------------------------------ stats

TEST(Stats, Empty) {
  Stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(Stats, MeanAndVariance) {
  Stats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: Σ(x-5)² = 32, /7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Stats, SingleSample) {
  Stats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

// ----------------------------------------------------------------- bitset

TEST(Bitset, SetAndTest) {
  Bitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_FALSE(bits.test(0));
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.popcount(), 3u);
}

TEST(Bitset, SetOnceReportsFirstTime) {
  Bitset bits(10);
  EXPECT_TRUE(bits.set_once(3));
  EXPECT_FALSE(bits.set_once(3));
  EXPECT_TRUE(bits.test(3));
}

TEST(Bitset, Reset) {
  Bitset bits(100);
  bits.set(5);
  bits.set(99);
  bits.reset();
  EXPECT_EQ(bits.popcount(), 0u);
  EXPECT_FALSE(bits.test(5));
}

// ------------------------------------------------------------------ table

TEST(Table, RendersAlignedColumns) {
  Table t({"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "22222"});
  const std::string out = t.str();
  EXPECT_NE(out.find("| name "), std::string::npos);
  EXPECT_NE(out.find("| alpha "), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) { EXPECT_THROW(Table({}), std::invalid_argument); }

TEST(Table, NumericFormatters) {
  EXPECT_EQ(Table::num(1.5, 3), "1.5");
  EXPECT_EQ(Table::sci(12345.0, 2), "1.23e+04");
}

// ------------------------------------------------------------------ timer

TEST(Timer, MeasuresNonNegativeTime) {
  Timer t;
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_GE(t.millis(), 0.0);
}

// -------------------------------------------------------------------- log

class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(stream_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string text() const { return stream_.str(); }

 private:
  std::ostringstream stream_;
  std::streambuf* old_;
};

TEST(Log, EmitsAtOrAboveThreshold) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kInfo);
  CerrCapture capture;
  log_debug("hidden ", 1);
  log_info("shown ", 2);
  log_warn("also shown");
  set_log_level(previous);
  const std::string text = capture.text();
  EXPECT_EQ(text.find("hidden"), std::string::npos);
  EXPECT_NE(text.find("shown 2"), std::string::npos);
  EXPECT_NE(text.find("also shown"), std::string::npos);
  EXPECT_NE(text.find("[INFO ]"), std::string::npos);
}

TEST(Log, LevelCanBeRaised) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kError);
  CerrCapture capture;
  log_warn("suppressed");
  log_error("critical");
  set_log_level(previous);
  EXPECT_EQ(capture.text().find("suppressed"), std::string::npos);
  EXPECT_NE(capture.text().find("critical"), std::string::npos);
}

TEST(Log, ConcatenatesMixedTypes) {
  const LogLevel previous = log_level();
  set_log_level(LogLevel::kDebug);
  CerrCapture capture;
  log_debug("x=", 42, " y=", 1.5, " z=", "str");
  set_log_level(previous);
  EXPECT_NE(capture.text().find("x=42 y=1.5 z=str"), std::string::npos);
}

// --------------------------------------------------------------- overflow

TEST(Overflow, CheckedOperationsAtBoundaries) {
  EXPECT_EQ(checked_mul(0, ~0ULL), 0u);
  EXPECT_EQ(checked_mul(1, ~0ULL), ~0ULL);
  EXPECT_THROW((void)checked_mul(2, (~0ULL / 2) + 1), std::overflow_error);
  EXPECT_EQ(checked_add(~0ULL, 0), ~0ULL);
  EXPECT_THROW((void)checked_add(~0ULL - 1, 2), std::overflow_error);
}

// -------------------------------------------------------------------- env
//
// The strict env-var parse shares the stoull bug family with util/cli:
// "-1" must not wrap, "4kb" must not read as 4, overflow must be named.

TEST(Env, StrictParseAcceptsPlainIntegers) {
  EXPECT_EQ(parse_env_u64("X", "0"), 0u);
  EXPECT_EQ(parse_env_u64("X", "1048576"), 1048576u);
  EXPECT_EQ(parse_env_u64("X", "18446744073709551615"), ~0ULL);
}

TEST(Env, StrictParseNamesVariableAndValue) {
  for (const char* bad : {"-1", "4kb", "1 2", " 7", "", "0x10", "1e6"}) {
    try {
      (void)parse_env_u64("KRON_OOC_BUFFER_BYTES", bad);
      FAIL() << "expected diagnostic for '" << bad << "'";
    } catch (const std::runtime_error& error) {
      EXPECT_NE(std::string(error.what()).find("KRON_OOC_BUFFER_BYTES"), std::string::npos)
          << error.what();
    }
  }
}

TEST(Env, OverflowNamedNotWrapped) {
  try {
    (void)parse_env_u64("KRON_THREADS", "99999999999999999999");
    FAIL() << "expected overflow diagnostic";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("does not fit in 64 bits"), std::string::npos);
  }
}

TEST(Env, UnsetVariableIsNullopt) {
  ::unsetenv("KRON_TEST_UNSET_VAR");
  EXPECT_FALSE(env_u64("KRON_TEST_UNSET_VAR").has_value());
  ::setenv("KRON_TEST_UNSET_VAR", "17", 1);
  EXPECT_EQ(env_u64("KRON_TEST_UNSET_VAR"), 17u);
  ::setenv("KRON_TEST_UNSET_VAR", "17x", 1);
  EXPECT_THROW((void)env_u64("KRON_TEST_UNSET_VAR"), std::runtime_error);
  ::unsetenv("KRON_TEST_UNSET_VAR");
}

}  // namespace
}  // namespace kron
