// Tests for the external k-way merge (graph/external_merge.hpp): the merged
// output must equal sort_dedupe over the concatenated inputs bit-for-bit at
// every thread count, corrupt inputs must be rejected, a crashed merge must
// resume re-using its published parts, and the generator's shard sink must
// feed the merge end-to-end to the same arcs the in-memory path gathers.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/generator.hpp"
#include "gen/erdos.hpp"
#include "graph/edge_list.hpp"
#include "graph/external_merge.hpp"
#include "graph/io.hpp"
#include "graph/shard_codec.hpp"
#include "graph/sort.hpp"
#include "util/parallel.hpp"

namespace kron {
namespace {

namespace fs = std::filesystem;

struct PoolGuard {
  ~PoolGuard() { ThreadPool::set_num_threads(0); }
};

fs::path fresh_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

// Duplicate-heavy overlapping sorted runs over a shared arc population:
// every shard draws ~2/3 of the population (with repeats inside a shard
// impossible — runs are deduped per shard — but heavy overlap across
// shards), so the merge's dedupe does real work.
struct ShardSet {
  fs::path dir;
  std::vector<fs::path> paths;
  std::vector<Edge> expected;  // sort_dedupe over the union
  std::uint64_t total_in = 0;  // arcs across all shards (with duplicates)
};

ShardSet make_duplicate_heavy_shards(const std::string& name, std::size_t num_shards,
                                     std::size_t population, vertex_t n, std::uint64_t seed) {
  ShardSet set;
  set.dir = fresh_dir(name);
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<vertex_t> vtx(0, n - 1);
  std::vector<Edge> pool(population);
  for (auto& e : pool) e = Edge{vtx(rng), vtx(rng)};

  std::bernoulli_distribution pick(2.0 / 3.0);
  for (std::size_t s = 0; s < num_shards; ++s) {
    std::vector<Edge> run;
    for (const Edge& e : pool)
      if (pick(rng)) run.push_back(e);
    sort_dedupe_edges(run);
    const fs::path path = set.dir / ("run" + std::to_string(s) + ".kshard");
    (void)write_arc_shard(path, n, run);
    set.paths.push_back(path);
    set.total_in += run.size();
    set.expected.insert(set.expected.end(), run.begin(), run.end());
  }
  sort_dedupe_edges(set.expected);
  return set;
}

std::vector<Edge> merged_arcs(const fs::path& dir) {
  const EdgeList list = read_merged_edge_list(dir);
  return {list.edges().begin(), list.edges().end()};
}

TEST(ExternalMerge, EqualsSortDedupeAtEveryThreadCount) {
  const PoolGuard guard;
  const ShardSet set =
      make_duplicate_heavy_shards("kron_merge_threads_in", 6, 40000, 512, 11);
  ASSERT_GT(set.total_in, set.expected.size()) << "inputs must actually overlap";

  for (const int threads : {1, 2, 7}) {
    ThreadPool::set_num_threads(threads);
    const fs::path out = fresh_dir("kron_merge_threads_out_" + std::to_string(threads));
    MergeStats stats;
    MergeOptions options;
    options.parts = 4;  // pin the partition so only scheduling varies
    const MergedManifest manifest = merge_shards(set.paths, out, options, &stats);

    EXPECT_EQ(manifest.total_arcs, set.expected.size()) << threads << " threads";
    EXPECT_EQ(stats.arcs_in, set.total_in);
    EXPECT_EQ(stats.arcs_out, set.expected.size());
    EXPECT_EQ(stats.duplicates_dropped, set.total_in - set.expected.size());
    EXPECT_EQ(merged_arcs(out), set.expected) << threads << " threads";
  }
}

TEST(ExternalMerge, PartCountDoesNotChangeTheResult) {
  const ShardSet set = make_duplicate_heavy_shards("kron_merge_parts_in", 5, 20000, 256, 12);
  std::vector<Edge> reference;
  for (const std::size_t parts : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    const fs::path out = fresh_dir("kron_merge_parts_out_" + std::to_string(parts));
    MergeOptions options;
    options.parts = parts;
    const MergedManifest manifest = merge_shards(set.paths, out, options);
    EXPECT_LE(manifest.parts.size(), parts);
    const std::vector<Edge> arcs = merged_arcs(out);
    EXPECT_EQ(arcs, set.expected) << parts << " parts";
    if (reference.empty()) reference = arcs;
    EXPECT_EQ(arcs, reference);
  }
}

TEST(ExternalMerge, TinyMemoryBudgetStillCorrect) {
  const ShardSet set = make_duplicate_heavy_shards("kron_merge_budget_in", 4, 30000, 512, 13);
  const fs::path out = fresh_dir("kron_merge_budget_out");
  MergeOptions options;
  options.parts = 3;
  options.budget_bytes = 1 << 16;  // 64 KiB across all cursors and writers
  const MergedManifest manifest = merge_shards(set.paths, out, options);
  EXPECT_EQ(manifest.total_arcs, set.expected.size());
  EXPECT_EQ(merged_arcs(out), set.expected);
}

TEST(ExternalMerge, RejectsEmptyAndInconsistentInputs) {
  const fs::path out = fresh_dir("kron_merge_bad_out");
  EXPECT_THROW((void)merge_shards({}, out), std::invalid_argument);

  const fs::path dir = fresh_dir("kron_merge_bad_in");
  (void)write_arc_shard(dir / "a.kshard", 100, std::vector<Edge>{{1, 2}, {3, 4}});
  (void)write_arc_shard(dir / "b.kshard", 5000, std::vector<Edge>{{1, 2}});
  EXPECT_THROW((void)merge_shards(list_arc_shards(dir), out), std::invalid_argument)
      << "mixed vertex counts / key shifts must be rejected";
}

TEST(ExternalMerge, CorruptedInputShardRejected) {
  const ShardSet set = make_duplicate_heavy_shards("kron_merge_corrupt_in", 3, 20000, 512, 14);
  // Flip a byte in the middle of one shard's payload.
  const fs::path victim = set.paths[1];
  const ArcShardInfo info = read_arc_shard_info(victim);
  {
    std::fstream file(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file);
    const std::streamoff offset = static_cast<std::streamoff>(80 + info.payload_bytes / 2);
    file.seekg(offset);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(offset);
    file.write(&byte, 1);
  }
  const fs::path out = fresh_dir("kron_merge_corrupt_out");
  EXPECT_THROW((void)merge_shards(set.paths, out), std::runtime_error);
}

TEST(ExternalMerge, ResumeAfterCrashReusesPublishedParts) {
  const ShardSet set = make_duplicate_heavy_shards("kron_merge_resume_in", 5, 30000, 512, 15);
  const fs::path out = fresh_dir("kron_merge_resume_out");
  MergeOptions options;
  options.parts = 4;
  const MergedManifest first = merge_shards(set.paths, out, options);
  ASSERT_GE(first.parts.size(), 2u) << "resume test needs more than one part";

  // Simulate a crash after some parts published but before the commit
  // record: drop the manifest and one part.
  fs::remove(out / "merged.manifest");
  fs::remove(first.parts.back().path);

  MergeStats stats;
  const MergedManifest second = merge_shards(set.paths, out, options, &stats);
  EXPECT_EQ(stats.parts_reused, first.parts.size() - 1);
  EXPECT_EQ(stats.parts_merged, 1u);
  EXPECT_EQ(second.total_arcs, first.total_arcs);
  EXPECT_EQ(merged_arcs(out), set.expected);
}

TEST(ExternalMerge, CompletedMergeIsIdempotent) {
  const ShardSet set = make_duplicate_heavy_shards("kron_merge_idem_in", 3, 10000, 256, 16);
  const fs::path out = fresh_dir("kron_merge_idem_out");
  const MergedManifest first = merge_shards(set.paths, out);
  MergeStats stats;
  const MergedManifest again = merge_shards(set.paths, out, {}, &stats);
  EXPECT_EQ(stats.parts_merged, 0u) << "a complete merge must be a no-op";
  EXPECT_EQ(again.total_arcs, first.total_arcs);
  EXPECT_EQ(read_merged_manifest(out).total_arcs, first.total_arcs);
}

TEST(ExternalMerge, GeneratorShardSinkEndToEndMatchesGather) {
  const EdgeList a = make_gnm(12, 24, 21);
  const EdgeList b = make_gnm(9, 15, 22);

  GeneratorConfig in_memory;
  in_memory.ranks = 3;
  in_memory.shuffle_to_owner = true;
  const EdgeList reference = generate_distributed(a, b, in_memory).gather();

  GeneratorConfig sharded = in_memory;
  sharded.sink = SinkMode::kShards;
  sharded.shard_dir = fresh_dir("kron_merge_e2e_shards");
  sharded.shard_mb = 1;
  const GeneratorResult result = generate_distributed(a, b, sharded);
  ASSERT_EQ(result.shard_io_per_rank.size(), 3u);
  std::uint64_t spilled = 0;
  for (const ShardIoStats& io : result.shard_io_per_rank) spilled += io.arcs_written;
  EXPECT_GT(spilled, 0u);

  const fs::path out = fresh_dir("kron_merge_e2e_out");
  const MergedManifest manifest = merge_shards(list_arc_shards(sharded.shard_dir), out);
  EXPECT_EQ(manifest.num_vertices, reference.num_vertices());
  EXPECT_EQ(read_merged_edge_list(out), reference);
}

TEST(ExternalMerge, ListArcShardsSortsAndFilters) {
  const fs::path dir = fresh_dir("kron_merge_list");
  (void)write_arc_shard(dir / "rank1-0.kshard", 16, std::vector<Edge>{{1, 1}});
  (void)write_arc_shard(dir / "rank0-0.kshard", 16, std::vector<Edge>{{2, 2}});
  std::ofstream(dir / "notes.txt") << "not a shard\n";
  const std::vector<fs::path> shards = list_arc_shards(dir);
  ASSERT_EQ(shards.size(), 2u);
  EXPECT_EQ(shards[0].filename(), "rank0-0.kshard");
  EXPECT_EQ(shards[1].filename(), "rank1-0.kshard");
  EXPECT_THROW((void)list_arc_shards(dir / "missing"), std::runtime_error);
}

}  // namespace
}  // namespace kron
