// Tests for the Kronecker-power ground truth (core/power_gt.hpp), plus the
// assortativity and betweenness reference analytics.
#include <gtest/gtest.h>

#include <cmath>

#include "analytics/assortativity.hpp"
#include "analytics/bfs.hpp"
#include "analytics/betweenness.hpp"
#include "analytics/triangles.hpp"
#include "core/kron.hpp"
#include "core/power_gt.hpp"
#include "gen/classic.hpp"
#include "gen/erdos.hpp"
#include "gen/prefattach.hpp"
#include "graph/csr.hpp"
#include "graph/ops.hpp"
#include "util/overflow.hpp"

namespace kron {
namespace {

// ---------------------------------------------------------------- power GT

TEST(PowerGroundTruth, FirstPowerIsTheFactorItself) {
  const EdgeList a = make_gnm(10, 25, 3);
  const PowerGroundTruth gt(a, 1);
  const Csr csr(a);
  const TriangleCounts census = count_triangles(csr);
  EXPECT_EQ(gt.num_vertices(), 10u);
  EXPECT_EQ(gt.num_edges(), 25u);
  EXPECT_EQ(gt.global_triangles(), census.total);
  Histogram direct;
  for (vertex_t v = 0; v < 10; ++v) direct.add(csr.degree(v));
  EXPECT_EQ(gt.degree_histogram().items(), direct.items());
}

TEST(PowerGroundTruth, MatchesMaterializedPowers) {
  const EdgeList a = prepare_factor(make_gnm(8, 16, 5), false);
  for (const unsigned k : {2u, 3u}) {
    const PowerGroundTruth gt(a, k);
    EdgeList p = kronecker_power(a, k);
    p.sort_dedupe();
    const Csr csr(p);
    const TriangleCounts census = count_triangles(csr);
    EXPECT_EQ(gt.num_vertices(), csr.num_vertices()) << "k=" << k;
    EXPECT_EQ(gt.num_edges(), csr.num_undirected_edges()) << "k=" << k;
    EXPECT_EQ(gt.global_triangles(), census.total) << "k=" << k;

    Histogram degree_direct;
    for (vertex_t v = 0; v < csr.num_vertices(); ++v) degree_direct.add(csr.degree(v));
    EXPECT_EQ(gt.degree_histogram().items(), degree_direct.items()) << "k=" << k;

    Histogram tri_direct;
    for (const auto t : census.per_vertex) tri_direct.add(t);
    EXPECT_EQ(gt.vertex_triangle_histogram().items(), tri_direct.items()) << "k=" << k;
  }
}

TEST(PowerGroundTruth, HistogramTotalsEqualVertexCount) {
  const PowerGroundTruth gt(prepare_factor(make_pref_attachment(20, 2, 7), false), 3);
  EXPECT_EQ(gt.degree_histogram().total(), gt.num_vertices());
  EXPECT_EQ(gt.vertex_triangle_histogram().total(), gt.num_vertices());
}

TEST(PowerGroundTruth, TrillionEdgeScaleIsReachable) {
  // A gnutella-sized factor cubed crosses 10^13 edges; the formulas still
  // answer exactly (scalars via checked arithmetic, distributions via
  // class composition) with tiny state.
  const EdgeList a = prepare_factor(make_pref_attachment(2000, 5, 9), false);
  const PowerGroundTruth gt(a, 3);
  EXPECT_GT(gt.num_edges_approx(), 1e12);
  EXPECT_EQ(gt.num_edges(), static_cast<std::uint64_t>(4) * a.num_undirected_edges() *
                                a.num_undirected_edges() * a.num_undirected_edges());
  const Histogram degrees = gt.degree_histogram();
  EXPECT_EQ(degrees.total(), gt.num_vertices());
  // State is the number of distinct degree values — sublinear in n_A^k.
  EXPECT_LT(degrees.distinct(), 200'000u);
}

TEST(PowerGroundTruth, ScalarOverflowThrowsAndApproxSurvives) {
  const EdgeList a = prepare_factor(make_gnm(50, 500, 11), false);
  const PowerGroundTruth gt(a, 9);
  EXPECT_THROW((void)gt.num_edges(), std::overflow_error);
  EXPECT_GT(gt.num_edges_approx(), 1e20);
}

TEST(PowerGroundTruth, RejectsBadInput) {
  EXPECT_THROW(PowerGroundTruth(make_clique(3), 0), std::invalid_argument);
  EdgeList directed(3);
  directed.add(0, 1);
  EXPECT_THROW(PowerGroundTruth(directed, 2), std::invalid_argument);
}

TEST(CheckedArithmetic, DetectsOverflow) {
  EXPECT_EQ(checked_mul(1u << 20, 1u << 20), 1ULL << 40);
  EXPECT_THROW((void)checked_mul(1ULL << 40, 1ULL << 40), std::overflow_error);
  EXPECT_EQ(checked_add(5, 7), 12u);
  EXPECT_THROW((void)checked_add(~0ULL, 1), std::overflow_error);
}

// ------------------------------------------------------------ assortativity

TEST(Assortativity, RegularGraphsAreNeutral) {
  EXPECT_EQ(degree_assortativity(Csr(make_cycle(8))), 0.0);
  EXPECT_EQ(degree_assortativity(Csr(make_clique(5))), 0.0);
}

TEST(Assortativity, StarIsPerfectlyDisassortative) {
  EXPECT_NEAR(degree_assortativity(Csr(make_star(8))), -1.0, 1e-12);
}

TEST(Assortativity, ScaleFreeGraphsAreDisassortative) {
  // BA graphs are known to be mildly disassortative under this estimator.
  const double r = degree_assortativity(Csr(make_pref_attachment(800, 3, 13)));
  EXPECT_LT(r, 0.0);
  EXPECT_GT(r, -1.0);
}

TEST(Assortativity, InRange) {
  const double r = degree_assortativity(Csr(make_gnm(60, 200, 17)));
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(Assortativity, LoopsIgnored) {
  EdgeList g = make_star(6);
  const double without = degree_assortativity(Csr(g));
  g.add_full_loops();
  EXPECT_DOUBLE_EQ(degree_assortativity(Csr(g)), without);
}

// -------------------------------------------------------------- betweenness

TEST(Betweenness, PathCenterDominates) {
  // P5: betweenness (pairs through v) = 0, 3, 4, 3, 0.
  const auto bc = betweenness_centrality(Csr(make_path(5)));
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 3.0);
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(Betweenness, StarCenterCarriesAllPairs) {
  // S_6: center mediates all C(5,2) = 10 leaf pairs.
  const auto bc = betweenness_centrality(Csr(make_star(6)));
  EXPECT_DOUBLE_EQ(bc[0], 10.0);
  for (vertex_t v = 1; v < 6; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, CliqueHasNoIntermediaries) {
  for (const double value : betweenness_centrality(Csr(make_clique(6))))
    EXPECT_DOUBLE_EQ(value, 0.0);
}

TEST(Betweenness, EvenCycleSplitsPaths) {
  // C6: for each vertex, opposite-pair paths split; known value 1.5... —
  // verify by the sum rule instead: Σ bc = Σ over pairs (path length - 1).
  const Csr g(make_cycle(6));
  const auto bc = betweenness_centrality(g);
  double total = 0;
  for (const double value : bc) total += value;
  // Distances in C6 from any vertex: 1,1,2,2,3 → Σ (d-1) over ordered pairs
  // = 6 * (0+0+1+1+2) / 2 unordered = 12.
  EXPECT_NEAR(total, 12.0, 1e-9);
  for (const double value : bc) EXPECT_NEAR(value, 2.0, 1e-9);  // transitive
}

TEST(Betweenness, SumRuleOnRandomGraph) {
  // Σ_v bc(v) = Σ_{pairs u<w reachable} (hops(u,w) - 1).
  const EdgeList g = prepare_factor(make_gnm(30, 70, 19), false);
  const Csr csr(g);
  const auto bc = betweenness_centrality(csr);
  double total = 0;
  for (const double value : bc) total += value;
  double expected = 0;
  for (vertex_t u = 0; u < csr.num_vertices(); ++u) {
    const auto levels = bfs_levels(csr, u);
    for (vertex_t w = u + 1; w < csr.num_vertices(); ++w)
      if (levels[w] != kUnreachable && levels[w] > 0)
        expected += static_cast<double>(levels[w] - 1);
  }
  EXPECT_NEAR(total, expected, 1e-6);
}

TEST(Betweenness, LoopsDoNotChangeResults) {
  EdgeList g = make_path(6);
  const auto without = betweenness_centrality(Csr(g));
  g.add_full_loops();
  const auto with = betweenness_centrality(Csr(g));
  for (vertex_t v = 0; v < 6; ++v) EXPECT_DOUBLE_EQ(with[v], without[v]);
}

}  // namespace
}  // namespace kron
